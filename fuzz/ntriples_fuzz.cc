// Fuzz harness for the N-Triples reader/writer and the index build.
//
// Feeds arbitrary bytes to ParseNTriplesString. Rejected inputs must carry
// a diagnostic; accepted inputs must survive the whole downstream
// pipeline: Graph build (sort + dedup), IndexSet construction, full
// structural validation of every trie order, and a serialize/reparse
// round trip that reaches a fixed point after one write.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string_view>

#include "src/index/index_set.h"
#include "src/rdf/graph.h"
#include "src/rdf/ntriples.h"
#include "src/util/contract.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  if (size > (1u << 16)) return 0;  // keep index builds cheap
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  kgoa::GraphBuilder builder;
  const kgoa::NtParseResult parsed =
      kgoa::ParseNTriplesString(text, builder);
  if (!parsed.ok) {
    KGOA_CHECK_MSG(!parsed.error.empty(),
                   "rejected input must carry a diagnostic");
    KGOA_CHECK_GE(parsed.error_line, std::size_t{1});
    return 0;
  }
  KGOA_CHECK_EQ(parsed.lines_parsed, builder.NumPending());

  kgoa::Graph graph = std::move(builder).Build();
  KGOA_CHECK_LE(graph.NumTriples(), parsed.lines_parsed);
  if (graph.NumTriples() == 0) return 0;

  const kgoa::IndexSet indexes(graph);
  for (const kgoa::IndexOrder order : kgoa::kAllIndexOrders) {
    indexes.Index(order).CheckInvariants();
  }

  // Writer/reader fixed point: one serialization pass must round-trip
  // exactly (same triples, byte-identical re-serialization).
  std::ostringstream first;
  kgoa::WriteNTriples(graph, first);
  kgoa::GraphBuilder reread;
  const kgoa::NtParseResult reparsed =
      kgoa::ParseNTriplesString(first.str(), reread);
  KGOA_CHECK_MSG(reparsed.ok, "writer output must reparse");
  const kgoa::Graph graph2 = std::move(reread).Build();
  KGOA_CHECK_EQ(graph2.NumTriples(), graph.NumTriples());
  std::ostringstream second;
  kgoa::WriteNTriples(graph2, second);
  KGOA_CHECK_MSG(first.str() == second.str(),
                 "serialization is not a fixed point");
  return 0;
}
