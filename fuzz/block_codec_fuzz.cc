// Fuzz harness for the compressed block codec (src/index/block_codec.h).
//
// Decodes the input bytes into a column of values whose shape stresses
// both codecs (narrow bands, sorted runs, outliers, wide randoms), then:
//
//   * encodes and decodes the whole column, checking every value
//     round-trips and the block directory invariants hold
//     (decode-what-you-encode);
//   * sorts the column and checks SeekGE/SeekGT over random windows
//     against a linear scan of the sorted raw values, exercising the
//     block-max skip across windows that straddle block boundaries.
//
// Every input runs through BOTH kernel dispatch extremes — forced scalar
// and the highest level the host CPU supports — and the decoded blocks
// are compared bit for bit, so the fuzzer doubles as a differential
// harness for the SIMD decode kernels (src/index/kernels.h).
//
// Any disagreement aborts via KGOA_CHECK.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/index/block_codec.h"
#include "src/util/contract.h"
#include "src/util/simd.h"

namespace {

// Decodes every block at the given dispatch level into one flat vector.
std::vector<uint32_t> DecodeAll(const kgoa::BlockedColumn& col,
                                kgoa::SimdLevel level) {
  kgoa::SetSimdLevel(level);
  std::vector<uint32_t> out;
  out.reserve(col.size());
  alignas(32) uint32_t vals[kgoa::kCodecBlockSize];
  for (uint32_t b = 0; b < col.num_blocks(); ++b) {
    const uint32_t count = col.DecodeBlock(b, vals);
    out.insert(out.end(), vals, vals + count);
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  if (size < 4) return 0;
  std::size_t pos = 0;
  auto byte = [&]() -> uint32_t {
    return pos < size ? static_cast<uint32_t>(data[pos++]) : 0u;
  };
  auto word = [&]() -> uint32_t {
    return byte() | (byte() << 8) | (byte() << 16) | (byte() << 24);
  };

  // Column length spans the interesting boundaries: empty, partial last
  // block, exact multiples of the 128-value block size.
  const uint32_t n = word() % 1500;
  const uint32_t shape = byte() % 4;
  const uint32_t base = word();
  std::vector<uint32_t> values(n);
  uint32_t running = base % (1u << 20);
  for (uint32_t i = 0; i < n; ++i) {
    switch (shape) {
      case 0:  // narrow band around a fuzzed base
        values[i] = (base % (1u << 24)) + byte() % 32;
        break;
      case 1:  // sorted run with fuzzed gaps
        running += byte() % 9;
        values[i] = running;
        break;
      case 2:  // mostly narrow with fuzzed outliers (FOR poison)
        values[i] = byte() == 0 ? word() : byte() % 64;
        break;
      default:  // raw fuzzed words
        values[i] = word();
        break;
    }
  }

  // Decode-what-you-encode: full directory + payload audit against the
  // source values, then point reads through the decode cache.
  const kgoa::BlockedColumn col(values.data(), n);
  KGOA_CHECK(col.size() == n);
  col.CheckInvariants(values.data());
  for (uint32_t i = 0; i < n; ++i) {
    KGOA_CHECK(col.Get(i) == values[i]);
  }

  // Scalar-vs-SIMD differential: both dispatch extremes must decode the
  // column to exactly the source values.
  const kgoa::SimdLevel entry_level = kgoa::CurrentSimdLevel();
  const std::vector<uint32_t> scalar =
      DecodeAll(col, kgoa::SimdLevel::kScalar);
  const std::vector<uint32_t> vectorized =
      DecodeAll(col, kgoa::MaxSupportedSimdLevel());
  KGOA_CHECK(scalar == values);
  KGOA_CHECK(vectorized == scalar);
  kgoa::SetSimdLevel(entry_level);

  if (n == 0) return 0;

  // SeekGE/SeekGT vs linear scan on the sorted column.
  std::sort(values.begin(), values.end());
  const kgoa::BlockedColumn sorted(values.data(), n);
  for (int probe = 0; probe < 32; ++probe) {
    uint32_t from = word() % (n + 1);
    uint32_t end = word() % (n + 1);
    if (from > end) std::swap(from, end);
    // Bias the sought value toward the column's range so seeks actually
    // land inside windows, with occasional raw words for the extremes.
    const uint32_t v = (probe % 4 == 0)
                           ? word()
                           : values[word() % n] + byte() % 3 - 1;
    uint32_t linear_ge = end;
    for (uint32_t i = from; i < end; ++i) {
      if (values[i] >= v) {
        linear_ge = i;
        break;
      }
    }
    uint32_t linear_gt = end;
    for (uint32_t i = from; i < end; ++i) {
      if (values[i] > v) {
        linear_gt = i;
        break;
      }
    }
    // Both dispatch extremes of the in-block lower-bound kernel must
    // agree with the linear scan.
    for (const kgoa::SimdLevel level :
         {kgoa::SimdLevel::kScalar, kgoa::MaxSupportedSimdLevel()}) {
      kgoa::SetSimdLevel(level);
      KGOA_CHECK(sorted.SeekGE(from, end, v) == linear_ge);
      KGOA_CHECK(sorted.SeekGT(from, end, v) == linear_gt);
    }
    kgoa::SetSimdLevel(entry_level);
  }
  return 0;
}
