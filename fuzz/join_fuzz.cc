// Differential fuzz harness for the three exact join engines.
//
// Decodes the input bytes into a small random graph plus a valid chain
// query (patterns formed along a fresh variable chain, so the ChainQuery
// contract holds by construction), then evaluates it with Leapfrog
// TrieJoin, the memoized Cached Trie Join, and the bottom-up Yannakakis
// engine. Any disagreement between the engines aborts via KGOA_CHECK.
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/index/index_set.h"
#include "src/join/ctj.h"
#include "src/join/leapfrog.h"
#include "src/join/yannakakis.h"
#include "src/query/chain_query.h"
#include "src/rdf/graph.h"
#include "src/util/contract.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  if (size < 8) return 0;
  std::size_t pos = 0;
  auto byte = [&]() -> uint32_t {
    return pos < size ? static_cast<uint32_t>(data[pos++]) : 0u;
  };

  const uint32_t num_entities = 2 + byte() % 14;
  const uint32_t num_preds = 1 + byte() % 4;
  const uint32_t num_triples = 1 + byte() % 60;

  kgoa::GraphBuilder builder;
  std::vector<kgoa::TermId> entities;
  std::vector<kgoa::TermId> preds;
  for (uint32_t i = 0; i < num_entities; ++i) {
    entities.push_back(builder.Intern("<e" + std::to_string(i) + ">"));
  }
  for (uint32_t i = 0; i < num_preds; ++i) {
    preds.push_back(builder.Intern("<p" + std::to_string(i) + ">"));
  }
  for (uint32_t i = 0; i < num_triples; ++i) {
    const kgoa::TermId s = entities[byte() % num_entities];
    const kgoa::TermId p = preds[byte() % num_preds];
    const kgoa::TermId o = entities[byte() % num_entities];
    builder.Add(s, p, o);
  }
  const kgoa::Graph graph = std::move(builder).Build();
  const kgoa::IndexSet indexes(graph);

  // A chain over fresh variables v0..vn; each pattern joins v_i to
  // v_{i+1} through a constant predicate, in either direction.
  const uint32_t num_patterns = 1 + byte() % 3;
  std::vector<kgoa::TriplePattern> patterns;
  for (uint32_t i = 0; i < num_patterns; ++i) {
    const kgoa::Slot in = kgoa::Slot::MakeVar(i);
    const kgoa::Slot out = kgoa::Slot::MakeVar(i + 1);
    const kgoa::Slot pred =
        kgoa::Slot::MakeConst(preds[byte() % num_preds]);
    patterns.push_back(byte() & 1 ? kgoa::MakePattern(out, pred, in)
                                  : kgoa::MakePattern(in, pred, out));
  }
  // alpha and beta are the two variables of one pattern, so they always
  // co-occur as the chain-query contract requires.
  const uint32_t anchor = byte() % num_patterns;
  const bool swap = (byte() & 1) != 0;
  const kgoa::VarId alpha = swap ? anchor + 1 : anchor;
  const kgoa::VarId beta = swap ? anchor : anchor + 1;
  const bool distinct = (byte() & 1) != 0;

  std::string error;
  const auto query = kgoa::ChainQuery::Create(std::move(patterns), alpha,
                                              beta, distinct, &error);
  KGOA_CHECK_MSG(query.has_value(), "harness built an invalid chain query");

  const kgoa::GroupedResult lftj = kgoa::EvaluateWithLftj(indexes, *query);
  const kgoa::GroupedResult ctj =
      kgoa::CtjEngine(indexes).Evaluate(*query);
  const kgoa::GroupedResult yan =
      kgoa::EvaluateWithYannakakis(indexes, *query);
  KGOA_CHECK_MSG(lftj == ctj, "LFTJ and CTJ disagree on a chain query");
  KGOA_CHECK_MSG(lftj == yan,
                 "LFTJ and Yannakakis disagree on a chain query");
  return 0;
}
