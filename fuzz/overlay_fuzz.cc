// Differential fuzz harness for the snapshot-epoch overlay machinery
// (DESIGN.md §13).
//
// Decodes the input bytes into a small random base graph plus a sequence
// of insert/delete batches, then maintains the live triple set three
// ways: (1) through MutableGraph's canonical overlay (serving through a
// merged view IndexSet), (2) through MutableGraph::Compact's fold, and
// (3) through an independent from-scratch rebuild (Graph::Rebase over a
// reference set the harness tracks itself). All three must agree on
// membership, on exact join results (the full SeekGE/Narrow/BlockEnd
// iterator contract through LFTJ and CTJ), and BIT-IDENTICALLY on
// seeded walk estimates. Any disagreement aborts via KGOA_CHECK.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/audit.h"
#include "src/core/mutable_graph.h"
#include "src/index/index_set.h"
#include "src/index/snapshot.h"
#include "src/join/ctj.h"
#include "src/join/leapfrog.h"
#include "src/query/chain_query.h"
#include "src/rdf/graph.h"
#include "src/util/contract.h"

namespace {

// Exact (bit-level) agreement between two estimate sets.
void CheckEstimatesIdentical(const kgoa::GroupedEstimates& a,
                             const kgoa::GroupedEstimates& b) {
  KGOA_CHECK_MSG(a.walks() == b.walks(),
                 "overlay and rebuild walk counts diverge");
  const auto ea = a.Estimates();
  const auto eb = b.Estimates();
  KGOA_CHECK_MSG(ea.size() == eb.size(),
                 "overlay and rebuild group sets diverge");
  for (const auto& [group, estimate] : ea) {
    const auto it = eb.find(group);
    KGOA_CHECK_MSG(it != eb.end(), "group missing from rebuild estimates");
    KGOA_CHECK_MSG(estimate == it->second,
                   "overlay estimate not bit-identical to rebuild");
    KGOA_CHECK_MSG(a.CiHalfWidth(group) == b.CiHalfWidth(group),
                   "overlay CI not bit-identical to rebuild");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  if (size < 8) return 0;
  std::size_t pos = 0;
  auto byte = [&]() -> uint32_t {
    return pos < size ? static_cast<uint32_t>(data[pos++]) : 0u;
  };

  const uint32_t num_entities = 2 + byte() % 12;
  const uint32_t num_preds = 1 + byte() % 3;
  const uint32_t num_triples = byte() % 48;

  kgoa::GraphBuilder builder;
  std::vector<kgoa::TermId> entities;
  std::vector<kgoa::TermId> preds;
  for (uint32_t i = 0; i < num_entities; ++i) {
    entities.push_back(builder.Intern("<e" + std::to_string(i) + ">"));
  }
  for (uint32_t i = 0; i < num_preds; ++i) {
    preds.push_back(builder.Intern("<p" + std::to_string(i) + ">"));
  }
  for (uint32_t i = 0; i < num_triples; ++i) {
    builder.Add(entities[byte() % num_entities], preds[byte() % num_preds],
                entities[byte() % num_entities]);
  }

  kgoa::MutableGraph mutable_graph(std::move(builder).Build());
  const kgoa::GraphSnapshot base = mutable_graph.snapshot();

  // The harness's own reference: the live set as a sorted triple vector,
  // maintained with plain membership flips (no overlay code involved).
  std::vector<kgoa::Triple> reference = base.graph().triples();
  auto ref_find = [&](const kgoa::Triple& t) {
    return std::lower_bound(reference.begin(), reference.end(), t,
                            kgoa::SpoLess);
  };
  auto ref_contains = [&](const kgoa::Triple& t) {
    const auto it = ref_find(t);
    return it != reference.end() && *it == t;
  };

  // A few fresh entities interned mid-stream, so batches can introduce
  // terms the base dictionary never saw.
  std::vector<kgoa::TermId> universe = entities;
  const uint32_t num_fresh = byte() % 3;
  for (uint32_t i = 0; i < num_fresh; ++i) {
    universe.push_back(
        mutable_graph.Intern("<fresh" + std::to_string(i) + ">"));
  }

  auto decode_triple = [&]() {
    return kgoa::Triple{universe[byte() % universe.size()],
                        preds[byte() % num_preds],
                        universe[byte() % universe.size()]};
  };

  const uint32_t num_batches = 1 + byte() % 4;
  for (uint32_t b = 0; b < num_batches; ++b) {
    std::vector<kgoa::Triple> inserts;
    std::vector<kgoa::Triple> deletes;
    const uint32_t n_ins = byte() % 8;
    const uint32_t n_del = byte() % 8;
    for (uint32_t i = 0; i < n_ins; ++i) inserts.push_back(decode_triple());
    for (uint32_t i = 0; i < n_del; ++i) deletes.push_back(decode_triple());

    uint64_t expected_changes = 0;
    for (const kgoa::Triple& t : inserts) {
      if (!ref_contains(t)) {
        reference.insert(ref_find(t), t);
        ++expected_changes;
      }
    }
    for (const kgoa::Triple& t : deletes) {
      const auto it = ref_find(t);
      if (it != reference.end() && *it == t) {
        reference.erase(it);
        ++expected_changes;
      }
    }

    const uint64_t changes = mutable_graph.Apply(inserts, deletes);
    KGOA_CHECK_MSG(changes == expected_changes,
                   "canonical apply flip count diverges from reference");
    KGOA_CHECK_MSG(mutable_graph.snapshot().NumTriples() == reference.size(),
                   "overlay live count diverges from reference");
  }

  const kgoa::GraphSnapshot overlay = mutable_graph.snapshot();

  // From-scratch rebuild of the reference set (shared dictionary, so
  // TermIds line up across all three structures).
  const kgoa::Graph rebuilt =
      kgoa::Graph::Rebase(base.graph(), reference);
  const kgoa::IndexSet rebuilt_indexes(rebuilt);

  // Membership sweep over the whole (s, p, o) universe.
  for (const kgoa::TermId s : universe) {
    for (const kgoa::TermId p : preds) {
      for (const kgoa::TermId o : universe) {
        const kgoa::Triple t{s, p, o};
        KGOA_CHECK_MSG(overlay.Contains(t) == ref_contains(t),
                       "overlay membership diverges from reference");
      }
    }
  }

  // Exact joins drive the merged iterators through the full position-
  // space contract; both engines must match the from-scratch build.
  const kgoa::Slot v0 = kgoa::Slot::MakeVar(0);
  const kgoa::Slot v1 = kgoa::Slot::MakeVar(1);
  const kgoa::Slot pred =
      kgoa::Slot::MakeConst(preds[byte() % num_preds]);
  const bool distinct = (byte() & 1) != 0;
  const auto query = kgoa::ChainQuery::Create(
      {kgoa::MakePattern(v0, pred, v1)}, 0, 1, distinct);
  KGOA_CHECK_MSG(query.has_value(), "harness built an invalid chain query");

  const kgoa::GroupedResult via_view =
      kgoa::EvaluateWithLftj(overlay.indexes(), *query);
  const kgoa::GroupedResult via_rebuild =
      kgoa::EvaluateWithLftj(rebuilt_indexes, *query);
  KGOA_CHECK_MSG(via_view == via_rebuild,
                 "LFTJ over the overlay view diverges from the rebuild");
  const kgoa::GroupedResult ctj_view =
      kgoa::CtjEngine(overlay.indexes()).Evaluate(*query);
  KGOA_CHECK_MSG(ctj_view == via_rebuild,
                 "CTJ over the overlay view diverges from the rebuild");

  // Seeded walk estimates must be bit-identical: the merged position
  // space is rank-identical to the rebuilt index, so every sampled
  // position maps to the same triple.
  if (overlay.NumTriples() > 0) {
    kgoa::AuditJoin::Options walk_options;
    walk_options.seed = 99;
    kgoa::AuditJoin via_overlay(overlay.indexes(), *query, walk_options);
    via_overlay.RunWalks(256);
    kgoa::AuditJoin via_scratch(rebuilt_indexes, *query, walk_options);
    via_scratch.RunWalks(256);
    CheckEstimatesIdentical(via_overlay.estimates(),
                            via_scratch.estimates());
  }

  // Compaction must fold to EXACTLY the reference set...
  mutable_graph.Compact();
  const kgoa::GraphSnapshot compacted = mutable_graph.snapshot();
  KGOA_CHECK_MSG(compacted.overlay() == nullptr,
                 "compaction left a non-empty overlay behind");
  KGOA_CHECK_MSG(compacted.graph().triples() == reference,
                 "compacted triple array diverges from the reference set");

  // ...and the retired overlay snapshot stays fully valid and unchanged.
  KGOA_CHECK_MSG(overlay.NumTriples() == reference.size(),
                 "retired snapshot changed after compaction");
  const kgoa::GroupedResult after_compaction =
      kgoa::EvaluateWithLftj(overlay.indexes(), *query);
  KGOA_CHECK_MSG(after_compaction == via_rebuild,
                 "retired snapshot's iterators changed after compaction");
  return 0;
}
