// Driver for the fuzz harnesses when the compiler has no libFuzzer
// runtime (gcc). Mimics the libFuzzer command line the scripts use:
//
//   <harness> [corpus file or dir]... [-runs=N] [-max_total_time=SECONDS]
//             [-seed=N]
//
// Every corpus input runs once, then a seeded mutation loop (kgoa::Rng,
// fixed default seed — identical byte streams on every run) keeps
// exercising the target until the run or time budget is exhausted. Exits
// non-zero only if the target aborts, exactly like libFuzzer.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size);

namespace {

constexpr std::size_t kMaxInputBytes = 1u << 16;

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void CollectCorpus(const std::filesystem::path& path,
                   std::vector<std::vector<uint8_t>>* corpus) {
  if (std::filesystem::is_directory(path)) {
    std::vector<std::filesystem::path> entries;
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      if (entry.is_regular_file()) entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());  // determinism
    for (const auto& entry : entries) corpus->push_back(ReadFile(entry));
  } else if (std::filesystem::is_regular_file(path)) {
    corpus->push_back(ReadFile(path));
  } else {
    std::fprintf(stderr, "standalone fuzzer: no such corpus path: %s\n",
                 path.string().c_str());
    std::exit(2);
  }
}

std::vector<uint8_t> Mutate(std::vector<uint8_t> input, kgoa::Rng& rng) {
  const uint64_t rounds = 1 + rng.Below(4);
  for (uint64_t r = 0; r < rounds; ++r) {
    switch (rng.Below(5)) {
      case 0:  // flip bits in one byte
        if (!input.empty()) {
          input[rng.Below(input.size())] ^=
              static_cast<uint8_t>(1u << rng.Below(8));
        }
        break;
      case 1:  // overwrite a byte
        if (!input.empty()) {
          input[rng.Below(input.size())] =
              static_cast<uint8_t>(rng.Below(256));
        }
        break;
      case 2:  // insert a byte
        if (input.size() < kMaxInputBytes) {
          input.insert(input.begin() +
                           static_cast<std::ptrdiff_t>(
                               rng.Below(input.size() + 1)),
                       static_cast<uint8_t>(rng.Below(256)));
        }
        break;
      case 3:  // erase a byte
        if (!input.empty()) {
          input.erase(input.begin() +
                      static_cast<std::ptrdiff_t>(rng.Below(input.size())));
        }
        break;
      default:  // truncate
        if (!input.empty()) input.resize(rng.Below(input.size() + 1));
        break;
    }
  }
  return input;
}

bool ParseUint(const char* arg, const char* name, uint64_t* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *out = std::strtoull(arg + len, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 0;
  uint64_t max_total_time = 0;
  uint64_t seed = 1;
  std::vector<std::vector<uint8_t>> corpus;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] == '-') {
      if (!ParseUint(arg, "-runs=", &runs) &&
          !ParseUint(arg, "-max_total_time=", &max_total_time) &&
          !ParseUint(arg, "-seed=", &seed)) {
        std::fprintf(stderr, "standalone fuzzer: ignoring flag %s\n", arg);
      }
      continue;
    }
    CollectCorpus(arg, &corpus);
  }

  uint64_t executed = 0;
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }
  std::fprintf(stderr, "standalone fuzzer: %llu corpus inputs OK\n",
               static_cast<unsigned long long>(executed));

  if (runs == 0 && max_total_time == 0) return 0;

  kgoa::Rng rng(seed);
  if (corpus.empty()) corpus.push_back({});  // mutate from the empty input
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(max_total_time);
  const std::string artifact =
      std::filesystem::path(argv[0]).filename().string() + ".crash";
  uint64_t mutated = 0;
  while (true) {
    if (runs != 0 && mutated >= runs) break;
    if (max_total_time != 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    const std::vector<uint8_t> input =
        Mutate(corpus[rng.Below(corpus.size())], rng);
    // Persisted before the call so that if the target aborts, the file
    // left behind is the crashing input (libFuzzer's artifact behavior);
    // removed again after a clean pass.
    std::ofstream(artifact, std::ios::binary)
        .write(reinterpret_cast<const char*>(input.data()),
               static_cast<std::streamsize>(input.size()));
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++mutated;
  }
  std::filesystem::remove(artifact);
  std::fprintf(stderr, "standalone fuzzer: %llu mutated inputs OK\n",
               static_cast<unsigned long long>(mutated));
  return 0;
}
