// Tests for the in-process sharded deployment (src/shard/).
//
// The keystone is the scatter-gather determinism contract: a budget-mode
// sharded run must be BIT-IDENTICAL to an unsharded budgeted run with the
// same (query, seed, total budget) and workers equal to the total slot
// count — the coordinator's slot-block scatter and slot-order gather exist
// for exactly this property, so the matrix below checks it across shard
// and worker counts rather than spot-checking one configuration.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/core/explorer.h"
#include "src/eval/runner.h"
#include "src/ola/parallel.h"
#include "src/shard/coordinator.h"
#include "src/shard/partition.h"
#include "src/shard/sharded_graph.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

void ExpectBitIdentical(const GroupedEstimates& a, const GroupedEstimates& b) {
  EXPECT_EQ(a.walks(), b.walks());
  EXPECT_EQ(a.rejected_walks(), b.rejected_walks());
  const auto ea = a.Estimates();
  const auto eb = b.Estimates();
  ASSERT_EQ(ea.size(), eb.size());
  for (const auto& [group, estimate] : ea) {
    const auto it = eb.find(group);
    ASSERT_NE(it, eb.end());
    EXPECT_EQ(estimate, it->second) << "group " << group;
    EXPECT_EQ(a.CiHalfWidth(group), b.CiHalfWidth(group)) << "group "
                                                          << group;
  }
}

class ShardTest : public ::testing::Test {
 protected:
  ShardTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  // The unsharded reference: one budgeted executor run with the total
  // slot count as its logical worker count.
  GroupedEstimates Reference(const ChainQuery& query, OlaEngineKind engine,
                             uint64_t budget, int total_workers) {
    ParallelOlaOptions options;
    options.workers = total_workers;
    options.threads = 2;
    options.seed = 17;
    options.engine = engine;
    options.tipping_threshold = 2.0;  // exercise the tipping path
    // The coordinator serves audit jobs with the planner's default order
    // (like Explorer::SubmitChart); give the reference the same plan.
    if (engine == OlaEngineKind::kAudit) {
      options.walk_order = DefaultAuditOrder(query);
    }
    ParallelOlaExecutor executor(indexes_, query, options);
    return executor.RunWalkBudget(budget).estimates;
  }

  GroupedEstimates Sharded(const ChainQuery& query, OlaEngineKind engine,
                           uint64_t budget, int shards,
                           int workers_per_shard) {
    ShardCoordinator::Options options;
    options.num_shards = shards;
    options.threads_per_shard = 2;
    options.build_slices = false;  // serving only; slices tested separately
    ShardCoordinator coordinator(graph_, indexes_, options);
    ShardChartOptions chart;
    chart.walk_budget = budget;
    chart.workers_per_shard = workers_per_shard;
    chart.seed = 17;
    chart.engine = engine;
    chart.tipping_threshold = 2.0;
    return coordinator.Submit(query, chart).Await().estimates;
  }

  Graph graph_;
  IndexSet indexes_;
};

// The acceptance matrix: 1/2/4 shards x 1/2/8 workers per shard, audit
// (distinct, with a shared reach cache across shards) and wander engines.
// Every cell must reproduce the unsharded executor bit for bit.
TEST_F(ShardTest, BudgetModeBitIdenticalToUnshardedAcrossMatrix) {
  constexpr uint64_t kBudget = 3001;  // odd: exercises the remainder path
  for (const bool distinct : {true, false}) {
    const ChainQuery query = Fig5(distinct);
    const OlaEngineKind engine =
        distinct ? OlaEngineKind::kAudit : OlaEngineKind::kWander;
    for (const int shards : {1, 2, 4}) {
      for (const int workers : {1, 2, 8}) {
        SCOPED_TRACE(::testing::Message()
                     << (distinct ? "audit" : "wander") << " shards="
                     << shards << " workers_per_shard=" << workers);
        const GroupedEstimates reference =
            Reference(query, engine, kBudget, shards * workers);
        const GroupedEstimates sharded =
            Sharded(query, engine, kBudget, shards, workers);
        ExpectBitIdentical(sharded, reference);
      }
    }
  }
}

// Different shard topologies with the same total slot count are the same
// run: (2 shards x 4 workers) == (4 x 2) == (1 x 8) == (8 x 1).
TEST_F(ShardTest, TopologyWithSameTotalSlotsIsInvariant) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 1003;
  const GroupedEstimates reference =
      Sharded(query, OlaEngineKind::kAudit, kBudget, 1, 8);
  for (const auto& [shards, workers] :
       std::vector<std::pair<int, int>>{{2, 4}, {4, 2}, {8, 1}}) {
    SCOPED_TRACE(::testing::Message() << shards << "x" << workers);
    ExpectBitIdentical(
        Sharded(query, OlaEngineKind::kAudit, kBudget, shards, workers),
        reference);
  }
}

// A budget smaller than the total slot count leaves whole shards with a
// zero share; those shards must be skipped (never submitted), and the
// tiny run still matches the unsharded reference exactly.
TEST_F(ShardTest, TinyBudgetSkipsZeroShareShards) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 3;  // 8 total slots: only slots 0-2 run
  ShardCoordinator::Options options;
  options.num_shards = 4;
  options.threads_per_shard = 1;
  options.build_slices = false;
  ShardCoordinator coordinator(graph_, indexes_, options);
  ShardChartOptions chart;
  chart.walk_budget = kBudget;
  chart.workers_per_shard = 2;
  chart.seed = 17;
  chart.tipping_threshold = 2.0;
  ShardChartHandle handle = coordinator.Submit(query, chart);
  // Shard 0 owns 2 walks, shard 1 owns 1, shards 2 and 3 own none.
  EXPECT_EQ(handle.num_shards(), 2);
  const ParallelOlaResult run = handle.Await();
  EXPECT_EQ(run.estimates.walks(), kBudget);
  ExpectBitIdentical(run.estimates,
                     Reference(query, OlaEngineKind::kAudit, kBudget, 8));
}

// Ripple does not merge across seeds, so the scatter clamps to one shard
// with one worker instead of silently changing the estimator's semantics.
TEST_F(ShardTest, NonMergeableEngineClampsToOneShard) {
  const ChainQuery query = Fig5(false);
  ShardCoordinator::Options options;
  options.num_shards = 4;
  options.build_slices = false;
  ShardCoordinator coordinator(graph_, indexes_, options);
  ShardChartOptions chart;
  chart.walk_budget = 64;
  chart.workers_per_shard = 4;
  chart.engine = OlaEngineKind::kRipple;
  ShardChartHandle handle = coordinator.Submit(query, chart);
  EXPECT_EQ(handle.num_shards(), 1);
  EXPECT_EQ(handle.total_workers(), 1);
  const ParallelOlaResult run = handle.Await();
  EXPECT_EQ(run.workers, 1);
}

// Cancel fans out: every per-shard job observes the cancellation, the
// aggregate state reports kCancelled, and Await returns the partial
// gather instead of blocking until the (far) deadline.
TEST_F(ShardTest, CancelFansOutToEveryShard) {
  const ChainQuery query = Fig5(true);
  ShardCoordinator::Options options;
  options.num_shards = 4;
  options.threads_per_shard = 1;
  options.build_slices = false;
  ShardCoordinator coordinator(graph_, indexes_, options);
  ShardChartOptions chart;
  chart.walk_budget = 0;
  chart.deadline_seconds = 60.0;  // would block for a minute if not cancelled
  ShardChartHandle handle = coordinator.Submit(query, chart);
  EXPECT_EQ(handle.num_shards(), 4);
  handle.Cancel();
  handle.Await();
  EXPECT_TRUE(handle.finished());
  EXPECT_EQ(handle.state(), ChartJobState::kCancelled);
  for (const ChartHandle& shard : handle.shard_handles()) {
    EXPECT_EQ(shard.state(), ChartJobState::kCancelled);
  }
  const ShardServeStats stats = coordinator.stats();
  EXPECT_EQ(stats.cores.jobs_cancelled, 4u);
  EXPECT_EQ(stats.jobs_submitted, 1u);
  EXPECT_EQ(stats.shard_jobs_submitted, 4u);
}

// Regression for the shard.core_jobs_completed = 0 bug: a fan-out whose
// chart was served to its quality target used to be torn down through
// Cancel, so every successfully served sharded job counted as cancelled
// (BENCH_shard.json showed core_jobs_completed 0, core_jobs_cancelled 4).
// A graceful Finish must stop every shard quickly AND retire the jobs as
// COMPLETED with their partials.
TEST_F(ShardTest, FinishRetiresShardJobsAsCompleted) {
  const ChainQuery query = Fig5(true);
  ShardCoordinator::Options options;
  options.num_shards = 4;
  options.threads_per_shard = 1;
  options.build_slices = false;
  ShardCoordinator coordinator(graph_, indexes_, options);
  ShardChartOptions chart;
  chart.walk_budget = 0;
  chart.deadline_seconds = 60.0;  // would block for a minute without Finish
  ShardChartHandle handle = coordinator.Submit(query, chart);
  EXPECT_EQ(handle.num_shards(), 4);
  handle.Finish();
  const ParallelOlaResult run = handle.Await();
  EXPECT_TRUE(handle.finished());
  EXPECT_EQ(handle.state(), ChartJobState::kDone);
  for (const ChartHandle& shard : handle.shard_handles()) {
    EXPECT_EQ(shard.state(), ChartJobState::kDone);
  }
  // The partials gathered at finish are a well-formed combined result.
  EXPECT_EQ(run.workers, 4 * 2);
  const ShardServeStats stats = coordinator.stats();
  EXPECT_EQ(stats.cores.jobs_completed, 4u);
  EXPECT_EQ(stats.cores.jobs_cancelled, 0u);
  // Finish is idempotent, also after retirement.
  handle.Finish();
  EXPECT_EQ(handle.state(), ChartJobState::kDone);
}

// The block storage tier under the scatter: a sharded budget run over a
// block-tier IndexSet is bit-identical to the sharded run over the raw
// tier (and hence to the unsharded reference) at 1/2/4 shards.
TEST_F(ShardTest, BlockTierBudgetBitIdenticalAcrossShardCounts) {
  const ChainQuery query = Fig5(true);
  IndexSet block(graph_, IndexSetOptions{StorageTier::kBlock});
  constexpr uint64_t kBudget = 1003;
  for (const int shards : {1, 2, 4}) {
    SCOPED_TRACE(::testing::Message() << shards << " shards");
    ShardCoordinator::Options options;
    options.num_shards = shards;
    options.threads_per_shard = 2;
    options.build_slices = false;
    ShardCoordinator raw_coordinator(graph_, indexes_, options);
    ShardCoordinator block_coordinator(graph_, block, options);
    ShardChartOptions chart;
    chart.walk_budget = kBudget;
    chart.workers_per_shard = 2;
    chart.seed = 17;
    chart.tipping_threshold = 2.0;
    const GroupedEstimates from_raw =
        raw_coordinator.Submit(query, chart).Await().estimates;
    const GroupedEstimates from_block =
        block_coordinator.Submit(query, chart).Await().estimates;
    ExpectBitIdentical(from_block, from_raw);
    ExpectBitIdentical(from_block,
                       Reference(query, OlaEngineKind::kAudit, kBudget,
                                 shards * 2));
  }
}

// Batched walk execution under the scatter: the batch width is not part
// of the sharded run identity either — unbatched (1), default-width and
// odd-width runs reproduce each other and the unsharded reference bit
// for bit at 1/2/4 shards, on both storage tiers.
TEST_F(ShardTest, BatchedBudgetBitIdenticalAcrossShardsAndTiers) {
  const ChainQuery query = Fig5(true);
  IndexSet block(graph_, IndexSetOptions{StorageTier::kBlock});
  constexpr uint64_t kBudget = 1003;
  for (const int shards : {1, 2, 4}) {
    const GroupedEstimates reference =
        Reference(query, OlaEngineKind::kAudit, kBudget, shards * 2);
    for (const uint32_t batch : {1u, 0u, 48u}) {  // 0 = engine default
      SCOPED_TRACE(::testing::Message()
                   << shards << " shards batch=" << batch);
      ShardCoordinator::Options options;
      options.num_shards = shards;
      options.threads_per_shard = 2;
      options.build_slices = false;
      ShardChartOptions chart;
      chart.walk_budget = kBudget;
      chart.workers_per_shard = 2;
      chart.seed = 17;
      chart.tipping_threshold = 2.0;
      chart.batch_walks = batch;
      for (const IndexSet* tier : {&indexes_, &block}) {
        ShardCoordinator coordinator(graph_, *tier, options);
        ExpectBitIdentical(coordinator.Submit(query, chart).Await().estimates,
                           reference);
      }
    }
  }
}

// A combined snapshot taken after completion is exactly the gathered
// final result (the deterministic slot-order fold), and the deadline
// fan-out reports the total logical worker count.
TEST_F(ShardTest, FinishedSnapshotEqualsAwait) {
  const ChainQuery query = Fig5(true);
  ShardCoordinator::Options options;
  options.num_shards = 2;
  options.build_slices = false;
  ShardCoordinator coordinator(graph_, indexes_, options);
  ShardChartOptions chart;
  chart.walk_budget = 0;
  chart.deadline_seconds = 0.05;
  chart.workers_per_shard = 2;
  ShardChartHandle handle = coordinator.Submit(query, chart);
  const ParallelOlaResult awaited = handle.Await();
  EXPECT_GT(awaited.estimates.walks(), 0u);
  EXPECT_EQ(awaited.workers, 4);
  const ParallelOlaResult snapshot = handle.Snapshot();
  ExpectBitIdentical(snapshot.estimates, awaited.estimates);
  EXPECT_EQ(handle.state(), ChartJobState::kDone);
}

// The physical partition: slices cover the graph exactly once, every
// sliced triple's subject hashes to its own shard, and the per-shard
// index sets index exactly their slice.
TEST_F(ShardTest, SlicesPartitionTheGraphExactly) {
  const ShardPartition partition(4);
  const ShardedGraph sliced(graph_, partition, /*build_indexes=*/true);
  ASSERT_EQ(sliced.num_shards(), 4);
  EXPECT_EQ(sliced.TotalSliceTriples(), graph_.NumTriples());
  EXPECT_GT(sliced.ApproxIndexMemoryBytes(), 0u);
  for (int k = 0; k < sliced.num_shards(); ++k) {
    const Graph& slice = sliced.slice(k);
    EXPECT_EQ(sliced.indexes(k).NumTriples(), slice.NumTriples());
    for (const Triple& t : slice.triples()) {
      // Slice-local ids map back to global ids through the spelling.
      const TermId global_subject =
          graph_.dict().Lookup(slice.dict().Spell(t.s));
      ASSERT_NE(global_subject, kInvalidTerm);
      EXPECT_EQ(partition.ShardOf(global_subject), k);
      // The slice's triple exists in the source graph.
      const Triple global{
          global_subject, graph_.dict().Lookup(slice.dict().Spell(t.p)),
          graph_.dict().Lookup(slice.dict().Spell(t.o))};
      EXPECT_TRUE(graph_.Contains(global));
    }
  }

  const ShardPartitionStats stats = SummarizePartition(graph_, partition);
  uint64_t total = 0;
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(stats.triples[static_cast<std::size_t>(k)],
              sliced.slice(k).NumTriples());
    total += stats.triples[static_cast<std::size_t>(k)];
  }
  EXPECT_EQ(total, stats.total_triples);
  EXPECT_EQ(stats.total_triples, graph_.NumTriples());
  EXPECT_GE(stats.balance, 1.0);
  EXPECT_LE(stats.min_triples, stats.max_triples);
}

// Explorer facade + session integration: sharded submission goes through
// EnableSharding, exports shard.* metrics, matches the unsharded serve
// bit for bit, and tracked per-shard handles are auto-cancelled on
// navigation like any other chart job.
TEST(ShardExplorerTest, ExplorerServesShardedChartsAndSessionCancels) {
  Explorer explorer(testing::PaperExampleGraph());
  const Graph& graph = explorer.graph();
  const TermId person = graph.dict().Lookup("Person");
  const TermId birth_place = graph.dict().Lookup("birthPlace");
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph.rdf_type()), C(person)),
       MakePattern(V(0), C(birth_place), V(1)),
       MakePattern(V(1), C(graph.rdf_type()), V(2))},
      2, 1, true);
  ASSERT_TRUE(q.has_value());

  ShardCoordinator::Options options;
  options.num_shards = 2;
  options.threads_per_shard = 1;
  explorer.EnableSharding(options);
  ASSERT_TRUE(explorer.sharding_enabled());
  EXPECT_EQ(explorer.metrics().Counter("shard.count"), 2u);
  EXPECT_EQ(explorer.metrics().Counter("shard.triples_total"),
            graph.NumTriples());

  // Budget-mode sharded serve == unsharded serve with the same identity.
  ShardChartOptions sharded_chart;
  sharded_chart.walk_budget = 501;
  sharded_chart.workers_per_shard = 2;
  sharded_chart.seed = 17;
  const ParallelOlaResult sharded =
      explorer.SubmitChartSharded(*q, sharded_chart).Await();
  ChartJobOptions unsharded_chart;
  unsharded_chart.walk_budget = 501;
  unsharded_chart.workers = 4;
  unsharded_chart.seed = 17;
  const ParallelOlaResult unsharded =
      explorer.SubmitChart(*q, unsharded_chart).Await();
  ExpectBitIdentical(sharded.estimates, unsharded.estimates);
  EXPECT_GE(explorer.metrics().Counter("explorer.sharded_jobs_submitted"),
            1u);
  // The registry snapshot is taken at submit time; the live coordinator
  // stats see the completions.
  EXPECT_GE(explorer.shard_coordinator().stats().cores.jobs_completed, 2u);

  // Session auto-cancel covers scatter-gather jobs via their per-shard
  // handles.
  ExplorationSession session = explorer.NewSession();
  ShardChartOptions deadline_chart;
  deadline_chart.walk_budget = 0;
  deadline_chart.deadline_seconds = 60.0;
  ShardChartHandle live = explorer.SubmitChartSharded(*q, deadline_chart);
  session.TrackJobs(live.shard_handles());
  EXPECT_EQ(session.tracked_jobs().size(), 2u);
  EXPECT_EQ(session.CancelLiveJobs(), 2);
  live.Await();
  EXPECT_EQ(live.state(), ChartJobState::kCancelled);
}

// Placement is a pure function of (id, shard count): pin a few mixed ids
// so an accidental change to the mixer (which would silently re-partition
// every deployment) fails loudly.
TEST(ShardPartitionTest, PlacementIsStable) {
  const ShardPartition two(2);
  const ShardPartition four(4);
  for (const TermId id : {0u, 1u, 7u, 12345u}) {
    EXPECT_EQ(two.ShardOf(id),
              static_cast<int>(ShardPartition::Mix(id) % 2));
    EXPECT_EQ(four.ShardOf(id),
              static_cast<int>(ShardPartition::Mix(id) % 4));
  }
  // splitmix64(0) — the published constant for the zero input.
  EXPECT_EQ(ShardPartition::Mix(0), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace kgoa
