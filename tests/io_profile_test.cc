// Tests for binary graph snapshots (src/rdf/binary_io.h) and graph
// profiling (src/eval/profile.h).
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/eval/profile.h"
#include "src/gen/kg_gen.h"
#include "src/rdf/binary_io.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(BinaryIo, RoundTripsPaperGraph) {
  Graph original = testing::PaperExampleGraph();
  const std::string path = TempPath("kgoa_binio_paper.bin");
  ASSERT_TRUE(SaveGraphBinary(original, path));

  std::string error;
  auto loaded = LoadGraphBinary(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->NumTriples(), original.NumTriples());
  EXPECT_EQ(loaded->triples(), original.triples());
  EXPECT_EQ(loaded->dict().size(), original.dict().size());
  for (TermId id = 0; id < original.dict().size(); ++id) {
    EXPECT_EQ(loaded->dict().Spell(id), original.dict().Spell(id));
  }
  EXPECT_EQ(loaded->rdf_type(), original.rdf_type());
  std::filesystem::remove(path);
}

TEST(BinaryIo, RoundTripsSyntheticGraph) {
  KgSpec spec;
  spec.num_entities = 500;
  spec.num_property_triples = 2000;
  spec.num_classes = 15;
  spec.num_properties = 8;
  Graph original = GenerateKg(spec);
  const std::string path = TempPath("kgoa_binio_synth.bin");
  ASSERT_TRUE(SaveGraphBinary(original, path));
  auto loaded = LoadGraphBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->triples(), original.triples());
  std::filesystem::remove(path);
}

TEST(BinaryIo, RejectsMissingFile) {
  std::string error;
  EXPECT_FALSE(LoadGraphBinary("/nonexistent/kgoa.bin", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(BinaryIo, RejectsBadMagic) {
  const std::string path = TempPath("kgoa_binio_bad.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a snapshot at all";
  }
  std::string error;
  EXPECT_FALSE(LoadGraphBinary(path, &error).has_value());
  EXPECT_NE(error.find("not a kgoa"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(BinaryIo, RejectsTruncation) {
  Graph original = testing::PaperExampleGraph();
  const std::string path = TempPath("kgoa_binio_trunc.bin");
  ASSERT_TRUE(SaveGraphBinary(original, path));
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 7);
  std::string error;
  EXPECT_FALSE(LoadGraphBinary(path, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Profile, PaperGraphNumbers) {
  Graph graph = testing::PaperExampleGraph();
  const GraphProfile profile = ProfileGraph(graph);
  EXPECT_EQ(profile.triples, graph.NumTriples());
  EXPECT_EQ(profile.classes, 6u);       // Thing, Agent, Person, ...
  EXPECT_EQ(profile.properties, 2u);    // influencedBy, birthPlace
  EXPECT_EQ(profile.typed_entities, 6u);
  EXPECT_EQ(profile.subclass_triples, 5u);
  EXPECT_DOUBLE_EQ(profile.literal_object_fraction, 0.0);
  // plato: influencedBy x2 + birthPlace = 3 outgoing property edges.
  EXPECT_EQ(profile.max_out_degree, 3u);
  ASSERT_FALSE(profile.top_classes.empty());
  // owl:Thing has every entity.
  EXPECT_EQ(profile.top_classes[0].term, graph.owl_thing());
  EXPECT_EQ(profile.top_classes[0].count, 6u);
}

TEST(Profile, CountsLiterals) {
  GraphBuilder b;
  b.AddSpelled("s1", "p", "\"42\"");
  b.AddSpelled("s2", "p", "o");
  Graph g = std::move(b).Build();
  const GraphProfile profile = ProfileGraph(g);
  EXPECT_DOUBLE_EQ(profile.literal_object_fraction, 0.5);
}

TEST(Profile, TopKLimitsAndSorts) {
  KgSpec spec;
  spec.num_entities = 400;
  spec.num_property_triples = 1500;
  spec.num_classes = 30;
  spec.num_properties = 20;
  Graph g = GenerateKg(spec);
  const GraphProfile profile = ProfileGraph(g, 5);
  ASSERT_EQ(profile.top_classes.size(), 5u);
  for (std::size_t i = 1; i < profile.top_classes.size(); ++i) {
    EXPECT_GE(profile.top_classes[i - 1].count,
              profile.top_classes[i].count);
  }
  const std::string rendered = RenderProfile(g, profile);
  EXPECT_NE(rendered.find("top classes"), std::string::npos);
}

}  // namespace
}  // namespace kgoa
