// Tests for the snapshot-epoch model (src/core/mutable_graph.h,
// src/index/snapshot.h — DESIGN.md §13).
//
// The keystone is version isolation under writes: a budget-mode run
// pinned on epoch N must be BIT-IDENTICAL to the same run against an
// immutable build of epoch N's triple set, no matter how many batches
// land or compactions publish while it runs. The matrix below checks
// that across thread counts, shard counts and both storage tiers, with
// a concurrent writer and a racing compaction (this file runs under
// ThreadSanitizer in tier 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/explorer.h"
#include "src/core/mutable_graph.h"
#include "src/eval/runner.h"
#include "src/explore/cache.h"
#include "src/index/snapshot.h"
#include "src/ola/parallel.h"
#include "src/rdf/graph.h"
#include "src/shard/coordinator.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

void ExpectBitIdentical(const GroupedEstimates& a, const GroupedEstimates& b) {
  EXPECT_EQ(a.walks(), b.walks());
  EXPECT_EQ(a.rejected_walks(), b.rejected_walks());
  const auto ea = a.Estimates();
  const auto eb = b.Estimates();
  ASSERT_EQ(ea.size(), eb.size());
  for (const auto& [group, estimate] : ea) {
    const auto it = eb.find(group);
    ASSERT_NE(it, eb.end());
    EXPECT_EQ(estimate, it->second) << "group " << group;
    EXPECT_EQ(a.CiHalfWidth(group), b.CiHalfWidth(group)) << "group "
                                                          << group;
  }
}

class MutableGraphTest : public ::testing::Test {
 protected:
  MutableGraphTest() : graph_(testing::PaperExampleGraph()) {}

  TermId Id(const char* term) const { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct = true) const {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  // A write batch touching the Fig5 query's footprint: a new person with
  // a birth place, plus a retraction of an existing birthPlace edge.
  std::vector<Triple> BatchInserts(MutableGraph& m) const {
    const TermId zeno = m.Intern("zeno");
    const TermId elea = m.Intern("elea");
    return {Triple{zeno, graph_.rdf_type(), Id("Person")},
            Triple{zeno, Id("birthPlace"), elea},
            Triple{elea, graph_.rdf_type(), Id("City")},
            Triple{elea, graph_.rdf_type(), Id("Place")}};
  }
  std::vector<Triple> BatchDeletes() const {
    return {Triple{Id("socrates"), Id("birthPlace"), Id("athens")}};
  }

  Graph graph_;  // template copied into each MutableGraph under test
};

// ---------------------------------------------------------------------------
// Canonical apply semantics
// ---------------------------------------------------------------------------

TEST_F(MutableGraphTest, ApplyCountsLiveSetFlipsAndSkipsNoOps) {
  MutableGraph m(testing::PaperExampleGraph());
  EXPECT_EQ(m.epoch(), 0u);
  const Triple existing{Id("plato"), Id("birthPlace"), Id("athens")};
  const TermId zeno = m.Intern("zeno");
  const Triple fresh{zeno, graph_.rdf_type(), Id("Person")};

  // Inserting a present triple and deleting an absent one are no-ops: no
  // flip, no epoch.
  EXPECT_EQ(m.Insert({existing}), 0u);
  EXPECT_EQ(m.Delete({fresh}), 0u);
  EXPECT_EQ(m.epoch(), 0u);

  // An effective insert flips once and publishes.
  EXPECT_EQ(m.Insert({fresh}), 1u);
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_TRUE(m.snapshot().Contains(fresh));

  // Deleting the pending add retracts it before any base ever holds it.
  EXPECT_EQ(m.Delete({fresh}), 1u);
  EXPECT_FALSE(m.snapshot().Contains(fresh));
  EXPECT_EQ(m.stats().overlay_adds, 0u);

  // Deleting a base triple, then re-inserting it, round-trips through the
  // tombstone (the overlay ends empty again).
  EXPECT_EQ(m.Delete({existing}), 1u);
  EXPECT_FALSE(m.snapshot().Contains(existing));
  EXPECT_EQ(m.Insert({existing}), 1u);
  EXPECT_TRUE(m.snapshot().Contains(existing));
  EXPECT_EQ(m.stats().overlay_adds, 0u);
  EXPECT_EQ(m.stats().overlay_dels, 0u);
}

TEST_F(MutableGraphTest, InsertsApplyBeforeDeletesWithinOneBatch) {
  MutableGraph m(testing::PaperExampleGraph());
  const TermId zeno = m.Intern("zeno");
  const Triple fresh{zeno, graph_.rdf_type(), Id("Person")};
  // The same triple in both lists of one batch ends up absent (insert
  // lands first, the delete retracts it): two flips.
  EXPECT_EQ(m.Apply({fresh}, {fresh}), 2u);
  EXPECT_FALSE(m.snapshot().Contains(fresh));
}

TEST_F(MutableGraphTest, SnapshotPinsItsEpochWhileWritesLand) {
  MutableGraph m(testing::PaperExampleGraph());
  const GraphSnapshot before = m.snapshot();
  const uint64_t triples_before = before.NumTriples();

  m.Insert(BatchInserts(m));
  m.Delete(BatchDeletes());

  // The pinned snapshot still answers for epoch 0.
  EXPECT_EQ(before.epoch(), 0u);
  EXPECT_EQ(before.NumTriples(), triples_before);
  EXPECT_TRUE(before.Contains(
      Triple{Id("socrates"), Id("birthPlace"), Id("athens")}));

  // A fresh snapshot sees the writes.
  const GraphSnapshot after = m.snapshot();
  EXPECT_EQ(after.epoch(), 2u);
  EXPECT_EQ(after.NumTriples(), triples_before + 4 - 1);
  EXPECT_FALSE(after.Contains(
      Triple{Id("socrates"), Id("birthPlace"), Id("athens")}));
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

TEST_F(MutableGraphTest, CompactionFoldMatchesIndependentMerge) {
  for (const StorageTier tier : {StorageTier::kRaw, StorageTier::kBlock}) {
    SCOPED_TRACE(tier == StorageTier::kRaw ? "raw" : "block");
    MutableGraph::Options options;
    options.index_options.tier = tier;
    MutableGraph m(testing::PaperExampleGraph(), options);
    const std::vector<Triple> inserts = BatchInserts(m);
    const std::vector<Triple> deletes = BatchDeletes();
    m.Apply(inserts, deletes);

    // Independent expectation: (base - deletes + adds), (s,p,o)-sorted
    // the way Graph stores its triple array.
    std::vector<Triple> expected = m.snapshot().graph().triples();
    expected.erase(std::remove_if(expected.begin(), expected.end(),
                                  [&](const Triple& t) {
                                    return std::find(deletes.begin(),
                                                     deletes.end(),
                                                     t) != deletes.end();
                                  }),
                   expected.end());
    expected.insert(expected.end(), inserts.begin(), inserts.end());
    std::sort(expected.begin(), expected.end(), SpoLess);

    const uint64_t epoch = m.Compact();
    EXPECT_EQ(epoch, 2u);  // one applied batch, then the compaction
    const GraphSnapshot compacted = m.snapshot();
    EXPECT_EQ(compacted.graph().triples(), expected);
    EXPECT_EQ(m.stats().overlay_adds, 0u);
    EXPECT_EQ(m.stats().overlay_dels, 0u);
    EXPECT_EQ(m.stats().compactions, 1u);

    // Compacting a clean graph is a no-op at the same epoch.
    EXPECT_EQ(m.Compact(), epoch);
    EXPECT_EQ(m.stats().compactions, 1u);
  }
}

// The overlay view and the compacted rebuild present the SAME triple set
// through rank-identical position spaces, so a budget run is bit-identical
// across the representation change — on both storage tiers.
TEST_F(MutableGraphTest, OverlayViewEstimatesMatchCompactedRebuild) {
  const ChainQuery query = Fig5();
  constexpr uint64_t kBudget = 2000;
  for (const StorageTier tier : {StorageTier::kRaw, StorageTier::kBlock}) {
    SCOPED_TRACE(tier == StorageTier::kRaw ? "raw" : "block");
    MutableGraph::Options options;
    options.index_options.tier = tier;
    MutableGraph m(testing::PaperExampleGraph(), options);
    m.Apply(BatchInserts(m), BatchDeletes());

    ParallelOlaOptions run;
    run.workers = 4;
    run.threads = 2;
    run.seed = 17;
    run.tipping_threshold = 2.0;
    run.walk_order = DefaultAuditOrder(query);

    const GraphSnapshot overlay = m.snapshot();
    ASSERT_NE(overlay.overlay(), nullptr);
    const GroupedEstimates via_view =
        ParallelOlaExecutor(overlay, query, run).RunWalkBudget(kBudget)
            .estimates;

    m.Compact();
    const GraphSnapshot rebuilt = m.snapshot();
    ASSERT_EQ(rebuilt.overlay(), nullptr);
    const GroupedEstimates via_base =
        ParallelOlaExecutor(rebuilt, query, run).RunWalkBudget(kBudget)
            .estimates;

    ExpectBitIdentical(via_view, via_base);
  }
}

TEST_F(MutableGraphTest, WritesLandingDuringCompactionAreReplayed) {
  MutableGraph m(testing::PaperExampleGraph());
  // Pre-intern every term the writer thread uses (Intern is writer-locked
  // but concurrent Spell is not a safe race — src/rdf/dictionary.h).
  std::vector<Triple> batches;
  for (int i = 0; i < 64; ++i) {
    const TermId s = m.Intern("wave" + std::to_string(i));
    batches.push_back(Triple{s, graph_.rdf_type(), Id("Person")});
  }
  m.Insert({batches[0]});  // make the first compaction non-trivial

  // kgoa-lint: allow(raw-thread) writer racing the pool is the scenario under test
  std::thread writer([&]() {
    for (int i = 1; i < 64; ++i) {
      m.Insert({batches[static_cast<std::size_t>(i)]});
      if (i % 16 == 0) {
        m.Delete({batches[static_cast<std::size_t>(i)]});
      }
    }
  });
  // Race several folds against the writer: each fold's journal replay
  // must preserve every batch that landed mid-fold.
  for (int i = 0; i < 4; ++i) m.Compact();
  writer.join();
  m.Compact();

  const GraphSnapshot final_snapshot = m.snapshot();
  EXPECT_EQ(final_snapshot.overlay(), nullptr);
  for (int i = 0; i < 64; ++i) {
    const bool deleted = i > 0 && i % 16 == 0;
    EXPECT_EQ(final_snapshot.graph().Contains(
                  batches[static_cast<std::size_t>(i)]),
              !deleted)
        << "wave" << i;
  }
}

TEST_F(MutableGraphTest, CompactAsyncPublishesThroughTheServingPool) {
  MutableGraph m(testing::PaperExampleGraph());
  m.Insert(BatchInserts(m));
  {
    ServingCore::Options core_options;
    core_options.threads = 2;
    ServingCore core(m.snapshot(), core_options);
    MutableGraph::CompactTicket ticket = m.CompactAsync(core);
    ASSERT_TRUE(ticket.valid());
    EXPECT_EQ(ticket.Await(), 2u);
    EXPECT_TRUE(ticket.done());
    EXPECT_GT(core.stats().tasks_run, 0u);
  }
  EXPECT_EQ(m.stats().compactions, 1u);
  EXPECT_EQ(m.stats().overlay_adds, 0u);
}

// ---------------------------------------------------------------------------
// The acceptance matrix: pinned-epoch bit-identity under racing writes
// ---------------------------------------------------------------------------

// A budget job pinned on epoch N keeps producing epoch N's exact estimate
// while a writer thread lands batches and a compaction publishes N+1
// concurrently. The reference is an immutable build of the SAME triple
// set (a second MutableGraph compacted before serving — its base is the
// from-scratch build of the merged set, with identical TermIds because
// PaperExampleGraph interning is deterministic).
TEST_F(MutableGraphTest, PinnedEstimatesBitIdenticalAcrossThreadsAndTiers) {
  const ChainQuery query = Fig5();
  constexpr uint64_t kBudget = 1501;

  for (const StorageTier tier : {StorageTier::kRaw, StorageTier::kBlock}) {
    SCOPED_TRACE(tier == StorageTier::kRaw ? "raw" : "block");
    MutableGraph::Options options;
    options.index_options.tier = tier;

    // The reference: same batch, compacted to an immutable base BEFORE
    // serving (so its snapshot is a plain from-scratch IndexSet).
    MutableGraph reference_graph(testing::PaperExampleGraph(), options);
    reference_graph.Apply(BatchInserts(reference_graph), BatchDeletes());
    reference_graph.Compact();
    const GraphSnapshot reference_snapshot = reference_graph.snapshot();

    // The system under test: same batch pinned as an overlay view, with
    // a writer + compaction racing every serving below.
    MutableGraph m(testing::PaperExampleGraph(), options);
    m.Apply(BatchInserts(m), BatchDeletes());
    const GraphSnapshot pinned = m.snapshot();
    const uint64_t pinned_epoch = pinned.epoch();

    std::vector<Triple> noise;
    for (int i = 0; i < 32; ++i) {
      noise.push_back(Triple{m.Intern("noise" + std::to_string(i)),
                             graph_.rdf_type(), Id("Person")});
    }
    // kgoa-lint: allow(raw-thread) writer racing the pool is the scenario under test
    std::thread writer([&]() {
      for (const Triple& t : noise) {
        m.Insert({t});
      }
      m.Compact();
    });

    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads);
      ParallelOlaOptions run;
      run.workers = 8;  // fixed logical split: threads don't change it
      run.threads = threads;
      run.seed = 17;
      run.tipping_threshold = 2.0;
      run.walk_order = DefaultAuditOrder(query);

      const GroupedEstimates expected =
          ParallelOlaExecutor(reference_snapshot, query, run)
              .RunWalkBudget(kBudget)
              .estimates;
      const GroupedEstimates pinned_run =
          ParallelOlaExecutor(pinned, query, run).RunWalkBudget(kBudget)
              .estimates;
      ExpectBitIdentical(pinned_run, expected);
    }
    writer.join();

    // The pinned snapshot is still epoch N even though the writer
    // published far past it.
    EXPECT_EQ(pinned.epoch(), pinned_epoch);
    EXPECT_GT(m.epoch(), pinned_epoch);
  }
}

// Sharded serving pins ONE coherent epoch across every shard of a fan-out;
// the gather over a pinned overlay snapshot must equal the unsharded
// reference against the immutable rebuild, while writes race.
TEST_F(MutableGraphTest, ShardedPinnedEstimatesBitIdenticalAcrossShards) {
  const ChainQuery query = Fig5();
  constexpr uint64_t kBudget = 1501;
  constexpr int kWorkersPerShard = 2;

  MutableGraph reference_graph(testing::PaperExampleGraph());
  reference_graph.Apply(BatchInserts(reference_graph), BatchDeletes());
  reference_graph.Compact();
  const GraphSnapshot reference_snapshot = reference_graph.snapshot();

  MutableGraph m(testing::PaperExampleGraph());
  m.Apply(BatchInserts(m), BatchDeletes());
  const GraphSnapshot pinned = m.snapshot();

  std::vector<Triple> noise;
  for (int i = 0; i < 16; ++i) {
    noise.push_back(Triple{m.Intern("noise" + std::to_string(i)),
                           graph_.rdf_type(), Id("Person")});
  }
  // kgoa-lint: allow(raw-thread) writer racing the pool is the scenario under test
  std::thread writer([&]() {
    for (const Triple& t : noise) m.Insert({t});
    m.Compact();
  });

  for (const int shards : {1, 2, 4}) {
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    ParallelOlaOptions run;
    run.workers = shards * kWorkersPerShard;
    run.threads = 2;
    run.seed = 17;
    run.tipping_threshold = 2.0;
    run.walk_order = DefaultAuditOrder(query);
    const GroupedEstimates expected =
        ParallelOlaExecutor(reference_snapshot, query, run)
            .RunWalkBudget(kBudget)
            .estimates;

    ShardCoordinator::Options coord_options;
    coord_options.num_shards = shards;
    coord_options.threads_per_shard = 2;
    coord_options.build_slices = false;
    ShardCoordinator coordinator(pinned, coord_options);
    ShardChartOptions chart;
    chart.walk_budget = kBudget;
    chart.workers_per_shard = kWorkersPerShard;
    chart.seed = 17;
    chart.tipping_threshold = 2.0;
    chart.snapshot = pinned;
    ExpectBitIdentical(coordinator.Submit(query, chart).Await().estimates,
                       expected);
  }
  writer.join();
}

// ---------------------------------------------------------------------------
// Explorer facade + epoch-aware caches
// ---------------------------------------------------------------------------

TEST_F(MutableGraphTest, ExplorerWritePathPublishesEpochsAndEvictsCaches) {
  Explorer explorer(testing::PaperExampleGraph());
  const ChainQuery query = Fig5();
  EXPECT_EQ(explorer.epoch(), 0u);

  // Warm an epoch-0 reach cache.
  (void)explorer.ApproximateChart(query, /*seconds=*/0.005, BarKind::kClass);
  EXPECT_EQ(explorer.metrics().Counter("explorer.reach.plans"), 1u);

  // A write publishes epoch 1 and evicts the superseded plan cache.
  const TermId zeno = explorer.Intern("zeno");
  EXPECT_EQ(explorer.Insert({Triple{zeno, graph_.rdf_type(), Id("Person")}}),
            1u);
  EXPECT_EQ(explorer.epoch(), 1u);
  EXPECT_EQ(explorer.metrics().Counter("epoch.current"), 1u);
  EXPECT_EQ(explorer.metrics().Counter("epoch.overlay_adds"), 1u);
  EXPECT_EQ(explorer.metrics().Counter("explorer.reach.stale_evictions"),
            1u);

  // Serving after the write sees the new epoch (fresh plan cache) and the
  // inserted triple's contribution flows into the estimate path.
  (void)explorer.ApproximateChart(query, /*seconds=*/0.005, BarKind::kClass);
  EXPECT_EQ(explorer.metrics().Counter("explorer.reach.plans"), 1u);
  EXPECT_EQ(explorer.metrics().Counter("explorer.reach.plan_misses"), 2u);

  // Compaction folds the overlay and bumps the epoch again.
  const uint64_t compacted_epoch = explorer.Compact();
  EXPECT_EQ(compacted_epoch, 2u);
  EXPECT_EQ(explorer.metrics().Counter("epoch.compactions"), 1u);
  EXPECT_EQ(explorer.metrics().Counter("epoch.overlay_adds"), 0u);
  EXPECT_TRUE(explorer.graph().Contains(
      Triple{zeno, graph_.rdf_type(), Id("Person")}));

  // Exact evaluation answers for the current version.
  const GroupedResult exact = explorer.Evaluate(query);
  const GroupedResult brute =
      testing::BruteForce(explorer.graph(), query);
  EXPECT_EQ(exact.counts, brute.counts);
}

TEST_F(MutableGraphTest, ExplorerCompactAsyncTicketCompletes) {
  Explorer explorer(testing::PaperExampleGraph());
  const TermId zeno = explorer.Intern("zeno");
  explorer.Insert({Triple{zeno, graph_.rdf_type(), Id("Person")}});
  MutableGraph::CompactTicket ticket = explorer.CompactAsync();
  ASSERT_TRUE(ticket.valid());
  EXPECT_EQ(ticket.Await(), 2u);
  EXPECT_EQ(explorer.graph_stats().compactions, 1u);
}

TEST_F(MutableGraphTest, ChartCacheKeysOnEpoch) {
  ChartCache cache;
  const ChainQuery query = Fig5();
  GroupedResult epoch0;
  epoch0.counts[1] = 10;
  GroupedResult epoch1;
  epoch1.counts[1] = 11;
  cache.Insert(query, epoch0, /*epoch=*/0);
  cache.Insert(query, epoch1, /*epoch=*/1);
  ASSERT_NE(cache.Lookup(query, 0), nullptr);
  ASSERT_NE(cache.Lookup(query, 1), nullptr);
  EXPECT_EQ(cache.Lookup(query, 0)->counts.at(1), 10u);
  EXPECT_EQ(cache.Lookup(query, 1)->counts.at(1), 11u);
  EXPECT_EQ(cache.Lookup(query, 2), nullptr);
}

TEST_F(MutableGraphTest, ReachRegistryKeysOnEpochAndEvictsStale) {
  MutableGraph m(testing::PaperExampleGraph());
  const ChainQuery query = Fig5();
  ReachCacheRegistry registry;

  const GraphSnapshot epoch0 = m.snapshot();
  AcquiredReach first = registry.Acquire(query, {}, epoch0);
  ASSERT_NE(first.reach, nullptr);
  EXPECT_EQ(first.epoch, 0u);

  m.Insert(BatchInserts(m));
  const GraphSnapshot epoch1 = m.snapshot();
  AcquiredReach second = registry.Acquire(query, {}, epoch1);
  EXPECT_NE(second.reach, first.reach);  // distinct epoch, distinct memos
  EXPECT_EQ(registry.plans(), 2u);

  // Evicting for the current epoch drops only the superseded entry; the
  // keepalive keeps the handed-out cache (and its pinned version) valid.
  EXPECT_EQ(registry.EvictStale(epoch1.epoch()), 1u);
  EXPECT_EQ(registry.plans(), 1u);
  EXPECT_GE(first.reach->stats().entries, 0u);  // still safe to probe
}

// ---------------------------------------------------------------------------
// Contracts
// ---------------------------------------------------------------------------

using MutableGraphDeathTest = MutableGraphTest;

TEST_F(MutableGraphDeathTest, ReleasedSnapshotTripsTheContract) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MutableGraph m(testing::PaperExampleGraph());
  GraphSnapshot snapshot = m.snapshot();
  snapshot.Release();
  EXPECT_FALSE(snapshot.valid());
  EXPECT_DEATH((void)snapshot.epoch(),
               "use of an invalid or released GraphSnapshot");
  EXPECT_DEATH((void)snapshot.indexes(),
               "use of an invalid or released GraphSnapshot");
}

TEST_F(MutableGraphTest, SnapshotCountersTrackPinnedVersions) {
  MutableGraph m(testing::PaperExampleGraph());
  EXPECT_EQ(m.stats().snapshots_pinned, 1u);  // the current version
  GraphSnapshot pinned = m.snapshot();
  m.Insert(BatchInserts(m));
  EXPECT_EQ(m.stats().snapshots_pinned, 2u);  // epoch 0 pinned + current
  pinned.Release();
  EXPECT_EQ(m.stats().snapshots_pinned, 1u);
  EXPECT_EQ(m.stats().batches_applied, 1u);
}

}  // namespace
}  // namespace kgoa
