// TSA harness violation snippet (tests/tsa_compile_test.cmake): reads
// and writes a KGOA_GUARDED_BY field with no lock held. MUST FAIL to
// compile under -Werror=thread-safety; if it compiles, the analysis (or
// the KGOA_GUARDED_BY macro) is broken.
#include "src/util/sync.h"

namespace {

class Counter {
 public:
  // Violation: value_ is guarded by mutex_, which is never acquired.
  void Increment() { ++value_; }
  int Get() const { return value_; }

 private:
  mutable kgoa::Mutex mutex_;
  int value_ KGOA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Get();
}
