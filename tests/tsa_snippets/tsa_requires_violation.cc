// TSA harness violation snippet (tests/tsa_compile_test.cmake): calls a
// KGOA_REQUIRES function without holding the named mutex — the
// unannotated-lock-access pattern (caller "forgot" the lock entirely).
// MUST FAIL to compile under -Werror=thread-safety.
#include "src/util/sync.h"

namespace {

class Counter {
 public:
  void IncrementLocked() KGOA_REQUIRES(mutex_) { ++value_; }

  // Violation: the REQUIRES contract is called with mutex_ not held.
  void Increment() { IncrementLocked(); }

 private:
  kgoa::Mutex mutex_;
  int value_ KGOA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
