// TSA harness control snippet (tests/tsa_compile_test.cmake): correct
// lock discipline over the annotated wrappers. MUST compile cleanly under
// -Werror=thread-safety — otherwise the harness's "violation snippets
// fail to compile" results would prove nothing.
#include "src/util/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    kgoa::MutexLock lock(mutex_);
    ++value_;
  }

  int Get() const {
    kgoa::MutexLock lock(mutex_);
    return value_;
  }

  void IncrementLocked() KGOA_REQUIRES(mutex_) { ++value_; }

  void IncrementViaHelper() {
    kgoa::MutexLock lock(mutex_);
    IncrementLocked();
  }

  void TryIncrement() {
    if (!mutex_.TryLock()) return;
    kgoa::MutexLock lock(mutex_, kgoa::kAdoptLock);
    ++value_;
  }

 private:
  mutable kgoa::Mutex mutex_;
  int value_ KGOA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  counter.IncrementViaHelper();
  counter.TryIncrement();
  return counter.Get() == 3 ? 0 : 1;
}
