// Tests for src/gen: synthetic KG generation and the random exploration
// workload generator.
#include <set>
#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/gen/kg_gen.h"
#include "src/gen/workload.h"
#include "src/gen/workload_io.h"
#include "src/join/ctj.h"
#include "src/rdf/schema.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

KgSpec TinySpec(uint64_t seed = 1) {
  KgSpec spec;
  spec.seed = seed;
  spec.num_classes = 12;
  spec.num_properties = 6;
  spec.num_entities = 300;
  spec.num_property_triples = 1500;
  spec.num_literals = 40;
  return spec;
}

TEST(KgGen, Deterministic) {
  Graph a = GenerateKg(TinySpec());
  Graph b = GenerateKg(TinySpec());
  EXPECT_EQ(a.NumTriples(), b.NumTriples());
  EXPECT_EQ(a.triples(), b.triples());
}

TEST(KgGen, DifferentSeedsDiffer) {
  Graph a = GenerateKg(TinySpec(1));
  Graph b = GenerateKg(TinySpec(2));
  EXPECT_NE(a.triples(), b.triples());
}

TEST(KgGen, TaxonomyIsRootedAtThing) {
  Graph g = GenerateKg(TinySpec());
  ClassHierarchy hierarchy(g);
  const auto roots = hierarchy.Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], g.owl_thing());
}

TEST(KgGen, TypesAreClosedUnderSubclass) {
  // The generator materializes the closure: re-materializing must not add
  // any triple.
  Graph g = GenerateKg(TinySpec());
  Graph closed = MaterializeSubclassClosure(g);
  EXPECT_EQ(g.NumTriples(), closed.NumTriples());
}

TEST(KgGen, EveryEntityIsAThing) {
  Graph g = GenerateKg(TinySpec());
  std::unordered_set<TermId> subjects, things;
  for (const Triple& t : g.triples()) {
    if (t.p == g.rdf_type()) {
      subjects.insert(t.s);
      if (t.o == g.owl_thing()) things.insert(t.s);
    }
  }
  EXPECT_EQ(subjects, things);
}

TEST(KgGen, ClassSizesAreSkewed) {
  Graph g = GenerateKg(TinySpec());
  std::unordered_map<TermId, int> sizes;
  for (const Triple& t : g.triples()) {
    if (t.p == g.rdf_type()) ++sizes[t.o];
  }
  int max_size = 0, min_size = 1 << 30;
  for (const auto& [cls, size] : sizes) {
    max_size = std::max(max_size, size);
    if (cls != g.owl_thing()) min_size = std::min(min_size, size);
  }
  EXPECT_GT(max_size, 4 * std::max(min_size, 1));
}

TEST(KgGen, PresetsHaveDocumentedShape) {
  const KgSpec dbp = DbpediaLikeSpec(0.01);
  const KgSpec lgd = LgdLikeSpec(0.01);
  EXPECT_GT(dbp.num_classes, lgd.num_classes);      // DBpedia: many classes
  EXPECT_GT(lgd.num_property_triples, 2 * dbp.num_property_triples);
  Graph g = GenerateKg(dbp);
  EXPECT_GT(g.NumTriples(), 10000u);
}

TEST(Workload, GeneratesNonEmptyDedupedQueries) {
  Graph g = GenerateKg(TinySpec());
  IndexSet indexes(g);
  WorkloadOptions options;
  options.num_paths = 10;
  options.max_steps = 4;
  const auto workload = GenerateWorkload(g, indexes, options);
  ASSERT_FALSE(workload.empty());

  std::set<std::string> rendered;
  CtjEngine engine(indexes);
  for (const auto& eq : workload) {
    EXPECT_GE(eq.step, 1);
    EXPECT_LE(eq.step, 4);
    EXPECT_TRUE(eq.query.distinct());
    EXPECT_FALSE(eq.exact.counts.empty());
    // Stored ground truth matches a fresh evaluation.
    EXPECT_EQ(engine.Evaluate(eq.query), eq.exact);
    EXPECT_TRUE(rendered.insert(eq.query.ToSparql()).second)
        << "duplicate query in workload";
  }
}

TEST(Workload, DeterministicGivenSeed) {
  Graph g = GenerateKg(TinySpec());
  IndexSet indexes(g);
  WorkloadOptions options;
  options.num_paths = 5;
  const auto a = GenerateWorkload(g, indexes, options);
  const auto b = GenerateWorkload(g, indexes, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query.ToSparql(), b[i].query.ToSparql());
  }
}

TEST(WorkloadIo, RoundTripsThroughSparqlText) {
  Graph g = GenerateKg(TinySpec());
  IndexSet indexes(g);
  WorkloadOptions options;
  options.num_paths = 6;
  const auto workload = GenerateWorkload(g, indexes, options);
  ASSERT_FALSE(workload.empty());

  std::ostringstream out;
  WriteWorkload(workload, g, out);

  std::istringstream in(out.str());
  std::string error;
  const auto reloaded = ReadWorkload(in, g, indexes, &error);
  ASSERT_EQ(reloaded.size(), workload.size()) << error;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(reloaded[i].step, workload[i].step);
    EXPECT_EQ(reloaded[i].exact, workload[i].exact)
        << workload[i].query.ToSparql(&g.dict());
    EXPECT_EQ(reloaded[i].query.distinct(), workload[i].query.distinct());
    EXPECT_EQ(reloaded[i].query.NumPatterns(),
              workload[i].query.NumPatterns());
  }
}

TEST(WorkloadIo, ReportsMalformedBlocks) {
  Graph g = GenerateKg(TinySpec());
  IndexSet indexes(g);
  std::istringstream in("SELECT ?x COUNT(?x) WHERE { broken } GROUP BY ?x\n");
  std::string error;
  const auto reloaded = ReadWorkload(in, g, indexes, &error);
  EXPECT_TRUE(reloaded.empty());
  EXPECT_FALSE(error.empty());
}

TEST(WorkloadIo, EmptyInputIsEmptyWorkload) {
  Graph g = GenerateKg(TinySpec());
  IndexSet indexes(g);
  std::istringstream in("# kgoa workload v1\n\n");
  std::string error;
  EXPECT_TRUE(ReadWorkload(in, g, indexes, &error).empty());
  EXPECT_TRUE(error.empty());
}

TEST(Workload, StepsReachDepthGreaterThanOne) {
  Graph g = GenerateKg(TinySpec());
  IndexSet indexes(g);
  WorkloadOptions options;
  options.num_paths = 15;
  const auto workload = GenerateWorkload(g, indexes, options);
  int max_step = 0;
  for (const auto& eq : workload) max_step = std::max(max_step, eq.step);
  EXPECT_GE(max_step, 2);
}

}  // namespace
}  // namespace kgoa
