// Tests for the Ripple Join baseline (src/ola/ripple.h).
#include <gtest/gtest.h>

#include "src/ola/ripple.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

class RippleTest : public ::testing::Test {
 protected:
  RippleTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

TEST_F(RippleTest, ExhaustsToExactCounts) {
  for (bool distinct : {true, false}) {
    const ChainQuery query = Fig5(distinct);
    const GroupedResult exact = testing::BruteForce(graph_, query);
    RippleJoin ripple(indexes_, query);
    while (!ripple.exhausted()) ripple.RunRound();
    EXPECT_DOUBLE_EQ(ripple.MinCoverage(), 1.0);
    for (const auto& [group, count] : exact.counts) {
      EXPECT_NEAR(ripple.Estimate(group), static_cast<double>(count), 1e-9)
          << (distinct ? "distinct" : "plain");
    }
    // No spurious groups at full coverage.
    for (const auto& [group, estimate] : ripple.Estimates()) {
      EXPECT_NEAR(estimate, static_cast<double>(exact.CountFor(group)),
                  1e-9);
    }
  }
}

TEST_F(RippleTest, SmallBatchesConvergeMonotonicallyInCoverage) {
  RippleJoin::Options options;
  options.batch_per_round = 2;
  RippleJoin ripple(indexes_, Fig5(false), options);
  double last_coverage = 0.0;
  for (int round = 0; round < 50 && !ripple.exhausted(); ++round) {
    ripple.RunRound();
    EXPECT_GE(ripple.MinCoverage(), last_coverage);
    last_coverage = ripple.MinCoverage();
  }
}

TEST_F(RippleTest, UnbiasedForCountOverManySeeds) {
  // Average the round-1 estimate over many independent runs; the mean
  // must approach the exact count (unbiasedness of the scaled estimator).
  const ChainQuery query = Fig5(false);
  const GroupedResult exact = testing::BruteForce(graph_, query);
  const TermId city = Id("City");
  const auto exact_city = static_cast<double>(exact.CountFor(city));

  double sum = 0;
  const int runs = 4000;
  for (int seed = 1; seed <= runs; ++seed) {
    RippleJoin::Options options;
    options.seed = static_cast<uint64_t>(seed);
    options.batch_per_round = 3;
    RippleJoin ripple(indexes_, query, options);
    ripple.RunRound();
    sum += ripple.Estimate(city);
  }
  EXPECT_NEAR(sum / runs, exact_city, 0.15 * exact_city);
}

TEST_F(RippleTest, HandlesEmptyExtent) {
  // A pattern with no matching triples: estimates stay empty, rounds are
  // safe, and the join is (exactly) empty once exhausted.
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(Id("influencedBy")), V(1)),
       MakePattern(V(1), C(Id("influencedBy")), V(2)),
       MakePattern(V(2), C(Id("influencedBy")), V(3))},
      3, 2, true);
  ASSERT_TRUE(q.has_value());
  RippleJoin ripple(indexes_, *q);
  for (int i = 0; i < 5; ++i) ripple.RunRound();
  // influencedBy chains of length 3: aristotle->plato->socrates has no
  // third hop, so the result is empty.
  EXPECT_TRUE(ripple.exhausted());
  EXPECT_TRUE(ripple.Estimates().empty());
}

TEST_F(RippleTest, RespectsFilters) {
  std::vector<std::vector<TypeFilter>> filters(2);
  filters[1].push_back(
      TypeFilter{kObject, graph_.rdf_type(), Id("Philosopher")});
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
       MakePattern(V(0), C(Id("influencedBy")), V(1))},
      filters, 1, 0, true);
  ASSERT_TRUE(q.has_value());
  const GroupedResult exact = testing::BruteForce(graph_, *q);
  RippleJoin ripple(indexes_, *q);
  while (!ripple.exhausted()) ripple.RunRound();
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(ripple.Estimate(group), static_cast<double>(count), 1e-9);
  }
  EXPECT_EQ(ripple.Estimates().size(), exact.counts.size());
}

}  // namespace
}  // namespace kgoa
