// Shared helpers for the kgoa test suite: small deterministic graphs,
// random graph/query generation, and an independent brute-force evaluator
// used as the reference implementation in cross-engine agreement and
// unbiasedness tests.
#ifndef KGOA_TESTS_TEST_UTIL_H_
#define KGOA_TESTS_TEST_UTIL_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/join/result.h"
#include "src/query/chain_query.h"
#include "src/rdf/graph.h"
#include "src/rdf/vocab.h"
#include "src/util/rng.h"

namespace kgoa::testing {

// A small fixed graph modeled on the paper's running example: a class
// hierarchy Thing > Agent > Person > Philosopher, an "influencedBy"
// relation, and birth places. Types are materialized through the closure.
inline Graph PaperExampleGraph() {
  GraphBuilder b;
  const char* nt_type = vocab::kRdfType;
  const char* nt_sub = vocab::kRdfsSubClassOf;
  const char* thing = vocab::kOwlThing;

  auto add = [&](const std::string& s, const std::string& p,
                 const std::string& o) { b.AddSpelled(s, p, o); };

  add("Agent", nt_sub, thing);
  add("Person", nt_sub, "Agent");
  add("Philosopher", nt_sub, "Person");
  add("Place", nt_sub, thing);
  add("City", nt_sub, "Place");

  // plato, aristotle: philosophers; socrates: person; athens: city.
  const std::vector<std::pair<std::string, std::vector<std::string>>> types =
      {{"plato", {"Philosopher", "Person", "Agent", thing}},
       {"aristotle", {"Philosopher", "Person", "Agent", thing}},
       {"socrates", {"Person", "Agent", thing}},
       {"parmenides", {"Person", "Agent", thing}},
       {"athens", {"City", "Place", thing}},
       {"stagira", {"City", "Place", thing}}};
  for (const auto& [entity, classes] : types) {
    for (const auto& cls : classes) add(entity, nt_type, cls);
  }

  add("plato", "influencedBy", "socrates");
  add("plato", "influencedBy", "parmenides");
  add("aristotle", "influencedBy", "plato");
  add("aristotle", "influencedBy", "socrates");
  add("plato", "birthPlace", "athens");
  add("socrates", "birthPlace", "athens");
  add("aristotle", "birthPlace", "stagira");

  return std::move(b).Build();
}

// Random graph over small universes; may include rdf:type triples so that
// filters have something to probe.
struct RandomGraphSpec {
  int num_entities = 12;
  int num_properties = 3;
  int num_classes = 3;
  int num_property_triples = 40;
  int num_type_triples = 15;
};

inline Graph RandomGraph(Rng& rng, const RandomGraphSpec& spec = {}) {
  GraphBuilder b;
  std::vector<TermId> entities, properties, classes;
  for (int i = 0; i < spec.num_entities; ++i) {
    entities.push_back(b.Intern("e" + std::to_string(i)));
  }
  for (int i = 0; i < spec.num_properties; ++i) {
    properties.push_back(b.Intern("p" + std::to_string(i)));
  }
  for (int i = 0; i < spec.num_classes; ++i) {
    classes.push_back(b.Intern("c" + std::to_string(i)));
  }
  const TermId type_id = b.Intern(vocab::kRdfType);
  for (int i = 0; i < spec.num_property_triples; ++i) {
    b.Add(entities[rng.Below(entities.size())],
          properties[rng.Below(properties.size())],
          entities[rng.Below(entities.size())]);
  }
  for (int i = 0; i < spec.num_type_triples; ++i) {
    b.Add(entities[rng.Below(entities.size())], type_id,
          classes[rng.Below(classes.size())]);
  }
  return std::move(b).Build();
}

// Independent reference evaluator: naive backtracking over all triples.
// Intentionally shares no code with the engines under test.
inline GroupedResult BruteForce(const Graph& graph, const ChainQuery& query) {
  const auto& patterns = query.patterns();
  std::unordered_map<VarId, TermId> binding;
  std::unordered_set<uint64_t> pairs;
  GroupedResult result;

  // Existence check for filters.
  auto passes = [&](int pi, const Triple& t) {
    for (const TypeFilter& f : query.filters(pi)) {
      if (!graph.Contains(Triple{t[f.component], f.property, f.value})) {
        return false;
      }
    }
    return true;
  };

  auto match = [&](auto&& self, std::size_t pi) -> void {
    if (pi == patterns.size()) {
      const TermId a = binding.at(query.alpha());
      const TermId beta = binding.at(query.beta());
      if (query.distinct()) {
        if (pairs.insert(PackPair(a, beta)).second) ++result.counts[a];
      } else {
        ++result.counts[a];
      }
      return;
    }
    const TriplePattern& p = patterns[pi];
    for (const Triple& t : graph.triples()) {
      bool ok = true;
      std::vector<VarId> bound_here;
      for (int c = 0; c < 3 && ok; ++c) {
        if (p[c].is_var()) {
          auto it = binding.find(p[c].var());
          if (it == binding.end()) {
            binding[p[c].var()] = t[c];
            bound_here.push_back(p[c].var());
          } else if (it->second != t[c]) {
            ok = false;
          }
        } else if (p[c].term() != t[c]) {
          ok = false;
        }
      }
      // A variable repeated inside the pattern must agree with itself;
      // handled above because the second occurrence finds the binding.
      if (ok && passes(static_cast<int>(pi), t)) self(self, pi + 1);
      for (VarId v : bound_here) binding.erase(v);
    }
  };
  match(match, 0);
  return result;
}

// Random chain query over the terms of `graph`: a path of `length`
// patterns with fresh link variables; constants drawn from the graph.
// Returns nullopt when the sampled shape is invalid (caller retries).
inline std::optional<ChainQuery> RandomChainQuery(Rng& rng,
                                                  const Graph& graph,
                                                  int length,
                                                  bool distinct) {
  std::vector<TriplePattern> patterns;
  VarId next_var = 0;
  VarId prev_link = kNoVar;

  auto random_term = [&]() -> TermId {
    const auto& triples = graph.triples();
    const Triple& t = triples[rng.Below(triples.size())];
    const int c = static_cast<int>(rng.Below(3));
    return t[c];
  };

  for (int i = 0; i < length; ++i) {
    std::array<Slot, 3> slots = {Slot::MakeConst(0), Slot::MakeConst(0),
                                 Slot::MakeConst(0)};
    // Choose roles: the incoming link (except first), an outgoing link
    // (except last), and fill the rest with constants or fresh vars.
    std::vector<int> components{0, 1, 2};
    // Shuffle components.
    for (int c = 2; c > 0; --c) {
      std::swap(components[c], components[rng.Below(c + 1)]);
    }
    int idx = 0;
    VarId in_var = prev_link;
    if (i > 0) slots[components[idx++]] = Slot::MakeVar(in_var);
    VarId out_var = kNoVar;
    if (i + 1 < length) {
      out_var = next_var++;
      slots[components[idx++]] = Slot::MakeVar(out_var);
    }
    while (idx < 3) {
      if (rng.Below(2) == 0) {
        slots[components[idx]] = Slot::MakeVar(next_var++);
      } else {
        slots[components[idx]] = Slot::MakeConst(random_term());
      }
      ++idx;
    }
    // Engines require an index-order prefix for every access path they may
    // take (constants plus any one bound variable). The only uncoverable
    // component set is {subject, object}, so a constant subject or object
    // is allowed only when the predicate is constant too — which is also
    // the only shape real exploration queries produce. Free the offending
    // slots otherwise.
    if (slots[kPredicate].is_var()) {
      if (!slots[kSubject].is_var()) slots[kSubject] = Slot::MakeVar(next_var++);
      if (!slots[kObject].is_var()) slots[kObject] = Slot::MakeVar(next_var++);
    }
    patterns.push_back(TriplePattern{slots});
    prev_link = out_var;
  }

  // Alpha/beta: two variables of one pattern (may coincide across roles).
  std::vector<std::pair<VarId, VarId>> candidates;
  for (const TriplePattern& p : patterns) {
    const auto vars = p.Vars();
    for (VarId a : vars) {
      for (VarId bvar : vars) candidates.emplace_back(a, bvar);
    }
  }
  if (candidates.empty()) return std::nullopt;
  const auto [alpha, beta] = candidates[rng.Below(candidates.size())];
  return ChainQuery::Create(std::move(patterns), alpha, beta, distinct);
}

}  // namespace kgoa::testing

#endif  // KGOA_TESTS_TEST_UTIL_H_
