// Tests for the annotated synchronization wrappers (src/util/sync.h) and
// the lock-discipline contracts the thread-safety-analysis PR pinned
// down:
//
//  * kgoa::Mutex / MutexLock / CondVar behave like the std primitives
//    they wrap (scoped release, adopt-after-TryLock, mid-scope
//    unlock/relock, predicate waits absorbing spurious wakeups);
//  * ParallelOlaExecutor's lazy core construction is race-free — the
//    annotation era surfaced that const Run* calls built the private
//    ServingCore behind no lock, so two threads' FIRST calls could
//    construct two pools (regression: ConcurrentExecutorRunsShareOneCore,
//    which tier-1 also runs under TSan);
//  * the documented lock ordering (DESIGN.md §11): the serving core's
//    scheduler mutex is never held across user callbacks, and the
//    coordinator/registry mutexes are leaves — so a snapshot callback may
//    re-enter stats(), Snapshot(), even a whole scatter-gather
//    Submit+Await, without deadlock (CallbackRunsOutsideSchedulerLock).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/ola/parallel.h"
#include "src/shard/coordinator.h"
#include "src/util/sync.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

void ExpectBitIdentical(const GroupedEstimates& a,
                        const GroupedEstimates& b) {
  EXPECT_EQ(a.walks(), b.walks());
  EXPECT_EQ(a.rejected_walks(), b.rejected_walks());
  const auto ea = a.Estimates();
  const auto eb = b.Estimates();
  ASSERT_EQ(ea.size(), eb.size());
  for (const auto& [group, estimate] : ea) {
    const auto it = eb.find(group);
    ASSERT_NE(it, eb.end());
    EXPECT_EQ(estimate, it->second) << "group " << group;
    EXPECT_EQ(a.CiHalfWidth(group), b.CiHalfWidth(group))
        << "group " << group;
  }
}

// ---------------------------------------------------------------------------
// Wrapper behavior
// ---------------------------------------------------------------------------

TEST(SyncTest, MutexLockSerializesIncrements) {
  Mutex mutex;
  int counter = 0;  // guarded by mutex (by convention in this test)
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;  // kgoa-lint: allow(raw-thread) clients
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  // kgoa-lint: allow(raw-thread) joining the client harness
  for (std::thread& t : threads) t.join();
  MutexLock lock(mutex);
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(SyncTest, TryLockAdoptAndContention) {
  Mutex mutex;
  ASSERT_TRUE(mutex.TryLock());
  {
    // Adopt the TryLock acquisition; scope exit releases it.
    MutexLock lock(mutex, kAdoptLock);
    // Another thread must see the mutex held. (try_lock on the owning
    // thread would be UB, hence the hop.)
    std::atomic<bool> other_got_it{true};
    // kgoa-lint: allow(raw-thread) cross-thread TryLock probe
    std::thread prober([&] {
      if (mutex.TryLock()) {
        mutex.Unlock();
      } else {
        other_got_it.store(false, std::memory_order_release);
      }
    });
    prober.join();
    EXPECT_FALSE(other_got_it.load(std::memory_order_acquire));
  }
  // Released by the adopt guard: acquirable again.
  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(SyncTest, MidScopeUnlockRelock) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
    lock.Unlock();
    // The long-computation window: the mutex must be free here.
    ASSERT_TRUE(mutex.TryLock());
    mutex.Unlock();
    lock.Lock();
  }
  // The re-acquired lock was released by the destructor.
  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(SyncTest, CondVarPredicateWaitAndTimeout) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;  // guarded by mutex

  {
    // WaitFor with a predicate that never turns true: times out false.
    MutexLock lock(mutex);
    EXPECT_FALSE(cv.WaitFor(mutex, std::chrono::milliseconds(5),
                            [&] { return ready; }));
  }

  // kgoa-lint: allow(raw-thread) producer side of the handshake
  std::thread producer([&] {
    MutexLock lock(mutex);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mutex);
    cv.Wait(mutex, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

// ---------------------------------------------------------------------------
// Executor lazy-core construction race (pinning regression)
// ---------------------------------------------------------------------------

// Before the TSA migration, ParallelOlaExecutor::Core() built the private
// ServingCore inside a const method with no synchronization, so
// concurrent FIRST Run* calls raced the construction (two pools, one
// leaked/cross-freed). Core() is now guarded by core_mutex_; this test
// drives four simultaneous first calls (under TSan in tier-1) and checks
// the budget-mode contract still holds for every caller: each result is
// bit-identical to a solo run with the same (query, seed, budget,
// workers) — regardless of which thread's call constructed the pool.
TEST(SyncTest, ConcurrentExecutorRunsShareOneCore) {
  Graph graph = testing::PaperExampleGraph();
  IndexSet indexes(graph);
  auto query = ChainQuery::Create(
      {MakePattern(V(0), C(graph.rdf_type()),
                   C(graph.dict().Lookup("Person"))),
       MakePattern(V(0), C(graph.dict().Lookup("birthPlace")), V(1)),
       MakePattern(V(1), C(graph.rdf_type()), V(2))},
      2, 1, /*distinct=*/true);
  ASSERT_TRUE(query.has_value());

  ParallelOlaOptions options;
  options.threads = 2;
  options.workers = 4;
  options.seed = 7;
  constexpr uint64_t kBudget = 20000;

  const ParallelOlaResult solo =
      ParallelOlaExecutor(indexes, *query, options).RunWalkBudget(kBudget);

  ParallelOlaExecutor shared(indexes, *query, options);
  constexpr int kCallers = 4;
  std::vector<ParallelOlaResult> results(kCallers);
  std::vector<std::thread> callers;  // kgoa-lint: allow(raw-thread)
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = shared.RunWalkBudget(kBudget);
    });
  }
  // kgoa-lint: allow(raw-thread) joining the concurrent first-Run clients
  for (std::thread& t : callers) t.join();

  for (const ParallelOlaResult& result : results) {
    ExpectBitIdentical(solo.estimates, result.estimates);
  }
}

// ---------------------------------------------------------------------------
// Lock-order pinning (DESIGN.md §11)
// ---------------------------------------------------------------------------

// The capability model's ordering rules, each of which this test would
// turn into a deadlock if regressed:
//   * the serving core's scheduler mutex is NEVER held across user code —
//     so a snapshot callback may call stats() and Snapshot() on its own
//     core/job;
//   * the coordinator and registry mutexes are leaves, never nested with
//     a scheduler mutex — so a callback may even run a whole
//     scatter-gather Submit + Await against another deployment.
TEST(SyncTest, CallbackRunsOutsideSchedulerLock) {
  Graph graph = testing::PaperExampleGraph();
  IndexSet indexes(graph);
  auto query = ChainQuery::Create(
      {MakePattern(V(0), C(graph.rdf_type()),
                   C(graph.dict().Lookup("Person"))),
       MakePattern(V(0), C(graph.dict().Lookup("birthPlace")), V(1)),
       MakePattern(V(1), C(graph.rdf_type()), V(2))},
      2, 1, /*distinct=*/true);
  ASSERT_TRUE(query.has_value());

  ServingCore::Options core_options;
  core_options.threads = 1;  // one worker: any held-lock re-entry deadlocks
  core_options.quantum_walks = 64;
  ServingCore core(indexes, core_options);

  ShardCoordinator::Options shard_options;
  shard_options.num_shards = 2;
  shard_options.threads_per_shard = 1;
  shard_options.build_slices = false;
  ShardCoordinator coordinator(graph, indexes, shard_options);

  struct Shared {
    Mutex mutex;
    ChartHandle handle KGOA_GUARDED_BY(mutex);
    std::atomic<bool> armed{false};
    std::atomic<bool> fired{false};
  };
  auto shared = std::make_shared<Shared>();

  ChartJobOptions job;
  job.walk_budget = 1ull << 40;  // runs until the callback finishes it
  job.workers = 2;
  job.seed = 3;
  job.snapshot_period = 0.0;  // every quantum
  job.on_snapshot = [&, shared](const OlaSnapshot& snapshot) {
    if (snapshot.final_snapshot) return;
    if (!shared->armed.load(std::memory_order_acquire)) return;
    if (shared->fired.exchange(true, std::memory_order_acq_rel)) return;
    // Scheduler-lock re-entry: both take the core's state mutex.
    const ServeStats stats = core.stats();
    EXPECT_GE(stats.jobs_submitted, 1u);
    ChartHandle handle;
    {
      MutexLock lock(shared->mutex);
      handle = shared->handle;
    }
    EXPECT_GE(handle.Snapshot().estimates.walks(), 0u);
    // Leaf-mutex ordering: a full scatter-gather against another
    // deployment from inside this callback (coordinator mutex, registry
    // mutex, two other scheduler mutexes — none nested with ours).
    ShardChartOptions fan;
    fan.walk_budget = 512;
    fan.workers_per_shard = 1;
    fan.seed = 5;
    const ParallelOlaResult gathered =
        coordinator.Submit(*query, fan).Await();
    EXPECT_EQ(gathered.estimates.walks(), 512u);
    EXPECT_GE(coordinator.stats().jobs_submitted, 1u);
    handle.Finish();
  };

  ChartHandle handle = core.Submit(*query, job);
  {
    MutexLock lock(shared->mutex);
    shared->handle = handle;
  }
  shared->armed.store(true, std::memory_order_release);

  const ParallelOlaResult result = handle.Await();
  EXPECT_TRUE(shared->fired.load(std::memory_order_acquire));
  EXPECT_EQ(handle.state(), ChartJobState::kDone);  // Finish(), not Cancel()
  EXPECT_GT(result.estimates.walks(), 0u);
}

}  // namespace
}  // namespace kgoa
