// Unit tests for src/util: rng, zipf, stats, flags, table.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/zipf.h"

namespace kgoa {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Below(5);
    ASSERT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.Below(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);  // within 10% of expectation
  }
}

TEST(Zipf, MassesSumToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0;
  for (uint64_t r = 0; r < zipf.size(); ++r) total += zipf.Mass(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroIsHeaviest) {
  ZipfSampler zipf(50, 1.0);
  for (uint64_t r = 1; r < 50; ++r) EXPECT_GT(zipf.Mass(0), zipf.Mass(r));
}

TEST(Zipf, EmpiricalMatchesMass) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.Mass(r), 0.01);
  }
}

TEST(Zipf, SingleElement) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_NEAR(zipf.Mass(0), 1.0, 1e-12);
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(SampleVariance(xs), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({42.0}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 25.0);
}

// The sorted-input path must be bit-identical to the copy-and-sort path
// (MakeTukeyBox relies on that to compute a box with one sort).
TEST(Stats, QuantileSortedMatchesQuantileBitExact) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs;
    const int n = 1 + static_cast<int>(rng.Below(50));
    for (int i = 0; i < n; ++i) {
      xs.push_back(static_cast<double>(rng.Below(1000)) / 7.0);
    }
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      EXPECT_EQ(QuantileSorted(sorted, q), Quantile(xs, q)) << "q=" << q;
    }
  }
}

// MakeTukeyBox computes quartiles via QuantileSorted on its one sorted
// pass; the result must be bit-identical to the old path that re-sorted a
// copy inside each Quantile call.
TEST(Stats, TukeyBoxMatchesRepeatedSortPathBitExact) {
  Rng rng(22);
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) {
    xs.push_back(static_cast<double>(rng.Below(10000)) / 13.0);
  }
  const TukeyBox box = MakeTukeyBox(xs);
  // The pre-optimization reference: each quartile sorts its own copy.
  EXPECT_EQ(box.q1, Quantile(xs, 0.25));
  EXPECT_EQ(box.median, Quantile(xs, 0.5));
  EXPECT_EQ(box.q3, Quantile(xs, 0.75));
  EXPECT_EQ(box.n, xs.size());
}

TEST(Stats, TukeyBoxBasics) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const TukeyBox box = MakeTukeyBox(xs);
  EXPECT_DOUBLE_EQ(box.median, 50.5);
  EXPECT_NEAR(box.q1, 25.75, 1e-9);
  EXPECT_NEAR(box.q3, 75.25, 1e-9);
  EXPECT_DOUBLE_EQ(box.whisker_lo, 1);
  EXPECT_DOUBLE_EQ(box.whisker_hi, 100);
  EXPECT_EQ(box.n, 100u);
}

TEST(Stats, TukeyBoxExcludesOutliersFromWhiskers) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 1000};
  const TukeyBox box = MakeTukeyBox(xs);
  EXPECT_LT(box.whisker_hi, 1000);
}

TEST(Stats, TukeyBoxEmpty) {
  const TukeyBox box = MakeTukeyBox({});
  EXPECT_EQ(box.n, 0u);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "2.5", "--gamma",
                        "--name", "hello"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0), 2.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_TRUE(flags.Has("alpha"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(Table, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2.5"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, Formatting) {
  EXPECT_EQ(TextTable::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::FmtPercent(0.123, 1), "12.3%");
}

}  // namespace
}  // namespace kgoa
