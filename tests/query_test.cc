// Unit tests for src/query: triple patterns and chain-query validation.
#include <gtest/gtest.h>

#include "src/query/chain_query.h"
#include "src/query/pattern.h"

namespace kgoa {
namespace {

TriplePattern Pat(Slot s, Slot p, Slot o) { return MakePattern(s, p, o); }
Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

TEST(Pattern, ComponentOfAndVars) {
  const TriplePattern p = Pat(V(3), C(7), V(5));
  EXPECT_EQ(p.ComponentOf(3), kSubject);
  EXPECT_EQ(p.ComponentOf(5), kObject);
  EXPECT_EQ(p.ComponentOf(9), -1);
  EXPECT_TRUE(p.HasVar(3));
  EXPECT_FALSE(p.HasVar(7));  // 7 is a constant, not a variable
  EXPECT_EQ(p.Vars(), (std::vector<VarId>{3, 5}));
  EXPECT_EQ(p.NumVars(), 2);
}

TEST(Pattern, MatchesConstants) {
  const TriplePattern p = Pat(V(0), C(7), C(9));
  EXPECT_TRUE(p.MatchesConstants(Triple{1, 7, 9}));
  EXPECT_FALSE(p.MatchesConstants(Triple{1, 8, 9}));
  EXPECT_FALSE(p.MatchesConstants(Triple{1, 7, 8}));
}

TEST(Pattern, ToStringWithoutDict) {
  const TriplePattern p = Pat(V(0), C(7), V(1));
  EXPECT_EQ(p.ToString(), "?v0 #7 ?v1");
}

TEST(ChainQuery, AcceptsValidChain) {
  // (?0 c1 ?1) (?1 c2 ?2), alpha=2, beta=1.
  std::string error;
  auto q = ChainQuery::Create(
      {Pat(V(0), C(1), V(1)), Pat(V(1), C(2), V(2))}, 2, 1, true, &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ(q->links(), std::vector<VarId>{1});
  EXPECT_EQ(q->alpha_beta_pattern(), 1);
  EXPECT_EQ(q->vars(), (std::vector<VarId>{0, 1, 2}));
  EXPECT_TRUE(q->distinct());
  EXPECT_FALSE(q->WithDistinct(false).distinct());
}

TEST(ChainQuery, SinglePattern) {
  auto q = ChainQuery::Create({Pat(V(0), V(1), V(2))}, 1, 0, true);
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->links().empty());
  EXPECT_EQ(q->alpha_beta_pattern(), 0);
}

TEST(ChainQuery, AlphaEqualsBeta) {
  auto q = ChainQuery::Create({Pat(V(0), C(1), V(1))}, 0, 0, true);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->alpha_beta_pattern(), 0);
}

TEST(ChainQuery, RejectsEmpty) {
  std::string error;
  EXPECT_FALSE(ChainQuery::Create({}, 0, 0, true, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ChainQuery, RejectsRepeatedVarInPattern) {
  EXPECT_FALSE(
      ChainQuery::Create({Pat(V(0), C(1), V(0))}, 0, 0, true).has_value());
}

TEST(ChainQuery, RejectsVarInThreePatterns) {
  EXPECT_FALSE(ChainQuery::Create({Pat(V(0), C(1), V(1)),
                                   Pat(V(0), C(2), V(1))},
                                  0, 1, true)
                   .has_value());  // both vars shared twice
  EXPECT_FALSE(ChainQuery::Create(
                   {Pat(V(0), C(1), V(1)), Pat(V(1), C(2), V(2)),
                    Pat(V(1), C(3), V(3))},
                   1, 2, true)
                   .has_value());  // v1 in three patterns
}

TEST(ChainQuery, RejectsDisconnectedPatterns) {
  EXPECT_FALSE(ChainQuery::Create(
                   {Pat(V(0), C(1), V(1)), Pat(V(2), C(2), V(3))}, 0, 1,
                   true)
                   .has_value());
}

TEST(ChainQuery, RejectsNonConsecutiveSharing) {
  EXPECT_FALSE(ChainQuery::Create(
                   {Pat(V(0), C(1), V(1)), Pat(V(1), C(2), V(2)),
                    Pat(V(2), C(3), V(0))},
                   0, 1, true)
                   .has_value());  // cycle: v0 shared by patterns 0 and 2
}

TEST(ChainQuery, RejectsUnknownAlphaBeta) {
  EXPECT_FALSE(
      ChainQuery::Create({Pat(V(0), C(1), V(1))}, 5, 0, true).has_value());
  EXPECT_FALSE(
      ChainQuery::Create({Pat(V(0), C(1), V(1))}, 0, 5, true).has_value());
}

TEST(ChainQuery, RejectsAlphaBetaNotCooccurring) {
  // alpha in pattern 0 only, beta in pattern 2 only.
  EXPECT_FALSE(ChainQuery::Create(
                   {Pat(V(0), C(1), V(1)), Pat(V(1), C(2), V(2)),
                    Pat(V(2), C(3), V(3))},
                   0, 3, true)
                   .has_value());
}

TEST(ChainQuery, RejectsMismatchedFilters) {
  std::vector<std::vector<TypeFilter>> filters(3);  // wrong length
  EXPECT_FALSE(ChainQuery::Create({Pat(V(0), C(1), V(1))}, filters, 0, 1,
                                  true)
                   .has_value());
}

TEST(ChainQuery, CarriesFilters) {
  std::vector<std::vector<TypeFilter>> filters(1);
  filters[0].push_back(TypeFilter{kSubject, 10, 11});
  auto q = ChainQuery::Create({Pat(V(0), C(1), V(1))}, filters, 0, 1, true);
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->filters(0).size(), 1u);
  EXPECT_EQ(q->filters(0)[0].value, 11u);
  EXPECT_TRUE(q->HasAnyFilter());
  EXPECT_TRUE(q->WithDistinct(false).HasAnyFilter());
}

TEST(ChainQuery, CreateReorderingFixesFigure5Order) {
  // The paper's Figure 5 lists its patterns out of chain order:
  // (?s bp ?o) (?s type P) (?o type ?c). Reordering must recover the
  // chain (?s type P) (?s bp ?o) (?o type ?c) or its reverse.
  std::string error;
  auto q = ChainQuery::CreateReordering(
      {Pat(V(0), C(10), V(1)),   // ?s bp ?o
       Pat(V(0), C(11), C(12)),  // ?s type Person
       Pat(V(1), C(11), V(2))},  // ?o type ?c
      {}, 2, 1, true, &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ(q->NumPatterns(), 3);
  // Ends are the degree-1 patterns.
  EXPECT_EQ(q->links().size(), 2u);
}

TEST(ChainQuery, CreateReorderingKeepsFiltersWithTheirPatterns) {
  std::vector<std::vector<TypeFilter>> filters(3);
  filters[0].push_back(TypeFilter{kSubject, 99, 98});  // on (?s bp ?o)
  auto q = ChainQuery::CreateReordering(
      {Pat(V(0), C(10), V(1)), Pat(V(0), C(11), C(12)),
       Pat(V(1), C(11), V(2))},
      filters, 2, 1, true);
  ASSERT_TRUE(q.has_value());
  int with_filter = -1;
  for (int i = 0; i < q->NumPatterns(); ++i) {
    if (!q->filters(i).empty()) with_filter = i;
  }
  ASSERT_GE(with_filter, 0);
  // The filtered pattern is still the (?s #10 ?o) one.
  EXPECT_EQ(q->patterns()[with_filter][kPredicate].term(), 10u);
}

TEST(ChainQuery, CreateReorderingRejectsStarAndCycle) {
  std::string error;
  // Star: center variable in three patterns.
  EXPECT_FALSE(ChainQuery::CreateReordering(
                   {Pat(V(0), C(1), V(1)), Pat(V(0), C(2), V(2)),
                    Pat(V(0), C(3), V(3))},
                   {}, 0, 1, true, &error)
                   .has_value());
  // Cycle: triangle.
  EXPECT_FALSE(ChainQuery::CreateReordering(
                   {Pat(V(0), C(1), V(1)), Pat(V(1), C(1), V(2)),
                    Pat(V(2), C(1), V(0))},
                   {}, 0, 1, true, &error)
                   .has_value());
  EXPECT_NE(error.find("cycle"), std::string::npos);
}

TEST(ChainQuery, ToSparqlRendersTemplate) {
  auto q = ChainQuery::Create(
      {Pat(V(0), C(1), V(1)), Pat(V(1), C(2), V(2))}, 2, 1, true);
  ASSERT_TRUE(q.has_value());
  const std::string sparql = q->ToSparql();
  EXPECT_NE(sparql.find("SELECT ?v2 COUNT(DISTINCT ?v1)"),
            std::string::npos);
  EXPECT_NE(sparql.find("GROUP BY ?v2"), std::string::npos);
}

}  // namespace
}  // namespace kgoa
