// End-to-end integration tests: full pipeline on a synthetic knowledge
// graph — generation, indexing, exploration workload, exact engines, and
// online aggregation — checking the paper's qualitative claims at small
// scale: all exact engines agree; Wander Join and Audit Join converge to
// the exact counts; Audit Join rejects fewer walks and reaches lower error
// at the same walk budget on selective distinct queries.
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/audit.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/gen/kg_gen.h"
#include "src/gen/workload.h"
#include "src/join/baseline.h"
#include "src/join/ctj.h"
#include "src/join/leapfrog.h"
#include "src/join/yannakakis.h"
#include "src/ola/wander.h"
#include "src/rdf/ntriples.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static KgSpec Spec() {
    KgSpec spec;
    spec.seed = 77;
    spec.num_classes = 25;
    spec.num_properties = 10;
    spec.num_entities = 800;
    spec.num_property_triples = 5000;
    spec.num_literals = 100;
    return spec;
  }

  IntegrationTest() : graph_(GenerateKg(Spec())), indexes_(graph_) {}

  Graph graph_;
  IndexSet indexes_;
};

TEST_F(IntegrationTest, ExactEnginesAgreeOnWorkload) {
  WorkloadOptions options;
  options.num_paths = 8;
  const auto workload = GenerateWorkload(graph_, indexes_, options);
  ASSERT_FALSE(workload.empty());

  CtjEngine ctj(indexes_);
  BaselineEngine baseline(indexes_);
  for (const auto& eq : workload) {
    for (bool distinct : {true, false}) {
      const ChainQuery q = eq.query.WithDistinct(distinct);
      const GroupedResult expected = ctj.Evaluate(q);
      ASSERT_EQ(EvaluateWithLftj(indexes_, q), expected) << q.ToSparql();
      const auto b = baseline.Evaluate(q);
      ASSERT_FALSE(b.truncated);
      ASSERT_EQ(b.result, expected) << q.ToSparql();
      ASSERT_EQ(EvaluateWithYannakakis(indexes_, q), expected)
          << q.ToSparql();
    }
  }
}

TEST_F(IntegrationTest, OlaEnginesConvergeOnWorkload) {
  WorkloadOptions options;
  options.num_paths = 4;
  const auto workload = GenerateWorkload(graph_, indexes_, options);
  ASSERT_FALSE(workload.empty());

  int checked = 0;
  for (const auto& eq : workload) {
    if (eq.exact.counts.size() > 50) continue;  // keep the test fast
    ++checked;
    // Audit Join, distinct.
    AuditJoin::Options aj;
    aj.walk_order = DefaultAuditOrder(eq.query);
    aj.tipping_threshold = 16;
    AuditJoin audit(indexes_, eq.query, aj);
    audit.RunWalks(60000);
    // Loose bound: queries with many small groups converge slowly (their
    // MAE weighs every group equally); unbiasedness itself is verified
    // exactly in audit_test.cc.
    const double aj_mae = MeanAbsoluteError(eq.exact, audit.estimates());
    EXPECT_LT(aj_mae, 0.6) << eq.description;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(IntegrationTest, AuditBeatsWanderOnDistinctAtEqualWalks) {
  // Aggregate comparison across several workload queries at a fixed walk
  // budget; AJ's advantage is the paper's headline claim. Compare summed
  // error to tolerate per-query noise.
  WorkloadOptions options;
  options.num_paths = 6;
  const auto workload = GenerateWorkload(graph_, indexes_, options);

  double wander_total = 0;
  double audit_total = 0;
  int used = 0;
  for (const auto& eq : workload) {
    if (eq.step < 2) continue;  // deeper queries show the gap
    ++used;
    WanderJoin wander(indexes_, eq.query);
    wander.RunWalks(30000);
    wander_total += MeanAbsoluteError(eq.exact, wander.estimates());

    AuditJoin::Options aj;
    aj.walk_order = DefaultAuditOrder(eq.query);
    aj.tipping_threshold = 16;
    AuditJoin audit(indexes_, eq.query, aj);
    audit.RunWalks(30000);
    audit_total += MeanAbsoluteError(eq.exact, audit.estimates());
  }
  ASSERT_GT(used, 0);
  EXPECT_LT(audit_total, wander_total);
}

TEST_F(IntegrationTest, AuditRejectionRateLowerOnAverage) {
  WorkloadOptions options;
  options.num_paths = 6;
  const auto workload = GenerateWorkload(graph_, indexes_, options);

  double wander_rejects = 0;
  double audit_rejects = 0;
  for (const auto& eq : workload) {
    WanderJoin wander(indexes_, eq.query);
    wander.RunWalks(5000);
    wander_rejects += wander.estimates().RejectionRate();

    AuditJoin::Options aj;
    aj.tipping_threshold = 64;
    AuditJoin audit(indexes_, eq.query, aj);
    audit.RunWalks(5000);
    audit_rejects += audit.estimates().RejectionRate();
  }
  EXPECT_LE(audit_rejects, wander_rejects);
}

TEST_F(IntegrationTest, NtriplesRoundTripPreservesQueryResults) {
  // Serialize the synthetic graph, reload it, and check a workload query
  // returns identical counts (spelling-level agreement).
  std::ostringstream out;
  WriteNTriples(graph_, out);
  GraphBuilder builder;
  const NtParseResult parsed = ParseNTriplesString(out.str(), builder);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  Graph reloaded = std::move(builder).Build();
  ASSERT_EQ(reloaded.NumTriples(), graph_.NumTriples());
}

}  // namespace
}  // namespace kgoa
