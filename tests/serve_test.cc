// Tests for the persistent serving core: cancellation latency, multi-job
// fairness, priority scheduling, session auto-cancel, and — the load-bearing
// guarantee — walk-budget bit-identity of a job run solo vs. run alongside
// competing jobs on pools of 1, 2, and 8 threads.
//
// Runs under TSan in tier-1 (scripts/tier1.sh): the scheduler state, the
// per-slot publish handoff, and the callback serialization are all exercised
// with real concurrency here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/explorer.h"
#include "src/ola/parallel.h"
#include "src/util/sync.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

constexpr uint64_t kHugeBudget = 1ull << 40;  // never finishes on its own

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

void ExpectBitIdentical(const GroupedEstimates& a,
                        const GroupedEstimates& b) {
  EXPECT_EQ(a.walks(), b.walks());
  EXPECT_EQ(a.rejected_walks(), b.rejected_walks());
  const auto ea = a.Estimates();
  const auto eb = b.Estimates();
  ASSERT_EQ(ea.size(), eb.size());
  for (const auto& [group, estimate] : ea) {
    const auto it = eb.find(group);
    ASSERT_NE(it, eb.end());
    EXPECT_EQ(estimate, it->second) << "group " << group;
    EXPECT_EQ(a.CiHalfWidth(group), b.CiHalfWidth(group))
        << "group " << group;
  }
}

// Cancellation is observed within ONE walk quantum. The job cancels itself
// from its own snapshot callback (which runs at a quantum boundary, right
// after that quantum's partial was published); on a 1-thread pool nothing
// else of the job can be in flight, so the final result must contain
// exactly the walks the cancelling snapshot saw — not one walk more.
TEST_F(ServeTest, CancelObservedWithinOneQuantumNoLeakedPartials) {
  ServingCore::Options core_options;
  core_options.threads = 1;
  core_options.quantum_walks = 128;
  ServingCore core(indexes_, core_options);

  struct Shared {
    Mutex mutex;
    ChartHandle handle KGOA_GUARDED_BY(mutex);
    std::atomic<bool> armed{false};
    std::atomic<bool> fired{false};
    std::atomic<uint64_t> walks_at_cancel{0};
  };
  auto shared = std::make_shared<Shared>();

  ChartJobOptions options;
  options.walk_budget = kHugeBudget;
  options.workers = 4;
  options.seed = 11;
  options.snapshot_period = 0.0;  // every quantum
  options.on_snapshot = [shared](const OlaSnapshot& snapshot) {
    if (snapshot.final_snapshot) return;
    if (!shared->armed.load(std::memory_order_acquire)) return;
    if (shared->fired.exchange(true)) return;
    shared->walks_at_cancel.store(snapshot.walks);
    ChartHandle handle;
    {
      MutexLock lock(shared->mutex);
      handle = shared->handle;
    }
    handle.Cancel();
  };

  ChartHandle handle = core.Submit(Fig5(true), options);
  {
    MutexLock lock(shared->mutex);
    shared->handle = handle;
  }
  shared->armed.store(true, std::memory_order_release);

  const ParallelOlaResult& result = handle.Await();
  EXPECT_EQ(handle.state(), ChartJobState::kCancelled);
  EXPECT_TRUE(handle.finished());
  const uint64_t at_cancel = shared->walks_at_cancel.load();
  EXPECT_GT(at_cancel, 0u);
  // No partials leak past the token: the retired result IS the partial at
  // the cancellation quantum, and nothing ran after it.
  EXPECT_EQ(result.estimates.walks(), at_cancel);
  EXPECT_LT(result.estimates.walks(), kHugeBudget);

  // The pool survives the cancellation without joining/respawning: the
  // same core immediately serves another job to completion.
  ChartJobOptions follow_up;
  follow_up.walk_budget = 1024;
  follow_up.workers = 2;
  const ParallelOlaResult& done = core.Submit(Fig5(true), follow_up).Await();
  EXPECT_EQ(done.estimates.walks(), 1024u);

  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.threads, 1u);
  EXPECT_EQ(stats.jobs_submitted, 2u);
  EXPECT_EQ(stats.jobs_cancelled, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.live_jobs, 0u);
  EXPECT_GE(stats.last_cancel_latency_seconds, 0.0);
  // Cancel is idempotent and a no-op on finished jobs.
  handle.Cancel();
  EXPECT_EQ(handle.state(), ChartJobState::kCancelled);
}

// Two equal-priority jobs share a 1-thread pool round-robin: when the
// finite job completes, the competing job must have advanced to within a
// comparable walk count — not been starved behind it.
TEST_F(ServeTest, TwoJobsShareThePoolFairly) {
  ServingCore::Options core_options;
  core_options.threads = 1;
  core_options.quantum_walks = 256;
  ServingCore core(indexes_, core_options);

  constexpr uint64_t kBudget = 40 * 256;

  ChartJobOptions finite;
  finite.walk_budget = kBudget;
  finite.workers = 1;
  finite.seed = 3;
  ChartJobOptions competing;
  competing.walk_budget = kHugeBudget;
  competing.workers = 1;
  competing.seed = 4;

  const ChainQuery query = Fig5(true);
  // The unbounded competitor is submitted FIRST: the finite job then
  // joins a busy pool, and every one of its quanta is interleaved with
  // the competitor's. (Submitting the competitor second would race its
  // construction — plan compilation, reach-cache setup — against the
  // finite job's entire 40-quantum run.)
  ChartHandle b = core.Submit(query, competing);
  ChartHandle a = core.Submit(query, finite);
  const ParallelOlaResult& done = a.Await();
  EXPECT_EQ(done.estimates.walks(), kBudget);

  b.Cancel();
  const ParallelOlaResult& partial = b.Await();
  // Strict alternation keeps b at least abreast of a (it started first);
  // allow half as slack for in-flight quanta around the probes.
  EXPECT_GE(partial.estimates.walks(), kBudget / 2);

  const ServeStats stats = core.stats();
  EXPECT_GE(stats.preemptions, 10u);  // the worker really time-sliced
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.jobs_cancelled, 1u);
}

// The acceptance criterion: a budgeted job's estimate is a pure function
// of (query, seed, budget, workers) — bit-identical across pool sizes
// {1, 2, 8} AND across running solo vs. alongside a competing job.
TEST_F(ServeTest, WalkBudgetBitIdenticalSoloVsConcurrentAcrossPools) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 2002;  // not divisible by 4: remainder path

  ChartJobOptions measured;
  measured.walk_budget = kBudget;
  measured.workers = 4;
  measured.seed = 17;
  measured.tipping_threshold = 2.0;  // stochastic mode

  // Reference: the synchronous executor on one thread (the pre-serving
  // sequential-union semantics, locked in by parallel_test).
  ParallelOlaOptions reference_options;
  reference_options.threads = 1;
  reference_options.workers = 4;
  reference_options.seed = 17;
  reference_options.tipping_threshold = 2.0;
  const ParallelOlaResult reference =
      ParallelOlaExecutor(indexes_, query, reference_options)
          .RunWalkBudget(kBudget);
  ASSERT_EQ(reference.estimates.walks(), kBudget);

  for (int threads : {1, 2, 8}) {
    ServingCore::Options core_options;
    core_options.threads = threads;
    ServingCore core(indexes_, core_options);

    // Solo.
    const ParallelOlaResult solo = core.Submit(query, measured).Await();
    ExpectBitIdentical(reference.estimates, solo.estimates);

    // Alongside a competing job contending for every worker.
    ChartJobOptions competing;
    competing.walk_budget = kHugeBudget;
    competing.workers = threads;
    competing.seed = 99;
    ChartHandle competitor = core.Submit(query, competing);
    const ParallelOlaResult crowded = core.Submit(query, measured).Await();
    ExpectBitIdentical(reference.estimates, crowded.estimates);
    competitor.Cancel();
  }
}

// Batched walk execution under the serving core: a job's batch width is
// not part of the run identity — batch_walks 1 (unbatched), the default
// SoA width, and an oddball width all reproduce the same estimate across
// pool sizes, interleaved with quantum-level preemption.
TEST_F(ServeTest, WalkBudgetBitIdenticalAcrossBatchWidths) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 2002;
  GroupedEstimates reference;
  bool have_reference = false;
  for (const uint32_t batch : {1u, 0u, 48u}) {  // 0 = engine default
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE(::testing::Message()
                   << "batch=" << batch << " threads=" << threads);
      ServingCore::Options core_options;
      core_options.threads = threads;
      ServingCore core(indexes_, core_options);
      ChartJobOptions job;
      job.walk_budget = kBudget;
      job.workers = 4;
      job.seed = 17;
      job.tipping_threshold = 2.0;
      job.batch_walks = batch;
      const ParallelOlaResult run = core.Submit(query, job).Await();
      ASSERT_EQ(run.estimates.walks(), kBudget);
      if (!have_reference) {
        reference = run.estimates;
        have_reference = true;
      } else {
        ExpectBitIdentical(reference, run.estimates);
      }
    }
  }
}

// Priority: a high-priority job submitted while a low-priority job is
// running takes over the (single) worker until it completes; the
// low-priority job makes no progress beyond in-flight quanta.
TEST_F(ServeTest, HigherPriorityJobPreemptsLowerPriority) {
  ServingCore::Options core_options;
  core_options.threads = 1;
  core_options.quantum_walks = 256;
  ServingCore core(indexes_, core_options);

  const ChainQuery query = Fig5(true);
  ChartJobOptions low;
  low.walk_budget = kHugeBudget;
  low.workers = 1;
  low.priority = 0;
  low.seed = 5;
  ChartHandle background = core.Submit(query, low);

  ChartJobOptions high;
  high.walk_budget = 80 * 256;
  high.workers = 1;
  high.priority = 10;
  high.seed = 7;
  // Probe the low-priority job's progress from inside the high-priority
  // job's FINAL snapshot callback: it runs on the pool's only worker
  // thread before that worker can go back to the background job, so it
  // observes the background walk count exactly at high-job completion.
  // (Probing from this thread after Await() would also count everything
  // the freed worker runs during our wake-up latency.)
  std::atomic<uint64_t> low_walks_at_high_done{0};
  high.on_snapshot = [&](const OlaSnapshot& snapshot) {
    if (snapshot.final_snapshot) {
      low_walks_at_high_done.store(background.Snapshot().estimates.walks());
    }
  };
  const ChartHandle urgent_handle = core.Submit(query, high);
  // From here on the scheduler must prefer the high-priority job, so the
  // background job can at most finish quanta already in flight. (The
  // baseline is read only now: everything run while Submit itself built
  // the job — plan compilation, reach-cache setup — is real time on a
  // 1-thread pool and not the scheduler's doing.)
  const uint64_t before = background.Snapshot().estimates.walks();
  const ParallelOlaResult urgent = urgent_handle.Await();
  EXPECT_EQ(urgent.estimates.walks(), 80u * 256u);

  const uint64_t after = low_walks_at_high_done.load();
  // The low-priority job may finish quanta that were in flight around the
  // two probes, but must not have shared the pool while the high-priority
  // job was live (a round-robin scheduler would give it ~80 quanta here).
  EXPECT_LE(after, before + 16 * 256);
  background.Cancel();
  background.Await();
}

// Deadline mode through the core: the job retires on its own once the
// wall clock passes the deadline fixed at submit.
TEST_F(ServeTest, DeadlineJobRetiresOnItsOwn) {
  ServingCore::Options core_options;
  core_options.threads = 2;
  ServingCore core(indexes_, core_options);

  ChartJobOptions options;
  options.walk_budget = 0;
  options.deadline_seconds = 0.05;
  options.workers = 2;
  ChartHandle handle = core.Submit(Fig5(true), options);
  const ParallelOlaResult& result = handle.Await();
  EXPECT_EQ(handle.state(), ChartJobState::kDone);
  EXPECT_GE(result.elapsed_seconds, 0.05);
  EXPECT_GT(result.estimates.walks(), 0u);
  EXPECT_EQ(core.stats().jobs_completed, 1u);
}

// Engine-agnostic scheduling: a Ripple job runs through the same pool.
// Ripple's without-replacement samples don't merge across engines, so the
// scheduler clamps it to one logical worker; on this graph the budget
// exhausts the extents and the estimates become exact.
TEST_F(ServeTest, RippleJobClampsToOneWorkerAndConverges) {
  ServingCore::Options core_options;
  core_options.threads = 2;
  ServingCore core(indexes_, core_options);

  const ChainQuery query = Fig5(false);
  const GroupedResult exact = testing::BruteForce(graph_, query);

  ChartJobOptions options;
  options.engine = OlaEngineKind::kRipple;
  options.walk_budget = 20000;
  options.workers = 4;  // requested, but clamped
  const ParallelOlaResult& result = core.Submit(query, options).Await();
  EXPECT_EQ(result.workers, 1);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(result.estimates.Estimate(group),
                static_cast<double>(count),
                1e-6 * static_cast<double>(count) + 1e-6);
  }
}

// The Explorer/session wiring: SubmitChart returns a live handle wired to
// the explorer's warm reach caches, and navigating away from the current
// selection (ExpandAndSelect / GoBack) auto-cancels superseded jobs.
TEST_F(ServeTest, SessionAutoCancelsSupersededJobs) {
  Explorer explorer(testing::PaperExampleGraph());
  ExplorationSession session = explorer.NewSession();
  const TermId birth_place =
      explorer.graph().dict().Lookup("birthPlace");
  ASSERT_NE(birth_place, kInvalidTerm);

  ChartJobOptions options;
  options.walk_budget = kHugeBudget;
  options.workers = 2;

  ChartHandle first =
      explorer.SubmitChart(session.BuildQuery(ExpansionKind::kOutProperty),
                           options);
  session.TrackJob(first);
  EXPECT_EQ(session.tracked_jobs().size(), 1u);

  session.ExpandAndSelect(ExpansionKind::kOutProperty, birth_place);
  first.Await();  // cancellation is observed within one quantum
  EXPECT_EQ(first.state(), ChartJobState::kCancelled);
  EXPECT_EQ(session.jobs_auto_cancelled(), 1u);
  EXPECT_TRUE(session.tracked_jobs().empty());

  ChartHandle second =
      explorer.SubmitChart(session.BuildQuery(ExpansionKind::kObject),
                           options);
  session.TrackJob(second);
  ASSERT_TRUE(session.GoBack());
  second.Await();
  EXPECT_EQ(second.state(), ChartJobState::kCancelled);
  EXPECT_EQ(session.jobs_auto_cancelled(), 2u);

  // Finished jobs are not counted as auto-cancelled.
  ChartJobOptions small;
  small.walk_budget = 512;
  small.workers = 2;
  ChartHandle done =
      explorer.SubmitChart(session.BuildQuery(ExpansionKind::kOutProperty),
                           small);
  done.Await();
  session.TrackJob(done);
  session.ExpandAndSelect(ExpansionKind::kOutProperty, birth_place);
  EXPECT_EQ(session.jobs_auto_cancelled(), 2u);

  // The explorer's shared pool served everything without respawning.
  const ServeStats stats = explorer.serve_stats();
  EXPECT_EQ(stats.jobs_submitted, 3u);
  EXPECT_EQ(stats.jobs_cancelled, 2u);
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_GT(explorer.metrics().Counter("serve.jobs_submitted"), 0u);
}

// Graceful finish: like Cancel, Finish stops a live job within one
// quantum — but the job retires as COMPLETED with its partials, so
// serving a chart to a quality target no longer shows up as a
// cancellation in the job-lifecycle stats.
TEST_F(ServeTest, FinishStopsJobQuicklyAndRetiresAsCompleted) {
  ServingCore::Options core_options;
  core_options.threads = 1;
  core_options.quantum_walks = 128;
  ServingCore core(indexes_, core_options);

  ChartJobOptions options;
  options.walk_budget = kHugeBudget;
  options.workers = 4;
  options.seed = 31;
  ChartHandle handle = core.Submit(Fig5(true), options);
  // Let it make some progress so the finish gathers real partials.
  while (handle.Snapshot().estimates.walks() == 0) {
  }
  handle.Finish();
  const ParallelOlaResult& result = handle.Await();
  EXPECT_TRUE(handle.finished());
  EXPECT_EQ(handle.state(), ChartJobState::kDone);
  EXPECT_GT(result.estimates.walks(), 0u);
  EXPECT_LT(result.estimates.walks(), kHugeBudget);

  const ServeStats stats = core.stats();
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.jobs_cancelled, 0u);
  // Idempotent, also after retirement.
  handle.Finish();
  EXPECT_EQ(handle.state(), ChartJobState::kDone);
}

// Top-K serving in deadline mode: with a heavily skewed group
// distribution and K = 1, the tracker's K-th lower bound separates the
// tail groups, walks bound to them are pruned, the displayed chart
// converges, and (with finish_on_displayed_convergence) the job retires
// itself as completed long before the deadline.
TEST(TopKServeTest, DeadlineModePrunesTailAndSelfFinishesOnConvergence) {
  GraphBuilder b;
  for (int i = 0; i < 400; ++i) {
    b.AddSpelled("s" + std::to_string(i), "p", "big");
  }
  for (int t = 0; t < 20; ++t) {
    for (int j = 0; j < 5; ++j) {
      b.AddSpelled("t" + std::to_string(t) + "_" + std::to_string(j), "p",
                   "tiny" + std::to_string(t));
    }
  }
  const Graph graph = std::move(b).Build();
  IndexSet indexes(graph);
  const TermId p = graph.dict().Lookup("p");
  // One pattern, grouped by object: "big" dwarfs every "tiny" group.
  auto q = ChainQuery::Create(
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(p), Slot::MakeVar(1))},
      1, 0, /*distinct=*/false);
  ASSERT_TRUE(q.has_value());

  ServingCore::Options core_options;
  core_options.threads = 2;
  core_options.quantum_walks = 256;
  ServingCore core(indexes, core_options);

  ChartJobOptions options;
  options.walk_budget = 0;
  options.deadline_seconds = 0.3;
  options.workers = 2;
  options.seed = 7;
  options.tipping_threshold = 2.0;  // stochastic mode: real CIs
  options.top_k.k = 1;
  options.top_k.ci_target = 0.005;
  options.top_k.min_walks = 256;

  // Run the full deadline (no self-finish) so walks keep flowing after
  // the first top-K refresh activates the filter.
  ChartHandle handle = core.Submit(*q, options);
  const ParallelOlaResult& result = handle.Await();
  EXPECT_EQ(handle.state(), ChartJobState::kDone);
  EXPECT_TRUE(result.displayed_converged);
  // Walks landing on separated tail groups were pruned...
  EXPECT_GT(result.counters.pruned_walks, 0u);
  // ...and the displayed group's estimate is still in the right place
  // (pruned walks decay only the pruned groups).
  const TermId big = graph.dict().Lookup("big");
  EXPECT_NEAR(result.estimates.Estimate(big), 400.0, 80.0);
  // Every pruned tail group decayed below the K-th lower bound.
  for (const auto& [group, estimate] : result.estimates.Estimates()) {
    if (group == big) continue;
    EXPECT_LT(estimate + result.estimates.CiHalfWidth(group),
              result.estimates.Estimate(big));
  }

  // The converged flag survives into post-completion snapshots.
  EXPECT_TRUE(handle.Snapshot().displayed_converged);

  // Self-finish: the same job with finish_on_displayed_convergence stops
  // itself far before a long deadline and retires as COMPLETED.
  options.deadline_seconds = 30.0;
  options.finish_on_displayed_convergence = true;
  ChartHandle self = core.Submit(*q, options);
  const ParallelOlaResult& early = self.Await();
  EXPECT_EQ(self.state(), ChartJobState::kDone);
  EXPECT_TRUE(early.displayed_converged);
  EXPECT_LT(early.elapsed_seconds, 5.0);
  EXPECT_EQ(core.stats().jobs_completed, 2u);
  EXPECT_EQ(core.stats().jobs_cancelled, 0u);
}

// Budget mode keeps the bit-identity contract: enabling top-K tracking
// must not change the estimate (pruning is forced off — observe-only),
// and no walks are ever counted as pruned.
TEST_F(ServeTest, BudgetModeTopKIsObserveOnly) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 2002;
  ServingCore::Options core_options;
  core_options.threads = 2;
  ServingCore core(indexes_, core_options);

  ChartJobOptions plain;
  plain.walk_budget = kBudget;
  plain.workers = 4;
  plain.seed = 17;
  plain.tipping_threshold = 2.0;
  ChartJobOptions tracked = plain;
  tracked.top_k.k = 2;
  tracked.top_k.min_walks = 64;

  const ParallelOlaResult without = core.Submit(query, plain).Await();
  const ParallelOlaResult with = core.Submit(query, tracked).Await();
  ExpectBitIdentical(without.estimates, with.estimates);
  EXPECT_EQ(with.counters.pruned_walks, 0u);
}

// Destroying a core with live jobs cancels them and wakes Await-ers with
// well-formed partial results (handles outlive the core).
TEST_F(ServeTest, CoreDestructionCancelsLiveJobs) {
  ChartHandle orphan;
  {
    ServingCore core(indexes_);
    ChartJobOptions options;
    options.walk_budget = kHugeBudget;
    options.workers = 2;
    orphan = core.Submit(Fig5(true), options);
  }
  EXPECT_TRUE(orphan.finished());
  EXPECT_EQ(orphan.state(), ChartJobState::kCancelled);
  const ParallelOlaResult& result = orphan.Await();
  EXPECT_LT(result.estimates.walks(), kHugeBudget);
  orphan.Snapshot();  // still answerable after the core is gone
}

TEST(ChartJobStateNames, AreStable) {
  EXPECT_STREQ(ChartJobStateName(ChartJobState::kQueued), "queued");
  EXPECT_STREQ(ChartJobStateName(ChartJobState::kRunning), "running");
  EXPECT_STREQ(ChartJobStateName(ChartJobState::kDone), "done");
  EXPECT_STREQ(ChartJobStateName(ChartJobState::kCancelled), "cancelled");
}

}  // namespace
}  // namespace kgoa
