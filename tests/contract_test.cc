// Contract (death) tests: programming errors guarded by KGOA_CHECK must
// abort with a diagnostic rather than corrupt results silently — the
// database-engine convention for invariants that cannot be recovered.
// Also compiles the umbrella header to keep it self-contained.
#include <gtest/gtest.h>

#include "src/kgoa.h"
#include "src/util/table.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

using ContractDeathTest = ::testing::Test;

ChainQuery ThreeChain() {
  auto q = ChainQuery::Create({MakePattern(V(0), C(1), V(1)),
                               MakePattern(V(1), C(2), V(2)),
                               MakePattern(V(2), C(3), V(3))},
                              3, 2, false);
  EXPECT_TRUE(q.has_value());
  return *q;
}

TEST(ContractDeathTest, WalkPlanRejectsNonContiguousOrder) {
  const ChainQuery query = ThreeChain();
  EXPECT_DEATH(WalkPlan::Compile(query, {0, 2, 1}), "contiguous");
}

TEST(ContractDeathTest, WalkPlanRejectsShortOrder) {
  const ChainQuery query = ThreeChain();
  EXPECT_DEATH(WalkPlan::Compile(query, {0, 1}), "cover");
}

TEST(ContractDeathTest, WalkPlanRejectsRepeatedPattern) {
  const ChainQuery query = ThreeChain();
  EXPECT_DEATH(WalkPlan::Compile(query, {0, 1, 1}), "");
}

TEST(ContractDeathTest, PatternAccessRejectsSubjectObjectPrefix) {
  const TriplePattern pattern = MakePattern(C(1), V(0), C(2));
  EXPECT_DEATH(PatternAccess::Compile(pattern, kNoVar), "no index order");
}

TEST(ContractDeathTest, PatternAccessRejectsForeignBoundVar) {
  const TriplePattern pattern = MakePattern(V(0), C(1), V(1));
  EXPECT_DEATH(PatternAccess::Compile(pattern, 7),
               "bound variable not in pattern");
}

TEST(ContractDeathTest, DictionarySpellBoundsChecked) {
  Dictionary dict;
  dict.Intern("only");
  EXPECT_DEATH(dict.Spell(5), "");
}

TEST(ContractDeathTest, TextTableRowArity) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

TEST(ContractDeathTest, WanderJoinRejectsDistinctExhaustiveEnumeration) {
  Graph graph = testing::PaperExampleGraph();
  IndexSet indexes(graph);
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph.rdf_type()), V(1))}, 1, 0, true);
  ASSERT_TRUE(q.has_value());
  WanderJoin wj(indexes, *q);
  EXPECT_DEATH(wj.EnumerateAllWalks([](double, TermId, double) {}),
               "non-distinct");
}

// The umbrella header exposes everything needed to run the quickstart
// flow; this is a compile-and-smoke check of the public API surface.
TEST(UmbrellaHeader, QuickstartFlowCompilesAndRuns) {
  Explorer explorer(
      MaterializeSubclassClosure(testing::PaperExampleGraph()));
  ExplorationSession session = explorer.NewSession();
  const ChainQuery query = session.BuildQuery(ExpansionKind::kSubclass);
  EXPECT_FALSE(explorer.Evaluate(query).counts.empty());
  EXPECT_FALSE(
      ExplainPlan(explorer.indexes(), query, &explorer.graph().dict())
          .empty());
}

}  // namespace
}  // namespace kgoa
