// Contract (death) tests: programming errors guarded by KGOA_CHECK must
// abort with a diagnostic rather than corrupt results silently — the
// database-engine convention for invariants that cannot be recovered.
// Also compiles the umbrella header to keep it self-contained.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/kgoa.h"
#include "src/util/table.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

using ContractDeathTest = ::testing::Test;

// --- The macro layer itself (src/util/contract.h) -------------------------

TEST(ContractMacros, CheckPrintsExpressionAndBacktrace) {
  const int value = 3;
  EXPECT_DEATH(KGOA_CHECK(value == 4),
               "KGOA_CHECK failed at .*contract_test.cc.*value == 4");
#ifdef __GLIBC__
  EXPECT_DEATH(KGOA_CHECK(value == 4), "backtrace:");
#endif
}

TEST(ContractMacros, CheckMsgCarriesDetail) {
  EXPECT_DEATH(KGOA_CHECK_MSG(false, "the detail string"),
               "KGOA_CHECK failed at .*the detail string");
}

TEST(ContractMacros, ComparisonChecksFormatBothOperands) {
  const int lhs = 2;
  const int rhs = 3;
  EXPECT_DEATH(KGOA_CHECK_EQ(lhs, rhs),
               "KGOA_CHECK_EQ failed at .*lhs == rhs .lhs = 2, rhs = 3");
  EXPECT_DEATH(KGOA_CHECK_NE(lhs, lhs), "lhs = 2, rhs = 2");
  EXPECT_DEATH(KGOA_CHECK_LT(rhs, lhs), "lhs = 3, rhs = 2");
  EXPECT_DEATH(KGOA_CHECK_LE(rhs, lhs), "lhs = 3, rhs = 2");
  EXPECT_DEATH(KGOA_CHECK_GT(lhs, rhs), "lhs = 2, rhs = 3");
  EXPECT_DEATH(KGOA_CHECK_GE(lhs, rhs), "lhs = 2, rhs = 3");
}

TEST(ContractMacros, ComparisonChecksEvaluateOperandsOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  KGOA_CHECK_LE(next(), 10);
  EXPECT_EQ(calls, 1);
}

TEST(ContractMacros, DcheckFiresOnlyWhenContractsEnabled) {
  if (!contract::kEnabled) GTEST_SKIP() << "KGOA_DCHECK compiled out";
  EXPECT_DEATH(KGOA_DCHECK(1 + 1 == 3), "KGOA_DCHECK failed");
  EXPECT_DEATH(KGOA_DCHECK_MSG(false, "memo poisoned"), "memo poisoned");
  const uint32_t small = 1;
  const uint32_t big = 2;
  EXPECT_DEATH(KGOA_DCHECK_EQ(small, big),
               "KGOA_DCHECK_EQ failed at .*lhs = 1, rhs = 2");
  EXPECT_DEATH(KGOA_DCHECK_GE(small, big), "lhs = 1, rhs = 2");
}

TEST(ContractMacros, DcheckSortedReportsFirstViolationOffset) {
  if (!contract::kEnabled) GTEST_SKIP() << "KGOA_DCHECK compiled out";
  const std::vector<int> sorted = {1, 2, 2, 5};
  KGOA_DCHECK_SORTED(sorted.begin(), sorted.end());  // must not fire
  const std::vector<int> broken = {1, 3, 2, 5};
  EXPECT_DEATH(
      KGOA_DCHECK_SORTED(broken.begin(), broken.end()),
      "KGOA_DCHECK_SORTED failed at .*element at offset 2 precedes");
  EXPECT_DEATH(KGOA_DCHECK_SORTED_BY(sorted.begin(), sorted.end(),
                                     [](int a, int b) { return a > b; }),
               "element at offset 1 precedes");
}

TEST(ContractMacros, DcheckProbEnforcesUnitInterval) {
  if (!contract::kEnabled) GTEST_SKIP() << "KGOA_DCHECK compiled out";
  KGOA_DCHECK_PROB(0.0);
  KGOA_DCHECK_PROB(1.0);
  KGOA_DCHECK_PROB_POS(1e-12);
  EXPECT_DEATH(KGOA_DCHECK_PROB(1.5),
               "KGOA_DCHECK_PROB failed at .*value = 1.5");
  EXPECT_DEATH(KGOA_DCHECK_PROB(-0.25), "value = -0.25");
  EXPECT_DEATH(KGOA_DCHECK_PROB_POS(0.0),
               "KGOA_DCHECK_PROB_POS failed at .*value = 0");
  const double nan = std::nan("");
  EXPECT_DEATH(KGOA_DCHECK_PROB(nan), "KGOA_DCHECK_PROB failed");
}

TEST(ContractMacros, DisabledDchecksNeverEvaluateOperands) {
  if (contract::kEnabled) GTEST_SKIP() << "KGOA_DCHECK active";
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  KGOA_DCHECK(next() == 0);
  KGOA_DCHECK_EQ(next(), 7);
  KGOA_DCHECK_PROB(static_cast<double>(next()));
  EXPECT_EQ(calls, 0);
}

ChainQuery ThreeChain() {
  auto q = ChainQuery::Create({MakePattern(V(0), C(1), V(1)),
                               MakePattern(V(1), C(2), V(2)),
                               MakePattern(V(2), C(3), V(3))},
                              3, 2, false);
  EXPECT_TRUE(q.has_value());
  return *q;
}

TEST(ContractDeathTest, WalkPlanRejectsNonContiguousOrder) {
  const ChainQuery query = ThreeChain();
  EXPECT_DEATH(WalkPlan::Compile(query, {0, 2, 1}), "contiguous");
}

TEST(ContractDeathTest, WalkPlanRejectsShortOrder) {
  const ChainQuery query = ThreeChain();
  EXPECT_DEATH(WalkPlan::Compile(query, {0, 1}), "cover");
}

TEST(ContractDeathTest, WalkPlanRejectsRepeatedPattern) {
  const ChainQuery query = ThreeChain();
  EXPECT_DEATH(WalkPlan::Compile(query, {0, 1, 1}), "");
}

TEST(ContractDeathTest, PatternAccessRejectsSubjectObjectPrefix) {
  const TriplePattern pattern = MakePattern(C(1), V(0), C(2));
  EXPECT_DEATH(PatternAccess::Compile(pattern, kNoVar), "no index order");
}

TEST(ContractDeathTest, PatternAccessRejectsForeignBoundVar) {
  const TriplePattern pattern = MakePattern(V(0), C(1), V(1));
  EXPECT_DEATH(PatternAccess::Compile(pattern, 7),
               "bound variable not in pattern");
}

TEST(ContractDeathTest, DictionarySpellBoundsChecked) {
  Dictionary dict;
  dict.Intern("only");
  EXPECT_DEATH(dict.Spell(5), "");
}

TEST(ContractDeathTest, TextTableRowArity) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

TEST(ContractDeathTest, WanderJoinRejectsDistinctExhaustiveEnumeration) {
  Graph graph = testing::PaperExampleGraph();
  IndexSet indexes(graph);
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph.rdf_type()), V(1))}, 1, 0, true);
  ASSERT_TRUE(q.has_value());
  WanderJoin wj(indexes, *q);
  EXPECT_DEATH(wj.EnumerateAllWalks([](double, TermId, double) {}),
               "non-distinct");
}

// The umbrella header exposes everything needed to run the quickstart
// flow; this is a compile-and-smoke check of the public API surface.
TEST(UmbrellaHeader, QuickstartFlowCompilesAndRuns) {
  Explorer explorer(
      MaterializeSubclassClosure(testing::PaperExampleGraph()));
  ExplorationSession session = explorer.NewSession();
  const ChainQuery query = session.BuildQuery(ExpansionKind::kSubclass);
  EXPECT_FALSE(explorer.Evaluate(query).counts.empty());
  EXPECT_FALSE(
      ExplainPlan(explorer.indexes(), query, &explorer.graph().dict())
          .empty());
}

}  // namespace
}  // namespace kgoa
