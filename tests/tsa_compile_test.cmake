# Negative-compile harness for the thread-safety annotations in
# src/util/sync.h.
#
# The TSA lint stage (scripts/lint.sh stage 4) proves the tree is clean
# under -Wthread-safety; THIS file proves the analysis is actually awake.
# Without it, a broken macro (say, KGOA_GUARDED_BY silently expanding to
# nothing under a clang upgrade) would make the stage pass vacuously
# forever. Each snippet in tests/tsa_snippets/ is fed through try_compile
# with the same flags the stage uses:
#
#   tsa_correct_usage.cc      must COMPILE  (harness sanity: failures
#                             below mean "analysis fired", not "snippet
#                             was broken C++")
#   tsa_guarded_by_violation.cc  must NOT compile: reads/writes a
#                             KGOA_GUARDED_BY field without the mutex
#   tsa_requires_violation.cc    must NOT compile: calls a
#                             KGOA_REQUIRES function without the mutex
#
# Included at configure time from tests/CMakeLists.txt when KGOA_TSA=ON
# under clang; any mismatch is a FATAL_ERROR, so the configure (and with
# it the lint stage) fails loudly.

set(KGOA_TSA_FLAGS
    -Wthread-safety -Wthread-safety-beta
    -Werror=thread-safety -Werror=thread-safety-beta)

function(kgoa_tsa_check snippet expect_compile)
  set(src ${CMAKE_CURRENT_SOURCE_DIR}/tsa_snippets/${snippet})
  try_compile(compiled
    SOURCES ${src}
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}"
      "-DCMAKE_CXX_STANDARD=20"
      "-DCMAKE_CXX_STANDARD_REQUIRED=ON"
    COMPILE_DEFINITIONS "${KGOA_TSA_FLAGS}"
    OUTPUT_VARIABLE out)
  if(expect_compile AND NOT compiled)
    message(FATAL_ERROR
            "TSA harness: ${snippet} should compile but did not — the "
            "control snippet is broken, so the violation results below "
            "would be meaningless.\n${out}")
  endif()
  if(NOT expect_compile AND compiled)
    message(FATAL_ERROR
            "TSA harness: ${snippet} COMPILED but must not — clang's "
            "thread-safety analysis did not fire on the annotation it "
            "violates. The -Wthread-safety stage is passing vacuously.")
  endif()
  if(expect_compile)
    message(STATUS "TSA harness: ${snippet} compiles (control) — ok")
  else()
    message(STATUS "TSA harness: ${snippet} rejected — ok")
  endif()
  unset(compiled CACHE)
endfunction()

kgoa_tsa_check(tsa_correct_usage.cc TRUE)
kgoa_tsa_check(tsa_guarded_by_violation.cc FALSE)
kgoa_tsa_check(tsa_requires_violation.cc FALSE)
