// Differential tests for the SIMD kernel layer (src/index/kernels.h).
//
// Every kernel is a pure function of its inputs, so the suites here run
// identical inputs through every dispatch level the host CPU supports
// (scalar always; SSE4.2/AVX2 when available) and require bit-identical
// outputs — the scalar path is the reference. Inputs are adversarial for
// the codecs: constant blocks (0-bit FOR), max-width values, outlier
// deltas (multi-byte varints poisoning the single-byte fast path), and
// the short final block around the 128-value boundary.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/index/block_codec.h"
#include "src/index/flat_table.h"
#include "src/index/kernels.h"
#include "src/util/rng.h"
#include "src/util/simd.h"

namespace kgoa {
namespace {

// All dispatch levels exercisable on this host, scalar first (the
// reference the others are diffed against).
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel max = MaxSupportedSimdLevel();
  if (max >= SimdLevel::kSse42) levels.push_back(SimdLevel::kSse42);
  if (max >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

// Restores the entry dispatch level on scope exit, so a failing test
// cannot leak a forced level into later tests in the same process.
class ScopedSimdLevel {
 public:
  ScopedSimdLevel() : saved_(CurrentSimdLevel()) {}
  ~ScopedSimdLevel() { SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

// Reference LSB-first bit-packer — mirrors the BlockedColumn encoder so
// UnpackBits can be driven at widths the encoder would never choose for
// a given value set.
std::vector<uint8_t> PackBits(const std::vector<uint32_t>& deltas,
                              uint32_t width) {
  std::vector<uint8_t> out;
  uint64_t acc = 0;
  int bits = 0;
  for (const uint32_t d : deltas) {
    acc |= static_cast<uint64_t>(d) << bits;
    bits += static_cast<int>(width);
    while (bits >= 8) {
      out.push_back(static_cast<uint8_t>(acc));
      acc >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) out.push_back(static_cast<uint8_t>(acc));
  return out;
}

// Reference zigzag LEB128 appender (same wire format as the encoder).
void AppendZigzagVarint(int64_t delta, std::vector<uint8_t>& out) {
  uint64_t z = (static_cast<uint64_t>(delta) << 1) ^
               static_cast<uint64_t>(delta >> 63);
  while (z >= 0x80) {
    out.push_back(static_cast<uint8_t>(z) | 0x80);
    z >>= 7;
  }
  out.push_back(static_cast<uint8_t>(z));
}

TEST(KernelsUnpackBits, AllWidthsAllLevelsMatchScalar) {
  ScopedSimdLevel guard;
  Rng rng(11);
  // Counts straddle the block size and the AVX2 8-lane group boundary.
  const uint32_t counts[] = {0, 1, 7, 8, 9, 31, 64, 127, 128};
  for (uint32_t width = 0; width <= 32; ++width) {
    const uint64_t mask = width == 32 ? ~0ull : ((1ull << width) - 1);
    for (const uint32_t count : counts) {
      std::vector<uint32_t> deltas(count);
      for (uint32_t& d : deltas) {
        d = static_cast<uint32_t>(rng.Next() & mask);
      }
      // Max-width adversary: saturate a few lanes so every bit matters.
      if (count > 2) {
        deltas[0] = static_cast<uint32_t>(mask);
        deltas[count / 2] = static_cast<uint32_t>(mask);
      }
      const std::vector<uint8_t> packed = PackBits(deltas, width);
      const uint32_t base = static_cast<uint32_t>(rng.Below(1u << 20));

      std::vector<uint32_t> expected(count);
      SetSimdLevel(SimdLevel::kScalar);
      kernels::UnpackBits(packed.data(), packed.data() + packed.size(),
                          count, base, width, expected.data());
      for (uint32_t i = 0; i < count; ++i) {
        ASSERT_EQ(expected[i], base + deltas[i])
            << "scalar reference wrong at width " << width << " i " << i;
      }
      for (const SimdLevel level : SupportedLevels()) {
        SetSimdLevel(level);
        std::vector<uint32_t> got(count, 0xdeadbeef);
        kernels::UnpackBits(packed.data(), packed.data() + packed.size(),
                            count, base, width, got.data());
        ASSERT_EQ(got, expected)
            << "level " << SimdLevelName(level) << " width " << width
            << " count " << count;
      }
    }
  }
}

// The AVX2 unpack reads 32-byte windows and must fall back to scalar
// extraction near the end of the readable buffer. A payload that ends
// exactly at the packed bytes (no slack) exercises the overread guard.
TEST(KernelsUnpackBits, TightPayloadEndDoesNotOverread) {
  ScopedSimdLevel guard;
  for (uint32_t width : {1u, 3u, 7u, 13u, 24u, 32u}) {
    std::vector<uint32_t> deltas(128);
    const uint64_t mask = width == 32 ? ~0ull : ((1ull << width) - 1);
    for (uint32_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = static_cast<uint32_t>((i * 2654435761u) & mask);
    }
    const std::vector<uint8_t> tight = PackBits(deltas, width);
    for (const SimdLevel level : SupportedLevels()) {
      SetSimdLevel(level);
      std::vector<uint32_t> got(deltas.size());
      kernels::UnpackBits(tight.data(), tight.data() + tight.size(),
                          static_cast<uint32_t>(deltas.size()), 5, width,
                          got.data());
      for (uint32_t i = 0; i < deltas.size(); ++i) {
        ASSERT_EQ(got[i], 5 + deltas[i])
            << "level " << SimdLevelName(level) << " width " << width;
      }
    }
  }
}

TEST(KernelsVarintDelta, SingleByteFastPathAndOutliersMatchScalar) {
  ScopedSimdLevel guard;
  Rng rng(23);
  for (int shape = 0; shape < 3; ++shape) {
    for (const uint32_t count : {1u, 8u, 9u, 63u, 127u, 128u}) {
      const uint32_t base = 1000;
      std::vector<uint32_t> values(count);
      int64_t prev = base;
      std::vector<uint8_t> encoded;
      int64_t running = base;
      for (uint32_t i = 0; i < count; ++i) {
        int64_t delta = 0;
        switch (shape) {
          case 0:  // single-byte zigzag deltas: the vector fast path
            delta = static_cast<int64_t>(rng.Below(64)) - 31;
            break;
          case 1:  // outlier deltas: multi-byte varints, fast path off
            delta = rng.Below(8) == 0
                        ? static_cast<int64_t>(rng.Below(1u << 20))
                        : static_cast<int64_t>(rng.Below(4));
            break;
          default:  // alternating sign, boundary magnitudes (63/64)
            delta = (i % 2 == 0) ? 63 : -64;
            break;
        }
        // Keep the prefix sum inside uint32 range.
        if (running + delta < 0) delta = -delta;
        running += delta;
        values[i] = static_cast<uint32_t>(running);
        AppendZigzagVarint(values[i] - prev, encoded);
        prev = values[i];
      }
      for (const SimdLevel level : SupportedLevels()) {
        SetSimdLevel(level);
        std::vector<uint32_t> got(count, 0xdeadbeef);
        kernels::DecodeVarintDelta(encoded.data(), encoded.size(), count,
                                   base, got.data());
        ASSERT_EQ(got, values)
            << "level " << SimdLevelName(level) << " shape " << shape
            << " count " << count;
      }
    }
  }
}

// End-to-end decode differential through the real encoder: every block of
// a BlockedColumn decodes bit-identically at every level, over the value
// shapes that steer the per-block codec choice.
TEST(KernelsDecode, BlockedColumnDecodesIdenticallyAcrossLevels) {
  ScopedSimdLevel guard;
  Rng rng(31);
  // 129 forces a 1-value final block; 4096 is many full blocks.
  const uint32_t sizes[] = {1, 127, 128, 129, 255, 1000, 4096};
  for (const uint32_t n : sizes) {
    for (int shape = 0; shape < 4; ++shape) {
      std::vector<uint32_t> values(n);
      uint32_t running = 7;
      for (uint32_t i = 0; i < n; ++i) {
        switch (shape) {
          case 0:  // constant: 0-bit FOR
            values[i] = 42;
            break;
          case 1:  // wide random: max-width packing
            values[i] = static_cast<uint32_t>(rng.Next());
            break;
          case 2:  // sorted small gaps: varint-delta single-byte
            running += static_cast<uint32_t>(rng.Below(4));
            values[i] = running;
            break;
          default:  // narrow with rare outliers: FOR poison
            values[i] = rng.Below(50) == 0
                            ? (1u << 30) + static_cast<uint32_t>(rng.Below(9))
                            : static_cast<uint32_t>(rng.Below(16));
            break;
        }
      }
      const BlockedColumn col(values.data(), n);
      alignas(32) uint32_t reference[kCodecBlockSize];
      alignas(32) uint32_t got[kCodecBlockSize];
      for (uint32_t b = 0; b < col.num_blocks(); ++b) {
        SetSimdLevel(SimdLevel::kScalar);
        const uint32_t count = col.DecodeBlock(b, reference);
        for (uint32_t i = 0; i < count; ++i) {
          ASSERT_EQ(reference[i], values[b * kCodecBlockSize + i]);
        }
        for (const SimdLevel level : SupportedLevels()) {
          SetSimdLevel(level);
          std::fill(got, got + kCodecBlockSize, 0xdeadbeef);
          ASSERT_EQ(col.DecodeBlock(b, got), count);
          for (uint32_t i = 0; i < count; ++i) {
            ASSERT_EQ(got[i], reference[i])
                << "level " << SimdLevelName(level) << " n " << n
                << " shape " << shape << " block " << b << " i " << i;
          }
        }
      }
    }
  }
}

TEST(KernelsLowerBound, MatchesStdAcrossLevelsAndWindowBoundaries) {
  ScopedSimdLevel guard;
  Rng rng(47);
  // Sizes bracket the SSE (32) and AVX2 (128) final-window widths.
  const uint32_t sizes[] = {0,  1,  2,   31,  32,  33,  64,
                            96, 127, 128, 129, 200, 300, 1000};
  for (const uint32_t n : sizes) {
    std::vector<uint32_t> vals(n);
    uint32_t running = 0;
    for (uint32_t i = 0; i < n; ++i) {
      running += static_cast<uint32_t>(rng.Below(5));  // duplicates likely
      vals[i] = running;
    }
    for (int probe = 0; probe < 64; ++probe) {
      uint32_t v;
      switch (probe % 4) {
        case 0:
          v = 0;
          break;
        case 1:
          v = running + 1;  // past the end
          break;
        default:
          v = n == 0 ? static_cast<uint32_t>(rng.Below(100))
                     : vals[rng.Below(n)] + static_cast<uint32_t>(
                                                rng.Below(3)) - 1;
          break;
      }
      const uint32_t expected_lb = static_cast<uint32_t>(
          std::lower_bound(vals.begin(), vals.end(), v) - vals.begin());
      const uint32_t expected_ub = static_cast<uint32_t>(
          std::upper_bound(vals.begin(), vals.end(), v) - vals.begin());
      for (const SimdLevel level : SupportedLevels()) {
        SetSimdLevel(level);
        ASSERT_EQ(kernels::LowerBoundU32(vals.data(), n, v), expected_lb)
            << "level " << SimdLevelName(level) << " n " << n << " v " << v;
        ASSERT_EQ(kernels::UpperBoundU32(vals.data(), n, v), expected_ub)
            << "level " << SimdLevelName(level) << " n " << n << " v " << v;
      }
    }
  }
}

TEST(KernelsLowerBoundStrided, MatchesDenseReference) {
  ScopedSimdLevel guard;
  Rng rng(53);
  const uint32_t stride = 3;  // one component of a sorted Triple run
  for (const uint32_t n : {0u, 1u, 7u, 8u, 9u, 100u, 1000u}) {
    std::vector<uint32_t> dense(n);
    std::vector<uint32_t> strided(n * stride, 0xabababab);
    uint32_t running = 0;
    for (uint32_t i = 0; i < n; ++i) {
      running += static_cast<uint32_t>(rng.Below(4));
      dense[i] = running;
      strided[i * stride] = running;
    }
    for (int probe = 0; probe < 64; ++probe) {
      const uint32_t v = n == 0 ? static_cast<uint32_t>(rng.Below(10))
                                : dense[rng.Below(n)] +
                                      static_cast<uint32_t>(rng.Below(3)) - 1;
      const uint32_t expected_lb = static_cast<uint32_t>(
          std::lower_bound(dense.begin(), dense.end(), v) - dense.begin());
      const uint32_t expected_ub = static_cast<uint32_t>(
          std::upper_bound(dense.begin(), dense.end(), v) - dense.begin());
      for (const SimdLevel level : SupportedLevels()) {
        SetSimdLevel(level);
        ASSERT_EQ(
            kernels::LowerBoundStridedU32(strided.data(), stride, n, v),
            expected_lb)
            << "level " << SimdLevelName(level) << " n " << n << " v " << v;
        ASSERT_EQ(
            kernels::UpperBoundStridedU32(strided.data(), stride, n, v),
            expected_ub)
            << "level " << SimdLevelName(level) << " n " << n << " v " << v;
      }
    }
  }
}

// ProbeBatch: prefetch is a pure hint, Find runs in index order — results
// must match serial probing exactly, including misses, at every batch
// size around the pipeline depth.
TEST(KernelsProbeBatch, MatchesSerialFinds) {
  FlatTable<uint64_t, uint32_t> table(/*empty_key=*/~0ull);
  constexpr uint32_t kEntries = 500;
  table.Reset(kEntries);
  for (uint32_t i = 0; i < kEntries; ++i) {
    table.InsertUnique(i * 2 + 1) = i;  // odd keys present, even absent
  }
  Rng rng(61);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, kernels::kProbePrefetchDepth - 1,
        kernels::kProbePrefetchDepth, kernels::kProbePrefetchDepth + 1,
        std::size_t{100}}) {
    std::vector<uint64_t> keys(n);
    for (uint64_t& k : keys) k = rng.Below(2 * kEntries);
    std::vector<const uint32_t*> serial(n);
    for (std::size_t i = 0; i < n; ++i) serial[i] = table.Find(keys[i]);
    std::vector<const uint32_t*> batched(n, nullptr);
    std::size_t calls = 0;
    kernels::ProbeBatch(table, keys.data(), n,
                        [&](std::size_t i, const uint32_t* value) {
                          ASSERT_EQ(i, calls++);  // strict index order
                          batched[i] = value;
                        });
    ASSERT_EQ(calls, n);
    ASSERT_EQ(batched, serial);
  }
}

// PrefetchPipeline contract: every index is prefetched exactly once and
// consumed exactly once, consumption strictly ordered, and no prefetch
// lags its consume.
TEST(KernelsPrefetchPipeline, EveryIndexPrefetchedBeforeConsume) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{3},
                              kernels::kProbePrefetchDepth,
                              std::size_t{50}}) {
    std::vector<int> prefetched(n, 0);
    std::vector<int> consumed(n, 0);
    std::size_t next = 0;
    kernels::PrefetchPipeline(
        n, [&](std::size_t i) { ++prefetched[i]; },
        [&](std::size_t i) {
          ASSERT_EQ(i, next++);
          ASSERT_EQ(prefetched[i], 1) << "consume before prefetch at " << i;
          ++consumed[i];
        });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(prefetched[i], 1);
      ASSERT_EQ(consumed[i], 1);
    }
  }
}

}  // namespace
}  // namespace kgoa
