// Tests for estimator merging and the parallel OLA runner.
#include <gtest/gtest.h>

#include "src/ola/parallel.h"
#include "src/ola/wander.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

TEST(EstimatorMerge, EqualsSequentialAccumulation) {
  GroupedEstimates a, b, whole;
  const double values_a[] = {3, 0, 7};
  const double values_b[] = {5, 11};
  for (double v : values_a) {
    if (v > 0) {
      a.AddContribution(1, v);
      whole.AddContribution(1, v);
    }
    a.EndWalk(v == 0);
    whole.EndWalk(v == 0);
  }
  for (double v : values_b) {
    b.AddContribution(1, v);
    whole.AddContribution(1, v);
    b.EndWalk(false);
    whole.EndWalk(false);
  }
  GroupedEstimates merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.walks(), whole.walks());
  EXPECT_EQ(merged.rejected_walks(), whole.rejected_walks());
  EXPECT_DOUBLE_EQ(merged.Estimate(1), whole.Estimate(1));
  EXPECT_DOUBLE_EQ(merged.CiHalfWidth(1), whole.CiHalfWidth(1));
}

class ParallelTest : public ::testing::Test {
 protected:
  ParallelTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

TEST_F(ParallelTest, AuditWorkersConvergeMerged) {
  const ChainQuery query = Fig5(true);
  const GroupedResult exact = testing::BruteForce(graph_, query);

  ParallelOlaOptions options;
  options.threads = 3;
  options.use_audit = true;
  options.tipping_threshold = 2.0;  // stochastic mode
  const GroupedEstimates merged =
      RunParallelOla(indexes_, query, options, 0.15);

  EXPECT_GT(merged.walks(), 1000u);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(merged.Estimate(group), static_cast<double>(count),
                0.1 * static_cast<double>(count) + 0.1);
  }
}

TEST_F(ParallelTest, WanderWorkersConvergeOnNonDistinct) {
  const ChainQuery query = Fig5(false);
  const GroupedResult exact = testing::BruteForce(graph_, query);

  ParallelOlaOptions options;
  options.threads = 2;
  options.use_audit = false;
  const GroupedEstimates merged =
      RunParallelOla(indexes_, query, options, 0.15);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(merged.Estimate(group), static_cast<double>(count),
                0.1 * static_cast<double>(count) + 0.1);
  }
}

TEST_F(ParallelTest, SingleThreadWorks) {
  const ChainQuery query = Fig5(true);
  ParallelOlaOptions options;
  options.threads = 1;
  const GroupedEstimates merged =
      RunParallelOla(indexes_, query, options, 0.05);
  EXPECT_GT(merged.walks(), 0u);
}

}  // namespace
}  // namespace kgoa
