// Tests for estimator merging and the parallel OLA executor.
//
// The convergence tests use the deterministic walk-budget mode rather than
// wall-clock deadlines, so they are reproducible and independent of machine
// load — and they double as the tier-1 check of the executor's core
// guarantee: a budgeted run is a pure function of (query, seed, budget,
// workers), bit-identical across thread counts and equal to a sequential
// run over the union of the per-worker seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/audit.h"
#include "src/ola/parallel.h"
#include "src/ola/wander.h"
#include "src/util/simd.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

TEST(EstimatorMerge, EqualsSequentialAccumulation) {
  GroupedEstimates a, b, whole;
  const double values_a[] = {3, 0, 7};
  const double values_b[] = {5, 11};
  for (double v : values_a) {
    if (v > 0) {
      a.AddContribution(1, v);
      whole.AddContribution(1, v);
    }
    a.EndWalk(v == 0);
    whole.EndWalk(v == 0);
  }
  for (double v : values_b) {
    b.AddContribution(1, v);
    whole.AddContribution(1, v);
    b.EndWalk(false);
    whole.EndWalk(false);
  }
  GroupedEstimates merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.walks(), whole.walks());
  EXPECT_EQ(merged.rejected_walks(), whole.rejected_walks());
  EXPECT_DOUBLE_EQ(merged.Estimate(1), whole.Estimate(1));
  EXPECT_DOUBLE_EQ(merged.CiHalfWidth(1), whole.CiHalfWidth(1));
}

// Regression for the CI half-width against the closed form, with rejected
// walks counted as zero contributions in the denominator: contributions
// {10, 0 (rejected), 20, 0 (rejected)} give mean 30/4 = 7.5,
// sum of squares 500, SAMPLE variance (500 - 4 * 7.5^2) / (4 - 1)
// = 275/3, and half-width z * sqrt(variance / n). (The population form —
// dividing by n — was a bug: it made the interval systematically too
// tight at low walk counts.)
TEST(EstimatorCi, ClosedFormIncludesRejectedWalks) {
  GroupedEstimates est;
  est.AddContribution(1, 10.0);
  est.EndWalk(false);
  est.EndWalk(true);  // rejected: zero contribution, still a walk
  est.AddContribution(1, 20.0);
  est.EndWalk(false);
  est.EndWalk(true);

  EXPECT_EQ(est.walks(), 4u);
  EXPECT_EQ(est.rejected_walks(), 2u);
  EXPECT_DOUBLE_EQ(est.RejectionRate(), 0.5);
  EXPECT_DOUBLE_EQ(est.Estimate(1), 7.5);

  const double z = 1.959963984540054;
  const double variance = (500.0 - 4.0 * 7.5 * 7.5) / 3.0;  // 275/3
  EXPECT_DOUBLE_EQ(est.CiHalfWidth(1), z * std::sqrt(variance / 4.0));
  // Custom z values scale linearly.
  EXPECT_DOUBLE_EQ(est.CiHalfWidth(1, 1.0), std::sqrt(variance / 4.0));
  // Unknown group and tiny samples report no interval.
  EXPECT_DOUBLE_EQ(est.CiHalfWidth(99), 0.0);
  GroupedEstimates one_walk;
  one_walk.AddContribution(1, 5.0);
  one_walk.EndWalk(false);
  EXPECT_DOUBLE_EQ(one_walk.CiHalfWidth(1), 0.0);
}

// A second hand-computed sequence without rejections: {2, 4, 9} gives
// mean 5, sum of squares 101, sample variance (101 - 3 * 25) / 2 = 13,
// half-width z * sqrt(13 / 3) — and the sample variance must agree with
// the textbook sum-of-squared-deviations form.
TEST(EstimatorCi, ClosedFormSampleVariance) {
  GroupedEstimates est;
  for (double v : {2.0, 4.0, 9.0}) {
    est.AddContribution(7, v);
    est.EndWalk(false);
  }
  EXPECT_DOUBLE_EQ(est.Estimate(7), 5.0);
  const double deviations =
      (2.0 - 5.0) * (2.0 - 5.0) + (4.0 - 5.0) * (4.0 - 5.0) +
      (9.0 - 5.0) * (9.0 - 5.0);  // 26
  const double variance = deviations / 2.0;  // 13
  EXPECT_DOUBLE_EQ(est.CiHalfWidth(7, 1.0), std::sqrt(variance / 3.0));
  EXPECT_DOUBLE_EQ(est.CiHalfWidth(7),
                   1.959963984540054 * std::sqrt(variance / 3.0));
}

class ParallelTest : public ::testing::Test {
 protected:
  ParallelTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

void ExpectBitIdentical(const GroupedEstimates& a, const GroupedEstimates& b) {
  EXPECT_EQ(a.walks(), b.walks());
  EXPECT_EQ(a.rejected_walks(), b.rejected_walks());
  const auto ea = a.Estimates();
  const auto eb = b.Estimates();
  ASSERT_EQ(ea.size(), eb.size());
  for (const auto& [group, estimate] : ea) {
    const auto it = eb.find(group);
    ASSERT_NE(it, eb.end());
    EXPECT_EQ(estimate, it->second) << "group " << group;
    EXPECT_EQ(a.CiHalfWidth(group), b.CiHalfWidth(group)) << "group "
                                                          << group;
  }
}

// The satellite check: a 4-worker budgeted parallel run merges to exactly
// the same estimate as one sequential pass over the union of the per-worker
// seeds — GroupedEstimates::Merge is exact, not approximate.
TEST_F(ParallelTest, WalkBudgetEqualsSequentialUnionOfSeeds) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 2002;  // not divisible by 4: remainder path

  ParallelOlaOptions options;
  options.workers = 4;
  options.threads = 2;
  options.seed = 17;
  options.tipping_threshold = 2.0;
  const ParallelOlaResult parallel =
      ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(kBudget);
  EXPECT_EQ(parallel.workers, 4);
  EXPECT_EQ(parallel.estimates.walks(), kBudget);

  // Sequential reference: the same logical workers, run one after another
  // on this thread and merged in the same order.
  GroupedEstimates sequential;
  for (uint64_t w = 0; w < 4; ++w) {
    AuditJoin::Options aj;
    aj.seed = options.seed + w;
    aj.tipping_threshold = options.tipping_threshold;
    AuditJoin engine(indexes_, query, aj);
    engine.RunWalks(kBudget / 4 + (w < kBudget % 4 ? 1 : 0));
    sequential.Merge(engine.estimates());
  }
  ExpectBitIdentical(parallel.estimates, sequential);
}

TEST_F(ParallelTest, WalkBudgetBitIdenticalAcrossThreadCounts) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 3000;

  ParallelOlaOptions options;
  options.workers = 4;
  options.tipping_threshold = 2.0;
  GroupedEstimates reference;
  for (int threads : {1, 2, 4}) {
    options.threads = threads;
    const ParallelOlaResult run =
        ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(kBudget);
    EXPECT_EQ(run.estimates.walks(), kBudget);
    if (threads == 1) {
      reference = run.estimates;
    } else {
      ExpectBitIdentical(reference, run.estimates);
    }
  }
}

// The batching contract: walk RNG is counter-derived per walk index, so
// the SoA batched path (any width) produces bit-identical estimates to
// the unbatched path, at every thread count, for both walk-sampling
// engines. Widths bracket the default (32) and include a non-divisor of
// the per-slot budget (the final short batch).
TEST_F(ParallelTest, WalkBudgetBitIdenticalAcrossBatchWidths) {
  constexpr uint64_t kBudget = 3000;
  for (const OlaEngineKind engine :
       {OlaEngineKind::kAudit, OlaEngineKind::kWander}) {
    const ChainQuery query = Fig5(engine == OlaEngineKind::kAudit);
    ParallelOlaOptions options;
    options.workers = 4;
    options.engine = engine;
    options.tipping_threshold = 2.0;
    GroupedEstimates reference;
    bool have_reference = false;
    for (const uint32_t batch : {1u, 2u, 32u, 101u}) {
      for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE(::testing::Message()
                     << OlaEngineName(engine) << " batch=" << batch
                     << " threads=" << threads);
        options.threads = threads;
        options.batch_walks = batch;
        const ParallelOlaResult run =
            ParallelOlaExecutor(indexes_, query, options)
                .RunWalkBudget(kBudget);
        EXPECT_EQ(run.estimates.walks(), kBudget);
        if (batch > 1) {
          EXPECT_EQ(run.counters.batched_walks, kBudget);
        } else {
          EXPECT_EQ(run.counters.batched_walks, 0u);
        }
        if (!have_reference) {
          reference = run.estimates;
          have_reference = true;
        } else {
          ExpectBitIdentical(reference, run.estimates);
        }
      }
    }
  }
}

// The kernel layer is exact, not approximate: forcing the scalar dispatch
// level must reproduce the vectorized run bit for bit (decode, seek and
// probe kernels all sit under the walk inner loop).
TEST_F(ParallelTest, WalkBudgetBitIdenticalAcrossSimdLevels) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 2002;
  ParallelOlaOptions options;
  options.workers = 4;
  options.threads = 2;
  options.tipping_threshold = 2.0;
  const SimdLevel entry_level = CurrentSimdLevel();
  GroupedEstimates reference;
  bool have_reference = false;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
    SetSimdLevel(level);  // clamped to what the CPU supports
    const ParallelOlaResult run =
        ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(kBudget);
    if (!have_reference) {
      reference = run.estimates;
      have_reference = true;
    } else {
      ExpectBitIdentical(reference, run.estimates);
    }
  }
  SetSimdLevel(entry_level);
}

TEST_F(ParallelTest, AuditWorkersConvergeMerged) {
  const ChainQuery query = Fig5(true);
  const GroupedResult exact = testing::BruteForce(graph_, query);

  ParallelOlaOptions options;
  options.threads = 3;
  options.workers = 3;
  options.engine = OlaEngineKind::kAudit;
  options.tipping_threshold = 2.0;  // stochastic mode
  const ParallelOlaResult run =
      ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(30000);

  EXPECT_EQ(run.estimates.walks(), 30000u);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(run.estimates.Estimate(group), static_cast<double>(count),
                0.1 * static_cast<double>(count) + 0.1);
  }
}

TEST_F(ParallelTest, WanderWorkersConvergeOnNonDistinct) {
  const ChainQuery query = Fig5(false);
  const GroupedResult exact = testing::BruteForce(graph_, query);

  ParallelOlaOptions options;
  options.threads = 2;
  options.workers = 2;
  options.engine = OlaEngineKind::kWander;
  const ParallelOlaResult run =
      ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(30000);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(run.estimates.Estimate(group), static_cast<double>(count),
                0.1 * static_cast<double>(count) + 0.1);
  }
}

// Snapshot publishing: the callback observes monotonically growing partial
// merges while workers run, and one final snapshot with the exact budget.
TEST_F(ParallelTest, WalkBudgetSnapshotsPublishPartials) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 20000;

  ParallelOlaOptions options;
  options.workers = 4;
  options.threads = 4;
  options.tipping_threshold = 2.0;
  options.publish_every = 64;
  options.snapshot_period = 1e-4;  // as fast as the loop allows

  int snapshots = 0;
  int finals = 0;
  uint64_t last_walks = 0;
  const ParallelOlaResult run =
      ParallelOlaExecutor(indexes_, query, options)
          .RunWalkBudget(kBudget, [&](const OlaSnapshot& snapshot) {
            ++snapshots;
            ASSERT_NE(snapshot.estimates, nullptr);
            EXPECT_GE(snapshot.walks, last_walks);
            EXPECT_LE(snapshot.walks, kBudget);
            EXPECT_EQ(snapshot.walks, snapshot.estimates->walks());
            last_walks = snapshot.walks;
            if (snapshot.final_snapshot) {
              ++finals;
              EXPECT_EQ(snapshot.walks, kBudget);
            }
          });
  EXPECT_GE(snapshots, 1);
  EXPECT_EQ(finals, 1);
  EXPECT_EQ(run.estimates.walks(), kBudget);
}

TEST_F(ParallelTest, DeadlineModeAndLegacyWrapperWork) {
  const ChainQuery query = Fig5(true);
  ParallelOlaOptions options;
  options.threads = 2;
  int finals = 0;
  const ParallelOlaResult run =
      ParallelOlaExecutor(indexes_, query, options)
          .RunForDuration(0.05, [&](const OlaSnapshot& snapshot) {
            if (snapshot.final_snapshot) ++finals;
          });
  EXPECT_GT(run.estimates.walks(), 0u);
  EXPECT_EQ(finals, 1);
  EXPECT_GE(run.elapsed_seconds, 0.05);

  options.threads = 1;
  const GroupedEstimates merged =
      RunParallelOla(indexes_, query, options, 0.02);
  EXPECT_GT(merged.walks(), 0u);
}

}  // namespace
}  // namespace kgoa
