// Tests for src/join: pattern access, filters, LFTJ, CTJ and the baseline
// engine — each validated against the independent brute-force evaluator,
// then against each other on randomized graphs and queries.
#include <gtest/gtest.h>

#include "src/join/access.h"
#include "src/join/baseline.h"
#include "src/join/ctj.h"
#include "src/join/filter.h"
#include "src/join/leapfrog.h"
#include "src/join/yannakakis.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

class JoinTest : public ::testing::Test {
 protected:
  JoinTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) {
    const TermId id = graph_.dict().Lookup(term);
    EXPECT_NE(id, kInvalidTerm) << term;
    return id;
  }

  // "birthplaces of persons" — the paper's Figure 5 query.
  ChainQuery Figure5Query(bool distinct = true) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        /*alpha=*/2, /*beta=*/1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

TEST_F(JoinTest, PatternAccessBoundResolution) {
  // (?x influencedBy ?y) bound on ?x.
  const TriplePattern p =
      MakePattern(V(0), C(Id("influencedBy")), V(1));
  const PatternAccess access = PatternAccess::Compile(p, 0);
  EXPECT_EQ(access.Resolve(indexes_, Id("plato")).size(), 2u);
  EXPECT_EQ(access.Resolve(indexes_, Id("aristotle")).size(), 2u);
  EXPECT_EQ(access.Resolve(indexes_, Id("socrates")).size(), 0u);

  const PatternAccess reverse = PatternAccess::Compile(p, 1);
  EXPECT_EQ(reverse.Resolve(indexes_, Id("socrates")).size(), 2u);
  EXPECT_TRUE(reverse.Exists(indexes_, Id("plato")));
  EXPECT_FALSE(reverse.Exists(indexes_, Id("athens")));
}

TEST_F(JoinTest, PatternAccessUnboundAndTryCompile) {
  const TriplePattern all_vars = MakePattern(V(0), V(1), V(2));
  const PatternAccess access = PatternAccess::Compile(all_vars, kNoVar);
  EXPECT_EQ(access.Resolve(indexes_, kInvalidTerm).size(),
            graph_.NumTriples());

  // {s,o} fixed has no prefix order.
  const TriplePattern so =
      MakePattern(C(Id("plato")), V(0), C(Id("athens")));
  PatternAccess out;
  EXPECT_FALSE(PatternAccess::TryCompile(so, kNoVar, &out));
}

TEST_F(JoinTest, FilterSetChecks) {
  std::vector<TypeFilter> filters{
      TypeFilter{kSubject, graph_.rdf_type(), Id("Philosopher")}};
  const FilterSet filter(filters);
  EXPECT_FALSE(filter.empty());
  const TermId influenced = Id("influencedBy");
  EXPECT_TRUE(filter.Pass(
      indexes_, Triple{Id("plato"), influenced, Id("socrates")}));
  EXPECT_FALSE(filter.Pass(
      indexes_, Triple{Id("socrates"), influenced, Id("plato")}));
  EXPECT_TRUE(filter.PassComponent(indexes_, kSubject, Id("aristotle")));
  EXPECT_FALSE(filter.PassComponent(indexes_, kSubject, Id("athens")));
  // Filters on other components are ignored by PassComponent.
  EXPECT_TRUE(filter.PassComponent(indexes_, kObject, Id("athens")));
}

TEST_F(JoinTest, LftjCountsSimpleJoin) {
  // Philosophers influenced by persons: (?x type Philosopher),
  // (?x influencedBy ?y), (?y type Person).
  LeapfrogJoin join(indexes_,
                    {MakePattern(V(0), C(graph_.rdf_type()),
                                 C(Id("Philosopher"))),
                     MakePattern(V(0), C(Id("influencedBy")), V(1)),
                     MakePattern(V(1), C(graph_.rdf_type()),
                                 C(Id("Person")))});
  // plato<-socrates, plato<-parmenides, aristotle<-plato,
  // aristotle<-socrates.
  EXPECT_EQ(join.Count(), 4u);
}

TEST_F(JoinTest, LftjMatchesBruteForceOnFigure5) {
  const ChainQuery query = Figure5Query();
  EXPECT_EQ(EvaluateWithLftj(indexes_, query),
            testing::BruteForce(graph_, query));
  const ChainQuery plain = query.WithDistinct(false);
  EXPECT_EQ(EvaluateWithLftj(indexes_, plain),
            testing::BruteForce(graph_, plain));
}

TEST_F(JoinTest, CtjMatchesBruteForceOnFigure5) {
  CtjEngine engine(indexes_);
  const ChainQuery query = Figure5Query();
  EXPECT_EQ(engine.Evaluate(query), testing::BruteForce(graph_, query));
  const ChainQuery plain = query.WithDistinct(false);
  EXPECT_EQ(engine.Evaluate(plain), testing::BruteForce(graph_, plain));
}

TEST_F(JoinTest, YannakakisMatchesBruteForceOnFigure5) {
  const ChainQuery query = Figure5Query();
  EXPECT_EQ(EvaluateWithYannakakis(indexes_, query),
            testing::BruteForce(graph_, query));
  const ChainQuery plain = query.WithDistinct(false);
  EXPECT_EQ(EvaluateWithYannakakis(indexes_, plain),
            testing::BruteForce(graph_, plain));
}

TEST_F(JoinTest, BaselineMatchesBruteForceOnFigure5) {
  BaselineEngine engine(indexes_);
  const ChainQuery query = Figure5Query();
  const auto outcome = engine.Evaluate(query);
  EXPECT_FALSE(outcome.truncated);
  EXPECT_EQ(outcome.result, testing::BruteForce(graph_, query));
  EXPECT_GT(outcome.peak_rows, 0u);
}

TEST_F(JoinTest, BaselineTruncatesAtRowCap) {
  BaselineEngine::Options options;
  options.max_rows = 2;
  BaselineEngine engine(indexes_, options);
  const auto outcome = engine.Evaluate(Figure5Query());
  EXPECT_TRUE(outcome.truncated);
}

TEST_F(JoinTest, EnginesHandleEmptyResults) {
  // No philosopher has an incoming birthPlace edge.
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Philosopher"))),
       MakePattern(V(1), C(Id("birthPlace")), V(0))},
      1, 0, true);
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(CtjEngine(indexes_).Evaluate(*q).counts.empty());
  EXPECT_TRUE(EvaluateWithLftj(indexes_, *q).counts.empty());
  EXPECT_TRUE(BaselineEngine(indexes_).Evaluate(*q).result.counts.empty());
}

TEST_F(JoinTest, EnginesRespectFilters) {
  // Out-properties of persons who influenced philosophers (Example III.1):
  // (?x type Philosopher) (?x influencedBy ?o) (?o ?p ?z) with filter
  // type(o) = Person.
  std::vector<std::vector<TypeFilter>> filters(3);
  filters[2].push_back(
      TypeFilter{kSubject, graph_.rdf_type(), Id("Person")});
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Philosopher"))),
       MakePattern(V(0), C(Id("influencedBy")), V(1)),
       MakePattern(V(1), V(2), V(3))},
      filters, /*alpha=*/2, /*beta=*/1, true);
  ASSERT_TRUE(q.has_value());

  const GroupedResult expected = testing::BruteForce(graph_, *q);
  ASSERT_FALSE(expected.counts.empty());
  EXPECT_EQ(CtjEngine(indexes_).Evaluate(*q), expected);
  EXPECT_EQ(EvaluateWithLftj(indexes_, *q), expected);
  EXPECT_EQ(BaselineEngine(indexes_).Evaluate(*q).result, expected);

  // The filter excludes plato's influence on aristotle from ?o's bars
  // only when ?o is not a Person — here all influencers are persons, so
  // compare against the unfiltered query to ensure filters CAN restrict:
  // restrict to Philosopher instead.
  std::vector<std::vector<TypeFilter>> stricter(3);
  stricter[2].push_back(
      TypeFilter{kSubject, graph_.rdf_type(), Id("Philosopher")});
  auto q2 = ChainQuery::Create(
      {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Philosopher"))),
       MakePattern(V(0), C(Id("influencedBy")), V(1)),
       MakePattern(V(1), V(2), V(3))},
      stricter, 2, 1, true);
  ASSERT_TRUE(q2.has_value());
  const GroupedResult stricter_result = CtjEngine(indexes_).Evaluate(*q2);
  EXPECT_EQ(stricter_result, testing::BruteForce(graph_, *q2));
  EXPECT_LE(stricter_result.Total(), expected.Total());
}

TEST_F(JoinTest, ChainSuffixCounterCountsAndCaches) {
  // Completions of (?x influencedBy ?y)(?y type Person) from each ?x.
  ChainSuffixCounter counter(
      indexes_,
      {MakePattern(V(0), C(Id("influencedBy")), V(1)),
       MakePattern(V(1), C(graph_.rdf_type()), C(Id("Person")))},
      {0, 1});
  EXPECT_EQ(counter.Count(0, Id("plato")), 2u);
  EXPECT_EQ(counter.Count(0, Id("aristotle")), 2u);
  EXPECT_EQ(counter.Count(0, Id("socrates")), 0u);
  const uint64_t misses_before = counter.cache_misses();
  EXPECT_EQ(counter.Count(0, Id("plato")), 2u);  // cached
  EXPECT_EQ(counter.cache_misses(), misses_before);
  EXPECT_GT(counter.cache_hits(), 0u);
  counter.ClearCache();
  EXPECT_EQ(counter.cache_hits(), 0u);
  EXPECT_EQ(counter.Count(0, Id("plato")), 2u);
}

TEST_F(JoinTest, ChainSuffixCounterCachingAblation) {
  ChainSuffixCounter counter(
      indexes_,
      {MakePattern(V(0), C(Id("influencedBy")), V(1)),
       MakePattern(V(1), C(graph_.rdf_type()), C(Id("Person")))},
      {0, 1});
  counter.set_caching_enabled(false);
  EXPECT_EQ(counter.Count(0, Id("plato")), 2u);
  EXPECT_EQ(counter.Count(0, Id("plato")), 2u);
  EXPECT_EQ(counter.cache_hits(), 0u);  // never hits with caching off
}

// The generic LFTJ is worst-case optimal beyond chains: it evaluates
// cyclic patterns (triangles) too, which the chain-specific engines cannot
// — a classic WCOJ capability check.
TEST(LftjGeneric, CountsTriangles) {
  GraphBuilder b;
  const TermId edge = b.Intern("edge");
  auto node = [&](int i) { return b.Intern("n" + std::to_string(i)); };
  // Two triangles (0,1,2) and (2,3,4) plus noise edges.
  const int triangle_edges[][2] = {{0, 1}, {1, 2}, {2, 0},
                                   {2, 3}, {3, 4}, {4, 2}};
  for (const auto& e : triangle_edges) b.Add(node(e[0]), edge, node(e[1]));
  b.Add(node(0), edge, node(3));
  b.Add(node(4), edge, node(1));
  Graph g = std::move(b).Build();
  IndexSet indexes(g);

  const TermId edge_id = g.dict().Lookup("edge");
  LeapfrogJoin join(indexes,
                    {MakePattern(V(0), C(edge_id), V(1)),
                     MakePattern(V(1), C(edge_id), V(2)),
                     MakePattern(V(2), C(edge_id), V(0))});
  // Each directed triangle is found once per rotation of the start node:
  // 2 triangles x 3 rotations.
  EXPECT_EQ(join.Count(), 6u);
}

TEST(LftjGeneric, CountsTrianglesAgainstBruteForce) {
  Rng rng(31337);
  for (int round = 0; round < 5; ++round) {
    GraphBuilder b;
    const TermId edge = b.Intern("edge");
    std::vector<TermId> nodes;
    for (int i = 0; i < 12; ++i) {
      nodes.push_back(b.Intern("m" + std::to_string(i)));
    }
    for (int i = 0; i < 50; ++i) {
      b.Add(nodes[rng.Below(nodes.size())], edge,
            nodes[rng.Below(nodes.size())]);
    }
    Graph g = std::move(b).Build();
    IndexSet indexes(g);

    uint64_t expected = 0;
    for (const Triple& t1 : g.triples()) {
      for (const Triple& t2 : g.triples()) {
        if (t2.s != t1.o) continue;
        for (const Triple& t3 : g.triples()) {
          expected += t3.s == t2.o && t3.o == t1.s;
        }
      }
    }
    const TermId edge_id = g.dict().Lookup("edge");
    LeapfrogJoin join(indexes,
                      {MakePattern(V(0), C(edge_id), V(1)),
                       MakePattern(V(1), C(edge_id), V(2)),
                       MakePattern(V(2), C(edge_id), V(0))});
    ASSERT_EQ(join.Count(), expected);
  }
}

// ---------------------------------------------------------------------------
// Randomized cross-engine agreement: LFTJ == CTJ == Baseline == brute force
// on random graphs and random chain queries, with and without distinct.
// ---------------------------------------------------------------------------

struct AgreementCase {
  uint64_t seed;
  int length;
  bool distinct;
};

class EngineAgreement : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(EngineAgreement, AllEnginesMatchBruteForce) {
  const AgreementCase param = GetParam();
  Rng rng(param.seed);
  Graph graph = testing::RandomGraph(rng);
  IndexSet indexes(graph);

  int tested = 0;
  for (int attempt = 0; attempt < 40 && tested < 5; ++attempt) {
    auto query = testing::RandomChainQuery(rng, graph, param.length,
                                           param.distinct);
    if (!query.has_value()) continue;
    ++tested;
    const GroupedResult expected = testing::BruteForce(graph, *query);
    ASSERT_EQ(CtjEngine(indexes).Evaluate(*query), expected)
        << query->ToSparql();
    ASSERT_EQ(EvaluateWithLftj(indexes, *query), expected)
        << query->ToSparql();
    ASSERT_EQ(BaselineEngine(indexes).Evaluate(*query).result, expected)
        << query->ToSparql();
    ASSERT_EQ(EvaluateWithYannakakis(indexes, *query), expected)
        << query->ToSparql();
  }
  EXPECT_GT(tested, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineAgreement,
    ::testing::Values(
        AgreementCase{1, 1, true}, AgreementCase{2, 1, false},
        AgreementCase{3, 2, true}, AgreementCase{4, 2, false},
        AgreementCase{5, 3, true}, AgreementCase{6, 3, false},
        AgreementCase{7, 4, true}, AgreementCase{8, 4, false},
        AgreementCase{9, 5, true}, AgreementCase{10, 5, false},
        AgreementCase{11, 3, true}, AgreementCase{12, 4, true},
        AgreementCase{13, 2, true}, AgreementCase{14, 2, false},
        AgreementCase{15, 3, false}, AgreementCase{16, 4, false}),
    [](const ::testing::TestParamInfo<AgreementCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_len" +
             std::to_string(info.param.length) +
             (info.param.distinct ? "_distinct" : "_plain");
    });

}  // namespace
}  // namespace kgoa
