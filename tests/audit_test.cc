// Tests for src/core: tipping estimator, reach probabilities, and Audit
// Join — including the deterministic unbiasedness checks for Propositions
// IV.1 (count) and IV.2 (count-distinct) across walk orders and tipping
// thresholds.
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/core/audit.h"
#include "src/core/reach.h"
#include "src/core/tipping.h"
#include "src/eval/runner.h"
#include "src/join/leapfrog.h"
#include "src/ola/wander.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

TEST_F(AuditTest, TippingSuffixEstimatesArePositiveAndComposed) {
  const ChainQuery query = Fig5(false);
  const WalkPlan plan = WalkPlan::Compile(query);
  const TippingEstimator tipping(indexes_, plan);
  EXPECT_DOUBLE_EQ(tipping.StaticSuffixEstimate(plan.NumSteps()), 1.0);
  for (int q = 0; q < plan.NumSteps(); ++q) {
    EXPECT_GT(tipping.StaticSuffixEstimate(q), 0.0);
  }
  // Suffix estimates compose multiplicatively: estimate(q) =
  // fanout(q) * estimate(q+1), so the ratio is the per-step fan-out.
  const double fanout0 =
      tipping.StaticSuffixEstimate(0) / tipping.StaticSuffixEstimate(1);
  EXPECT_DOUBLE_EQ(fanout0,
                   static_cast<double>(indexes_.CountMatches(
                       query.patterns()[0])));
  // Estimate seeds with the actual fan-out.
  EXPECT_DOUBLE_EQ(tipping.Estimate(10, 0),
                   10.0 * tipping.StaticSuffixEstimate(1));
}

TEST_F(AuditTest, ReachProbabilitiesSumToAcceptance) {
  // For a fixed walk order, sum of Pr(a, b) over all (a, b) pairs equals
  // the probability that a walk completes at all.
  const ChainQuery query = Fig5(true);
  for (const auto& order : CandidateWalkOrders(query.NumPatterns())) {
    const WalkPlan plan = WalkPlan::Compile(query, order);
    ReachProbability reach(indexes_, plan);

    // Collect all (a, b) pairs and the exact acceptance probability from
    // an exhaustive walk of the same plan.
    AuditJoin::Options options;
    options.walk_order = order;
    options.enable_tipping = false;
    AuditJoin audit(indexes_, query, options);
    double accept = 0;
    std::unordered_map<uint64_t, bool> pairs;
    // Walks reach (a, b) pairs exactly when contributions are nonzero.
    audit.EnumerateAllWalks(
        [&](double prob, const AuditJoin::ContributionMap& cm) {
          if (!cm.empty()) accept += prob;
        });

    const GroupedResult plain =
        testing::BruteForce(graph_, query.WithDistinct(false));
    (void)plain;
    // Enumerate pairs via brute force on the distinct query.
    const GroupedResult exact = testing::BruteForce(graph_, query);
    double sum = 0;
    // All (alpha, beta) pairs: re-derive from a full enumeration.
    // For this graph: classes of birth places of persons.
    for (const auto& [a, unused] : exact.counts) {
      for (const Triple& t : graph_.triples()) {
        if (t.p == graph_.rdf_type() && t.o == a) {
          const double pr = reach.PrAB(a, t.s);
          sum += pr;
        }
      }
    }
    EXPECT_NEAR(sum, accept, 1e-9) << "order size " << order.size();
  }
}

TEST_F(AuditTest, ReachProbabilityHandComputed) {
  // Query: (?x type Person)(?x influencedBy ?y), alpha = beta = ... use
  // alpha=1 (the influenced), beta=0 (the influencer side? both in the
  // last pattern). Forward walk: step 0 samples one of the 4 persons'
  // type triples, step 1 one of their influencedBy edges.
  auto q = ChainQuery::Create(
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(graph_.rdf_type()),
                   Slot::MakeConst(Id("Person"))),
       MakePattern(Slot::MakeVar(0), Slot::MakeConst(Id("influencedBy")),
                   Slot::MakeVar(1))},
      /*alpha=*/1, /*beta=*/0, true);
  ASSERT_TRUE(q.has_value());
  const WalkPlan plan = WalkPlan::Compile(*q);  // forward
  ReachProbability reach(indexes_, plan);

  // Persons: plato, aristotle, socrates, parmenides (d0 = 4).
  // plato influencedBy {socrates, parmenides} (d=2);
  // aristotle influencedBy {plato, socrates} (d=2); others dead-end.
  // Pr(a=socrates, b=plato)     = 1/4 * 1/2 = 1/8.
  // Pr(a=parmenides, b=plato)   = 1/8.
  // Pr(a=plato, b=aristotle)    = 1/8.
  // Pr(a=socrates, b=aristotle) = 1/8.
  EXPECT_NEAR(reach.PrAB(Id("socrates"), Id("plato")), 0.125, 1e-12);
  EXPECT_NEAR(reach.PrAB(Id("parmenides"), Id("plato")), 0.125, 1e-12);
  EXPECT_NEAR(reach.PrAB(Id("plato"), Id("aristotle")), 0.125, 1e-12);
  EXPECT_NEAR(reach.PrAB(Id("socrates"), Id("aristotle")), 0.125, 1e-12);
  // Unreachable pairs have zero mass.
  EXPECT_NEAR(reach.PrAB(Id("plato"), Id("socrates")), 0.0, 1e-12);
  // Repeat queries hit the cache.
  const uint64_t misses = reach.cache_misses();
  EXPECT_NEAR(reach.PrAB(Id("socrates"), Id("plato")), 0.125, 1e-12);
  EXPECT_EQ(reach.cache_misses(), misses);
  EXPECT_GT(reach.cache_hits(), 0u);
}

TEST_F(AuditTest, AcceptFromMatchesHandComputedValues) {
  // Same query, acceptance of the suffix from step 1 given ?x:
  // plato/aristotle accept with probability 1, others 0.
  auto q = ChainQuery::Create(
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(graph_.rdf_type()),
                   Slot::MakeConst(Id("Person"))),
       MakePattern(Slot::MakeVar(0), Slot::MakeConst(Id("influencedBy")),
                   Slot::MakeVar(1))},
      1, 0, true);
  ASSERT_TRUE(q.has_value());
  const WalkPlan plan = WalkPlan::Compile(*q);
  ReachProbability reach(indexes_, plan);
  EXPECT_NEAR(reach.AcceptFrom(1, Id("plato")), 1.0, 1e-12);
  EXPECT_NEAR(reach.AcceptFrom(1, Id("aristotle")), 1.0, 1e-12);
  EXPECT_NEAR(reach.AcceptFrom(1, Id("socrates")), 0.0, 1e-12);
}

// Random-graph property: for any walk plan, the sum of Pr(a, b) over all
// (alpha, beta) pairs of the full join equals the walk's acceptance
// probability (mass of non-rejected walks).
TEST(ReachRandom, PrAbSumsToAcceptanceProbability) {
  Rng rng(5150);
  for (int round = 0; round < 6; ++round) {
    Graph graph = testing::RandomGraph(rng);
    IndexSet indexes(graph);
    auto query = testing::RandomChainQuery(
        rng, graph, 1 + static_cast<int>(rng.Below(4)), true);
    if (!query.has_value()) continue;

    // All (a, b) pairs via brute force enumeration.
    std::vector<std::pair<TermId, TermId>> pairs;
    {
      const GroupedResult plain =
          testing::BruteForce(graph, query->WithDistinct(false));
      (void)plain;
      // Enumerate distinct pairs: reuse BruteForce's distinct grouping by
      // collecting pairs through a probe query per group is wasteful;
      // instead walk all assignments directly.
      // (Simpler: use WanderJoin::EnumerateAllWalks on the non-distinct
      // query, recording alpha/beta — but it lacks beta. Use AJ's
      // enumeration with tipping disabled: contribution keys are groups;
      // so collect pairs via a full LFTJ enumeration.)
      LeapfrogJoin join(indexes, query->patterns());
      int alpha_pos = -1, beta_pos = -1;
      for (std::size_t i = 0; i < join.var_order().size(); ++i) {
        if (join.var_order()[i] == query->alpha()) {
          alpha_pos = static_cast<int>(i);
        }
        if (join.var_order()[i] == query->beta()) {
          beta_pos = static_cast<int>(i);
        }
      }
      std::unordered_set<uint64_t> seen;
      join.Enumerate([&](const std::vector<TermId>& binding) {
        if (seen.insert(PackPair(binding[alpha_pos], binding[beta_pos]))
                .second) {
          pairs.emplace_back(binding[alpha_pos], binding[beta_pos]);
        }
      });
    }

    for (const auto& order : CandidateWalkOrders(query->NumPatterns())) {
      const WalkPlan plan = WalkPlan::Compile(*query, order);
      ReachProbability reach(indexes, plan);
      double sum = 0;
      for (const auto& [a, b] : pairs) sum += reach.PrAB(a, b);

      AuditJoin::Options options;
      options.walk_order = order;
      options.enable_tipping = false;
      AuditJoin audit(indexes, *query, options);
      double accept = 0;
      audit.EnumerateAllWalks(
          [&](double prob, const AuditJoin::ContributionMap& cm) {
            if (!cm.empty()) accept += prob;
          });
      ASSERT_NEAR(sum, accept, 1e-9) << query->ToSparql();
    }
  }
}

// Deterministic unbiasedness of Audit Join (Propositions IV.1 and IV.2):
// the probability-weighted sum of contributions over all stoppable
// prefixes equals the exact count, for every tipping threshold and walk
// order, with and without distinct.
struct AuditCase {
  uint64_t seed;
  int length;
  bool distinct;
  double threshold;
};

class AuditUnbiased : public ::testing::TestWithParam<AuditCase> {};

TEST_P(AuditUnbiased, ExhaustiveExpectationEqualsExact) {
  const AuditCase param = GetParam();
  Rng rng(param.seed);
  Graph graph = testing::RandomGraph(rng);
  IndexSet indexes(graph);

  int tested = 0;
  for (int attempt = 0; attempt < 30 && tested < 3; ++attempt) {
    auto query = testing::RandomChainQuery(rng, graph, param.length,
                                           param.distinct);
    if (!query.has_value()) continue;
    ++tested;
    const GroupedResult exact = testing::BruteForce(graph, *query);

    for (const auto& order : CandidateWalkOrders(query->NumPatterns())) {
      AuditJoin::Options options;
      options.walk_order = order;
      options.tipping_threshold = param.threshold;
      options.enable_tipping = param.threshold > 0;
      AuditJoin audit(indexes, *query, options);

      std::unordered_map<TermId, double> expectation;
      double total_probability = 0;
      audit.EnumerateAllWalks(
          [&](double prob, const AuditJoin::ContributionMap& cm) {
            total_probability += prob;
            for (const auto& [group, contribution] : cm) {
              expectation[group] += prob * contribution;
            }
          });
      ASSERT_NEAR(total_probability, 1.0, 1e-9);

      for (const auto& [group, count] : exact.counts) {
        ASSERT_NEAR(expectation[group], static_cast<double>(count),
                    1e-6 * (1 + count))
            << query->ToSparql() << "\nthreshold " << param.threshold;
      }
      for (const auto& [group, value] : expectation) {
        ASSERT_NEAR(value, static_cast<double>(exact.CountFor(group)),
                    1e-6 * (1 + value));
      }
    }
  }
  EXPECT_GT(tested, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AuditUnbiased,
    ::testing::Values(
        // Never tip (pure Wander-Join behaviour with the AJ estimators).
        AuditCase{21, 2, false, 0}, AuditCase{22, 3, true, 0},
        // Small thresholds: mixed behaviour.
        AuditCase{23, 1, true, 2}, AuditCase{24, 2, true, 2},
        AuditCase{25, 2, false, 4}, AuditCase{26, 3, true, 4},
        AuditCase{27, 3, false, 8}, AuditCase{28, 4, true, 8},
        AuditCase{29, 4, false, 16},
        // Large threshold: always tip at the first step (exact counts).
        AuditCase{30, 2, true, 1e18}, AuditCase{31, 3, false, 1e18},
        AuditCase{32, 3, true, 1e18}, AuditCase{33, 4, true, 64},
        AuditCase{34, 1, false, 2}, AuditCase{35, 1, true, 1e18},
        AuditCase{36, 5, true, 8}),
    [](const ::testing::TestParamInfo<AuditCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_len" +
             std::to_string(info.param.length) +
             (info.param.distinct ? "_distinct" : "_plain") + "_t" +
             std::to_string(static_cast<int>(
                 std::min(info.param.threshold, 1e6)));
    });

TEST_F(AuditTest, ConvergesFasterOrExactWithAlwaysTip) {
  // With an effectively infinite threshold, AJ computes the exact result
  // on the first walk.
  const ChainQuery query = Fig5(true);
  const GroupedResult exact = testing::BruteForce(graph_, query);
  AuditJoin::Options options;
  options.tipping_threshold = 1e18;
  AuditJoin audit(indexes_, query, options);
  audit.RunWalks(1);
  EXPECT_EQ(audit.tipped_walks(), 1u);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(audit.estimates().Estimate(group),
                static_cast<double>(count), 1e-9);
  }
}

TEST_F(AuditTest, StochasticConvergenceDistinct) {
  const ChainQuery query = Fig5(true);
  const GroupedResult exact = testing::BruteForce(graph_, query);
  AuditJoin::Options options;
  options.tipping_threshold = 2.0;  // force mostly random-walk behaviour
  options.walk_order = DefaultAuditOrder(query);
  AuditJoin audit(indexes_, query, options);
  audit.RunWalks(100000);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(audit.estimates().Estimate(group),
                static_cast<double>(count),
                0.05 * static_cast<double>(count) + 0.05);
  }
}

TEST_F(AuditTest, StochasticConvergenceNonDistinct) {
  const ChainQuery query = Fig5(false);
  const GroupedResult exact = testing::BruteForce(graph_, query);
  AuditJoin::Options options;
  options.tipping_threshold = 2.0;
  AuditJoin audit(indexes_, query, options);
  audit.RunWalks(100000);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(audit.estimates().Estimate(group),
                static_cast<double>(count),
                0.05 * static_cast<double>(count) + 0.05);
  }
}

TEST_F(AuditTest, DisabledTippingMatchesWanderBehaviour) {
  const ChainQuery query = Fig5(false);
  AuditJoin::Options options;
  options.enable_tipping = false;
  AuditJoin audit(indexes_, query, options);
  audit.RunWalks(5000);
  EXPECT_EQ(audit.tipped_walks(), 0u);
  EXPECT_GT(audit.full_walks(), 0u);
}

TEST_F(AuditTest, TipAbortFallsBackToSampling) {
  const ChainQuery query = Fig5(false);
  AuditJoin::Options options;
  options.tipping_threshold = 1e18;  // always try to tip
  options.max_tip_enumeration = 1;   // but never allow the enumeration
  AuditJoin audit(indexes_, query, options);
  audit.RunWalks(2000);
  EXPECT_GT(audit.tip_aborts(), 0u);
  EXPECT_GT(audit.full_walks() + audit.estimates().rejected_walks(), 0u);
  // Estimates remain unbiased under aborts (deterministic decision): check
  // via exhaustive expectation.
  AuditJoin fresh(indexes_, query, options);
  const GroupedResult exact = testing::BruteForce(graph_, query);
  std::unordered_map<TermId, double> expectation;
  fresh.EnumerateAllWalks(
      [&](double prob, const AuditJoin::ContributionMap& cm) {
        for (const auto& [group, contribution] : cm) {
          expectation[group] += prob * contribution;
        }
      });
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(expectation[group], static_cast<double>(count), 1e-6);
  }
}

TEST_F(AuditTest, FiltersRespectedWithTipping) {
  // Out-properties of Persons who influenced philosophers (Example III.1)
  // with the Person restriction as a fused filter.
  std::vector<std::vector<TypeFilter>> filters(3);
  filters[2].push_back(
      TypeFilter{kSubject, graph_.rdf_type(), Id("Person")});
  auto query = ChainQuery::Create(
      {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Philosopher"))),
       MakePattern(V(0), C(Id("influencedBy")), V(1)),
       MakePattern(V(1), V(2), V(3))},
      filters, 2, 1, true);
  ASSERT_TRUE(query.has_value());
  const GroupedResult exact = testing::BruteForce(graph_, *query);

  for (double threshold : {0.0, 3.0, 1e18}) {
    AuditJoin::Options options;
    options.tipping_threshold = threshold;
    options.enable_tipping = threshold > 0;
    AuditJoin audit(indexes_, *query, options);
    std::unordered_map<TermId, double> expectation;
    audit.EnumerateAllWalks(
        [&](double prob, const AuditJoin::ContributionMap& cm) {
          for (const auto& [group, contribution] : cm) {
            expectation[group] += prob * contribution;
          }
        });
    for (const auto& [group, count] : exact.counts) {
      EXPECT_NEAR(expectation[group], static_cast<double>(count), 1e-6)
          << "threshold " << threshold;
    }
  }
}

TEST_F(AuditTest, RejectionRateBelowWanderOnSelectiveQuery) {
  // Person -> influencedBy: dead ends through socrates/parmenides. With a
  // permissive threshold AJ tips before dying.
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
       MakePattern(V(0), C(Id("influencedBy")), V(1))},
      1, 0, false);
  ASSERT_TRUE(q.has_value());

  WanderJoin wander(indexes_, *q);
  wander.RunWalks(20000);

  AuditJoin::Options options;
  options.tipping_threshold = 8;
  AuditJoin audit(indexes_, *q, options);
  audit.RunWalks(20000);

  EXPECT_LT(audit.estimates().RejectionRate(),
            wander.estimates().RejectionRate());
}

TEST_F(AuditTest, EmptyResultQueryNeverContributes) {
  // No philosopher has an incoming birthPlace edge: the join is empty.
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Philosopher"))),
       MakePattern(V(1), C(Id("birthPlace")), V(0))},
      1, 0, true);
  ASSERT_TRUE(q.has_value());
  for (double threshold : {0.0, 64.0}) {
    AuditJoin::Options options;
    options.tipping_threshold = threshold;
    options.enable_tipping = threshold > 0;
    AuditJoin audit(indexes_, *q, options);
    audit.RunWalks(5000);
    EXPECT_TRUE(audit.estimates().Estimates().empty());
    EXPECT_EQ(audit.estimates().walks(), 5000u);
  }
}

TEST_F(AuditTest, SuffixCountCacheIsReused) {
  const ChainQuery query = Fig5(false);
  AuditJoin::Options options;
  options.walk_order = DefaultAuditOrder(query);
  options.tipping_threshold = 8;
  AuditJoin audit(indexes_, query, options);
  audit.RunWalks(5000);
  if (audit.tipped_walks() > 100) {
    EXPECT_GT(audit.suffix_cache_hits(), 0u);
  }
}

}  // namespace
}  // namespace kgoa
