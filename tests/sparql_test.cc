// Tests for the SPARQL-fragment parser (src/query/sparql.h).
#include <gtest/gtest.h>

#include "src/join/ctj.h"
#include "src/query/sparql.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

class SparqlTest : public ::testing::Test {
 protected:
  SparqlTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}
  Graph graph_;
  IndexSet indexes_;
};

TEST_F(SparqlTest, ParsesFigure5Query) {
  const auto result = ParseSparqlCount(R"(
    SELECT ?c COUNT(DISTINCT ?o) WHERE {
      ?s <birthPlace> ?o .
      ?s rdf:type <Person> .
      ?o rdf:type ?c .
    } GROUP BY ?c
  )",
                                       graph_.dict());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.query->distinct());
  EXPECT_EQ(result.query->NumPatterns(), 3);

  const GroupedResult counts = CtjEngine(indexes_).Evaluate(*result.query);
  EXPECT_EQ(counts, testing::BruteForce(graph_, *result.query));
  EXPECT_EQ(counts.CountFor(graph_.dict().Lookup("City")), 2u);
}

TEST_F(SparqlTest, ParsesWithoutDistinctAndCaseInsensitive) {
  const auto result = ParseSparqlCount(
      "select ?p count(?s) where { ?s ?p ?o . } group by ?p",
      graph_.dict());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_FALSE(result.query->distinct());
  EXPECT_EQ(result.query->NumPatterns(), 1);
}

TEST_F(SparqlTest, ParsesCommentsAndLiterals) {
  GraphBuilder b;
  b.AddSpelled("s", "p", "\"hello\"");
  Graph g = std::move(b).Build();
  const auto result = ParseSparqlCount(R"(
    # which subjects have the literal?
    SELECT ?s COUNT(DISTINCT ?s) WHERE {
      ?s <p> "hello" .
    } GROUP BY ?s
  )",
                                       g.dict());
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST_F(SparqlTest, ParsesFilterExists) {
  const auto result = ParseSparqlCount(R"(
    SELECT ?p COUNT(DISTINCT ?o) WHERE {
      ?x rdf:type <Philosopher> .
      ?x <influencedBy> ?o .
      ?o ?p ?z .
      FILTER EXISTS { ?o rdf:type <Person> } .
    } GROUP BY ?p
  )",
                                       graph_.dict());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.query->HasAnyFilter());
  const GroupedResult counts = CtjEngine(indexes_).Evaluate(*result.query);
  EXPECT_EQ(counts, testing::BruteForce(graph_, *result.query));
}

TEST_F(SparqlTest, RoundTripsToSparqlOutput) {
  // Queries rendered by ChainQuery::ToSparql(dict) reparse to a
  // semantically identical query.
  auto original = ParseSparqlCount(R"(
    SELECT ?c COUNT(DISTINCT ?o) WHERE {
      ?s <birthPlace> ?o .
      ?o rdf:type ?c .
    } GROUP BY ?c
  )",
                                   graph_.dict());
  ASSERT_TRUE(original.ok());
  const std::string rendered = original.query->ToSparql(&graph_.dict());
  const auto reparsed = ParseSparqlCount(rendered, graph_.dict());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error << "\n" << rendered;
  CtjEngine engine(indexes_);
  EXPECT_EQ(engine.Evaluate(*original.query),
            engine.Evaluate(*reparsed.query));
}

TEST_F(SparqlTest, ErrorsAreDescriptive) {
  struct Case {
    const char* text;
    const char* expect_substring;
  };
  const Case cases[] = {
      {"FOO ?x", "SELECT"},
      {"SELECT ?c COUNT(?x WHERE { ?x ?p ?o . } GROUP BY ?c", ")"},
      {"SELECT ?c COUNT(?c) WHERE { ?x <nosuchterm> ?c . } GROUP BY ?c",
       "unknown term"},
      {"SELECT ?c COUNT(?c) WHERE { ?x ?p ?c . } GROUP BY ?other",
       "GROUP BY"},
      {"SELECT ?c COUNT(?z) WHERE { ?x ?p ?c . } GROUP BY ?c",
       "does not occur"},
      {"SELECT ?c COUNT(?c) WHERE { ?x ?p ?c } GROUP BY ?c", "'.'"},
      {"SELECT ?c COUNT(?c) WHERE { \"lit\" ?p ?c . } GROUP BY ?c",
       "literal"},
  };
  for (const Case& c : cases) {
    const auto result = ParseSparqlCount(c.text, graph_.dict());
    EXPECT_FALSE(result.ok()) << c.text;
    EXPECT_NE(result.error.find(c.expect_substring), std::string::npos)
        << "got: " << result.error;
  }
}

TEST_F(SparqlTest, RejectsNonChainQueries) {
  const auto result = ParseSparqlCount(R"(
    SELECT ?a COUNT(?a) WHERE {
      ?a <birthPlace> ?b .
      ?c <birthPlace> ?d .
    } GROUP BY ?a
  )",
                                       graph_.dict());
  EXPECT_FALSE(result.ok());
}

TEST_F(SparqlTest, ReportsErrorLine) {
  const auto result = ParseSparqlCount(
      "SELECT ?c COUNT(?c)\nWHERE {\n  ?x <nosuch> ?c .\n} GROUP BY ?c",
      graph_.dict());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error_line, 3u);
}

}  // namespace
}  // namespace kgoa
