// Tests for the shared concurrent reach-probability cache and the sharded
// flat table underneath it.
//
// The load-bearing guarantees exercised here:
//  * sharing ONE cache across workers never changes estimates — the memo
//    values are pure functions of (indexes, plan), so insert races are
//    benign and walk-budget runs stay bit-identical across thread counts;
//  * the flat Pr(a, b) memo agrees with an independent reference map
//    computed by exhaustive walk enumeration (differential test);
//  * the table survives concurrent hammering (run under TSan by tier1.sh)
//    and its atomic counters stay coherent.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/audit.h"
#include "src/core/explorer.h"
#include "src/core/reach.h"
#include "src/explore/cache.h"
#include "src/index/concurrent_flat_table.h"
#include "src/ola/parallel.h"
#include "src/ola/walk_plan.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

// ---------------------------------------------------------------------------
// ShardedFlatTable unit tests.

TEST(ShardedFlatTable, InsertFindAndStats) {
  ShardedFlatTable<uint64_t, double> table(~0ull, /*shard_bits=*/2);
  EXPECT_EQ(table.num_shards(), 4u);
  EXPECT_EQ(table.Find(7), nullptr);
  EXPECT_DOUBLE_EQ(table.Insert(7, 1.5), 1.5);
  const double* found = table.Find(7);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(*found, 1.5);
  EXPECT_EQ(table.size(), 1u);

  const ShardedTableStats stats = table.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.memory_bytes, 0u);
}

TEST(ShardedFlatTable, DuplicateInsertReturnsCanonicalValue) {
  ShardedFlatTable<uint64_t, double> table(~0ull);
  EXPECT_DOUBLE_EQ(table.Insert(42, 2.0), 2.0);
  // A benign race re-inserting the same key keeps the resident value; the
  // duplicate is counted, not stored.
  EXPECT_DOUBLE_EQ(table.Insert(42, 2.0), 2.0);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().duplicate_inserts, 1u);
}

TEST(ShardedFlatTable, GrowsPastInitialCapacityAndKeepsPointersValid) {
  ShardedFlatTable<uint64_t, double> table(~0ull, /*shard_bits=*/1,
                                           /*initial_shard_capacity=*/8);
  constexpr uint64_t kKeys = 20000;
  table.Insert(1, 0.5);
  // Find() pointers must survive growth: retired arrays are kept alive.
  const double* early = table.Find(1);
  ASSERT_NE(early, nullptr);
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (k != 1) table.Insert(k, static_cast<double>(k) * 0.5);
  }
  EXPECT_EQ(table.size(), kKeys);
  EXPECT_DOUBLE_EQ(*early, 0.5);
  for (uint64_t k = 0; k < kKeys; ++k) {
    const double* v = table.Find(k);
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_DOUBLE_EQ(*v, static_cast<double>(k) * 0.5);
  }
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(3), nullptr);
  table.Insert(3, 9.0);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ShardedFlatTable, FindOrComputeComputesOnce) {
  ShardedFlatTable<uint64_t, double> table(~0ull);
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return 4.25;
  };
  EXPECT_DOUBLE_EQ(table.FindOrCompute(9, compute), 4.25);
  EXPECT_DOUBLE_EQ(table.FindOrCompute(9, compute), 4.25);
  EXPECT_EQ(computes, 1);
}

// Concurrent hammer: many threads racing to insert an overlapping key
// range, every value a pure function of its key — the shared-cache usage
// pattern. Primarily a TSan target (tier1.sh runs this binary under TSan);
// the asserts also pin the single-writer-per-slot semantics.
TEST(ShardedFlatTable, ConcurrentInsertsAgreeOnValues) {
  ShardedFlatTable<uint64_t, double> table(~0ull, /*shard_bits=*/3,
                                           /*initial_shard_capacity=*/16);
  constexpr uint64_t kKeys = 4096;
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  // kgoa-lint: allow(raw-thread) test drives the cache from raw threads
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &ready, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      // Each thread walks the full key range from a different offset, so
      // every key is contended by every thread.
      for (uint64_t i = 0; i < kKeys; ++i) {
        const uint64_t key = (i + static_cast<uint64_t>(t) * 517) % kKeys;
        const double got = table.FindOrCompute(
            key, [key] { return static_cast<double>(key) * 1.5 + 1.0; });
        if (got != static_cast<double>(key) * 1.5 + 1.0) {
          ADD_FAILURE() << "wrong value for key " << key;
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(table.size(), kKeys);
  for (uint64_t key = 0; key < kKeys; ++key) {
    const double* v = table.Find(key);
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(*v, static_cast<double>(key) * 1.5 + 1.0);
  }
  const ShardedTableStats stats = table.stats();
  EXPECT_EQ(stats.entries, kKeys);
  // Every duplicate insert must have carried a bit-identical value (the
  // table contract-checks this); the counter just records how often the
  // race happened.
  EXPECT_GE(stats.hits + stats.misses, kKeys * kThreads);
}

// ---------------------------------------------------------------------------
// Reach-probability cache tests.

class ReachConcurrentTest : public ::testing::Test {
 protected:
  ReachConcurrentTest()
      : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

void ExpectBitIdentical(const GroupedEstimates& a,
                        const GroupedEstimates& b) {
  EXPECT_EQ(a.walks(), b.walks());
  EXPECT_EQ(a.rejected_walks(), b.rejected_walks());
  const auto ea = a.Estimates();
  const auto eb = b.Estimates();
  ASSERT_EQ(ea.size(), eb.size());
  for (const auto& [group, estimate] : ea) {
    const auto it = eb.find(group);
    ASSERT_NE(it, eb.end());
    EXPECT_EQ(estimate, it->second) << "group " << group;
    EXPECT_EQ(a.CiHalfWidth(group), b.CiHalfWidth(group))
        << "group " << group;
  }
}

// Exhaustively enumerates the plan's walks, accumulating the probability
// mass of completed walks per (alpha, beta) pair into a reference
// unordered_map — an independent implementation of Pr(a, b) against which
// the flat memo is differentially tested.
std::unordered_map<uint64_t, double> ReferencePrMap(const IndexSet& indexes,
                                                    const WalkPlan& plan) {
  std::unordered_map<uint64_t, double> reference;
  std::vector<TermId> state(plan.num_slots(), kInvalidTerm);
  auto walk = [&](auto&& self, int step_idx, double probability) -> void {
    if (step_idx == plan.NumSteps()) {
      reference[PackPair(state[plan.alpha_slot()],
                         state[plan.beta_slot()])] += probability;
      return;
    }
    const WalkStep& step = plan.steps()[step_idx];
    const TermId bound =
        step.in_slot >= 0 ? state[step.in_slot] : kInvalidTerm;
    const Range range = step.access.Resolve(indexes, bound);
    if (range.empty()) return;  // dead end: walk rejected
    const double d = static_cast<double>(range.size());
    const TrieIndex& index = indexes.Index(step.access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!step.filter.empty() && !step.filter.Pass(indexes, t)) continue;
      for (const WalkStep::Record& record : step.records) {
        state[record.slot] = t[record.component];
      }
      self(self, step_idx + 1, probability / d);
    }
  };
  walk(walk, 0, 1.0);
  return reference;
}

// Differential test: flat-memo Pr(a, b) equals the reference map for every
// reachable pair, under every candidate walk order.
TEST_F(ReachConcurrentTest, FlatMemoMatchesReferenceMap) {
  const ChainQuery query = Fig5(true);
  for (const auto& order : CandidateWalkOrders(query.NumPatterns())) {
    const WalkPlan plan = WalkPlan::Compile(query, order);
    const auto reference = ReferencePrMap(indexes_, plan);
    ASSERT_FALSE(reference.empty());

    ReachProbability reach(indexes_, plan);
    for (const auto& [pair, probability] : reference) {
      const TermId a = static_cast<TermId>(pair >> 32);
      const TermId b = static_cast<TermId>(pair & 0xffffffffu);
      EXPECT_NEAR(reach.PrAB(a, b), probability, 1e-12)
          << "pair (" << a << ", " << b << "), order size " << order.size();
    }
    // A pair no completed walk produces has zero mass.
    EXPECT_NEAR(reach.PrAB(Id("athens"), Id("stagira")), 0.0, 1e-12);
    // Warm lookups hit the memo instead of recomputing.
    const uint64_t misses = reach.cache_misses();
    for (const auto& [pair, probability] : reference) {
      EXPECT_NEAR(reach.PrAB(static_cast<TermId>(pair >> 32),
                             static_cast<TermId>(pair & 0xffffffffu)),
                  probability, 1e-12);
    }
    EXPECT_EQ(reach.cache_misses(), misses);
  }
}

// One cache probed by many threads concurrently: every thread must read
// the same (reference) values, and the memo must end with exactly one
// entry per distinct pair. TSan target for the lock-free read path.
TEST_F(ReachConcurrentTest, SharedCacheConcurrentProbesAgree) {
  const ChainQuery query = Fig5(true);
  const WalkPlan plan = WalkPlan::Compile(query);
  const auto reference = ReferencePrMap(indexes_, plan);
  ASSERT_FALSE(reference.empty());
  std::vector<std::pair<uint64_t, double>> pairs(reference.begin(),
                                                 reference.end());

  ReachProbability reach(indexes_, plan);
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> mismatches{0};
  // kgoa-lint: allow(raw-thread) test drives the cache from raw threads
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          // Different starting offsets maximize insert races on the
          // first round.
          const auto& [pair, expected] =
              pairs[(i + static_cast<std::size_t>(t)) % pairs.size()];
          const double got =
              reach.PrAB(static_cast<TermId>(pair >> 32),
                         static_cast<TermId>(pair & 0xffffffffu));
          if (std::abs(got - expected) > 1e-12) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(reach.pr_stats().entries, pairs.size());
  EXPECT_GT(reach.cache_hits(), 0u);
}

// The tentpole guarantee: with the run-shared cache (the default), a
// walk-budget run is bit-identical across thread counts — sharing memo
// state across workers must never leak into the estimates.
TEST_F(ReachConcurrentTest, SharedCacheBitIdenticalAcrossThreadCounts) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 4000;

  ParallelOlaOptions options;
  options.workers = 8;
  options.tipping_threshold = 2.0;
  ASSERT_TRUE(options.share_reach);
  GroupedEstimates reference;
  for (int threads : {1, 2, 8}) {
    options.threads = threads;
    const ParallelOlaResult run =
        ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(kBudget);
    EXPECT_EQ(run.estimates.walks(), kBudget);
    EXPECT_GT(run.counters.reach_entries, 0u);
    if (threads == 1) {
      reference = run.estimates;
    } else {
      ExpectBitIdentical(reference, run.estimates);
    }
  }
}

// Sharing the cache changes performance counters, never estimates: a run
// with private per-worker caches merges to the exact same result.
TEST_F(ReachConcurrentTest, SharedAndPrivateCachesProduceIdenticalRuns) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 3000;

  ParallelOlaOptions options;
  options.workers = 4;
  options.threads = 4;
  options.tipping_threshold = 2.0;

  options.share_reach = true;
  const ParallelOlaResult shared =
      ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(kBudget);
  options.share_reach = false;
  const ParallelOlaResult isolated =
      ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(kBudget);
  ExpectBitIdentical(shared.estimates, isolated.estimates);
}

// The executor's cache stays warm across runs: a second identical run
// resolves every lookup from the memo (zero misses in its counter window)
// and reproduces the first run exactly.
TEST_F(ReachConcurrentTest, ExecutorCacheStaysWarmAcrossRuns) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 2000;

  ParallelOlaOptions options;
  options.workers = 4;
  options.threads = 2;
  options.tipping_threshold = 2.0;
  ParallelOlaExecutor executor(indexes_, query, options);

  const ParallelOlaResult cold = executor.RunWalkBudget(kBudget);
  const ParallelOlaResult warm = executor.RunWalkBudget(kBudget);
  ExpectBitIdentical(cold.estimates, warm.estimates);
  EXPECT_GT(cold.counters.reach_misses, 0u);
  EXPECT_EQ(warm.counters.reach_misses, 0u);
  EXPECT_GT(warm.counters.reach_hits, 0u);
  EXPECT_EQ(warm.counters.reach_entries, cold.counters.reach_entries);
}

// An externally owned cache (the exploration-session registry) slots into
// both the sequential engine and the executor without changing results.
TEST_F(ReachConcurrentTest, ExternalRegistryCacheMatchesPrivateRuns) {
  const ChainQuery query = Fig5(true);
  constexpr uint64_t kBudget = 2000;

  ReachCacheRegistry registry;
  const GraphSnapshot snapshot = GraphSnapshot::Unowned(indexes_);
  ReachProbability* cache = registry.Acquire(query, {}, snapshot).reach;
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(registry.plan_misses(), 1u);
  // Re-acquiring the same (query, order) returns the same warm cache.
  EXPECT_EQ(registry.Acquire(query, {}, snapshot).reach, cache);
  EXPECT_EQ(registry.plan_hits(), 1u);
  EXPECT_EQ(registry.plans(), 1u);

  // Sequential engine, private vs registry cache.
  AuditJoin::Options aj;
  aj.seed = 7;
  aj.tipping_threshold = 2.0;
  AuditJoin private_engine(indexes_, query, aj);
  private_engine.RunWalks(kBudget);
  aj.shared_reach = cache;
  AuditJoin shared_engine(indexes_, query, aj);
  EXPECT_FALSE(shared_engine.owns_reach());
  shared_engine.RunWalks(kBudget);
  ExpectBitIdentical(private_engine.estimates(), shared_engine.estimates());

  // Parallel executor fed the registry cache.
  ParallelOlaOptions options;
  options.workers = 4;
  options.threads = 2;
  options.tipping_threshold = 2.0;
  const ParallelOlaResult baseline =
      ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(kBudget);
  options.shared_reach = cache;
  const ParallelOlaResult via_registry =
      ParallelOlaExecutor(indexes_, query, options).RunWalkBudget(kBudget);
  ExpectBitIdentical(baseline.estimates, via_registry.estimates);
  EXPECT_GT(registry.stats().entries, 0u);
}

// A different plan may not reuse the cache: the compatibility contract
// trips before any stale memo value can be served.
TEST_F(ReachConcurrentTest, IncompatiblePlanIsRejected) {
  const ChainQuery query = Fig5(true);
  ReachCacheRegistry registry;
  const GraphSnapshot snapshot = GraphSnapshot::Unowned(indexes_);
  ReachProbability* cache = registry.Acquire(query, {}, snapshot).reach;

  // Same query, different pattern order => different walk distribution.
  const std::vector<int> other_order{2, 1, 0};
  const WalkPlan other = WalkPlan::Compile(query, other_order);
  EXPECT_FALSE(cache->CompatibleWith(other));
  EXPECT_TRUE(cache->CompatibleWith(WalkPlan::Compile(query)));
  // The registry keys on the order, so the other order gets its own cache.
  EXPECT_NE(registry.Acquire(query, other_order, snapshot).reach, cache);
  EXPECT_EQ(registry.plans(), 2u);
}

// Explorer-level reuse: serving the same distinct chart twice touches one
// registry plan and reports the session totals through the metrics
// registry.
TEST_F(ReachConcurrentTest, ExplorerReusesSessionReachCache) {
  Explorer explorer(testing::PaperExampleGraph());
  const ChainQuery query = Fig5(true);

  (void)explorer.ApproximateChart(query, /*seconds=*/0.01, BarKind::kClass);
  const uint64_t hits_after_first =
      explorer.metrics().Counter("explorer.reach.hits");
  EXPECT_EQ(explorer.metrics().Counter("explorer.reach.plans"), 1u);
  EXPECT_GT(explorer.metrics().Counter("explorer.reach.entries"), 0u);
  EXPECT_GT(explorer.metrics().Counter("explorer.reach.misses"), 0u);

  (void)explorer.ApproximateChart(query, /*seconds=*/0.01, BarKind::kClass);
  EXPECT_EQ(explorer.metrics().Counter("explorer.reach.plans"), 1u);
  EXPECT_EQ(explorer.metrics().Counter("explorer.reach.plan_hits"), 1u);
  // The second serving probes the warm session cache: hits keep growing.
  // (Walk counts are wall-clock dependent here, so memo-miss equality is
  // asserted by the deterministic executor test above, not this one.)
  EXPECT_GT(explorer.metrics().Counter("explorer.reach.hits"),
            hits_after_first);
}

}  // namespace
}  // namespace kgoa
