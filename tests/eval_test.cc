// Tests for src/eval: error metrics, selectivity, and the time-series
// runner, plus the Explorer facade.
#include <gtest/gtest.h>

#include "src/core/explain.h"
#include "src/core/explorer.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/gen/kg_gen.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

TEST(Metrics, MaeDefinition) {
  GroupedResult exact;
  exact.counts[1] = 10;
  exact.counts[2] = 100;

  GroupedEstimates est;
  est.AddContribution(1, 11.0);   // estimate 11 after one walk
  est.AddContribution(2, 150.0);  // estimate 150
  est.EndWalk(false);

  // errors: |11-10|/10 = 0.1, |150-100|/100 = 0.5 -> mean 0.3.
  EXPECT_NEAR(MeanAbsoluteError(exact, est), 0.3, 1e-12);
}

TEST(Metrics, MissingGroupCountsAsFullError) {
  GroupedResult exact;
  exact.counts[1] = 10;
  GroupedEstimates est;
  est.EndWalk(true);
  EXPECT_NEAR(MeanAbsoluteError(exact, est), 1.0, 1e-12);
  EXPECT_NEAR(MeanRelativeCi(exact, est), 0.0, 1e-12);
}

TEST(Metrics, EmptyExactIsZeroError) {
  GroupedResult exact;
  GroupedEstimates est;
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(exact, est), 0.0);
}

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

TEST_F(EvalTest, SelectivityInUnitRange) {
  const double sel = QuerySelectivity(indexes_, Fig5(true));
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0);
  // Constants genuinely restrict this query, so selectivity is nonzero.
  EXPECT_GT(sel, 0.1);
}

TEST_F(EvalTest, RunOlaProducesCheckpointsAndConverges) {
  const ChainQuery query = Fig5(true);
  const GroupedResult exact = testing::BruteForce(graph_, query);

  for (OlaAlgo algo : {OlaAlgo::kWander, OlaAlgo::kAudit}) {
    OlaRunOptions options;
    options.algo = algo;
    options.duration_seconds = 0.2;
    options.checkpoints = 4;
    const OlaRunResult run = RunOla(indexes_, query, exact, options);
    ASSERT_EQ(run.points.size(), 4u);
    EXPECT_GT(run.walks, 0u);
    for (std::size_t i = 1; i < run.points.size(); ++i) {
      EXPECT_GT(run.points[i].seconds, run.points[i - 1].seconds);
      EXPECT_GE(run.points[i].walks, run.points[i - 1].walks);
    }
    // On this tiny graph both algorithms converge quickly; AJ tips.
    if (algo == OlaAlgo::kAudit) {
      EXPECT_LT(run.final_mae, 0.05);
      EXPECT_GT(run.tipped, 0u);
    }
  }
}

TEST_F(EvalTest, RunUntilCiConvergesOrTimesOut) {
  const ChainQuery query = Fig5(true);
  OlaRunOptions options;
  options.tipping_threshold = 1e6;  // tip immediately -> zero-width CIs
  const CiTerminationResult tight =
      RunUntilCi(indexes_, query, 0.01, 2.0, options);
  EXPECT_TRUE(tight.converged);
  EXPECT_LE(tight.mean_relative_ci, 0.01);
  EXPECT_FALSE(tight.estimates.empty());

  // An unreachable epsilon under a tiny budget times out.
  options.tipping_threshold = 0.5;
  const CiTerminationResult loose =
      RunUntilCi(indexes_, query, 1e-9, 0.05, options);
  EXPECT_FALSE(loose.converged);
  EXPECT_GE(loose.seconds, 0.05);
}

TEST_F(EvalTest, DefaultAuditOrderStartsAtAnchor) {
  const ChainQuery query = Fig5(true);
  const auto order = DefaultAuditOrder(query);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], query.alpha_beta_pattern());
}

TEST_F(EvalTest, SelectBestWalkOrderReturnsValidOrder) {
  const ChainQuery query = Fig5(false);
  const GroupedResult exact = testing::BruteForce(graph_, query);
  const auto order = SelectBestWalkOrder(indexes_, query, exact,
                                         OlaAlgo::kWander, 0.01, 3);
  ASSERT_EQ(order.size(), 3u);
  // Must be a permutation of {0,1,2}.
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
}

TEST_F(EvalTest, ExplainPlanRendersSteps) {
  const ChainQuery query = Fig5(true);
  const std::string plan = ExplainPlan(indexes_, query, &graph_.dict());
  EXPECT_NE(plan.find("AuditJoin plan (COUNT DISTINCT"), std::string::npos);
  EXPECT_NE(plan.find("step 0"), std::string::npos);
  EXPECT_NE(plan.find("step 2"), std::string::npos);
  EXPECT_NE(plan.find("birthPlace"), std::string::npos);
  EXPECT_NE(plan.find("anchor pattern 2"), std::string::npos);
  // The paper-example graph is tiny: the default threshold tips at step 0.
  EXPECT_NE(plan.find("tipping point"), std::string::npos);

  AuditJoin::Options no_tipping;
  no_tipping.enable_tipping = false;
  const std::string untipped =
      ExplainPlan(indexes_, query, nullptr, no_tipping);
  EXPECT_EQ(untipped.find("<== tipping point"), std::string::npos);
}

TEST(Explorer, FacadeEndToEnd) {
  Explorer explorer(testing::PaperExampleGraph());
  ExplorationSession session = explorer.NewSession();
  const ChainQuery q = session.BuildQuery(ExpansionKind::kSubclass);

  const Chart exact = explorer.EvaluateChart(q, BarKind::kClass);
  ASSERT_EQ(exact.bars.size(), 2u);
  EXPECT_GE(exact.bars[0].count, exact.bars[1].count);  // sorted desc
  EXPECT_EQ(exact.bars[0].ci_half_width, 0.0);

  const Chart approx = explorer.ApproximateChart(q, 0.05, BarKind::kClass);
  ASSERT_FALSE(approx.bars.empty());
  // On this tiny graph Audit Join tips to exact values.
  EXPECT_NEAR(approx.bars[0].count, exact.bars[0].count, 1e-6);
}

TEST(Explorer, ZeroBudgetStillSamples) {
  Explorer explorer(testing::PaperExampleGraph());
  ExplorationSession session = explorer.NewSession();
  const ChainQuery q = session.BuildQuery(ExpansionKind::kSubclass);
  const Chart chart = explorer.ApproximateChart(q, 0.0, BarKind::kClass);
  EXPECT_FALSE(chart.bars.empty());
}

TEST(Explorer, EvaluateMatchesBruteForce) {
  Graph reference = testing::PaperExampleGraph();
  Explorer explorer(testing::PaperExampleGraph());
  ExplorationSession session = explorer.NewSession();
  const ChainQuery q = session.BuildQuery(ExpansionKind::kOutProperty);
  EXPECT_EQ(explorer.Evaluate(q), testing::BruteForce(reference, q));
}

}  // namespace
}  // namespace kgoa
