// Unit tests for src/rdf: dictionary, graph, N-Triples I/O, schema/closure.
#include <sstream>

#include <gtest/gtest.h>

#include "src/rdf/dictionary.h"
#include "src/rdf/graph.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/schema.h"
#include "src/rdf/vocab.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

TEST(Dictionary, InternIsIdempotent) {
  Dictionary dict;
  const TermId a = dict.Intern("http://example.org/a");
  EXPECT_EQ(dict.Intern("http://example.org/a"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(Dictionary, RoundTrips) {
  Dictionary dict;
  const TermId a = dict.Intern("alpha");
  const TermId b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Spell(a), "alpha");
  EXPECT_EQ(dict.Spell(b), "beta");
  EXPECT_EQ(dict.Lookup("alpha"), a);
  EXPECT_EQ(dict.Lookup("missing"), kInvalidTerm);
}

TEST(Dictionary, IdsAreDense) {
  Dictionary dict;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict.Intern("t" + std::to_string(i)),
              static_cast<TermId>(i));
  }
}

TEST(Dictionary, SurvivesRehash) {
  Dictionary dict;
  std::vector<TermId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(dict.Intern("term-" + std::to_string(i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(dict.Lookup("term-" + std::to_string(i)), ids[i]);
  }
}

TEST(Graph, DeduplicatesAndSorts) {
  GraphBuilder b;
  b.AddSpelled("s", "p", "o");
  b.AddSpelled("s", "p", "o");
  b.AddSpelled("a", "p", "o");
  Graph g = std::move(b).Build();
  EXPECT_EQ(g.NumTriples(), 2u);
  EXPECT_TRUE(std::is_sorted(g.triples().begin(), g.triples().end(),
                             SpoLess));
}

TEST(Graph, WellKnownIdsAlwaysInterned) {
  Graph g = std::move(GraphBuilder()).Build();
  EXPECT_NE(g.rdf_type(), kInvalidTerm);
  EXPECT_NE(g.subclass_of(), kInvalidTerm);
  EXPECT_NE(g.owl_thing(), kInvalidTerm);
  EXPECT_EQ(g.NumTriples(), 0u);
}

TEST(Graph, PropertiesAndClasses) {
  Graph g = testing::PaperExampleGraph();
  const auto props = g.Properties();
  const auto classes = g.Classes();
  // influencedBy, birthPlace, rdf:type, rdfs:subClassOf.
  EXPECT_EQ(props.size(), 4u);
  // Thing, Agent, Person, Philosopher, Place, City.
  EXPECT_EQ(classes.size(), 6u);
}

TEST(Graph, Contains) {
  Graph g = testing::PaperExampleGraph();
  const TermId plato = g.dict().Lookup("plato");
  const TermId influenced = g.dict().Lookup("influencedBy");
  const TermId socrates = g.dict().Lookup("socrates");
  ASSERT_NE(plato, kInvalidTerm);
  EXPECT_TRUE(g.Contains(Triple{plato, influenced, socrates}));
  EXPECT_FALSE(g.Contains(Triple{socrates, influenced, plato}));
}

TEST(NTriples, ParsesBasicForms) {
  const std::string text =
      "<http://a> <http://p> <http://b> .\n"
      "# a comment\n"
      "\n"
      "<http://a> <http://q> \"hello world\" .\n"
      "<http://a> <http://q> \"esc\\\"aped\\n\" .\n"
      "<http://a> <http://q> \"1.5\"^^<http://www.w3.org/2001/XMLSchema#double> .\n";
  GraphBuilder b;
  const NtParseResult result = ParseNTriplesString(text, b);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.lines_parsed, 4u);
  EXPECT_EQ(std::move(b).Build().NumTriples(), 4u);
}

TEST(NTriples, ReportsMalformedLine) {
  GraphBuilder b;
  const NtParseResult result =
      ParseNTriplesString("<http://a> <http://p> <http://b> .\n"
                          "<http://a> nonsense <http://b> .\n",
                          b);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error_line, 2u);
}

TEST(NTriples, RejectsLiteralSubject) {
  GraphBuilder b;
  EXPECT_FALSE(ParseNTriplesString("\"lit\" <http://p> <http://o> .", b).ok);
}

TEST(NTriples, RejectsMissingDot) {
  GraphBuilder b;
  EXPECT_FALSE(ParseNTriplesString("<http://a> <http://p> <http://o>", b).ok);
}

TEST(NTriples, RejectsUnterminatedLiteral) {
  GraphBuilder b;
  EXPECT_FALSE(ParseNTriplesString("<a> <p> \"open .", b).ok);
}

TEST(NTriples, RoundTrip) {
  GraphBuilder b;
  b.AddSpelled("http://a", "http://p", "http://b");
  b.AddSpelled("http://a", "http://q", "\"a \\\"quoted\\\" literal\"");
  Graph g = std::move(b).Build();

  std::ostringstream out;
  WriteNTriples(g, out);

  GraphBuilder b2;
  const NtParseResult result = ParseNTriplesString(out.str(), b2);
  ASSERT_TRUE(result.ok) << result.error;
  Graph g2 = std::move(b2).Build();
  EXPECT_EQ(g2.NumTriples(), g.NumTriples());
}

TEST(NTriples, FuzzedInputNeverCrashes) {
  // Random byte soup must either parse or fail cleanly — never crash or
  // hang. Seeds fixed for reproducibility.
  Rng rng(0xf22);
  const std::string alphabet =
      "<>\"\\.#abc \t?_:\n^@";
  for (int round = 0; round < 200; ++round) {
    std::string text;
    const std::size_t length = rng.Below(200);
    for (std::size_t i = 0; i < length; ++i) {
      text.push_back(alphabet[rng.Below(alphabet.size())]);
    }
    GraphBuilder b;
    const NtParseResult result = ParseNTriplesString(text, b);
    if (!result.ok) {
      EXPECT_GT(result.error_line, 0u);
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST(NTriples, FuzzedValidTriplesRoundTrip) {
  // Random graphs with hostile term spellings survive a write/parse cycle.
  Rng rng(777);
  const std::string weird[] = {"a b", "line\nbreak", "tab\there",
                               "quote\"inside", "back\\slash", "plain"};
  GraphBuilder b;
  for (int i = 0; i < 30; ++i) {
    // Subjects/predicates are IRIs (no whitespace); objects may be weird
    // literals.
    b.AddSpelled("s" + std::to_string(rng.Below(5)),
                 "p" + std::to_string(rng.Below(3)),
                 "\"" + weird[rng.Below(6)] + "\"");
  }
  Graph g = std::move(b).Build();
  std::ostringstream out;
  WriteNTriples(g, out);
  GraphBuilder b2;
  const NtParseResult result = ParseNTriplesString(out.str(), b2);
  ASSERT_TRUE(result.ok) << result.error << "\n" << out.str();
  EXPECT_EQ(std::move(b2).Build().NumTriples(), g.NumTriples());
}

TEST(Schema, HierarchyAndAncestors) {
  Graph g = testing::PaperExampleGraph();
  ClassHierarchy h(g);
  const TermId philosopher = g.dict().Lookup("Philosopher");
  const TermId person = g.dict().Lookup("Person");
  const TermId agent = g.dict().Lookup("Agent");
  const TermId thing = g.owl_thing();

  EXPECT_EQ(h.Parents(philosopher), std::vector<TermId>{person});
  EXPECT_EQ(h.Children(person), std::vector<TermId>{philosopher});

  auto ancestors = h.Ancestors(philosopher);
  EXPECT_EQ(ancestors.size(), 3u);
  EXPECT_TRUE(std::count(ancestors.begin(), ancestors.end(), agent));
  EXPECT_TRUE(std::count(ancestors.begin(), ancestors.end(), thing));

  const auto roots = h.Roots();
  EXPECT_EQ(roots, std::vector<TermId>{thing});
}

TEST(Schema, AncestorsTolerateCycles) {
  GraphBuilder b;
  const TermId a = b.Intern("A");
  const TermId c = b.Intern("C");
  const TermId sub = b.Intern(vocab::kRdfsSubClassOf);
  b.Add(a, sub, c);
  b.Add(c, sub, a);
  Graph g = std::move(b).Build();
  ClassHierarchy h(g);
  // No infinite loop; the other class is the only strict ancestor.
  EXPECT_EQ(h.Ancestors(a), std::vector<TermId>{c});
  EXPECT_EQ(h.Ancestors(c), std::vector<TermId>{a});
}

TEST(Schema, MaterializeClosureAddsAncestorTypes) {
  GraphBuilder b;
  b.AddSpelled("Dog", vocab::kRdfsSubClassOf, "Animal");
  b.AddSpelled("Animal", vocab::kRdfsSubClassOf, vocab::kOwlThing);
  b.AddSpelled("rex", vocab::kRdfType, "Dog");
  Graph g = std::move(b).Build();

  Graph closed = MaterializeSubclassClosure(g);
  const TermId rex = closed.dict().Lookup("rex");
  const TermId animal = closed.dict().Lookup("Animal");
  ASSERT_NE(rex, kInvalidTerm);
  EXPECT_TRUE(closed.Contains(Triple{rex, closed.rdf_type(), animal}));
  EXPECT_TRUE(
      closed.Contains(Triple{rex, closed.rdf_type(), closed.owl_thing()}));
  // 2 subclass + 3 type triples.
  EXPECT_EQ(closed.NumTriples(), 5u);
  // Term ids are stable across materialization.
  EXPECT_EQ(closed.dict().Lookup("rex"), g.dict().Lookup("rex"));
}

TEST(Schema, MaterializeSubPropertyClosure) {
  GraphBuilder b;
  b.AddSpelled("mother", kRdfsSubPropertyOf, "parent");
  b.AddSpelled("parent", kRdfsSubPropertyOf, "relative");
  b.AddSpelled("alice", "mother", "bob");
  b.AddSpelled("carol", "parent", "dave");
  Graph g = std::move(b).Build();

  Graph closed = MaterializeSubPropertyClosure(g);
  auto id = [&](const char* t) { return closed.dict().Lookup(t); };
  // alice mother bob => alice parent bob, alice relative bob.
  EXPECT_TRUE(closed.Contains(Triple{id("alice"), id("parent"), id("bob")}));
  EXPECT_TRUE(
      closed.Contains(Triple{id("alice"), id("relative"), id("bob")}));
  EXPECT_TRUE(
      closed.Contains(Triple{id("carol"), id("relative"), id("dave")}));
  // 2 hierarchy edges + 2 original + 3 derived.
  EXPECT_EQ(closed.NumTriples(), 7u);
  // Idempotent.
  EXPECT_EQ(MaterializeSubPropertyClosure(closed).NumTriples(), 7u);
  // Term ids stable.
  EXPECT_EQ(closed.dict().Lookup("alice"), g.dict().Lookup("alice"));
}

TEST(Schema, SubPropertyClosureToleratesCycles) {
  GraphBuilder b;
  b.AddSpelled("a", kRdfsSubPropertyOf, "b");
  b.AddSpelled("b", kRdfsSubPropertyOf, "a");
  b.AddSpelled("x", "a", "y");
  Graph g = std::move(b).Build();
  Graph closed = MaterializeSubPropertyClosure(g);
  const TermId x = closed.dict().Lookup("x");
  const TermId bp = closed.dict().Lookup("b");
  const TermId y = closed.dict().Lookup("y");
  EXPECT_TRUE(closed.Contains(Triple{x, bp, y}));
}

TEST(Schema, SubPropertyClosureNoopWithoutHierarchy) {
  Graph g = testing::PaperExampleGraph();
  Graph closed = MaterializeSubPropertyClosure(g);
  EXPECT_EQ(closed.NumTriples(), g.NumTriples());
}

TEST(Schema, MaterializeClosureIdempotent) {
  Graph g = testing::PaperExampleGraph();
  Graph once = MaterializeSubclassClosure(g);
  Graph twice = MaterializeSubclassClosure(once);
  EXPECT_EQ(once.NumTriples(), twice.NumTriples());
}

}  // namespace
}  // namespace kgoa
