// Tests for src/ola: walk plans, grouped estimators, Wander Join.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/join/ctj.h"
#include "src/ola/estimator.h"
#include "src/ola/walk_plan.h"
#include "src/ola/wander.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

ChainQuery ThreeChain(bool distinct = false) {
  // (?0 #1 ?1)(?1 #2 ?2)(?2 #3 ?3), alpha=3, beta=2.
  auto q = ChainQuery::Create({MakePattern(V(0), C(1), V(1)),
                               MakePattern(V(1), C(2), V(2)),
                               MakePattern(V(2), C(3), V(3))},
                              3, 2, distinct);
  EXPECT_TRUE(q.has_value());
  return *q;
}

TEST(WalkPlan, ForwardOrder) {
  const ChainQuery q = ThreeChain();
  const WalkPlan plan = WalkPlan::Compile(q);
  ASSERT_EQ(plan.NumSteps(), 3);
  EXPECT_EQ(plan.steps()[0].in_var, kNoVar);
  EXPECT_EQ(plan.steps()[1].in_var, 1u);
  EXPECT_EQ(plan.steps()[2].in_var, 2u);
  EXPECT_EQ(plan.ParentStepOf(1), 0);
  EXPECT_EQ(plan.ParentStepOf(2), 1);
  EXPECT_TRUE(plan.SingleSegmentFrom(0));
  EXPECT_TRUE(plan.SingleSegmentFrom(2));
  EXPECT_EQ(plan.StepOf(0), 0);
  EXPECT_EQ(plan.StepOf(2), 2);
  EXPECT_GE(plan.alpha_slot(), 0);
  EXPECT_GE(plan.beta_slot(), 0);
  EXPECT_NE(plan.alpha_slot(), plan.beta_slot());
}

TEST(WalkPlan, MiddleStartBindsBothSides) {
  const ChainQuery q = ThreeChain();
  const WalkPlan plan = WalkPlan::Compile(q, {1, 0, 2});
  EXPECT_EQ(plan.steps()[0].pattern_index, 1);
  EXPECT_EQ(plan.steps()[1].pattern_index, 0);
  EXPECT_EQ(plan.steps()[1].in_var, 1u);
  EXPECT_EQ(plan.steps()[2].in_var, 2u);
  // Both later steps hang off the start step.
  EXPECT_EQ(plan.ParentStepOf(1), 0);
  EXPECT_EQ(plan.ParentStepOf(2), 0);
  EXPECT_FALSE(plan.SingleSegmentFrom(1));
  EXPECT_TRUE(plan.SingleSegmentFrom(2));
}

// Property test over n = 1..6: every candidate order is a complete
// permutation of 0..n-1, every prefix covers a contiguous span of the
// chain (the Wander Join walk-order requirement), no order repeats, and
// the count matches the directional-order closed form (2n - 2 for n >= 2).
TEST(WalkPlan, CandidateOrdersAreContiguousCompleteAndUnique) {
  for (int n = 1; n <= 6; ++n) {
    const auto orders = CandidateWalkOrders(n);
    const std::size_t expected =
        n == 1 ? 1 : static_cast<std::size_t>(2 * n - 2);
    EXPECT_EQ(orders.size(), expected) << "n=" << n;
    for (const auto& order : orders) {
      ASSERT_EQ(static_cast<int>(order.size()), n);
      // Complete permutation: each pattern exactly once.
      std::vector<bool> seen(static_cast<std::size_t>(n), false);
      for (int p : order) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, n);
        EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
        seen[static_cast<std::size_t>(p)] = true;
      }
      // Chain contiguity: every prefix covers an interval [lo, hi] of the
      // chain, so each new pattern is adjacent to the span walked so far.
      int lo = order[0];
      int hi = order[0];
      for (std::size_t i = 1; i < order.size(); ++i) {
        const int p = order[i];
        EXPECT_TRUE(p == lo - 1 || p == hi + 1)
            << "order step " << i << " (pattern " << p
            << ") not adjacent to span [" << lo << ", " << hi << "]";
        lo = std::min(lo, p);
        hi = std::max(hi, p);
      }
    }
    // Uniqueness.
    for (std::size_t i = 0; i < orders.size(); ++i) {
      for (std::size_t j = i + 1; j < orders.size(); ++j) {
        EXPECT_NE(orders[i], orders[j]);
      }
    }
  }
  // Every n=3 candidate compiles against a real chain without aborting.
  const ChainQuery q = ThreeChain();
  for (const auto& order : CandidateWalkOrders(3)) {
    WalkPlan::Compile(q, order);
  }
}

// Compile must reject a pattern order that is a permutation but not
// chain-contiguous: after {0} the pattern 2 is not adjacent to the span.
TEST(WalkPlanDeathTest, RejectsNonChainContiguousOrder) {
  const ChainQuery q = ThreeChain();
  EXPECT_DEATH(WalkPlan::Compile(q, {0, 2, 1}), "contiguous");
  EXPECT_DEATH(WalkPlan::Compile(q, {2, 0, 1}), "contiguous");
}

TEST(Estimator, MeanOverAllWalks) {
  GroupedEstimates est;
  est.AddContribution(1, 10.0);
  est.EndWalk(false);
  est.EndWalk(true);  // rejected, contributes nothing
  est.AddContribution(1, 20.0);
  est.EndWalk(false);
  EXPECT_EQ(est.walks(), 3u);
  EXPECT_EQ(est.rejected_walks(), 1u);
  EXPECT_DOUBLE_EQ(est.Estimate(1), 10.0);
  EXPECT_DOUBLE_EQ(est.Estimate(99), 0.0);
  EXPECT_NEAR(est.RejectionRate(), 1.0 / 3, 1e-12);
}

TEST(Estimator, CiShrinksWithSamples) {
  GroupedEstimates est;
  Rng rng(5);
  double ci_at_100 = 0;
  for (int i = 1; i <= 10000; ++i) {
    est.AddContribution(1, 50.0 + static_cast<double>(rng.Below(100)));
    est.EndWalk(false);
    if (i == 100) ci_at_100 = est.CiHalfWidth(1);
  }
  EXPECT_GT(ci_at_100, 0.0);
  EXPECT_LT(est.CiHalfWidth(1), ci_at_100);
}

TEST(Estimator, ZeroVarianceHasZeroCi) {
  GroupedEstimates est;
  for (int i = 0; i < 10; ++i) {
    est.AddContribution(2, 7.0);
    est.EndWalk(false);
  }
  EXPECT_NEAR(est.CiHalfWidth(2), 0.0, 1e-9);
}

class WanderTest : public ::testing::Test {
 protected:
  WanderTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

// Deterministic unbiasedness: sum of Pr(walk) * contribution over ALL
// possible walks equals the exact non-distinct count, per group.
TEST_F(WanderTest, ExhaustiveExpectationEqualsExactCount) {
  const ChainQuery query = Fig5(false);
  const GroupedResult exact = testing::BruteForce(graph_, query);

  for (const auto& order : CandidateWalkOrders(query.NumPatterns())) {
    WanderJoin::Options options;
    options.walk_order = order;
    WanderJoin wj(indexes_, query, options);
    std::unordered_map<TermId, double> expectation;
    double total_probability = 0;
    wj.EnumerateAllWalks([&](double prob, TermId group, double contrib) {
      total_probability += prob;
      if (contrib > 0) expectation[group] += prob * contrib;
    });
    EXPECT_NEAR(total_probability, 1.0, 1e-9);
    ASSERT_EQ(expectation.size(), exact.counts.size());
    for (const auto& [group, count] : exact.counts) {
      EXPECT_NEAR(expectation[group], static_cast<double>(count), 1e-6)
          << "group " << group;
    }
  }
}

// Same property on random graphs/queries (parameterized sweep).
class WanderUnbiased : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WanderUnbiased, ExhaustiveExpectationMatches) {
  Rng rng(GetParam());
  Graph graph = testing::RandomGraph(rng);
  IndexSet indexes(graph);
  int tested = 0;
  for (int attempt = 0; attempt < 30 && tested < 3; ++attempt) {
    const int length = 1 + static_cast<int>(rng.Below(4));
    auto query = testing::RandomChainQuery(rng, graph, length, false);
    if (!query.has_value()) continue;
    ++tested;
    const GroupedResult exact = testing::BruteForce(graph, *query);
    WanderJoin wj(indexes, *query);
    std::unordered_map<TermId, double> expectation;
    wj.EnumerateAllWalks([&](double prob, TermId group, double contrib) {
      if (contrib > 0) expectation[group] += prob * contrib;
    });
    for (const auto& [group, count] : exact.counts) {
      ASSERT_NEAR(expectation[group], static_cast<double>(count),
                  1e-6 * (1 + count))
          << query->ToSparql();
    }
    for (const auto& [group, value] : expectation) {
      ASSERT_NEAR(value, static_cast<double>(exact.CountFor(group)),
                  1e-6 * (1 + value));
    }
  }
  EXPECT_GT(tested, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WanderUnbiased,
                         ::testing::Range<uint64_t>(100, 112));

TEST_F(WanderTest, ConvergesOnNonDistinct) {
  const ChainQuery query = Fig5(false);
  const GroupedResult exact = testing::BruteForce(graph_, query);
  WanderJoin wj(indexes_, query);
  wj.RunWalks(200000);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(wj.estimates().Estimate(group), static_cast<double>(count),
                0.05 * static_cast<double>(count) + 0.05);
  }
}

TEST_F(WanderTest, DistinctSeenSetRejectsDuplicates) {
  const ChainQuery query = Fig5(true);
  WanderJoin wj(indexes_, query);
  wj.RunWalks(50000);
  // The graph has few (class, place) groups with few distinct objects; the
  // seen-set saturates quickly so duplicates must occur.
  EXPECT_GT(wj.duplicate_walks(), 0u);
  // Duplicates are counted separately from dead-end rejections, and the
  // two never overlap.
  EXPECT_LE(wj.duplicate_walks() + wj.estimates().rejected_walks(),
            wj.estimates().walks());
}

TEST_F(WanderTest, RejectionsOnDeadEndWalks) {
  // (?x type Person)(?x influencedBy ?y): socrates and parmenides have no
  // outgoing influencedBy edge, so forward walks through them die.
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
       MakePattern(V(0), C(Id("influencedBy")), V(1))},
      1, 0, false);
  ASSERT_TRUE(q.has_value());
  WanderJoin wj(indexes_, *q);
  wj.RunWalks(20000);
  EXPECT_GT(wj.estimates().rejected_walks(), 0u);
  const GroupedResult exact = testing::BruteForce(graph_, *q);
  for (const auto& [group, count] : exact.counts) {
    EXPECT_NEAR(wj.estimates().Estimate(group), static_cast<double>(count),
                0.1 * static_cast<double>(count));
  }
}

TEST_F(WanderTest, SeededRunsAreReproducible) {
  const ChainQuery query = Fig5(false);
  WanderJoin::Options options;
  options.seed = 77;
  WanderJoin a(indexes_, query, options);
  WanderJoin b(indexes_, query, options);
  a.RunWalks(1000);
  b.RunWalks(1000);
  const TermId city = Id("City");
  EXPECT_DOUBLE_EQ(a.estimates().Estimate(city),
                   b.estimates().Estimate(city));
}

}  // namespace
}  // namespace kgoa
