// Tests for the cyclic-query extension (src/cyclic/cyclic.h): validation,
// multi-bound access paths, and the unbiasedness of the cyclic Wander
// Join / Audit Join estimators verified exhaustively against LFTJ.
#include <unordered_map>

#include <gtest/gtest.h>

#include "src/cyclic/cyclic.h"
#include "src/join/leapfrog.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

// Directed random graph over one "edge" property.
Graph EdgeGraph(Rng& rng, int nodes, int edges) {
  GraphBuilder b;
  const TermId edge = b.Intern("edge");
  std::vector<TermId> ids;
  for (int i = 0; i < nodes; ++i) {
    ids.push_back(b.Intern("n" + std::to_string(i)));
  }
  for (int i = 0; i < edges; ++i) {
    b.Add(ids[rng.Below(ids.size())], edge, ids[rng.Below(ids.size())]);
  }
  (void)edge;
  return std::move(b).Build();
}

CyclicQuery TriangleQuery(const Graph& g) {
  const TermId edge = g.dict().Lookup("edge");
  auto q = CyclicQuery::Create({MakePattern(V(0), C(edge), V(1)),
                                MakePattern(V(1), C(edge), V(2)),
                                MakePattern(V(2), C(edge), V(0))},
                               /*alpha=*/0);
  EXPECT_TRUE(q.has_value());
  return *q;
}

// Exact per-group triangle counts via generic LFTJ.
std::unordered_map<TermId, uint64_t> ExactTriangles(const Graph& g,
                                                    const IndexSet& indexes) {
  const TermId edge = g.dict().Lookup("edge");
  LeapfrogJoin join(indexes, {MakePattern(V(0), C(edge), V(1)),
                              MakePattern(V(1), C(edge), V(2)),
                              MakePattern(V(2), C(edge), V(0))});
  int alpha_pos = -1;
  for (std::size_t i = 0; i < join.var_order().size(); ++i) {
    if (join.var_order()[i] == 0) alpha_pos = static_cast<int>(i);
  }
  std::unordered_map<TermId, uint64_t> exact;
  join.Enumerate([&](const std::vector<TermId>& binding) {
    ++exact[binding[alpha_pos]];
  });
  return exact;
}

TEST(CyclicQuery, ValidationRules) {
  std::string error;
  // Disconnected.
  EXPECT_FALSE(CyclicQuery::Create({MakePattern(V(0), C(1), V(1)),
                                    MakePattern(V(2), C(1), V(3))},
                                   0, &error)
                   .has_value());
  // Variable in three patterns.
  EXPECT_FALSE(CyclicQuery::Create({MakePattern(V(0), C(1), V(1)),
                                    MakePattern(V(0), C(2), V(2)),
                                    MakePattern(V(0), C(3), V(3))},
                                   0, &error)
                   .has_value());
  // Alpha must occur.
  EXPECT_FALSE(CyclicQuery::Create({MakePattern(V(0), C(1), V(1))}, 9,
                                   &error)
                   .has_value());
  // A triangle is accepted.
  EXPECT_TRUE(CyclicQuery::Create({MakePattern(V(0), C(1), V(1)),
                                   MakePattern(V(1), C(1), V(2)),
                                   MakePattern(V(2), C(1), V(0))},
                                  0, &error)
                  .has_value())
      << error;
}

TEST(MultiBound, ResolvesFullyBoundExistence) {
  Rng rng(11);
  Graph g = EdgeGraph(rng, 8, 25);
  IndexSet indexes(g);
  const TermId edge = g.dict().Lookup("edge");

  const TriplePattern pattern = MakePattern(V(0), C(edge), V(1));
  MultiBoundAccess access;
  ASSERT_TRUE(MultiBoundAccess::TryCompile(pattern, {0, 1}, &access));
  // Every existing edge resolves to exactly one triple; absent pairs to 0.
  for (const Triple& t : g.triples()) {
    EXPECT_EQ(access.Resolve(indexes, {t.s, t.o, 0}).size(), 1u);
  }
  const TermId n0 = g.dict().Lookup("n0");
  uint64_t present = 0;
  for (const Triple& t : g.triples()) present += t.s == n0 && t.o == n0;
  EXPECT_EQ(access.Resolve(indexes, {n0, n0, 0}).size(), present);
}

TEST(MultiBound, RejectsUncoverableMask) {
  // Bound subject+object with a free predicate has no covering order.
  const TriplePattern pattern = MakePattern(V(0), V(2), V(1));
  MultiBoundAccess access;
  EXPECT_FALSE(MultiBoundAccess::TryCompile(pattern, {0, 1}, &access));
}

class CyclicTriangles : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CyclicTriangles, WanderExpectationEqualsExact) {
  Rng rng(GetParam());
  Graph g = EdgeGraph(rng, 10, 35);
  IndexSet indexes(g);
  const auto exact = ExactTriangles(g, indexes);

  CyclicWanderJoin wander(indexes, TriangleQuery(g));
  std::unordered_map<TermId, double> expectation;
  double total = 0;
  wander.EnumerateAllWalks([&](double prob, TermId group, double contrib) {
    total += prob;
    if (contrib > 0) expectation[group] += prob * contrib;
  });
  ASSERT_NEAR(total, 1.0, 1e-9);
  for (const auto& [group, count] : exact) {
    ASSERT_NEAR(expectation[group], static_cast<double>(count),
                1e-6 * (1 + count));
  }
  ASSERT_EQ(expectation.size(), exact.size());
}

TEST_P(CyclicTriangles, AuditExpectationEqualsExact) {
  Rng rng(GetParam() + 1000);
  Graph g = EdgeGraph(rng, 10, 35);
  IndexSet indexes(g);
  const auto exact = ExactTriangles(g, indexes);

  for (double threshold : {0.0, 4.0, 1e18}) {
    CyclicAuditJoin::Options options;
    options.tipping_threshold = threshold;
    options.enable_tipping = threshold > 0;
    CyclicAuditJoin audit(indexes, TriangleQuery(g), options);
    std::unordered_map<TermId, double> expectation;
    audit.EnumerateAllWalks(
        [&](double prob, const std::unordered_map<TermId, double>& cm) {
          for (const auto& [group, contribution] : cm) {
            expectation[group] += prob * contribution;
          }
        });
    for (const auto& [group, count] : exact) {
      ASSERT_NEAR(expectation[group], static_cast<double>(count),
                  1e-6 * (1 + count))
          << "threshold " << threshold;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicTriangles,
                         ::testing::Range<uint64_t>(400, 408));

TEST(CyclicConvergence, TriangleCountsStochastic) {
  Rng rng(2024);
  Graph g = EdgeGraph(rng, 14, 80);
  IndexSet indexes(g);
  const auto exact = ExactTriangles(g, indexes);
  uint64_t total_exact = 0;
  for (const auto& [group, count] : exact) total_exact += count;
  if (total_exact == 0) GTEST_SKIP() << "no triangles in this seed";

  CyclicAuditJoin::Options options;
  options.tipping_threshold = 8;
  CyclicAuditJoin audit(indexes, TriangleQuery(g), options);
  audit.RunWalks(200000);
  double total_estimate = 0;
  for (const auto& [group, estimate] : audit.estimates().Estimates()) {
    total_estimate += estimate;
  }
  EXPECT_NEAR(total_estimate, static_cast<double>(total_exact),
              0.1 * static_cast<double>(total_exact));
}

TEST(CyclicConvergence, FourCycleExpectation) {
  // Squares: a 4-cycle query, two closing constraints along the walk.
  Rng rng(31);
  Graph g = EdgeGraph(rng, 8, 30);
  IndexSet indexes(g);
  const TermId edge = g.dict().Lookup("edge");

  auto q = CyclicQuery::Create({MakePattern(V(0), C(edge), V(1)),
                                MakePattern(V(1), C(edge), V(2)),
                                MakePattern(V(2), C(edge), V(3)),
                                MakePattern(V(3), C(edge), V(0))},
                               0);
  ASSERT_TRUE(q.has_value());

  LeapfrogJoin join(indexes, q->patterns());
  int alpha_pos = -1;
  for (std::size_t i = 0; i < join.var_order().size(); ++i) {
    if (join.var_order()[i] == 0) alpha_pos = static_cast<int>(i);
  }
  std::unordered_map<TermId, uint64_t> exact;
  join.Enumerate([&](const std::vector<TermId>& binding) {
    ++exact[binding[alpha_pos]];
  });

  CyclicWanderJoin wander(indexes, *q);
  std::unordered_map<TermId, double> expectation;
  wander.EnumerateAllWalks([&](double prob, TermId group, double contrib) {
    if (contrib > 0) expectation[group] += prob * contrib;
  });
  for (const auto& [group, count] : exact) {
    ASSERT_NEAR(expectation[group], static_cast<double>(count),
                1e-6 * (1 + count));
  }
}

}  // namespace
}  // namespace kgoa
