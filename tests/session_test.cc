// Tests for src/explore: the exploration state machine (Figure 3) and its
// translation to chain queries (Figure 4), including the paper's own
// Example III.1 walk.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/explore/session.h"
#include "src/join/ctj.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) {
    const TermId id = graph_.dict().Lookup(term);
    EXPECT_NE(id, kInvalidTerm) << term;
    return id;
  }

  GroupedResult Eval(const ChainQuery& q) {
    return CtjEngine(indexes_).Evaluate(q);
  }

  Graph graph_;
  IndexSet indexes_;
};

TEST_F(SessionTest, StartsAtRootClassBar) {
  ExplorationSession session(graph_);
  EXPECT_EQ(session.current_kind(), BarKind::kClass);
  EXPECT_EQ(session.current_category(), graph_.owl_thing());
  EXPECT_EQ(session.depth(), 0);
  const auto legal = session.LegalExpansions();
  EXPECT_EQ(legal.size(), 3u);
  EXPECT_TRUE(session.IsLegal(ExpansionKind::kSubclass));
  EXPECT_FALSE(session.IsLegal(ExpansionKind::kObject));
}

TEST_F(SessionTest, SubclassExpansionCountsDirectSubclasses) {
  ExplorationSession session(graph_);
  const ChainQuery q = session.BuildQuery(ExpansionKind::kSubclass);
  const GroupedResult result = Eval(q);
  // Direct subclasses of Thing with instances: Agent (4), Place (2).
  EXPECT_EQ(result.counts.size(), 2u);
  EXPECT_EQ(result.CountFor(Id("Agent")), 4u);
  EXPECT_EQ(result.CountFor(Id("Place")), 2u);
  // Verified independently.
  EXPECT_EQ(result, testing::BruteForce(graph_, q));
}

TEST_F(SessionTest, SubclassRefinementReplacesTypePattern) {
  ExplorationSession session(graph_);
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Agent"));
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Person"));
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Philosopher"));
  // The chain stays a single type pattern (Figure 6 shape), not three.
  EXPECT_EQ(session.patterns().size(), 1u);
  EXPECT_EQ(session.depth(), 3);
  EXPECT_EQ(session.current_category(), Id("Philosopher"));
}

TEST_F(SessionTest, OutPropertyExpansionFromClassBar) {
  ExplorationSession session(graph_);
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Agent"));
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Person"));
  const ChainQuery q = session.BuildQuery(ExpansionKind::kOutProperty);
  const GroupedResult result = Eval(q);
  EXPECT_EQ(result, testing::BruteForce(graph_, q));
  // Persons have outgoing rdf:type, influencedBy, birthPlace.
  EXPECT_EQ(result.CountFor(Id("birthPlace")), 3u);   // plato, socrates, aristotle
  EXPECT_EQ(result.CountFor(Id("influencedBy")), 2u); // plato, aristotle
  EXPECT_EQ(result.CountFor(graph_.rdf_type()), 4u);
}

TEST_F(SessionTest, ObjectExpansionClassifiesObjects) {
  // Person --birthPlace--> objects, grouped by class (the Fig. 5 query).
  ExplorationSession session(graph_);
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Agent"));
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Person"));
  session.ExpandAndSelect(ExpansionKind::kOutProperty, Id("birthPlace"));
  EXPECT_EQ(session.current_kind(), BarKind::kOutProperty);
  EXPECT_EQ(session.LegalExpansions(),
            std::vector<ExpansionKind>{ExpansionKind::kObject});

  const ChainQuery q = session.BuildQuery(ExpansionKind::kObject);
  const GroupedResult result = Eval(q);
  EXPECT_EQ(result, testing::BruteForce(graph_, q));
  // Birth places: athens, stagira — each a City, Place, Thing.
  EXPECT_EQ(result.CountFor(Id("City")), 2u);
  EXPECT_EQ(result.CountFor(Id("Place")), 2u);
  EXPECT_EQ(result.CountFor(graph_.owl_thing()), 2u);
}

TEST_F(SessionTest, InPropertyAndSubjectExpansions) {
  ExplorationSession session(graph_);
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Place"));
  const ChainQuery in_q = session.BuildQuery(ExpansionKind::kInProperty);
  const GroupedResult in_result = Eval(in_q);
  EXPECT_EQ(in_result, testing::BruteForce(graph_, in_q));
  EXPECT_EQ(in_result.CountFor(Id("birthPlace")), 2u);  // athens, stagira

  session.ExpandAndSelect(ExpansionKind::kInProperty, Id("birthPlace"));
  EXPECT_EQ(session.current_kind(), BarKind::kInProperty);
  const ChainQuery subj_q = session.BuildQuery(ExpansionKind::kSubject);
  const GroupedResult subj = Eval(subj_q);
  EXPECT_EQ(subj, testing::BruteForce(graph_, subj_q));
  // Subjects born somewhere: plato, socrates, aristotle — Persons.
  EXPECT_EQ(subj.CountFor(Id("Person")), 3u);
  EXPECT_EQ(subj.CountFor(Id("Philosopher")), 2u);
}

// The paper's Example III.1: Thing -> Agent -> Person -> Philosopher ->
// influencedBy -> Person -> out-properties (Figure 2's chart).
TEST_F(SessionTest, ExampleIII1PhilosopherWalk) {
  ExplorationSession session(graph_);
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Agent"));
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Person"));
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Philosopher"));
  session.ExpandAndSelect(ExpansionKind::kOutProperty, Id("influencedBy"));
  session.ExpandAndSelect(ExpansionKind::kObject, Id("Person"));

  // Out-property expansion on a saturated focus: must fuse the Person
  // restriction as a filter and stay a valid chain query.
  ASSERT_TRUE(session.IsLegal(ExpansionKind::kOutProperty));
  const ChainQuery q = session.BuildQuery(ExpansionKind::kOutProperty);
  EXPECT_TRUE(q.HasAnyFilter());

  const GroupedResult result = Eval(q);
  EXPECT_EQ(result, testing::BruteForce(graph_, q));
  // People who influenced philosophers: socrates, parmenides, plato. All
  // have rdf:type out-edges; socrates and plato have birthPlace; plato has
  // influencedBy.
  EXPECT_EQ(result.CountFor(graph_.rdf_type()), 3u);
  EXPECT_EQ(result.CountFor(Id("birthPlace")), 2u);
  EXPECT_EQ(result.CountFor(Id("influencedBy")), 1u);
}

// Regression: ExpandAndSelect used to advance next_var_ by a flat 2 even
// though subclass/object/subject expansions bind only one fresh variable,
// so variable ids leaked on every step of a deep session. The ids in the
// chain are pinned: the Example III.1 walk must end at ?5, and each
// further out+object hop adds exactly 3 fresh ids (two for the property
// expansion, one for the object classification).
TEST_F(SessionTest, DeepSessionVariableIdsDoNotLeak) {
  const auto max_var = [](const std::vector<TriplePattern>& patterns) {
    VarId max_seen = 0;
    for (const TriplePattern& p : patterns) {
      for (int c = 0; c < 3; ++c) {
        if (p[c].is_var()) max_seen = std::max(max_seen, p[c].var());
      }
    }
    return max_seen;
  };

  ExplorationSession session(graph_);
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Agent"));
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Person"));
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Philosopher"));
  // Three subclass refinements bind one fresh variable each; the chain is
  // still the single pattern (?0 type Philosopher).
  EXPECT_EQ(max_var(session.patterns()), 0u);
  session.ExpandAndSelect(ExpansionKind::kOutProperty, Id("influencedBy"));
  session.ExpandAndSelect(ExpansionKind::kObject, Id("Person"));
  // (?0 type Philosopher)(?0 influencedBy ?5)(?5 type Person): the object
  // endpoint is ?5, not the ?8 the leaking counter produced.
  EXPECT_EQ(max_var(session.patterns()), 5u);

  // Deep chain: every out+object round adds exactly 3 fresh ids.
  for (VarId round = 1; round <= 5; ++round) {
    session.ExpandAndSelect(ExpansionKind::kOutProperty, graph_.rdf_type());
    session.ExpandAndSelect(ExpansionKind::kObject, Id("Person"));
    EXPECT_EQ(max_var(session.patterns()), 5u + 3u * round);
  }

  // The deep chain still builds a valid chain query that all engines
  // agree on (the Figure 4 contract holds at depth 15).
  EXPECT_EQ(session.depth(), 15);
  const ChainQuery q = session.BuildQuery(ExpansionKind::kOutProperty);
  EXPECT_EQ(Eval(q), testing::BruteForce(graph_, q));
}

TEST_F(SessionTest, SubclassAfterObjectSelectionStaysLegal) {
  ExplorationSession session(graph_);
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Person"));
  session.ExpandAndSelect(ExpansionKind::kOutProperty, Id("birthPlace"));
  session.ExpandAndSelect(ExpansionKind::kObject, Id("Place"));
  // Subclass refinement of "Place" within birth places.
  const ChainQuery q = session.BuildQuery(ExpansionKind::kSubclass);
  const GroupedResult result = Eval(q);
  EXPECT_EQ(result, testing::BruteForce(graph_, q));
  EXPECT_EQ(result.CountFor(Id("City")), 2u);
}

TEST_F(SessionTest, GoBackRestoresPreviousState) {
  ExplorationSession session(graph_);
  EXPECT_FALSE(session.CanGoBack());
  EXPECT_FALSE(session.GoBack());

  const std::string at_root = session.Describe();
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Agent"));
  session.ExpandAndSelect(ExpansionKind::kSubclass, Id("Person"));
  session.ExpandAndSelect(ExpansionKind::kOutProperty, Id("birthPlace"));
  EXPECT_EQ(session.depth(), 3);
  EXPECT_TRUE(session.CanGoBack());

  ASSERT_TRUE(session.GoBack());
  EXPECT_EQ(session.depth(), 2);
  EXPECT_EQ(session.current_category(), Id("Person"));
  EXPECT_EQ(session.current_kind(), BarKind::kClass);
  // Forward again works (the state machine is fully restored).
  const ChainQuery q = session.BuildQuery(ExpansionKind::kOutProperty);
  EXPECT_EQ(Eval(q), testing::BruteForce(graph_, q));

  ASSERT_TRUE(session.GoBack());
  ASSERT_TRUE(session.GoBack());
  EXPECT_EQ(session.depth(), 0);
  EXPECT_EQ(session.Describe(), at_root);
  EXPECT_FALSE(session.GoBack());
}

TEST_F(SessionTest, DescribeMentionsCategory) {
  ExplorationSession session(graph_);
  const std::string desc = session.Describe();
  EXPECT_NE(desc.find("owl#Thing"), std::string::npos);
}

// Random exploration smoke test: every chart query along random sessions
// is valid and all engines agree on it.
TEST_F(SessionTest, RandomWalksProduceValidQueries) {
  Rng rng(4242);
  for (int run = 0; run < 10; ++run) {
    ExplorationSession session(graph_);
    for (int step = 0; step < 5; ++step) {
      const auto legal = session.LegalExpansions();
      const ExpansionKind expansion = legal[rng.Below(legal.size())];
      const ChainQuery q = session.BuildQuery(expansion);
      const GroupedResult exact = testing::BruteForce(graph_, q);
      ASSERT_EQ(Eval(q), exact) << session.Describe();
      if (exact.counts.empty()) break;
      // Pick a random bar.
      auto it = exact.counts.begin();
      std::advance(it, rng.Below(exact.counts.size()));
      session.ExpandAndSelect(expansion, it->first);
    }
  }
}

}  // namespace
}  // namespace kgoa
