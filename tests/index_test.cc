// Unit tests for src/index: trie indexes, trie iterators, hash ranges, and
// the IndexSet facade, validated against brute-force scans.
#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/index/block_codec.h"
#include "src/index/index_set.h"
#include "src/index/trie_iterator.h"
#include "src/ola/parallel.h"
#include "src/util/contract.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}
  Graph graph_;
  IndexSet indexes_;
};

TEST_F(IndexTest, OrdersAreSorted) {
  for (IndexOrder order : kAllIndexOrders) {
    const TrieIndex& index = indexes_.Index(order);
    ASSERT_EQ(index.size(), graph_.NumTriples());
    for (uint32_t i = 1; i < index.size(); ++i) {
      EXPECT_FALSE(OrderLess{order}(index.TripleAt(i), index.TripleAt(i - 1)))
          << OrderName(order) << " not sorted at " << i;
    }
  }
}

TEST_F(IndexTest, NarrowMatchesBruteForce) {
  const TrieIndex& pso = indexes_.Index(IndexOrder::kPso);
  const TermId type = graph_.rdf_type();
  const Range r = pso.Narrow(pso.Root(), 0, type);
  uint64_t expected = 0;
  for (const Triple& t : graph_.triples()) expected += t.p == type;
  EXPECT_EQ(r.size(), expected);
  // All triples in the range have the predicate.
  for (uint32_t pos = r.begin; pos < r.end; ++pos) {
    EXPECT_EQ(pso.TripleAt(pos).p, type);
  }
}

TEST_F(IndexTest, NarrowMissingValueIsEmpty) {
  const TrieIndex& spo = indexes_.Index(IndexOrder::kSpo);
  const Range r = spo.Narrow(spo.Root(), 0, kInvalidTerm - 1);
  EXPECT_TRUE(r.empty());
}

TEST_F(IndexTest, CountDistinctMatchesSet) {
  for (IndexOrder order : kAllIndexOrders) {
    const TrieIndex& index = indexes_.Index(order);
    std::set<TermId> level0;
    for (const Triple& t : graph_.triples()) {
      level0.insert(t[OrderComponent(order, 0)]);
    }
    EXPECT_EQ(index.CountDistinct(index.Root(), 0), level0.size());
  }
}

TEST_F(IndexTest, TrieIteratorEnumeratesDistinctSortedKeys) {
  const TrieIndex& pso = indexes_.Index(IndexOrder::kPso);
  TrieIterator it(&pso);
  it.Open();
  std::vector<TermId> keys;
  while (!it.AtEnd()) {
    keys.push_back(it.Key());
    it.Next();
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
  EXPECT_EQ(keys.size(), indexes_.Hash(IndexOrder::kPso).Ndv1());
}

TEST_F(IndexTest, TrieIteratorOpenUpRestoresPosition) {
  const TrieIndex& spo = indexes_.Index(IndexOrder::kSpo);
  TrieIterator it(&spo);
  it.Open();
  const TermId first = it.Key();
  it.Next();
  ASSERT_FALSE(it.AtEnd());
  const TermId second = it.Key();
  it.Open();  // descend under `second`
  ASSERT_FALSE(it.AtEnd());
  it.Up();
  EXPECT_EQ(it.Key(), second);
  it.Up();
  EXPECT_EQ(it.level(), -1);
  it.Open();
  EXPECT_EQ(it.Key(), first);
}

TEST_F(IndexTest, TrieIteratorSeek) {
  const TrieIndex& spo = indexes_.Index(IndexOrder::kSpo);
  TrieIterator it(&spo);
  it.Open();
  std::vector<TermId> keys;
  while (!it.AtEnd()) {
    keys.push_back(it.Key());
    it.Next();
  }
  ASSERT_GE(keys.size(), 3u);
  // Seek to each key and one past it.
  for (TermId key : keys) {
    TrieIterator seeker(&spo);
    seeker.Open();
    seeker.SeekGE(key);
    ASSERT_FALSE(seeker.AtEnd());
    EXPECT_EQ(seeker.Key(), key);
  }
  TrieIterator seeker(&spo);
  seeker.Open();
  seeker.SeekGE(keys.back() + 1);
  EXPECT_TRUE(seeker.AtEnd());
}

TEST_F(IndexTest, TrieIteratorThreeLevelWalkReconstructsTriples) {
  const TrieIndex& ops = indexes_.Index(IndexOrder::kOps);
  TrieIterator it(&ops);
  std::unordered_set<uint64_t> seen;
  std::size_t count = 0;
  it.Open();
  while (!it.AtEnd()) {
    const TermId o = it.Key();
    it.Open();
    while (!it.AtEnd()) {
      const TermId p = it.Key();
      it.Open();
      while (!it.AtEnd()) {
        const TermId s = it.Key();
        EXPECT_TRUE(graph_.Contains(Triple{s, p, o}));
        ++count;
        it.Next();
      }
      it.Up();
      it.Next();
    }
    it.Up();
    it.Next();
  }
  EXPECT_EQ(count, graph_.NumTriples());
  (void)seen;
}

TEST_F(IndexTest, HashRangesAgreeWithNarrow) {
  for (IndexOrder order : kAllIndexOrders) {
    const TrieIndex& index = indexes_.Index(order);
    const HashRangeIndex& hash = indexes_.Hash(order);
    std::set<TermId> level0;
    for (const Triple& t : graph_.triples()) {
      level0.insert(t[OrderComponent(order, 0)]);
    }
    for (TermId v : level0) {
      const Range expected = index.Narrow(index.Root(), 0, v);
      EXPECT_EQ(hash.Depth1(v), expected) << OrderName(order);
      EXPECT_EQ(hash.Ndv2(v), index.CountDistinct(expected, 1));
      // Depth-2 spot check: first (v, w) pair in the range.
      const TermId w = index.KeyAt(expected.begin, 1);
      EXPECT_EQ(hash.Depth2(v, w), index.Narrow(expected, 1, w));
    }
  }
}

TEST_F(IndexTest, HashRangeMissingKeysEmpty) {
  const HashRangeIndex& hash = indexes_.Hash(IndexOrder::kSpo);
  EXPECT_TRUE(hash.Depth1(kInvalidTerm - 1).empty());
  EXPECT_TRUE(hash.Depth2(kInvalidTerm - 1, 0).empty());
  EXPECT_EQ(hash.Ndv2(kInvalidTerm - 1), 0u);
}

TEST(ChooseOrder, CoversAllPrefixMasks) {
  IndexOrder order;
  int depth;
  // Every mask except {s,o} has a covering order.
  for (uint32_t mask : {0b000u, 0b001u, 0b010u, 0b100u, 0b011u, 0b110u,
                        0b111u}) {
    EXPECT_TRUE(IndexSet::ChooseOrder(mask, &order, &depth)) << mask;
    EXPECT_EQ(depth, std::popcount(mask));
  }
  EXPECT_FALSE(IndexSet::ChooseOrder(0b101u, &order, &depth));
}

TEST_F(IndexTest, CountMatchesAgainstBruteForce) {
  const TermId type = graph_.rdf_type();
  const TermId person = graph_.dict().Lookup("Person");
  const TermId plato = graph_.dict().Lookup("plato");

  struct Case {
    TriplePattern pattern;
    const char* label;
  };
  const std::vector<Case> cases = {
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(type),
                   Slot::MakeConst(person)),
       "?x type Person"},
      {MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2)),
       "?x ?p ?y"},
      {MakePattern(Slot::MakeConst(plato), Slot::MakeVar(0),
                   Slot::MakeVar(1)),
       "plato ?p ?y"},
      {MakePattern(Slot::MakeConst(plato), Slot::MakeVar(0),
                   Slot::MakeConst(person)),
       "plato ?p Person ({s,o} fallback)"},
      {MakePattern(Slot::MakeConst(plato), Slot::MakeConst(type),
                   Slot::MakeConst(person)),
       "plato type Person (existence)"},
  };
  for (const Case& c : cases) {
    uint64_t expected = 0;
    for (const Triple& t : graph_.triples()) {
      expected += c.pattern.MatchesConstants(t);
    }
    EXPECT_EQ(indexes_.CountMatches(c.pattern), expected) << c.label;
  }
}

TEST_F(IndexTest, CountDistinctVarAgainstBruteForce) {
  const TermId type = graph_.rdf_type();
  const TermId person = graph_.dict().Lookup("Person");
  const TermId influenced = graph_.dict().Lookup("influencedBy");

  struct Case {
    TriplePattern pattern;
    VarId var;
    int component;
  };
  const std::vector<Case> cases = {
      // Adjacent level (fast path).
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(type),
                   Slot::MakeConst(person)),
       0, kSubject},
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(influenced),
                   Slot::MakeVar(1)),
       0, kSubject},
      // Non-adjacent: distinct objects given predicate.
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(influenced),
                   Slot::MakeVar(1)),
       1, kObject},
      // No constants at all.
      {MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2)), 1,
       kPredicate},
  };
  for (const Case& c : cases) {
    std::set<TermId> values;
    for (const Triple& t : graph_.triples()) {
      if (c.pattern.MatchesConstants(t)) values.insert(t[c.component]);
    }
    EXPECT_EQ(indexes_.CountDistinctVar(c.pattern, c.var), values.size());
  }
}

TEST_F(IndexTest, SeekGEGallopingEdgeCases) {
  const TrieIndex& spo = indexes_.Index(IndexOrder::kSpo);
  const Range root = spo.Root();
  ASSERT_FALSE(root.empty());
  const TermId first = spo.KeyAt(root.begin, 0);
  const TermId last = spo.KeyAt(root.end - 1, 0);

  // `from` already at the end: nothing left to seek.
  EXPECT_EQ(spo.SeekGE(root, 0, first, root.end), root.end);
  // Value past everything in the range.
  EXPECT_EQ(spo.SeekGE(root, 0, last + 1, root.begin), root.end);
  // `from` already at (or past) the target value: position is unchanged.
  EXPECT_EQ(spo.SeekGE(root, 0, first, root.begin), root.begin);
  const uint32_t at_last = spo.Narrow(root, 0, last).begin;
  EXPECT_EQ(spo.SeekGE(root, 0, last, at_last), at_last);
  // Seek to the exact last value from the front.
  EXPECT_EQ(spo.SeekGE(root, 0, last, root.begin), at_last);

  // Leapfrog sweep: seeking every distinct value in ascending order from
  // the previous hit never moves backwards and lands exactly where a
  // from-scratch Narrow would.
  uint32_t from = root.begin;
  uint32_t pos = root.begin;
  while (pos < root.end) {
    const TermId v = spo.KeyAt(pos, 0);
    const uint32_t hit = spo.SeekGE(root, 0, v, from);
    EXPECT_GE(hit, from);
    EXPECT_EQ(hit, spo.Narrow(root, 0, v).begin);
    from = hit;
    pos = spo.BlockEnd(root, 0, pos);
  }
  // A repeated seek to the last value from its own hit stays put.
  EXPECT_EQ(spo.SeekGE(root, 0, last, from), from);
}

TEST_F(IndexTest, SeekGEDeepLevels) {
  // Same invariants one level down, where SeekGE gallops instead of using
  // the CSR offsets.
  const TrieIndex& pso = indexes_.Index(IndexOrder::kPso);
  const Range root = pso.Root();
  uint32_t pos0 = root.begin;
  while (pos0 < root.end) {
    const Range node = Range{pos0, pso.BlockEnd(root, 0, pos0)};
    uint32_t from = node.begin;
    uint32_t pos = node.begin;
    while (pos < node.end) {
      const TermId v = pso.KeyAt(pos, 1);
      const uint32_t hit = pso.SeekGE(node, 1, v, from);
      EXPECT_GE(hit, from);
      EXPECT_EQ(hit, pso.Narrow(node, 1, v).begin);
      from = pso.BlockEnd(node, 1, hit);  // consume the block, keep moving
      pos = from;
    }
    EXPECT_EQ(pso.SeekGE(node, 1, pso.KeyAt(node.end - 1, 1) + 1, node.begin),
              node.end);
    pos0 = node.end;
  }
}

TEST_F(IndexTest, Level0RangeMatchesNarrowForAllTerms) {
  for (IndexOrder order : kAllIndexOrders) {
    const TrieIndex& index = indexes_.Index(order);
    for (TermId v = 0; v < index.num_terms(); ++v) {
      EXPECT_EQ(index.Level0Range(v), index.Narrow(index.Root(), 0, v))
          << OrderName(order) << " term " << v;
    }
    // Out-of-dictionary values are empty, not out-of-bounds.
    EXPECT_TRUE(index.Level0Range(index.num_terms()).empty());
    EXPECT_TRUE(index.Level0Range(kInvalidTerm - 1).empty());
  }
}

TEST(TrieIndexRadix, SortingCtorMatchesStdSort) {
  // The copying constructor radix-sorts arbitrary input; std::sort with
  // OrderLess is the reference. Duplicate-free input => unique sorted
  // array, so the two must be bit-identical.
  Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    Graph g = testing::RandomGraph(rng);
    std::vector<Triple> shuffled = g.triples();
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.Below(i)]);
    }
    for (IndexOrder order : kAllIndexOrders) {
      TrieIndex index(order, shuffled);
      std::vector<Triple> expected = shuffled;
      std::sort(expected.begin(), expected.end(), OrderLess{order});
      ASSERT_EQ(index.size(), expected.size());
      for (uint32_t i = 0; i < index.size(); ++i) {
        ASSERT_EQ(index.TripleAt(i), expected[i])
            << OrderName(order) << " pos " << i;
      }
    }
  }
}

TEST_F(IndexTest, BuildStatsAndMemoryAreSane) {
  const IndexBuildStats& stats = indexes_.build_stats();
  EXPECT_GT(stats.total_ms, 0.0);
  for (int o = 0; o < kNumIndexOrders; ++o) {
    EXPECT_GE(stats.sort_ms[o], 0.0);
    EXPECT_GE(stats.hash_ms[o], 0.0);
  }
  // Memory at least covers the four resident triple arrays.
  EXPECT_GE(indexes_.ApproxMemoryBytes(),
            4 * graph_.NumTriples() * sizeof(Triple));
}

// Differential test: the flat-table hash ranges must answer exactly like
// the pre-rewrite representation — one std::unordered_map per depth,
// populated by the same nested block walk the old constructor used.
// --- Structural contracts on deliberately corrupted inputs ----------------

TEST(TrieIndexContracts, AdoptCtorRejectsCorruptedSortedLevel) {
  if (!contract::kEnabled) GTEST_SKIP() << "KGOA_DCHECK compiled out";
  // Level 0 of an SPO trie must be non-decreasing; subject 5 precedes 2.
  std::vector<Triple> corrupted = {{5, 1, 1}, {2, 1, 1}, {3, 1, 1}};
  EXPECT_DEATH(
      TrieIndex(IndexOrder::kSpo, std::move(corrupted), /*num_terms=*/6),
      "KGOA_DCHECK_SORTED failed at .*precedes");
}

TEST(TrieIndexContracts, CheckInvariantsCatchesCorruptedTrie) {
  // Always-on validation: whichever contract layer is active, adopting an
  // unsorted array and auditing the index must abort, never return wrong
  // ranges silently.
  const auto adopt_and_audit = [] {
    std::vector<Triple> corrupted = {{5, 1, 1}, {2, 1, 1}, {3, 1, 1}};
    const TrieIndex index(IndexOrder::kSpo, std::move(corrupted),
                          /*num_terms=*/6);
    index.CheckInvariants();
  };
  EXPECT_DEATH(adopt_and_audit(), "failed at");
}

TEST(IndexRandom, FlatTablesMatchReferenceMaps) {
  Rng rng(4242);
  for (int round = 0; round < 10; ++round) {
    Graph g = testing::RandomGraph(rng);
    IndexSet indexes(g);
    for (IndexOrder order : kAllIndexOrders) {
      const TrieIndex& index = indexes.Index(order);
      const HashRangeIndex& hash = indexes.Hash(order);

      struct RefEntry {
        Range range;
        uint32_t child_count = 0;
      };
      std::unordered_map<TermId, RefEntry> ref1;
      std::unordered_map<uint64_t, Range> ref2;
      const Range root = index.Root();
      uint32_t pos = root.begin;
      while (pos < root.end) {
        const TermId v0 = index.KeyAt(pos, 0);
        const uint32_t end0 = index.BlockEnd(root, 0, pos);
        RefEntry entry{Range{pos, end0}, 0};
        uint32_t p1 = pos;
        while (p1 < end0) {
          const TermId v1 = index.KeyAt(p1, 1);
          const uint32_t end1 = index.BlockEnd(Range{pos, end0}, 1, p1);
          ref2[(static_cast<uint64_t>(v0) << 32) | v1] = Range{p1, end1};
          ++entry.child_count;
          p1 = end1;
        }
        ref1[v0] = entry;
        pos = end0;
      }

      ASSERT_EQ(hash.Depth1Entries(), ref1.size()) << OrderName(order);
      ASSERT_EQ(hash.Depth2Entries(), ref2.size()) << OrderName(order);
      ASSERT_EQ(hash.Ndv1(), ref1.size()) << OrderName(order);
      // Present keys agree; a few shifted keys miss on both sides.
      for (const auto& [v0, entry] : ref1) {
        ASSERT_EQ(hash.Depth1(v0), entry.range) << OrderName(order);
        ASSERT_EQ(hash.Ndv2(v0), entry.child_count) << OrderName(order);
      }
      for (const auto& [key, range] : ref2) {
        ASSERT_EQ(hash.Depth2(static_cast<TermId>(key >> 32),
                              static_cast<TermId>(key)),
                  range)
            << OrderName(order);
      }
      for (int probe = 0; probe < 64; ++probe) {
        const TermId v0 = static_cast<TermId>(rng.Below(2 * g.dict().size()));
        const TermId v1 = static_cast<TermId>(rng.Below(2 * g.dict().size()));
        const auto it1 = ref1.find(v0);
        ASSERT_EQ(hash.Depth1(v0),
                  it1 == ref1.end() ? Range{} : it1->second.range);
        ASSERT_EQ(hash.Ndv2(v0),
                  it1 == ref1.end() ? 0u : it1->second.child_count);
        const uint64_t key = (static_cast<uint64_t>(v0) << 32) | v1;
        const auto it2 = ref2.find(key);
        ASSERT_EQ(hash.Depth2(v0, v1),
                  it2 == ref2.end() ? Range{} : it2->second);
      }
    }
  }
}

// Randomized agreement between index structures and scans.
TEST(IndexRandom, RangesAgreeWithScans) {
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    Graph g = testing::RandomGraph(rng);
    IndexSet indexes(g);
    for (IndexOrder order : kAllIndexOrders) {
      const TrieIndex& index = indexes.Index(order);
      const HashRangeIndex& hash = indexes.Hash(order);
      uint64_t total = 0;
      std::set<TermId> level0;
      for (const Triple& t : g.triples()) {
        level0.insert(t[OrderComponent(order, 0)]);
      }
      for (TermId v : level0) {
        const Range r = hash.Depth1(v);
        total += r.size();
        uint64_t expected = 0;
        for (const Triple& t : g.triples()) {
          expected += t[OrderComponent(order, 0)] == v;
        }
        ASSERT_EQ(r.size(), expected);
      }
      ASSERT_EQ(total, g.NumTriples());
      ASSERT_EQ(hash.Ndv1(), level0.size());
      ASSERT_EQ(index.CountDistinct(index.Root(), 0), level0.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Block codec (src/index/block_codec.h)
// ---------------------------------------------------------------------------

// Decode-what-you-encode across the value shapes that steer the per-block
// codec choice: constant blocks (0-bit FOR), narrow bands (bit-packing),
// sorted small-gap runs (varint-delta), wide random values, and the
// partial-last-block sizes around the 128-value boundary.
TEST(BlockCodec, RoundTripProperty) {
  Rng rng(2024);
  const uint32_t sizes[] = {0, 1, 63, 127, 128, 129, 255, 256, 1000, 4096};
  for (const uint32_t n : sizes) {
    for (int shape = 0; shape < 5; ++shape) {
      std::vector<uint32_t> values(n);
      uint32_t running = static_cast<uint32_t>(rng.Below(1000));
      for (uint32_t i = 0; i < n; ++i) {
        switch (shape) {
          case 0:  // constant
            values[i] = 42;
            break;
          case 1:  // narrow band
            values[i] = 1000 + static_cast<uint32_t>(rng.Below(17));
            break;
          case 2:  // sorted, small gaps
            running += static_cast<uint32_t>(rng.Below(4));
            values[i] = running;
            break;
          case 3:  // wide random
            values[i] = static_cast<uint32_t>(rng.Below(1u << 30));
            break;
          default:  // mostly narrow with rare outliers (FOR poison)
            values[i] = rng.Below(100) == 0
                            ? (1u << 29) + static_cast<uint32_t>(rng.Below(7))
                            : static_cast<uint32_t>(rng.Below(32));
            break;
        }
      }
      const BlockedColumn col(values.data(), n);
      ASSERT_EQ(col.size(), n);
      col.CheckInvariants(values.data());
      for (uint32_t i = 0; i < n; ++i) {
        ASSERT_EQ(col.Get(i), values[i]) << "shape " << shape << " pos " << i;
      }
      uint32_t decoded[kCodecBlockSize];
      uint32_t pos = 0;
      for (uint32_t b = 0; b < col.num_blocks(); ++b) {
        const uint32_t count = col.DecodeBlock(b, decoded);
        ASSERT_EQ(count, col.block_meta(b).count);
        for (uint32_t i = 0; i < count; ++i) {
          ASSERT_EQ(decoded[i], values[pos + i]);
        }
        pos += count;
      }
      ASSERT_EQ(pos, n);
    }
  }
}

// SeekGE/SeekGT over sorted windows agree with std::lower_bound /
// std::upper_bound on the raw array — including windows that straddle
// block boundaries, where the block-max skip must never overshoot.
TEST(BlockCodec, SeekMatchesLinearScan) {
  Rng rng(777);
  for (int round = 0; round < 20; ++round) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.Below(2000));
    std::vector<uint32_t> values(n);
    uint32_t running = 0;
    for (uint32_t i = 0; i < n; ++i) {
      running += static_cast<uint32_t>(rng.Below(8));
      values[i] = running;
    }
    const BlockedColumn col(values.data(), n);
    for (int probe = 0; probe < 200; ++probe) {
      uint32_t from = static_cast<uint32_t>(rng.Below(n + 1));
      uint32_t end = static_cast<uint32_t>(rng.Below(n + 1));
      if (from > end) std::swap(from, end);
      const uint32_t v = static_cast<uint32_t>(rng.Below(running + 3));
      const auto begin_it = values.begin() + from;
      const auto end_it = values.begin() + end;
      const uint32_t expect_ge = static_cast<uint32_t>(
          std::lower_bound(begin_it, end_it, v) - values.begin());
      const uint32_t expect_gt = static_cast<uint32_t>(
          std::upper_bound(begin_it, end_it, v) - values.begin());
      ASSERT_EQ(col.SeekGE(from, end, v), expect_ge)
          << "[" << from << "," << end << ") v=" << v;
      ASSERT_EQ(col.SeekGT(from, end, v), expect_gt)
          << "[" << from << "," << end << ") v=" << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Block storage tier (src/index/trie_index.h, src/index/index_set.h)
// ---------------------------------------------------------------------------

// Every index operation the engines use — TripleAt, KeyAt, Narrow,
// SeekGE, BlockEnd — returns identical positions and ranges on the raw
// and block tiers of the same graph. This is the property that makes
// estimate bit-identity across tiers automatic: the RNG draws depend only
// on range sizes, and the position space is shared.
TEST(IndexRandom, BlockTierMatchesRawOnAllOps) {
  Rng rng(31337);
  testing::RandomGraphSpec spec;
  spec.num_entities = 60;
  spec.num_property_triples = 600;
  spec.num_type_triples = 200;
  for (int round = 0; round < 5; ++round) {
    Graph g = testing::RandomGraph(rng, spec);
    IndexSet raw(g);
    IndexSet block(g, IndexSetOptions{StorageTier::kBlock});
    ASSERT_EQ(raw.tier(), StorageTier::kRaw);
    ASSERT_EQ(block.tier(), StorageTier::kBlock);
    for (IndexOrder order : kAllIndexOrders) {
      const TrieIndex& a = raw.Index(order);
      const TrieIndex& b = block.Index(order);
      ASSERT_EQ(a.size(), b.size());
      b.CheckInvariants();
      for (uint32_t pos = 0; pos < a.size(); ++pos) {
        ASSERT_EQ(a.TripleAt(pos), b.TripleAt(pos)) << OrderName(order);
      }
      // Level-0 node walk + per-node level-1 walk, in lockstep.
      const Range root = a.Root();
      ASSERT_EQ(root, b.Root());
      uint32_t pos = root.begin;
      while (pos < root.end) {
        const TermId v0 = a.KeyAt(pos, 0);
        ASSERT_EQ(v0, b.KeyAt(pos, 0));
        const uint32_t end0 = a.BlockEnd(root, 0, pos);
        ASSERT_EQ(end0, b.BlockEnd(root, 0, pos));
        ASSERT_EQ(a.Narrow(root, 0, v0), b.Narrow(root, 0, v0));
        const Range node{pos, end0};
        uint32_t p1 = pos;
        while (p1 < end0) {
          const TermId v1 = a.KeyAt(p1, 1);
          ASSERT_EQ(v1, b.KeyAt(p1, 1));
          const uint32_t end1 = a.BlockEnd(node, 1, p1);
          ASSERT_EQ(end1, b.BlockEnd(node, 1, p1));
          ASSERT_EQ(a.Narrow(node, 1, v1), b.Narrow(node, 1, v1));
          p1 = end1;
        }
        pos = end0;
      }
      // Random seeks, including missing values.
      for (int probe = 0; probe < 100; ++probe) {
        const TermId v =
            static_cast<TermId>(rng.Below(2 * g.dict().size() + 2));
        const uint32_t from =
            root.begin + static_cast<uint32_t>(rng.Below(root.size() + 1));
        ASSERT_EQ(a.SeekGE(root, 0, v, from), b.SeekGE(root, 0, v, from));
        ASSERT_EQ(a.Narrow(root, 0, v), b.Narrow(root, 0, v));
      }
    }
    // Tier accounting: exactly one tier's byte count is nonzero per set,
    // and the block tier is strictly smaller than raw on this data.
    EXPECT_EQ(raw.BlockStorageBytes(), 0u);
    EXPECT_EQ(block.RawStorageBytes(), 0u);
    EXPECT_GT(raw.RawStorageBytes(), 0u);
    EXPECT_GT(block.BlockStorageBytes(), 0u);
    EXPECT_LT(block.BlockStorageBytes(), raw.RawStorageBytes());
    EXPECT_LT(block.ApproxMemoryBytes(), raw.ApproxMemoryBytes());
  }
}

// The serving-layer acceptance criterion: a budget-mode estimate is
// bit-identical between the raw and block tiers across pool sizes
// {1, 2, 8}. The contract comes for free from BlockTierMatchesRawOnAllOps
// — this asserts it end-to-end through the engines and the slot merge.
TEST(BlockTier, BudgetEstimatesBitIdenticalToRawAcrossPools) {
  const Graph graph = testing::PaperExampleGraph();
  IndexSet raw(graph);
  IndexSet block(graph, IndexSetOptions{StorageTier::kBlock});

  auto q = ChainQuery::Create(
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(graph.rdf_type()),
                   Slot::MakeConst(graph.dict().Lookup("Person"))),
       MakePattern(Slot::MakeVar(0),
                   Slot::MakeConst(graph.dict().Lookup("birthPlace")),
                   Slot::MakeVar(1)),
       MakePattern(Slot::MakeVar(1), Slot::MakeConst(graph.rdf_type()),
                   Slot::MakeVar(2))},
      2, 1, /*distinct=*/true);
  ASSERT_TRUE(q.has_value());

  constexpr uint64_t kBudget = 1501;  // remainder path
  for (int threads : {1, 2, 8}) {
    ServingCore::Options core_options;
    core_options.threads = threads;
    ServingCore raw_core(raw, core_options);
    ServingCore block_core(block, core_options);

    ChartJobOptions job;
    job.walk_budget = kBudget;
    job.workers = 4;
    job.seed = 23;
    job.tipping_threshold = 2.0;  // stochastic mode
    const ParallelOlaResult from_raw = raw_core.Submit(*q, job).Await();
    const ParallelOlaResult from_block = block_core.Submit(*q, job).Await();

    ASSERT_EQ(from_raw.estimates.walks(), kBudget);
    ASSERT_EQ(from_block.estimates.walks(), kBudget);
    const auto ea = from_raw.estimates.Estimates();
    const auto eb = from_block.estimates.Estimates();
    ASSERT_EQ(ea.size(), eb.size()) << threads << " threads";
    for (const auto& [group, estimate] : ea) {
      const auto it = eb.find(group);
      ASSERT_NE(it, eb.end());
      EXPECT_EQ(estimate, it->second) << "group " << group;
      EXPECT_EQ(from_raw.estimates.CiHalfWidth(group),
                from_block.estimates.CiHalfWidth(group))
          << "group " << group;
    }
  }
}

}  // namespace
}  // namespace kgoa
