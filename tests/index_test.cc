// Unit tests for src/index: trie indexes, trie iterators, hash ranges, and
// the IndexSet facade, validated against brute-force scans.
#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/index/index_set.h"
#include "src/index/trie_iterator.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}
  Graph graph_;
  IndexSet indexes_;
};

TEST_F(IndexTest, OrdersAreSorted) {
  for (IndexOrder order : kAllIndexOrders) {
    const TrieIndex& index = indexes_.Index(order);
    ASSERT_EQ(index.size(), graph_.NumTriples());
    for (uint32_t i = 1; i < index.size(); ++i) {
      EXPECT_FALSE(OrderLess{order}(index.TripleAt(i), index.TripleAt(i - 1)))
          << OrderName(order) << " not sorted at " << i;
    }
  }
}

TEST_F(IndexTest, NarrowMatchesBruteForce) {
  const TrieIndex& pso = indexes_.Index(IndexOrder::kPso);
  const TermId type = graph_.rdf_type();
  const Range r = pso.Narrow(pso.Root(), 0, type);
  uint64_t expected = 0;
  for (const Triple& t : graph_.triples()) expected += t.p == type;
  EXPECT_EQ(r.size(), expected);
  // All triples in the range have the predicate.
  for (uint32_t pos = r.begin; pos < r.end; ++pos) {
    EXPECT_EQ(pso.TripleAt(pos).p, type);
  }
}

TEST_F(IndexTest, NarrowMissingValueIsEmpty) {
  const TrieIndex& spo = indexes_.Index(IndexOrder::kSpo);
  const Range r = spo.Narrow(spo.Root(), 0, kInvalidTerm - 1);
  EXPECT_TRUE(r.empty());
}

TEST_F(IndexTest, CountDistinctMatchesSet) {
  for (IndexOrder order : kAllIndexOrders) {
    const TrieIndex& index = indexes_.Index(order);
    std::set<TermId> level0;
    for (const Triple& t : graph_.triples()) {
      level0.insert(t[OrderComponent(order, 0)]);
    }
    EXPECT_EQ(index.CountDistinct(index.Root(), 0), level0.size());
  }
}

TEST_F(IndexTest, TrieIteratorEnumeratesDistinctSortedKeys) {
  const TrieIndex& pso = indexes_.Index(IndexOrder::kPso);
  TrieIterator it(&pso);
  it.Open();
  std::vector<TermId> keys;
  while (!it.AtEnd()) {
    keys.push_back(it.Key());
    it.Next();
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
  EXPECT_EQ(keys.size(), indexes_.Hash(IndexOrder::kPso).Ndv1());
}

TEST_F(IndexTest, TrieIteratorOpenUpRestoresPosition) {
  const TrieIndex& spo = indexes_.Index(IndexOrder::kSpo);
  TrieIterator it(&spo);
  it.Open();
  const TermId first = it.Key();
  it.Next();
  ASSERT_FALSE(it.AtEnd());
  const TermId second = it.Key();
  it.Open();  // descend under `second`
  ASSERT_FALSE(it.AtEnd());
  it.Up();
  EXPECT_EQ(it.Key(), second);
  it.Up();
  EXPECT_EQ(it.level(), -1);
  it.Open();
  EXPECT_EQ(it.Key(), first);
}

TEST_F(IndexTest, TrieIteratorSeek) {
  const TrieIndex& spo = indexes_.Index(IndexOrder::kSpo);
  TrieIterator it(&spo);
  it.Open();
  std::vector<TermId> keys;
  while (!it.AtEnd()) {
    keys.push_back(it.Key());
    it.Next();
  }
  ASSERT_GE(keys.size(), 3u);
  // Seek to each key and one past it.
  for (TermId key : keys) {
    TrieIterator seeker(&spo);
    seeker.Open();
    seeker.SeekGE(key);
    ASSERT_FALSE(seeker.AtEnd());
    EXPECT_EQ(seeker.Key(), key);
  }
  TrieIterator seeker(&spo);
  seeker.Open();
  seeker.SeekGE(keys.back() + 1);
  EXPECT_TRUE(seeker.AtEnd());
}

TEST_F(IndexTest, TrieIteratorThreeLevelWalkReconstructsTriples) {
  const TrieIndex& ops = indexes_.Index(IndexOrder::kOps);
  TrieIterator it(&ops);
  std::unordered_set<uint64_t> seen;
  std::size_t count = 0;
  it.Open();
  while (!it.AtEnd()) {
    const TermId o = it.Key();
    it.Open();
    while (!it.AtEnd()) {
      const TermId p = it.Key();
      it.Open();
      while (!it.AtEnd()) {
        const TermId s = it.Key();
        EXPECT_TRUE(graph_.Contains(Triple{s, p, o}));
        ++count;
        it.Next();
      }
      it.Up();
      it.Next();
    }
    it.Up();
    it.Next();
  }
  EXPECT_EQ(count, graph_.NumTriples());
  (void)seen;
}

TEST_F(IndexTest, HashRangesAgreeWithNarrow) {
  for (IndexOrder order : kAllIndexOrders) {
    const TrieIndex& index = indexes_.Index(order);
    const HashRangeIndex& hash = indexes_.Hash(order);
    std::set<TermId> level0;
    for (const Triple& t : graph_.triples()) {
      level0.insert(t[OrderComponent(order, 0)]);
    }
    for (TermId v : level0) {
      const Range expected = index.Narrow(index.Root(), 0, v);
      EXPECT_EQ(hash.Depth1(v), expected) << OrderName(order);
      EXPECT_EQ(hash.Ndv2(v), index.CountDistinct(expected, 1));
      // Depth-2 spot check: first (v, w) pair in the range.
      const TermId w = index.KeyAt(expected.begin, 1);
      EXPECT_EQ(hash.Depth2(v, w), index.Narrow(expected, 1, w));
    }
  }
}

TEST_F(IndexTest, HashRangeMissingKeysEmpty) {
  const HashRangeIndex& hash = indexes_.Hash(IndexOrder::kSpo);
  EXPECT_TRUE(hash.Depth1(kInvalidTerm - 1).empty());
  EXPECT_TRUE(hash.Depth2(kInvalidTerm - 1, 0).empty());
  EXPECT_EQ(hash.Ndv2(kInvalidTerm - 1), 0u);
}

TEST(ChooseOrder, CoversAllPrefixMasks) {
  IndexOrder order;
  int depth;
  // Every mask except {s,o} has a covering order.
  for (uint32_t mask : {0b000u, 0b001u, 0b010u, 0b100u, 0b011u, 0b110u,
                        0b111u}) {
    EXPECT_TRUE(IndexSet::ChooseOrder(mask, &order, &depth)) << mask;
    EXPECT_EQ(depth, std::popcount(mask));
  }
  EXPECT_FALSE(IndexSet::ChooseOrder(0b101u, &order, &depth));
}

TEST_F(IndexTest, CountMatchesAgainstBruteForce) {
  const TermId type = graph_.rdf_type();
  const TermId person = graph_.dict().Lookup("Person");
  const TermId plato = graph_.dict().Lookup("plato");

  struct Case {
    TriplePattern pattern;
    const char* label;
  };
  const std::vector<Case> cases = {
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(type),
                   Slot::MakeConst(person)),
       "?x type Person"},
      {MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2)),
       "?x ?p ?y"},
      {MakePattern(Slot::MakeConst(plato), Slot::MakeVar(0),
                   Slot::MakeVar(1)),
       "plato ?p ?y"},
      {MakePattern(Slot::MakeConst(plato), Slot::MakeVar(0),
                   Slot::MakeConst(person)),
       "plato ?p Person ({s,o} fallback)"},
      {MakePattern(Slot::MakeConst(plato), Slot::MakeConst(type),
                   Slot::MakeConst(person)),
       "plato type Person (existence)"},
  };
  for (const Case& c : cases) {
    uint64_t expected = 0;
    for (const Triple& t : graph_.triples()) {
      expected += c.pattern.MatchesConstants(t);
    }
    EXPECT_EQ(indexes_.CountMatches(c.pattern), expected) << c.label;
  }
}

TEST_F(IndexTest, CountDistinctVarAgainstBruteForce) {
  const TermId type = graph_.rdf_type();
  const TermId person = graph_.dict().Lookup("Person");
  const TermId influenced = graph_.dict().Lookup("influencedBy");

  struct Case {
    TriplePattern pattern;
    VarId var;
    int component;
  };
  const std::vector<Case> cases = {
      // Adjacent level (fast path).
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(type),
                   Slot::MakeConst(person)),
       0, kSubject},
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(influenced),
                   Slot::MakeVar(1)),
       0, kSubject},
      // Non-adjacent: distinct objects given predicate.
      {MakePattern(Slot::MakeVar(0), Slot::MakeConst(influenced),
                   Slot::MakeVar(1)),
       1, kObject},
      // No constants at all.
      {MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2)), 1,
       kPredicate},
  };
  for (const Case& c : cases) {
    std::set<TermId> values;
    for (const Triple& t : graph_.triples()) {
      if (c.pattern.MatchesConstants(t)) values.insert(t[c.component]);
    }
    EXPECT_EQ(indexes_.CountDistinctVar(c.pattern, c.var), values.size());
  }
}

// Randomized agreement between index structures and scans.
TEST(IndexRandom, RangesAgreeWithScans) {
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    Graph g = testing::RandomGraph(rng);
    IndexSet indexes(g);
    for (IndexOrder order : kAllIndexOrders) {
      const TrieIndex& index = indexes.Index(order);
      const HashRangeIndex& hash = indexes.Hash(order);
      uint64_t total = 0;
      std::set<TermId> level0;
      for (const Triple& t : g.triples()) {
        level0.insert(t[OrderComponent(order, 0)]);
      }
      for (TermId v : level0) {
        const Range r = hash.Depth1(v);
        total += r.size();
        uint64_t expected = 0;
        for (const Triple& t : g.triples()) {
          expected += t[OrderComponent(order, 0)] == v;
        }
        ASSERT_EQ(r.size(), expected);
      }
      ASSERT_EQ(total, g.NumTriples());
      ASSERT_EQ(hash.Ndv1(), level0.size());
      ASSERT_EQ(index.CountDistinct(index.Root(), 0), level0.size());
    }
  }
}

}  // namespace
}  // namespace kgoa
