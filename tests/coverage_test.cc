// Statistical tests: confidence-interval coverage of the online
// estimators, chart-cache behaviour, and estimator variance reduction.
#include <gtest/gtest.h>

#include "src/core/audit.h"
#include "src/explore/cache.h"
#include "src/ola/wander.h"
#include "tests/test_util.h"

namespace kgoa {
namespace {

Slot V(VarId v) { return Slot::MakeVar(v); }
Slot C(TermId t) { return Slot::MakeConst(t); }

class CoverageTest : public ::testing::Test {
 protected:
  CoverageTest() : graph_(testing::PaperExampleGraph()), indexes_(graph_) {}

  TermId Id(const char* term) { return graph_.dict().Lookup(term); }

  ChainQuery Fig5(bool distinct) {
    auto q = ChainQuery::Create(
        {MakePattern(V(0), C(graph_.rdf_type()), C(Id("Person"))),
         MakePattern(V(0), C(Id("birthPlace")), V(1)),
         MakePattern(V(1), C(graph_.rdf_type()), V(2))},
        2, 1, distinct);
    EXPECT_TRUE(q.has_value());
    return *q;
  }

  Graph graph_;
  IndexSet indexes_;
};

// The 0.95 confidence interval of the (unbiased, non-distinct) Wander
// Join estimator should cover the true count in roughly 95% of
// independent runs. We check >= 88% to keep the test robust while still
// catching broken variance accounting (an off-by-sqrt bug drops coverage
// far below that).
TEST_F(CoverageTest, WanderCiCoversTruth) {
  const ChainQuery query = Fig5(false);
  const GroupedResult exact = testing::BruteForce(graph_, query);
  const TermId city = Id("City");
  const auto truth = static_cast<double>(exact.CountFor(city));

  int covered = 0;
  const int runs = 300;
  for (int seed = 1; seed <= runs; ++seed) {
    WanderJoin::Options options;
    options.seed = static_cast<uint64_t>(seed) * 7919;
    WanderJoin wj(indexes_, query, options);
    wj.RunWalks(2000);
    const double estimate = wj.estimates().Estimate(city);
    const double half_width = wj.estimates().CiHalfWidth(city);
    if (std::abs(estimate - truth) <= half_width) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(runs * 0.88));
  // And the interval is not uselessly wide: it should also MISS sometimes
  // over so many runs unless it is grossly conservative.
  EXPECT_LE(covered, runs);
}

TEST_F(CoverageTest, AuditCiCoversTruthInDistinctMode) {
  const ChainQuery query = Fig5(true);
  const GroupedResult exact = testing::BruteForce(graph_, query);
  const TermId city = Id("City");
  const auto truth = static_cast<double>(exact.CountFor(city));

  int covered = 0;
  const int runs = 300;
  for (int seed = 1; seed <= runs; ++seed) {
    AuditJoin::Options options;
    options.seed = static_cast<uint64_t>(seed) * 104729;
    options.tipping_threshold = 2.0;  // keep it stochastic
    AuditJoin audit(indexes_, query, options);
    audit.RunWalks(2000);
    const double estimate = audit.estimates().Estimate(city);
    const double half_width = audit.estimates().CiHalfWidth(city);
    if (std::abs(estimate - truth) <= half_width) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(runs * 0.88));
}

// Audit Join's estimator variance (hence CI width) at a fixed walk count
// should not exceed Wander Join's on the same non-distinct query when
// tipping converts deep suffixes into exact counts.
TEST_F(CoverageTest, TippingNarrowsConfidenceIntervals) {
  const ChainQuery query = Fig5(false);
  const TermId city = Id("City");

  WanderJoin wander(indexes_, query);
  wander.RunWalks(20000);

  AuditJoin::Options options;
  options.tipping_threshold = 1e6;  // tip aggressively
  AuditJoin audit(indexes_, query, options);
  audit.RunWalks(20000);

  EXPECT_LE(audit.estimates().CiHalfWidth(city),
            wander.estimates().CiHalfWidth(city) + 1e-9);
}

TEST(ChartCacheTest, HitMissAndEviction) {
  Graph graph = testing::PaperExampleGraph();
  auto q1 = ChainQuery::Create(
      {MakePattern(V(0), C(graph.rdf_type()), V(1))}, 1, 0, true);
  auto q2 = ChainQuery::Create(
      {MakePattern(V(0), C(graph.subclass_of()), V(1))}, 1, 0, true);
  auto q3 = ChainQuery::Create(
      {MakePattern(V(0), V(1), V(2))}, 1, 0, true);
  ASSERT_TRUE(q1 && q2 && q3);

  ChartCache cache(/*max_entries=*/2);
  EXPECT_EQ(cache.Lookup(*q1), nullptr);
  GroupedResult r1;
  r1.counts[7] = 42;
  cache.Insert(*q1, r1);
  const GroupedResult* hit = cache.Lookup(*q1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->CountFor(7), 42u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_GT(cache.ApproxMemoryBytes(), 0u);

  cache.Insert(*q2, GroupedResult{});
  cache.Insert(*q3, GroupedResult{});  // evicts q1 (FIFO)
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.Lookup(*q1), nullptr);
  EXPECT_NE(cache.Lookup(*q3), nullptr);
  EXPECT_GT(cache.HitRate(), 0.0);
}

TEST(ChartCacheTest, DuplicateInsertIsNoop) {
  Graph graph = testing::PaperExampleGraph();
  auto q = ChainQuery::Create(
      {MakePattern(V(0), C(graph.rdf_type()), V(1))}, 1, 0, true);
  ChartCache cache;
  cache.Insert(*q, GroupedResult{});
  const uint64_t bytes = cache.ApproxMemoryBytes();
  cache.Insert(*q, GroupedResult{});
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.ApproxMemoryBytes(), bytes);
}

}  // namespace
}  // namespace kgoa
