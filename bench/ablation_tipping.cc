// Ablation of Audit Join's design choices (DESIGN.md section 2):
//  1. the tipping threshold — sweeping it from "never tip" (pure Wander
//     Join behaviour with AJ's estimators) to "tip immediately" (exact
//     evaluation per walk), reporting error, rejection rate and tipped
//     fraction at a fixed time budget;
//  2. the walk order — forward vs anchor-first vs per-query selected.
//
// Expected shape: error falls steeply once tipping starts converting
// would-be rejections into exact partial counts, then flattens; extremely
// large thresholds give exact answers but at a much lower walk rate.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/explore/session.h"
#include "src/join/ctj.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace kgoa {
namespace {

void ThresholdSweep(const bench::Dataset& ds, const ChainQuery& query,
                    const GroupedResult& exact, double seconds) {
  std::printf("\n--- tipping threshold sweep (%s, %zu groups) ---\n",
              ds.name.c_str(), exact.counts.size());
  for (bool adaptive : {false, true}) {
    TextTable table({"threshold", "MAE", "reject", "tipped", "walks"});
    for (double threshold :
         {0.0, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 1e18}) {
      OlaRunOptions options;
      options.algo = OlaAlgo::kAudit;
      options.duration_seconds = seconds;
      options.checkpoints = 1;
      options.tipping_threshold = threshold;
      options.enable_tipping = threshold > 0;
      options.adaptive_tipping = adaptive;
      const OlaRunResult run = RunOla(*ds.indexes, query, exact, options);
      const double tipped_fraction =
          run.walks == 0 ? 0
                         : static_cast<double>(run.tipped) /
                               static_cast<double>(run.walks);
      table.AddRow({threshold > 1e17 ? "inf" : TextTable::Fmt(threshold, 0),
                    TextTable::FmtPercent(run.final_mae),
                    TextTable::FmtPercent(run.rejection_rate),
                    TextTable::FmtPercent(tipped_fraction),
                    std::to_string(run.walks)});
      std::printf(
          "trace %s\n",
          OlaTraceJson("AJ threshold=" +
                           (threshold > 1e17 ? std::string("inf")
                                             : TextTable::Fmt(threshold, 0)) +
                           (adaptive ? " adaptive" : " static"),
                       run)
              .c_str());
    }
    std::printf("%s tipping:\n%s", adaptive ? "adaptive" : "static (paper)",
                table.ToString().c_str());
  }
}

void WalkOrderAblation(const bench::Dataset& ds, const ChainQuery& query,
                       const GroupedResult& exact, double seconds) {
  std::printf("\n--- walk-order ablation (%s) ---\n", ds.name.c_str());
  TextTable table({"algo", "order", "MAE", "reject"});
  for (OlaAlgo algo : {OlaAlgo::kWander, OlaAlgo::kAudit}) {
    struct Candidate {
      const char* label;
      std::vector<int> order;
    };
    std::vector<Candidate> candidates;
    std::vector<int> forward;
    for (int i = 0; i < query.NumPatterns(); ++i) forward.push_back(i);
    candidates.push_back({"forward", forward});
    candidates.push_back({"anchor-first", DefaultAuditOrder(query)});
    candidates.push_back(
        {"selected", SelectBestWalkOrder(*ds.indexes, query, exact, algo,
                                         seconds / 8, 3)});
    for (const Candidate& candidate : candidates) {
      OlaRunOptions options;
      options.algo = algo;
      options.duration_seconds = seconds;
      options.checkpoints = 1;
      options.walk_order = candidate.order;
      const OlaRunResult run = RunOla(*ds.indexes, query, exact, options);
      table.AddRow({OlaAlgoName(algo), candidate.label,
                    TextTable::FmtPercent(run.final_mae),
                    TextTable::FmtPercent(run.rejection_rate)});
    }
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,seconds");
  const double scale = flags.GetDouble("scale", 0.2);
  const double seconds = flags.GetDouble("seconds", 0.6);

  std::printf("=== Ablations: tipping threshold and walk order ===\n\n");
  kgoa::bench::Dataset ds =
      kgoa::bench::BuildDataset(kgoa::DbpediaLikeSpec(scale));

  // Query: object expansion after drilling in (deep enough to reject).
  kgoa::ExplorationSession session(ds.graph);
  kgoa::CtjEngine engine(*ds.indexes);
  const kgoa::GroupedResult top =
      engine.Evaluate(session.BuildQuery(kgoa::ExpansionKind::kSubclass));
  kgoa::TermId best = kgoa::kInvalidTerm;
  uint64_t best_count = 0;
  for (const auto& [group, count] : top.counts) {
    if (count > best_count) {
      best = group;
      best_count = count;
    }
  }
  session.ExpandAndSelect(kgoa::ExpansionKind::kSubclass, best);

  // Drill further: click the largest non-type out-property, then classify
  // the objects (a 3-pattern chain where walks can die at the last step —
  // the regime where tipping matters).
  const kgoa::GroupedResult props =
      engine.Evaluate(session.BuildQuery(kgoa::ExpansionKind::kOutProperty));
  kgoa::TermId best_prop = kgoa::kInvalidTerm;
  uint64_t best_prop_count = 0;
  for (const auto& [group, count] : props.counts) {
    if (group == ds.graph.rdf_type() || group == ds.graph.subclass_of()) {
      continue;
    }
    if (count > best_prop_count) {
      best_prop = group;
      best_prop_count = count;
    }
  }
  session.ExpandAndSelect(kgoa::ExpansionKind::kOutProperty, best_prop);
  const kgoa::ChainQuery query =
      session.BuildQuery(kgoa::ExpansionKind::kObject);
  const kgoa::GroupedResult exact = engine.Evaluate(query);

  kgoa::ThresholdSweep(ds, query, exact, seconds);
  kgoa::WalkOrderAblation(ds, query, exact, seconds);
  return 0;
}
