// Triangle counting with the cyclic-query extension (the paper's named
// future-work direction): exact counting via the generic worst-case
// optimal LFTJ versus online estimates from the cyclic Wander Join and
// cyclic Audit Join.
//
// The graph is a skewed synthetic follower network (Zipf in/out degrees),
// where triangle counting is the standard WCOJ stress test. Expected
// shape: LFTJ needs a full pass; the walk engines give single-digit
// percent error in a fraction of that time, and tipping improves the
// rejection rate like in the acyclic case.
#include <cstdio>

#include "src/cyclic/cyclic.h"
#include "src/index/index_set.h"
#include "src/join/leapfrog.h"
#include "src/rdf/graph.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"
#include "src/util/zipf.h"

namespace kgoa {
namespace {

Graph FollowerNetwork(uint64_t nodes, uint64_t edges, uint64_t seed) {
  GraphBuilder b;
  const TermId follows = b.Intern("follows");
  std::vector<TermId> ids;
  ids.reserve(nodes);
  for (uint64_t i = 0; i < nodes; ++i) {
    ids.push_back(b.Intern("user" + std::to_string(i)));
  }
  Rng rng(seed);
  ZipfSampler popularity(nodes, 0.8);
  for (uint64_t i = 0; i < edges; ++i) {
    const TermId src = ids[popularity.Sample(rng)];
    const TermId dst = ids[popularity.Sample(rng)];
    if (src != dst) b.Add(src, follows, dst);
  }
  (void)follows;
  return std::move(b).Build();
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("nodes,edges,seconds");
  const auto nodes = static_cast<uint64_t>(flags.GetInt("nodes", 30000));
  const auto edges = static_cast<uint64_t>(flags.GetInt("edges", 400000));
  const double seconds = flags.GetDouble("seconds", 0.5);

  std::printf("=== Cyclic extension: triangle counting ===\n\n");
  kgoa::Graph graph = kgoa::FollowerNetwork(nodes, edges, 7);
  kgoa::IndexSet indexes(graph);
  std::printf("follower network: %zu edges over %llu users\n",
              graph.NumTriples(), static_cast<unsigned long long>(nodes));

  const kgoa::TermId follows = graph.dict().Lookup("follows");
  auto var = [](kgoa::VarId v) { return kgoa::Slot::MakeVar(v); };
  auto cst = [](kgoa::TermId t) { return kgoa::Slot::MakeConst(t); };
  const std::vector<kgoa::TriplePattern> triangle = {
      kgoa::MakePattern(var(0), cst(follows), var(1)),
      kgoa::MakePattern(var(1), cst(follows), var(2)),
      kgoa::MakePattern(var(2), cst(follows), var(0))};

  // Exact count via the worst-case optimal join.
  kgoa::Stopwatch clock;
  kgoa::LeapfrogJoin join(indexes, triangle);
  const uint64_t exact = join.Count();
  const double exact_seconds = clock.ElapsedSeconds();
  std::printf("exact (LFTJ): %llu directed triangles in %.2f s\n\n",
              static_cast<unsigned long long>(exact), exact_seconds);

  auto query = kgoa::CyclicQuery::Create(triangle, 0);
  if (!query.has_value() || exact == 0) {
    std::printf("(no triangles; nothing to estimate)\n");
    return 0;
  }

  kgoa::TextTable table({"engine", "time (s)", "estimate", "error",
                         "reject"});
  auto report = [&](const char* name, double estimate, double reject,
                    double elapsed) {
    table.AddRow({name, kgoa::TextTable::Fmt(elapsed, 2),
                  kgoa::TextTable::Fmt(estimate, 0),
                  kgoa::TextTable::FmtPercent(
                      std::abs(estimate - static_cast<double>(exact)) /
                      static_cast<double>(exact)),
                  kgoa::TextTable::FmtPercent(reject)});
  };

  {
    kgoa::CyclicWanderJoin wander(indexes, *query);
    clock.Restart();
    while (clock.ElapsedSeconds() < seconds) wander.RunWalks(512);
    double total = 0;
    for (const auto& [g, e] : wander.estimates().Estimates()) total += e;
    report("cyclic Wander Join", total,
           wander.estimates().RejectionRate(), clock.ElapsedSeconds());
  }
  {
    kgoa::CyclicAuditJoin::Options options;
    options.tipping_threshold = 64;
    kgoa::CyclicAuditJoin audit(indexes, *query, options);
    clock.Restart();
    while (clock.ElapsedSeconds() < seconds) audit.RunWalks(512);
    double total = 0;
    for (const auto& [g, e] : audit.estimates().Estimates()) total += e;
    report("cyclic Audit Join", total, audit.estimates().RejectionRate(),
           clock.ElapsedSeconds());
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
