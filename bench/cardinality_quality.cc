// Cardinality-estimation quality across a whole workload — the use case
// the paper's conclusion proposes for Audit Join ("scenarios requiring
// efficient cardinality estimations over large-scale knowledge graphs").
//
// For every random exploration query, estimates the total join size
// (non-distinct count) three ways and reports the error distribution as
// q-error (max(est/true, true/est), the optimizer literature's metric):
//   * static    — the PostgreSQL-style composition of per-pattern stats
//                 (what Audit Join's tipping point uses, ~free);
//   * AJ 10ms   — Audit Join run for 10 milliseconds;
//   * AJ 100ms  — Audit Join run for 100 milliseconds.
//
// Expected shape: the static composition is off by orders of magnitude on
// correlated paths (its q-error tail explodes); a few milliseconds of
// Audit Join collapses the tail.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/audit.h"
#include "src/core/tipping.h"
#include "src/eval/runner.h"
#include "src/gen/workload.h"
#include "src/join/ctj.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace kgoa {
namespace {

double QError(double estimate, double truth) {
  if (truth <= 0) return estimate <= 0 ? 1.0 : 1e9;
  if (estimate <= 0) return 1e9;
  return std::max(estimate / truth, truth / estimate);
}

double AuditJoinSize(const IndexSet& indexes, const ChainQuery& query,
                     double seconds) {
  AuditJoin::Options options;
  options.tipping_threshold = 64;
  AuditJoin audit(indexes, query, options);
  Stopwatch clock;
  while (clock.ElapsedSeconds() < seconds) audit.RunWalks(128);
  double total = 0;
  for (const auto& [group, estimate] : audit.estimates().Estimates()) {
    total += estimate;
  }
  return total;
}

void Report(const char* label, std::vector<double> qerrors,
            TextTable& table) {
  table.AddRow({label, TextTable::Fmt(Quantile(qerrors, 0.5), 2),
                TextTable::Fmt(Quantile(qerrors, 0.9), 2),
                TextTable::Fmt(Quantile(qerrors, 0.99), 2),
                TextTable::Fmt(Quantile(qerrors, 1.0), 2)});
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,paths");
  const double scale = flags.GetDouble("scale", 0.2);
  const int paths = static_cast<int>(flags.GetInt("paths", 20));

  std::printf("=== Join-size estimation quality (q-error) ===\n\n");
  kgoa::bench::Dataset ds =
      kgoa::bench::BuildDataset(kgoa::DbpediaLikeSpec(scale));

  kgoa::WorkloadOptions wl;
  wl.num_paths = paths;
  const auto workload =
      kgoa::GenerateWorkload(ds.graph, *ds.indexes, wl);
  std::printf("%zu workload queries\n\n", workload.size());

  kgoa::CtjEngine engine(*ds.indexes);
  std::vector<double> q_static, q_aj10, q_aj100;
  for (const auto& eq : workload) {
    const kgoa::ChainQuery query = eq.query.WithDistinct(false);
    const double truth =
        static_cast<double>(engine.Evaluate(query).Total());
    if (truth <= 0) continue;

    const kgoa::WalkPlan plan = kgoa::WalkPlan::Compile(query);
    const kgoa::TippingEstimator tipping(*ds.indexes, plan);
    q_static.push_back(
        kgoa::QError(tipping.StaticSuffixEstimate(0), truth));
    q_aj10.push_back(
        kgoa::QError(kgoa::AuditJoinSize(*ds.indexes, query, 0.01), truth));
    q_aj100.push_back(
        kgoa::QError(kgoa::AuditJoinSize(*ds.indexes, query, 0.1), truth));
  }

  kgoa::TextTable table({"estimator", "median", "p90", "p99", "max"});
  kgoa::Report("static composition", q_static, table);
  kgoa::Report("audit join 10ms", q_aj10, table);
  kgoa::Report("audit join 100ms", q_aj100, table);
  std::printf("%s", table.ToString().c_str());
  return 0;
}
