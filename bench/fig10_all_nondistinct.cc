// Reproduces Figure 10: Tukey box plots of the mean absolute error over
// time for all randomly generated exploration queries WITHOUT the distinct
// operator.
//
// Paper shapes to expect, relative to Figure 9: WJ improves (its estimator
// is unbiased without distinct), AJ loses the advantage of its unbiased
// distinct estimator and its errors rise slightly — yet AJ still
// significantly beats WJ thanks to the partial exact computations, which
// shows the benefit is not only the distinct estimator.
#include <cstdio>

#include "bench/workload_common.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,seconds,checkpoints,paths");

  kgoa::bench::WorkloadExperimentOptions options;
  options.distinct = false;
  options.seconds = flags.GetDouble("seconds", 0.8);
  options.checkpoints = static_cast<int>(flags.GetInt("checkpoints", 4));
  options.paths = static_cast<int>(flags.GetInt("paths", 25));
  const double scale = flags.GetDouble("scale", 0.25);

  std::printf(
      "=== Figure 10: MAE over time, all queries WITHOUT distinct ===\n");
  std::printf("(scale %.2f, %d paths/graph, %.1fs per algorithm per query; "
              "paper: 9s runs)\n",
              scale, options.paths, options.seconds);

  for (const kgoa::KgSpec& spec :
       {kgoa::DbpediaLikeSpec(scale), kgoa::LgdLikeSpec(scale)}) {
    kgoa::bench::Dataset ds = kgoa::bench::BuildDataset(spec);
    const auto runs = kgoa::bench::RunWorkloadExperiment(ds, options);
    kgoa::bench::PrintStepBoxes(ds.name, runs, options.checkpoints,
                                options.max_steps);
  }
  return 0;
}
