// Kernel ablation: scalar vs SIMD vs SIMD+batched across the hot path.
//
// Part 1 — microbenchmarks of the three kernel families behind the PR 8
// dispatch layer (src/index/kernels.h), each at the forced-scalar level
// and at the highest level the host CPU supports:
//
//   decode   BlockedColumn::DecodeBlock over a mixed column (FOR
//            bit-packed and zigzag varint-delta blocks), MB/s of decoded
//            values.
//   seek     kernels::LowerBoundU32 over decoded 128-entry blocks — the
//            in-block tail of every SeekGE/SeekGT — lookups/s.
//   probe    FlatTable::Find over an LLC-sized table, serial loop vs
//            kernels::ProbeBatch (software-prefetch pipeline), probes/s.
//
// Part 2 — end-to-end: a fixed walk-budget Audit Join run on the
// DBpedia-like graph's block tier, timed under (a) scalar + unbatched,
// (b) SIMD + unbatched, (c) SIMD + batched walks. Because estimates are
// bit-identical across all three configurations (the PR's determinism
// contract), the walk budget needed to reach any CI target is identical
// too — so the elapsed-time ratio IS the time-to-CI ratio.
//
// The machine-readable result is one `kernel_trace {json}` line (scraped
// by scripts/bench_json.sh into BENCH_kernels.json). Set
// KGOA_BENCH_QUICK=1 for a smoke-sized run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/eval/registry.h"
#include "src/explore/session.h"
#include "src/index/block_codec.h"
#include "src/index/flat_table.h"
#include "src/index/kernels.h"
#include "src/ola/parallel.h"
#include "src/ola/walk_plan.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/simd.h"
#include "src/util/stopwatch.h"

namespace kgoa {
namespace {

// Single-threaded startup read, before any pool exists.
bool BenchQuick() {
  return std::getenv("KGOA_BENCH_QUICK") != nullptr;  // NOLINT(concurrency-mt-unsafe)
}

// A column that exercises both codecs: alternating runs of narrow-band
// values (bit-packed, with occasional outliers) and sorted small-gap
// runs (varint-delta single-byte fast path).
std::vector<uint32_t> MixedColumn(uint32_t n) {
  Rng rng(99);
  std::vector<uint32_t> values(n);
  uint32_t running = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if ((i / kCodecBlockSize) % 2 == 0) {
      values[i] = rng.Below(64) == 0
                      ? (1u << 28) + static_cast<uint32_t>(rng.Below(9))
                      : static_cast<uint32_t>(rng.Below(1u << 12));
    } else {
      running += static_cast<uint32_t>(rng.Below(5));
      values[i] = running;
    }
  }
  return values;
}

double DecodeMbps(const BlockedColumn& col, int rounds) {
  alignas(32) uint32_t vals[kCodecBlockSize];
  uint64_t sink = 0;
  Stopwatch clock;
  for (int r = 0; r < rounds; ++r) {
    for (uint32_t b = 0; b < col.num_blocks(); ++b) {
      const uint32_t count = col.DecodeBlock(b, vals);
      sink += vals[count - 1];
    }
  }
  const double seconds = clock.ElapsedSeconds();
  if (sink == 0xdeadbeef) std::printf("(unreachable)\n");  // keep the sink
  const double bytes = static_cast<double>(col.size()) * 4.0 * rounds;
  return bytes / seconds / 1e6;
}

double SeeksPerSec(const std::vector<uint32_t>& block_vals,
                   const std::vector<uint32_t>& probes) {
  const auto n = static_cast<uint32_t>(block_vals.size());
  uint64_t sink = 0;
  Stopwatch clock;
  for (const uint32_t v : probes) {
    sink += kernels::LowerBoundU32(block_vals.data(), n, v);
  }
  const double seconds = clock.ElapsedSeconds();
  if (sink == 0xdeadbeef) std::printf("(unreachable)\n");
  return static_cast<double>(probes.size()) / seconds;
}

// Fixed-budget end-to-end run; returns elapsed seconds. Workers/threads
// are held at 1 so the measurement is a pure single-lane hot-path time.
double EndToEndSeconds(const IndexSet& indexes, const ChainQuery& query,
                       uint64_t budget, uint32_t batch_walks) {
  ParallelOlaOptions options;
  options.workers = 1;
  options.threads = 1;
  options.tipping_threshold = 2.0;
  options.batch_walks = batch_walks;
  Stopwatch clock;
  const ParallelOlaResult run =
      ParallelOlaExecutor(indexes, query, options).RunWalkBudget(budget);
  const double seconds = clock.ElapsedSeconds();
  if (run.estimates.walks() != budget) std::printf("(budget mismatch)\n");
  return seconds;
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,budget");
  const bool quick = kgoa::BenchQuick();
  const double scale = flags.GetDouble("scale", quick ? 0.05 : 0.2);
  const auto budget = static_cast<uint64_t>(
      flags.GetInt("budget", quick ? 20000 : 200000));

  const kgoa::SimdLevel best = kgoa::MaxSupportedSimdLevel();
  std::printf("=== Kernel throughput: scalar vs %s vs %s+batched ===\n",
              kgoa::SimdLevelName(best), kgoa::SimdLevelName(best));
  kgoa::MetricsRegistry registry;
  registry.SetCounter("kernels.simd_level", static_cast<uint64_t>(best));
  registry.SetCounter("kernels.probe_prefetch_depth",
                      kgoa::kernels::kProbePrefetchDepth);
  registry.SetCounter("kernels.default_batch_walks",
                      kgoa::kDefaultWalkBatch);

  // --- decode ---
  const uint32_t column_n = quick ? (1u << 18) : (1u << 20);
  const int decode_rounds = quick ? 20 : 100;
  const std::vector<uint32_t> values = kgoa::MixedColumn(column_n);
  const kgoa::BlockedColumn column(values.data(), column_n);
  kgoa::SetSimdLevel(kgoa::SimdLevel::kScalar);
  const double decode_scalar = kgoa::DecodeMbps(column, decode_rounds);
  kgoa::SetSimdLevel(best);
  const double decode_simd = kgoa::DecodeMbps(column, decode_rounds);
  const double decode_speedup =
      decode_scalar > 0 ? decode_simd / decode_scalar : 0.0;
  std::printf("decode: scalar %8.0f MB/s, %s %8.0f MB/s  (%.2fx)\n",
              decode_scalar, kgoa::SimdLevelName(best), decode_simd,
              decode_speedup);
  registry.SetGauge("kernels.decode_mbps.scalar", decode_scalar);
  registry.SetGauge("kernels.decode_mbps.simd", decode_simd);
  registry.SetGauge("kernels.decode_speedup", decode_speedup);

  // --- in-block seek ---
  std::vector<uint32_t> block_vals(kgoa::kCodecBlockSize);
  kgoa::Rng rng(7);
  uint32_t running = 0;
  for (uint32_t& v : block_vals) {
    running += static_cast<uint32_t>(rng.Below(1000));
    v = running;
  }
  const std::size_t seek_probes = quick ? 2'000'000 : 20'000'000;
  std::vector<uint32_t> probes(seek_probes);
  for (uint32_t& v : probes) {
    v = static_cast<uint32_t>(rng.Below(running + 1000));
  }
  kgoa::SetSimdLevel(kgoa::SimdLevel::kScalar);
  const double seek_scalar = kgoa::SeeksPerSec(block_vals, probes);
  kgoa::SetSimdLevel(best);
  const double seek_simd = kgoa::SeeksPerSec(block_vals, probes);
  const double seek_speedup = seek_scalar > 0 ? seek_simd / seek_scalar : 0.0;
  std::printf("in-block seek: scalar %8.0f/s, %s %8.0f/s  (%.2fx)\n",
              seek_scalar, kgoa::SimdLevelName(best), seek_simd,
              seek_speedup);
  registry.SetGauge("kernels.seeks_per_sec.scalar", seek_scalar);
  registry.SetGauge("kernels.seeks_per_sec.simd", seek_simd);
  registry.SetGauge("kernels.seek_speedup", seek_speedup);

  // --- batched probes ---
  const std::size_t table_entries = quick ? (1u << 20) : (1u << 22);
  kgoa::FlatTable<uint64_t, uint32_t> table(~0ull);
  table.Reset(table_entries);
  for (std::size_t i = 0; i < table_entries; ++i) {
    table.InsertUnique(i * 2 + 1) = static_cast<uint32_t>(i);
  }
  const std::size_t probe_n = quick ? 2'000'000 : 8'000'000;
  std::vector<uint64_t> keys(probe_n);
  for (uint64_t& k : keys) k = rng.Below(2 * table_entries);
  uint64_t sink = 0;
  kgoa::Stopwatch clock;
  for (const uint64_t k : keys) {
    const uint32_t* v = table.Find(k);
    sink += v != nullptr ? *v : 0;
  }
  const double serial_seconds = clock.ElapsedSeconds();
  clock.Restart();
  kgoa::kernels::ProbeBatch(table, keys.data(), keys.size(),
                            [&](std::size_t, const uint32_t* v) {
                              sink += v != nullptr ? *v : 0;
                            });
  const double batched_seconds = clock.ElapsedSeconds();
  if (sink == 0xdeadbeef) std::printf("(unreachable)\n");
  const double probes_serial = static_cast<double>(probe_n) / serial_seconds;
  const double probes_batched =
      static_cast<double>(probe_n) / batched_seconds;
  const double probe_speedup =
      probes_serial > 0 ? probes_batched / probes_serial : 0.0;
  std::printf("hash probe: serial %8.0f/s, batched %8.0f/s  (%.2fx)\n",
              probes_serial, probes_batched, probe_speedup);
  registry.SetGauge("kernels.probes_per_sec.serial", probes_serial);
  registry.SetGauge("kernels.probes_per_sec.batched", probes_batched);
  registry.SetGauge("kernels.probe_speedup", probe_speedup);

  // --- end-to-end ---
  kgoa::Graph graph = kgoa::GenerateKg(kgoa::DbpediaLikeSpec(scale));
  const kgoa::IndexSet block(
      graph, kgoa::IndexSetOptions{kgoa::StorageTier::kBlock});
  kgoa::ExplorationSession session(graph);
  const kgoa::ChainQuery query =
      session.BuildQuery(kgoa::ExpansionKind::kOutProperty);

  kgoa::SetSimdLevel(kgoa::SimdLevel::kScalar);
  kgoa::EndToEndSeconds(block, query, budget / 10, 1);  // warm-up
  const double e2e_scalar = kgoa::EndToEndSeconds(block, query, budget, 1);
  kgoa::SetSimdLevel(best);
  const double e2e_simd = kgoa::EndToEndSeconds(block, query, budget, 1);
  const double e2e_batched = kgoa::EndToEndSeconds(
      block, query, budget, kgoa::kDefaultWalkBatch);
  const double e2e_speedup = e2e_batched > 0 ? e2e_scalar / e2e_batched : 0.0;
  std::printf(
      "end-to-end (%llu walks, block tier): scalar %.3fs, %s %.3fs, "
      "%s+batched %.3fs  (%.2fx time-to-CI)\n",
      static_cast<unsigned long long>(budget), e2e_scalar,
      kgoa::SimdLevelName(best), e2e_simd, kgoa::SimdLevelName(best),
      e2e_batched, e2e_speedup);
  registry.SetGauge("kernels.e2e_seconds.scalar", e2e_scalar);
  registry.SetGauge("kernels.e2e_seconds.simd", e2e_simd);
  registry.SetGauge("kernels.e2e_seconds.simd_batched", e2e_batched);
  registry.SetGauge("kernels.e2e_walks_per_sec.simd_batched",
                    e2e_batched > 0 ? static_cast<double>(budget) /
                                          e2e_batched
                                    : 0.0);
  registry.SetGauge("kernels.e2e_speedup", e2e_speedup);

  std::printf("kernel_trace %s\n", registry.ToJson().c_str());
  return 0;
}
