// Reproduces Figure 11: the rejection rate of Audit Join vs Wander Join on
// every workload query, sorted by rejection rate, plus the paper's summary
// statistic (how many queries stay below a 25% rejection rate: AJ 28 vs
// WJ 9 in the paper).
#include <algorithm>
#include <cstdio>

#include "bench/workload_common.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,seconds,paths");

  kgoa::bench::WorkloadExperimentOptions options;
  options.distinct = true;
  options.seconds = flags.GetDouble("seconds", 0.4);
  options.checkpoints = 1;
  options.paths = static_cast<int>(flags.GetInt("paths", 25));
  const double scale = flags.GetDouble("scale", 0.25);

  std::printf("=== Figure 11: rejection rate of AJ and WJ per query ===\n");
  std::printf("(scale %.2f, %d paths/graph)\n\n", scale, options.paths);

  std::vector<kgoa::bench::QueryRun> all;
  for (const kgoa::KgSpec& spec :
       {kgoa::DbpediaLikeSpec(scale), kgoa::LgdLikeSpec(scale)}) {
    kgoa::bench::Dataset ds = kgoa::bench::BuildDataset(spec);
    auto runs = kgoa::bench::RunWorkloadExperiment(ds, options);
    for (auto& run : runs) all.push_back(std::move(run));
  }

  // Sort by WJ rejection rate descending (the paper sorts per algorithm;
  // one shared order keeps the two columns comparable per query).
  std::sort(all.begin(), all.end(),
            [](const kgoa::bench::QueryRun& a,
               const kgoa::bench::QueryRun& b) {
              return a.wander.rejection_rate > b.wander.rejection_rate;
            });

  kgoa::TextTable table({"query", "step", "WJ reject", "AJ reject"});
  int wj_below_25 = 0;
  int aj_below_25 = 0;
  int idx = 0;
  for (const auto& run : all) {
    table.AddRow({"Q" + std::to_string(++idx), std::to_string(run.step),
                  kgoa::TextTable::FmtPercent(run.wander.rejection_rate),
                  kgoa::TextTable::FmtPercent(run.audit.rejection_rate)});
    wj_below_25 += run.wander.rejection_rate < 0.25;
    aj_below_25 += run.audit.rejection_rate < 0.25;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("queries with rejection rate < 25%%: AJ %d / %zu, WJ %d / %zu "
              "(paper: AJ 28, WJ 9 of 50)\n",
              aj_below_25, all.size(), wj_below_25, all.size());
  return 0;
}
