// Micro-benchmarks for the claims of sections IV-D and V-C: per-walk
// sample time of Wander Join and Audit Join (paper: ~2.5us average for
// both), the amortized cost of the online Pr(a, b) computation (paper:
// ~2.5us average thanks to caching), and the underlying index operations.
#include <benchmark/benchmark.h>

#include "src/core/audit.h"
#include "src/core/reach.h"
#include "src/explore/session.h"
#include "src/gen/kg_gen.h"
#include "src/index/index_set.h"
#include "src/join/ctj.h"
#include "src/ola/wander.h"
#include "src/util/rng.h"

namespace kgoa {
namespace {

// One mid-size graph shared by every benchmark in this binary.
struct Fixture {
  Fixture() : graph(GenerateKg(DbpediaLikeSpec(0.1))), indexes(graph) {
    ExplorationSession session(graph);
    // Root out-property expansion: the paper's marquee query.
    root_out_property = std::make_unique<ChainQuery>(
        session.BuildQuery(ExpansionKind::kOutProperty));
  }
  Graph graph;
  IndexSet indexes;
  std::unique_ptr<ChainQuery> root_out_property;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_WanderJoinWalk(benchmark::State& state) {
  Fixture& f = GetFixture();
  WanderJoin wj(f.indexes, *f.root_out_property);
  for (auto _ : state) {
    wj.RunOneWalk();
  }
  state.counters["rejection_rate"] = wj.estimates().RejectionRate();
}
BENCHMARK(BM_WanderJoinWalk);

void BM_AuditJoinWalk(benchmark::State& state) {
  Fixture& f = GetFixture();
  AuditJoin::Options options;
  options.tipping_threshold = static_cast<double>(state.range(0));
  options.enable_tipping = state.range(0) > 0;
  AuditJoin aj(f.indexes, *f.root_out_property, options);
  for (auto _ : state) {
    aj.RunOneWalk();
  }
  state.counters["tipped_fraction"] =
      static_cast<double>(aj.tipped_walks()) /
      static_cast<double>(aj.estimates().walks());
}
BENCHMARK(BM_AuditJoinWalk)->Arg(0)->Arg(16)->Arg(64)->Arg(256);

void BM_ReachPrAbAmortized(benchmark::State& state) {
  Fixture& f = GetFixture();
  const WalkPlan plan = WalkPlan::Compile(*f.root_out_property);
  ReachProbability reach(f.indexes, plan);
  // Sample (a, b) pairs the walk actually produces.
  const GroupedResult exact =
      CtjEngine(f.indexes).Evaluate(*f.root_out_property);
  std::vector<TermId> groups;
  for (const auto& [group, count] : exact.counts) groups.push_back(group);
  // b values: subjects of the graph.
  Rng rng(1);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    const TermId a = groups[rng.Below(groups.size())];
    const TermId b = triples[rng.Below(triples.size())].s;
    benchmark::DoNotOptimize(reach.PrAB(a, b));
  }
  state.counters["cache_hit_rate"] =
      static_cast<double>(reach.cache_hits()) /
      static_cast<double>(reach.cache_hits() + reach.cache_misses());
}
BENCHMARK(BM_ReachPrAbAmortized);

void BM_HashRangeResolve(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TriplePattern pattern =
      MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2));
  // Access (?x ?p ?y) bound on ?x — the out-property walk step.
  const PatternAccess access = PatternAccess::Compile(pattern, 0);
  Rng rng(2);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    const TermId s = triples[rng.Below(triples.size())].s;
    benchmark::DoNotOptimize(access.Resolve(f.indexes, s));
  }
}
BENCHMARK(BM_HashRangeResolve);

void BM_TrieNarrow(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TrieIndex& spo = f.indexes.Index(IndexOrder::kSpo);
  Rng rng(3);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    const TermId s = triples[rng.Below(triples.size())].s;
    benchmark::DoNotOptimize(spo.Narrow(spo.Root(), 0, s));
  }
}
BENCHMARK(BM_TrieNarrow);

void BM_SuffixCountCached(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TermId type = f.graph.rdf_type();
  ChainSuffixCounter counter(
      f.indexes,
      {MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2)),
       MakePattern(Slot::MakeVar(2), Slot::MakeConst(type),
                   Slot::MakeVar(3))},
      {0, 2});
  Rng rng(4);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter.Count(0, triples[rng.Below(triples.size())].s));
  }
}
BENCHMARK(BM_SuffixCountCached);

}  // namespace
}  // namespace kgoa

BENCHMARK_MAIN();
