// Micro-benchmarks for the claims of sections IV-D and V-C: per-walk
// sample time of Wander Join and Audit Join (paper: ~2.5us average for
// both), the amortized cost of the online Pr(a, b) computation (paper:
// ~2.5us average thanks to caching), and the underlying index operations
// (flat-table hash-range probes, CSR level-0 narrow, galloping seeks).
//
// Besides the google-benchmark table, the binary ends with one
// machine-readable `trace {...}` JSON line (the PR 1 convention; scrape
// with `grep '^trace '`) carrying ns/op for the Depth1/Depth2/Ndv2 probe
// and SeekGE paths, the per-order index build times, resident bytes, and
// the thread's probe counters.
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include <benchmark/benchmark.h>

#include "src/core/audit.h"
#include "src/core/reach.h"
#include "src/eval/registry.h"
#include "src/explore/session.h"
#include "src/gen/kg_gen.h"
#include "src/index/index_set.h"
#include "src/join/ctj.h"
#include "src/ola/wander.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"

namespace kgoa {
namespace {

// One mid-size graph shared by every benchmark in this binary.
struct Fixture {
  Fixture() : graph(GenerateKg(DbpediaLikeSpec(0.1))), indexes(graph) {
    ExplorationSession session(graph);
    // Root out-property expansion: the paper's marquee query.
    root_out_property = std::make_unique<ChainQuery>(
        session.BuildQuery(ExpansionKind::kOutProperty));
  }
  Graph graph;
  IndexSet indexes;
  std::unique_ptr<ChainQuery> root_out_property;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_WanderJoinWalk(benchmark::State& state) {
  Fixture& f = GetFixture();
  WanderJoin wj(f.indexes, *f.root_out_property);
  for (auto _ : state) {
    wj.RunOneWalk();
  }
  state.counters["rejection_rate"] = wj.estimates().RejectionRate();
}
BENCHMARK(BM_WanderJoinWalk);

void BM_AuditJoinWalk(benchmark::State& state) {
  Fixture& f = GetFixture();
  AuditJoin::Options options;
  options.tipping_threshold = static_cast<double>(state.range(0));
  options.enable_tipping = state.range(0) > 0;
  AuditJoin aj(f.indexes, *f.root_out_property, options);
  for (auto _ : state) {
    aj.RunOneWalk();
  }
  state.counters["tipped_fraction"] =
      static_cast<double>(aj.tipped_walks()) /
      static_cast<double>(aj.estimates().walks());
}
BENCHMARK(BM_AuditJoinWalk)->Arg(0)->Arg(16)->Arg(64)->Arg(256);

void BM_ReachPrAbAmortized(benchmark::State& state) {
  Fixture& f = GetFixture();
  const WalkPlan plan = WalkPlan::Compile(*f.root_out_property);
  ReachProbability reach(f.indexes, plan);
  // Sample (a, b) pairs the walk actually produces.
  const GroupedResult exact =
      CtjEngine(f.indexes).Evaluate(*f.root_out_property);
  std::vector<TermId> groups;
  for (const auto& [group, count] : exact.counts) groups.push_back(group);
  // b values: subjects of the graph.
  Rng rng(1);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    const TermId a = groups[rng.Below(groups.size())];
    const TermId b = triples[rng.Below(triples.size())].s;
    benchmark::DoNotOptimize(reach.PrAB(a, b));
  }
  state.counters["cache_hit_rate"] =
      static_cast<double>(reach.cache_hits()) /
      static_cast<double>(reach.cache_hits() + reach.cache_misses());
}
BENCHMARK(BM_ReachPrAbAmortized);

void BM_HashRangeResolve(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TriplePattern pattern =
      MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2));
  // Access (?x ?p ?y) bound on ?x — the out-property walk step.
  const PatternAccess access = PatternAccess::Compile(pattern, 0);
  Rng rng(2);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    const TermId s = triples[rng.Below(triples.size())].s;
    benchmark::DoNotOptimize(access.Resolve(f.indexes, s));
  }
}
BENCHMARK(BM_HashRangeResolve);

// Pre-drawn random probe keys, so the benches below measure the table
// lookup itself rather than the rng + triple fetch used to draw keys.
constexpr std::size_t kProbeKeys = 1 << 20;

std::vector<TermId>& SubjectKeys() {
  static std::vector<TermId>* keys = [] {
    Fixture& f = GetFixture();
    Rng rng(5);
    const auto& triples = f.graph.triples();
    auto* v = new std::vector<TermId>(kProbeKeys);
    for (TermId& k : *v) k = triples[rng.Below(triples.size())].s;
    return v;
  }();
  return *keys;
}

std::vector<uint64_t>& PairKeys() {
  static std::vector<uint64_t>* keys = [] {
    Fixture& f = GetFixture();
    Rng rng(6);
    const auto& triples = f.graph.triples();
    auto* v = new std::vector<uint64_t>(kProbeKeys);
    for (uint64_t& k : *v) {
      const Triple& t = triples[rng.Below(triples.size())];
      k = (static_cast<uint64_t>(t.s) << 32) | static_cast<uint64_t>(t.p);
    }
    return v;
  }();
  return *keys;
}

// Raw flat-table probes, without the access-path dispatch above them.
void BM_HashDepth1(benchmark::State& state) {
  Fixture& f = GetFixture();
  const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
  const auto& keys = SubjectKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.Depth1(keys[i++ & (kProbeKeys - 1)]));
  }
}
BENCHMARK(BM_HashDepth1);

void BM_HashDepth2(benchmark::State& state) {
  Fixture& f = GetFixture();
  const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
  const auto& keys = PairKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    const uint64_t key = keys[i++ & (kProbeKeys - 1)];
    benchmark::DoNotOptimize(hash.Depth2(static_cast<TermId>(key >> 32),
                                         static_cast<TermId>(key)));
  }
}
BENCHMARK(BM_HashDepth2);

void BM_HashNdv2(benchmark::State& state) {
  Fixture& f = GetFixture();
  const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
  const auto& keys = SubjectKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.Ndv2(keys[i++ & (kProbeKeys - 1)]));
  }
}
BENCHMARK(BM_HashNdv2);

// Reference probes against the pre-flat-table representation (one
// std::unordered_map per depth, as HashRangeIndex used before the open
// addressing rewrite) — the head-to-head baseline for the flat probes.
struct RefMaps {
  RefMaps() {
    Fixture& f = GetFixture();
    const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
    const TrieIndex& spo = f.indexes.Index(IndexOrder::kSpo);
    const Range root = spo.Root();
    uint32_t pos = root.begin;
    while (pos < root.end) {
      const TermId s = spo.KeyAt(pos, 0);
      depth1[s] = hash.Depth1(s);
      pos = spo.BlockEnd(root, 0, pos);
    }
    for (const Triple& t : f.graph.triples()) {
      const uint64_t key =
          (static_cast<uint64_t>(t.s) << 32) | static_cast<uint64_t>(t.p);
      if (depth2.find(key) == depth2.end()) depth2[key] = hash.Depth2(t.s, t.p);
    }
  }
  std::unordered_map<TermId, Range> depth1;
  std::unordered_map<uint64_t, Range> depth2;
};

RefMaps& GetRefMaps() {
  static RefMaps* maps = new RefMaps();
  return *maps;
}

void BM_RefMapDepth1(benchmark::State& state) {
  const auto& map = GetRefMaps().depth1;
  const auto& keys = SubjectKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto it = map.find(keys[i++ & (kProbeKeys - 1)]);
    benchmark::DoNotOptimize(it == map.end() ? Range{} : it->second);
  }
}
BENCHMARK(BM_RefMapDepth1);

void BM_RefMapDepth2(benchmark::State& state) {
  const auto& map = GetRefMaps().depth2;
  const auto& keys = PairKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto it = map.find(keys[i++ & (kProbeKeys - 1)]);
    benchmark::DoNotOptimize(it == map.end() ? Range{} : it->second);
  }
}
BENCHMARK(BM_RefMapDepth2);

void BM_TrieNarrow(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TrieIndex& spo = f.indexes.Index(IndexOrder::kSpo);
  Rng rng(3);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    const TermId s = triples[rng.Below(triples.size())].s;
    benchmark::DoNotOptimize(spo.Narrow(spo.Root(), 0, s));
  }
}
BENCHMARK(BM_TrieNarrow);

// Every 3rd distinct level-0 value of the SPO order, ascending: the
// leapfrog access shape (short forward hops from the previous hit) that
// the galloping SeekGE is built for.
std::vector<TermId> SeekTargets(const TrieIndex& index) {
  std::vector<TermId> targets;
  const Range root = index.Root();
  uint32_t pos = root.begin;
  uint64_t i = 0;
  while (pos < root.end) {
    if (i++ % 3 == 0) targets.push_back(index.KeyAt(pos, 0));
    pos = index.BlockEnd(root, 0, pos);
  }
  return targets;
}

void BM_TrieSeekGEShortHops(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TrieIndex& spo = f.indexes.Index(IndexOrder::kSpo);
  const std::vector<TermId> targets = SeekTargets(spo);
  const Range root = spo.Root();
  uint32_t from = root.begin;
  std::size_t i = 0;
  for (auto _ : state) {
    if (i >= targets.size()) {
      i = 0;
      from = root.begin;
    }
    from = spo.SeekGE(root, 0, targets[i++], from);
    benchmark::DoNotOptimize(from);
  }
}
BENCHMARK(BM_TrieSeekGEShortHops);

void BM_SuffixCountCached(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TermId type = f.graph.rdf_type();
  ChainSuffixCounter counter(
      f.indexes,
      {MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2)),
       MakePattern(Slot::MakeVar(2), Slot::MakeConst(type),
                   Slot::MakeVar(3))},
      {0, 2});
  Rng rng(4);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter.Count(0, triples[rng.Below(triples.size())].s));
  }
}
BENCHMARK(BM_SuffixCountCached);

// Hand-timed ns/op for the index primitives, exported as one
// machine-readable trace line through the PR 1 metrics registry.
double NsPerOp(uint64_t iterations, const Stopwatch& clock) {
  return clock.ElapsedSeconds() * 1e9 / static_cast<double>(iterations);
}

void EmitIndexTrace() {
  Fixture& f = GetFixture();
  const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
  const TrieIndex& spo = f.indexes.Index(IndexOrder::kSpo);
  constexpr uint64_t kOps = 2'000'000;

  MetricsRegistry registry;
  ExportMetrics(f.indexes, "index.", &registry);
  t_index_probes.Reset();

  const auto& subjects = SubjectKeys();
  const auto& pairs = PairKeys();
  {
    Stopwatch clock;
    Range sink{};
    for (uint64_t i = 0; i < kOps; ++i) {
      const Range r = hash.Depth1(subjects[i & (kProbeKeys - 1)]);
      sink.begin ^= r.begin;
      sink.end ^= r.end;
    }
    benchmark::DoNotOptimize(sink);
    registry.SetGauge("index.depth1_ns", NsPerOp(kOps, clock));
  }
  {
    Stopwatch clock;
    Range sink{};
    for (uint64_t i = 0; i < kOps; ++i) {
      const uint64_t key = pairs[i & (kProbeKeys - 1)];
      const Range r = hash.Depth2(static_cast<TermId>(key >> 32),
                                  static_cast<TermId>(key));
      sink.begin ^= r.begin;
      sink.end ^= r.end;
    }
    benchmark::DoNotOptimize(sink);
    registry.SetGauge("index.depth2_ns", NsPerOp(kOps, clock));
  }
  {
    Stopwatch clock;
    uint64_t sink = 0;
    for (uint64_t i = 0; i < kOps; ++i) {
      sink ^= hash.Ndv2(subjects[i & (kProbeKeys - 1)]);
    }
    benchmark::DoNotOptimize(sink);
    registry.SetGauge("index.ndv2_ns", NsPerOp(kOps, clock));
  }
  {
    const std::vector<TermId> targets = SeekTargets(spo);
    const Range root = spo.Root();
    Stopwatch clock;
    uint64_t ops = 0;
    uint32_t sink = 0;
    while (ops < kOps) {
      uint32_t from = root.begin;
      for (const TermId target : targets) {
        from = spo.SeekGE(root, 0, target, from);
        sink ^= from;
      }
      ops += targets.size();
    }
    benchmark::DoNotOptimize(sink);
    registry.SetGauge("index.seekge_ns", NsPerOp(ops, clock));
  }
  ExportIndexProbeCounters("index.", &registry);
  std::printf("trace %s\n", registry.ToJson().c_str());
  std::fflush(stdout);
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  kgoa::EmitIndexTrace();
  return 0;
}
