// Micro-benchmarks for the claims of sections IV-D and V-C: per-walk
// sample time of Wander Join and Audit Join (paper: ~2.5us average for
// both), the amortized cost of the online Pr(a, b) computation (paper:
// ~2.5us average thanks to caching), and the underlying index operations
// (flat-table hash-range probes, CSR level-0 narrow, galloping seeks).
//
// Besides the google-benchmark table, the binary ends with two
// machine-readable JSON lines (the PR 1 convention):
//
//  * `trace {...}` — ns/op for the Depth1/Depth2/Ndv2 probe and SeekGE
//    paths, the per-order index build times, resident bytes, and the
//    thread's probe counters (scrape with `grep '^trace '`);
//  * `reach_trace {...}` — the reach-probability cache ablation: cold
//    first-touch cost, warm shared-cache probe cost (with and without
//    concurrent readers), the per-thread private-memo path the shared
//    cache replaced, and the cache's own counters (scrape with
//    `grep '^reach_trace '`; scripts/bench_json.sh turns it into
//    BENCH_reach.json). Set KGOA_BENCH_QUICK=1 for a smoke-sized run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unordered_map>

#include <benchmark/benchmark.h>

#include "src/core/audit.h"
#include "src/core/reach.h"
#include "src/eval/registry.h"
#include "src/explore/session.h"
#include "src/gen/kg_gen.h"
#include "src/index/index_set.h"
#include "src/join/ctj.h"
#include "src/ola/wander.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"

namespace kgoa {
namespace {

// One mid-size graph shared by every benchmark in this binary.
struct Fixture {
  Fixture() : graph(GenerateKg(DbpediaLikeSpec(0.1))), indexes(graph) {
    ExplorationSession session(graph);
    // Root out-property expansion: the paper's marquee query.
    root_out_property = std::make_unique<ChainQuery>(
        session.BuildQuery(ExpansionKind::kOutProperty));
  }
  Graph graph;
  IndexSet indexes;
  std::unique_ptr<ChainQuery> root_out_property;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_WanderJoinWalk(benchmark::State& state) {
  Fixture& f = GetFixture();
  WanderJoin wj(f.indexes, *f.root_out_property);
  for (auto _ : state) {
    wj.RunOneWalk();
  }
  state.counters["rejection_rate"] = wj.estimates().RejectionRate();
}
BENCHMARK(BM_WanderJoinWalk);

void BM_AuditJoinWalk(benchmark::State& state) {
  Fixture& f = GetFixture();
  AuditJoin::Options options;
  options.tipping_threshold = static_cast<double>(state.range(0));
  options.enable_tipping = state.range(0) > 0;
  AuditJoin aj(f.indexes, *f.root_out_property, options);
  for (auto _ : state) {
    aj.RunOneWalk();
  }
  state.counters["tipped_fraction"] =
      static_cast<double>(aj.tipped_walks()) /
      static_cast<double>(aj.estimates().walks());
}
BENCHMARK(BM_AuditJoinWalk)->Arg(0)->Arg(16)->Arg(64)->Arg(256);

void BM_ReachPrAbAmortized(benchmark::State& state) {
  Fixture& f = GetFixture();
  const WalkPlan plan = WalkPlan::Compile(*f.root_out_property);
  ReachProbability reach(f.indexes, plan);
  // Sample (a, b) pairs the walk actually produces.
  const GroupedResult exact =
      CtjEngine(f.indexes).Evaluate(*f.root_out_property);
  std::vector<TermId> groups;
  for (const auto& [group, count] : exact.counts) groups.push_back(group);
  // b values: subjects of the graph.
  Rng rng(1);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    const TermId a = groups[rng.Below(groups.size())];
    const TermId b = triples[rng.Below(triples.size())].s;
    benchmark::DoNotOptimize(reach.PrAB(a, b));
  }
  state.counters["cache_hit_rate"] =
      static_cast<double>(reach.cache_hits()) /
      static_cast<double>(reach.cache_hits() + reach.cache_misses());
}
BENCHMARK(BM_ReachPrAbAmortized);

void BM_HashRangeResolve(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TriplePattern pattern =
      MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2));
  // Access (?x ?p ?y) bound on ?x — the out-property walk step.
  const PatternAccess access = PatternAccess::Compile(pattern, 0);
  Rng rng(2);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    const TermId s = triples[rng.Below(triples.size())].s;
    benchmark::DoNotOptimize(access.Resolve(f.indexes, s));
  }
}
BENCHMARK(BM_HashRangeResolve);

// Pre-drawn random probe keys, so the benches below measure the table
// lookup itself rather than the rng + triple fetch used to draw keys.
constexpr std::size_t kProbeKeys = 1 << 20;

std::vector<TermId>& SubjectKeys() {
  static std::vector<TermId>* keys = [] {
    Fixture& f = GetFixture();
    Rng rng(5);
    const auto& triples = f.graph.triples();
    auto* v = new std::vector<TermId>(kProbeKeys);
    for (TermId& k : *v) k = triples[rng.Below(triples.size())].s;
    return v;
  }();
  return *keys;
}

std::vector<uint64_t>& PairKeys() {
  static std::vector<uint64_t>* keys = [] {
    Fixture& f = GetFixture();
    Rng rng(6);
    const auto& triples = f.graph.triples();
    auto* v = new std::vector<uint64_t>(kProbeKeys);
    for (uint64_t& k : *v) {
      const Triple& t = triples[rng.Below(triples.size())];
      k = (static_cast<uint64_t>(t.s) << 32) | static_cast<uint64_t>(t.p);
    }
    return v;
  }();
  return *keys;
}

// Raw flat-table probes, without the access-path dispatch above them.
void BM_HashDepth1(benchmark::State& state) {
  Fixture& f = GetFixture();
  const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
  const auto& keys = SubjectKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.Depth1(keys[i++ & (kProbeKeys - 1)]));
  }
}
BENCHMARK(BM_HashDepth1);

void BM_HashDepth2(benchmark::State& state) {
  Fixture& f = GetFixture();
  const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
  const auto& keys = PairKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    const uint64_t key = keys[i++ & (kProbeKeys - 1)];
    benchmark::DoNotOptimize(hash.Depth2(static_cast<TermId>(key >> 32),
                                         static_cast<TermId>(key)));
  }
}
BENCHMARK(BM_HashDepth2);

void BM_HashNdv2(benchmark::State& state) {
  Fixture& f = GetFixture();
  const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
  const auto& keys = SubjectKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.Ndv2(keys[i++ & (kProbeKeys - 1)]));
  }
}
BENCHMARK(BM_HashNdv2);

// Reference probes against the pre-flat-table representation (one
// std::unordered_map per depth, as HashRangeIndex used before the open
// addressing rewrite) — the head-to-head baseline for the flat probes.
struct RefMaps {
  RefMaps() {
    Fixture& f = GetFixture();
    const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
    const TrieIndex& spo = f.indexes.Index(IndexOrder::kSpo);
    const Range root = spo.Root();
    uint32_t pos = root.begin;
    while (pos < root.end) {
      const TermId s = spo.KeyAt(pos, 0);
      depth1[s] = hash.Depth1(s);
      pos = spo.BlockEnd(root, 0, pos);
    }
    for (const Triple& t : f.graph.triples()) {
      const uint64_t key =
          (static_cast<uint64_t>(t.s) << 32) | static_cast<uint64_t>(t.p);
      if (depth2.find(key) == depth2.end()) depth2[key] = hash.Depth2(t.s, t.p);
    }
  }
  std::unordered_map<TermId, Range> depth1;
  std::unordered_map<uint64_t, Range> depth2;
};

RefMaps& GetRefMaps() {
  static RefMaps* maps = new RefMaps();
  return *maps;
}

void BM_RefMapDepth1(benchmark::State& state) {
  const auto& map = GetRefMaps().depth1;
  const auto& keys = SubjectKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto it = map.find(keys[i++ & (kProbeKeys - 1)]);
    benchmark::DoNotOptimize(it == map.end() ? Range{} : it->second);
  }
}
BENCHMARK(BM_RefMapDepth1);

void BM_RefMapDepth2(benchmark::State& state) {
  const auto& map = GetRefMaps().depth2;
  const auto& keys = PairKeys();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto it = map.find(keys[i++ & (kProbeKeys - 1)]);
    benchmark::DoNotOptimize(it == map.end() ? Range{} : it->second);
  }
}
BENCHMARK(BM_RefMapDepth2);

void BM_TrieNarrow(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TrieIndex& spo = f.indexes.Index(IndexOrder::kSpo);
  Rng rng(3);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    const TermId s = triples[rng.Below(triples.size())].s;
    benchmark::DoNotOptimize(spo.Narrow(spo.Root(), 0, s));
  }
}
BENCHMARK(BM_TrieNarrow);

// Every 3rd distinct level-0 value of the SPO order, ascending: the
// leapfrog access shape (short forward hops from the previous hit) that
// the galloping SeekGE is built for.
std::vector<TermId> SeekTargets(const TrieIndex& index) {
  std::vector<TermId> targets;
  const Range root = index.Root();
  uint32_t pos = root.begin;
  uint64_t i = 0;
  while (pos < root.end) {
    if (i++ % 3 == 0) targets.push_back(index.KeyAt(pos, 0));
    pos = index.BlockEnd(root, 0, pos);
  }
  return targets;
}

void BM_TrieSeekGEShortHops(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TrieIndex& spo = f.indexes.Index(IndexOrder::kSpo);
  const std::vector<TermId> targets = SeekTargets(spo);
  const Range root = spo.Root();
  uint32_t from = root.begin;
  std::size_t i = 0;
  for (auto _ : state) {
    if (i >= targets.size()) {
      i = 0;
      from = root.begin;
    }
    from = spo.SeekGE(root, 0, targets[i++], from);
    benchmark::DoNotOptimize(from);
  }
}
BENCHMARK(BM_TrieSeekGEShortHops);

void BM_SuffixCountCached(benchmark::State& state) {
  Fixture& f = GetFixture();
  const TermId type = f.graph.rdf_type();
  ChainSuffixCounter counter(
      f.indexes,
      {MakePattern(Slot::MakeVar(0), Slot::MakeVar(1), Slot::MakeVar(2)),
       MakePattern(Slot::MakeVar(2), Slot::MakeConst(type),
                   Slot::MakeVar(3))},
      {0, 2});
  Rng rng(4);
  const auto& triples = f.graph.triples();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter.Count(0, triples[rng.Below(triples.size())].s));
  }
}
BENCHMARK(BM_SuffixCountCached);

// Hand-timed ns/op for the index primitives, exported as one
// machine-readable trace line through the PR 1 metrics registry.
double NsPerOp(uint64_t iterations, const Stopwatch& clock) {
  return clock.ElapsedSeconds() * 1e9 / static_cast<double>(iterations);
}

// --------------------------------------------------------------------------
// Reach-probability cache benches (the Audit Join distinct hot path).

// Single-threaded startup read, before any pool exists.
bool BenchQuick() {
  return std::getenv("KGOA_BENCH_QUICK") != nullptr;  // NOLINT(concurrency-mt-unsafe)
}

// A fixed worklist of distinct (a, b) pairs drawn the way the amortized
// bench above draws them (group x random subject), plus one shared cache
// pre-warmed over the whole worklist.
struct ReachBenchFixture {
  ReachBenchFixture()
      : plan(WalkPlan::Compile(*GetFixture().root_out_property)),
        reach(GetFixture().indexes, plan) {
    Fixture& f = GetFixture();
    const GroupedResult exact =
        CtjEngine(f.indexes).Evaluate(*f.root_out_property);
    std::vector<TermId> groups;
    for (const auto& [group, count] : exact.counts) groups.push_back(group);
    const auto& triples = f.graph.triples();
    Rng rng(7);
    const std::size_t target = BenchQuick() ? 1000 : 8000;
    FlatAccumulator<uint64_t, uint8_t> seen;
    while (pairs.size() < target) {
      const uint64_t key =
          PackPair(groups[rng.Below(groups.size())],
                   triples[rng.Below(triples.size())].s);
      if (!seen.Contains(key)) {
        seen.FindOrAdd(key) = 1;
        pairs.push_back(key);
      }
    }
    double sink = 0;
    for (const uint64_t key : pairs) sink += Probe(reach, key);
    benchmark::DoNotOptimize(sink);
  }

  static double Probe(ReachProbability& cache, uint64_t key) {
    return cache.PrAB(static_cast<TermId>(key >> 32),
                      static_cast<TermId>(key & 0xffffffffu));
  }

  WalkPlan plan;
  ReachProbability reach;  // warm after construction
  std::vector<uint64_t> pairs;
};

ReachBenchFixture& GetReachFixture() {
  static ReachBenchFixture* fixture = new ReachBenchFixture();
  return *fixture;
}

// Warm lookups against the run-shared cache — the steady state of the
// audit hot path once the working set has been audited.
void BM_ReachWarmSharedProbe(benchmark::State& state) {
  ReachBenchFixture& f = GetReachFixture();
  std::size_t i = 0;
  for (auto _ : state) {
    const uint64_t key = f.pairs[i];
    if (++i == f.pairs.size()) i = 0;
    benchmark::DoNotOptimize(ReachBenchFixture::Probe(f.reach, key));
  }
}
BENCHMARK(BM_ReachWarmSharedProbe);

// The pre-shared-cache design: every engine owns a private memo and pays
// its own first-touch DP computes. One fresh cache per pass over the
// worklist, so the per-op figure is the amortized cold cost.
void BM_ReachColdPrivateMemo(benchmark::State& state) {
  ReachBenchFixture& f = GetReachFixture();
  Fixture& base = GetFixture();
  std::unique_ptr<ReachProbability> cache;
  std::size_t i = 0;
  for (auto _ : state) {
    if (i == 0) {
      cache = std::make_unique<ReachProbability>(base.indexes, f.plan);
    }
    const uint64_t key = f.pairs[i];
    if (++i == f.pairs.size()) i = 0;
    benchmark::DoNotOptimize(ReachBenchFixture::Probe(*cache, key));
  }
}
BENCHMARK(BM_ReachColdPrivateMemo);

// Concurrent readers on the one shared cache — the executor's worker
// threads probing while the memo is warm.
void BM_ReachSharedAcrossThreads(benchmark::State& state) {
  ReachBenchFixture& f = GetReachFixture();
  std::size_t i = (static_cast<std::size_t>(state.thread_index()) * 97) %
                  f.pairs.size();
  for (auto _ : state) {
    const uint64_t key = f.pairs[i];
    if (++i == f.pairs.size()) i = 0;
    benchmark::DoNotOptimize(ReachBenchFixture::Probe(f.reach, key));
  }
}
BENCHMARK(BM_ReachSharedAcrossThreads)->Threads(8);

// The reach-cache ablation, hand-timed and emitted as the stable-keyed
// `reach_trace` JSON line that scripts/bench_json.sh captures.
void EmitReachTrace() {
  Fixture& base = GetFixture();
  ReachBenchFixture& f = GetReachFixture();
  const bool quick = BenchQuick();
  const int threads = quick ? 4 : 8;
  const uint64_t passes = quick ? 4 : 16;
  const std::size_t n = f.pairs.size();
  MetricsRegistry registry;

  // Seed path: `threads` engines, each with its own private memo — every
  // engine recomputes every pair (the behaviour the shared cache
  // replaces).
  double seed_path_ns;
  {
    Stopwatch clock;
    for (int t = 0; t < threads; ++t) {
      ReachProbability private_cache(base.indexes, f.plan);
      double sink = 0;
      for (const uint64_t key : f.pairs) {
        sink += ReachBenchFixture::Probe(private_cache, key);
      }
      benchmark::DoNotOptimize(sink);
    }
    seed_path_ns = NsPerOp(static_cast<uint64_t>(threads) * n, clock);
  }

  // Shared path: the same lookups against ONE run-shared cache — the
  // first engine computes, the rest hit.
  double shared_path_ns;
  {
    Stopwatch clock;
    ReachProbability shared(base.indexes, f.plan);
    for (int t = 0; t < threads; ++t) {
      double sink = 0;
      for (const uint64_t key : f.pairs) {
        sink += ReachBenchFixture::Probe(shared, key);
      }
      benchmark::DoNotOptimize(sink);
    }
    shared_path_ns = NsPerOp(static_cast<uint64_t>(threads) * n, clock);
  }

  // Amortized cold first-touch (one fresh cache, one pass).
  double cold_ns;
  {
    Stopwatch clock;
    ReachProbability fresh(base.indexes, f.plan);
    double sink = 0;
    for (const uint64_t key : f.pairs) {
      sink += ReachBenchFixture::Probe(fresh, key);
    }
    benchmark::DoNotOptimize(sink);
    cold_ns = NsPerOp(n, clock);
  }

  // Warm shared probes, batched the way AuditJoin flushes contributions:
  // prefetch the batch's memo slots, then probe them in order.
  double warm_shared_ns;
  {
    constexpr std::size_t kBatch = 128;
    Stopwatch clock;
    double sink = 0;
    for (uint64_t pass = 0; pass < passes; ++pass) {
      for (std::size_t begin = 0; begin < n; begin += kBatch) {
        const std::size_t end = std::min(begin + kBatch, n);
        for (std::size_t j = begin; j < end; ++j) {
          f.reach.PrefetchPrAB(static_cast<TermId>(f.pairs[j] >> 32),
                               static_cast<TermId>(f.pairs[j] & 0xffffffffu));
        }
        for (std::size_t j = begin; j < end; ++j) {
          sink += ReachBenchFixture::Probe(f.reach, f.pairs[j]);
        }
      }
    }
    benchmark::DoNotOptimize(sink);
    warm_shared_ns = NsPerOp(passes * n, clock);
  }

  // Steady-state lookups from the node-based memo the flat cache
  // replaced (a per-engine std::unordered_map).
  double warm_refmap_ns;
  {
    std::unordered_map<uint64_t, double> ref;
    ref.reserve(n);
    for (const uint64_t key : f.pairs) {
      ref.emplace(key, ReachBenchFixture::Probe(f.reach, key));
    }
    Stopwatch clock;
    double sink = 0;
    for (uint64_t pass = 0; pass < passes; ++pass) {
      for (const uint64_t key : f.pairs) sink += ref.find(key)->second;
    }
    benchmark::DoNotOptimize(sink);
    warm_refmap_ns = NsPerOp(passes * n, clock);
  }

  // Concurrent warm readers: wall-clock ns per lookup with every thread
  // probing the one shared cache.
  double warm_shared_mt_ns;
  {
    Stopwatch clock;
    // kgoa-lint: allow(raw-thread) bench harness simulating clients
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&f, t, passes, n] {
        std::size_t i = (static_cast<std::size_t>(t) * 131) % n;
        double sink = 0;
        for (uint64_t pass = 0; pass < passes; ++pass) {
          for (std::size_t k = 0; k < n; ++k) {
            sink += ReachBenchFixture::Probe(f.reach, f.pairs[i]);
            if (++i == n) i = 0;
          }
        }
        benchmark::DoNotOptimize(sink);
      });
    }
    for (auto& worker : workers) worker.join();
    warm_shared_mt_ns =
        NsPerOp(static_cast<uint64_t>(threads) * passes * n, clock);
  }

  const ShardedTableStats stats = f.reach.stats();
  registry.SetCounter("reach.pairs", n);
  registry.SetCounter("reach.threads", static_cast<uint64_t>(threads));
  registry.SetCounter("reach.hits", stats.hits);
  registry.SetCounter("reach.misses", stats.misses);
  registry.SetCounter("reach.contention", stats.insert_contention);
  registry.SetCounter("reach.entries", stats.entries);
  registry.SetCounter("reach.memory_bytes", stats.memory_bytes);
  registry.SetGauge("reach.cold_ns", cold_ns);
  registry.SetGauge("reach.warm_shared_ns", warm_shared_ns);
  registry.SetGauge("reach.warm_refmap_ns", warm_refmap_ns);
  registry.SetGauge("reach.warm_shared_mt_ns", warm_shared_mt_ns);
  registry.SetGauge("reach.seed_path_ns", seed_path_ns);
  registry.SetGauge("reach.shared_path_ns", shared_path_ns);
  registry.SetGauge("reach.speedup_shared_vs_seed",
                    seed_path_ns / shared_path_ns);
  // The acceptance headline: warm shared-cache lookups vs the seed's
  // recompute-per-thread path.
  registry.SetGauge("reach.speedup_warm_vs_seed",
                    seed_path_ns / warm_shared_ns);
  registry.SetGauge("reach.speedup_warm_vs_refmap",
                    warm_refmap_ns / warm_shared_ns);
  std::printf("reach_trace %s\n", registry.ToJson().c_str());
  std::fflush(stdout);
}

void EmitIndexTrace() {
  Fixture& f = GetFixture();
  const HashRangeIndex& hash = f.indexes.Hash(IndexOrder::kSpo);
  const TrieIndex& spo = f.indexes.Index(IndexOrder::kSpo);
  constexpr uint64_t kOps = 2'000'000;

  MetricsRegistry registry;
  ExportMetrics(f.indexes, "index.", &registry);
  t_index_probes.Reset();

  const auto& subjects = SubjectKeys();
  const auto& pairs = PairKeys();
  {
    Stopwatch clock;
    Range sink{};
    for (uint64_t i = 0; i < kOps; ++i) {
      const Range r = hash.Depth1(subjects[i & (kProbeKeys - 1)]);
      sink.begin ^= r.begin;
      sink.end ^= r.end;
    }
    benchmark::DoNotOptimize(sink);
    registry.SetGauge("index.depth1_ns", NsPerOp(kOps, clock));
  }
  {
    Stopwatch clock;
    Range sink{};
    for (uint64_t i = 0; i < kOps; ++i) {
      const uint64_t key = pairs[i & (kProbeKeys - 1)];
      const Range r = hash.Depth2(static_cast<TermId>(key >> 32),
                                  static_cast<TermId>(key));
      sink.begin ^= r.begin;
      sink.end ^= r.end;
    }
    benchmark::DoNotOptimize(sink);
    registry.SetGauge("index.depth2_ns", NsPerOp(kOps, clock));
  }
  {
    Stopwatch clock;
    uint64_t sink = 0;
    for (uint64_t i = 0; i < kOps; ++i) {
      sink ^= hash.Ndv2(subjects[i & (kProbeKeys - 1)]);
    }
    benchmark::DoNotOptimize(sink);
    registry.SetGauge("index.ndv2_ns", NsPerOp(kOps, clock));
  }
  {
    const std::vector<TermId> targets = SeekTargets(spo);
    const Range root = spo.Root();
    Stopwatch clock;
    uint64_t ops = 0;
    uint32_t sink = 0;
    while (ops < kOps) {
      uint32_t from = root.begin;
      for (const TermId target : targets) {
        from = spo.SeekGE(root, 0, target, from);
        sink ^= from;
      }
      ops += targets.size();
    }
    benchmark::DoNotOptimize(sink);
    registry.SetGauge("index.seekge_ns", NsPerOp(ops, clock));
  }
  ExportIndexProbeCounters("index.", &registry);
  std::printf("trace %s\n", registry.ToJson().c_str());
  std::fflush(stdout);
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  kgoa::EmitIndexTrace();
  kgoa::EmitReachTrace();
  return 0;
}
