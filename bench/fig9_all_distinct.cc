// Reproduces Figure 9: Tukey box plots of the mean absolute error over
// time for ALL randomly generated exploration queries WITH the distinct
// operator, split by exploration step (1-4) and dataset.
//
// Paper shapes to expect: AJ's error distribution sits far below WJ's at
// every checkpoint (paper: WJ median errors reach >1000% after 1s and
// ~300% after 9s on LGD step 3-4; AJ stays at worst ~104% after 1s and
// ~50% after 9s), and WJ degrades as the exploration goes deeper while AJ
// degrades much less.
#include <cstdio>

#include "bench/workload_common.h"
#include "src/util/flags.h"

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,seconds,checkpoints,paths");

  kgoa::bench::WorkloadExperimentOptions options;
  options.distinct = true;
  options.seconds = flags.GetDouble("seconds", 0.8);
  options.checkpoints = static_cast<int>(flags.GetInt("checkpoints", 4));
  options.paths = static_cast<int>(flags.GetInt("paths", 25));
  const double scale = flags.GetDouble("scale", 0.25);

  std::printf("=== Figure 9: MAE over time, all queries WITH distinct ===\n");
  std::printf("(scale %.2f, %d paths/graph, %.1fs per algorithm per query; "
              "paper: 9s runs)\n",
              scale, options.paths, options.seconds);

  for (const kgoa::KgSpec& spec :
       {kgoa::DbpediaLikeSpec(scale), kgoa::LgdLikeSpec(scale)}) {
    kgoa::bench::Dataset ds = kgoa::bench::BuildDataset(spec);
    const auto runs = kgoa::bench::RunWorkloadExperiment(ds, options);
    kgoa::bench::PrintStepBoxes(ds.name, runs, options.checkpoints,
                                options.max_steps);
  }
  return 0;
}
