// Shard scaling: time-to-CI-width of the scatter-gather coordinator at
// 1 / 2 / 4 shards (src/shard/coordinator.h).
//
// Each configuration builds a ShardCoordinator over the same graph and
// indexes with a fixed TOTAL thread count (threads / shards pool threads
// per shard core), submits one deadline-mode chart job scattered across
// the shards, and polls the combined Snapshot() until the top group's
// 0.95 CI half-width drops below a relative target. The 1-shard case is
// the unsharded baseline (one core, one pool); the 2- and 4-shard
// speedups quantify what the scatter buys — with in-process shards over
// the global indexes this isolates the coordination overhead, the number
// a real multi-process deployment would pay on top of its RPC cost.
//
// The machine-readable result is one `shard_trace {json}` line (scraped
// by scripts/bench_json.sh into BENCH_shard.json). Set KGOA_BENCH_QUICK=1
// for a smoke-sized run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/eval/registry.h"
#include "src/eval/runner.h"
#include "src/explore/session.h"
#include "src/shard/coordinator.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"

namespace kgoa {
namespace {

// Single-threaded startup read, before any pool exists.
bool BenchQuick() {
  return std::getenv("KGOA_BENCH_QUICK") != nullptr;  // NOLINT(concurrency-mt-unsafe)
}

// True once the snapshot's largest group has a relative CI half-width at
// or below `target` (with enough walks for the interval to mean
// something). Tipped-to-exact groups (CI 0) satisfy any target.
bool CiTargetReached(const GroupedEstimates& estimates, double target) {
  if (estimates.walks() < 1000) return false;
  double top_estimate = 0;
  uint64_t top_group = 0;
  for (const auto& [group, estimate] : estimates.Estimates()) {
    if (estimate > top_estimate) {
      top_estimate = estimate;
      top_group = group;
    }
  }
  if (top_estimate <= 0) return false;
  return estimates.CiHalfWidth(top_group) <= target * top_estimate;
}

// Scatters one deadline-mode job across the coordinator's shards, polls
// the combined snapshot until the CI target is reached, gracefully
// finishes the fan-out, and returns the time-to-target in seconds (the
// give-up horizon when never reached). Walks at the target time are
// returned via `walks`. Finish (not Cancel) so the jobs retire as
// COMPLETED — a served-to-target chart is a success, and the shard.*
// job-lifecycle counters should say so.
double TimeToCiTarget(ShardCoordinator& coordinator, const ChainQuery& query,
                      const std::vector<int>& walk_order,
                      int workers_per_shard, double target,
                      double give_up_seconds, uint64_t* walks) {
  ShardChartOptions options;
  options.deadline_seconds = give_up_seconds;
  options.workers_per_shard = workers_per_shard;
  options.walk_order = walk_order;
  Stopwatch clock;
  const ShardChartHandle handle = coordinator.Submit(query, options);
  double reached = 0;
  while (clock.ElapsedSeconds() < give_up_seconds) {
    const ParallelOlaResult snapshot = handle.Snapshot();
    if (CiTargetReached(snapshot.estimates, target)) {
      reached = clock.ElapsedSeconds();
      if (walks != nullptr) *walks = snapshot.estimates.walks();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  handle.Finish();
  handle.Await();
  return reached > 0 ? reached : give_up_seconds;
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,threads,ci_target");
  const bool quick = kgoa::BenchQuick();
  const double scale = flags.GetDouble("scale", quick ? 0.05 : 0.2);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const double ci_target =
      flags.GetDouble("ci_target", quick ? 0.25 : 0.05);
  const double give_up = quick ? 20.0 : 60.0;
  const int shard_counts[] = {1, 2, 4};

  std::printf("=== Shard scaling: time-to-CI at 1/2/4 shards ===\n");
  kgoa::bench::Dataset ds =
      kgoa::bench::BuildDataset(kgoa::DbpediaLikeSpec(scale));

  // Root out-property expansion: the paper's hardest interactive shape
  // (thousands of groups, distinct), same query as serve_concurrency.
  kgoa::ExplorationSession session(ds.graph);
  const kgoa::ChainQuery query =
      session.BuildQuery(kgoa::ExpansionKind::kOutProperty);
  const std::vector<int> walk_order = kgoa::DefaultAuditOrder(query);

  kgoa::MetricsRegistry registry;
  registry.SetGauge("shard.ci_target", ci_target);
  double baseline_seconds = 0;
  for (const int shards : shard_counts) {
    kgoa::ShardCoordinator::Options options;
    options.num_shards = shards;
    // Fixed total thread count so the comparison isolates the scatter,
    // not extra hardware.
    options.threads_per_shard = std::max(1, threads / shards);
    options.build_slices = false;  // serving-path benchmark
    kgoa::ShardCoordinator coordinator(ds.graph, *ds.indexes, options);

    uint64_t walks = 0;
    const double seconds = kgoa::TimeToCiTarget(
        coordinator, query, walk_order, options.threads_per_shard,
        ci_target, give_up, &walks);
    if (shards == 1) baseline_seconds = seconds;
    const double speedup = seconds > 0 ? baseline_seconds / seconds : 0.0;
    std::printf("%d shard(s) x %d threads: %.3fs to %.0f%% CI "
                "(%llu walks, %.2fx vs 1 shard)\n",
                shards, options.threads_per_shard, seconds,
                100.0 * ci_target,
                static_cast<unsigned long long>(walks), speedup);

    const std::string key = "shard.s" + std::to_string(shards);
    registry.SetGauge(key + "_seconds_to_ci", seconds);
    registry.SetGauge(key + "_walks_to_ci", static_cast<double>(walks));
    if (shards > 1) registry.SetGauge(key + "_speedup", speedup);
    if (shards == 4) {
      // Export the coordinator-level metrics once, from the widest
      // fan-out (the shard.* key set validated by bench_json.sh).
      kgoa::ExportMetrics(coordinator, "shard.", &registry);
    }
  }

  std::printf("shard_trace %s\n", registry.ToJson().c_str());
  return 0;
}
