// Ablation for Example IV.1 / section IV-B: the effect of CTJ's caching of
// partial counts. Compares path counting with the cache enabled (CTJ)
// versus disabled (plain LFTJ recomputation), and grouped exact evaluation
// via CTJ, generic LFTJ enumeration, and the materializing baseline.
//
// Paper shape to expect: caching wins by a widening margin as the path
// gets deeper and values are revisited ("orders of magnitude" in the CTJ
// paper); the baseline pays for materializing intermediate results.
#include <benchmark/benchmark.h>

#include "src/explore/session.h"
#include "src/gen/kg_gen.h"
#include "src/index/index_set.h"
#include "src/join/baseline.h"
#include "src/join/ctj.h"
#include "src/join/leapfrog.h"

namespace kgoa {
namespace {

struct Fixture {
  Fixture() : graph(GenerateKg(DbpediaLikeSpec(0.05))), indexes(graph) {
    // A 4-step path-counting chain with heavy value reuse: many distinct
    // prefixes converge on the same join values, which is exactly the
    // regime of Example IV.1 (LFTJ recomputes the shared suffixes, CTJ
    // caches them).
    chain = {MakePattern(Slot::MakeVar(0), Slot::MakeVar(1),
                         Slot::MakeVar(2)),
             MakePattern(Slot::MakeVar(2), Slot::MakeVar(3),
                         Slot::MakeVar(4)),
             MakePattern(Slot::MakeVar(4), Slot::MakeVar(5),
                         Slot::MakeVar(6)),
             MakePattern(Slot::MakeVar(6), Slot::MakeConst(graph.rdf_type()),
                         Slot::MakeVar(7))};
    in_vars = {kNoVar, 2, 4, 6};

    ExplorationSession session(graph);
    chart_query = std::make_unique<ChainQuery>(
        session.BuildQuery(ExpansionKind::kOutProperty));
  }
  Graph graph;
  IndexSet indexes;
  std::vector<TriplePattern> chain;
  std::vector<VarId> in_vars;
  std::unique_ptr<ChainQuery> chart_query;
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_PathCountCtjCached(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    ChainSuffixCounter counter(f.indexes, f.chain, f.in_vars);
    benchmark::DoNotOptimize(counter.CountAll());
  }
}
BENCHMARK(BM_PathCountCtjCached)->Unit(benchmark::kMillisecond);

void BM_PathCountLftjUncached(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    ChainSuffixCounter counter(f.indexes, f.chain, f.in_vars);
    counter.set_caching_enabled(false);
    benchmark::DoNotOptimize(counter.CountAll());
  }
}
BENCHMARK(BM_PathCountLftjUncached)->Unit(benchmark::kMillisecond);

void BM_ChartExactCtj(benchmark::State& state) {
  Fixture& f = GetFixture();
  CtjEngine engine(f.indexes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Evaluate(*f.chart_query));
  }
}
BENCHMARK(BM_ChartExactCtj)->Unit(benchmark::kMillisecond);

void BM_ChartExactLftjEnumeration(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateWithLftj(f.indexes, *f.chart_query));
  }
}
BENCHMARK(BM_ChartExactLftjEnumeration)->Unit(benchmark::kMillisecond);

void BM_ChartExactBaseline(benchmark::State& state) {
  Fixture& f = GetFixture();
  BaselineEngine engine(f.indexes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Evaluate(*f.chart_query));
  }
}
BENCHMARK(BM_ChartExactBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kgoa

BENCHMARK_MAIN();
