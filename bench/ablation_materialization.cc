// Materialization vs online aggregation (section I / II of the paper):
// systems like GraFa precompute chart counts, which is fast for repeated
// charts but cannot cover the combinatorial space of exploration paths.
// This bench simulates a population of exploration sessions with repeat
// behaviour and compares three serving strategies on the SAME request
// stream:
//   * exact  — evaluate every chart with CTJ (no cache);
//   * cache  — materialize on first access, serve repeats from memory;
//   * audit  — Audit Join with a fixed per-chart time budget.
//
// Expected shape: the cache's hit rate saturates well below 100% (the
// exploration tail is long), its memory grows with every distinct chart,
// and its cold misses still pay the exact cost — while Audit Join's
// latency is bounded by construction at a small accuracy cost.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/explore/cache.h"
#include "src/explore/session.h"
#include "src/eval/runner.h"
#include "src/gen/workload.h"
#include "src/join/ctj.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,sessions,budget_ms");
  const double scale = flags.GetDouble("scale", 0.2);
  const int sessions = static_cast<int>(flags.GetInt("sessions", 60));
  const double budget = flags.GetDouble("budget_ms", 100) / 1000.0;

  std::printf("=== Materialization vs online aggregation ===\n\n");
  kgoa::bench::Dataset ds =
      kgoa::bench::BuildDataset(kgoa::DbpediaLikeSpec(scale));

  // Request stream: many short random sessions; seed reuse yields repeat
  // visits to popular charts (like users re-treading common paths).
  std::vector<kgoa::ExplorationQuery> stream;
  kgoa::Rng seed_rng(99);
  for (int s = 0; s < sessions; ++s) {
    kgoa::WorkloadOptions wl;
    wl.num_paths = 1;
    wl.max_steps = 3;
    wl.seed = 1 + seed_rng.Below(16);  // 16 distinct personas -> repeats
    for (auto& eq : GenerateWorkload(ds.graph, *ds.indexes, wl)) {
      stream.push_back(std::move(eq));
    }
  }
  std::printf("request stream: %zu chart requests\n\n", stream.size());

  kgoa::CtjEngine engine(*ds.indexes);

  // Strategy 1: always exact.
  std::vector<double> exact_latencies;
  {
    for (const auto& eq : stream) {
      kgoa::Stopwatch clock;
      const auto result = engine.Evaluate(eq.query);
      (void)result;
      exact_latencies.push_back(clock.ElapsedMillis());
    }
  }

  // Strategy 2: materialize on first access.
  kgoa::ChartCache cache;
  std::vector<double> cache_latencies;
  for (const auto& eq : stream) {
    kgoa::Stopwatch clock;
    if (cache.Lookup(eq.query) == nullptr) {
      cache.Insert(eq.query, engine.Evaluate(eq.query));
    }
    cache_latencies.push_back(clock.ElapsedMillis());
  }

  // Strategy 3: Audit Join with a fixed budget.
  std::vector<double> audit_latencies;
  std::vector<double> audit_errors;
  for (const auto& eq : stream) {
    kgoa::OlaRunOptions options;
    options.algo = kgoa::OlaAlgo::kAudit;
    options.duration_seconds = budget;
    options.checkpoints = 1;
    kgoa::Stopwatch clock;
    const auto run = RunOla(*ds.indexes, eq.query, eq.exact, options);
    audit_latencies.push_back(clock.ElapsedMillis());
    audit_errors.push_back(run.final_mae);
  }

  kgoa::TextTable table({"strategy", "median ms", "p95 ms", "max ms",
                         "median MAE", "memory"});
  auto row = [&](const char* name, std::vector<double> latencies,
                 double mae, const std::string& memory) {
    table.AddRow({name, kgoa::TextTable::Fmt(kgoa::Quantile(latencies, 0.5), 2),
                  kgoa::TextTable::Fmt(kgoa::Quantile(latencies, 0.95), 2),
                  kgoa::TextTable::Fmt(kgoa::Quantile(latencies, 1.0), 2),
                  kgoa::TextTable::FmtPercent(mae), memory});
  };
  row("exact (CTJ)", exact_latencies, 0.0, "-");
  row("materialized", cache_latencies, 0.0,
      std::to_string(cache.ApproxMemoryBytes() / 1024) + " KiB");
  row("audit join", audit_latencies, kgoa::Quantile(audit_errors, 0.5),
      "-");
  std::printf("%s\n", table.ToString().c_str());
  std::printf("cache: %zu distinct charts, hit rate %s\n", cache.entries(),
              kgoa::TextTable::FmtPercent(cache.HitRate()).c_str());
  return 0;
}
