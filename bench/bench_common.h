// Shared setup for the figure/table reproduction benches: dataset
// construction at a configurable scale, timing helpers, and common
// formatting. Every bench binary accepts:
//   --scale=<f>    multiplier on dataset size (default per bench)
//   --seconds=<f>  online-aggregation budget per query
//   --paths=<n>    exploration paths per graph for workload benches
// and runs with sensible defaults when given no arguments.
#ifndef KGOA_BENCH_BENCH_COMMON_H_
#define KGOA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/gen/kg_gen.h"
#include "src/index/index_set.h"
#include "src/rdf/graph.h"
#include "src/util/stopwatch.h"

namespace kgoa::bench {

struct Dataset {
  std::string name;
  Graph graph;
  std::unique_ptr<IndexSet> indexes;
  double generate_seconds = 0;
  double index_seconds = 0;
};

inline Dataset BuildDataset(const KgSpec& spec) {
  Dataset ds;
  ds.name = spec.name;
  Stopwatch clock;
  ds.graph = GenerateKg(spec);
  ds.generate_seconds = clock.ElapsedSeconds();
  clock.Restart();
  ds.indexes = std::make_unique<IndexSet>(ds.graph);
  ds.index_seconds = clock.ElapsedSeconds();
  std::printf("[setup] %s: %zu triples (generated in %.1fs, indexed in %.1fs)\n",
              ds.name.c_str(), ds.graph.NumTriples(), ds.generate_seconds,
              ds.index_seconds);
  std::fflush(stdout);
  return ds;
}

}  // namespace kgoa::bench

#endif  // KGOA_BENCH_BENCH_COMMON_H_
