// Reproduces Table I (dataset information): name, triples, classes and
// properties of the two evaluation graphs, alongside the statistics of the
// paper's originals for comparison. The reproduction substitutes synthetic
// generators for the public dumps (DESIGN.md section 4); this bench
// documents the achieved shape: the DBpedia-like graph has ~4x the classes
// and ~2.7x the properties of the LGD-like graph, which in turn has ~3x
// the triples — the ratios the paper's analysis leans on.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/registry.h"
#include "src/util/flags.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale");
  const double scale = flags.GetDouble("scale", 0.25);

  std::printf("=== Table I: dataset information (scale %.2f) ===\n\n", scale);

  kgoa::TextTable table({"Dataset", "Triples", "Classes", "Props",
                         "Index MiB", "Gen (s)", "Index (s)", "Sort (ms)",
                         "Hash (ms)"});
  for (const kgoa::KgSpec& spec :
       {kgoa::DbpediaLikeSpec(scale), kgoa::LgdLikeSpec(scale)}) {
    kgoa::bench::Dataset ds = kgoa::bench::BuildDataset(spec);
    const kgoa::IndexBuildStats& stats = ds.indexes->build_stats();
    double sort_ms = 0;
    double hash_ms = 0;
    for (int o = 0; o < kgoa::kNumIndexOrders; ++o) {
      sort_ms += stats.sort_ms[o];
      hash_ms += stats.hash_ms[o];
    }
    table.AddRow({ds.name, std::to_string(ds.graph.NumTriples()),
                  std::to_string(ds.graph.Classes().size()),
                  std::to_string(ds.graph.Properties().size()),
                  std::to_string(ds.indexes->ApproxMemoryBytes() >> 20),
                  kgoa::TextTable::Fmt(ds.generate_seconds, 1),
                  kgoa::TextTable::Fmt(ds.index_seconds, 1),
                  kgoa::TextTable::Fmt(sort_ms, 0),
                  kgoa::TextTable::Fmt(hash_ms, 0)});

    // Machine-readable per-dataset build record: per-order sort/hash times,
    // entry counts, resident bytes (grep '^trace ').
    kgoa::MetricsRegistry registry;
    kgoa::ExportMetrics(*ds.indexes, "index." + ds.name + ".", &registry);
    registry.SetGauge("index." + ds.name + ".generate_seconds",
                      ds.generate_seconds);
    std::printf("trace %s\n", registry.ToJson().c_str());
  }
  std::printf("\n%s\n", table.ToString().c_str());

  std::printf("Paper originals for reference:\n");
  kgoa::TextTable paper({"Dataset", "Version", "Size", "Triples", "Classes",
                         "Props"});
  paper.AddRow({"DBpedia", "3.6", "4.9 GB", "432M", "370,082", "61,944"});
  paper.AddRow({"LGD", "2015-11", "14.0 GB", "1,217M", "1,147", "33,355"});
  std::printf("%s\n", paper.ToString().c_str());
  return 0;
}
