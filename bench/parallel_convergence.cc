// Parallel online aggregation: live convergence traces and deterministic
// scaling (src/ola/parallel.h).
//
// Part 1 runs the worker-pool executor in deadline mode on the root
// out-property expansion and prints one JSON snapshot line per sampling
// tick *while the workers are still walking* — elapsed time, walk rate,
// rejection rate, the merged engine counters (tipped / aborts / CTJ cache
// hits) and every group's running estimate with its 0.95 CI half-width.
// This is the raw data behind time-vs-error curves like Figure 8, scraped
// with `grep '^trace '`.
//
// Part 2 runs the deterministic walk-budget mode with the same budget on
// 1, 2 and 4 threads and checks the merged estimates are bit-identical —
// the executor's core guarantee (thread count affects wall-clock only).
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/eval/registry.h"
#include "src/eval/runner.h"
#include "src/explore/session.h"
#include "src/join/ctj.h"
#include "src/ola/parallel.h"
#include "src/util/flags.h"

namespace kgoa {
namespace {

void LiveTrace(const bench::Dataset& ds, const ChainQuery& query,
               const GroupedResult& exact, double seconds, int threads) {
  std::printf("\n--- deadline mode, %d threads, %.2fs, live snapshots ---\n",
              threads, seconds);
  ParallelOlaOptions options;
  options.threads = threads;
  options.walk_order = DefaultAuditOrder(query);
  options.snapshot_period = seconds / 8;
  const ParallelOlaExecutor executor(*ds.indexes, query, options);

  int snapshots = 0;
  const ParallelOlaResult run = executor.RunForDuration(
      seconds, [&](const OlaSnapshot& snapshot) {
        ++snapshots;
        std::printf("trace %s\n", SnapshotJson(snapshot).c_str());
      });

  // Error of the merged final estimate against the exact result.
  double mae = 0;
  for (const auto& [group, count] : exact.counts) {
    mae += std::abs(run.estimates.Estimate(group) -
                    static_cast<double>(count)) /
           static_cast<double>(count);
  }
  if (!exact.counts.empty()) mae /= static_cast<double>(exact.counts.size());
  std::printf("%d snapshots, %llu walks (%.0f walks/s), final MAE %.2f%%\n",
              snapshots,
              static_cast<unsigned long long>(run.estimates.walks()),
              run.elapsed_seconds > 0
                  ? static_cast<double>(run.estimates.walks()) /
                        run.elapsed_seconds
                  : 0.0,
              100.0 * mae);
  std::fflush(stdout);
}

bool BitIdentical(const GroupedEstimates& a, const GroupedEstimates& b) {
  if (a.walks() != b.walks() || a.rejected_walks() != b.rejected_walks()) {
    return false;
  }
  const auto ea = a.Estimates();
  const auto eb = b.Estimates();
  if (ea.size() != eb.size()) return false;
  for (const auto& [group, estimate] : ea) {
    const auto it = eb.find(group);
    if (it == eb.end() || it->second != estimate) return false;
    if (a.CiHalfWidth(group) != b.CiHalfWidth(group)) return false;
  }
  return true;
}

void DeterministicScaling(const bench::Dataset& ds, const ChainQuery& query,
                          uint64_t budget) {
  std::printf("\n--- walk-budget mode, %llu walks, 4 logical workers ---\n",
              static_cast<unsigned long long>(budget));
  ParallelOlaOptions options;
  options.workers = 4;
  options.walk_order = DefaultAuditOrder(query);

  GroupedEstimates reference;
  bool all_identical = true;
  for (int threads : {1, 2, 4}) {
    options.threads = threads;
    const ParallelOlaExecutor executor(*ds.indexes, query, options);
    const ParallelOlaResult run = executor.RunWalkBudget(budget);
    std::printf(
        "threads=%d: %.3fs, %.0f walks/s, %llu tipped, %llu cache hits\n",
        threads, run.elapsed_seconds,
        run.elapsed_seconds > 0
            ? static_cast<double>(budget) / run.elapsed_seconds
            : 0.0,
        static_cast<unsigned long long>(run.counters.tipped_walks),
        static_cast<unsigned long long>(run.counters.ctj_cache_hits));
    if (threads == 1) {
      reference = run.estimates;
    } else if (!BitIdentical(reference, run.estimates)) {
      all_identical = false;
    }
  }
  std::printf("merged estimates bit-identical across thread counts: %s\n",
              all_identical ? "yes" : "NO (BUG)");
  std::fflush(stdout);
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,seconds,threads,budget");
  const double scale = flags.GetDouble("scale", 0.2);
  const double seconds = flags.GetDouble("seconds", 0.8);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const uint64_t budget =
      static_cast<uint64_t>(flags.GetInt("budget", 200'000));

  std::printf("=== Parallel OLA: live snapshots + deterministic budget ===\n");
  kgoa::bench::Dataset ds =
      kgoa::bench::BuildDataset(kgoa::DbpediaLikeSpec(scale));

  // Root out-property expansion: the paper's hardest interactive query
  // shape (thousands of groups, distinct).
  kgoa::ExplorationSession session(ds.graph);
  const kgoa::ChainQuery query =
      session.BuildQuery(kgoa::ExpansionKind::kOutProperty);
  const kgoa::GroupedResult exact =
      kgoa::CtjEngine(*ds.indexes).Evaluate(query);
  std::printf("query: out-property(Thing), %zu groups\n",
              exact.counts.size());

  kgoa::LiveTrace(ds, query, exact, seconds, threads);
  kgoa::DeterministicScaling(ds, query, budget);
  return 0;
}
