// Shared driver for the all-queries experiments (Figures 9, 10 and 11):
// generates the random exploration workload of a dataset, runs Wander Join
// (with the paper's per-query order selection) and Audit Join on every
// query, and renders per-step Tukey box statistics of the error over time.
#ifndef KGOA_BENCH_WORKLOAD_COMMON_H_
#define KGOA_BENCH_WORKLOAD_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/eval/runner.h"
#include "src/gen/workload.h"
#include "src/join/ctj.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace kgoa::bench {

struct QueryRun {
  int step = 1;
  std::string description;
  OlaRunResult wander;
  OlaRunResult audit;
};

struct WorkloadExperimentOptions {
  int paths = 25;
  int max_steps = 4;
  bool distinct = true;
  double seconds = 1.0;
  int checkpoints = 5;
  uint64_t seed = 7;
};

inline std::vector<QueryRun> RunWorkloadExperiment(
    const Dataset& ds, const WorkloadExperimentOptions& options) {
  WorkloadOptions wl;
  wl.num_paths = options.paths;
  wl.max_steps = options.max_steps;
  wl.seed = options.seed;
  const auto workload = GenerateWorkload(ds.graph, *ds.indexes, wl);
  std::printf("[setup] %s: %zu workload queries\n", ds.name.c_str(),
              workload.size());
  std::fflush(stdout);

  CtjEngine engine(*ds.indexes);
  std::vector<QueryRun> runs;
  for (const auto& eq : workload) {
    const ChainQuery query = eq.query.WithDistinct(options.distinct);
    const GroupedResult exact =
        options.distinct ? eq.exact : engine.Evaluate(query);
    if (exact.counts.empty()) continue;

    QueryRun run;
    run.step = eq.step;
    run.description = eq.description;

    const double select_budget =
        options.seconds / (4.0 * options.checkpoints);
    OlaRunOptions wj;
    wj.algo = OlaAlgo::kWander;
    wj.duration_seconds = options.seconds;
    wj.checkpoints = options.checkpoints;
    wj.walk_order = SelectBestWalkOrder(*ds.indexes, query, exact,
                                        OlaAlgo::kWander, select_budget, 5);
    run.wander = RunOla(*ds.indexes, query, exact, wj);

    OlaRunOptions aj = wj;
    aj.algo = OlaAlgo::kAudit;
    aj.walk_order = SelectBestWalkOrder(*ds.indexes, query, exact,
                                        OlaAlgo::kAudit, select_budget, 5);
    run.audit = RunOla(*ds.indexes, query, exact, aj);

    // Machine-readable convergence trace per query and algorithm.
    std::printf("trace %s\n",
                OlaTraceJson("WJ " + ds.name + " " + run.description,
                             run.wander)
                    .c_str());
    std::printf("trace %s\n",
                OlaTraceJson("AJ " + ds.name + " " + run.description,
                             run.audit)
                    .c_str());
    runs.push_back(std::move(run));
  }
  return runs;
}

// Prints, per exploration step, Tukey box statistics (whisker-lo, q1,
// median, q3, whisker-hi) of the per-query MAE at each checkpoint — the
// text form of one row of Figure 9/10.
inline void PrintStepBoxes(const std::string& dataset,
                           const std::vector<QueryRun>& runs,
                           int checkpoints, int max_steps) {
  for (int step = 1; step <= max_steps; ++step) {
    std::vector<const QueryRun*> of_step;
    for (const QueryRun& run : runs) {
      if (run.step == step) of_step.push_back(&run);
    }
    if (of_step.empty()) continue;
    std::printf("\n--- %s, exploration step %d (%zu queries) ---\n",
                dataset.c_str(), step, of_step.size());
    for (const char* algo : {"WJ", "AJ"}) {
      TextTable table({"t (s)", "whisker-lo", "q1", "median", "q3",
                       "whisker-hi"});
      for (int cp = 0; cp < checkpoints; ++cp) {
        std::vector<double> maes;
        double t = 0;
        for (const QueryRun* run : of_step) {
          const auto& points = std::string(algo) == "WJ"
                                   ? run->wander.points
                                   : run->audit.points;
          maes.push_back(points[cp].mae);
          t = points[cp].seconds;
        }
        const TukeyBox box = MakeTukeyBox(maes);
        table.AddRow({TextTable::Fmt(t, 2),
                      TextTable::FmtPercent(box.whisker_lo),
                      TextTable::FmtPercent(box.q1),
                      TextTable::FmtPercent(box.median),
                      TextTable::FmtPercent(box.q3),
                      TextTable::FmtPercent(box.whisker_hi)});
      }
      std::printf("%s MAE distribution:\n%s", algo,
                  table.ToString().c_str());
    }
    std::fflush(stdout);
  }
}

}  // namespace kgoa::bench

#endif  // KGOA_BENCH_WORKLOAD_COMMON_H_
