// Update load: time-to-CI and estimate error while writes land
// (src/core/mutable_graph.h, DESIGN.md §13).
//
// Three runs over the SAME generated base graph (GenerateKg is
// deterministic): a read-only baseline (0% write mix, clean base), then
// the same deadline-mode chart at 1% and 10% write mixes. Each write mix
// lands HALF its quota before the chart pins its snapshot — so the
// pinned version reads through a merged delta overlay of that size and
// every walk pays the overlay-merge cost — while a writer thread races
// the serving with the remaining half in small batches (publishing
// epochs and evicting stale caches under the chart's feet). The chart
// pins its snapshot at submit, so the estimates converge toward the
// PINNED epoch's exact counts no matter how many epochs the writer
// publishes — the bench reports the time until the top group's 0.95 CI
// half-width drops below a relative target, the mean absolute error
// against the pinned epoch's exact CTJ counts at that moment, and
// finally the cost of compacting the accumulated overlay.
//
// The machine-readable result is one `update_trace {json}` line (scraped
// by scripts/bench_json.sh into BENCH_update.json). Set
// KGOA_BENCH_QUICK=1 for a smoke-sized run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/core/explorer.h"
#include "src/gen/kg_gen.h"
#include "src/eval/registry.h"
#include "src/eval/runner.h"
#include "src/explore/session.h"
#include "src/join/ctj.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"

namespace kgoa {
namespace {

// Single-threaded startup read, before any pool exists.
bool BenchQuick() {
  return std::getenv("KGOA_BENCH_QUICK") != nullptr;  // NOLINT(concurrency-mt-unsafe)
}

// True once the snapshot's largest group has a relative CI half-width at
// or below `target` (with enough walks for the interval to mean
// something). Tipped-to-exact groups (CI 0) satisfy any target.
bool CiTargetReached(const GroupedEstimates& estimates, double target) {
  if (estimates.walks() < 1000) return false;
  double top_estimate = 0;
  uint64_t top_group = 0;
  for (const auto& [group, estimate] : estimates.Estimates()) {
    if (estimate > top_estimate) {
      top_estimate = estimate;
      top_group = group;
    }
  }
  if (top_estimate <= 0) return false;
  return estimates.CiHalfWidth(top_group) <= target * top_estimate;
}

// Mean absolute error of `estimates` against the exact counts, averaged
// over the exact result's groups (groups the walks never sampled count
// with estimate 0). `rel_mae` gets the total absolute error over the
// total exact count — scale-free, comparable across write mixes.
double MeanAbsoluteError(const GroupedEstimates& estimates,
                         const GroupedResult& exact, double* rel_mae) {
  const auto ests = estimates.Estimates();
  double sum_abs = 0;
  double sum_exact = 0;
  for (const auto& [group, count] : exact.counts) {
    const auto it = ests.find(group);
    const double estimate = it == ests.end() ? 0.0 : it->second;
    sum_abs += std::abs(estimate - static_cast<double>(count));
    sum_exact += static_cast<double>(count);
  }
  if (rel_mae != nullptr) {
    *rel_mae = sum_exact > 0 ? sum_abs / sum_exact : 0.0;
  }
  return exact.counts.empty() ? 0.0
                              : sum_abs / static_cast<double>(exact.counts.size());
}

// Applies `quota` triple changes in small deterministic batches (two
// thirds inserts recombined over the base graph's term pools — mostly
// fresh triples, same distribution — one third deletes of base triples),
// until the quota is spent or `stop` is raised. The 1 ms pause between
// batches only applies when `paced` (the racing writer); the pre-batch
// half of the quota lands as fast as Apply allows. No interning — every
// TermId already exists, so walks racing this never touch the
// dictionary. Returns the live-set flips actually applied (inserts may
// no-op on duplicates).
uint64_t ApplyWrites(Explorer& explorer, const std::vector<Triple>& base,
                     uint64_t quota, uint64_t seed, bool paced,
                     const std::atomic<bool>& stop) {
  uint64_t applied = 0;
  if (quota == 0 || base.empty()) return applied;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, base.size() - 1);
  constexpr uint64_t kBatch = 256;
  for (uint64_t spent = 0; spent < quota && !stop.load(std::memory_order_relaxed);
       spent += kBatch) {
    const uint64_t n = std::min(kBatch, quota - spent);
    std::vector<Triple> inserts;
    std::vector<Triple> deletes;
    for (uint64_t i = 0; i < n; ++i) {
      if (i % 3 == 2) {
        deletes.push_back(base[pick(rng)]);
      } else {
        inserts.push_back(Triple{base[pick(rng)].s, base[pick(rng)].p,
                                 base[pick(rng)].o});
      }
    }
    applied += explorer.Apply(inserts, deletes);
    if (paced) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return applied;
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,threads,ci_target");
  const bool quick = kgoa::BenchQuick();
  const double scale = flags.GetDouble("scale", quick ? 0.05 : 0.2);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const double ci_target =
      flags.GetDouble("ci_target", quick ? 0.25 : 0.05);
  const double give_up = quick ? 20.0 : 60.0;

  struct Mix {
    const char* label;  // gauge key fragment: update.<label>_*
    double fraction;    // written triples as a share of the base size
  };
  const Mix mixes[] = {{"w0", 0.0}, {"w1", 0.01}, {"w10", 0.10}};

  std::printf("=== Update load: time-to-CI at 0%%/1%%/10%% write mix ===\n");
  kgoa::MetricsRegistry registry;
  registry.SetCounter("update.threads", static_cast<uint64_t>(threads));
  registry.SetGauge("update.ci_target", ci_target);

  double baseline_seconds = 0;
  const kgoa::KgSpec spec = kgoa::DbpediaLikeSpec(scale);
  for (const Mix& mix : mixes) {
    // A fresh explorer per mix: every run starts from the identical
    // epoch-1 base, so the ablation isolates the write load.
    kgoa::Stopwatch setup;
    kgoa::Graph graph = kgoa::GenerateKg(spec);
    const std::vector<kgoa::Triple> base = graph.triples();
    kgoa::Explorer explorer(std::move(graph));
    std::printf("[setup] %s: %zu triples (generated + indexed in %.1fs)\n",
                spec.name.c_str(), base.size(), setup.ElapsedSeconds());
    std::fflush(stdout);

    kgoa::ServingCore::Options serving;
    serving.threads = threads;
    explorer.ConfigureServing(serving);

    // Root out-property expansion: the paper's hardest interactive shape
    // (thousands of groups, distinct), same query as serve_concurrency.
    kgoa::ExplorationSession session = explorer.NewSession();
    const kgoa::ChainQuery query =
        session.BuildQuery(kgoa::ExpansionKind::kOutProperty);

    // Half the quota lands BEFORE the pin, so the served version reads
    // through an overlay proportional to the write mix; the other half
    // races the serving from a writer thread.
    const uint64_t quota = static_cast<uint64_t>(
        std::llround(mix.fraction * static_cast<double>(base.size())));
    std::atomic<bool> stop{false};
    uint64_t pre_applied = kgoa::ApplyWrites(explorer, base, quota / 2,
                                             /*seed=*/1234, /*paced=*/false,
                                             stop);

    // Pin BEFORE the racing writer starts: the chart serves exactly this
    // version, and the MAE below is measured against its exact counts
    // (evaluated on the same pinned snapshot, through the same overlay).
    const kgoa::GraphSnapshot pinned = explorer.snapshot();
    const kgoa::GroupedResult exact =
        kgoa::CtjEngine(pinned.indexes()).Evaluate(query);

    uint64_t raced_applied = 0;
    // kgoa-lint: allow(raw-thread) the racing writer IS the workload being measured
    std::thread writer([&] {
      raced_applied =
          kgoa::ApplyWrites(explorer, base, quota - quota / 2,
                            /*seed=*/5678, /*paced=*/true, stop);
    });

    kgoa::ChartJobOptions job;
    job.walk_budget = 0;  // deadline mode
    job.deadline_seconds = give_up;
    job.workers = threads;
    job.max_concurrency = threads;
    job.seed = 7;
    job.walk_order = kgoa::DefaultAuditOrder(query);
    job.snapshot = pinned;

    kgoa::Stopwatch clock;
    const kgoa::ChartHandle handle = explorer.SubmitChart(query, job);
    double reached = 0;
    kgoa::GroupedEstimates at_target;
    while (clock.ElapsedSeconds() < give_up) {
      kgoa::ParallelOlaResult snapshot = handle.Snapshot();
      if (kgoa::CiTargetReached(snapshot.estimates, ci_target)) {
        reached = clock.ElapsedSeconds();
        at_target = std::move(snapshot.estimates);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    handle.Finish();
    if (reached == 0) {
      reached = give_up;
      at_target = handle.Await().estimates;
    } else {
      handle.Await();
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();

    double rel_mae = 0;
    const double mae = kgoa::MeanAbsoluteError(at_target, exact, &rel_mae);
    if (mix.fraction == 0.0) baseline_seconds = reached;
    const double slowdown =
        baseline_seconds > 0 ? reached / baseline_seconds : 0.0;

    // The writer's leftovers: fold the overlay back into a clean base.
    kgoa::Stopwatch fold;
    explorer.Compact();
    const double compact_seconds = fold.ElapsedSeconds();

    std::printf(
        "%4s: %.3fs to %.0f%% CI (%llu walks, MAE %.2f, rel %.4f, "
        "%llu pre + %llu raced writes of %llu, compact %.3fs)\n",
        mix.label, reached, 100.0 * ci_target,
        static_cast<unsigned long long>(at_target.walks()), mae, rel_mae,
        static_cast<unsigned long long>(pre_applied),
        static_cast<unsigned long long>(raced_applied),
        static_cast<unsigned long long>(quota), compact_seconds);
    std::fflush(stdout);

    const std::string key = std::string("update.") + mix.label;
    registry.SetGauge(key + "_seconds_to_ci", reached);
    registry.SetGauge(key + "_walks_to_ci",
                      static_cast<double>(at_target.walks()));
    registry.SetGauge(key + "_mae", mae);
    registry.SetGauge(key + "_rel_mae", rel_mae);
    registry.SetGauge(key + "_write_triples",
                      static_cast<double>(pre_applied + raced_applied));
    registry.SetGauge(key + "_compact_seconds", compact_seconds);
    if (mix.fraction > 0.0) registry.SetGauge(key + "_slowdown", slowdown);
    if (mix.fraction == 0.10) {
      // Export the epoch/overlay counters once, from the heaviest write
      // load (the epoch.* key set validated by bench_json.sh).
      kgoa::ExportMetrics(explorer.mutable_graph(), "epoch.", &registry);
    }
  }

  std::printf("update_trace %s\n", registry.ToJson().c_str());
  return 0;
}
