// Three generations of online aggregation side by side: Ripple Join
// (Haas & Hellerstein 1999), Wander Join (Li et al. 2016) and Audit Join
// (the paper), on the Figure-8-style selected queries.
//
// Expected shape (section II): Wander Join converges far faster than
// Ripple Join on selective joins (Ripple Join samples each relation
// independently, so joining samples rarely produces matches), and Audit
// Join beats both — this contextualizes the paper's choice of Wander Join
// as the baseline to improve on.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/explore/session.h"
#include "src/join/ctj.h"
#include "src/ola/ripple.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace kgoa {
namespace {

double RippleMae(const IndexSet& indexes, const ChainQuery& query,
                 const GroupedResult& exact, double seconds,
                 double* coverage) {
  RippleJoin ripple(indexes, query);
  Stopwatch clock;
  while (clock.ElapsedSeconds() < seconds && !ripple.exhausted()) {
    ripple.RunRound();
  }
  *coverage = ripple.MinCoverage();
  double sum = 0;
  for (const auto& [group, count] : exact.counts) {
    sum += std::abs(ripple.Estimate(group) - static_cast<double>(count)) /
           static_cast<double>(count);
  }
  return exact.counts.empty() ? 0 : sum / exact.counts.size();
}

double OlaMae(const IndexSet& indexes, const ChainQuery& query,
              const GroupedResult& exact, OlaAlgo algo, double seconds,
              const std::string& trace_label) {
  OlaRunOptions options;
  options.algo = algo;
  options.duration_seconds = seconds;
  options.checkpoints = 1;
  if (algo == OlaAlgo::kWander) {
    options.walk_order = SelectBestWalkOrder(indexes, query, exact, algo,
                                             seconds / 6, 3);
  }
  const OlaRunResult run = RunOla(indexes, query, exact, options);
  std::printf("trace %s\n",
              OlaTraceJson(std::string(OlaAlgoName(algo)) + " " + trace_label,
                           run)
                  .c_str());
  return run.final_mae;
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,seconds");
  const double scale = flags.GetDouble("scale", 0.2);
  const double seconds = flags.GetDouble("seconds", 0.5);

  std::printf("=== Ripple Join vs Wander Join vs Audit Join ===\n");
  std::printf("(scale %.2f, %.1fs per algorithm per query, distinct)\n\n",
              scale, seconds);

  kgoa::bench::Dataset ds =
      kgoa::bench::BuildDataset(kgoa::DbpediaLikeSpec(scale));
  kgoa::CtjEngine engine(*ds.indexes);

  // Three queries of increasing depth along a drill-down session.
  kgoa::ExplorationSession session(ds.graph);
  std::vector<std::pair<std::string, kgoa::ChainQuery>> queries;
  const kgoa::ExpansionKind trail[] = {kgoa::ExpansionKind::kSubclass,
                                       kgoa::ExpansionKind::kOutProperty,
                                       kgoa::ExpansionKind::kObject};
  for (kgoa::ExpansionKind expansion : trail) {
    if (!session.IsLegal(expansion)) break;
    kgoa::ChainQuery q = session.BuildQuery(expansion);
    const kgoa::GroupedResult exact = engine.Evaluate(q);
    if (exact.counts.empty()) break;
    queries.emplace_back(kgoa::ExpansionName(expansion), q);
    kgoa::TermId pick = kgoa::kInvalidTerm;
    uint64_t best = 0;
    for (const auto& [group, count] : exact.counts) {
      if (group == ds.graph.rdf_type() || group == ds.graph.subclass_of()) {
        continue;
      }
      if (count > best) {
        pick = group;
        best = count;
      }
    }
    if (pick == kgoa::kInvalidTerm) break;
    session.ExpandAndSelect(expansion, pick);
  }

  for (bool distinct : {true, false}) {
    std::printf("\n%s:\n", distinct ? "COUNT(DISTINCT beta)" : "COUNT(beta)");
    kgoa::TextTable table({"query", "groups", "RJ MAE", "RJ coverage",
                           "WJ MAE", "AJ MAE"});
    for (const auto& [label, base_query] : queries) {
      const kgoa::ChainQuery query = base_query.WithDistinct(distinct);
      const kgoa::GroupedResult exact = engine.Evaluate(query);
      double coverage = 0;
      const double rj =
          kgoa::RippleMae(*ds.indexes, query, exact, seconds, &coverage);
      table.AddRow(
          {label, std::to_string(exact.counts.size()),
           kgoa::TextTable::FmtPercent(rj),
           kgoa::TextTable::FmtPercent(coverage),
           kgoa::TextTable::FmtPercent(
               kgoa::OlaMae(*ds.indexes, query, exact, kgoa::OlaAlgo::kWander,
                            seconds, label)),
           kgoa::TextTable::FmtPercent(
               kgoa::OlaMae(*ds.indexes, query, exact, kgoa::OlaAlgo::kAudit,
                            seconds, label))});
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf(
      "\nNote: at reproduction scale Ripple Join may exhaust a pattern's\n"
      "extent within the budget (coverage 100%% = exact); on the paper's\n"
      "billion-triple graphs its coverage would stay near zero, which is\n"
      "why Wander Join superseded it for selective joins.\n");
  return 0;
}
