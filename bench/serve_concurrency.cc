// Serving-core concurrency: time-to-CI-width under contention and
// cancellation latency (src/ola/parallel.h).
//
// Part 1 measures interactive convergence the way the serving core
// delivers it: a chart job is submitted with a far-away deadline, its
// live Snapshot() is polled until the top group's 0.95 CI half-width
// drops below a relative target, and the job is cancelled. The measured
// time-to-target is taken once for a solo job (the whole pool to itself)
// and once for 4 concurrent jobs time-slicing the same pool — the
// slowdown quantifies what fair sharing costs a single chart.
//
// Part 2 measures cancellation latency: how long after Cancel() the pool
// is free again (the core's last_cancel_latency stat — the gap between
// the cancel request and the scheduler retiring the job). The contract is
// at most one walk quantum per running slot.
//
// The machine-readable result is one `serve_trace {json}` line (scraped
// by scripts/bench_json.sh into BENCH_serve.json). Set KGOA_BENCH_QUICK=1
// for a smoke-sized run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/eval/registry.h"
#include "src/eval/runner.h"
#include "src/explore/session.h"
#include "src/ola/parallel.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"

namespace kgoa {
namespace {

// Single-threaded startup read, before any pool exists.
bool BenchQuick() {
  return std::getenv("KGOA_BENCH_QUICK") != nullptr;  // NOLINT(concurrency-mt-unsafe)
}

// True once the snapshot's largest group has a relative CI half-width at
// or below `target` (with enough walks for the interval to mean
// something). Tipped-to-exact groups (CI 0) satisfy any target.
bool CiTargetReached(const GroupedEstimates& estimates, double target) {
  if (estimates.walks() < 1000) return false;
  double top_estimate = 0;
  uint64_t top_group = 0;
  for (const auto& [group, estimate] : estimates.Estimates()) {
    if (estimate > top_estimate) {
      top_estimate = estimate;
      top_group = group;
    }
  }
  if (top_estimate <= 0) return false;
  return estimates.CiHalfWidth(top_group) <= target * top_estimate;
}

// Submits `jobs` identical deadline-mode jobs (distinct seeds), polls
// their live snapshots until every one reaches the CI target, cancels
// them, and returns the slowest job's time-to-target in seconds. Walks
// of the first job at its target time are returned through `walks`.
double TimeToCiTarget(ServingCore& core, const ChainQuery& query,
                      const std::vector<int>& walk_order, int jobs,
                      int workers, double target, double give_up_seconds,
                      uint64_t* walks) {
  std::vector<ChartHandle> handles;
  std::vector<double> reached(static_cast<std::size_t>(jobs), 0.0);
  Stopwatch clock;
  for (int j = 0; j < jobs; ++j) {
    ChartJobOptions options;
    options.deadline_seconds = give_up_seconds;
    options.workers = workers;
    options.seed = static_cast<uint64_t>(1 + j);
    options.walk_order = walk_order;
    handles.push_back(core.Submit(query, options));
  }
  int remaining = jobs;
  while (remaining > 0 && clock.ElapsedSeconds() < give_up_seconds) {
    for (int j = 0; j < jobs; ++j) {
      if (reached[static_cast<std::size_t>(j)] > 0) continue;
      const ParallelOlaResult snapshot = handles[static_cast<std::size_t>(j)].Snapshot();
      if (CiTargetReached(snapshot.estimates, target)) {
        reached[static_cast<std::size_t>(j)] = clock.ElapsedSeconds();
        if (j == 0 && walks != nullptr) *walks = snapshot.estimates.walks();
        --remaining;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (const ChartHandle& handle : handles) handle.Cancel();
  for (const ChartHandle& handle : handles) handle.Await();
  double slowest = 0;
  for (double t : reached) slowest = std::max(slowest, t);
  // A job that never reached the target counts as the give-up horizon.
  if (remaining > 0) slowest = give_up_seconds;
  return slowest;
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,threads,ci_target,cancels");
  const bool quick = kgoa::BenchQuick();
  const double scale = flags.GetDouble("scale", quick ? 0.05 : 0.2);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const double ci_target =
      flags.GetDouble("ci_target", quick ? 0.25 : 0.05);
  const int cancels = static_cast<int>(flags.GetInt("cancels", quick ? 3 : 8));
  const double give_up = quick ? 20.0 : 60.0;
  constexpr int kConcurrentJobs = 4;

  std::printf("=== Serving core: concurrent charts + cancellation ===\n");
  kgoa::bench::Dataset ds =
      kgoa::bench::BuildDataset(kgoa::DbpediaLikeSpec(scale));

  // Root out-property expansion: the paper's hardest interactive shape
  // (thousands of groups, distinct), same query as parallel_convergence.
  kgoa::ExplorationSession session(ds.graph);
  const kgoa::ChainQuery query =
      session.BuildQuery(kgoa::ExpansionKind::kOutProperty);
  const std::vector<int> walk_order = kgoa::DefaultAuditOrder(query);

  kgoa::ServingCore::Options core_options;
  core_options.threads = threads;
  kgoa::ServingCore core(*ds.indexes, core_options);

  std::printf("\n--- time to %.0f%% relative CI, %d pool threads ---\n",
              100.0 * ci_target, threads);
  uint64_t solo_walks = 0;
  const double solo_seconds = kgoa::TimeToCiTarget(
      core, query, walk_order, 1, threads, ci_target, give_up, &solo_walks);
  std::printf("solo job:          %.3fs (%llu walks)\n", solo_seconds,
              static_cast<unsigned long long>(solo_walks));
  const double concurrent_seconds = kgoa::TimeToCiTarget(
      core, query, walk_order, kConcurrentJobs, threads, ci_target, give_up,
      nullptr);
  const double slowdown =
      solo_seconds > 0 ? concurrent_seconds / solo_seconds : 0.0;
  std::printf("%d concurrent jobs: %.3fs to the slowest target (%.1fx solo)\n",
              kConcurrentJobs, concurrent_seconds, slowdown);

  std::printf("\n--- cancellation latency, %d cancels ---\n", cancels);
  double latency_sum = 0;
  double latency_max = 0;
  for (int i = 0; i < cancels; ++i) {
    kgoa::ChartJobOptions options;
    options.deadline_seconds = give_up;
    options.workers = threads;
    options.walk_order = walk_order;
    const kgoa::ChartHandle handle = core.Submit(query, options);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    handle.Cancel();
    handle.Await();
    const double latency = core.stats().last_cancel_latency_seconds;
    latency_sum += latency;
    latency_max = std::max(latency_max, latency);
  }
  const double latency_mean =
      cancels > 0 ? latency_sum / static_cast<double>(cancels) : 0.0;
  std::printf("cancel -> pool freed: mean %.3fms, max %.3fms\n",
              1e3 * latency_mean, 1e3 * latency_max);

  const kgoa::ServeStats stats = core.stats();
  std::printf("\nscheduler: %llu quanta, %llu preemptions, %llu jobs "
              "(%llu cancelled)\n",
              static_cast<unsigned long long>(stats.quanta),
              static_cast<unsigned long long>(stats.preemptions),
              static_cast<unsigned long long>(stats.jobs_submitted),
              static_cast<unsigned long long>(stats.jobs_cancelled));

  kgoa::MetricsRegistry registry;
  kgoa::ExportMetrics(stats, "serve.", &registry);
  registry.SetGauge("serve.ci_target", ci_target);
  registry.SetGauge("serve.solo_seconds_to_ci", solo_seconds);
  registry.SetGauge("serve.solo_walks_to_ci",
                    static_cast<double>(solo_walks));
  registry.SetGauge("serve.concurrent_jobs",
                    static_cast<double>(kConcurrentJobs));
  registry.SetGauge("serve.concurrent_seconds_to_ci", concurrent_seconds);
  registry.SetGauge("serve.concurrent_slowdown", slowdown);
  registry.SetGauge("serve.cancel_latency_mean_seconds", latency_mean);
  registry.SetGauge("serve.cancel_latency_max_seconds", latency_max);
  std::printf("serve_trace %s\n", registry.ToJson().c_str());
  return 0;
}
