// Index storage tiers + block-max top-K chart serving.
//
// Part 1 — memory: builds the two Table I datasets and indexes each under
// both storage tiers (src/index/trie_index.h), reporting raw vs block
// resident bytes and the compression ratio. The acceptance target is a
// >= 2x reduction of the trie storage on both datasets while every
// estimate stays bit-identical across tiers (asserted by tests/
// index_test.cc and tests/shard_test.cc; this bench records the sizes).
//
// Part 2 — serving: on the DBpedia-like graph's hardest interactive
// shape (the root out-property expansion of Figure 4, thousands of
// groups), measures time-to-displayed-chart: a top-K job that prunes
// walks bound to groups that can no longer enter the displayed top 10
// and retires itself once the displayed chart converged, against the
// same job run to full convergence of every group. The speedup is what
// the block directory + top-K bound buy an interactive frontend.
//
// The machine-readable result is one `index_trace {json}` line (scraped
// by scripts/bench_json.sh into BENCH_index.json). Set KGOA_BENCH_QUICK=1
// for a smoke-sized run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "src/eval/registry.h"
#include "src/eval/runner.h"
#include "src/explore/session.h"
#include "src/ola/parallel.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"

namespace kgoa {
namespace {

// Single-threaded startup read, before any pool exists.
bool BenchQuick() {
  return std::getenv("KGOA_BENCH_QUICK") != nullptr;  // NOLINT(concurrency-mt-unsafe)
}

// Every positive group's 0.95 CI half-width within `target` of its own
// estimate — the "all bars stabilized" stopping rule, strictly stronger
// than displayed-chart convergence.
bool FullyConverged(const GroupedEstimates& estimates, double target) {
  if (estimates.walks() < 1000) return false;
  const auto groups = estimates.Estimates();
  if (groups.empty()) return false;
  for (const auto& [group, estimate] : groups) {
    if (estimate <= 0) continue;
    if (estimates.CiHalfWidth(group) > target * estimate) return false;
  }
  return true;
}

// Polls a deadline job until FullyConverged, then finishes it; returns
// the time to full convergence (the give-up horizon when never reached).
double TimeToFullConvergence(ServingCore& core, const ChainQuery& query,
                             const std::vector<int>& walk_order,
                             double target, double give_up_seconds) {
  ChartJobOptions options;
  options.deadline_seconds = give_up_seconds;
  options.workers = 4;
  options.walk_order = walk_order;
  Stopwatch clock;
  const ChartHandle handle = core.Submit(query, options);
  double reached = 0;
  while (clock.ElapsedSeconds() < give_up_seconds) {
    if (FullyConverged(handle.Snapshot().estimates, target)) {
      reached = clock.ElapsedSeconds();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  handle.Finish();
  handle.Await();
  return reached > 0 ? reached : give_up_seconds;
}

// Submits the same job in top-K mode (displayed K = 10, walk pruning on,
// self-finish on displayed convergence) and returns the time until the
// job retired itself with a converged displayed chart.
double TimeToDisplayedChart(ServingCore& core, const ChainQuery& query,
                            const std::vector<int>& walk_order, double target,
                            double give_up_seconds, uint64_t* pruned_walks) {
  ChartJobOptions options;
  options.deadline_seconds = give_up_seconds;
  options.workers = 4;
  options.walk_order = walk_order;
  options.top_k.k = 10;
  options.top_k.ci_target = target;
  options.finish_on_displayed_convergence = true;
  Stopwatch clock;
  const ParallelOlaResult result = core.Submit(query, options).Await();
  if (pruned_walks != nullptr) *pruned_walks = result.counters.pruned_walks;
  return result.displayed_converged ? clock.ElapsedSeconds()
                                    : give_up_seconds;
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,ci_target");
  const bool quick = kgoa::BenchQuick();
  const double scale = flags.GetDouble("scale", quick ? 0.05 : 0.2);
  const double ci_target =
      flags.GetDouble("ci_target", quick ? 0.25 : 0.05);
  const double give_up = quick ? 20.0 : 60.0;

  std::printf("=== Index memory: raw vs block tier + top-K serving ===\n");
  kgoa::MetricsRegistry registry;

  // Part 1: per-dataset tier sizes.
  double ratio_min = 0;
  std::unique_ptr<kgoa::IndexSet> dbpedia_block;
  kgoa::Graph dbpedia_graph;
  for (const kgoa::KgSpec& spec :
       {kgoa::DbpediaLikeSpec(scale), kgoa::LgdLikeSpec(scale)}) {
    kgoa::Stopwatch clock;
    kgoa::Graph graph = kgoa::GenerateKg(spec);
    const double generate_seconds = clock.ElapsedSeconds();
    clock.Restart();
    const kgoa::IndexSet raw(graph);
    const double raw_seconds = clock.ElapsedSeconds();
    clock.Restart();
    auto block = std::make_unique<kgoa::IndexSet>(
        graph, kgoa::IndexSetOptions{kgoa::StorageTier::kBlock});
    const double block_seconds = clock.ElapsedSeconds();

    const uint64_t raw_bytes = raw.RawStorageBytes();
    const uint64_t block_bytes = block->BlockStorageBytes();
    const double ratio = block_bytes > 0
                             ? static_cast<double>(raw_bytes) /
                                   static_cast<double>(block_bytes)
                             : 0.0;
    if (ratio_min == 0 || ratio < ratio_min) ratio_min = ratio;
    std::printf(
        "%s: %zu triples (generated in %.1fs)\n"
        "  raw tier   %8.1f MiB, built in %.2fs\n"
        "  block tier %8.1f MiB, built in %.2fs (encode %.0f ms) "
        "-> %.2fx smaller\n",
        spec.name.c_str(), graph.NumTriples(), generate_seconds,
        static_cast<double>(raw_bytes) / (1 << 20), raw_seconds,
        static_cast<double>(block_bytes) / (1 << 20), block_seconds,
        block->build_stats().compress_ms, ratio);

    const std::string key = "index." + spec.name;
    registry.SetCounter(key + ".raw_bytes", raw_bytes);
    registry.SetCounter(key + ".block_bytes", block_bytes);
    registry.SetGauge(key + ".memory_ratio", ratio);
    registry.SetGauge(key + ".compress_ms",
                      block->build_stats().compress_ms);
    if (spec.name == "dbpedia-like") {
      dbpedia_graph = std::move(graph);
      dbpedia_block = std::move(block);
    }
  }
  registry.SetGauge("index.memory_ratio_min", ratio_min);

  // Part 2: time-to-displayed-chart on the Figure 4 root out-property
  // expansion, served from the block tier.
  kgoa::ExplorationSession session(dbpedia_graph);
  const kgoa::ChainQuery query =
      session.BuildQuery(kgoa::ExpansionKind::kOutProperty);
  const std::vector<int> walk_order = kgoa::DefaultAuditOrder(query);

  kgoa::ServingCore::Options core_options;
  core_options.threads = 4;
  double full_seconds = 0;
  double topk_seconds = 0;
  uint64_t pruned_walks = 0;
  {
    kgoa::ServingCore core(*dbpedia_block, core_options);
    full_seconds = kgoa::TimeToFullConvergence(core, query, walk_order,
                                               ci_target, give_up);
  }
  {
    kgoa::ServingCore core(*dbpedia_block, core_options);
    topk_seconds = kgoa::TimeToDisplayedChart(
        core, query, walk_order, ci_target, give_up, &pruned_walks);
  }
  const double speedup =
      topk_seconds > 0 ? full_seconds / topk_seconds : 0.0;
  std::printf(
      "top-K serving (k=10, %.0f%% CI): displayed chart in %.3fs vs "
      "%.3fs to full convergence (%.2fx, %llu walks pruned)\n",
      100.0 * ci_target, topk_seconds, full_seconds, speedup,
      static_cast<unsigned long long>(pruned_walks));
  registry.SetGauge("index.ci_target", ci_target);
  registry.SetGauge("index.full_seconds_to_converged", full_seconds);
  registry.SetGauge("index.topk_seconds_to_displayed", topk_seconds);
  registry.SetGauge("index.topk_speedup", speedup);
  registry.SetCounter("index.topk_pruned_walks", pruned_walks);

  std::printf("index_trace %s\n", registry.ToJson().c_str());
  return 0;
}
