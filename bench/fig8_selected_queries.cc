// Reproduces Figure 8: for a selection of exploration queries on each
// graph (three per dataset, mirroring the paper's picks), prints the
// runtimes of the exact engines (the Virtuoso stand-in and CTJ) and the
// mean absolute error / 0.95 confidence interval of Wander Join and Audit
// Join at each checkpoint.
//
// Paper shapes to expect: the baseline is the slowest by a wide margin and
// degrades on the larger graph; CTJ is much faster but still not
// interactive on root expansions; AJ reaches low error in the first
// checkpoint while WJ's error stays high (often orders of magnitude
// apart), especially on the root out-property expansion whose thousands of
// groups each have near-1 selectivity.
#include <cstdio>
#include <optional>

#include "bench/bench_common.h"
#include "src/eval/metrics.h"
#include "src/eval/runner.h"
#include "src/explore/session.h"
#include "src/join/baseline.h"
#include "src/join/ctj.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace kgoa {
namespace {

struct SelectedQuery {
  std::string label;
  ChainQuery query;
  GroupedResult exact;
};

// Largest bar, optionally skipping the given categories.
TermId LargestGroup(const GroupedResult& result,
                    const std::vector<TermId>& skip = {}) {
  TermId best = kInvalidTerm;
  uint64_t best_count = 0;
  for (const auto& [group, count] : result.counts) {
    bool skipped = false;
    for (TermId s : skip) skipped = skipped || s == group;
    if (!skipped && count > best_count) {
      best = group;
      best_count = count;
    }
  }
  return best;
}

std::vector<SelectedQuery> SelectQueries(const Graph& graph,
                                         const IndexSet& indexes) {
  CtjEngine engine(indexes);
  std::vector<SelectedQuery> out;

  // (a/d) Out-property expansion of the root class Thing.
  {
    ExplorationSession session(graph);
    ChainQuery q = session.BuildQuery(ExpansionKind::kOutProperty);
    out.push_back({"out-property(Thing)", q, engine.Evaluate(q)});
  }

  // (b/e) Subclass expansion of the largest subclass of Thing.
  {
    ExplorationSession session(graph);
    const GroupedResult top =
        engine.Evaluate(session.BuildQuery(ExpansionKind::kSubclass));
    const TermId cls = LargestGroup(top);
    session.ExpandAndSelect(ExpansionKind::kSubclass, cls);
    ChainQuery q = session.BuildQuery(ExpansionKind::kSubclass);
    GroupedResult exact = engine.Evaluate(q);
    if (exact.counts.empty()) {
      // Degenerate taxonomy (no grandchildren): fall back to the
      // out-property expansion of the class.
      q = session.BuildQuery(ExpansionKind::kOutProperty);
      exact = engine.Evaluate(q);
    }
    out.push_back({"subclass(" +
                       std::string(graph.dict().Spell(cls)).substr(0, 40) +
                       ")",
                   q, std::move(exact)});
  }

  // (c/f) Object expansion after drilling into the top class and its top
  // non-type property (the paper's musicalArtist-style query).
  {
    ExplorationSession session(graph);
    const GroupedResult top =
        engine.Evaluate(session.BuildQuery(ExpansionKind::kSubclass));
    session.ExpandAndSelect(ExpansionKind::kSubclass, LargestGroup(top));
    const GroupedResult props =
        engine.Evaluate(session.BuildQuery(ExpansionKind::kOutProperty));
    // Largest property whose object expansion is non-empty (literal-valued
    // properties classify nothing).
    std::vector<TermId> skip{graph.rdf_type(), graph.subclass_of()};
    while (true) {
      const TermId prop = LargestGroup(props, skip);
      if (prop == kInvalidTerm) break;
      ExplorationSession candidate = session;
      candidate.ExpandAndSelect(ExpansionKind::kOutProperty, prop);
      ChainQuery q = candidate.BuildQuery(ExpansionKind::kObject);
      GroupedResult exact = engine.Evaluate(q);
      if (!exact.counts.empty()) {
        out.push_back(
            {"object(" +
                 std::string(graph.dict().Spell(prop)).substr(0, 40) + ")",
             q, std::move(exact)});
        break;
      }
      skip.push_back(prop);
    }
  }
  return out;
}

void RunDataset(const KgSpec& spec, double seconds, int checkpoints) {
  bench::Dataset ds = bench::BuildDataset(spec);
  const auto queries = SelectQueries(ds.graph, *ds.indexes);

  for (const SelectedQuery& sq : queries) {
    std::printf("\n--- %s / %s (distinct; %zu groups) ---\n",
                ds.name.c_str(), sq.label.c_str(), sq.exact.counts.size());

    // Exact engines.
    Stopwatch clock;
    BaselineEngine::Options bopt;
    bopt.max_rows = 400'000'000;
    const auto base = BaselineEngine(*ds.indexes, bopt).Evaluate(sq.query);
    const double baseline_seconds = clock.ElapsedSeconds();
    clock.Restart();
    const GroupedResult ctj = CtjEngine(*ds.indexes).Evaluate(sq.query);
    const double ctj_seconds = clock.ElapsedSeconds();
    if (!base.truncated && !(base.result == ctj)) {
      std::printf("!! exact engines disagree\n");
    }
    std::printf("exact: Virtuoso-like %s s%s | CTJ %.3f s\n",
                TextTable::Fmt(baseline_seconds, 3).c_str(),
                base.truncated ? " (aborted at row cap)" : "",
                ctj_seconds);

    // Online aggregation: WJ (best candidate order) and AJ.
    OlaRunOptions wj;
    wj.algo = OlaAlgo::kWander;
    wj.duration_seconds = seconds;
    wj.checkpoints = checkpoints;
    wj.walk_order = SelectBestWalkOrder(*ds.indexes, sq.query, sq.exact,
                                        OlaAlgo::kWander,
                                        seconds / (4.0 * checkpoints), 11);
    const OlaRunResult wj_run = RunOla(*ds.indexes, sq.query, sq.exact, wj);

    // AJ is "implemented on top of WJ" (section V-A): it gets the same
    // per-query order selection.
    OlaRunOptions aj = wj;
    aj.algo = OlaAlgo::kAudit;
    aj.walk_order = SelectBestWalkOrder(*ds.indexes, sq.query, sq.exact,
                                        OlaAlgo::kAudit,
                                        seconds / (4.0 * checkpoints), 11);
    const OlaRunResult aj_run = RunOla(*ds.indexes, sq.query, sq.exact, aj);

    TextTable table({"t (s)", "WJ MAE", "WJ CI", "AJ MAE", "AJ CI"});
    for (int cp = 0; cp < checkpoints; ++cp) {
      table.AddRow({TextTable::Fmt(wj_run.points[cp].seconds, 2),
                    TextTable::FmtPercent(wj_run.points[cp].mae),
                    TextTable::FmtPercent(wj_run.points[cp].mean_ci),
                    TextTable::FmtPercent(aj_run.points[cp].mae),
                    TextTable::FmtPercent(aj_run.points[cp].mean_ci)});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf(
        "rejection rate: WJ %s, AJ %s | walks: WJ %llu, AJ %llu (%llu "
        "tipped)\n",
        TextTable::FmtPercent(wj_run.rejection_rate).c_str(),
        TextTable::FmtPercent(aj_run.rejection_rate).c_str(),
        static_cast<unsigned long long>(wj_run.walks),
        static_cast<unsigned long long>(aj_run.walks),
        static_cast<unsigned long long>(aj_run.tipped));
    std::printf("trace %s\n",
                OlaTraceJson("WJ " + ds.name + " " + sq.label, wj_run)
                    .c_str());
    std::printf("trace %s\n",
                OlaTraceJson("AJ " + ds.name + " " + sq.label, aj_run)
                    .c_str());
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace kgoa

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,seconds,checkpoints");
  const double scale = flags.GetDouble("scale", 0.5);
  const double seconds = flags.GetDouble("seconds", 1.8);
  const int checkpoints =
      static_cast<int>(flags.GetInt("checkpoints", 9));

  std::printf("=== Figure 8: selected exploration queries ===\n");
  std::printf("(scale %.2f, %.1fs per algorithm per query, %d checkpoints; "
              "paper: 9s runs, reported per second)\n\n",
              scale, seconds, checkpoints);
  kgoa::RunDataset(kgoa::DbpediaLikeSpec(scale), seconds, checkpoints);
  kgoa::RunDataset(kgoa::LgdLikeSpec(scale), seconds, checkpoints);
  return 0;
}
