// Exploring and contrasting multiple knowledge graphs simultaneously —
// an extension the paper's conclusion envisages ("allowing users to
// explore and contrast multiple knowledge graphs simultaneously").
//
// Runs the same exploration step on two graphs side by side, with each
// chart served by Audit Join under the same interactive budget, and
// reports how the two datasets differ structurally (class counts,
// property usage) — the kind of comparison a data engineer makes when
// choosing a source.
//
//   ./compare_graphs [--scale=0.08] [--budget_ms=120]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/explorer.h"
#include "src/eval/profile.h"
#include "src/gen/kg_gen.h"
#include "src/util/flags.h"

namespace {

struct Side {
  std::string name;
  kgoa::Explorer explorer;
  kgoa::ExplorationSession session;

  Side(std::string n, kgoa::Graph graph)
      : name(std::move(n)),
        explorer(std::move(graph)),
        session(explorer.NewSession()) {}
};

void ShowSideBySide(Side& a, Side& b, kgoa::ExpansionKind expansion,
                    double budget) {
  std::printf("\n--- %s expansion ---\n", kgoa::ExpansionName(expansion));
  for (Side* side : {&a, &b}) {
    std::printf("%s:\n", side->name.c_str());
    if (!side->session.IsLegal(expansion)) {
      std::printf("  (not legal)\n");
      continue;
    }
    const kgoa::ChainQuery query = side->session.BuildQuery(expansion);
    const kgoa::Chart chart = side->explorer.ApproximateChart(
        query, budget, ResultBarKind(expansion));
    int shown = 0;
    for (const kgoa::Bar& bar : chart.bars) {
      if (++shown > 6) break;
      std::printf(
          "  %-45s ~%.0f\n",
          std::string(side->explorer.graph().dict().Spell(bar.category))
              .c_str(),
          bar.count);
    }
    // Advance each session along its own largest bar, skipping the
    // structural properties when following a property view.
    for (const kgoa::Bar& bar : chart.bars) {
      if (bar.category == side->explorer.graph().rdf_type() ||
          bar.category == side->explorer.graph().subclass_of()) {
        continue;
      }
      side->session.ExpandAndSelect(expansion, bar.category);
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,budget_ms");
  const double scale = flags.GetDouble("scale", 0.08);
  const double budget = flags.GetDouble("budget_ms", 120) / 1000.0;

  std::printf("generating both graphs (scale %.2f)...\n", scale);
  Side dbp("dbpedia-like", kgoa::GenerateKg(kgoa::DbpediaLikeSpec(scale)));
  Side lgd("lgd-like", kgoa::GenerateKg(kgoa::LgdLikeSpec(scale)));

  // Structural contrast.
  for (Side* side : {&dbp, &lgd}) {
    const kgoa::GraphProfile profile =
        kgoa::ProfileGraph(side->explorer.graph(), 3);
    std::printf(
        "%-13s %8zu triples, %5llu classes, %4llu properties, literal "
        "objects %.0f%%\n",
        side->name.c_str(), side->explorer.graph().NumTriples(),
        static_cast<unsigned long long>(profile.classes),
        static_cast<unsigned long long>(profile.properties),
        profile.literal_object_fraction * 100);
  }

  // Walk both graphs through the same expansion sequence.
  ShowSideBySide(dbp, lgd, kgoa::ExpansionKind::kSubclass, budget);
  ShowSideBySide(dbp, lgd, kgoa::ExpansionKind::kOutProperty, budget);
  ShowSideBySide(dbp, lgd, kgoa::ExpansionKind::kObject, budget);

  std::printf("\nfinal selections:\n  %s\n  %s\n",
              dbp.session.Describe().c_str(),
              lgd.session.Describe().c_str());
  return 0;
}
