// Replays the paper's Example III.1 exploration pattern on a synthetic
// DBpedia-like knowledge graph and renders each chart as ASCII bars:
// starting from the root class, drill down the class taxonomy, switch to
// the out-property view, follow a property to its objects, restrict them
// to a class, and view the out-properties of that restricted set — the
// final chart being the analogue of the paper's Figure 2.
//
// Each chart is served by Audit Join within an interactive budget and
// compared against the exact counts.
//
//   ./explore_session [--scale=0.1] [--budget_ms=150]
#include <algorithm>
#include <cstdio>
#include <string>

#include "src/core/explorer.h"
#include "src/gen/kg_gen.h"
#include "src/join/result.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"

namespace {

// Renders the approximate chart with exact counts alongside.
void PrintChart(const kgoa::Explorer& explorer, const kgoa::Chart& approx,
                const kgoa::GroupedResult& exact, const char* title,
                double budget_ms, double exact_ms) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(Audit Join %.0f ms vs exact %.1f ms)\n", budget_ms,
              exact_ms);
  double max_count = 1;
  for (const kgoa::Bar& bar : approx.bars) {
    max_count = std::max(max_count, bar.count);
  }
  int shown = 0;
  for (const kgoa::Bar& bar : approx.bars) {
    if (++shown > 12) {
      std::printf("  ... %zu more bars\n", approx.bars.size() - 12);
      break;
    }
    const int width = static_cast<int>(40.0 * bar.count / max_count);
    std::string name(explorer.graph().dict().Spell(bar.category));
    if (name.size() > 34) name = "..." + name.substr(name.size() - 31);
    std::printf("  %-34s |%-40s| ~%-9.0f (exact %llu)\n", name.c_str(),
                std::string(width, '#').c_str(), bar.count,
                static_cast<unsigned long long>(exact.CountFor(bar.category)));
  }
}

kgoa::TermId LargestGroup(const kgoa::GroupedResult& result,
                          const std::vector<kgoa::TermId>& skip = {}) {
  kgoa::TermId best = kgoa::kInvalidTerm;
  uint64_t best_count = 0;
  for (const auto& [group, count] : result.counts) {
    if (std::count(skip.begin(), skip.end(), group) > 0) continue;
    if (count > best_count) {
      best = group;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,budget_ms");
  const double scale = flags.GetDouble("scale", 0.1);
  const double budget_ms = flags.GetDouble("budget_ms", 150);

  std::printf("generating DBpedia-like graph (scale %.2f)...\n", scale);
  kgoa::Explorer explorer(kgoa::GenerateKg(kgoa::DbpediaLikeSpec(scale)));
  std::printf("%zu triples indexed\n", explorer.graph().NumTriples());

  kgoa::ExplorationSession session = explorer.NewSession();

  // The expansion trail of Example III.1, driven by largest-bar clicks.
  struct Step {
    kgoa::ExpansionKind expansion;
    const char* title;
  };
  const Step steps[] = {
      {kgoa::ExpansionKind::kSubclass, "subclasses of owl:Thing"},
      {kgoa::ExpansionKind::kSubclass, "subclasses of the largest class"},
      {kgoa::ExpansionKind::kOutProperty, "outgoing properties"},
      {kgoa::ExpansionKind::kObject, "classes of the property's objects"},
      {kgoa::ExpansionKind::kOutProperty,
       "out-properties of the restricted objects (Figure 2 analogue)"},
  };

  for (const Step& step : steps) {
    if (!session.IsLegal(step.expansion)) {
      std::printf("\n(%s not legal here; stopping)\n", step.title);
      break;
    }
    const kgoa::ChainQuery query = session.BuildQuery(step.expansion);

    kgoa::Stopwatch clock;
    const kgoa::GroupedResult exact = explorer.Evaluate(query);
    const double exact_ms = clock.ElapsedMillis();
    if (exact.counts.empty()) {
      std::printf("\n(%s: empty chart; stopping)\n", step.title);
      break;
    }
    const kgoa::Chart approx = explorer.ApproximateChart(
        query, budget_ms / 1000.0, ResultBarKind(step.expansion));
    PrintChart(explorer, approx, exact, step.title, budget_ms, exact_ms);

    // Click: the largest bar, skipping structural properties when picking
    // a property to follow.
    std::vector<kgoa::TermId> skip;
    if (step.expansion == kgoa::ExpansionKind::kOutProperty) {
      skip = {explorer.graph().rdf_type(), explorer.graph().subclass_of()};
    }
    kgoa::TermId pick = LargestGroup(exact, skip);
    if (pick == kgoa::kInvalidTerm) pick = LargestGroup(exact);
    std::printf("  -> selecting <%s>\n",
                std::string(explorer.graph().dict().Spell(pick)).c_str());
    session.ExpandAndSelect(step.expansion, pick);
  }

  std::printf("\nfinal selection: %s\n", session.Describe().c_str());
  return 0;
}
