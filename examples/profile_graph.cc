// Graph profiling, offline and online.
//
// Profiling systems (LODStats, ProLOD++ — section II of the paper)
// summarize a knowledge graph by its most popular classes and properties.
// The exact summary requires a full pass; this example computes it both
// ways: exactly via ProfileGraph, and interactively via Audit Join (the
// property distribution is just the root out-property expansion).
//
//   ./profile_graph [graph.bin] [--scale=0.1] [--budget_ms=100]
//
// With a path argument, profiles that binary snapshot (see
// src/rdf/binary_io.h); otherwise generates a DBpedia-like graph.
#include <cstdio>
#include <string>

#include "src/core/explorer.h"
#include "src/eval/profile.h"
#include "src/gen/kg_gen.h"
#include "src/rdf/binary_io.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"

int main(int argc, char** argv) {
  std::string snapshot;
  if (argc > 1 && argv[1][0] != '-') {
    snapshot = argv[1];
    --argc;
    ++argv;
  }
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,budget_ms");
  const double scale = flags.GetDouble("scale", 0.1);
  const double budget = flags.GetDouble("budget_ms", 100) / 1000.0;

  kgoa::Graph graph;
  if (!snapshot.empty()) {
    std::string error;
    auto loaded = kgoa::LoadGraphBinary(snapshot, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    graph = std::move(*loaded);
  } else {
    std::printf("generating DBpedia-like graph (scale %.2f)...\n", scale);
    graph = kgoa::GenerateKg(kgoa::DbpediaLikeSpec(scale));
  }

  // Offline profile: one exact pass.
  kgoa::Stopwatch clock;
  const kgoa::GraphProfile profile = kgoa::ProfileGraph(graph);
  const double profile_ms = clock.ElapsedMillis();
  std::printf("\n--- exact profile (%.1f ms) ---\n%s", profile_ms,
              kgoa::RenderProfile(graph, profile).c_str());

  // Online: approximate the per-property distinct-subject distribution
  // (the root out-property chart) within an interactive budget.
  kgoa::Explorer explorer(std::move(graph));
  kgoa::ExplorationSession session = explorer.NewSession();
  const kgoa::ChainQuery query =
      session.BuildQuery(kgoa::ExpansionKind::kOutProperty);

  clock.Restart();
  const kgoa::Chart chart = explorer.ApproximateChart(
      query, budget, kgoa::BarKind::kOutProperty);
  const double online_ms = clock.ElapsedMillis();
  clock.Restart();
  const kgoa::GroupedResult exact = explorer.Evaluate(query);
  const double exact_ms = clock.ElapsedMillis();

  std::printf(
      "\n--- property usage by distinct subjects: Audit Join %.0f ms vs "
      "exact %.1f ms ---\n",
      online_ms, exact_ms);
  int shown = 0;
  for (const kgoa::Bar& bar : chart.bars) {
    if (++shown > 10) break;
    std::printf("  %-45s ~%-9.0f (exact %llu, ci +/- %.0f)\n",
                std::string(explorer.graph().dict().Spell(bar.category))
                    .c_str(),
                bar.count,
                static_cast<unsigned long long>(exact.CountFor(bar.category)),
                bar.ci_half_width);
  }
  return 0;
}
