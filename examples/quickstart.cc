// Quickstart: load a small RDF graph from N-Triples, materialize the
// subclass closure, and serve an exploration chart both exactly (Cached
// Trie Join) and approximately (Audit Join).
//
//   ./quickstart [path/to/graph.nt]
//
// Without an argument, a small built-in graph about philosophers is used.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/explorer.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/schema.h"
#include "src/rdf/vocab.h"

namespace {

constexpr char kBuiltinGraph[] = R"(
<Agent>  <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://www.w3.org/2002/07/owl#Thing> .
<Person> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <Agent> .
<Philosopher> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <Person> .
<Place>  <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://www.w3.org/2002/07/owl#Thing> .
<City>   <http://www.w3.org/2000/01/rdf-schema#subClassOf> <Place> .
<plato>     <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Philosopher> .
<aristotle> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Philosopher> .
<socrates>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<athens>    <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> .
<stagira>   <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> .
<plato>     <influencedBy> <socrates> .
<aristotle> <influencedBy> <plato> .
<plato>     <birthPlace> <athens> .
<socrates>  <birthPlace> <athens> .
<aristotle> <birthPlace> <stagira> .
)";

void PrintChart(const kgoa::Graph& graph, const kgoa::Chart& chart,
                const char* title) {
  std::printf("%s (%s bars)\n", title, kgoa::BarKindName(chart.kind));
  for (const kgoa::Bar& bar : chart.bars) {
    std::printf("  %-50s %8.1f",
                std::string(graph.dict().Spell(bar.category)).c_str(),
                bar.count);
    if (bar.ci_half_width > 0) std::printf("  (+/- %.1f)", bar.ci_half_width);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // 1. Load the graph.
  kgoa::GraphBuilder builder;
  kgoa::NtParseResult parsed;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    parsed = kgoa::ParseNTriples(in, builder);
  } else {
    parsed = kgoa::ParseNTriplesString(kBuiltinGraph, builder);
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "parse error on line %zu: %s\n", parsed.error_line,
                 parsed.error.c_str());
    return 1;
  }

  // 2. Materialize the subclass closure (the paper's offline step) and
  //    index the graph.
  kgoa::Graph raw = std::move(builder).Build();
  kgoa::Explorer explorer(kgoa::MaterializeSubclassClosure(raw));
  std::printf("loaded %zu triples (%zu after closure)\n\n",
              raw.NumTriples(), explorer.graph().NumTriples());

  // 3. Explore: subclasses of the root, then drill into Person's
  //    outgoing properties.
  kgoa::ExplorationSession session = explorer.NewSession();
  const kgoa::ChainQuery subclasses =
      session.BuildQuery(kgoa::ExpansionKind::kSubclass);
  std::printf("query:\n%s\n\n",
              subclasses.ToSparql(&explorer.graph().dict()).c_str());
  PrintChart(explorer.graph(),
             explorer.EvaluateChart(subclasses, kgoa::BarKind::kClass),
             "subclasses of owl:Thing (exact)");

  // 4. The same chart via online aggregation: Audit Join with a 50 ms
  //    budget, reporting 0.95 confidence intervals.
  PrintChart(explorer.graph(),
             explorer.ApproximateChart(subclasses, 0.05,
                                       kgoa::BarKind::kClass),
             "\nsubclasses of owl:Thing (Audit Join, 50 ms)");
  return 0;
}
