// SPARQL front door: evaluate a grouped count query (the paper's Figure 4
// fragment) given as text, exactly and via online aggregation.
//
//   ./sparql_count graph.nt 'SELECT ?c COUNT(DISTINCT ?o) WHERE { ... } GROUP BY ?c'
//   ./sparql_count --demo      # built-in graph and query
#include <cstdio>
#include <fstream>
#include <string>

#include "src/core/explorer.h"
#include "src/eval/metrics.h"
#include "src/query/sparql.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/schema.h"

namespace {

constexpr char kDemoGraph[] = R"(
<Person> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://www.w3.org/2002/07/owl#Thing> .
<Place>  <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://www.w3.org/2002/07/owl#Thing> .
<City>   <http://www.w3.org/2000/01/rdf-schema#subClassOf> <Place> .
<alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<bob>   <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<paris> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> .
<lyon>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> .
<alice> <livesIn> <paris> .
<bob>   <livesIn> <paris> .
<carol> <livesIn> <lyon> .
)";

constexpr char kDemoQuery[] = R"(
  SELECT ?c COUNT(DISTINCT ?place) WHERE {
    ?person rdf:type <Person> .
    ?person <livesIn> ?place .
    ?place rdf:type ?c .
  } GROUP BY ?c
)";

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path;
  std::string query_text;
  if (argc == 2 && std::string(argv[1]) == "--demo") {
    query_text = kDemoQuery;
  } else if (argc == 3) {
    graph_path = argv[1];
    query_text = argv[2];
  } else {
    std::fprintf(stderr,
                 "usage: %s graph.nt 'SELECT ... GROUP BY ...'\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return argc == 1 ? (query_text = kDemoQuery, 0) : 2;
  }
  if (query_text.empty()) query_text = kDemoQuery;

  kgoa::GraphBuilder builder;
  kgoa::NtParseResult parsed;
  if (graph_path.empty()) {
    parsed = kgoa::ParseNTriplesString(kDemoGraph, builder);
  } else {
    std::ifstream in(graph_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", graph_path.c_str());
      return 1;
    }
    parsed = kgoa::ParseNTriples(in, builder);
  }
  if (!parsed.ok) {
    std::fprintf(stderr, "N-Triples error on line %zu: %s\n",
                 parsed.error_line, parsed.error.c_str());
    return 1;
  }

  kgoa::Explorer explorer(
      kgoa::MaterializeSubclassClosure(std::move(builder).Build()));

  const kgoa::SparqlParseResult result =
      kgoa::ParseSparqlCount(query_text, explorer.graph().dict());
  if (!result.ok()) {
    std::fprintf(stderr, "SPARQL error (line %zu): %s\n", result.error_line,
                 result.error.c_str());
    return 1;
  }
  std::printf("parsed query:\n%s\n\n",
              result.query->ToSparql(&explorer.graph().dict()).c_str());

  const kgoa::GroupedResult exact = explorer.Evaluate(*result.query);
  std::printf("exact result (%zu groups):\n", exact.counts.size());
  for (const auto& [group, count] : exact.counts) {
    std::printf("  %-40s %llu\n",
                std::string(explorer.graph().dict().Spell(group)).c_str(),
                static_cast<unsigned long long>(count));
  }

  const kgoa::Chart approx = explorer.ApproximateChart(
      *result.query, 0.05, kgoa::BarKind::kClass);
  std::printf("\nAudit Join (50 ms):\n");
  for (const kgoa::Bar& bar : approx.bars) {
    std::printf("  %-40s %.1f (+/- %.1f)\n",
                std::string(explorer.graph().dict().Spell(bar.category))
                    .c_str(),
                bar.count, bar.ci_half_width);
  }
  return 0;
}
