// Audit Join as a cardinality estimator.
//
// Beyond powering exploration charts, the paper notes (section VI) that
// Audit Join suits "scenarios requiring efficient cardinality estimations
// over large-scale knowledge graphs". This example estimates join sizes
// (non-distinct counts) for a set of path queries of increasing length and
// compares three estimators:
//   * the static PostgreSQL-style composition (Audit Join's tipping
//     estimate, essentially free),
//   * Audit Join run for a few milliseconds,
//   * the exact count (CTJ).
//
//   ./cardinality_estimation [--scale=0.1] [--budget_ms=25]
#include <cstdio>
#include <string>

#include "src/core/audit.h"
#include "src/core/tipping.h"
#include "src/explore/session.h"
#include "src/gen/kg_gen.h"
#include "src/index/index_set.h"
#include "src/join/ctj.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace {

// Total non-distinct join size from an Audit Join run: sum of the
// per-group estimates.
double EstimateJoinSize(const kgoa::IndexSet& indexes,
                        const kgoa::ChainQuery& query, double seconds) {
  kgoa::AuditJoin::Options options;
  options.tipping_threshold = 64;
  kgoa::AuditJoin audit(indexes, query.WithDistinct(false), options);
  kgoa::Stopwatch clock;
  while (clock.ElapsedSeconds() < seconds) audit.RunWalks(256);
  double total = 0;
  for (const auto& [group, estimate] : audit.estimates().Estimates()) {
    total += estimate;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,budget_ms");
  const double scale = flags.GetDouble("scale", 0.1);
  const double budget = flags.GetDouble("budget_ms", 25) / 1000.0;

  std::printf("generating DBpedia-like graph (scale %.2f)...\n", scale);
  kgoa::Graph graph = kgoa::GenerateKg(kgoa::DbpediaLikeSpec(scale));
  kgoa::IndexSet indexes(graph);
  kgoa::CtjEngine engine(indexes);

  // Build a family of progressively longer exploration queries.
  kgoa::ExplorationSession session(graph);
  std::vector<std::pair<std::string, kgoa::ChainQuery>> queries;
  const kgoa::ExpansionKind trail[] = {
      kgoa::ExpansionKind::kSubclass, kgoa::ExpansionKind::kOutProperty,
      kgoa::ExpansionKind::kObject, kgoa::ExpansionKind::kOutProperty};
  for (kgoa::ExpansionKind expansion : trail) {
    if (!session.IsLegal(expansion)) break;
    kgoa::ChainQuery q = session.BuildQuery(expansion);
    const kgoa::GroupedResult exact = engine.Evaluate(q);
    if (exact.counts.empty()) break;
    queries.emplace_back(
        std::to_string(q.NumPatterns()) + " patterns (" +
            std::string(kgoa::ExpansionName(expansion)) + ")",
        q);
    // Follow the largest bar; for property bars, prefer one whose object
    // expansion is non-empty (literal-valued properties classify nothing).
    std::vector<kgoa::TermId> skip{graph.rdf_type(), graph.subclass_of()};
    kgoa::TermId pick = kgoa::kInvalidTerm;
    while (true) {
      kgoa::TermId candidate = kgoa::kInvalidTerm;
      uint64_t best = 0;
      for (const auto& [group, count] : exact.counts) {
        bool skipped = false;
        for (kgoa::TermId s : skip) skipped = skipped || s == group;
        if (!skipped && count > best) {
          candidate = group;
          best = count;
        }
      }
      if (candidate == kgoa::kInvalidTerm) break;
      if (expansion != kgoa::ExpansionKind::kOutProperty) {
        pick = candidate;
        break;
      }
      kgoa::ExplorationSession probe = session;
      probe.ExpandAndSelect(expansion, candidate);
      if (!engine.Evaluate(probe.BuildQuery(kgoa::ExpansionKind::kObject))
               .counts.empty()) {
        pick = candidate;
        break;
      }
      skip.push_back(candidate);
    }
    if (pick == kgoa::kInvalidTerm) break;
    session.ExpandAndSelect(expansion, pick);
  }

  kgoa::TextTable table({"query", "exact size", "static est", "AJ est",
                         "AJ err", "exact (ms)", "AJ (ms)"});
  for (const auto& [label, query] : queries) {
    kgoa::Stopwatch clock;
    const double exact =
        static_cast<double>(engine.Evaluate(query.WithDistinct(false)).Total());
    const double exact_ms = clock.ElapsedMillis();

    const kgoa::WalkPlan plan = kgoa::WalkPlan::Compile(query);
    const kgoa::TippingEstimator tipping(indexes, plan);
    const double static_estimate = tipping.StaticSuffixEstimate(0);

    clock.Restart();
    const double aj = EstimateJoinSize(indexes, query, budget);
    const double aj_ms = clock.ElapsedMillis();

    table.AddRow({label, kgoa::TextTable::Fmt(exact, 0),
                  kgoa::TextTable::Fmt(static_estimate, 0),
                  kgoa::TextTable::Fmt(aj, 0),
                  exact > 0
                      ? kgoa::TextTable::FmtPercent((aj - exact) / exact)
                      : "n/a",
                  kgoa::TextTable::Fmt(exact_ms, 1),
                  kgoa::TextTable::Fmt(aj_ms, 1)});
  }
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nAudit Join converges to the exact size; the static composition\n"
      "can be off by orders of magnitude on correlated data — the gap the\n"
      "paper's tipping point only needs coarsely, but downstream uses\n"
      "(e.g. join ordering) benefit from closing.\n");
  return 0;
}
