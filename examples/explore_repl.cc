// Interactive exploration shell — the terminal analogue of the paper's
// web frontend (Figure 1): charts served by Audit Join within an
// interactive budget, driven by keyboard commands.
//
//   ./explore_repl [graph.nt|graph.bin] [--scale=0.1] [--budget_ms=150]
//                  [--threads=1] [--shards=0]
//
// With --threads=N > 1, charts are served by the parallel worker-pool
// executor (deadline mode) instead of a single Audit Join engine.
//
// With --shards=N > 0, the graph is partitioned in-process across N
// serving cores (--threads pool threads each) and every chart — sync or
// submitted — is scattered across the shards and gathered by the
// coordinator (src/shard/coordinator.h).
//
// Commands (read from stdin; EOF exits, so the binary also terminates
// cleanly when run non-interactively):
//   sub | out | in | obj | subj   apply an expansion and show the chart
//   pick <n>                      select the n-th bar of the last chart
//   back                          undo the last selection
//   plan                          EXPLAIN the last chart query
//   show                          describe the current selection
//   submit <exp> [seconds]        serve an expansion's chart asynchronously
//                                 on the shared worker pool (deadline mode,
//                                 default the --budget_ms budget)
//   jobs                          list submitted jobs with live snapshots
//   cancel <id>                   cancel a submitted job
//   insert <s> <p> <o>            apply a one-triple insert batch (terms
//                                 are interned as typed; publishes a new
//                                 epoch — charts already submitted keep
//                                 serving their pinned version)
//   delete <s> <p> <o>            apply a one-triple delete batch
//   compact                       fold the delta overlay into a rebuilt
//                                 base (DESIGN.md §13) and report the cost
//   metrics [json]                dump the serving metrics registry
//                                 (includes the epoch.* overlay counters)
//   quit
//
// Submitted jobs are tracked by the session: `pick` and `back` supersede
// them and auto-cancel the unfinished ones.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/explain.h"
#include "src/core/explorer.h"
#include "src/gen/kg_gen.h"
#include "src/rdf/binary_io.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/schema.h"
#include "src/util/flags.h"
#include "src/util/stopwatch.h"

namespace {

std::optional<kgoa::ExpansionKind> ParseExpansion(const std::string& word) {
  if (word == "sub") return kgoa::ExpansionKind::kSubclass;
  if (word == "out") return kgoa::ExpansionKind::kOutProperty;
  if (word == "in") return kgoa::ExpansionKind::kInProperty;
  if (word == "obj") return kgoa::ExpansionKind::kObject;
  if (word == "subj") return kgoa::ExpansionKind::kSubject;
  return std::nullopt;
}

struct Repl {
  kgoa::Explorer* explorer;
  kgoa::ExplorationSession session;
  double budget;
  int threads;
  int shards;  // > 0: scatter every chart across the shard cores
  std::optional<kgoa::ExpansionKind> last_expansion;
  kgoa::Chart last_chart;

  // Jobs submitted via the async API, in submit order. The session tracks
  // the same handles and auto-cancels unfinished ones on navigation; this
  // list keeps finished/cancelled ones listable.
  struct SubmittedJob {
    kgoa::ChartHandle handle;
    kgoa::BarKind kind;
  };
  std::vector<SubmittedJob> submitted;
  // Scatter-gather jobs (--shards mode); tracked per shard handle by the
  // session so navigation fans the auto-cancel out.
  struct SubmittedShardJob {
    kgoa::ShardChartHandle handle;
    kgoa::BarKind kind;
  };
  std::vector<SubmittedShardJob> submitted_sharded;

  Repl(kgoa::Explorer* e, double budget_seconds, int serving_threads,
       int serving_shards)
      : explorer(e),
        session(e->NewSession()),
        budget(budget_seconds),
        threads(serving_threads),
        shards(serving_shards) {}

  void ShowChart(kgoa::ExpansionKind expansion) {
    if (!session.IsLegal(expansion)) {
      std::printf("  (%s expansion not legal from a %s bar)\n",
                  kgoa::ExpansionName(expansion),
                  kgoa::BarKindName(session.current_kind()));
      return;
    }
    const kgoa::ChainQuery query = session.BuildQuery(expansion);
    if (shards > 0) {
      kgoa::ShardChartOptions options;
      options.workers_per_shard = threads > 1 ? threads : 1;
      last_chart = explorer->ApproximateChartSharded(
          query, budget, ResultBarKind(expansion), options);
    } else if (threads > 1) {
      kgoa::ParallelOlaOptions options;
      options.threads = threads;
      last_chart = explorer->ApproximateChartParallel(
          query, budget, ResultBarKind(expansion), options);
    } else {
      last_chart = explorer->ApproximateChart(query, budget,
                                              ResultBarKind(expansion));
    }
    last_expansion = expansion;
    if (last_chart.bars.empty()) {
      std::printf("  (empty chart)\n");
      return;
    }
    int index = 0;
    for (const kgoa::Bar& bar : last_chart.bars) {
      if (index >= 15) {
        std::printf("  ... %zu more\n", last_chart.bars.size() - 15);
        break;
      }
      std::printf("  [%2d] %-50s ~%.0f (+/- %.0f)\n", index,
                  std::string(explorer->graph().dict().Spell(bar.category))
                      .c_str(),
                  bar.count, bar.ci_half_width);
      ++index;
    }
  }

  void Pick(int index) {
    if (!last_expansion.has_value() || index < 0 ||
        index >= static_cast<int>(last_chart.bars.size())) {
      std::printf("  (no such bar; run an expansion first)\n");
      return;
    }
    session.ExpandAndSelect(*last_expansion,
                            last_chart.bars[index].category);
    last_expansion.reset();
    std::printf("  -> %s\n", session.Describe().c_str());
  }

  void Submit(kgoa::ExpansionKind expansion, double seconds) {
    if (!session.IsLegal(expansion)) {
      std::printf("  (%s expansion not legal from a %s bar)\n",
                  kgoa::ExpansionName(expansion),
                  kgoa::BarKindName(session.current_kind()));
      return;
    }
    if (shards > 0) {
      kgoa::ShardChartOptions job;
      job.deadline_seconds = seconds;
      job.workers_per_shard = threads > 1 ? threads : 1;
      kgoa::ShardChartHandle handle =
          explorer->SubmitChartSharded(session.BuildQuery(expansion), job);
      session.TrackJobs(handle.shard_handles());
      submitted_sharded.push_back({handle, ResultBarKind(expansion)});
      std::printf("  job %llu submitted across %d shards (%s, %.0f ms "
                  "deadline) — 'jobs' to watch, 'cancel %llu' to stop\n",
                  static_cast<unsigned long long>(handle.id()),
                  handle.num_shards(), kgoa::ExpansionName(expansion),
                  seconds * 1000.0,
                  static_cast<unsigned long long>(handle.id()));
      return;
    }
    kgoa::ChartJobOptions job;
    job.deadline_seconds = seconds;
    job.workers = threads > 1 ? threads : 1;
    kgoa::ChartHandle handle =
        explorer->SubmitChart(session.BuildQuery(expansion), job);
    session.TrackJob(handle);
    submitted.push_back({handle, ResultBarKind(expansion)});
    std::printf("  job %llu submitted (%s, %.0f ms deadline) — 'jobs' to "
                "watch, 'cancel %llu' to stop\n",
                static_cast<unsigned long long>(handle.id()),
                kgoa::ExpansionName(expansion), seconds * 1000.0,
                static_cast<unsigned long long>(handle.id()));
  }

  void ListJobs() {
    if (submitted.empty() && submitted_sharded.empty()) {
      std::printf("  (no jobs submitted)\n");
      return;
    }
    for (const SubmittedShardJob& job : submitted_sharded) {
      const kgoa::ParallelOlaResult snapshot = job.handle.Snapshot();
      const kgoa::Chart chart =
          kgoa::Explorer::ChartFromEstimates(snapshot.estimates, job.kind);
      std::printf("  job %llu  %-9s  %dx shards  %llu walks  %zu bars",
                  static_cast<unsigned long long>(job.handle.id()),
                  kgoa::ChartJobStateName(job.handle.state()),
                  job.handle.num_shards(),
                  static_cast<unsigned long long>(snapshot.estimates.walks()),
                  chart.bars.size());
      if (!chart.bars.empty()) {
        const kgoa::Bar& top = chart.bars.front();
        std::printf("  top: %s ~%.0f (+/- %.0f)",
                    std::string(explorer->graph().dict().Spell(top.category))
                        .c_str(),
                    top.count, top.ci_half_width);
      }
      std::printf("\n");
    }
    for (const SubmittedJob& job : submitted) {
      const kgoa::ParallelOlaResult snapshot = job.handle.Snapshot();
      const kgoa::Chart chart =
          kgoa::Explorer::ChartFromEstimates(snapshot.estimates, job.kind);
      std::printf("  job %llu  %-9s  %llu walks  %zu bars",
                  static_cast<unsigned long long>(job.handle.id()),
                  kgoa::ChartJobStateName(job.handle.state()),
                  static_cast<unsigned long long>(snapshot.estimates.walks()),
                  chart.bars.size());
      if (!chart.bars.empty()) {
        const kgoa::Bar& top = chart.bars.front();
        std::printf("  top: %s ~%.0f (+/- %.0f)",
                    std::string(explorer->graph().dict().Spell(top.category))
                        .c_str(),
                    top.count, top.ci_half_width);
      }
      std::printf("\n");
    }
  }

  void CancelJob(uint64_t id) {
    for (const SubmittedShardJob& job : submitted_sharded) {
      if (job.handle.id() != id) continue;
      if (job.handle.finished()) {
        std::printf("  job %llu already %s\n",
                    static_cast<unsigned long long>(id),
                    kgoa::ChartJobStateName(job.handle.state()));
        return;
      }
      job.handle.Cancel();  // fans out across the shards
      std::printf("  job %llu cancel requested (%d shards)\n",
                  static_cast<unsigned long long>(id),
                  job.handle.num_shards());
      return;
    }
    for (const SubmittedJob& job : submitted) {
      if (job.handle.id() != id) continue;
      if (job.handle.finished()) {
        std::printf("  job %llu already %s\n",
                    static_cast<unsigned long long>(id),
                    kgoa::ChartJobStateName(job.handle.state()));
        return;
      }
      job.handle.Cancel();
      std::printf("  job %llu cancel requested\n",
                  static_cast<unsigned long long>(id));
      return;
    }
    std::printf("  (no such job %llu)\n",
                static_cast<unsigned long long>(id));
  }

  // One-triple write batch. Terms are interned as typed (so a deleted
  // triple's terms need not pre-exist; Apply just reports zero changes
  // when the triple is absent). Every effective batch publishes a new
  // epoch — submitted jobs keep serving the version they pinned.
  void Write(bool insert, const std::string& s, const std::string& p,
             const std::string& o) {
    const kgoa::Triple triple{explorer->Intern(s), explorer->Intern(p),
                              explorer->Intern(o)};
    const uint64_t changes =
        insert ? explorer->Insert({triple}) : explorer->Delete({triple});
    const kgoa::MutableGraph::Stats stats = explorer->graph_stats();
    std::printf("  %llu change(s); epoch %llu, overlay +%llu -%llu over "
                "%llu base triples\n",
                static_cast<unsigned long long>(changes),
                static_cast<unsigned long long>(stats.epoch),
                static_cast<unsigned long long>(stats.overlay_adds),
                static_cast<unsigned long long>(stats.overlay_dels),
                static_cast<unsigned long long>(stats.base_triples));
  }

  void Compact() {
    kgoa::Stopwatch clock;
    const uint64_t epoch = explorer->Compact();
    const kgoa::MutableGraph::Stats stats = explorer->graph_stats();
    std::printf("  compacted to epoch %llu in %.1f ms (%llu triples, "
                "%llu snapshot(s) still pinned)\n",
                static_cast<unsigned long long>(epoch),
                clock.ElapsedSeconds() * 1000.0,
                static_cast<unsigned long long>(stats.live_triples),
                static_cast<unsigned long long>(stats.snapshots_pinned));
  }

  // Serving metrics (engine counters accumulated by the explorer) plus
  // the epoch/overlay state and this session's interaction counters, as
  // text or JSON.
  void DumpMetrics(bool as_json) {
    kgoa::MetricsRegistry registry = explorer->metrics();
    kgoa::ExportSimdMetrics("simd.", &registry);
    kgoa::ExportMetrics(explorer->mutable_graph(), "epoch.", &registry);
    registry.SetCounter("session.queries_built", session.queries_built());
    registry.SetCounter("session.expansions", session.expansions_applied());
    registry.SetCounter("session.back_navigations",
                        session.back_navigations());
    registry.SetCounter("session.jobs_auto_cancelled",
                        session.jobs_auto_cancelled());
    registry.SetGauge("session.depth", session.depth());
    if (as_json) {
      std::printf("%s\n", registry.ToJson().c_str());
    } else {
      std::printf("%s", registry.ToText().c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1 && argv[1][0] != '-') {
    path = argv[1];
    --argc;
    ++argv;
  }
  kgoa::Flags flags(argc, argv);
  flags.RestrictTo("scale,budget_ms,threads,shards");
  const double scale = flags.GetDouble("scale", 0.1);
  const double budget = flags.GetDouble("budget_ms", 150) / 1000.0;
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const int shards = static_cast<int>(flags.GetInt("shards", 0));

  kgoa::Graph graph;
  if (path.empty()) {
    std::printf("generating DBpedia-like graph (scale %.2f)...\n", scale);
    graph = kgoa::GenerateKg(kgoa::DbpediaLikeSpec(scale));
  } else if (path.size() > 3 && path.substr(path.size() - 3) == ".nt") {
    std::ifstream in(path);
    kgoa::GraphBuilder builder;
    const auto parsed = kgoa::ParseNTriples(in, builder);
    if (!parsed.ok) {
      std::fprintf(stderr, "parse error line %zu: %s\n", parsed.error_line,
                   parsed.error.c_str());
      return 1;
    }
    graph =
        kgoa::MaterializeSubclassClosure(std::move(builder).Build());
  } else {
    std::string error;
    auto loaded = kgoa::LoadGraphBinary(path, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    graph = std::move(*loaded);
  }

  kgoa::Explorer explorer(std::move(graph));
  if (shards > 0) {
    kgoa::ShardCoordinator::Options options;
    options.num_shards = shards;
    options.threads_per_shard = threads > 1 ? threads : 1;
    // The REPL serves against the global indexes; skip the physical
    // slice build so startup stays interactive.
    options.build_slices = false;
    explorer.EnableSharding(options);
    std::printf("sharded serving: %d shards x %d threads\n", shards,
                options.threads_per_shard);
  }
  Repl repl(&explorer, budget, threads, shards);
  std::printf("%zu triples. commands: sub out in obj subj pick <n> back "
              "plan show submit <exp> [s] jobs cancel <id> "
              "insert <s> <p> <o> delete <s> <p> <o> compact metrics quit\n",
              explorer.graph().NumTriples());

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command == "quit" || command == "exit") break;
    if (command == "sub") repl.ShowChart(kgoa::ExpansionKind::kSubclass);
    else if (command == "out") repl.ShowChart(kgoa::ExpansionKind::kOutProperty);
    else if (command == "in") repl.ShowChart(kgoa::ExpansionKind::kInProperty);
    else if (command == "obj") repl.ShowChart(kgoa::ExpansionKind::kObject);
    else if (command == "subj") repl.ShowChart(kgoa::ExpansionKind::kSubject);
    else if (command == "pick") {
      int index = -1;
      words >> index;
      repl.Pick(index);
    } else if (command == "back") {
      std::printf("  %s\n", repl.session.GoBack() ? "ok" : "(at root)");
    } else if (command == "show") {
      std::printf("  %s\n", repl.session.Describe().c_str());
    } else if (command == "submit") {
      std::string what;
      words >> what;
      double seconds = repl.budget;
      if (double given = 0; words >> given) seconds = given;
      const auto expansion = ParseExpansion(what);
      if (expansion.has_value() && seconds > 0) {
        repl.Submit(*expansion, seconds);
      } else {
        std::printf("  usage: submit <sub|out|in|obj|subj> [seconds]\n");
      }
    } else if (command == "jobs") {
      repl.ListJobs();
    } else if (command == "cancel") {
      unsigned long long id = 0;
      if (words >> id) {
        repl.CancelJob(id);
      } else {
        std::printf("  usage: cancel <job id>\n");
      }
    } else if (command == "insert" || command == "delete") {
      std::string s, p, o;
      if (words >> s >> p >> o) {
        repl.Write(command == "insert", s, p, o);
      } else {
        std::printf("  usage: %s <subject> <predicate> <object>\n",
                    command.c_str());
      }
    } else if (command == "compact") {
      repl.Compact();
    } else if (command == "metrics") {
      std::string mode;
      words >> mode;
      repl.DumpMetrics(mode == "json");
    } else if (command == "plan") {
      if (repl.last_expansion.has_value()) {
        std::printf("%s",
                    kgoa::ExplainPlan(
                        explorer.indexes(),
                        repl.session.BuildQuery(*repl.last_expansion),
                        &explorer.graph().dict())
                        .c_str());
      } else {
        std::printf("  (run an expansion first)\n");
      }
    } else if (!command.empty()) {
      std::printf("  unknown command '%s'\n", command.c_str());
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
