// Walk-reach probabilities for Audit Join's unbiased distinct estimator
// (section IV-D, "Distinct").
//
// For a fixed walk plan, Pr(a, b) is the probability that one random walk
// completes a full path whose alpha variable takes value a and whose beta
// variable takes value b. The distinct estimator divides each sampled
// (a, b) pair's walk mass by Pr(a, b), so that every distinct b is counted
// exactly once in expectation.
//
// The paper computes Pr(b) online "by using CTJ to materialize all paths
// leading to the sampled b, summing up their probabilities, and caching the
// results". This class is that computation in dynamic-programming form over
// the walk-step tree:
//   * S(q, v)  — probability that the walk sub-tree rooted at step q
//     completes, given that step q's in-variable has value v;
//   * U(q, v)  — total probability mass of walk prefixes that reach step q
//     with in-value v while completing every branch outside q's sub-tree;
//   * Pr(a, b) — sum over anchor tuples t with alpha(t) = a, beta(t) = b of
//     U(anchor, in(t)) / d(in(t)) * prod of S over the anchor's children.
// All three layers are memoized, which is what makes the amortized cost per
// queried (a, b) small (the paper reports ~2.5us average).
//
// The memos live in sharded concurrent flat tables
// (src/index/concurrent_flat_table.h), so ONE instance can be shared by
// every worker thread of a parallel run: each distinct (a, b) is audited
// once per run instead of once per thread. Sharing is sound because every
// memo value is a pure function of (immutable indexes, walk plan, key) —
// threads racing on a miss insert bit-identical values, which the table
// contract-checks. Estimates computed from a shared cache are therefore
// bit-identical to the private-cache ones; only the hit/miss/contention
// counters are scheduling-dependent (see DESIGN.md, "Shared reach cache").
#ifndef KGOA_CORE_REACH_H_
#define KGOA_CORE_REACH_H_

#include <vector>

#include "src/index/concurrent_flat_table.h"
#include "src/index/index_set.h"
#include "src/join/access.h"
#include "src/ola/walk_plan.h"

namespace kgoa {

class ReachProbability {
 public:
  ReachProbability(const IndexSet& indexes, const WalkPlan& plan);

  ReachProbability(const ReachProbability&) = delete;
  ReachProbability& operator=(const ReachProbability&) = delete;

  // Pr[walk completes with alpha = a and beta = b]. Memoized; safe to call
  // from multiple threads concurrently.
  double PrAB(TermId a, TermId b);

  // Software-prefetches the memo slot for (a, b) so a batched probe loop
  // (prefetch all pending pairs, then PrAB each) overlaps memory latency.
  void PrefetchPrAB(TermId a, TermId b) const {
    pr_memo_.Prefetch(PackPair(a, b));
  }

  // Exposed for tests: acceptance probability of the sub-walk rooted at
  // step q given in-value v.
  double AcceptFrom(int step, TermId value) { return S(step, value); }

  // The plan this cache was built for. A shared cache may only serve
  // engines whose plan is equivalent (same query, same pattern order) —
  // see CompatibleWith.
  const WalkPlan& plan() const { return plan_; }

  // True when `other` describes the same walk distribution as plan(), so
  // memo entries computed under one are valid under the other.
  bool CompatibleWith(const WalkPlan& other) const {
    return plan_.pattern_order() == other.pattern_order() &&
           plan_.query().ToSparql() == other.query().ToSparql();
  }

  // Lookups that found / did not find a memoized entry, summed over the
  // S, U and Pr layers. Backed by the tables' atomic shard counters, so
  // reads are safe (and exact) while other threads probe — the fix for
  // the racy plain-uint64 counters the private-cache version carried.
  uint64_t cache_hits() const { return stats().hits; }
  uint64_t cache_misses() const { return stats().misses; }

  // Aggregated concurrent-table statistics over all three memo layers
  // (hits, misses, insert contention, benign duplicate inserts, resident
  // entries, memory).
  ShardedTableStats stats() const;

  // Statistics of the Pr(a, b) layer alone — the per-audited-pair view
  // used by the amortized-cost accounting (paper's ~2.5us figure).
  ShardedTableStats pr_stats() const { return pr_memo_.stats(); }

 private:
  struct ChildEdge {
    int step;       // child step index
    int component;  // component of the parent pattern carrying its in-value
  };

  double S(int step, TermId value);
  double U(int step, TermId value);
  double ComputeS(int step, TermId value);
  double ComputeU(int step, TermId value);
  double ComputePrAB(TermId a, TermId b);

  // d of `step` given in-value (root range size for the start step).
  double Fanout(int step, TermId in_value) const;

  // Memo key for the per-step S/U layers. `value` may be any TermId
  // (including kInvalidTerm), and step indexes are small, so the packed
  // key never equals the tables' ~0 empty sentinel.
  static uint64_t StepKey(int step, TermId value) {
    return (static_cast<uint64_t>(step) << 32) | value;
  }

  // kgoa-lint: allow(raw-graph-retention) cache body pinned by its registry entry's snapshot
  const IndexSet& indexes_;
  const WalkPlan& plan_;

  std::vector<std::vector<ChildEdge>> children_;   // per step
  std::vector<int> parent_;                        // per step; -1 for start
  std::vector<int> in_component_;                  // in-var component, -1
  // Reverse accesses: for step q > 0, tuples of the parent pattern bound on
  // q's in-variable.
  std::vector<PatternAccess> reverse_access_;

  // Empty sentinel ~0: StepKey never reaches step 2^32 - 1, and
  // PackPair(a, b) = ~0 would need a = b = kInvalidTerm, which no
  // completed walk produces.
  ShardedFlatTable<uint64_t, double> s_memo_{~0ull};
  ShardedFlatTable<uint64_t, double> u_memo_{~0ull};
  ShardedFlatTable<uint64_t, double> pr_memo_{~0ull, /*shard_bits=*/6};
};

}  // namespace kgoa

#endif  // KGOA_CORE_REACH_H_
