// Walk-reach probabilities for Audit Join's unbiased distinct estimator
// (section IV-D, "Distinct").
//
// For a fixed walk plan, Pr(a, b) is the probability that one random walk
// completes a full path whose alpha variable takes value a and whose beta
// variable takes value b. The distinct estimator divides each sampled
// (a, b) pair's walk mass by Pr(a, b), so that every distinct b is counted
// exactly once in expectation.
//
// The paper computes Pr(b) online "by using CTJ to materialize all paths
// leading to the sampled b, summing up their probabilities, and caching the
// results". This class is that computation in dynamic-programming form over
// the walk-step tree:
//   * S(q, v)  — probability that the walk sub-tree rooted at step q
//     completes, given that step q's in-variable has value v;
//   * U(q, v)  — total probability mass of walk prefixes that reach step q
//     with in-value v while completing every branch outside q's sub-tree;
//   * Pr(a, b) — sum over anchor tuples t with alpha(t) = a, beta(t) = b of
//     U(anchor, in(t)) / d(in(t)) * prod of S over the anchor's children.
// All three layers are memoized, which is what makes the amortized cost per
// queried (a, b) small (the paper reports ~2.5us average).
#ifndef KGOA_CORE_REACH_H_
#define KGOA_CORE_REACH_H_

#include <unordered_map>
#include <vector>

#include "src/index/index_set.h"
#include "src/join/access.h"
#include "src/ola/walk_plan.h"

namespace kgoa {

class ReachProbability {
 public:
  ReachProbability(const IndexSet& indexes, const WalkPlan& plan);

  ReachProbability(const ReachProbability&) = delete;
  ReachProbability& operator=(const ReachProbability&) = delete;

  // Pr[walk completes with alpha = a and beta = b]. Memoized.
  double PrAB(TermId a, TermId b);

  // Exposed for tests: acceptance probability of the sub-walk rooted at
  // step q given in-value v.
  double AcceptFrom(int step, TermId value) { return S(step, value); }

  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }

 private:
  struct ChildEdge {
    int step;       // child step index
    int component;  // component of the parent pattern carrying its in-value
  };

  double S(int step, TermId value);
  double U(int step, TermId value);

  // d of `step` given in-value (root range size for the start step).
  double Fanout(int step, TermId in_value) const;

  const IndexSet& indexes_;
  const WalkPlan& plan_;

  std::vector<std::vector<ChildEdge>> children_;   // per step
  std::vector<int> parent_;                        // per step; -1 for start
  std::vector<int> in_component_;                  // in-var component, -1
  // Reverse accesses: for step q > 0, tuples of the parent pattern bound on
  // q's in-variable.
  std::vector<PatternAccess> reverse_access_;

  std::vector<std::unordered_map<TermId, double>> s_memo_;
  std::vector<std::unordered_map<TermId, double>> u_memo_;
  std::unordered_map<uint64_t, double> pr_memo_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace kgoa

#endif  // KGOA_CORE_REACH_H_
