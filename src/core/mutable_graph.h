// MutableGraph: the write side of the snapshot-epoch model (DESIGN.md §13).
//
// The paper's structures are all built over an immutable triple set; this
// layer makes the SET mutable while keeping every reader's world immutable.
// Writers apply insert/delete batches into a canonical pending-write pair
// (adds not in the base, deletes present in it); each applied batch builds
// a fresh DeltaOverlay + view IndexSet and publishes them as a new
// GraphVersion (epoch + 1) with an RCU-style shared_ptr swap. Readers pin
// a GraphSnapshot and never see a version change mid-query; retired
// versions stay fully valid until their last pin drops.
//
// Compaction folds the overlay into a rebuilt base: one linear merge of
// (base − deletes) with the adds, Graph::Rebase (shared dictionary, so
// TermIds are stable across generations), and a from-scratch IndexSet
// build — the same chained radix derivation as an initial load, so the
// compacted index is byte-identical to building the merged triple set
// directly. The heavy fold runs WITHOUT the writer lock: batches landing
// mid-compaction keep publishing live epochs against the old base and are
// additionally journaled; when the fold finishes, the journal is replayed
// canonically against the new base so no interleaved write is lost (in
// particular a delete of an add the fold already absorbed). CompactAsync
// schedules exactly that on a ServingCore's pool (background tasks yield
// to chart quanta).
//
// Thread safety: Apply/Insert/Delete/Compact may be called from any
// thread (writer_mutex_ serializes them); snapshot()/stats() are wait-free
// for writers (leaf publish_mutex_). Intern is writer-locked but NOT safe
// against concurrent readers spelling terms — intern query terms before
// submitting jobs that race writes (see src/rdf/dictionary.h).
#ifndef KGOA_CORE_MUTABLE_GRAPH_H_
#define KGOA_CORE_MUTABLE_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/index/delta.h"
#include "src/index/index_set.h"
#include "src/index/snapshot.h"
#include "src/rdf/graph.h"
#include "src/util/sync.h"

namespace kgoa {

class ServingCore;

class MutableGraph {
 public:
  struct Options {
    // Storage tier for the base IndexSet (initial build and every
    // compaction). Overlay views always serve through the base's tier.
    IndexSetOptions index_options;
  };

  // Takes ownership of the graph and builds its base indexes; publishes
  // epoch 0 (clean).
  explicit MutableGraph(Graph graph, Options options = {});

  MutableGraph(const MutableGraph&) = delete;
  MutableGraph& operator=(const MutableGraph&) = delete;

  // Pins the current version. Wait-free for writers; the returned
  // snapshot stays valid (and bit-stable) forever, no matter how many
  // epochs are published after it.
  GraphSnapshot snapshot() const;

  // Epoch of the current version (0 after construction; +1 per publish —
  // applied batch or compaction).
  uint64_t epoch() const;

  // Applies one batch: inserts first, then deletes (so a triple in both
  // lists ends up absent). Already-present inserts and absent deletes are
  // no-ops. Publishes a new epoch unless the batch was a complete no-op.
  // Returns the number of live-set changes (triples added + removed).
  uint64_t Apply(const std::vector<Triple>& inserts,
                 const std::vector<Triple>& deletes);

  uint64_t Insert(const std::vector<Triple>& triples) {
    return Apply(triples, {});
  }
  uint64_t Delete(const std::vector<Triple>& triples) {
    return Apply({}, triples);
  }

  // Interns a term in the shared dictionary (stable across compactions).
  TermId Intern(std::string_view term);

  // Folds the overlay into a rebuilt base and publishes the compacted
  // version; returns its epoch. No-op (returns the current epoch) when
  // the overlay is empty. Concurrent Compact calls serialize; concurrent
  // Apply calls proceed against the old base and are journal-replayed
  // onto the new one.
  uint64_t Compact();

  // Completion handle for a background compaction.
  class CompactTicket {
   public:
    CompactTicket() = default;

    bool valid() const { return shared_ != nullptr; }
    bool done() const;
    // Blocks until the compaction published; returns its epoch.
    uint64_t Await() const;

   private:
    friend class MutableGraph;
    struct Shared;
    std::shared_ptr<Shared> shared_;
  };

  // Schedules Compact() as a background task on `core`'s pool (chart
  // quanta take precedence; the core's destructor runs unstarted tasks
  // inline, so the ticket always completes). `this` must outlive `core`.
  CompactTicket CompactAsync(ServingCore& core);

  // Epoch/overlay gauges for the metrics registry and the REPL.
  struct Stats {
    uint64_t epoch = 0;
    uint64_t base_triples = 0;      // triples in the compacted base
    uint64_t live_triples = 0;      // base − deletes + adds
    uint64_t overlay_adds = 0;
    uint64_t overlay_dels = 0;
    uint64_t batches_applied = 0;   // Apply calls that published
    uint64_t compactions = 0;
    // Published versions still pinned by at least one snapshot, job or
    // cache entry (the current version counts as one).
    uint64_t snapshots_pinned = 0;
  };
  Stats stats() const;

 private:
  struct Journal {
    std::vector<Triple> inserts;
    std::vector<Triple> deletes;
  };

  // Builds and publishes the next version from the writer's current base
  // + pending state. Requires writer_mutex_.
  uint64_t PublishLocked() KGOA_REQUIRES(writer_mutex_);

  const Options options_;

  // Serializes writers (Apply/Compact/Intern). Never held across the
  // compaction fold itself — only across canonical-apply bookkeeping,
  // overlay builds and the publish swap.
  mutable Mutex writer_mutex_;
  std::shared_ptr<const Graph> base_graph_ KGOA_GUARDED_BY(writer_mutex_);
  std::shared_ptr<const IndexSet> base_indexes_
      KGOA_GUARDED_BY(writer_mutex_);
  PendingWrites pending_ KGOA_GUARDED_BY(writer_mutex_);
  // Compaction-in-progress state: batches applied while a fold runs are
  // appended here and replayed against the new base at swap time.
  bool compacting_ KGOA_GUARDED_BY(writer_mutex_) = false;
  std::vector<Journal> journal_ KGOA_GUARDED_BY(writer_mutex_);
  CondVar compact_cv_;  // signalled when a fold finishes
  uint64_t batches_applied_ KGOA_GUARDED_BY(writer_mutex_) = 0;
  uint64_t compactions_ KGOA_GUARDED_BY(writer_mutex_) = 0;

  // Leaf lock: the RCU publish point. snapshot() only ever takes this.
  mutable Mutex publish_mutex_;
  std::shared_ptr<const GraphVersion> current_
      KGOA_GUARDED_BY(publish_mutex_);
  // Every published version, weakly: stats() counts the still-alive ones
  // (the snapshots_pinned gauge) and prunes expired entries.
  mutable std::vector<std::weak_ptr<const GraphVersion>> versions_
      KGOA_GUARDED_BY(publish_mutex_);
};

}  // namespace kgoa

#endif  // KGOA_CORE_MUTABLE_GRAPH_H_
