#include "src/core/reach.h"

#include "src/join/filter.h"
#include "src/util/contract.h"

namespace kgoa {

ReachProbability::ReachProbability(const IndexSet& indexes,
                                   const WalkPlan& plan)
    : indexes_(indexes), plan_(plan) {
  const int n = plan.NumSteps();
  children_.resize(n);
  parent_.assign(n, -1);
  in_component_.assign(n, -1);
  reverse_access_.resize(n);

  const ChainQuery& query = plan.query();
  for (int q = 0; q < n; ++q) {
    const WalkStep& step = plan.steps()[q];
    if (step.in_var == kNoVar) continue;
    in_component_[q] =
        query.patterns()[step.pattern_index].ComponentOf(step.in_var);
    parent_[q] = plan.ParentStepOf(q);
    KGOA_CHECK(parent_[q] >= 0);
    const int parent_pattern = plan.steps()[parent_[q]].pattern_index;
    children_[parent_[q]].push_back(ChildEdge{
        q, query.patterns()[parent_pattern].ComponentOf(step.in_var)});
    reverse_access_[q] =
        PatternAccess::Compile(query.patterns()[parent_pattern], step.in_var);
  }
}

ShardedTableStats ReachProbability::stats() const {
  ShardedTableStats total = s_memo_.stats();
  for (const ShardedTableStats& layer : {u_memo_.stats(), pr_memo_.stats()}) {
    total.hits += layer.hits;
    total.misses += layer.misses;
    total.insert_contention += layer.insert_contention;
    total.duplicate_inserts += layer.duplicate_inserts;
    total.entries += layer.entries;
    total.memory_bytes += layer.memory_bytes;
  }
  return total;
}

double ReachProbability::Fanout(int step, TermId in_value) const {
  return static_cast<double>(
      plan_.steps()[step].access.Resolve(indexes_, in_value).size());
}

double ReachProbability::S(int step, TermId value) {
  const uint64_t key = StepKey(step, value);
  if (const double* found = s_memo_.Find(key)) return *found;
  // Compute outside the shard lock; a racing thread computes the same
  // bits (pure function of immutable inputs), so the insert race is
  // benign and Insert returns the canonical resident value.
  return s_memo_.Insert(key, ComputeS(step, value));
}

double ReachProbability::ComputeS(int step, TermId value) {
  const WalkStep& ws = plan_.steps()[step];
  const Range range = ws.access.Resolve(indexes_, value);
  if (range.empty()) return 0.0;
  const TrieIndex& index = indexes_.Index(ws.access.order());
  double sum = 0.0;
  for (uint32_t pos = range.begin; pos < range.end; ++pos) {
    const Triple& t = index.TripleAt(pos);
    if (!ws.filter.empty() && !ws.filter.Pass(indexes_, t)) continue;
    double product = 1.0;
    for (const ChildEdge& child : children_[step]) {
      product *= S(child.step, t[child.component]);
      if (product == 0.0) break;
    }
    sum += product;
  }
  const double result = sum / static_cast<double>(range.size());
  // S is the probability that a uniform draw from this range completes
  // the subtree below `step` (section IV-C): always inside [0, 1].
  KGOA_DCHECK_PROB(result);
  return result;
}

double ReachProbability::U(int step, TermId value) {
  const uint64_t key = StepKey(step, value);
  if (const double* found = u_memo_.Find(key)) return *found;
  return u_memo_.Insert(key, ComputeU(step, value));
}

double ReachProbability::ComputeU(int step, TermId value) {
  const int par = parent_[step];
  KGOA_DCHECK(par >= 0);
  const Range range = reverse_access_[step].Resolve(indexes_, value);
  const TrieIndex& index = indexes_.Index(reverse_access_[step].order());
  const FilterSet& parent_filter = plan_.steps()[par].filter;
  double sum = 0.0;
  for (uint32_t pos = range.begin; pos < range.end; ++pos) {
    const Triple& t = index.TripleAt(pos);
    if (!parent_filter.empty() && !parent_filter.Pass(indexes_, t)) continue;
    const TermId parent_in =
        in_component_[par] >= 0 ? t[in_component_[par]] : kInvalidTerm;
    const double d = Fanout(par, parent_in);
    KGOA_DCHECK(d > 0);  // t itself matches the parent pattern
    double base = (parent_[par] >= 0 ? U(par, parent_in) : 1.0) / d;
    if (base == 0.0) continue;
    for (const ChildEdge& sibling : children_[par]) {
      if (sibling.step == step) continue;
      base *= S(sibling.step, t[sibling.component]);
      if (base == 0.0) break;
    }
    sum += base;
  }
  // U is a probability mass over the walks reaching this step's parent.
  KGOA_DCHECK_PROB(sum);
  return sum;
}

double ReachProbability::PrAB(TermId a, TermId b) {
  const uint64_t key = PackPair(a, b);
  if (const double* found = pr_memo_.Find(key)) return *found;
  return pr_memo_.Insert(key, ComputePrAB(a, b));
}

double ReachProbability::ComputePrAB(TermId a, TermId b) {
  const ChainQuery& query = plan_.query();
  const int anchor = query.alpha_beta_pattern();
  const int m = plan_.StepOf(anchor);
  TriplePattern subst = query.patterns()[anchor];
  const int alpha_component = subst.ComponentOf(query.alpha());
  const int beta_component = subst.ComponentOf(query.beta());
  KGOA_CHECK(alpha_component >= 0 && beta_component >= 0);
  if (query.alpha() == query.beta()) KGOA_CHECK(a == b);
  subst[alpha_component] = Slot::MakeConst(a);
  subst[beta_component] = Slot::MakeConst(b);

  double sum = 0.0;
  const FilterSet& anchor_filter = plan_.steps()[m].filter;
  auto handle_tuple = [&](const Triple& t) {
    if (!anchor_filter.empty() && !anchor_filter.Pass(indexes_, t)) return;
    double mass;
    if (m == 0) {
      mass = 1.0 / Fanout(0, kInvalidTerm);
    } else {
      const TermId in_value = t[in_component_[m]];
      const double d = Fanout(m, in_value);
      KGOA_DCHECK(d > 0);
      mass = U(m, in_value) / d;
    }
    if (mass == 0.0) return;
    for (const ChildEdge& child : children_[m]) {
      mass *= S(child.step, t[child.component]);
      if (mass == 0.0) return;
    }
    sum += mass;
  };

  PatternAccess access;
  if (PatternAccess::TryCompile(subst, kNoVar, &access)) {
    const Range range = access.Resolve(indexes_, kInvalidTerm);
    const TrieIndex& index = indexes_.Index(access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      handle_tuple(index.TripleAt(pos));
    }
  } else {
    // Constants fix exactly {subject, object}: scan the subject's SPO
    // range, filtering on the object.
    const TrieIndex& spo = indexes_.Index(IndexOrder::kSpo);
    const Range range =
        indexes_.Depth1(IndexOrder::kSpo, subst[kSubject].term());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = spo.TripleAt(pos);
      if (t.o == subst[kObject].term()) handle_tuple(t);
    }
  }

  // Pr[(a, b) reached] is the unbiasedness linchpin of the distinct
  // estimator (Theorem IV.2): it must be a genuine probability.
  KGOA_DCHECK_PROB(sum);
  return sum;
}

}  // namespace kgoa
