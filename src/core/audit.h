// Audit Join — the paper's contribution (section IV-D, Figure 7).
//
// Audit Join runs Wander-Join random walks, but at every step estimates the
// number of completions of the sampled prefix delta (PostgreSQL-style
// composition of join-size statistics, seeded with the actual next-step
// fan-out). When the estimate falls below the tipping threshold, the
// remainder of the walk is replaced by an exact partial computation over
// the trie indexes (the CTJ role):
//
//   * without DISTINCT, the walk contributes |Gamma_delta| / Pr(delta) to
//     each group reached by a completion — Proposition IV.1 shows this
//     estimator is unbiased;
//   * with DISTINCT, every completion (a, b) of delta contributes its walk
//     mass w(a, b) divided by Pr(a, b) (the probability that a walk
//     completes with group a and counted value b, see src/core/reach.h) —
//     Proposition IV.2 shows the resulting estimator of the distinct count
//     is unbiased. A full, untipped walk is the special case w(a, b) =
//     Pr(delta), contributing 1 / Pr(a, b).
//
// Estimates for every group divide by the total number of walks, rejected
// walks included (Figure 7, line 24).
//
// Contribution batching: per-walk contributions are buffered and flushed
// in walk order — distinct full walks defer their Pr(a, b) division to the
// flush, where the pending pairs run as a tight prefetch-then-probe loop
// over the reach cache's shard arrays. Because the flush preserves walk
// order, the per-group floating-point accumulation sequence is a function
// of the walk sequence alone, independent of batch boundaries — which is
// what keeps parallel walk-budget runs bit-identical across thread counts.
#ifndef KGOA_CORE_AUDIT_H_
#define KGOA_CORE_AUDIT_H_

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>  // kgoa-lint: allow(unordered-in-hot-path) verification hook only
#include <vector>

#include "src/core/reach.h"
#include "src/core/tipping.h"
#include "src/index/flat_table.h"
#include "src/index/index_set.h"
#include "src/ola/estimator.h"
#include "src/ola/topk.h"
#include "src/ola/walk_plan.h"
#include "src/query/chain_query.h"
#include "src/util/rng.h"

namespace kgoa {

class AuditJoin {
 public:
  struct Options {
    uint64_t seed = 1;
    // Walk order over pattern indices; empty = forward.
    std::vector<int> walk_order;
    // Tip when the estimated number of prefix completions is at most this.
    double tipping_threshold = 64.0;
    // Ablation switch: with tipping disabled (and a non-distinct query)
    // Audit Join degenerates to Wander Join.
    bool enable_tipping = true;
    // Paper-faithful (false): the tipping decision is static per walk
    // position — the composed PostgreSQL-style estimate of the remaining
    // suffix size (section IV-D); the walk switches to exact computation
    // at the first position whose static estimate is below the threshold,
    // so a tipped walk never dead-ends (it yields an exact partial count,
    // possibly zero). Adaptive (true): the estimate is additionally seeded
    // with the actual fan-out of the next step, making the decision
    // prefix-dependent. Both are unbiased.
    bool adaptive_tipping = false;
    // Hard cap on tuples visited by one partial exact computation; if the
    // estimate was wrong and enumeration exceeds this, the walk resumes
    // sampling instead (a deterministic function of the prefix, so
    // unbiasedness is preserved).
    uint64_t max_tip_enumeration = 4096;
    // When set, this engine audits against the given shared
    // reach-probability cache instead of building a private one. The cache
    // must have been built for an equivalent walk plan (same query, same
    // pattern order — contract-checked) and must outlive the engine.
    // Sharing one cache across the workers of a parallel run is what
    // makes each distinct (a, b) pair cost one audit per run instead of
    // one per thread; see src/core/reach.h for why it preserves
    // bit-identical estimates.
    ReachProbability* shared_reach = nullptr;
    // Walks advanced per structure-of-arrays batch: each level's hash
    // probes and triple fetches run as a prefetch-pipelined batch across
    // the walks. 0 = default (kDefaultWalkBatch); 1 = unbatched. Purely a
    // throughput knob: per-walk counter-derived RNG (WalkSeed) makes the
    // estimates bit-identical for every batch width.
    uint32_t batch_walks = 0;
  };

  AuditJoin(const IndexSet& indexes, const ChainQuery& query)
      : AuditJoin(indexes, query, Options()) {}
  AuditJoin(const IndexSet& indexes, const ChainQuery& query,
            Options options);

  AuditJoin(const AuditJoin&) = delete;
  AuditJoin& operator=(const AuditJoin&) = delete;

  void RunOneWalk();
  void RunWalks(uint64_t count);

  const GroupedEstimates& estimates() const { return estimates_; }
  const WalkPlan& plan() const { return plan_; }
  const TippingEstimator& tipping() const { return tipping_; }

  uint64_t tipped_walks() const { return tipped_; }
  uint64_t full_walks() const { return full_; }
  uint64_t tip_aborts() const { return tip_aborts_; }
  uint64_t pruned_walks() const { return pruned_; }
  // Walks executed through the structure-of-arrays batched path.
  uint64_t batched_walks() const { return batched_walks_; }
  uint64_t suffix_cache_hits() const { return count_cache_hits_; }
  const ReachProbability& reach() const { return *reach_; }
  bool owns_reach() const { return owned_reach_ != nullptr; }

  // Installs (nullptr: clears) a top-K group filter. Walks whose group-by
  // value is bound to a pruned group end immediately with a zero
  // contribution, and tipped enumerations skip whole equal-group runs
  // when the group component is the first free trie level of the
  // recording step's access path (block-max hops in the block tier).
  // Estimates for pruned groups decay — callers only enable this when
  // those groups can no longer enter the displayed chart.
  void SetGroupFilter(std::shared_ptr<const GroupFilter> filter) {
    group_filter_ = std::move(filter);
  }

  // Verification hook mirroring RunOneWalk's decisions exactly: enumerates
  // every stoppable prefix delta with its probability and the contribution
  // map the estimator would add. The probability-weighted sum per group
  // must equal the exact (distinct or non-distinct) count — the
  // deterministic form of Propositions IV.1 / IV.2 used by the tests.
  // Node-based map is deliberate: this is a verification interface whose
  // callers index by arbitrary group, never a per-walk hot path.
  // kgoa-lint: allow(unordered-in-hot-path) verification hook result type
  using ContributionMap = std::unordered_map<TermId, double>;
  void EnumerateAllWalks(
      const std::function<void(double probability,
                               const ContributionMap& contributions)>&
          callback);

 private:
  // Computes the contributions of tipping at walk position q0 with the
  // current prefix state and weight = 1/Pr(delta). Returns false when the
  // enumeration cap is hit (caller resumes sampling).
  bool TippedContributions(int q0, std::span<TermId> state, double weight,
                           ContributionMap* out);

  // Exact number of completions of steps q..n-1 given in-value `value`;
  // memoized per (step, value) — valid because SingleSegmentFrom(q) holds
  // whenever this is called. This cache is Audit Join's reuse of CTJ
  // caching across walks (section IV-D).
  uint64_t CountFrom(int q, TermId value);

  // Recursive exact enumeration of the remaining steps; returns false on
  // budget exhaustion. Accumulates either per-alpha counts (non-distinct)
  // or per-(a, b) walk mass (distinct) into the insertion-ordered arena.
  bool EnumerateRemaining(int q, std::span<TermId> state, double mass,
                          uint64_t* budget,
                          FlatAccumulator<uint64_t, double>* acc);

  // One walk, with contributions deferred into pending_ (flushed by the
  // public entry points).
  void RunOneWalkInternal();

  // `batch` walks advanced level-synchronously (see the .cc for the phase
  // structure and the walk-order argument that keeps it bit-identical to
  // batch = 1). Contributions land in pending_ in walk order.
  void RunWalkBatch(uint32_t batch);

  // Drains pending_ in walk order: one prefetch pass over the reach
  // cache's shards for the pairs still owing their Pr division, then one
  // in-order probe-and-accumulate pass.
  void FlushContributions();

  // kgoa-lint: allow(raw-graph-retention) walk engine scoped inside one pinned serving call
  const IndexSet& indexes_;
  ChainQuery query_;
  Options options_;
  WalkPlan plan_;
  TippingEstimator tipping_;
  std::unique_ptr<ReachProbability> owned_reach_;  // null when shared
  // Concurrency contract (capability model, DESIGN.md §11): AuditJoin
  // itself is single-threaded — every field here is engine-private — but
  // `reach_` may point at a cache SHARED with engines on other threads
  // (ParallelOlaExecutor / ServingCore slots / ShardCoordinator jobs).
  // That is safe without a lock on this side because ReachProbability is
  // internally synchronized: its ShardedFlatTable memos take striped
  // per-shard kgoa::Mutexes on insert and are lock-free (acquire-load)
  // on probe, and memo values are pure functions of (indexes, plan), so
  // racing inserts are benign (src/index/concurrent_flat_table.h).
  ReachProbability* reach_;
  GroupedEstimates estimates_;
  // Re-seeded per walk from WalkSeed(options_.seed, walk_counter_): walk
  // draws are a pure function of the walk index, independent of batching.
  Rng rng_;
  uint64_t walk_counter_ = 0;
  std::vector<TermId> state_;

  // next_in_component_[q]: component of step q's pattern carrying step
  // q+1's in-value, when steps q, q+1 chain directly (-1 otherwise).
  std::vector<int> next_in_component_;
  std::vector<FlatAccumulator<TermId, uint64_t>> count_memo_;
  // In-values whose tip enumeration at a step exceeded the budget once;
  // later walks skip the attempt. The decision stays a deterministic
  // function of the prefix (and of earlier, independent walks), so the
  // estimator stays unbiased.
  std::vector<FlatAccumulator<TermId, uint8_t>> abort_memo_;
  uint64_t count_cache_hits_ = 0;

  // Scratch arena reused by TippedContributions across walks.
  FlatAccumulator<uint64_t, double> tip_acc_;

  // Top-K prune state. alpha_record_step_: the step whose sampled triple
  // binds the group-by slot. alpha_enum_level_: the trie level of the
  // group component at that step when it is the first free level of the
  // access path (equal-group positions are then contiguous runs the
  // enumeration can skip via BlockEnd); -1 otherwise.
  std::shared_ptr<const GroupFilter> group_filter_;
  int alpha_record_step_ = -1;
  int alpha_enum_level_ = -1;
  uint64_t pruned_ = 0;

  // Deferred per-walk contributions, in walk order.
  struct PendingContribution {
    TermId group;
    double value;       // final contribution, unless needs_pr
    uint64_t pair_key;  // PackPair(a, b) when needs_pr
    bool needs_pr;      // true: contribution is 1 / PrAB(a, b)
  };
  std::vector<PendingContribution> pending_;

  // Structure-of-arrays batch state, reused across batches. A lane is one
  // in-flight walk; done lanes keep their slot so lane index == walk
  // order within the batch.
  enum LaneState : uint8_t { kLaneAlive = 0, kLaneDone = 1, kLaneRejected = 2 };
  std::vector<Rng> batch_rng_;
  std::vector<TermId> batch_state_;  // walk-major: [lane * num_slots + slot]
  std::vector<double> batch_weight_;
  std::vector<TermId> batch_bound_;
  std::vector<Range> batch_range_;
  std::vector<uint32_t> batch_pos_;
  std::vector<uint8_t> batch_done_;  // LaneState
  std::vector<uint32_t> batch_live_; // alive lane indices, walk order
  std::vector<std::vector<PendingContribution>> batch_contrib_;

  uint64_t tipped_ = 0;
  uint64_t full_ = 0;
  uint64_t tip_aborts_ = 0;
  uint64_t batched_walks_ = 0;
};

}  // namespace kgoa

#endif  // KGOA_CORE_AUDIT_H_
