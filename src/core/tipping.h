// Tipping-point join-size estimation (section IV-D, "Tipping Point").
//
// Audit Join decides when to replace the remainder of a random walk with an
// exact partial computation by estimating the number of completions of the
// walk. The paper uses the simple PostgreSQL planner technique: the size of
// R join S on attribute x is estimated as |R| * |S| / max(ndv_R(x),
// ndv_S(x)); for more than two patterns the estimates compose by
// multiplication. Per walk, the estimate is seeded with the actual fan-out
// of the next step (an O(1) hash lookup), making the decision adaptive to
// the sampled prefix.
#ifndef KGOA_CORE_TIPPING_H_
#define KGOA_CORE_TIPPING_H_

#include <cstddef>
#include <vector>

#include "src/index/index_set.h"
#include "src/ola/walk_plan.h"
#include "src/util/contract.h"

namespace kgoa {

class TippingEstimator {
 public:
  TippingEstimator(const IndexSet& indexes, const WalkPlan& plan);

  // Statistical estimate of the number of completions of walk steps
  // q..n-1 per value entering step q: the product of the per-step expected
  // fan-outs |G_r| / max(ndv of the join variable on either side).
  // StaticSuffixEstimate(n) == 1.
  double StaticSuffixEstimate(int q) const {
    // Tipping-decision precondition: q indexes a step or the one-past-end
    // sentinel, and the composed estimate is a non-negative cardinality.
    KGOA_DCHECK(q >= 0 && static_cast<std::size_t>(q) < suffix_.size());
    KGOA_DCHECK_GE(suffix_[q], 0.0);
    return suffix_[q];
  }

  // Per-walk estimate once step q's actual fan-out d_q is known.
  double Estimate(uint64_t d_q, int q) const {
    return static_cast<double>(d_q) * StaticSuffixEstimate(q + 1);
  }

 private:
  std::vector<double> suffix_;
};

}  // namespace kgoa

#endif  // KGOA_CORE_TIPPING_H_
