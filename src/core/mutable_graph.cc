#include "src/core/mutable_graph.h"

#include <algorithm>
#include <utility>

#include "src/ola/parallel.h"
#include "src/util/contract.h"

namespace kgoa {

namespace {

// Sorted-vector (SpoLess) set primitives for the canonical pending sets.
// Batches are small next to the base, so O(n) vector splices beat a tree.
bool SortedInsert(std::vector<Triple>& v, const Triple& t) {
  auto it = std::lower_bound(v.begin(), v.end(), t, SpoLess);
  if (it != v.end() && *it == t) return false;
  v.insert(it, t);
  return true;
}

bool SortedErase(std::vector<Triple>& v, const Triple& t) {
  auto it = std::lower_bound(v.begin(), v.end(), t, SpoLess);
  if (it == v.end() || !(*it == t)) return false;
  v.erase(it);
  return true;
}

// The canonical apply: folds one batch (inserts first, then deletes) into
// `pending`, keeping its invariants against `base` — adds absent from the
// base, deletes present in it, sets disjoint. Every effective operation
// flips exactly one triple's live-set membership; the return value counts
// those flips.
uint64_t CanonicalApply(const Graph& base,
                        const std::vector<Triple>& inserts,
                        const std::vector<Triple>& deletes,
                        PendingWrites& pending) {
  const TermId num_terms = static_cast<TermId>(base.dict().size());
  uint64_t changes = 0;
  for (const Triple& t : inserts) {
    KGOA_DCHECK_MSG(t.s < num_terms && t.p < num_terms && t.o < num_terms,
                    "insert of a triple with uninterned TermIds");
    if (SortedErase(pending.dels, t)) {
      ++changes;  // un-delete: the triple is back in the live set
    } else if (!base.Contains(t) && SortedInsert(pending.adds, t)) {
      ++changes;
    }
  }
  for (const Triple& t : deletes) {
    if (SortedErase(pending.adds, t)) {
      ++changes;  // retract a pending add before it ever hit a base
    } else if (base.Contains(t) && SortedInsert(pending.dels, t)) {
      ++changes;
    }
  }
  return changes;
}

}  // namespace

MutableGraph::MutableGraph(Graph graph, Options options)
    : options_(options) {
  auto base = std::make_shared<const Graph>(std::move(graph));
  auto indexes =
      std::make_shared<const IndexSet>(*base, options_.index_options);
  MutexLock lock(writer_mutex_);
  base_graph_ = std::move(base);
  base_indexes_ = std::move(indexes);
  PublishLocked();  // epoch 0, clean
}

GraphSnapshot MutableGraph::snapshot() const {
  MutexLock lock(publish_mutex_);
  return GraphSnapshot(current_);
}

uint64_t MutableGraph::epoch() const {
  MutexLock lock(publish_mutex_);
  return current_->epoch;
}

uint64_t MutableGraph::Apply(const std::vector<Triple>& inserts,
                             const std::vector<Triple>& deletes) {
  MutexLock lock(writer_mutex_);
  if (compacting_) {
    // A fold is running against a frozen copy of the old pending set:
    // record the raw batch so the fold's epilogue can replay it against
    // the NEW base (this is what keeps "delete an add the fold already
    // absorbed" correct). The batch ALSO lands in pending_ below, so the
    // epoch published right now still reflects it.
    journal_.push_back(Journal{inserts, deletes});
  }
  const uint64_t changes =
      CanonicalApply(*base_graph_, inserts, deletes, pending_);
  if (changes == 0) return 0;  // no-op batch: nothing new to publish
  ++batches_applied_;
  PublishLocked();
  return changes;
}

TermId MutableGraph::Intern(std::string_view term) {
  MutexLock lock(writer_mutex_);
  return base_graph_->dict_ptr()->Intern(term);
}

uint64_t MutableGraph::Compact() {
  std::shared_ptr<const Graph> old_graph;
  PendingWrites folded;
  {
    MutexLock lock(writer_mutex_);
    // One fold at a time: a second Compact waits for the in-flight one,
    // then folds whatever writes replayed on top of its result.
    compact_cv_.Wait(writer_mutex_,
                     [this]() KGOA_NO_THREAD_SAFETY_ANALYSIS {
                       return !compacting_;
                     });
    if (pending_.empty()) {
      MutexLock publish_lock(publish_mutex_);
      return current_->epoch;
    }
    compacting_ = true;
    journal_.clear();
    old_graph = base_graph_;
    folded = pending_;
  }

  // The heavy fold, off-lock: writers keep landing batches (journaled
  // above) and readers keep serving pinned versions. One linear merge —
  // all three sequences are (s,p,o)-sorted — then the exact same build
  // path as an initial load, so the result is byte-identical to indexing
  // the merged triple set from scratch.
  std::vector<Triple> merged;
  const std::vector<Triple>& base = old_graph->triples();
  merged.reserve(base.size() + folded.adds.size() - folded.dels.size());
  auto del_it = folded.dels.cbegin();
  auto add_it = folded.adds.cbegin();
  for (const Triple& t : base) {
    while (add_it != folded.adds.cend() && SpoLess(*add_it, t)) {
      merged.push_back(*add_it++);
    }
    if (del_it != folded.dels.cend() && *del_it == t) {
      ++del_it;
      continue;
    }
    merged.push_back(t);
  }
  merged.insert(merged.end(), add_it, folded.adds.cend());
  KGOA_CHECK_MSG(del_it == folded.dels.cend(),
                 "pending delete missing from the base it was taken against");
  auto new_graph = std::make_shared<const Graph>(
      Graph::Rebase(*old_graph, std::move(merged)));
  auto new_indexes =
      std::make_shared<const IndexSet>(*new_graph, options_.index_options);

  uint64_t published = 0;
  {
    MutexLock lock(writer_mutex_);
    // Swap epilogue: re-derive the pending set by replaying every batch
    // that landed mid-fold against the new base (the old-base pending_ is
    // superseded — its folded prefix is IN the new base).
    PendingWrites replayed;
    for (const Journal& batch : journal_) {
      CanonicalApply(*new_graph, batch.inserts, batch.deletes, replayed);
    }
    journal_.clear();
    base_graph_ = std::move(new_graph);
    base_indexes_ = std::move(new_indexes);
    pending_ = std::move(replayed);
    ++compactions_;
    published = PublishLocked();
    compacting_ = false;
  }
  compact_cv_.NotifyAll();
  return published;
}

uint64_t MutableGraph::PublishLocked() {
  auto version = std::make_shared<GraphVersion>();
  version->graph = base_graph_;
  version->base_indexes = base_indexes_;
  if (!pending_.empty()) {
    auto overlay =
        std::make_shared<const DeltaOverlay>(*base_indexes_, pending_);
    version->view = std::shared_ptr<const IndexSet>(
        IndexSet::MakeView(*base_indexes_, *overlay));
    version->overlay = std::move(overlay);
  } else {
    version->view = base_indexes_;
  }
  MutexLock lock(publish_mutex_);
  version->epoch = current_ == nullptr ? 0 : current_->epoch + 1;
  current_ = version;
  versions_.push_back(version);
  return version->epoch;
}

// ---------------------------------------------------------------------------
// Background compaction
// ---------------------------------------------------------------------------

struct MutableGraph::CompactTicket::Shared {
  Mutex mutex;
  CondVar cv;
  bool done KGOA_GUARDED_BY(mutex) = false;
  uint64_t epoch KGOA_GUARDED_BY(mutex) = 0;
};

bool MutableGraph::CompactTicket::done() const {
  KGOA_CHECK(valid());
  MutexLock lock(shared_->mutex);
  return shared_->done;
}

uint64_t MutableGraph::CompactTicket::Await() const {
  KGOA_CHECK(valid());
  Shared& shared = *shared_;
  MutexLock lock(shared.mutex);
  shared.cv.Wait(shared.mutex, [&shared]() KGOA_NO_THREAD_SAFETY_ANALYSIS {
    return shared.done;
  });
  return shared.epoch;
}

MutableGraph::CompactTicket MutableGraph::CompactAsync(ServingCore& core) {
  CompactTicket ticket;
  ticket.shared_ = std::make_shared<CompactTicket::Shared>();
  std::shared_ptr<CompactTicket::Shared> shared = ticket.shared_;
  core.SubmitTask([this, shared]() {
    const uint64_t epoch = Compact();
    {
      MutexLock lock(shared->mutex);
      shared->done = true;
      shared->epoch = epoch;
    }
    shared->cv.NotifyAll();
  });
  return ticket;
}

MutableGraph::Stats MutableGraph::stats() const {
  Stats stats;
  {
    MutexLock lock(writer_mutex_);
    stats.base_triples = base_graph_->NumTriples();
    stats.overlay_adds = pending_.adds.size();
    stats.overlay_dels = pending_.dels.size();
    stats.live_triples =
        stats.base_triples - stats.overlay_dels + stats.overlay_adds;
    stats.batches_applied = batches_applied_;
    stats.compactions = compactions_;
  }
  MutexLock lock(publish_mutex_);
  stats.epoch = current_->epoch;
  versions_.erase(
      std::remove_if(versions_.begin(), versions_.end(),
                     [](const std::weak_ptr<const GraphVersion>& v) {
                       return v.expired();
                     }),
      versions_.end());
  stats.snapshots_pinned = versions_.size();
  return stats;
}

}  // namespace kgoa
