#include "src/core/explorer.h"

#include <algorithm>

#include "src/eval/runner.h"
#include "src/join/ctj.h"
#include "src/util/contract.h"
#include "src/util/stopwatch.h"

namespace kgoa {

Explorer::Explorer(Graph graph)
    : Explorer(std::move(graph), MutableGraph::Options()) {}

Explorer::Explorer(Graph graph, MutableGraph::Options options)
    : mutable_graph_(std::move(graph), options) {}

uint64_t Explorer::Apply(const std::vector<Triple>& inserts,
                         const std::vector<Triple>& deletes) {
  const uint64_t changes = mutable_graph_.Apply(inserts, deletes);
  if (changes > 0) AfterPublish();
  return changes;
}

uint64_t Explorer::Compact() {
  const uint64_t epoch = mutable_graph_.Compact();
  AfterPublish();
  return epoch;
}

MutableGraph::CompactTicket Explorer::CompactAsync() {
  // Stale-cache eviction for a background fold happens on the NEXT write
  // (or synchronous Compact); superseded entries only waste memory.
  return mutable_graph_.CompactAsync(Core());
}

void Explorer::AfterPublish() {
  const uint64_t epoch = mutable_graph_.epoch();
  reach_caches_.EvictStale(epoch);
  if (shard_coordinator_ != nullptr) {
    shard_coordinator_->EvictStaleReach(epoch);
  }
  ExportMetrics(mutable_graph_, "epoch.", &metrics_);
  ExportReachMetrics();
}

GroupedResult Explorer::Evaluate(const ChainQuery& query) const {
  // Pinned for the call: an exact evaluation racing a write still reads
  // one coherent version.
  const GraphSnapshot snapshot = mutable_graph_.snapshot();
  return CtjEngine(snapshot.indexes()).Evaluate(query);
}

namespace {

void SortBars(Chart& chart) {
  std::sort(chart.bars.begin(), chart.bars.end(),
            [](const Bar& a, const Bar& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.category < b.category;
            });
}

// Metric prefix per engine kind ("aj.walks", "wj.walks", "rj.walks").
const char* EngineMetricPrefix(OlaEngineKind engine) {
  switch (engine) {
    case OlaEngineKind::kAudit:
      return "aj.";
    case OlaEngineKind::kWander:
      return "wj.";
    case OlaEngineKind::kRipple:
      return "rj.";
  }
  return "ola.";
}

}  // namespace

Chart Explorer::ChartFromEstimates(const GroupedEstimates& estimates,
                                   BarKind kind) {
  Chart chart;
  chart.kind = kind;
  for (const auto& [group, estimate] : estimates.Estimates()) {
    if (estimate <= 0) continue;
    chart.bars.push_back(
        Bar{group, estimate, estimates.CiHalfWidth(group)});
  }
  SortBars(chart);
  return chart;
}

Chart Explorer::EvaluateChart(const ChainQuery& query, BarKind kind) const {
  Chart chart;
  chart.kind = kind;
  for (const auto& [group, count] : Evaluate(query).counts) {
    chart.bars.push_back(Bar{group, static_cast<double>(count), 0.0});
  }
  SortBars(chart);
  return chart;
}

Chart Explorer::ApproximateChart(const ChainQuery& query, double seconds,
                                 BarKind kind,
                                 AuditJoin::Options options) const {
  if (options.walk_order.empty()) {
    options.walk_order = DefaultAuditOrder(query);
  }
  // Pinned for the call: walks and audits read one coherent version even
  // while writes land.
  const GraphSnapshot snapshot = mutable_graph_.snapshot();
  // Serve distinct charts against the session's warm reach cache so a
  // revisited (epoch, query, walk order) never re-audits a pair (the
  // memos are exact across servings — src/explore/cache.h). The acquired
  // keepalive outlives the AuditJoin below.
  AcquiredReach acquired;
  if (query.distinct() && options.shared_reach == nullptr) {
    acquired = reach_caches_.Acquire(query, options.walk_order, snapshot);
    options.shared_reach = acquired.reach;
  }
  Stopwatch clock;
  AuditJoin audit(snapshot.indexes(), query, options);
  do {
    audit.RunWalks(64);
  } while (clock.ElapsedSeconds() < seconds);
  ExportMetrics(audit, "aj.", &metrics_);
  ExportReachMetrics();
  metrics_.Add("explorer.charts", 1);
  metrics_.SetGauge("explorer.last_chart_seconds", clock.ElapsedSeconds());
  return ChartFromEstimates(audit.estimates(), kind);
}

Chart Explorer::ApproximateChartParallel(const ChainQuery& query,
                                         double seconds, BarKind kind,
                                         ParallelOlaOptions options) const {
  // Grow the pool-to-be if the caller wants more concurrency than the
  // default and no pool exists yet; an existing pool keeps its size (it
  // may be running other jobs) and simply caps this job's concurrency.
  if (serving_core_ == nullptr) {
    serving_options_.threads =
        std::max(serving_options_.threads, options.threads);
  }
  ChartJobOptions job;
  job.walk_budget = 0;
  job.deadline_seconds = seconds;
  job.workers = std::max(1, options.threads);
  job.max_concurrency = options.threads;
  job.seed = options.seed;
  job.engine = options.engine;
  job.walk_order = std::move(options.walk_order);
  job.tipping_threshold = options.tipping_threshold;
  job.share_reach = options.share_reach;
  job.shared_reach = options.shared_reach;
  job.snapshot_period = options.snapshot_period;
  const ParallelOlaResult run = SubmitChart(query, std::move(job)).Await();

  const char* prefix = EngineMetricPrefix(options.engine);
  ExportMetrics(run.counters, prefix, &metrics_);
  if (options.engine == OlaEngineKind::kAudit) ExportReachMetrics();
  metrics_.Add(std::string(prefix) + "walks", run.estimates.walks());
  metrics_.Add(std::string(prefix) + "rejected_walks",
               run.estimates.rejected_walks());
  metrics_.Add("explorer.charts", 1);
  metrics_.SetGauge("explorer.last_chart_seconds", run.elapsed_seconds);
  metrics_.SetGauge("explorer.last_chart_walks_per_second",
                    run.elapsed_seconds > 0
                        ? static_cast<double>(run.estimates.walks()) /
                              run.elapsed_seconds
                        : 0.0);
  ExportMetrics(serve_stats(), "serve.", &metrics_);
  return ChartFromEstimates(run.estimates, kind);
}

ServingCore& Explorer::Core() const {
  if (serving_core_ == nullptr) {
    serving_core_ = std::make_unique<ServingCore>(mutable_graph_.snapshot(),
                                                  serving_options_);
  }
  return *serving_core_;
}

ChartHandle Explorer::SubmitChart(const ChainQuery& query,
                                  ChartJobOptions options) const {
  // Pin the CURRENT version at submit (not the core's construction-time
  // default, which a long-lived explorer outgrows write by write).
  if (!options.snapshot.valid()) options.snapshot = mutable_graph_.snapshot();
  if (options.engine == OlaEngineKind::kAudit) {
    if (options.walk_order.empty()) {
      options.walk_order = DefaultAuditOrder(query);
    }
    // Serve distinct jobs against the explorer's warm reach caches so
    // concurrent and repeated jobs on the same (epoch, query, walk order)
    // share audits instead of redoing them per job.
    if (query.distinct() && options.shared_reach == nullptr &&
        options.share_reach) {
      AcquiredReach acquired = reach_caches_.Acquire(query, options.walk_order,
                                                     options.snapshot);
      options.share_reach = false;
      options.shared_reach = acquired.reach;
      options.reach_keepalive = std::move(acquired.keepalive);
    }
  }
  ChartHandle handle = Core().Submit(query, std::move(options));
  metrics_.Add("explorer.jobs_submitted", 1);
  ExportMetrics(serve_stats(), "serve.", &metrics_);
  return handle;
}

void Explorer::ConfigureServing(ServingCore::Options options) const {
  serving_core_.reset();  // joins the pool; cancels any live jobs
  serving_options_ = options;
}

void Explorer::EnableSharding(ShardCoordinator::Options options) const {
  shard_coordinator_.reset();  // joins the shard pools first
  shard_coordinator_ = std::make_unique<ShardCoordinator>(
      mutable_graph_.snapshot(), options);
  ExportMetrics(*shard_coordinator_, "shard.", &metrics_);
}

ShardCoordinator& Explorer::shard_coordinator() const {
  KGOA_CHECK_MSG(shard_coordinator_ != nullptr,
                 "call EnableSharding before sharded serving");
  return *shard_coordinator_;
}

ShardChartHandle Explorer::SubmitChartSharded(const ChainQuery& query,
                                              ShardChartOptions options)
    const {
  // Pin the CURRENT version for the whole fan-out (the coordinator pins
  // its construction-time version otherwise, which writes supersede).
  if (!options.snapshot.valid()) options.snapshot = mutable_graph_.snapshot();
  ShardChartHandle handle =
      shard_coordinator().Submit(query, std::move(options));
  metrics_.Add("explorer.sharded_jobs_submitted", 1);
  ExportMetrics(*shard_coordinator_, "shard.", &metrics_);
  return handle;
}

Chart Explorer::ApproximateChartSharded(const ChainQuery& query,
                                        double seconds, BarKind kind,
                                        ShardChartOptions options) const {
  options.walk_budget = 0;
  options.deadline_seconds = seconds;
  const OlaEngineKind engine = options.engine;
  const ParallelOlaResult run =
      SubmitChartSharded(query, std::move(options)).Await();

  const char* prefix = EngineMetricPrefix(engine);
  ExportMetrics(run.counters, prefix, &metrics_);
  metrics_.Add(std::string(prefix) + "walks", run.estimates.walks());
  metrics_.Add(std::string(prefix) + "rejected_walks",
               run.estimates.rejected_walks());
  metrics_.Add("explorer.charts", 1);
  metrics_.SetGauge("explorer.last_chart_seconds", run.elapsed_seconds);
  metrics_.SetGauge("explorer.last_chart_walks_per_second",
                    run.elapsed_seconds > 0
                        ? static_cast<double>(run.estimates.walks()) /
                              run.elapsed_seconds
                        : 0.0);
  ExportMetrics(*shard_coordinator_, "shard.", &metrics_);
  return ChartFromEstimates(run.estimates, kind);
}

ServeStats Explorer::serve_stats() const {
  return serving_core_ == nullptr ? ServeStats() : serving_core_->stats();
}

void Explorer::ExportReachMetrics() const {
  // Session-cumulative values, so SetCounter (not Add): each serving
  // republishes the registry's current totals.
  metrics_.SetCounter("explorer.reach.plans", reach_caches_.plans());
  metrics_.SetCounter("explorer.reach.plan_hits", reach_caches_.plan_hits());
  metrics_.SetCounter("explorer.reach.plan_misses",
                      reach_caches_.plan_misses());
  metrics_.SetCounter("explorer.reach.stale_evictions",
                      reach_caches_.stale_evictions());
  const ShardedTableStats stats = reach_caches_.stats();
  metrics_.SetCounter("explorer.reach.hits", stats.hits);
  metrics_.SetCounter("explorer.reach.misses", stats.misses);
  metrics_.SetCounter("explorer.reach.contention", stats.insert_contention);
  metrics_.SetCounter("explorer.reach.entries", stats.entries);
  metrics_.SetCounter("explorer.reach.memory_bytes", stats.memory_bytes);
}

}  // namespace kgoa
