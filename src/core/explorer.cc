#include "src/core/explorer.h"

#include <algorithm>

#include "src/eval/runner.h"
#include "src/join/ctj.h"
#include "src/util/stopwatch.h"

namespace kgoa {

Explorer::Explorer(Graph graph)
    : graph_(std::move(graph)),
      indexes_(std::make_unique<IndexSet>(graph_)) {}

GroupedResult Explorer::Evaluate(const ChainQuery& query) const {
  return CtjEngine(*indexes_).Evaluate(query);
}

namespace {

void SortBars(Chart& chart) {
  std::sort(chart.bars.begin(), chart.bars.end(),
            [](const Bar& a, const Bar& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.category < b.category;
            });
}

}  // namespace

Chart Explorer::EvaluateChart(const ChainQuery& query, BarKind kind) const {
  Chart chart;
  chart.kind = kind;
  for (const auto& [group, count] : Evaluate(query).counts) {
    chart.bars.push_back(Bar{group, static_cast<double>(count), 0.0});
  }
  SortBars(chart);
  return chart;
}

Chart Explorer::ApproximateChart(const ChainQuery& query, double seconds,
                                 BarKind kind,
                                 AuditJoin::Options options) const {
  if (options.walk_order.empty()) {
    options.walk_order = DefaultAuditOrder(query);
  }
  Stopwatch clock;
  AuditJoin audit(*indexes_, query, options);
  do {
    audit.RunWalks(64);
  } while (clock.ElapsedSeconds() < seconds);
  Chart chart;
  chart.kind = kind;
  for (const auto& [group, estimate] : audit.estimates().Estimates()) {
    if (estimate <= 0) continue;
    chart.bars.push_back(
        Bar{group, estimate, audit.estimates().CiHalfWidth(group)});
  }
  SortBars(chart);
  return chart;
}

}  // namespace kgoa
