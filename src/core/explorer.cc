#include "src/core/explorer.h"

#include <algorithm>

#include "src/eval/runner.h"
#include "src/join/ctj.h"
#include "src/util/stopwatch.h"

namespace kgoa {

Explorer::Explorer(Graph graph)
    : graph_(std::move(graph)),
      indexes_(std::make_unique<IndexSet>(graph_)) {}

GroupedResult Explorer::Evaluate(const ChainQuery& query) const {
  return CtjEngine(*indexes_).Evaluate(query);
}

namespace {

void SortBars(Chart& chart) {
  std::sort(chart.bars.begin(), chart.bars.end(),
            [](const Bar& a, const Bar& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.category < b.category;
            });
}

Chart ChartFromEstimates(const GroupedEstimates& estimates, BarKind kind) {
  Chart chart;
  chart.kind = kind;
  for (const auto& [group, estimate] : estimates.Estimates()) {
    if (estimate <= 0) continue;
    chart.bars.push_back(
        Bar{group, estimate, estimates.CiHalfWidth(group)});
  }
  SortBars(chart);
  return chart;
}

}  // namespace

Chart Explorer::EvaluateChart(const ChainQuery& query, BarKind kind) const {
  Chart chart;
  chart.kind = kind;
  for (const auto& [group, count] : Evaluate(query).counts) {
    chart.bars.push_back(Bar{group, static_cast<double>(count), 0.0});
  }
  SortBars(chart);
  return chart;
}

Chart Explorer::ApproximateChart(const ChainQuery& query, double seconds,
                                 BarKind kind,
                                 AuditJoin::Options options) const {
  if (options.walk_order.empty()) {
    options.walk_order = DefaultAuditOrder(query);
  }
  // Serve distinct charts against the session's warm reach cache so a
  // revisited (query, walk order) never re-audits a pair (the memos are
  // exact across servings — src/explore/cache.h).
  if (query.distinct() && options.shared_reach == nullptr) {
    options.shared_reach = reach_caches_.Acquire(query, options.walk_order);
  }
  Stopwatch clock;
  AuditJoin audit(*indexes_, query, options);
  do {
    audit.RunWalks(64);
  } while (clock.ElapsedSeconds() < seconds);
  ExportMetrics(audit, "aj.", &metrics_);
  ExportReachMetrics();
  metrics_.Add("explorer.charts", 1);
  metrics_.SetGauge("explorer.last_chart_seconds", clock.ElapsedSeconds());
  return ChartFromEstimates(audit.estimates(), kind);
}

Chart Explorer::ApproximateChartParallel(const ChainQuery& query,
                                         double seconds, BarKind kind,
                                         ParallelOlaOptions options) const {
  if (options.use_audit && options.walk_order.empty()) {
    options.walk_order = DefaultAuditOrder(query);
  }
  if (options.use_audit && query.distinct() &&
      options.shared_reach == nullptr) {
    options.shared_reach = reach_caches_.Acquire(query, options.walk_order);
  }
  const ParallelOlaResult run =
      ParallelOlaExecutor(*indexes_, query, options).RunForDuration(seconds);
  ExportMetrics(run.counters, options.use_audit ? "aj." : "wj.", &metrics_);
  if (options.use_audit) ExportReachMetrics();
  metrics_.Add(options.use_audit ? "aj.walks" : "wj.walks",
               run.estimates.walks());
  metrics_.Add(options.use_audit ? "aj.rejected_walks" : "wj.rejected_walks",
               run.estimates.rejected_walks());
  metrics_.Add("explorer.charts", 1);
  metrics_.SetGauge("explorer.last_chart_seconds", run.elapsed_seconds);
  metrics_.SetGauge("explorer.last_chart_walks_per_second",
                    run.elapsed_seconds > 0
                        ? static_cast<double>(run.estimates.walks()) /
                              run.elapsed_seconds
                        : 0.0);
  return ChartFromEstimates(run.estimates, kind);
}

void Explorer::ExportReachMetrics() const {
  // Session-cumulative values, so SetCounter (not Add): each serving
  // republishes the registry's current totals.
  metrics_.SetCounter("explorer.reach.plans", reach_caches_.plans());
  metrics_.SetCounter("explorer.reach.plan_hits", reach_caches_.plan_hits());
  metrics_.SetCounter("explorer.reach.plan_misses",
                      reach_caches_.plan_misses());
  const ShardedTableStats stats = reach_caches_.stats();
  metrics_.SetCounter("explorer.reach.hits", stats.hits);
  metrics_.SetCounter("explorer.reach.misses", stats.misses);
  metrics_.SetCounter("explorer.reach.contention", stats.insert_contention);
  metrics_.SetCounter("explorer.reach.entries", stats.entries);
  metrics_.SetCounter("explorer.reach.memory_bytes", stats.memory_bytes);
}

}  // namespace kgoa
