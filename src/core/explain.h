// EXPLAIN for Audit Join plans: renders the walk order, each step's access
// path (index order and fixed prefix depth), the per-pattern extents, the
// composed static suffix estimates, and the position where the tipping
// point fires for a given threshold — the database-engine introspection a
// user needs to understand why a query samples the way it does.
#ifndef KGOA_CORE_EXPLAIN_H_
#define KGOA_CORE_EXPLAIN_H_

#include <string>

#include "src/core/audit.h"
#include "src/index/index_set.h"
#include "src/query/chain_query.h"

namespace kgoa {

// `dict` may be null (constants print as #id). The walk order defaults to
// the engine default (anchor-first) when options.walk_order is empty.
std::string ExplainPlan(const IndexSet& indexes, const ChainQuery& query,
                        const Dictionary* dict,
                        const AuditJoin::Options& options);

std::string ExplainPlan(const IndexSet& indexes, const ChainQuery& query,
                        const Dictionary* dict = nullptr);

}  // namespace kgoa

#endif  // KGOA_CORE_EXPLAIN_H_
