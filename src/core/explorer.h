// Explorer — the library's top-level facade (the "specialized query
// engine" of Figure 1). It owns a MutableGraph and serves exploration
// charts either exactly (Cached Trie Join) or approximately within a
// wall-clock budget (Audit Join), the way the paper's exploration system
// serves its web frontend. Since the snapshot-epoch refactor (DESIGN.md
// §13) the graph is writable: Insert/Delete/Apply land triple batches,
// Compact folds them into a rebuilt base, and every serving call pins the
// current version so in-flight charts never see a write.
//
// Typical use (see examples/quickstart.cc):
//
//   kgoa::Explorer explorer(std::move(graph));
//   kgoa::ExplorationSession session = explorer.NewSession();
//   kgoa::ChainQuery q = session.BuildQuery(kgoa::ExpansionKind::kSubclass);
//   kgoa::Chart chart = explorer.ApproximateChart(q, /*seconds=*/0.1);
#ifndef KGOA_CORE_EXPLORER_H_
#define KGOA_CORE_EXPLORER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/core/audit.h"
#include "src/core/mutable_graph.h"
#include "src/eval/registry.h"
#include "src/explore/cache.h"
#include "src/explore/chart.h"
#include "src/explore/session.h"
#include "src/index/index_set.h"
#include "src/index/snapshot.h"
#include "src/join/result.h"
#include "src/ola/parallel.h"
#include "src/query/chain_query.h"
#include "src/rdf/graph.h"
#include "src/shard/coordinator.h"

namespace kgoa {

class Explorer {
 public:
  // Takes ownership of the graph and builds the four index orders
  // (publishing epoch 0).
  explicit Explorer(Graph graph);
  Explorer(Graph graph, MutableGraph::Options options);

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  // Legacy accessors over the CURRENT version. The references stay valid
  // until the next Compact (graph) / next write or Compact (indexes) —
  // callers that hold on across writes should pin a snapshot() instead.
  const Graph& graph() const { return mutable_graph_.snapshot().graph(); }
  const IndexSet& indexes() const {
    return mutable_graph_.snapshot().indexes();
  }

  // Pins the current graph version (see src/index/snapshot.h). The
  // preferred handle for anything that outlives one call.
  GraphSnapshot snapshot() const { return mutable_graph_.snapshot(); }
  uint64_t epoch() const { return mutable_graph_.epoch(); }

  // --- Writes (snapshot-epoch model, DESIGN.md §13) ------------------
  //
  // Each effective batch publishes a new epoch; serving calls submitted
  // afterwards see it, in-flight jobs keep their pinned version. Stale
  // reach caches (and the shard coordinator's, when sharding is enabled)
  // are evicted after every publish; in-flight jobs keep theirs via
  // keepalives.

  // Applies one batch (inserts first, then deletes); returns the number
  // of live-set changes. Thread-safe against serving; see MutableGraph.
  uint64_t Apply(const std::vector<Triple>& inserts,
                 const std::vector<Triple>& deletes);
  uint64_t Insert(const std::vector<Triple>& triples) {
    return Apply(triples, {});
  }
  uint64_t Delete(const std::vector<Triple>& triples) {
    return Apply({}, triples);
  }

  // Interns a term in the shared dictionary (stable across compactions).
  // Not safe against concurrent readers spelling terms — intern before
  // submitting jobs that race writes.
  TermId Intern(std::string_view term) { return mutable_graph_.Intern(term); }

  // Folds the overlay into a rebuilt base; returns the published epoch.
  uint64_t Compact();
  // Schedules Compact() on the shared serving pool (chart quanta take
  // precedence) and returns a completion ticket.
  MutableGraph::CompactTicket CompactAsync();

  // Epoch/overlay gauges ("epoch.*" in the metrics dump).
  MutableGraph::Stats graph_stats() const { return mutable_graph_.stats(); }
  const MutableGraph& mutable_graph() const { return mutable_graph_; }

  // Fresh session starting at owl:Thing (or the given root class). The
  // session pins the current version for its vocabulary lookups.
  ExplorationSession NewSession(TermId root_class = kInvalidTerm) const {
    return ExplorationSession(mutable_graph_.snapshot(), root_class);
  }

  // Exact grouped evaluation (Cached Trie Join).
  GroupedResult Evaluate(const ChainQuery& query) const;

  // Exact chart: one bar per group, sorted by count descending.
  Chart EvaluateChart(const ChainQuery& query, BarKind kind) const;

  // Approximate chart via Audit Join within `seconds` of wall-clock time.
  // Bars carry 0.95 confidence-interval half-widths.
  Chart ApproximateChart(const ChainQuery& query, double seconds,
                         BarKind kind,
                         AuditJoin::Options options = AuditJoin::Options())
      const;

  // Approximate chart served by the shared serving core (deadline mode):
  // same contract as ApproximateChart, with walks split across
  // options.threads logical workers time-sliced over the pool. No threads
  // are constructed per call — the pool persists across charts.
  Chart ApproximateChartParallel(
      const ChainQuery& query, double seconds, BarKind kind,
      ParallelOlaOptions options = ParallelOlaOptions()) const;

  // Async serving: enqueue a chart job on the shared worker pool and
  // return immediately. The handle exposes Snapshot() / Cancel() /
  // Await(); convert a result with ChartFromEstimates. Audit-distinct
  // jobs are automatically wired to this explorer's warm reach caches, so
  // concurrent and repeated jobs on the same (query, walk order) share
  // audits. Thread-compatible with other const serving calls on this
  // explorer from the same thread; the returned handle itself is usable
  // from any thread.
  ChartHandle SubmitChart(const ChainQuery& query,
                          ChartJobOptions options = ChartJobOptions()) const;

  // Replaces the serving pool (cancelling any live jobs) so the next
  // serve runs with `options`. Cheap when no pool exists yet.
  void ConfigureServing(ServingCore::Options options) const;

  // Builds (or rebuilds) the in-process sharded deployment: a
  // ShardCoordinator with one serving core per shard. Rebuilding cancels
  // any live sharded jobs. See src/shard/coordinator.h for the
  // determinism contract sharded serving honors.
  void EnableSharding(ShardCoordinator::Options options) const;
  bool sharding_enabled() const { return shard_coordinator_ != nullptr; }
  // Requires sharding_enabled().
  ShardCoordinator& shard_coordinator() const;

  // Async sharded serving: scatters the chart query across the shard
  // cores and returns the combined handle. Requires sharding_enabled().
  ShardChartHandle SubmitChartSharded(
      const ChainQuery& query,
      ShardChartOptions options = ShardChartOptions()) const;

  // Synchronous sharded chart (deadline mode): fan out, await, convert.
  // Exports the shard.* metrics alongside the engine counters. Requires
  // sharding_enabled().
  Chart ApproximateChartSharded(
      const ChainQuery& query, double seconds, BarKind kind,
      ShardChartOptions options = ShardChartOptions()) const;

  // Cumulative scheduler statistics of the shared pool (zeros before the
  // first serve).
  ServeStats serve_stats() const;

  // Bars (estimate, 0.95 CI half-width) from merged estimates, positive
  // groups only, sorted by estimate descending.
  static Chart ChartFromEstimates(const GroupedEstimates& estimates,
                                  BarKind kind);

  // Cumulative engine counters over every approximate chart served by
  // this explorer ("aj.walks", "aj.tipped_walks", "explorer.charts", ...).
  const MetricsRegistry& metrics() const { return metrics_; }
  void ClearMetrics() { metrics_.Clear(); }

 private:
  // Publishes the session-wide reach-cache state ("explorer.reach.*")
  // into metrics_ after a chart is served.
  void ExportReachMetrics() const;

  // Post-publish bookkeeping shared by Apply/Compact: drops reach caches
  // built for superseded epochs and republishes the epoch.* gauges.
  void AfterPublish();

  // The shared serving pool, spawned on first use with serving_options_.
  ServingCore& Core() const;

  // The versioned graph: every serving call pins one of its snapshots.
  MutableGraph mutable_graph_;
  // Serving statistics; mutated by the const serving calls.
  mutable MetricsRegistry metrics_;
  // Warm reach-probability caches reused across every approximate chart
  // this explorer serves on the same (epoch, query, walk order) — see
  // src/explore/cache.h. Mutated by the const serving calls.
  mutable ReachCacheRegistry reach_caches_;
  // One long-lived worker pool for every chart this explorer serves
  // (sync or async); created lazily so explorers used purely for exact
  // evaluation never spawn threads.
  mutable ServingCore::Options serving_options_;
  mutable std::unique_ptr<ServingCore> serving_core_;
  // The sharded deployment; null until EnableSharding. Owns its own
  // per-shard cores and reach caches, independent of the unsharded pool.
  mutable std::unique_ptr<ShardCoordinator> shard_coordinator_;
};

}  // namespace kgoa

#endif  // KGOA_CORE_EXPLORER_H_
