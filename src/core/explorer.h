// Explorer — the library's top-level facade (the "specialized query
// engine" of Figure 1). It owns a graph and its indexes and serves
// exploration charts either exactly (Cached Trie Join) or approximately
// within a wall-clock budget (Audit Join), the way the paper's exploration
// system serves its web frontend.
//
// Typical use (see examples/quickstart.cc):
//
//   kgoa::Explorer explorer(std::move(graph));
//   kgoa::ExplorationSession session = explorer.NewSession();
//   kgoa::ChainQuery q = session.BuildQuery(kgoa::ExpansionKind::kSubclass);
//   kgoa::Chart chart = explorer.ApproximateChart(q, /*seconds=*/0.1);
#ifndef KGOA_CORE_EXPLORER_H_
#define KGOA_CORE_EXPLORER_H_

#include <memory>

#include "src/core/audit.h"
#include "src/eval/registry.h"
#include "src/explore/cache.h"
#include "src/explore/chart.h"
#include "src/explore/session.h"
#include "src/index/index_set.h"
#include "src/join/result.h"
#include "src/ola/parallel.h"
#include "src/query/chain_query.h"
#include "src/rdf/graph.h"
#include "src/shard/coordinator.h"

namespace kgoa {

class Explorer {
 public:
  // Takes ownership of the graph and builds the four index orders.
  explicit Explorer(Graph graph);

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  const Graph& graph() const { return graph_; }
  const IndexSet& indexes() const { return *indexes_; }

  // Fresh session starting at owl:Thing (or the given root class).
  ExplorationSession NewSession(TermId root_class = kInvalidTerm) const {
    return ExplorationSession(graph_, root_class);
  }

  // Exact grouped evaluation (Cached Trie Join).
  GroupedResult Evaluate(const ChainQuery& query) const;

  // Exact chart: one bar per group, sorted by count descending.
  Chart EvaluateChart(const ChainQuery& query, BarKind kind) const;

  // Approximate chart via Audit Join within `seconds` of wall-clock time.
  // Bars carry 0.95 confidence-interval half-widths.
  Chart ApproximateChart(const ChainQuery& query, double seconds,
                         BarKind kind,
                         AuditJoin::Options options = AuditJoin::Options())
      const;

  // Approximate chart served by the shared serving core (deadline mode):
  // same contract as ApproximateChart, with walks split across
  // options.threads logical workers time-sliced over the pool. No threads
  // are constructed per call — the pool persists across charts.
  Chart ApproximateChartParallel(
      const ChainQuery& query, double seconds, BarKind kind,
      ParallelOlaOptions options = ParallelOlaOptions()) const;

  // Async serving: enqueue a chart job on the shared worker pool and
  // return immediately. The handle exposes Snapshot() / Cancel() /
  // Await(); convert a result with ChartFromEstimates. Audit-distinct
  // jobs are automatically wired to this explorer's warm reach caches, so
  // concurrent and repeated jobs on the same (query, walk order) share
  // audits. Thread-compatible with other const serving calls on this
  // explorer from the same thread; the returned handle itself is usable
  // from any thread.
  ChartHandle SubmitChart(const ChainQuery& query,
                          ChartJobOptions options = ChartJobOptions()) const;

  // Replaces the serving pool (cancelling any live jobs) so the next
  // serve runs with `options`. Cheap when no pool exists yet.
  void ConfigureServing(ServingCore::Options options) const;

  // Builds (or rebuilds) the in-process sharded deployment: a
  // ShardCoordinator with one serving core per shard. Rebuilding cancels
  // any live sharded jobs. See src/shard/coordinator.h for the
  // determinism contract sharded serving honors.
  void EnableSharding(ShardCoordinator::Options options) const;
  bool sharding_enabled() const { return shard_coordinator_ != nullptr; }
  // Requires sharding_enabled().
  ShardCoordinator& shard_coordinator() const;

  // Async sharded serving: scatters the chart query across the shard
  // cores and returns the combined handle. Requires sharding_enabled().
  ShardChartHandle SubmitChartSharded(
      const ChainQuery& query,
      ShardChartOptions options = ShardChartOptions()) const;

  // Synchronous sharded chart (deadline mode): fan out, await, convert.
  // Exports the shard.* metrics alongside the engine counters. Requires
  // sharding_enabled().
  Chart ApproximateChartSharded(
      const ChainQuery& query, double seconds, BarKind kind,
      ShardChartOptions options = ShardChartOptions()) const;

  // Cumulative scheduler statistics of the shared pool (zeros before the
  // first serve).
  ServeStats serve_stats() const;

  // Bars (estimate, 0.95 CI half-width) from merged estimates, positive
  // groups only, sorted by estimate descending.
  static Chart ChartFromEstimates(const GroupedEstimates& estimates,
                                  BarKind kind);

  // Cumulative engine counters over every approximate chart served by
  // this explorer ("aj.walks", "aj.tipped_walks", "explorer.charts", ...).
  const MetricsRegistry& metrics() const { return metrics_; }
  void ClearMetrics() { metrics_.Clear(); }

 private:
  // Publishes the session-wide reach-cache state ("explorer.reach.*")
  // into metrics_ after a chart is served.
  void ExportReachMetrics() const;

  // The shared serving pool, spawned on first use with serving_options_.
  ServingCore& Core() const;

  Graph graph_;
  std::unique_ptr<IndexSet> indexes_;
  // Serving statistics; mutated by the const serving calls.
  mutable MetricsRegistry metrics_;
  // Warm reach-probability caches reused across every approximate chart
  // this explorer serves on the same (query, walk order) — see
  // src/explore/cache.h. Mutated by the const serving calls.
  mutable ReachCacheRegistry reach_caches_{*indexes_};
  // One long-lived worker pool for every chart this explorer serves
  // (sync or async); created lazily so explorers used purely for exact
  // evaluation never spawn threads.
  mutable ServingCore::Options serving_options_;
  mutable std::unique_ptr<ServingCore> serving_core_;
  // The sharded deployment; null until EnableSharding. Owns its own
  // per-shard cores and reach caches, independent of the unsharded pool.
  mutable std::unique_ptr<ShardCoordinator> shard_coordinator_;
};

}  // namespace kgoa

#endif  // KGOA_CORE_EXPLORER_H_
