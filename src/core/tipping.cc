#include "src/core/tipping.h"

#include <algorithm>

#include "src/util/contract.h"

namespace kgoa {

TippingEstimator::TippingEstimator(const IndexSet& indexes,
                                   const WalkPlan& plan) {
  const ChainQuery& query = plan.query();
  const int n = plan.NumSteps();
  std::vector<double> fanout(n, 1.0);
  for (int q = 0; q < n; ++q) {
    const WalkStep& step = plan.steps()[q];
    const TriplePattern& pattern = query.patterns()[step.pattern_index];
    const double matches =
        static_cast<double>(indexes.CountMatches(pattern));
    if (step.in_var == kNoVar) {
      fanout[q] = matches;  // first step: d_0 = |G_0|
      continue;
    }
    // ndv of the join variable in this pattern and in the adjacent pattern
    // that bound it (the PostgreSQL max rule).
    uint64_t ndv = indexes.CountDistinctVar(pattern, step.in_var);
    for (int other = 0; other < query.NumPatterns(); ++other) {
      if (other == step.pattern_index) continue;
      if (query.patterns()[other].HasVar(step.in_var)) {
        ndv = std::max(ndv,
                       indexes.CountDistinctVar(query.patterns()[other],
                                                step.in_var));
      }
    }
    fanout[q] = ndv == 0 ? 0.0 : matches / static_cast<double>(ndv);
  }
  suffix_.assign(n + 1, 1.0);
  for (int q = n - 1; q >= 0; --q) {
    KGOA_DCHECK_GE(fanout[q], 0.0);
    suffix_[q] = suffix_[q + 1] * fanout[q];
  }
}

}  // namespace kgoa
