#include "src/core/audit.h"

#include "src/util/contract.h"

namespace kgoa {
namespace {

// Pending contributions are flushed once this many accumulate (and at the
// end of every public entry point). The value only affects when the
// prefetch pass runs, never the accumulation order, so it is not part of
// the determinism contract.
constexpr std::size_t kReachFlushBatch = 128;

}  // namespace

AuditJoin::AuditJoin(const IndexSet& indexes, const ChainQuery& query,
                     Options options)
    : indexes_(indexes),
      query_(query),
      options_(options),
      plan_(WalkPlan::Compile(query_, options_.walk_order)),
      tipping_(indexes_, plan_),
      rng_(options_.seed),
      state_(plan_.num_slots(), kInvalidTerm) {
  if (options_.shared_reach != nullptr) {
    // A shared cache memoizes pure functions of its walk plan; serving a
    // different plan would silently corrupt the distinct estimator.
    KGOA_CHECK_MSG(options_.shared_reach->CompatibleWith(plan_),
                   "shared reach cache built for a different walk plan");
    reach_ = options_.shared_reach;
  } else {
    owned_reach_ = std::make_unique<ReachProbability>(indexes_, plan_);
    reach_ = owned_reach_.get();
  }
  const int n = plan_.NumSteps();
  next_in_component_.assign(n, -1);
  count_memo_.resize(n);
  abort_memo_.resize(n);
  for (int q = 0; q + 1 < n; ++q) {
    if (plan_.ParentStepOf(q + 1) != q) continue;
    const TriplePattern& pattern =
        query_.patterns()[plan_.steps()[q].pattern_index];
    next_in_component_[q] = pattern.ComponentOf(plan_.steps()[q + 1].in_var);
    KGOA_DCHECK(next_in_component_[q] >= 0);
  }
  alpha_record_step_ = plan_.RecordStepOfSlot(plan_.alpha_slot());
  const WalkStep& alpha_step = plan_.steps()[alpha_record_step_];
  for (const WalkStep::Record& record : alpha_step.records) {
    if (record.slot != plan_.alpha_slot()) continue;
    const int level = alpha_step.access.depth();
    if (level < 3 &&
        OrderComponent(alpha_step.access.order(), level) == record.component) {
      // The group value is the first free trie level of this step's
      // access path: equal-group positions form contiguous runs in the
      // resolved range, so pruned groups can be skipped run-at-a-time.
      alpha_enum_level_ = level;
    }
  }
  pending_.reserve(kReachFlushBatch);
}

uint64_t AuditJoin::CountFrom(int q, TermId value) {
  KGOA_DCHECK(q < plan_.NumSteps());
  if (const uint64_t* found = count_memo_[q].Find(value)) {
    ++count_cache_hits_;
    return *found;
  }
  const WalkStep& step = plan_.steps()[q];
  const Range range = step.access.Resolve(indexes_, value);
  uint64_t count = 0;
  if (q + 1 == plan_.NumSteps() && step.filter.empty()) {
    count = range.size();
  } else {
    const TrieIndex& index = indexes_.Index(step.access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) continue;
      count += q + 1 == plan_.NumSteps()
                   ? 1
                   : CountFrom(q + 1, t[next_in_component_[q]]);
    }
  }
  // Compute-then-insert: the memo only ever holds finished counts, so an
  // abort mid-computation cannot leave a poisoned zero behind. The
  // recursion above only touches deeper steps, so this (step, value) slot
  // is still vacant.
  KGOA_DCHECK(!count_memo_[q].Contains(value));
  count_memo_[q].FindOrAdd(value) = count;
  return count;
}

bool AuditJoin::EnumerateRemaining(int q, std::vector<TermId>& state,
                                   double mass, uint64_t* budget,
                                   FlatAccumulator<uint64_t, double>* acc) {
  if (q == plan_.NumSteps()) {
    if (query_.distinct()) {
      acc->FindOrAdd(PackPair(state[plan_.alpha_slot()],
                              state[plan_.beta_slot()])) += mass;
    } else {
      acc->FindOrAdd(state[plan_.alpha_slot()]) += 1.0;
    }
    return true;
  }
  const WalkStep& step = plan_.steps()[q];
  const TermId bound = step.in_slot >= 0 ? state[step.in_slot] : kInvalidTerm;
  const Range range = step.access.Resolve(indexes_, bound);
  if (range.empty()) return true;  // dead branch, zero completions
  const double d = static_cast<double>(range.size());
  const TrieIndex& index = indexes_.Index(step.access.order());
  for (uint32_t pos = range.begin; pos < range.end; ++pos) {
    if (*budget == 0) return false;
    --*budget;
    const Triple t = index.TripleAt(pos);
    if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) continue;
    for (const WalkStep::Record& record : step.records) {
      state[record.slot] = t[record.component];
    }
    if (q == alpha_record_step_ && group_filter_ != nullptr &&
        group_filter_->Pruned(state[plan_.alpha_slot()])) {
      // Pruned group: none of its completions can enter the displayed
      // chart. When the group value is the first free trie level, hop
      // over the whole equal-group run (block-max skips in the block
      // tier); otherwise just drop this position's subtree.
      if (alpha_enum_level_ >= 0) {
        pos = index.BlockEnd(range, alpha_enum_level_, pos) - 1;
      }
      continue;
    }
    if (!EnumerateRemaining(q + 1, state, mass / d, budget, acc)) return false;
  }
  return true;
}

bool AuditJoin::TippedContributions(int q0, std::vector<TermId>& state,
                                    double weight, ContributionMap* out) {
  // Fast path: memoized pure counting (the CTJ cache) applies when the
  // group is already fixed by the prefix and the remaining steps chain
  // linearly.
  if (!query_.distinct() && plan_.SingleSegmentFrom(q0) &&
      plan_.RecordStepOfSlot(plan_.alpha_slot()) < q0) {
    const int in_slot = plan_.steps()[q0].in_slot;
    const TermId in_value = in_slot >= 0 ? state[in_slot] : kInvalidTerm;
    const uint64_t count = CountFrom(q0, in_value);
    if (count > 0) {
      (*out)[state[plan_.alpha_slot()]] =
          weight * static_cast<double>(count);
    }
    return true;
  }

  const int in_slot = plan_.steps()[q0].in_slot;
  const TermId in_value = in_slot >= 0 ? state[in_slot] : kInvalidTerm;
  if (abort_memo_[q0].Contains(in_value)) return false;

  tip_acc_.Clear();
  uint64_t budget = options_.max_tip_enumeration;
  if (!EnumerateRemaining(q0, state, 1.0, &budget, &tip_acc_)) {
    abort_memo_[q0].FindOrAdd(in_value) = 1;
    return false;
  }

  // The arena iterates in insertion (enumeration) order, so the per-group
  // summation below is deterministic.
  if (query_.distinct()) {
    for (const auto& item : tip_acc_.items()) {
      const TermId a = static_cast<TermId>(item.key >> 32);
      const TermId b = static_cast<TermId>(item.key & 0xffffffffu);
      const double pr = reach_->PrAB(a, b);
      KGOA_DCHECK_PROB_POS(pr);
      (*out)[a] += item.value / pr;
    }
  } else {
    for (const auto& item : tip_acc_.items()) {
      (*out)[static_cast<TermId>(item.key)] += weight * item.value;
    }
  }
  return true;
}

void AuditJoin::FlushContributions() {
  // Prefetch pass: pull the Pr memo slots of every pending pair toward
  // the cache before the in-order probe loop below touches them.
  for (const PendingContribution& p : pending_) {
    if (p.needs_pr) {
      reach_->PrefetchPrAB(static_cast<TermId>(p.pair_key >> 32),
                           static_cast<TermId>(p.pair_key & 0xffffffffu));
    }
  }
  for (const PendingContribution& p : pending_) {
    double value = p.value;
    if (p.needs_pr) {
      const double pr = reach_->PrAB(static_cast<TermId>(p.pair_key >> 32),
                                     static_cast<TermId>(p.pair_key));
      KGOA_DCHECK_PROB_POS(pr);
      value = 1.0 / pr;
    }
    estimates_.AddContribution(p.group, value);
  }
  pending_.clear();
}

void AuditJoin::RunOneWalkInternal() {
  double weight = 1.0;  // 1 / Pr(delta) for the sampled prefix
  for (int q = 0; q < plan_.NumSteps(); ++q) {
    const WalkStep& step = plan_.steps()[q];
    const TermId bound =
        step.in_slot >= 0 ? state_[step.in_slot] : kInvalidTerm;

    // Top-K prune: the group-by value was bound by the previous step, and
    // the tracker has ruled its group out of the displayed chart — finish
    // the walk with a zero contribution before any tip or index work.
    // (Counted as a pruned, not rejected, walk: the denominator grows
    // either way, which is what decays pruned groups' estimates.)
    if (group_filter_ != nullptr && q == alpha_record_step_ + 1 &&
        group_filter_->Pruned(state_[plan_.alpha_slot()])) {
      ++pruned_;
      estimates_.EndWalk(/*rejected=*/false);
      return;
    }

    // Static tipping decision: the remaining suffix looks cheap, so
    // switch to exact computation before even resolving this step (a
    // tipped walk never dead-ends; it yields an exact count, possibly 0).
    if (options_.enable_tipping && !options_.adaptive_tipping &&
        tipping_.StaticSuffixEstimate(q) <= options_.tipping_threshold) {
      ContributionMap contributions;
      if (TippedContributions(q, state_, weight, &contributions)) {
        for (const auto& [group, value] : contributions) {
          if (value > 0) {
            pending_.push_back({group, value, 0, /*needs_pr=*/false});
          }
        }
        ++tipped_;
        estimates_.EndWalk(/*rejected=*/false);
        return;
      }
      ++tip_aborts_;
    }

    const Range range = step.access.Resolve(indexes_, bound);

    // Adaptive variant: seed the estimate with the actual fan-out.
    if (options_.enable_tipping && options_.adaptive_tipping &&
        tipping_.Estimate(range.size(), q) <= options_.tipping_threshold) {
      ContributionMap contributions;
      if (TippedContributions(q, state_, weight, &contributions)) {
        for (const auto& [group, value] : contributions) {
          if (value > 0) {
            pending_.push_back({group, value, 0, /*needs_pr=*/false});
          }
        }
        ++tipped_;
        estimates_.EndWalk(/*rejected=*/false);
        return;
      }
      ++tip_aborts_;
    }

    if (range.empty()) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    weight *= static_cast<double>(range.size());
    const uint32_t pos =
        range.begin + static_cast<uint32_t>(rng_.Below(range.size()));
    const Triple& t = indexes_.Index(step.access.order()).TripleAt(pos);
    if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    for (const WalkStep::Record& record : step.records) {
      state_[record.slot] = t[record.component];
    }
  }

  const TermId a = state_[plan_.alpha_slot()];
  // Group bound only by the final step: the in-loop prune check above
  // never saw it, so filter here before paying for the contribution (the
  // distinct path's Pr(a, b) probe is the expensive part).
  if (group_filter_ != nullptr &&
      alpha_record_step_ + 1 == plan_.NumSteps() &&
      group_filter_->Pruned(a)) {
    ++pruned_;
    estimates_.EndWalk(/*rejected=*/false);
    return;
  }
  if (query_.distinct()) {
    // The Pr(a, b) division is deferred to the flush's batched probe
    // loop; the walk itself only records the audited pair.
    pending_.push_back(
        {a, 0.0, PackPair(a, state_[plan_.beta_slot()]), /*needs_pr=*/true});
  } else {
    pending_.push_back({a, weight, 0, /*needs_pr=*/false});
  }
  ++full_;
  estimates_.EndWalk(/*rejected=*/false);
}

void AuditJoin::RunOneWalk() {
  RunOneWalkInternal();
  FlushContributions();
}

void AuditJoin::RunWalks(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    RunOneWalkInternal();
    if (pending_.size() >= kReachFlushBatch) FlushContributions();
  }
  FlushContributions();
}

void AuditJoin::EnumerateAllWalks(
    const std::function<void(double, const ContributionMap&)>& callback) {
  std::vector<TermId> state(plan_.num_slots(), kInvalidTerm);
  const ContributionMap kEmpty;

  auto walk = [&](auto&& self, int q, double probability,
                  double weight) -> void {
    if (q == plan_.NumSteps()) {
      ContributionMap contributions;
      const TermId a = state[plan_.alpha_slot()];
      if (query_.distinct()) {
        contributions[a] = 1.0 / reach_->PrAB(a, state[plan_.beta_slot()]);
      } else {
        contributions[a] = weight;
      }
      callback(probability, contributions);
      return;
    }
    const WalkStep& step = plan_.steps()[q];
    const TermId bound =
        step.in_slot >= 0 ? state[step.in_slot] : kInvalidTerm;

    if (options_.enable_tipping && !options_.adaptive_tipping &&
        tipping_.StaticSuffixEstimate(q) <= options_.tipping_threshold) {
      ContributionMap contributions;
      if (TippedContributions(q, state, weight, &contributions)) {
        callback(probability, contributions);
        return;
      }
    }

    const Range range = step.access.Resolve(indexes_, bound);
    if (options_.enable_tipping && options_.adaptive_tipping &&
        tipping_.Estimate(range.size(), q) <= options_.tipping_threshold) {
      ContributionMap contributions;
      if (TippedContributions(q, state, weight, &contributions)) {
        callback(probability, contributions);
        return;
      }
    }
    if (range.empty()) {
      callback(probability, kEmpty);
      return;
    }
    const double d = static_cast<double>(range.size());
    const TrieIndex& index = indexes_.Index(step.access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
        callback(probability / d, kEmpty);  // rejected branch
        continue;
      }
      for (const WalkStep::Record& record : step.records) {
        state[record.slot] = t[record.component];
      }
      self(self, q + 1, probability / d, weight * d);
    }
  };
  walk(walk, 0, 1.0, 1.0);
}

}  // namespace kgoa
