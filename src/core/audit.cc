#include "src/core/audit.h"

#include <algorithm>

#include "src/index/kernels.h"
#include "src/util/contract.h"

namespace kgoa {
namespace {

// Pending contributions are flushed once this many accumulate (and at the
// end of every public entry point). The value only affects when the
// prefetch pass runs, never the accumulation order, so it is not part of
// the determinism contract.
constexpr std::size_t kReachFlushBatch = 128;

}  // namespace

AuditJoin::AuditJoin(const IndexSet& indexes, const ChainQuery& query,
                     Options options)
    : indexes_(indexes),
      query_(query),
      options_(options),
      plan_(WalkPlan::Compile(query_, options_.walk_order)),
      tipping_(indexes_, plan_),
      rng_(options_.seed),
      state_(plan_.num_slots(), kInvalidTerm) {
  if (options_.shared_reach != nullptr) {
    // A shared cache memoizes pure functions of its walk plan; serving a
    // different plan would silently corrupt the distinct estimator.
    KGOA_CHECK_MSG(options_.shared_reach->CompatibleWith(plan_),
                   "shared reach cache built for a different walk plan");
    reach_ = options_.shared_reach;
  } else {
    owned_reach_ = std::make_unique<ReachProbability>(indexes_, plan_);
    reach_ = owned_reach_.get();
  }
  const int n = plan_.NumSteps();
  next_in_component_.assign(n, -1);
  count_memo_.resize(n);
  abort_memo_.resize(n);
  for (int q = 0; q + 1 < n; ++q) {
    if (plan_.ParentStepOf(q + 1) != q) continue;
    const TriplePattern& pattern =
        query_.patterns()[plan_.steps()[q].pattern_index];
    next_in_component_[q] = pattern.ComponentOf(plan_.steps()[q + 1].in_var);
    KGOA_DCHECK(next_in_component_[q] >= 0);
  }
  alpha_record_step_ = plan_.RecordStepOfSlot(plan_.alpha_slot());
  const WalkStep& alpha_step = plan_.steps()[alpha_record_step_];
  for (const WalkStep::Record& record : alpha_step.records) {
    if (record.slot != plan_.alpha_slot()) continue;
    const int level = alpha_step.access.depth();
    if (level < 3 &&
        OrderComponent(alpha_step.access.order(), level) == record.component) {
      // The group value is the first free trie level of this step's
      // access path: equal-group positions form contiguous runs in the
      // resolved range, so pruned groups can be skipped run-at-a-time.
      alpha_enum_level_ = level;
    }
  }
  pending_.reserve(kReachFlushBatch);
}

uint64_t AuditJoin::CountFrom(int q, TermId value) {
  KGOA_DCHECK(q < plan_.NumSteps());
  if (const uint64_t* found = count_memo_[q].Find(value)) {
    ++count_cache_hits_;
    return *found;
  }
  const WalkStep& step = plan_.steps()[q];
  const Range range = step.access.Resolve(indexes_, value);
  uint64_t count = 0;
  if (q + 1 == plan_.NumSteps() && step.filter.empty()) {
    count = range.size();
  } else {
    const TrieIndex& index = indexes_.Index(step.access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) continue;
      count += q + 1 == plan_.NumSteps()
                   ? 1
                   : CountFrom(q + 1, t[next_in_component_[q]]);
    }
  }
  // Compute-then-insert: the memo only ever holds finished counts, so an
  // abort mid-computation cannot leave a poisoned zero behind. The
  // recursion above only touches deeper steps, so this (step, value) slot
  // is still vacant.
  KGOA_DCHECK(!count_memo_[q].Contains(value));
  count_memo_[q].FindOrAdd(value) = count;
  return count;
}

bool AuditJoin::EnumerateRemaining(int q, std::span<TermId> state,
                                   double mass, uint64_t* budget,
                                   FlatAccumulator<uint64_t, double>* acc) {
  if (q == plan_.NumSteps()) {
    if (query_.distinct()) {
      acc->FindOrAdd(PackPair(state[plan_.alpha_slot()],
                              state[plan_.beta_slot()])) += mass;
    } else {
      acc->FindOrAdd(state[plan_.alpha_slot()]) += 1.0;
    }
    return true;
  }
  const WalkStep& step = plan_.steps()[q];
  const TermId bound = step.in_slot >= 0 ? state[step.in_slot] : kInvalidTerm;
  const Range range = step.access.Resolve(indexes_, bound);
  if (range.empty()) return true;  // dead branch, zero completions
  const double d = static_cast<double>(range.size());
  const TrieIndex& index = indexes_.Index(step.access.order());
  for (uint32_t pos = range.begin; pos < range.end; ++pos) {
    if (*budget == 0) return false;
    --*budget;
    const Triple t = index.TripleAt(pos);
    if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) continue;
    for (const WalkStep::Record& record : step.records) {
      state[record.slot] = t[record.component];
    }
    if (q == alpha_record_step_ && group_filter_ != nullptr &&
        group_filter_->Pruned(state[plan_.alpha_slot()])) {
      // Pruned group: none of its completions can enter the displayed
      // chart. When the group value is the first free trie level, hop
      // over the whole equal-group run (block-max skips in the block
      // tier); otherwise just drop this position's subtree.
      if (alpha_enum_level_ >= 0) {
        pos = index.BlockEnd(range, alpha_enum_level_, pos) - 1;
      }
      continue;
    }
    if (!EnumerateRemaining(q + 1, state, mass / d, budget, acc)) return false;
  }
  return true;
}

bool AuditJoin::TippedContributions(int q0, std::span<TermId> state,
                                    double weight, ContributionMap* out) {
  // Fast path: memoized pure counting (the CTJ cache) applies when the
  // group is already fixed by the prefix and the remaining steps chain
  // linearly.
  if (!query_.distinct() && plan_.SingleSegmentFrom(q0) &&
      plan_.RecordStepOfSlot(plan_.alpha_slot()) < q0) {
    const int in_slot = plan_.steps()[q0].in_slot;
    const TermId in_value = in_slot >= 0 ? state[in_slot] : kInvalidTerm;
    const uint64_t count = CountFrom(q0, in_value);
    if (count > 0) {
      (*out)[state[plan_.alpha_slot()]] =
          weight * static_cast<double>(count);
    }
    return true;
  }

  const int in_slot = plan_.steps()[q0].in_slot;
  const TermId in_value = in_slot >= 0 ? state[in_slot] : kInvalidTerm;
  if (abort_memo_[q0].Contains(in_value)) return false;

  tip_acc_.Clear();
  uint64_t budget = options_.max_tip_enumeration;
  if (!EnumerateRemaining(q0, state, 1.0, &budget, &tip_acc_)) {
    abort_memo_[q0].FindOrAdd(in_value) = 1;
    return false;
  }

  // The arena iterates in insertion (enumeration) order, so the per-group
  // summation below is deterministic.
  if (query_.distinct()) {
    for (const auto& item : tip_acc_.items()) {
      const TermId a = static_cast<TermId>(item.key >> 32);
      const TermId b = static_cast<TermId>(item.key & 0xffffffffu);
      const double pr = reach_->PrAB(a, b);
      KGOA_DCHECK_PROB_POS(pr);
      (*out)[a] += item.value / pr;
    }
  } else {
    for (const auto& item : tip_acc_.items()) {
      (*out)[static_cast<TermId>(item.key)] += weight * item.value;
    }
  }
  return true;
}

void AuditJoin::FlushContributions() {
  // Prefetch-pipelined drain: the Pr memo slot of each pending pair is
  // hinted a window ahead of the in-order probe that consumes it
  // (kernels::PrefetchPipeline — the windowed form of the old two-pass
  // flush). Consumption stays strictly in pending (= walk) order, which
  // is what the determinism contract needs.
  kernels::PrefetchPipeline(
      pending_.size(),
      [&](std::size_t i) {
        const PendingContribution& p = pending_[i];
        if (p.needs_pr) {
          reach_->PrefetchPrAB(static_cast<TermId>(p.pair_key >> 32),
                               static_cast<TermId>(p.pair_key & 0xffffffffu));
        }
      },
      [&](std::size_t i) {
        const PendingContribution& p = pending_[i];
        double value = p.value;
        if (p.needs_pr) {
          const double pr =
              reach_->PrAB(static_cast<TermId>(p.pair_key >> 32),
                           static_cast<TermId>(p.pair_key));
          KGOA_DCHECK_PROB_POS(pr);
          value = 1.0 / pr;
        }
        estimates_.AddContribution(p.group, value);
      });
  pending_.clear();
}

void AuditJoin::RunOneWalkInternal() {
  rng_.Seed(WalkSeed(options_.seed, walk_counter_++));
  double weight = 1.0;  // 1 / Pr(delta) for the sampled prefix
  for (int q = 0; q < plan_.NumSteps(); ++q) {
    const WalkStep& step = plan_.steps()[q];
    const TermId bound =
        step.in_slot >= 0 ? state_[step.in_slot] : kInvalidTerm;

    // Top-K prune: the group-by value was bound by the previous step, and
    // the tracker has ruled its group out of the displayed chart — finish
    // the walk with a zero contribution before any tip or index work.
    // (Counted as a pruned, not rejected, walk: the denominator grows
    // either way, which is what decays pruned groups' estimates.)
    if (group_filter_ != nullptr && q == alpha_record_step_ + 1 &&
        group_filter_->Pruned(state_[plan_.alpha_slot()])) {
      ++pruned_;
      estimates_.EndWalk(/*rejected=*/false);
      return;
    }

    // Static tipping decision: the remaining suffix looks cheap, so
    // switch to exact computation before even resolving this step (a
    // tipped walk never dead-ends; it yields an exact count, possibly 0).
    if (options_.enable_tipping && !options_.adaptive_tipping &&
        tipping_.StaticSuffixEstimate(q) <= options_.tipping_threshold) {
      ContributionMap contributions;
      if (TippedContributions(q, state_, weight, &contributions)) {
        for (const auto& [group, value] : contributions) {
          if (value > 0) {
            pending_.push_back({group, value, 0, /*needs_pr=*/false});
          }
        }
        ++tipped_;
        estimates_.EndWalk(/*rejected=*/false);
        return;
      }
      ++tip_aborts_;
    }

    const Range range = step.access.Resolve(indexes_, bound);

    // Adaptive variant: seed the estimate with the actual fan-out.
    if (options_.enable_tipping && options_.adaptive_tipping &&
        tipping_.Estimate(range.size(), q) <= options_.tipping_threshold) {
      ContributionMap contributions;
      if (TippedContributions(q, state_, weight, &contributions)) {
        for (const auto& [group, value] : contributions) {
          if (value > 0) {
            pending_.push_back({group, value, 0, /*needs_pr=*/false});
          }
        }
        ++tipped_;
        estimates_.EndWalk(/*rejected=*/false);
        return;
      }
      ++tip_aborts_;
    }

    if (range.empty()) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    weight *= static_cast<double>(range.size());
    const uint32_t pos =
        range.begin + static_cast<uint32_t>(rng_.Below(range.size()));
    const Triple& t = indexes_.Index(step.access.order()).TripleAt(pos);
    if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    for (const WalkStep::Record& record : step.records) {
      state_[record.slot] = t[record.component];
    }
  }

  const TermId a = state_[plan_.alpha_slot()];
  // Group bound only by the final step: the in-loop prune check above
  // never saw it, so filter here before paying for the contribution (the
  // distinct path's Pr(a, b) probe is the expensive part).
  if (group_filter_ != nullptr &&
      alpha_record_step_ + 1 == plan_.NumSteps() &&
      group_filter_->Pruned(a)) {
    ++pruned_;
    estimates_.EndWalk(/*rejected=*/false);
    return;
  }
  if (query_.distinct()) {
    // The Pr(a, b) division is deferred to the flush's batched probe
    // loop; the walk itself only records the audited pair.
    pending_.push_back(
        {a, 0.0, PackPair(a, state_[plan_.beta_slot()]), /*needs_pr=*/true});
  } else {
    pending_.push_back({a, weight, 0, /*needs_pr=*/false});
  }
  ++full_;
  estimates_.EndWalk(/*rejected=*/false);
}

void AuditJoin::RunOneWalk() {
  RunOneWalkInternal();
  FlushContributions();
}

void AuditJoin::RunWalks(uint64_t count) {
  const uint32_t batch =
      options_.batch_walks == 0 ? kDefaultWalkBatch : options_.batch_walks;
  if (batch <= 1) {
    for (uint64_t i = 0; i < count; ++i) {
      RunOneWalkInternal();
      if (pending_.size() >= kReachFlushBatch) FlushContributions();
    }
    FlushContributions();
    return;
  }
  uint64_t remaining = count;
  while (remaining > 0) {
    const uint32_t b = static_cast<uint32_t>(
        std::min<uint64_t>(batch, remaining));
    RunWalkBatch(b);
    remaining -= b;
    if (pending_.size() >= kReachFlushBatch) FlushContributions();
  }
  FlushContributions();
}

// Level-synchronous batch execution. The walks of a batch advance one
// walk level per round; within a level the work splits into phases so the
// index probes and triple fetches pipeline across walks:
//
//   1. scalar prolog, walk order: top-K prune + static tipping (the only
//      phase-1 writer of shared state is the tip path's abort_memo_[q]);
//   2. batched range resolve: hash-probe prefetch pipelined across walks;
//   3. scalar adaptive tipping, walk order (mutually exclusive with the
//      static check in phase 1);
//   4. dead-end rejection + per-walk RNG position draw, walk order;
//   5. batched triple fetch: sampled positions prefetched across walks,
//      then filter + record per walk.
//
// Bit-identity with batch = 1 holds by induction over (level, walk) in
// lexicographic order: each walk's draws come from its own counter-derived
// stream (WalkSeed), and the only cross-walk data flow is through
// abort_memo_[q] — read and written exclusively during level-q processing,
// in walk order within every phase that touches it, so each read sees
// exactly the writes of lower-numbered walks' level-q processing, the same
// set as in sequential execution. count_memo_ values are pure functions of
// (step, value) and the reach cache's values are pure functions of the
// plan, so their population order affects hit counters only, never bits.
// Contributions are buffered per lane and appended to pending_ in walk
// order at batch end, so AddContribution order — the one FP-order-
// sensitive sequence — matches the unbatched path exactly.
void AuditJoin::RunWalkBatch(uint32_t batch) {
  const int num_slots = plan_.num_slots();
  batch_rng_.resize(batch);
  batch_state_.assign(static_cast<std::size_t>(batch) * num_slots,
                      kInvalidTerm);
  batch_weight_.assign(batch, 1.0);
  batch_bound_.assign(batch, kInvalidTerm);
  batch_range_.assign(batch, Range{});
  batch_pos_.assign(batch, 0);
  batch_done_.assign(batch, kLaneAlive);
  batch_contrib_.resize(batch);
  for (uint32_t b = 0; b < batch; ++b) {
    batch_rng_[b].Seed(WalkSeed(options_.seed, walk_counter_ + b));
    batch_contrib_[b].clear();
  }
  walk_counter_ += batch;
  batched_walks_ += batch;

  const auto lane_state = [&](uint32_t b) {
    return std::span<TermId>(batch_state_.data() +
                                 static_cast<std::size_t>(b) * num_slots,
                             static_cast<std::size_t>(num_slots));
  };
  const auto tip_lane = [&](uint32_t b, int q) {
    ContributionMap contributions;
    if (TippedContributions(q, lane_state(b), batch_weight_[b],
                            &contributions)) {
      for (const auto& [group, value] : contributions) {
        if (value > 0) {
          batch_contrib_[b].push_back({group, value, 0, /*needs_pr=*/false});
        }
      }
      ++tipped_;
      batch_done_[b] = kLaneDone;
      return true;
    }
    ++tip_aborts_;
    return false;
  };

  uint32_t alive = batch;
  for (int q = 0; q < plan_.NumSteps() && alive > 0; ++q) {
    const WalkStep& step = plan_.steps()[q];

    // Phase 1: prune + static tip, in walk order.
    for (uint32_t b = 0; b < batch; ++b) {
      if (batch_done_[b] != kLaneAlive) continue;
      const std::span<TermId> state = lane_state(b);
      if (group_filter_ != nullptr && q == alpha_record_step_ + 1 &&
          group_filter_->Pruned(state[plan_.alpha_slot()])) {
        ++pruned_;
        batch_done_[b] = kLaneDone;
        --alive;
        continue;
      }
      if (options_.enable_tipping && !options_.adaptive_tipping &&
          tipping_.StaticSuffixEstimate(q) <= options_.tipping_threshold &&
          tip_lane(b, q)) {
        --alive;
        continue;
      }
      batch_bound_[b] = step.in_slot >= 0 ? state[step.in_slot] : kInvalidTerm;
    }
    if (alive == 0) break;

    // Phase 2: batched resolve, hash probes prefetch-pipelined across the
    // surviving walks.
    batch_live_.clear();
    for (uint32_t b = 0; b < batch; ++b) {
      if (batch_done_[b] == kLaneAlive) batch_live_.push_back(b);
    }
    kernels::PrefetchPipeline(
        batch_live_.size(),
        [&](std::size_t i) {
          step.access.Prefetch(indexes_, batch_bound_[batch_live_[i]]);
        },
        [&](std::size_t i) {
          const uint32_t b = batch_live_[i];
          batch_range_[b] = step.access.Resolve(indexes_, batch_bound_[b]);
        });

    // Phase 3: adaptive tip (seeded with the resolved fan-out), walk order.
    if (options_.enable_tipping && options_.adaptive_tipping) {
      for (const uint32_t b : batch_live_) {
        if (tipping_.Estimate(batch_range_[b].size(), q) <=
                options_.tipping_threshold &&
            tip_lane(b, q)) {
          --alive;
        }
      }
    }

    // Phase 4: rejection + per-walk position draw, walk order.
    for (const uint32_t b : batch_live_) {
      if (batch_done_[b] != kLaneAlive) continue;  // adaptively tipped
      const Range range = batch_range_[b];
      if (range.empty()) {
        batch_done_[b] = kLaneRejected;
        --alive;
        continue;
      }
      batch_weight_[b] *= static_cast<double>(range.size());
      batch_pos_[b] =
          range.begin + static_cast<uint32_t>(batch_rng_[b].Below(range.size()));
    }
    if (alive == 0) break;

    // Phase 5: batched triple fetch + filter + record.
    batch_live_.clear();
    for (uint32_t b = 0; b < batch; ++b) {
      if (batch_done_[b] == kLaneAlive) batch_live_.push_back(b);
    }
    const TrieIndex& index = indexes_.Index(step.access.order());
    kernels::PrefetchPipeline(
        batch_live_.size(),
        [&](std::size_t i) { index.PrefetchTriple(batch_pos_[batch_live_[i]]); },
        [&](std::size_t i) {
          const uint32_t b = batch_live_[i];
          const Triple t = index.TripleAt(batch_pos_[b]);
          if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
            batch_done_[b] = kLaneRejected;
            --alive;
            return;
          }
          const std::span<TermId> state = lane_state(b);
          for (const WalkStep::Record& record : step.records) {
            state[record.slot] = t[record.component];
          }
        });
  }

  // Completion bookkeeping for walks that sampled every step, walk order.
  for (uint32_t b = 0; b < batch; ++b) {
    if (batch_done_[b] != kLaneAlive) continue;
    const std::span<TermId> state = lane_state(b);
    const TermId a = state[plan_.alpha_slot()];
    batch_done_[b] = kLaneDone;
    if (group_filter_ != nullptr &&
        alpha_record_step_ + 1 == plan_.NumSteps() &&
        group_filter_->Pruned(a)) {
      ++pruned_;
      continue;
    }
    if (query_.distinct()) {
      batch_contrib_[b].push_back(
          {a, 0.0, PackPair(a, state[plan_.beta_slot()]), /*needs_pr=*/true});
    } else {
      batch_contrib_[b].push_back({a, batch_weight_[b], 0, /*needs_pr=*/false});
    }
    ++full_;
  }

  // Append to pending_ and close the walks, in walk order: pending_ order
  // (hence AddContribution order) matches the unbatched path.
  for (uint32_t b = 0; b < batch; ++b) {
    pending_.insert(pending_.end(), batch_contrib_[b].begin(),
                    batch_contrib_[b].end());
    estimates_.EndWalk(/*rejected=*/batch_done_[b] == kLaneRejected);
  }
}

void AuditJoin::EnumerateAllWalks(
    const std::function<void(double, const ContributionMap&)>& callback) {
  std::vector<TermId> state(plan_.num_slots(), kInvalidTerm);
  const ContributionMap kEmpty;

  auto walk = [&](auto&& self, int q, double probability,
                  double weight) -> void {
    if (q == plan_.NumSteps()) {
      ContributionMap contributions;
      const TermId a = state[plan_.alpha_slot()];
      if (query_.distinct()) {
        contributions[a] = 1.0 / reach_->PrAB(a, state[plan_.beta_slot()]);
      } else {
        contributions[a] = weight;
      }
      callback(probability, contributions);
      return;
    }
    const WalkStep& step = plan_.steps()[q];
    const TermId bound =
        step.in_slot >= 0 ? state[step.in_slot] : kInvalidTerm;

    if (options_.enable_tipping && !options_.adaptive_tipping &&
        tipping_.StaticSuffixEstimate(q) <= options_.tipping_threshold) {
      ContributionMap contributions;
      if (TippedContributions(q, state, weight, &contributions)) {
        callback(probability, contributions);
        return;
      }
    }

    const Range range = step.access.Resolve(indexes_, bound);
    if (options_.enable_tipping && options_.adaptive_tipping &&
        tipping_.Estimate(range.size(), q) <= options_.tipping_threshold) {
      ContributionMap contributions;
      if (TippedContributions(q, state, weight, &contributions)) {
        callback(probability, contributions);
        return;
      }
    }
    if (range.empty()) {
      callback(probability, kEmpty);
      return;
    }
    const double d = static_cast<double>(range.size());
    const TrieIndex& index = indexes_.Index(step.access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!step.filter.empty() && !step.filter.Pass(indexes_, t)) {
        callback(probability / d, kEmpty);  // rejected branch
        continue;
      }
      for (const WalkStep::Record& record : step.records) {
        state[record.slot] = t[record.component];
      }
      self(self, q + 1, probability / d, weight * d);
    }
  };
  walk(walk, 0, 1.0, 1.0);
}

}  // namespace kgoa
