#include "src/core/explain.h"

#include <sstream>

#include "src/core/tipping.h"
#include "src/eval/runner.h"
#include "src/ola/walk_plan.h"

namespace kgoa {

std::string ExplainPlan(const IndexSet& indexes, const ChainQuery& query,
                        const Dictionary* dict,
                        const AuditJoin::Options& options) {
  std::vector<int> order = options.walk_order;
  if (order.empty()) order = DefaultAuditOrder(query);
  const WalkPlan plan = WalkPlan::Compile(query, order);
  const TippingEstimator tipping(indexes, plan);

  // First step whose static suffix estimate is at or below the threshold.
  int tip_step = -1;
  if (options.enable_tipping && !options.adaptive_tipping) {
    for (int q = 0; q < plan.NumSteps(); ++q) {
      if (tipping.StaticSuffixEstimate(q) <= options.tipping_threshold) {
        tip_step = q;
        break;
      }
    }
  }

  std::ostringstream out;
  out << "AuditJoin plan (" << (query.distinct() ? "COUNT DISTINCT" : "COUNT")
      << ", threshold " << options.tipping_threshold << ", "
      << (options.adaptive_tipping ? "adaptive" : "static") << " tipping)\n";
  for (int q = 0; q < plan.NumSteps(); ++q) {
    const WalkStep& step = plan.steps()[q];
    const TriplePattern& pattern = query.patterns()[step.pattern_index];
    out << "  step " << q << ": pattern[" << step.pattern_index << "] "
        << pattern.ToString(dict) << '\n';
    out << "    access: " << OrderName(step.access.order()) << " prefix depth "
        << step.access.depth();
    if (step.in_var != kNoVar) out << ", bound on ?v" << step.in_var;
    if (!query.filters(step.pattern_index).empty()) {
      out << ", " << query.filters(step.pattern_index).size()
          << " existence filter(s)";
    }
    out << '\n';
    out << "    extent: " << indexes.CountMatches(pattern)
        << " triples; est. completions from here: "
        << tipping.StaticSuffixEstimate(q);
    if (q == tip_step) out << "   <== tipping point: exact from here";
    out << '\n';
  }
  if (tip_step < 0 && options.enable_tipping &&
      !options.adaptive_tipping) {
    out << "  (no static tipping point under this threshold; walks run to "
           "completion)\n";
  }
  out << "  group variable ?v" << query.alpha() << ", counted variable ?v"
      << query.beta() << ", anchor pattern "
      << query.alpha_beta_pattern() << '\n';
  return out.str();
}

std::string ExplainPlan(const IndexSet& indexes, const ChainQuery& query,
                        const Dictionary* dict) {
  return ExplainPlan(indexes, query, dict, AuditJoin::Options());
}

}  // namespace kgoa
