#include "src/util/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/util/contract.h"

namespace kgoa {

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  KGOA_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Mass(uint64_t r) const {
  KGOA_CHECK(r < cdf_.size());
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace kgoa
