#include "src/util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace kgoa {

namespace {

SimdLevel DetectCpuLevel() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports reads cpuid once per process under the hood.
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
#endif
  return SimdLevel::kScalar;
}

SimdLevel EnvCap() {
  const char* env = std::getenv("KGOA_SIMD");
  if (env == nullptr) return SimdLevel::kAvx2;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "0") == 0) {
    return SimdLevel::kScalar;
  }
  if (std::strcmp(env, "sse4.2") == 0 || std::strcmp(env, "sse42") == 0) {
    return SimdLevel::kSse42;
  }
  // "avx2", "on", or anything unrecognized: the default (full) cap —
  // an unknown value must not silently disable the fast path.
  return SimdLevel::kAvx2;
}

SimdLevel Clamp(SimdLevel level) {
  const SimdLevel max = MaxSupportedSimdLevel();
  return static_cast<int>(level) > static_cast<int>(max) ? max : level;
}

// Resolved dispatch level; -1 until first use. Relaxed is enough: the
// value is write-once from a pure computation (or an explicit test
// override), and kernels re-reading a stale level still run a correct
// implementation.
std::atomic<int> g_level{-1};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse4.2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel MaxSupportedSimdLevel() {
  static const SimdLevel detected = DetectCpuLevel();
  return detected;
}

SimdLevel CurrentSimdLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(Clamp(EnvCap()));
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel installed = Clamp(level);
  g_level.store(static_cast<int>(installed), std::memory_order_relaxed);
  return installed;
}

}  // namespace kgoa
