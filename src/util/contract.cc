#include "src/util/contract.h"

#include <cstdio>
#include <cstdlib>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define KGOA_CONTRACT_HAVE_EXECINFO 1
#endif
#endif

namespace kgoa::contract {

[[noreturn]] void Fail(const char* file, int line, const char* macro,
                       const char* expr, const std::string& detail) {
  if (detail.empty()) {
    std::fprintf(stderr, "%s failed at %s:%d: %s\n", macro, file, line, expr);
  } else {
    std::fprintf(stderr, "%s failed at %s:%d: %s (%s)\n", macro, file, line,
                 expr, detail.c_str());
  }
#ifdef KGOA_CONTRACT_HAVE_EXECINFO
  void* frames[64];
  const int depth = ::backtrace(frames, 64);
  std::fputs("backtrace:\n", stderr);
  ::backtrace_symbols_fd(frames, depth, /*fd=*/2);
#endif
  std::fflush(stderr);
  std::abort();
}

}  // namespace kgoa::contract
