// Zipf-distributed sampling over {0, ..., n-1}.
//
// Knowledge-graph degree, class-size, and property-usage distributions are
// heavy tailed; the synthetic generators use this sampler to reproduce the
// distributional shape of DBpedia / LinkedGeoData (see DESIGN.md section 4).
#ifndef KGOA_UTIL_ZIPF_H_
#define KGOA_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace kgoa {

// Samples rank r in {0..n-1} with probability proportional to 1/(r+1)^s.
// Uses a precomputed CDF and binary search: O(n) memory, O(log n) sampling.
// This is fine for the generator's n (classes/properties, up to ~1e6).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t size() const { return cdf_.size(); }

  // Probability mass of rank r (for tests).
  double Mass(uint64_t r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace kgoa

#endif  // KGOA_UTIL_ZIPF_H_
