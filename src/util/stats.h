// Descriptive statistics helpers shared by the evaluation harness:
// means, quantiles, and Tukey box-plot summaries (Figures 9 and 10 of the
// paper report Tukey plots of mean absolute error).
#ifndef KGOA_UTIL_STATS_H_
#define KGOA_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace kgoa {

// Normal z value for a two-sided 0.95 confidence interval (paper section
// IV-C uses 0.95 confidence intervals throughout).
inline constexpr double kZ95 = 1.959963984540054;

double Mean(const std::vector<double>& xs);

// Sample variance (divides by n - 1); returns 0 for fewer than two points.
double SampleVariance(const std::vector<double>& xs);

// Linear-interpolation quantile, q in [0, 1]. Input need not be sorted.
double Quantile(std::vector<double> xs, double q);

// Same quantile on an ALREADY ascending-sorted input, without copying or
// re-sorting. Bit-identical to Quantile on the sorted data.
double QuantileSorted(const std::vector<double>& sorted_xs, double q);

// Five-number Tukey summary: quartiles plus whiskers at the most extreme
// data points within 1.5 * IQR of the box (the paper's plot convention).
struct TukeyBox {
  double whisker_lo = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_hi = 0;
  std::size_t n = 0;
};

TukeyBox MakeTukeyBox(std::vector<double> xs);

}  // namespace kgoa

#endif  // KGOA_UTIL_STATS_H_
