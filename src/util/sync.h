// Synchronization primitives with Clang Thread Safety Analysis teeth.
//
// The serving stack's headline guarantee — budget-mode estimates that are
// bit-identical across threads, shards and concurrent serves — rests on a
// locking discipline: every scheduler field has exactly one guarding
// mutex, and every helper that touches it documents which lock it expects
// held. TSan checks that discipline *dynamically*, on the interleavings a
// test happens to hit; this header makes it *static*. Under clang,
// `scripts/lint.sh` builds the tree with `-Wthread-safety
// -Wthread-safety-beta` promoted to errors, so a field read outside its
// guard — today's bug or a future PR's — fails to compile. Under other
// compilers every annotation expands to nothing and the wrappers are
// zero-cost veneers over the std primitives.
//
// The annotation macros mirror the capability attribute set documented in
// clang's ThreadSafetyAnalysis manual (and battle-tested in abseil's
// thread_annotations.h):
//
//   KGOA_GUARDED_BY(mu)      field: reads/writes require `mu` held
//   KGOA_PT_GUARDED_BY(mu)   pointer field: the pointee requires `mu`
//   KGOA_REQUIRES(mu...)     function: caller must hold `mu` on entry
//   KGOA_ACQUIRE(mu...)      function: acquires `mu`, holds it on return
//   KGOA_RELEASE(mu...)      function: releases `mu`
//   KGOA_TRY_ACQUIRE(b, mu)  function: acquires `mu` iff it returns `b`
//   KGOA_EXCLUDES(mu...)     function: caller must NOT hold `mu`
//   KGOA_CAPABILITY(name)    class: instances are lockable capabilities
//   KGOA_SCOPED_CAPABILITY   class: RAII guard (acquire in ctor, release
//                            in dtor)
//   KGOA_ACQUIRED_BEFORE / KGOA_ACQUIRED_AFTER
//                            mutex member: documents lock ordering
//   KGOA_ASSERT_CAPABILITY(mu)
//                            function: runtime-asserts `mu` held
//   KGOA_RETURN_CAPABILITY(mu)
//                            function: returns a reference to `mu`
//   KGOA_NO_THREAD_SAFETY_ANALYSIS
//                            function/lambda: opt out (for code the
//                            analysis cannot model — condition-variable
//                            predicates, which run with the lock held but
//                            in a lambda the analysis treats as a fresh
//                            context)
//
// kgoa::Mutex, kgoa::MutexLock and kgoa::CondVar below are the ONLY legal
// lock types outside src/util/ — the `raw-mutex` rule in
// scripts/kgoa_lint.py bans std::mutex / std::lock_guard /
// std::unique_lock / std::condition_variable everywhere else, because the
// std types carry no capability attributes and silently disable the
// analysis for whatever they guard.
//
// CondVar deliberately offers ONLY predicate waits (Wait(mu, pred),
// WaitFor(mu, d, pred)): a predicate-less wait invites the classic
// spurious-wakeup bug (also flagged by clang-tidy's
// bugprone-spuriously-wake-up-functions and the `cv-wait-predicate` lint
// rule). The predicate runs with the mutex held; annotate predicate
// lambdas that read guarded state with KGOA_NO_THREAD_SAFETY_ANALYSIS.
#ifndef KGOA_UTIL_SYNC_H_
#define KGOA_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/util/contract.h"

// ---------------------------------------------------------------------------
// Annotation macros (no-ops outside clang)
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define KGOA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define KGOA_THREAD_ANNOTATION(x)  // no-op: gcc/msvc have no TSA
#endif

#define KGOA_CAPABILITY(x) KGOA_THREAD_ANNOTATION(capability(x))
#define KGOA_SCOPED_CAPABILITY KGOA_THREAD_ANNOTATION(scoped_lockable)
#define KGOA_GUARDED_BY(x) KGOA_THREAD_ANNOTATION(guarded_by(x))
#define KGOA_PT_GUARDED_BY(x) KGOA_THREAD_ANNOTATION(pt_guarded_by(x))
#define KGOA_ACQUIRED_BEFORE(...) \
  KGOA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define KGOA_ACQUIRED_AFTER(...) \
  KGOA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define KGOA_REQUIRES(...) \
  KGOA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define KGOA_REQUIRES_SHARED(...) \
  KGOA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define KGOA_ACQUIRE(...) \
  KGOA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define KGOA_ACQUIRE_SHARED(...) \
  KGOA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define KGOA_RELEASE(...) \
  KGOA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define KGOA_RELEASE_SHARED(...) \
  KGOA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define KGOA_TRY_ACQUIRE(...) \
  KGOA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define KGOA_TRY_ACQUIRE_SHARED(...) \
  KGOA_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define KGOA_EXCLUDES(...) KGOA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define KGOA_ASSERT_CAPABILITY(x) \
  KGOA_THREAD_ANNOTATION(assert_capability(x))
#define KGOA_RETURN_CAPABILITY(x) KGOA_THREAD_ANNOTATION(lock_returned(x))
#define KGOA_NO_THREAD_SAFETY_ANALYSIS \
  KGOA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace kgoa {

class CondVar;

// Tag type selecting MutexLock's adopt constructor (the lock is already
// held — typically after a successful Mutex::TryLock()).
struct AdoptLockT {
  explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT kAdoptLock{};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

// An annotated exclusive mutex. Prefer scoped MutexLock; call
// Lock/Unlock/TryLock directly only for patterns a scope cannot express
// (e.g. the try-then-lock contention counter in ShardedFlatTable::Insert).
class KGOA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KGOA_ACQUIRE() { mu_.lock(); }
  void Unlock() KGOA_RELEASE() { mu_.unlock(); }
  // Returns true iff the lock was acquired. The analysis tracks the
  // capability along the `true` branch:
  //   if (!mu.TryLock()) return;
  //   MutexLock lock(mu, kAdoptLock);
  bool TryLock() KGOA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// MutexLock
// ---------------------------------------------------------------------------

// RAII guard over a Mutex. Supports mid-scope Unlock()/Lock() for code
// that drops the lock around a long computation (the serving core's
// worker loop releases it around each walk quantum); the destructor
// releases only if currently held.
class KGOA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KGOA_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }

  // Adopts a mutex the caller already holds (e.g. via TryLock); the guard
  // releases it at scope exit.
  MutexLock(Mutex& mu, AdoptLockT) KGOA_REQUIRES(mu)
      : mu_(mu), held_(true) {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() KGOA_RELEASE() {
    if (held_) mu_.Unlock();
  }

  // Mid-scope release; the destructor then does nothing unless Lock() is
  // called again.
  void Unlock() KGOA_RELEASE() {
    KGOA_DCHECK(held_);
    held_ = false;
    mu_.Unlock();
  }

  void Lock() KGOA_ACQUIRE() {
    KGOA_DCHECK(!held_);
    mu_.Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

// Condition variable bound to kgoa::Mutex. Predicate overloads only (see
// file comment): the wait loops internally until `pred()` holds, so
// spurious wakeups cannot leak a false wake to the caller. The caller
// must hold `mu`; the wait releases it while blocking and reacquires it
// before evaluating the predicate and before returning (the analysis
// models the whole call as "requires mu", which is the caller-visible
// contract).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until pred() is true. pred runs with `mu` held.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) KGOA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    // The caller still owns the mutex: hand it back without unlocking.
    native.release();
  }

  // Blocks until pred() is true or `timeout` elapses; returns pred()'s
  // final value (false = timed out with the predicate still false).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Predicate pred) KGOA_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(native, timeout, std::move(pred));
    native.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kgoa

#endif  // KGOA_UTIL_SYNC_H_
