// Lightweight assertion macros used across the library.
//
// KGOA_CHECK is active in all build modes: invariant violations in a query
// engine silently corrupt results, so we prefer a crash with a message.
// KGOA_DCHECK compiles away in NDEBUG builds and is meant for hot paths.
#ifndef KGOA_UTIL_CHECK_H_
#define KGOA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define KGOA_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "KGOA_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define KGOA_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "KGOA_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define KGOA_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define KGOA_DCHECK(cond) KGOA_CHECK(cond)
#endif

#endif  // KGOA_UTIL_CHECK_H_
