// Leveled runtime-contract macros used across the library.
//
// A query engine that violates a structural invariant (an unsorted trie
// level, a non-monotone leapfrog cursor, a poisoned memo entry, a reach
// probability outside (0, 1]) does not crash — it silently returns wrong
// counts. Every contract here therefore aborts with the failing
// expression, the formatted operand values and a backtrace, so a
// violation is debuggable from the first report.
//
// Levels:
//   KGOA_CHECK / KGOA_CHECK_MSG / KGOA_CHECK_EQ..GE
//     Always on, in every build mode. For contracts whose cost is
//     negligible next to the work they guard (constructor validation,
//     per-query preconditions).
//   KGOA_DCHECK / KGOA_DCHECK_MSG / KGOA_DCHECK_EQ..GE /
//   KGOA_DCHECK_SORTED[_BY] / KGOA_DCHECK_PROB[_POS]
//     On when NDEBUG is unset (debug builds) or when the build defines
//     KGOA_CONTRACTS (cmake -DKGOA_CONTRACTS=ON). For hot-path contracts:
//     per-probe, per-seek, per-walk. Compiled to nothing otherwise; the
//     operands are still parsed (inside sizeof) so release builds cannot
//     bit-rot, but they are never evaluated.
//
// The old src/util/check.h grew into this header; scripts/kgoa_lint.py
// rejects bare assert() and any resurrected include of util/check.h.
#ifndef KGOA_UTIL_CONTRACT_H_
#define KGOA_UTIL_CONTRACT_H_

#include <cmath>
#include <cstddef>
#include <iterator>
#include <sstream>
#include <string>

// ---------------------------------------------------------------------------
// Contract level selection
// ---------------------------------------------------------------------------
#if !defined(NDEBUG) || defined(KGOA_CONTRACTS)
#define KGOA_CONTRACTS_ENABLED 1
#else
#define KGOA_CONTRACTS_ENABLED 0
#endif

namespace kgoa::contract {

// True when the KGOA_DCHECK family is active in this build.
inline constexpr bool kEnabled = KGOA_CONTRACTS_ENABLED != 0;

// Prints "<macro> failed at file:line: expr (detail)" plus a backtrace to
// stderr and aborts. Never returns. Defined in contract.cc.
[[noreturn]] void Fail(const char* file, int line, const char* macro,
                       const char* expr, const std::string& detail);

// Declared, never defined: referenced only inside sizeof() so disabled
// contracts keep their operands type-checked (and "used" for -Werror)
// without evaluating them.
template <typename... Ts>
bool Unevaluated(Ts&&...);

// Best-effort operand formatting: streamable types print their value,
// anything else prints a placeholder so Fail still reports the expression.
template <typename T>
std::string Describe(const T& value) {
  if constexpr (requires(std::ostream& os) { os << value; }) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

template <typename A, typename B>
std::string DescribeOp(const A& a, const B& b) {
  return "lhs = " + Describe(a) + ", rhs = " + Describe(b);
}

struct DefaultLess {
  template <typename T, typename U>
  bool operator()(const T& a, const U& b) const {
    return a < b;
  }
};

// Walks [first, last) and aborts at the first out-of-order neighbour,
// reporting its offset. Linear; only ever called from enabled contracts.
template <typename It, typename Cmp>
void CheckSortedRange(const char* file, int line, const char* expr, It first,
                      It last, Cmp cmp) {
  if (first == last) return;
  std::size_t offset = 0;
  for (It next = std::next(first); next != last; ++first, ++next, ++offset) {
    if (cmp(*next, *first)) {
      std::ostringstream os;
      os << "range unsorted: element at offset " << offset + 1
         << " precedes its neighbour";
      Fail(file, line, "KGOA_DCHECK_SORTED", expr, os.str());
    }
  }
}

inline void CheckProb(const char* file, int line, const char* macro,
                      const char* expr, double p, bool require_positive) {
  const bool ok = std::isfinite(p) && p <= 1.0 &&
                  (require_positive ? p > 0.0 : p >= 0.0);
  if (!ok) {
    std::ostringstream os;
    os << "value = " << p << ", expected "
       << (require_positive ? "(0, 1]" : "[0, 1]");
    Fail(file, line, macro, expr, os.str());
  }
}

}  // namespace kgoa::contract

// ---------------------------------------------------------------------------
// Always-on contracts
// ---------------------------------------------------------------------------
#define KGOA_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::kgoa::contract::Fail(__FILE__, __LINE__, "KGOA_CHECK", #cond, "");  \
    }                                                                       \
  } while (0)

#define KGOA_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::kgoa::contract::Fail(__FILE__, __LINE__, "KGOA_CHECK", #cond,       \
                             (msg));                                        \
    }                                                                       \
  } while (0)

// Shared comparison body: evaluates each operand once, reports both values.
#define KGOA_CONTRACT_OP_(macro, op, a, b)                                  \
  do {                                                                      \
    const auto& kgoa_lhs_ = (a);                                            \
    const auto& kgoa_rhs_ = (b);                                            \
    if (!(kgoa_lhs_ op kgoa_rhs_)) [[unlikely]] {                           \
      ::kgoa::contract::Fail(                                               \
          __FILE__, __LINE__, macro, #a " " #op " " #b,                     \
          ::kgoa::contract::DescribeOp(kgoa_lhs_, kgoa_rhs_));              \
    }                                                                       \
  } while (0)

#define KGOA_CHECK_EQ(a, b) KGOA_CONTRACT_OP_("KGOA_CHECK_EQ", ==, a, b)
#define KGOA_CHECK_NE(a, b) KGOA_CONTRACT_OP_("KGOA_CHECK_NE", !=, a, b)
#define KGOA_CHECK_LT(a, b) KGOA_CONTRACT_OP_("KGOA_CHECK_LT", <, a, b)
#define KGOA_CHECK_LE(a, b) KGOA_CONTRACT_OP_("KGOA_CHECK_LE", <=, a, b)
#define KGOA_CHECK_GT(a, b) KGOA_CONTRACT_OP_("KGOA_CHECK_GT", >, a, b)
#define KGOA_CHECK_GE(a, b) KGOA_CONTRACT_OP_("KGOA_CHECK_GE", >=, a, b)

// ---------------------------------------------------------------------------
// Debug / KGOA_CONTRACTS=ON contracts
// ---------------------------------------------------------------------------
#if KGOA_CONTRACTS_ENABLED

#define KGOA_DCHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::kgoa::contract::Fail(__FILE__, __LINE__, "KGOA_DCHECK", #cond, ""); \
    }                                                                       \
  } while (0)

#define KGOA_DCHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::kgoa::contract::Fail(__FILE__, __LINE__, "KGOA_DCHECK", #cond,      \
                             (msg));                                        \
    }                                                                       \
  } while (0)

#define KGOA_DCHECK_EQ(a, b) KGOA_CONTRACT_OP_("KGOA_DCHECK_EQ", ==, a, b)
#define KGOA_DCHECK_NE(a, b) KGOA_CONTRACT_OP_("KGOA_DCHECK_NE", !=, a, b)
#define KGOA_DCHECK_LT(a, b) KGOA_CONTRACT_OP_("KGOA_DCHECK_LT", <, a, b)
#define KGOA_DCHECK_LE(a, b) KGOA_CONTRACT_OP_("KGOA_DCHECK_LE", <=, a, b)
#define KGOA_DCHECK_GT(a, b) KGOA_CONTRACT_OP_("KGOA_DCHECK_GT", >, a, b)
#define KGOA_DCHECK_GE(a, b) KGOA_CONTRACT_OP_("KGOA_DCHECK_GE", >=, a, b)

// Range [first, last) must be sorted (non-decreasing) under < / `cmp`.
#define KGOA_DCHECK_SORTED(first, last)                                     \
  ::kgoa::contract::CheckSortedRange(__FILE__, __LINE__, #first ", " #last, \
                                     (first), (last),                       \
                                     ::kgoa::contract::DefaultLess{})
#define KGOA_DCHECK_SORTED_BY(first, last, cmp)                             \
  ::kgoa::contract::CheckSortedRange(__FILE__, __LINE__, #first ", " #last, \
                                     (first), (last), (cmp))

// `p` must be a finite probability in [0, 1] (or strictly (0, 1] for the
// _POS variant — the paper's reach probabilities, section IV-C).
#define KGOA_DCHECK_PROB(p)                                                 \
  ::kgoa::contract::CheckProb(__FILE__, __LINE__, "KGOA_DCHECK_PROB", #p,   \
                              static_cast<double>(p), false)
#define KGOA_DCHECK_PROB_POS(p)                                             \
  ::kgoa::contract::CheckProb(__FILE__, __LINE__, "KGOA_DCHECK_PROB_POS",   \
                              #p, static_cast<double>(p), true)

#else  // !KGOA_CONTRACTS_ENABLED

// Operands stay inside an unevaluated sizeof: type-checked, never run.
#define KGOA_CONTRACT_IGNORE_(...)                                          \
  do {                                                                      \
    (void)sizeof(::kgoa::contract::Unevaluated(__VA_ARGS__));               \
  } while (0)

#define KGOA_DCHECK(cond) KGOA_CONTRACT_IGNORE_(cond)
#define KGOA_DCHECK_MSG(cond, msg) KGOA_CONTRACT_IGNORE_(cond, msg)
#define KGOA_DCHECK_EQ(a, b) KGOA_CONTRACT_IGNORE_(a, b)
#define KGOA_DCHECK_NE(a, b) KGOA_CONTRACT_IGNORE_(a, b)
#define KGOA_DCHECK_LT(a, b) KGOA_CONTRACT_IGNORE_(a, b)
#define KGOA_DCHECK_LE(a, b) KGOA_CONTRACT_IGNORE_(a, b)
#define KGOA_DCHECK_GT(a, b) KGOA_CONTRACT_IGNORE_(a, b)
#define KGOA_DCHECK_GE(a, b) KGOA_CONTRACT_IGNORE_(a, b)
#define KGOA_DCHECK_SORTED(first, last) KGOA_CONTRACT_IGNORE_(first, last)
#define KGOA_DCHECK_SORTED_BY(first, last, cmp) \
  KGOA_CONTRACT_IGNORE_(first, last, cmp)
#define KGOA_DCHECK_PROB(p) KGOA_CONTRACT_IGNORE_(p)
#define KGOA_DCHECK_PROB_POS(p) KGOA_CONTRACT_IGNORE_(p)

#endif  // KGOA_CONTRACTS_ENABLED

#endif  // KGOA_UTIL_CONTRACT_H_
