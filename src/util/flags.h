// Minimal command-line flag parsing for the benchmark and example binaries.
//
// Accepts "--name=value" and "--name value" forms. Unknown flags abort with
// a message so typos in experiment sweeps are caught rather than silently
// falling back to defaults.
#ifndef KGOA_UTIL_FLAGS_H_
#define KGOA_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace kgoa {

class Flags {
 public:
  // Parses argv. Aborts on malformed arguments.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  // Getters return the default when the flag is absent; they abort if the
  // flag is present but does not parse as the requested type.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

  // Aborts unless every provided flag name is in `allowed` (comma-separated
  // list in the error message helps discoverability).
  void RestrictTo(const std::string& allowed) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace kgoa

#endif  // KGOA_UTIL_FLAGS_H_
