#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/contract.h"

namespace kgoa {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double Quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  return QuantileSorted(xs, q);
}

double QuantileSorted(const std::vector<double>& sorted_xs, double q) {
  KGOA_CHECK(!sorted_xs.empty());
  KGOA_CHECK(q >= 0.0 && q <= 1.0);
  KGOA_DCHECK_SORTED(sorted_xs.begin(), sorted_xs.end());
  const double pos = q * static_cast<double>(sorted_xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted_xs[lo] * (1.0 - frac) + sorted_xs[hi] * frac;
}

TukeyBox MakeTukeyBox(std::vector<double> xs) {
  TukeyBox box;
  if (xs.empty()) return box;
  // One sort for the whole box: the quartiles read the sorted data in
  // place instead of copying and re-sorting it three times.
  std::sort(xs.begin(), xs.end());
  box.n = xs.size();
  box.q1 = QuantileSorted(xs, 0.25);
  box.median = QuantileSorted(xs, 0.5);
  box.q3 = QuantileSorted(xs, 0.75);
  const double iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - 1.5 * iqr;
  const double hi_fence = box.q3 + 1.5 * iqr;
  box.whisker_lo = box.q3;
  box.whisker_hi = box.q1;
  // Whiskers: most extreme data points within the fences.
  for (double x : xs) {
    if (x >= lo_fence) {
      box.whisker_lo = x;
      break;
    }
  }
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    if (*it <= hi_fence) {
      box.whisker_hi = *it;
      break;
    }
  }
  return box;
}

}  // namespace kgoa
