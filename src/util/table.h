// Plain-text table rendering for benchmark output. The figure/table benches
// print the same rows/series the paper reports; this keeps that output
// aligned and diff-friendly.
#ifndef KGOA_UTIL_TABLE_H_
#define KGOA_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace kgoa {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders with column alignment and a header separator.
  std::string ToString() const;

  // Convenience formatting helpers for cells.
  static std::string Fmt(double v, int precision = 3);
  static std::string FmtPercent(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kgoa

#endif  // KGOA_UTIL_TABLE_H_
