// Seedable pseudo-random number generation.
//
// We use xoshiro256** (public domain, Blackman & Vigna) rather than
// std::mt19937_64: it is ~4x faster per draw, which matters because the
// online-aggregation inner loop draws one random number per walk step and
// the paper's reported sample times are ~2.5us per full walk.
#ifndef KGOA_UTIL_RNG_H_
#define KGOA_UTIL_RNG_H_

#include <cstdint>

namespace kgoa {

// splitmix64; used to seed xoshiro from a single 64-bit value.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Seed of walk number `walk` under engine seed `engine_seed`. Walk RNG is
// counter-derived: every walk draws from a private stream seeded by
// (engine seed, walk index), so a walk's samples are a pure function of
// its index — the execution order of walks (one at a time, or batched
// level-synchronously) cannot change any walk's draws, which is what
// keeps batched estimates bit-identical to the batch=1 path. The engine
// seed is avalanched through the SplitMix64 mixer so the adjacent engine
// seeds handed out by the parallel executor (seed + worker) yield
// decorrelated walk-seed sequences.
inline uint64_t WalkSeed(uint64_t engine_seed, uint64_t walk) {
  uint64_t sm = engine_seed;
  return SplitMix64(sm) + walk;
}

// xoshiro256** generator. Copyable; copies evolve independently.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x8a5cd789635d2dffULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  // Lemire's nearly-divisionless method.
  uint64_t Below(uint64_t bound) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // UniformRandomBitGenerator interface (for std::shuffle etc.).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace kgoa

#endif  // KGOA_UTIL_RNG_H_
