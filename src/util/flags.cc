#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace kgoa {

namespace {

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "flag error: %s\n", msg.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.substr(0, 2) != "--") Die("expected --flag, got: " + std::string(arg));
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";  // bare boolean flag
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') Die("--" + name + " expects an integer");
  return v;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') Die("--" + name + " expects a number");
  return v;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  Die("--" + name + " expects true/false");
}

void Flags::RestrictTo(const std::string& allowed) const {
  for (const auto& [name, value] : values_) {
    (void)value;
    const std::string needle = "," + name + ",";
    const std::string hay = "," + allowed + ",";
    if (hay.find(needle) == std::string::npos) {
      Die("unknown flag --" + name + " (allowed: " + allowed + ")");
    }
  }
}

}  // namespace kgoa
