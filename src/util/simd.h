// Runtime SIMD dispatch for the index kernel layer (src/index/kernels.h).
//
// The kernels ship three implementations — portable scalar, SSE4.2 and
// AVX2 — compiled with per-function target attributes so the library
// itself builds without -march flags and stays runnable on any x86-64
// (and, through the scalar fallback, on any architecture at all). The
// level is picked ONCE, at first use, from cpuid (__builtin_cpu_supports)
// and the KGOA_SIMD environment variable:
//
//   KGOA_SIMD=off | scalar   force the portable scalar path
//   KGOA_SIMD=sse4.2         cap at SSE4.2 even when AVX2 is available
//   KGOA_SIMD=avx2 | on      cap at AVX2 (the default cap)
//
// A requested level is always clamped to what the CPU supports, so
// setting KGOA_SIMD=avx2 on an SSE-only machine degrades gracefully
// instead of faulting. Tests drive both paths in one process through
// SetSimdLevel (same clamping); differential suites and the block-codec
// fuzzer compare every kernel's output across levels bit for bit.
//
// This header deliberately contains no intrinsics (the kgoa_lint
// `raw-intrinsic` rule fences <immintrin.h> into src/index/kernels.cc and
// here); it is safe to include from any translation unit.
#ifndef KGOA_UTIL_SIMD_H_
#define KGOA_UTIL_SIMD_H_

namespace kgoa {

// Ordered: a higher level implies every lower level's instruction set.
enum class SimdLevel : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

// Human-readable level name ("scalar", "sse4.2", "avx2") for metrics and
// bench output.
const char* SimdLevelName(SimdLevel level);

// The dispatch level in effect: resolved on first call from cpuid and
// KGOA_SIMD, then cached. Hot kernels read a relaxed atomic — one load,
// no fence, on every call.
SimdLevel CurrentSimdLevel();

// Highest level the CPU supports, ignoring KGOA_SIMD (for tests and the
// throughput bench to know which levels are exercisable).
SimdLevel MaxSupportedSimdLevel();

// Forces the dispatch level (clamped to MaxSupportedSimdLevel) and
// returns the level actually installed. Test/bench hook; not intended
// for concurrent use with running kernels — callers switch levels
// between, not during, kernel invocations.
SimdLevel SetSimdLevel(SimdLevel level);

}  // namespace kgoa

#endif  // KGOA_UTIL_SIMD_H_
