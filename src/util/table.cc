#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/contract.h"

namespace kgoa {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  KGOA_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::FmtPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace kgoa
