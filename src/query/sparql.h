// Parser for the SPARQL fragment of the paper's exploration queries
// (Figure 4):
//
//   SELECT ?g COUNT(DISTINCT ?f) WHERE {
//     ?s <http://...birthPlace> ?f .
//     ?s rdf:type <http://...Person> .
//     FILTER EXISTS { ?f rdf:type <http://...City> } .
//   } GROUP BY ?g
//
// Supported syntax: IRIs in angle brackets, the built-in prefixes rdf:,
// rdfs: and owl:, quoted literals, variables (?name), optional DISTINCT,
// '#' comments, and FILTER EXISTS clauses with a (var, IRI, IRI) pattern
// (the fused class restrictions of src/join/filter.h). Keywords are
// case-insensitive. The query must satisfy the chain contract enforced by
// ChainQuery::Create.
//
// Constants are resolved against an existing dictionary: a term that was
// never interned cannot match anything, and is reported as an error rather
// than silently returning empty results.
#ifndef KGOA_QUERY_SPARQL_H_
#define KGOA_QUERY_SPARQL_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/query/chain_query.h"
#include "src/rdf/dictionary.h"

namespace kgoa {

struct SparqlParseResult {
  std::optional<ChainQuery> query;
  std::string error;       // empty on success
  std::size_t error_line = 0;  // 1-based; 0 on success

  bool ok() const { return query.has_value(); }
};

SparqlParseResult ParseSparqlCount(std::string_view text,
                                   const Dictionary& dict);

}  // namespace kgoa

#endif  // KGOA_QUERY_SPARQL_H_
