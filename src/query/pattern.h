// Triple patterns: the atoms of exploration queries. Each position
// (subject, predicate, object) is either a constant term or a variable.
#ifndef KGOA_QUERY_PATTERN_H_
#define KGOA_QUERY_PATTERN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/rdf/dictionary.h"
#include "src/rdf/types.h"

namespace kgoa {

using VarId = uint32_t;

inline constexpr VarId kNoVar = static_cast<VarId>(-1);

inline constexpr int kSubject = 0;
inline constexpr int kPredicate = 1;
inline constexpr int kObject = 2;

// One position of a triple pattern.
class Slot {
 public:
  static Slot MakeVar(VarId v) { return Slot(true, v); }
  static Slot MakeConst(TermId t) { return Slot(false, t); }

  bool is_var() const { return is_var_; }
  VarId var() const { return id_; }
  TermId term() const { return id_; }

  friend bool operator==(const Slot&, const Slot&) = default;

 private:
  Slot(bool is_var, uint32_t id) : is_var_(is_var), id_(id) {}

  bool is_var_;
  uint32_t id_;
};

struct TriplePattern {
  std::array<Slot, 3> slots;

  const Slot& operator[](int component) const { return slots[component]; }
  Slot& operator[](int component) { return slots[component]; }

  // Component where `v` appears, or -1. Variables appear at most once per
  // pattern (enforced by ChainQuery validation).
  int ComponentOf(VarId v) const;

  bool HasVar(VarId v) const { return ComponentOf(v) >= 0; }

  // Distinct variables in component order.
  std::vector<VarId> Vars() const;

  int NumVars() const { return static_cast<int>(Vars().size()); }

  // True when `t` agrees with this pattern's constants.
  bool MatchesConstants(const Triple& t) const;

  // Rendering for diagnostics; variables print as ?v<N>.
  std::string ToString(const Dictionary* dict = nullptr) const;

  friend bool operator==(const TriplePattern&, const TriplePattern&) = default;
};

// Convenience constructors.
TriplePattern MakePattern(Slot s, Slot p, Slot o);

// An existence filter on one component of a pattern: a matching triple t is
// kept iff the graph contains (t[component], property, value). Used to fuse
// class restrictions into a pattern's extent when the restricted variable
// is already saturated (see src/join/filter.h).
struct TypeFilter {
  int component = 0;
  TermId property = kInvalidTerm;
  TermId value = kInvalidTerm;

  friend bool operator==(const TypeFilter&, const TypeFilter&) = default;
};

}  // namespace kgoa

#endif  // KGOA_QUERY_PATTERN_H_
