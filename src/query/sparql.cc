#include "src/query/sparql.h"

#include <cctype>
#include <map>
#include <vector>

#include "src/rdf/vocab.h"

namespace kgoa {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokenKind {
  kKeyword,   // SELECT, COUNT, DISTINCT, WHERE, GROUP, BY, FILTER, EXISTS
  kVariable,  // ?name
  kIri,       // <...> or a resolved built-in prefix form
  kLiteral,   // "..."
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kDot,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // keyword (uppercased), variable name, IRI, literal
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  // Returns false and sets error() on a malformed token.
  bool Next(Token* token) {
    SkipSpaceAndComments();
    token->line = line_;
    if (pos_ >= text_.size()) {
      token->kind = TokenKind::kEnd;
      return true;
    }
    const char c = text_[pos_];
    switch (c) {
      case '(': ++pos_; token->kind = TokenKind::kLParen; return true;
      case ')': ++pos_; token->kind = TokenKind::kRParen; return true;
      case '{': ++pos_; token->kind = TokenKind::kLBrace; return true;
      case '}': ++pos_; token->kind = TokenKind::kRBrace; return true;
      case '.': ++pos_; token->kind = TokenKind::kDot; return true;
      case '?': return LexVariable(token);
      case '<': return LexIri(token);
      case '"': return LexLiteral(token);
      default: return LexWord(token);
    }
  }

  const std::string& error() const { return error_; }
  std::size_t line() const { return line_; }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool LexVariable(Token* token) {
    ++pos_;  // '?'
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      error_ = "empty variable name";
      return false;
    }
    token->kind = TokenKind::kVariable;
    token->text = std::string(text_.substr(start, pos_ - start));
    return true;
  }

  bool LexIri(Token* token) {
    const std::size_t end = text_.find('>', pos_);
    if (end == std::string_view::npos) {
      error_ = "unterminated IRI";
      return false;
    }
    token->kind = TokenKind::kIri;
    token->text = std::string(text_.substr(pos_ + 1, end - pos_ - 1));
    pos_ = end + 1;
    return true;
  }

  bool LexLiteral(Token* token) {
    std::string out = "\"";
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        switch (text_[pos_]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default:
            error_ = "bad literal escape";
            return false;
        }
      }
      out.push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      error_ = "unterminated literal";
      return false;
    }
    ++pos_;  // closing quote
    out.push_back('"');
    token->kind = TokenKind::kLiteral;
    token->text = std::move(out);
    return true;
  }

  bool LexWord(Token* token) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == ':' || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      error_ = std::string("unexpected character '") + text_[pos_] + "'";
      return false;
    }
    std::string word(text_.substr(start, pos_ - start));
    // Built-in prefixed names resolve to full IRIs.
    static const std::map<std::string, std::string> kPrefixed = {
        {"rdf:type", vocab::kRdfType},
        {"rdfs:subClassOf", vocab::kRdfsSubClassOf},
        {"owl:Thing", vocab::kOwlThing},
    };
    auto it = kPrefixed.find(word);
    if (it != kPrefixed.end()) {
      token->kind = TokenKind::kIri;
      token->text = it->second;
      return true;
    }
    for (char& c : word) c = static_cast<char>(std::toupper(c));
    token->kind = TokenKind::kKeyword;
    token->text = std::move(word);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(std::string_view text, const Dictionary& dict)
      : lexer_(text), dict_(dict) {}

  SparqlParseResult Parse() {
    if (!Advance()) return Fail(lexer_.error());

    if (!ExpectKeyword("SELECT")) return Fail("expected SELECT");
    std::string alpha_name;
    if (!ExpectVariable(&alpha_name)) return Fail("expected group variable");
    if (!ExpectKeyword("COUNT")) return Fail("expected COUNT");
    if (!Expect(TokenKind::kLParen)) return Fail("expected '('");
    bool distinct = false;
    if (current_.kind == TokenKind::kKeyword &&
        current_.text == "DISTINCT") {
      distinct = true;
      if (!Advance()) return Fail(lexer_.error());
    }
    std::string beta_name;
    if (!ExpectVariable(&beta_name)) return Fail("expected count variable");
    if (!Expect(TokenKind::kRParen)) return Fail("expected ')'");
    if (!ExpectKeyword("WHERE")) return Fail("expected WHERE");
    if (!Expect(TokenKind::kLBrace)) return Fail("expected '{'");

    std::vector<TriplePattern> patterns;
    std::vector<std::vector<TypeFilter>> filters;
    while (current_.kind != TokenKind::kRBrace) {
      if (current_.kind == TokenKind::kKeyword &&
          current_.text == "FILTER") {
        if (patterns.empty()) {
          return Fail("FILTER EXISTS before any triple pattern");
        }
        std::string error = ParseFilter(patterns.back(), &filters.back());
        if (!error.empty()) return Fail(error);
        continue;
      }
      TriplePattern pattern = MakePattern(Slot::MakeConst(0),
                                          Slot::MakeConst(0),
                                          Slot::MakeConst(0));
      std::string error = ParseTriple(&pattern);
      if (!error.empty()) return Fail(error);
      patterns.push_back(pattern);
      filters.emplace_back();
    }
    if (!Expect(TokenKind::kRBrace)) return Fail("expected '}'");
    if (!ExpectKeyword("GROUP")) return Fail("expected GROUP BY");
    if (!ExpectKeyword("BY")) return Fail("expected GROUP BY");
    std::string group_name;
    if (!ExpectVariable(&group_name)) return Fail("expected group variable");
    if (group_name != alpha_name) {
      return Fail("GROUP BY variable must match the selected variable");
    }
    if (current_.kind != TokenKind::kEnd) {
      return Fail("trailing input after GROUP BY");
    }

    auto alpha_it = vars_.find(alpha_name);
    auto beta_it = vars_.find(beta_name);
    if (alpha_it == vars_.end()) {
      return Fail("selected variable ?" + alpha_name +
                  " does not occur in WHERE");
    }
    if (beta_it == vars_.end()) {
      return Fail("counted variable ?" + beta_name +
                  " does not occur in WHERE");
    }

    SparqlParseResult result;
    std::string error;
    result.query = ChainQuery::CreateReordering(
        std::move(patterns), std::move(filters), alpha_it->second,
        beta_it->second, distinct, &error);
    if (!result.query.has_value()) return Fail(error);
    return result;
  }

 private:
  bool Advance() {
    return lexer_.Next(&current_);
  }

  bool Expect(TokenKind kind) {
    if (current_.kind != kind) return false;
    return Advance();
  }

  bool ExpectKeyword(const std::string& keyword) {
    if (current_.kind != TokenKind::kKeyword || current_.text != keyword) {
      return false;
    }
    return Advance();
  }

  bool ExpectVariable(std::string* name) {
    if (current_.kind != TokenKind::kVariable) return false;
    *name = current_.text;
    return Advance();
  }

  // Resolves the current token as a pattern slot; advances on success.
  std::string ParseSlot(Slot* slot, bool allow_literal) {
    switch (current_.kind) {
      case TokenKind::kVariable: {
        auto [it, inserted] =
            vars_.try_emplace(current_.text,
                              static_cast<VarId>(vars_.size()));
        *slot = Slot::MakeVar(it->second);
        break;
      }
      case TokenKind::kIri: {
        const TermId id = dict_.Lookup(current_.text);
        if (id == kInvalidTerm) {
          return "unknown term <" + current_.text + ">";
        }
        *slot = Slot::MakeConst(id);
        break;
      }
      case TokenKind::kLiteral: {
        if (!allow_literal) return "literal not allowed here";
        const TermId id = dict_.Lookup(current_.text);
        if (id == kInvalidTerm) return "unknown literal " + current_.text;
        *slot = Slot::MakeConst(id);
        break;
      }
      default:
        return "expected variable, IRI or literal";
    }
    if (!Advance()) return lexer_.error();
    return "";
  }

  std::string ParseTriple(TriplePattern* pattern) {
    for (int c = 0; c < 3; ++c) {
      std::string error = ParseSlot(&(*pattern)[c], /*allow_literal=*/c == 2);
      if (!error.empty()) return error;
    }
    if (!Expect(TokenKind::kDot)) return "expected '.' after triple";
    return "";
  }

  // FILTER EXISTS { ?v <p> <o> } [.]  — ?v must occur in `pattern` (the
  // preceding triple), producing a fused existence filter on it.
  std::string ParseFilter(const TriplePattern& pattern,
                          std::vector<TypeFilter>* filters) {
    if (!ExpectKeyword("FILTER")) return "expected FILTER";
    if (!ExpectKeyword("EXISTS")) return "expected EXISTS";
    if (!Expect(TokenKind::kLBrace)) return "expected '{' after EXISTS";

    if (current_.kind != TokenKind::kVariable) {
      return "FILTER EXISTS subject must be a variable";
    }
    auto it = vars_.find(current_.text);
    if (it == vars_.end()) {
      return "FILTER EXISTS variable ?" + current_.text + " is unbound";
    }
    const int component = pattern.ComponentOf(it->second);
    if (component < 0) {
      return "FILTER EXISTS variable must occur in the preceding pattern";
    }
    if (!Advance()) return lexer_.error();

    TypeFilter filter;
    filter.component = component;
    for (TermId* field : {&filter.property, &filter.value}) {
      if (current_.kind != TokenKind::kIri) {
        return "FILTER EXISTS expects IRIs for predicate and object";
      }
      *field = dict_.Lookup(current_.text);
      if (*field == kInvalidTerm) {
        return "unknown term <" + current_.text + ">";
      }
      if (!Advance()) return lexer_.error();
    }
    if (!Expect(TokenKind::kRBrace)) return "expected '}' closing EXISTS";
    if (current_.kind == TokenKind::kDot) {
      if (!Advance()) return lexer_.error();
    }
    filters->push_back(filter);
    return "";
  }

  SparqlParseResult Fail(const std::string& message) {
    SparqlParseResult result;
    result.error = message.empty() ? "parse error" : message;
    result.error_line = current_.line;
    return result;
  }

  Lexer lexer_;
  const Dictionary& dict_;
  Token current_;
  std::map<std::string, VarId> vars_;
};

}  // namespace

SparqlParseResult ParseSparqlCount(std::string_view text,
                                   const Dictionary& dict) {
  return Parser(text, dict).Parse();
}

}  // namespace kgoa
