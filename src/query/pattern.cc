#include "src/query/pattern.h"

#include <sstream>

namespace kgoa {

int TriplePattern::ComponentOf(VarId v) const {
  for (int c = 0; c < 3; ++c) {
    if (slots[c].is_var() && slots[c].var() == v) return c;
  }
  return -1;
}

std::vector<VarId> TriplePattern::Vars() const {
  std::vector<VarId> vars;
  for (int c = 0; c < 3; ++c) {
    if (!slots[c].is_var()) continue;
    bool seen = false;
    for (VarId v : vars) seen = seen || v == slots[c].var();
    if (!seen) vars.push_back(slots[c].var());
  }
  return vars;
}

bool TriplePattern::MatchesConstants(const Triple& t) const {
  for (int c = 0; c < 3; ++c) {
    if (!slots[c].is_var() && slots[c].term() != t[c]) return false;
  }
  return true;
}

std::string TriplePattern::ToString(const Dictionary* dict) const {
  std::ostringstream out;
  for (int c = 0; c < 3; ++c) {
    if (c > 0) out << ' ';
    if (slots[c].is_var()) {
      out << "?v" << slots[c].var();
    } else if (dict != nullptr) {
      out << '<' << dict->Spell(slots[c].term()) << '>';
    } else {
      out << '#' << slots[c].term();
    }
  }
  return out.str();
}

TriplePattern MakePattern(Slot s, Slot p, Slot o) {
  return TriplePattern{{s, p, o}};
}

}  // namespace kgoa
