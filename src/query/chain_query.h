// Chain (path-shaped) exploration queries — the query class of the paper
// (Figure 4):
//
//   SELECT alpha, COUNT(DISTINCT beta) WHERE { P_1 . P_2 . ... P_n }
//   GROUP BY alpha
//
// with each variable appearing in at most two triple patterns, consecutive
// patterns sharing exactly one variable (the chain "links"), and the group
// variable alpha and counted variable beta co-occurring in at least one
// pattern (which every exploration expansion guarantees — see
// src/explore/). Cyclic queries cannot occur (section IV-A).
#ifndef KGOA_QUERY_CHAIN_QUERY_H_
#define KGOA_QUERY_CHAIN_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/query/pattern.h"

namespace kgoa {

class ChainQuery {
 public:
  // Validates and finalizes a query; returns std::nullopt and fills *error
  // (if non-null) when the input violates the chain-query contract.
  static std::optional<ChainQuery> Create(std::vector<TriplePattern> patterns,
                                          VarId alpha, VarId beta,
                                          bool distinct,
                                          std::string* error = nullptr);

  // As above, with per-pattern existence filters (parallel to `patterns`;
  // see src/join/filter.h). Pass an empty vector for no filters.
  static std::optional<ChainQuery> Create(
      std::vector<TriplePattern> patterns,
      std::vector<std::vector<TypeFilter>> filters, VarId alpha, VarId beta,
      bool distinct, std::string* error = nullptr);

  // Like Create, but first permutes the patterns into chain order if the
  // given order is not already a chain (triple patterns have set
  // semantics; e.g. the paper's Figure 5 lists its patterns out of chain
  // order). Fails if no permutation forms a chain.
  static std::optional<ChainQuery> CreateReordering(
      std::vector<TriplePattern> patterns,
      std::vector<std::vector<TypeFilter>> filters, VarId alpha, VarId beta,
      bool distinct, std::string* error = nullptr);

  const std::vector<TriplePattern>& patterns() const { return patterns_; }
  int NumPatterns() const { return static_cast<int>(patterns_.size()); }

  VarId alpha() const { return alpha_; }
  VarId beta() const { return beta_; }
  bool distinct() const { return distinct_; }

  // Returns a copy of this query with the distinct flag replaced.
  ChainQuery WithDistinct(bool distinct) const;

  // Existence filters of pattern i (possibly empty).
  const std::vector<TypeFilter>& filters(int i) const { return filters_[i]; }
  bool HasAnyFilter() const;

  // Variable linking pattern i and pattern i+1 (size NumPatterns() - 1).
  const std::vector<VarId>& links() const { return links_; }

  // Index of a pattern containing both alpha and beta.
  int alpha_beta_pattern() const { return alpha_beta_pattern_; }

  // All distinct variables, in first-appearance order.
  const std::vector<VarId>& vars() const { return vars_; }

  // SPARQL rendering (Figure 4 form) for logging and documentation.
  std::string ToSparql(const Dictionary* dict = nullptr) const;

 private:
  ChainQuery() = default;

  std::vector<TriplePattern> patterns_;
  std::vector<std::vector<TypeFilter>> filters_;
  VarId alpha_ = kNoVar;
  VarId beta_ = kNoVar;
  bool distinct_ = true;
  std::vector<VarId> links_;
  std::vector<VarId> vars_;
  int alpha_beta_pattern_ = -1;
};

}  // namespace kgoa

#endif  // KGOA_QUERY_CHAIN_QUERY_H_
