#include "src/query/chain_query.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace kgoa {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

std::optional<ChainQuery> ChainQuery::Create(
    std::vector<TriplePattern> patterns, VarId alpha, VarId beta,
    bool distinct, std::string* error) {
  return Create(std::move(patterns), {}, alpha, beta, distinct, error);
}

std::optional<ChainQuery> ChainQuery::Create(
    std::vector<TriplePattern> patterns,
    std::vector<std::vector<TypeFilter>> filters, VarId alpha, VarId beta,
    bool distinct, std::string* error) {
  if (!filters.empty() && filters.size() != patterns.size()) {
    SetError(error, "filters must be empty or parallel to patterns");
    return std::nullopt;
  }
  if (patterns.empty()) {
    SetError(error, "query must have at least one pattern");
    return std::nullopt;
  }

  // Each variable appears at most once per pattern and in at most two
  // patterns overall (Figure 4 contract).
  std::unordered_map<VarId, int> occurrences;
  for (const TriplePattern& p : patterns) {
    std::vector<VarId> seen_here;
    for (int c = 0; c < 3; ++c) {
      if (!p[c].is_var()) continue;
      const VarId v = p[c].var();
      if (std::count(seen_here.begin(), seen_here.end(), v) > 0) {
        SetError(error, "variable repeated within a pattern");
        return std::nullopt;
      }
      seen_here.push_back(v);
      ++occurrences[v];
    }
  }
  for (const auto& [v, n] : occurrences) {
    if (n > 2) {
      SetError(error, "a variable appears in more than two patterns");
      return std::nullopt;
    }
  }

  // Consecutive patterns share exactly one variable; non-consecutive
  // patterns share none (chain shape; this also excludes cycles).
  std::vector<VarId> links;
  for (std::size_t i = 0; i + 1 < patterns.size(); ++i) {
    VarId link = kNoVar;
    int shared = 0;
    for (VarId v : patterns[i].Vars()) {
      if (patterns[i + 1].HasVar(v)) {
        link = v;
        ++shared;
      }
    }
    if (shared != 1) {
      SetError(error, "consecutive patterns must share exactly one variable");
      return std::nullopt;
    }
    links.push_back(link);
  }
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    for (std::size_t j = i + 2; j < patterns.size(); ++j) {
      for (VarId v : patterns[i].Vars()) {
        if (patterns[j].HasVar(v)) {
          SetError(error, "non-consecutive patterns share a variable");
          return std::nullopt;
        }
      }
    }
  }

  if (occurrences.find(alpha) == occurrences.end()) {
    SetError(error, "alpha does not occur in the query");
    return std::nullopt;
  }
  if (occurrences.find(beta) == occurrences.end()) {
    SetError(error, "beta does not occur in the query");
    return std::nullopt;
  }

  int ab_pattern = -1;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (patterns[i].HasVar(alpha) && patterns[i].HasVar(beta)) {
      ab_pattern = static_cast<int>(i);
      break;
    }
  }
  if (alpha != beta && ab_pattern < 0) {
    SetError(error, "alpha and beta must co-occur in some pattern");
    return std::nullopt;
  }
  if (alpha == beta) {
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].HasVar(alpha)) {
        ab_pattern = static_cast<int>(i);
        break;
      }
    }
  }

  ChainQuery q;
  q.patterns_ = std::move(patterns);
  q.filters_ = std::move(filters);
  q.filters_.resize(q.patterns_.size());
  q.alpha_ = alpha;
  q.beta_ = beta;
  q.distinct_ = distinct;
  q.links_ = std::move(links);
  q.alpha_beta_pattern_ = ab_pattern;
  for (const TriplePattern& p : q.patterns_) {
    for (VarId v : p.Vars()) {
      if (std::count(q.vars_.begin(), q.vars_.end(), v) == 0) {
        q.vars_.push_back(v);
      }
    }
  }
  return q;
}

std::optional<ChainQuery> ChainQuery::CreateReordering(
    std::vector<TriplePattern> patterns,
    std::vector<std::vector<TypeFilter>> filters, VarId alpha, VarId beta,
    bool distinct, std::string* error) {
  // Fast path: already a chain.
  if (auto q = Create(patterns, filters, alpha, beta, distinct, nullptr)) {
    return q;
  }
  if (!filters.empty() && filters.size() != patterns.size()) {
    SetError(error, "filters must be empty or parallel to patterns");
    return std::nullopt;
  }
  filters.resize(patterns.size());

  // Build the pattern adjacency graph (patterns sharing a variable) and
  // walk it from an endpoint; a valid chain is a Hamiltonian path, which
  // for share-degree <= 2 graphs is found greedily.
  const int n = static_cast<int>(patterns.size());
  std::vector<std::vector<int>> neighbors(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      for (VarId v : patterns[i].Vars()) {
        if (patterns[j].HasVar(v)) {
          neighbors[i].push_back(j);
          neighbors[j].push_back(i);
          break;
        }
      }
    }
  }
  int start = -1;
  for (int i = 0; i < n; ++i) {
    if (neighbors[i].size() <= 1) start = i;
    if (neighbors[i].size() > 2) {
      SetError(error, "patterns do not form a chain (a pattern joins with "
                      "more than two others)");
      return std::nullopt;
    }
  }
  if (start < 0) {
    SetError(error, "patterns do not form a chain (cycle)");
    return std::nullopt;
  }
  std::vector<TriplePattern> ordered;
  std::vector<std::vector<TypeFilter>> ordered_filters;
  std::vector<bool> used(n, false);
  int current = start;
  while (current >= 0) {
    used[current] = true;
    ordered.push_back(patterns[current]);
    ordered_filters.push_back(std::move(filters[current]));
    int next = -1;
    for (int neighbor : neighbors[current]) {
      if (!used[neighbor]) next = neighbor;
    }
    current = next;
  }
  if (static_cast<int>(ordered.size()) != n) {
    SetError(error, "patterns do not form a connected chain");
    return std::nullopt;
  }
  return Create(std::move(ordered), std::move(ordered_filters), alpha, beta,
                distinct, error);
}

bool ChainQuery::HasAnyFilter() const {
  for (const auto& fs : filters_) {
    if (!fs.empty()) return true;
  }
  return false;
}

ChainQuery ChainQuery::WithDistinct(bool distinct) const {
  ChainQuery q = *this;
  q.distinct_ = distinct;
  return q;
}

std::string ChainQuery::ToSparql(const Dictionary* dict) const {
  std::ostringstream out;
  out << "SELECT ?v" << alpha_ << " COUNT(";
  if (distinct_) out << "DISTINCT ";
  out << "?v" << beta_ << ") WHERE {\n";
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    const TriplePattern& p = patterns_[i];
    out << "  " << p.ToString(dict) << " .\n";
    for (const TypeFilter& f : filters_[i]) {
      out << "  FILTER EXISTS { ";
      if (p[f.component].is_var()) {
        out << "?v" << p[f.component].var();
      } else {
        out << '#' << p[f.component].term();
      }
      if (dict != nullptr) {
        out << " <" << dict->Spell(f.property) << "> <" << dict->Spell(f.value)
            << '>';
      } else {
        out << " #" << f.property << " #" << f.value;
      }
      out << " } .\n";
    }
  }
  out << "} GROUP BY ?v" << alpha_;
  return out.str();
}

}  // namespace kgoa
