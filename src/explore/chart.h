// Bar-chart value types of the visual exploration model (section III).
#ifndef KGOA_EXPLORE_CHART_H_
#define KGOA_EXPLORE_CHART_H_

#include <vector>

#include "src/rdf/types.h"

namespace kgoa {

// Kind of a bar: what its category denotes.
enum class BarKind {
  kClass,        // category is a class; contents are its instances
  kOutProperty,  // category is a property; contents are subjects having it
  kInProperty,   // category is a property; contents are objects having it
};

// The five bar expansions (Figure 3).
enum class ExpansionKind {
  kSubclass,     // class bar  -> chart of direct subclasses
  kOutProperty,  // class bar  -> chart of outgoing properties
  kInProperty,   // class bar  -> chart of incoming properties
  kObject,       // out-property bar -> chart of object classes
  kSubject,      // in-property bar  -> chart of subject classes
};

inline const char* BarKindName(BarKind kind) {
  switch (kind) {
    case BarKind::kClass: return "class";
    case BarKind::kOutProperty: return "out-property";
    case BarKind::kInProperty: return "in-property";
  }
  return "?";
}

inline const char* ExpansionName(ExpansionKind kind) {
  switch (kind) {
    case ExpansionKind::kSubclass: return "subclass";
    case ExpansionKind::kOutProperty: return "out-property";
    case ExpansionKind::kInProperty: return "in-property";
    case ExpansionKind::kObject: return "object";
    case ExpansionKind::kSubject: return "subject";
  }
  return "?";
}

// Kind of the bars a given expansion produces.
inline BarKind ResultBarKind(ExpansionKind expansion) {
  switch (expansion) {
    case ExpansionKind::kSubclass:
    case ExpansionKind::kObject:
    case ExpansionKind::kSubject:
      return BarKind::kClass;
    case ExpansionKind::kOutProperty:
      return BarKind::kOutProperty;
    case ExpansionKind::kInProperty:
      return BarKind::kInProperty;
  }
  return BarKind::kClass;
}

struct Bar {
  TermId category = kInvalidTerm;
  double count = 0;           // height: (estimated) distinct focus count
  double ci_half_width = 0;   // 0 for exact results
};

struct Chart {
  BarKind kind = BarKind::kClass;
  std::vector<Bar> bars;  // sorted by count, descending
};

}  // namespace kgoa

#endif  // KGOA_EXPLORE_CHART_H_
