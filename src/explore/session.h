// Exploration sessions: the state machine of section III.
//
// A session tracks the user's current selection (a bar: kind + category)
// and the chain of triple patterns whose tail variable denotes the bar's
// contents. Each expansion produces a chain query of the Figure 4 template
// (alpha = the next chart's categories, beta = its focus set); selecting a
// bar of the resulting chart advances the state.
//
// Two translation details keep every query inside the Figure 4 contract
// (each variable in at most two patterns):
//  * refining a class bar by subclass *replaces* the trailing rdf:type
//    pattern (sound because the subclass closure is materialized);
//  * a property expansion on a focus variable that is already saturated
//    fuses the trailing class restriction into the new pattern's extent as
//    an existence filter (src/join/filter.h) — this is what makes walks
//    like Example III.1 ("out-properties of Persons who influenced
//    philosophers") expressible.
#ifndef KGOA_EXPLORE_SESSION_H_
#define KGOA_EXPLORE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/explore/chart.h"
#include "src/index/snapshot.h"
#include "src/ola/parallel.h"
#include "src/query/chain_query.h"
#include "src/rdf/graph.h"

namespace kgoa {

class ExplorationSession {
 public:
  // Starts at `root_class` (the graph's owl:Thing if kInvalidTerm). The
  // snapshot must carry a Graph; the session pins it so the vocabulary
  // terms it translates against (rdf:type, subclass-of, the dictionary)
  // stay valid across compactions. Sessions only read vocabulary — charts
  // served for the session may pin NEWER versions, which is sound because
  // TermIds are stable across epochs (the dictionary is shared).
  explicit ExplorationSession(GraphSnapshot snapshot,
                              TermId root_class = kInvalidTerm);
  // Legacy adapter: wraps an externally owned graph (which must outlive
  // the session) in an epoch-0 snapshot.
  explicit ExplorationSession(const Graph& graph,
                              TermId root_class = kInvalidTerm);

  // The pinned graph version this session translates against.
  uint64_t epoch() const { return snapshot_.epoch(); }
  const GraphSnapshot& snapshot() const { return snapshot_; }

  BarKind current_kind() const { return kind_; }
  TermId current_category() const { return category_; }

  // Expansions legal from the current selection (Figure 3).
  std::vector<ExpansionKind> LegalExpansions() const;
  bool IsLegal(ExpansionKind expansion) const;

  // Chain query (with DISTINCT) whose grouped result is the chart for
  // `expansion`. `expansion` must be legal.
  ChainQuery BuildQuery(ExpansionKind expansion) const;

  // Applies `expansion` and selects the bar whose category is `category`
  // in the resulting chart. The caller obtains categories by evaluating
  // BuildQuery(expansion). `expansion` must be legal.
  void ExpandAndSelect(ExpansionKind expansion, TermId category);

  // Number of expansions applied so far.
  int depth() const { return depth_; }

  // Back navigation: undoes the most recent ExpandAndSelect (the UI's
  // breadcrumb trail). Returns false at the root.
  bool CanGoBack() const { return !history_.empty(); }
  bool GoBack();

  // The chain defining the current selection's contents (diagnostics).
  const std::vector<TriplePattern>& patterns() const { return patterns_; }
  std::string Describe() const;

  // Monotonic interaction counters (exported into the serving metrics by
  // the REPL; never reset by GoBack).
  uint64_t queries_built() const { return queries_built_; }
  uint64_t expansions_applied() const { return expansions_applied_; }
  uint64_t back_navigations() const { return back_navigations_; }
  uint64_t jobs_auto_cancelled() const { return jobs_auto_cancelled_; }

  // Async serving integration: register a chart job serving the CURRENT
  // selection (Explorer::SubmitChart). Navigating away — ExpandAndSelect
  // or GoBack — supersedes every tracked job and auto-cancels the
  // unfinished ones, so the pool never keeps converging charts the user
  // has already left behind.
  void TrackJob(ChartHandle handle);
  // Same, for a scatter-gather job: register every per-shard handle
  // (ShardChartHandle::shard_handles()) so the auto-cancel on navigation
  // fans out across the shard cores.
  void TrackJobs(const std::vector<ChartHandle>& handles);
  const std::vector<ChartHandle>& tracked_jobs() const { return jobs_; }

  // Cancels all tracked unfinished jobs and clears the tracked set;
  // returns how many were still running.
  int CancelLiveJobs();

 private:
  struct QueryParts {
    std::vector<TriplePattern> patterns;
    std::vector<std::vector<TypeFilter>> filters;
    VarId alpha = kNoVar;
    VarId beta = kNoVar;
  };

  // Builds the patterns of the chart query for `expansion` (shared by
  // BuildQuery and ExpandAndSelect).
  QueryParts BuildParts(ExpansionKind expansion) const;

  VarId FreshVar() const { return next_var_; }

  const Graph& graph() const { return snapshot_.graph(); }

  // Pinned for the session's lifetime (see ctor comment).
  GraphSnapshot snapshot_;

  std::vector<TriplePattern> patterns_;
  std::vector<std::vector<TypeFilter>> filters_;
  VarId focus_ = 0;       // tail variable: contents of the current bar
  VarId next_var_ = 1;    // next fresh variable id
  BarKind kind_ = BarKind::kClass;
  TermId category_ = kInvalidTerm;
  // Index of the trailing (focus rdf:type category) pattern, -1 if the
  // class restriction lives in a filter (or the bar is a property bar).
  int tail_type_pattern_ = -1;
  int depth_ = 0;

  // Interaction counters; queries_built_ is mutated by const BuildQuery.
  mutable uint64_t queries_built_ = 0;
  uint64_t expansions_applied_ = 0;
  uint64_t back_navigations_ = 0;
  uint64_t jobs_auto_cancelled_ = 0;

  // Jobs serving the current selection; superseded on navigation.
  std::vector<ChartHandle> jobs_;

  // Saved states for GoBack (everything except the pinned snapshot).
  struct Snapshot {
    std::vector<TriplePattern> patterns;
    std::vector<std::vector<TypeFilter>> filters;
    VarId focus;
    VarId next_var;
    BarKind kind;
    TermId category;
    int tail_type_pattern;
    int depth;
  };
  std::vector<Snapshot> history_;
};

}  // namespace kgoa

#endif  // KGOA_EXPLORE_SESSION_H_
