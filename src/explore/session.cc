#include "src/explore/session.h"

#include <sstream>

#include "src/util/contract.h"

namespace kgoa {

ExplorationSession::ExplorationSession(GraphSnapshot snapshot,
                                       TermId root_class)
    : snapshot_(std::move(snapshot)) {
  KGOA_CHECK_MSG(snapshot_.has_graph(),
                 "an exploration session needs a Graph-carrying snapshot");
  category_ = root_class == kInvalidTerm ? graph().owl_thing() : root_class;
  kind_ = BarKind::kClass;
  focus_ = 0;
  next_var_ = 1;
  patterns_.push_back(MakePattern(Slot::MakeVar(focus_),
                                  Slot::MakeConst(graph().rdf_type()),
                                  Slot::MakeConst(category_)));
  filters_.push_back({});
  tail_type_pattern_ = 0;
}

ExplorationSession::ExplorationSession(const Graph& graph, TermId root_class)
    : ExplorationSession(GraphSnapshot::Unowned(graph), root_class) {}

std::vector<ExpansionKind> ExplorationSession::LegalExpansions() const {
  switch (kind_) {
    case BarKind::kClass:
      return {ExpansionKind::kSubclass, ExpansionKind::kOutProperty,
              ExpansionKind::kInProperty};
    case BarKind::kOutProperty:
      return {ExpansionKind::kObject};
    case BarKind::kInProperty:
      return {ExpansionKind::kSubject};
  }
  return {};
}

bool ExplorationSession::IsLegal(ExpansionKind expansion) const {
  for (ExpansionKind legal : LegalExpansions()) {
    if (legal == expansion) return true;
  }
  return false;
}

namespace {

// Number of patterns in `patterns` containing variable `v`.
int Occurrences(const std::vector<TriplePattern>& patterns, VarId v) {
  int count = 0;
  for (const TriplePattern& p : patterns) {
    if (p.HasVar(v)) ++count;
  }
  return count;
}

}  // namespace

ExplorationSession::QueryParts ExplorationSession::BuildParts(
    ExpansionKind expansion) const {
  KGOA_CHECK_MSG(IsLegal(expansion), "expansion illegal for current bar");
  QueryParts parts;
  parts.patterns = patterns_;
  parts.filters = filters_;

  const VarId fresh1 = next_var_;
  const VarId fresh2 = next_var_ + 1;

  switch (expansion) {
    case ExpansionKind::kSubclass: {
      // Replace the trailing (focus type c) by (focus type ?c') and
      // restrict ?c' to the direct subclasses of c.
      KGOA_CHECK(tail_type_pattern_ >= 0);
      const TermId parent = category_;
      std::vector<TypeFilter> tail_filters =
          parts.filters[tail_type_pattern_];
      parts.patterns.erase(parts.patterns.begin() + tail_type_pattern_);
      parts.filters.erase(parts.filters.begin() + tail_type_pattern_);
      parts.patterns.push_back(MakePattern(
          Slot::MakeVar(focus_), Slot::MakeConst(graph().rdf_type()),
          Slot::MakeVar(fresh1)));
      parts.filters.push_back(std::move(tail_filters));
      parts.patterns.push_back(MakePattern(
          Slot::MakeVar(fresh1), Slot::MakeConst(graph().subclass_of()),
          Slot::MakeConst(parent)));
      parts.filters.push_back({});
      parts.alpha = fresh1;
      parts.beta = focus_;
      break;
    }
    case ExpansionKind::kOutProperty:
    case ExpansionKind::kInProperty: {
      std::vector<TypeFilter> new_filters;
      if (Occurrences(parts.patterns, focus_) >= 2) {
        // The focus variable is saturated: fuse the trailing class
        // restriction into the new pattern's extent.
        KGOA_CHECK(tail_type_pattern_ >= 0);
        const TriplePattern& tail = parts.patterns[tail_type_pattern_];
        new_filters = parts.filters[tail_type_pattern_];
        const int component =
            expansion == ExpansionKind::kOutProperty ? kSubject : kObject;
        new_filters.push_back(
            TypeFilter{component, tail[kPredicate].term(),
                       tail[kObject].term()});
        parts.patterns.erase(parts.patterns.begin() + tail_type_pattern_);
        parts.filters.erase(parts.filters.begin() + tail_type_pattern_);
      }
      if (expansion == ExpansionKind::kOutProperty) {
        parts.patterns.push_back(MakePattern(Slot::MakeVar(focus_),
                                             Slot::MakeVar(fresh1),
                                             Slot::MakeVar(fresh2)));
      } else {
        parts.patterns.push_back(MakePattern(Slot::MakeVar(fresh2),
                                             Slot::MakeVar(fresh1),
                                             Slot::MakeVar(focus_)));
      }
      parts.filters.push_back(std::move(new_filters));
      parts.alpha = fresh1;
      parts.beta = focus_;
      break;
    }
    case ExpansionKind::kObject:
    case ExpansionKind::kSubject: {
      // The property bar's last pattern is (focus p ?z) / (?z p focus);
      // the new chart classifies the ?z side.
      const TriplePattern& last = parts.patterns.back();
      const int z_component =
          expansion == ExpansionKind::kObject ? kObject : kSubject;
      KGOA_CHECK(last[z_component].is_var());
      const VarId z = last[z_component].var();
      parts.patterns.push_back(MakePattern(
          Slot::MakeVar(z), Slot::MakeConst(graph().rdf_type()),
          Slot::MakeVar(fresh1)));
      parts.filters.push_back({});
      parts.alpha = fresh1;
      parts.beta = z;
      break;
    }
  }
  return parts;
}

ChainQuery ExplorationSession::BuildQuery(ExpansionKind expansion) const {
  QueryParts parts = BuildParts(expansion);
  std::string error;
  auto query =
      ChainQuery::Create(std::move(parts.patterns), std::move(parts.filters),
                         parts.alpha, parts.beta, /*distinct=*/true, &error);
  KGOA_CHECK_MSG(query.has_value(), error.c_str());
  ++queries_built_;
  return *query;
}

void ExplorationSession::TrackJob(ChartHandle handle) {
  if (handle.valid()) jobs_.push_back(std::move(handle));
}

void ExplorationSession::TrackJobs(const std::vector<ChartHandle>& handles) {
  for (const ChartHandle& handle : handles) TrackJob(handle);
}

int ExplorationSession::CancelLiveJobs() {
  int cancelled = 0;
  for (const ChartHandle& job : jobs_) {
    if (!job.finished()) {
      job.Cancel();
      ++cancelled;
    }
  }
  jobs_.clear();
  jobs_auto_cancelled_ += static_cast<uint64_t>(cancelled);
  return cancelled;
}

bool ExplorationSession::GoBack() {
  if (history_.empty()) return false;
  // The selection changes: any chart still converging for the old
  // selection is superseded.
  CancelLiveJobs();
  Snapshot& snapshot = history_.back();
  patterns_ = std::move(snapshot.patterns);
  filters_ = std::move(snapshot.filters);
  focus_ = snapshot.focus;
  next_var_ = snapshot.next_var;
  kind_ = snapshot.kind;
  category_ = snapshot.category;
  tail_type_pattern_ = snapshot.tail_type_pattern;
  depth_ = snapshot.depth;
  history_.pop_back();
  ++back_navigations_;
  return true;
}

void ExplorationSession::ExpandAndSelect(ExpansionKind expansion,
                                         TermId category) {
  // The selection changes: any chart still converging for the old
  // selection is superseded.
  CancelLiveJobs();
  history_.push_back(Snapshot{patterns_, filters_, focus_, next_var_, kind_,
                              category_, tail_type_pattern_, depth_});
  QueryParts parts = BuildParts(expansion);
  // Fresh variables BuildParts drew from next_var_ for this expansion:
  // property expansions bind two (the property variable and the new ?z
  // endpoint); subclass/object/subject expansions bind one. Advancing by
  // a flat 2 leaked an id on every one-variable step of a deep session.
  int fresh_vars_used = 1;
  switch (expansion) {
    case ExpansionKind::kSubclass: {
      // Drop the grounded (category subClassOf parent) pattern and fix the
      // type pattern to the selected subclass.
      parts.patterns.pop_back();
      parts.filters.pop_back();
      TriplePattern& tail = parts.patterns.back();
      tail[kObject] = Slot::MakeConst(category);
      tail_type_pattern_ = static_cast<int>(parts.patterns.size()) - 1;
      kind_ = BarKind::kClass;
      break;
    }
    case ExpansionKind::kOutProperty:
    case ExpansionKind::kInProperty: {
      // Fix the property variable to the selected property.
      fresh_vars_used = 2;
      TriplePattern& tail = parts.patterns.back();
      tail[kPredicate] = Slot::MakeConst(category);
      tail_type_pattern_ = -1;
      kind_ = expansion == ExpansionKind::kOutProperty
                  ? BarKind::kOutProperty
                  : BarKind::kInProperty;
      break;
    }
    case ExpansionKind::kObject:
    case ExpansionKind::kSubject: {
      // Fix the class and move the focus to the classified variable.
      TriplePattern& tail = parts.patterns.back();
      focus_ = tail[kSubject].var();
      tail[kObject] = Slot::MakeConst(category);
      tail_type_pattern_ = static_cast<int>(parts.patterns.size()) - 1;
      kind_ = BarKind::kClass;
      break;
    }
  }
  patterns_ = std::move(parts.patterns);
  filters_ = std::move(parts.filters);
  category_ = category;
  next_var_ += static_cast<VarId>(fresh_vars_used);
  ++depth_;
  ++expansions_applied_;
}

std::string ExplorationSession::Describe() const {
  std::ostringstream out;
  out << BarKindName(kind_) << " bar <" << graph().dict().Spell(category_)
      << ">, chain:";
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    out << "\n  " << patterns_[i].ToString(&graph().dict());
    for (const TypeFilter& f : filters_[i]) {
      out << "  [filter: component " << f.component << " has <"
          << graph().dict().Spell(f.value) << ">]";
    }
  }
  return out.str();
}

}  // namespace kgoa
