// Materialization cache for exploration charts.
//
// The systems the paper contrasts with (GraFa, Rhizomer, Broccoli —
// section II) precompute and cache aggregated counts; that works for
// frequently visited charts but cannot cover the combinatorial space of
// exploration paths ("typically only a subset of relevant results can be
// materialized"). This cache implements the strategy so the tradeoff can
// be measured against online aggregation (bench/ablation_materialization):
// exact results keyed by the rendered query, FIFO-bounded.
#ifndef KGOA_EXPLORE_CACHE_H_
#define KGOA_EXPLORE_CACHE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/reach.h"
#include "src/index/snapshot.h"
#include "src/join/result.h"
#include "src/query/chain_query.h"
#include "src/util/sync.h"

namespace kgoa {

// Thread-compatible, not thread-safe: a ChartCache belongs to one
// exploration session and is only touched from that session's thread
// (unlike ReachCacheRegistry below, which async chart jobs share).
//
// Epoch-aware: an exact result is only exact for the graph version it was
// evaluated on, so the key is (epoch, rendered query). Callers on a
// mutable graph pass their snapshot's epoch; the immutable setups keep the
// default of 0. Superseded-epoch entries age out through the FIFO bound.
class ChartCache {
 public:
  explicit ChartCache(std::size_t max_entries = 100000)
      : max_entries_(max_entries) {}

  // Cached exact result for `query` at `epoch`, or nullptr. Counts
  // hits/misses.
  const GroupedResult* Lookup(const ChainQuery& query, uint64_t epoch = 0);

  // Stores a result; evicts the oldest entry when full.
  void Insert(const ChainQuery& query, GroupedResult result,
              uint64_t epoch = 0);

  std::size_t entries() const { return cache_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0 : static_cast<double>(hits_) /
                                static_cast<double>(total);
  }

  // Rough memory footprint: keys plus one (group, count) pair per bar.
  uint64_t ApproxMemoryBytes() const { return approx_bytes_; }

 private:
  static std::string KeyOf(const ChainQuery& query, uint64_t epoch) {
    std::string key = std::to_string(epoch);
    key += '@';
    key += query.ToSparql();
    return key;
  }

  std::size_t max_entries_;
  std::unordered_map<std::string, GroupedResult> cache_;
  std::deque<std::string> insertion_order_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t approx_bytes_ = 0;
};

// A handed-out reach cache plus the shared ownership that keeps it valid.
// Wire `reach` into ChartJobOptions::shared_reach and `keepalive` into
// ChartJobOptions::reach_keepalive: the job then keeps both the memo table
// AND the graph version it audits against alive even if the registry
// evicts the entry (stale epoch) mid-flight.
struct AcquiredReach {
  ReachProbability* reach = nullptr;
  std::shared_ptr<const void> keepalive;
  uint64_t epoch = 0;  // graph version the memos are exact for
};

// Session-scoped reach-probability caches, one warm ReachProbability per
// (epoch, query, walk order). Exploration revisits charts — back
// navigation, toggling bar kinds, re-serving the same expansion with a
// fresh budget — and every such revisit runs walks over the same plan.
// Because the reach memos are pure functions of (indexes, plan)
// (src/core/reach.h), the cache from the previous serving is still exact
// FOR THE SAME GRAPH VERSION, so each distinct (a, b) pair is audited once
// per session-and-epoch rather than once per chart.
//
// Epoch awareness: the epoch is part of the key, so a write batch
// (publishing epoch N+1) naturally starts fresh caches while jobs pinned
// on epoch N keep hitting their exact ones. EvictStale(current_epoch)
// drops superseded entries; in-flight jobs keep theirs alive through the
// AcquiredReach keepalive, and each entry pins its own GraphSnapshot so
// the memos never outlive the version they audit.
//
// Acquire and stats are thread-safe (a mutex guards the registry map);
// the handed-out caches themselves are concurrency-safe by design
// (sharded tables, value-pure memos — src/core/reach.h), so async chart
// jobs submitted from different threads can share warm caches.
class ReachCacheRegistry {
 public:
  ReachCacheRegistry() = default;

  ReachCacheRegistry(const ReachCacheRegistry&) = delete;
  ReachCacheRegistry& operator=(const ReachCacheRegistry&) = delete;

  // The cache for (snapshot's epoch, query, walk_order), built against the
  // snapshot's indexes on first use. The returned pointer stays valid as
  // long as the entry lives in the registry OR the keepalive is held.
  AcquiredReach Acquire(const ChainQuery& query,
                        const std::vector<int>& walk_order,
                        const GraphSnapshot& snapshot);

  // Drops every entry built for an epoch other than `current_epoch`
  // (superseded memo tables audit a retired version and can only waste
  // memory). Jobs still running on old epochs are unaffected — their
  // keepalives pin their entries. Returns the number of entries dropped.
  std::size_t EvictStale(uint64_t current_epoch);

  std::size_t plans() const {
    MutexLock lock(mutex_);
    return caches_.size();
  }
  uint64_t plan_hits() const {
    MutexLock lock(mutex_);
    return hits_;
  }
  uint64_t plan_misses() const {
    MutexLock lock(mutex_);
    return misses_;
  }
  uint64_t stale_evictions() const {
    MutexLock lock(mutex_);
    return stale_evictions_;
  }

  // Memo-table stats aggregated across every cached plan.
  ShardedTableStats stats() const;

 private:
  struct Entry {
    // The plan (and through it, the memo keys) points into this copy.
    std::unique_ptr<ChainQuery> query;
    std::unique_ptr<WalkPlan> plan;
    // Pins the graph version the memos audit; declared before `reach` so
    // the cache (which reads through the snapshot's indexes) dies first.
    GraphSnapshot snapshot;
    std::unique_ptr<ReachProbability> reach;
    uint64_t epoch = 0;
  };

  // Guards the registry map and its counters; NEVER held while a handed-
  // out ReachProbability is probed (Acquire returns a stable pointer, so
  // lookups and serving never re-enter the registry).
  mutable Mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> caches_
      KGOA_GUARDED_BY(mutex_);
  uint64_t hits_ KGOA_GUARDED_BY(mutex_) = 0;
  uint64_t misses_ KGOA_GUARDED_BY(mutex_) = 0;
  uint64_t stale_evictions_ KGOA_GUARDED_BY(mutex_) = 0;
};

}  // namespace kgoa

#endif  // KGOA_EXPLORE_CACHE_H_
