// Materialization cache for exploration charts.
//
// The systems the paper contrasts with (GraFa, Rhizomer, Broccoli —
// section II) precompute and cache aggregated counts; that works for
// frequently visited charts but cannot cover the combinatorial space of
// exploration paths ("typically only a subset of relevant results can be
// materialized"). This cache implements the strategy so the tradeoff can
// be measured against online aggregation (bench/ablation_materialization):
// exact results keyed by the rendered query, FIFO-bounded.
#ifndef KGOA_EXPLORE_CACHE_H_
#define KGOA_EXPLORE_CACHE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/reach.h"
#include "src/join/result.h"
#include "src/query/chain_query.h"
#include "src/util/sync.h"

namespace kgoa {

// Thread-compatible, not thread-safe: a ChartCache belongs to one
// exploration session and is only touched from that session's thread
// (unlike ReachCacheRegistry below, which async chart jobs share).
class ChartCache {
 public:
  explicit ChartCache(std::size_t max_entries = 100000)
      : max_entries_(max_entries) {}

  // Cached exact result for `query`, or nullptr. Counts hits/misses.
  const GroupedResult* Lookup(const ChainQuery& query);

  // Stores a result; evicts the oldest entry when full.
  void Insert(const ChainQuery& query, GroupedResult result);

  std::size_t entries() const { return cache_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0 : static_cast<double>(hits_) /
                                static_cast<double>(total);
  }

  // Rough memory footprint: keys plus one (group, count) pair per bar.
  uint64_t ApproxMemoryBytes() const { return approx_bytes_; }

 private:
  static std::string KeyOf(const ChainQuery& query) {
    return query.ToSparql();
  }

  std::size_t max_entries_;
  std::unordered_map<std::string, GroupedResult> cache_;
  std::deque<std::string> insertion_order_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t approx_bytes_ = 0;
};

// Session-scoped reach-probability caches, one warm ReachProbability per
// (query, walk order). Exploration revisits charts — back navigation,
// toggling bar kinds, re-serving the same expansion with a fresh budget —
// and every such revisit runs walks over the same plan. Because the reach
// memos are pure functions of (indexes, plan) (src/core/reach.h), the
// cache from the previous serving is still exact, so each distinct (a, b)
// pair is audited once per *session* rather than once per chart.
//
// Unlike ChartCache this holds derived per-plan state, not results, so
// entries are never evicted: a session touches a handful of plans and each
// cache is bounded by the number of reachable (a, b) pairs.
//
// Acquire and stats are thread-safe (a mutex guards the registry map);
// the handed-out caches themselves are concurrency-safe by design
// (sharded tables, value-pure memos — src/core/reach.h), so async chart
// jobs submitted from different threads can share warm caches.
class ReachCacheRegistry {
 public:
  // The indexes must outlive the registry.
  explicit ReachCacheRegistry(const IndexSet& indexes) : indexes_(indexes) {}

  // Handed-out ReachProbability pointers must stay stable.
  ReachCacheRegistry(const ReachCacheRegistry&) = delete;
  ReachCacheRegistry& operator=(const ReachCacheRegistry&) = delete;

  // The cache for (query, walk_order), built on first use. The pointer
  // (and its accumulated memo) stays valid for the registry's lifetime.
  ReachProbability* Acquire(const ChainQuery& query,
                            const std::vector<int>& walk_order);

  std::size_t plans() const {
    MutexLock lock(mutex_);
    return caches_.size();
  }
  uint64_t plan_hits() const {
    MutexLock lock(mutex_);
    return hits_;
  }
  uint64_t plan_misses() const {
    MutexLock lock(mutex_);
    return misses_;
  }

  // Memo-table stats aggregated across every cached plan.
  ShardedTableStats stats() const;

 private:
  struct Entry {
    // The plan (and through it, the memo keys) points into this copy.
    std::unique_ptr<ChainQuery> query;
    std::unique_ptr<WalkPlan> plan;
    std::unique_ptr<ReachProbability> reach;
  };

  const IndexSet& indexes_;
  // Guards the registry map and its counters; NEVER held while a handed-
  // out ReachProbability is probed (Acquire returns a stable pointer, so
  // lookups and serving never re-enter the registry).
  mutable Mutex mutex_;
  std::unordered_map<std::string, Entry> caches_ KGOA_GUARDED_BY(mutex_);
  uint64_t hits_ KGOA_GUARDED_BY(mutex_) = 0;
  uint64_t misses_ KGOA_GUARDED_BY(mutex_) = 0;
};

}  // namespace kgoa

#endif  // KGOA_EXPLORE_CACHE_H_
