// Materialization cache for exploration charts.
//
// The systems the paper contrasts with (GraFa, Rhizomer, Broccoli —
// section II) precompute and cache aggregated counts; that works for
// frequently visited charts but cannot cover the combinatorial space of
// exploration paths ("typically only a subset of relevant results can be
// materialized"). This cache implements the strategy so the tradeoff can
// be measured against online aggregation (bench/ablation_materialization):
// exact results keyed by the rendered query, FIFO-bounded.
#ifndef KGOA_EXPLORE_CACHE_H_
#define KGOA_EXPLORE_CACHE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "src/join/result.h"
#include "src/query/chain_query.h"

namespace kgoa {

class ChartCache {
 public:
  explicit ChartCache(std::size_t max_entries = 100000)
      : max_entries_(max_entries) {}

  // Cached exact result for `query`, or nullptr. Counts hits/misses.
  const GroupedResult* Lookup(const ChainQuery& query);

  // Stores a result; evicts the oldest entry when full.
  void Insert(const ChainQuery& query, GroupedResult result);

  std::size_t entries() const { return cache_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0 : static_cast<double>(hits_) /
                                static_cast<double>(total);
  }

  // Rough memory footprint: keys plus one (group, count) pair per bar.
  uint64_t ApproxMemoryBytes() const { return approx_bytes_; }

 private:
  static std::string KeyOf(const ChainQuery& query) {
    return query.ToSparql();
  }

  std::size_t max_entries_;
  std::unordered_map<std::string, GroupedResult> cache_;
  std::deque<std::string> insertion_order_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t approx_bytes_ = 0;
};

}  // namespace kgoa

#endif  // KGOA_EXPLORE_CACHE_H_
