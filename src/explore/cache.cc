#include "src/explore/cache.h"

namespace kgoa {

const GroupedResult* ChartCache::Lookup(const ChainQuery& query) {
  auto it = cache_.find(KeyOf(query));
  if (it == cache_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void ChartCache::Insert(const ChainQuery& query, GroupedResult result) {
  std::string key = KeyOf(query);
  if (cache_.count(key) > 0) return;
  while (cache_.size() >= max_entries_ && !insertion_order_.empty()) {
    auto evicted = cache_.find(insertion_order_.front());
    if (evicted != cache_.end()) {
      approx_bytes_ -= evicted->first.size() +
                       evicted->second.counts.size() * 16;
      cache_.erase(evicted);
    }
    insertion_order_.pop_front();
  }
  approx_bytes_ += key.size() + result.counts.size() * 16;
  insertion_order_.push_back(key);
  cache_.emplace(std::move(key), std::move(result));
}

ReachProbability* ReachCacheRegistry::Acquire(
    const ChainQuery& query, const std::vector<int>& walk_order) {
  std::string key = query.ToSparql();
  key += '|';
  for (int pattern : walk_order) {
    key += std::to_string(pattern);
    key += ',';
  }
  MutexLock lock(mutex_);
  auto it = caches_.find(key);
  if (it != caches_.end()) {
    ++hits_;
    return it->second.reach.get();
  }
  ++misses_;
  Entry entry;
  entry.query = std::make_unique<ChainQuery>(query);
  entry.plan = std::make_unique<WalkPlan>(
      WalkPlan::Compile(*entry.query, walk_order));
  entry.reach = std::make_unique<ReachProbability>(indexes_, *entry.plan);
  ReachProbability* reach = entry.reach.get();
  caches_.emplace(std::move(key), std::move(entry));
  return reach;
}

ShardedTableStats ReachCacheRegistry::stats() const {
  ShardedTableStats total;
  MutexLock lock(mutex_);
  for (const auto& [key, entry] : caches_) {
    const ShardedTableStats s = entry.reach->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.insert_contention += s.insert_contention;
    total.duplicate_inserts += s.duplicate_inserts;
    total.entries += s.entries;
    total.memory_bytes += s.memory_bytes;
  }
  return total;
}

}  // namespace kgoa
