#include "src/explore/cache.h"

namespace kgoa {

const GroupedResult* ChartCache::Lookup(const ChainQuery& query) {
  auto it = cache_.find(KeyOf(query));
  if (it == cache_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void ChartCache::Insert(const ChainQuery& query, GroupedResult result) {
  std::string key = KeyOf(query);
  if (cache_.count(key) > 0) return;
  while (cache_.size() >= max_entries_ && !insertion_order_.empty()) {
    auto evicted = cache_.find(insertion_order_.front());
    if (evicted != cache_.end()) {
      approx_bytes_ -= evicted->first.size() +
                       evicted->second.counts.size() * 16;
      cache_.erase(evicted);
    }
    insertion_order_.pop_front();
  }
  approx_bytes_ += key.size() + result.counts.size() * 16;
  insertion_order_.push_back(key);
  cache_.emplace(std::move(key), std::move(result));
}

}  // namespace kgoa
