#include "src/explore/cache.h"

#include <utility>

namespace kgoa {

const GroupedResult* ChartCache::Lookup(const ChainQuery& query,
                                        uint64_t epoch) {
  auto it = cache_.find(KeyOf(query, epoch));
  if (it == cache_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void ChartCache::Insert(const ChainQuery& query, GroupedResult result,
                        uint64_t epoch) {
  std::string key = KeyOf(query, epoch);
  if (cache_.count(key) > 0) return;
  while (cache_.size() >= max_entries_ && !insertion_order_.empty()) {
    auto evicted = cache_.find(insertion_order_.front());
    if (evicted != cache_.end()) {
      approx_bytes_ -= evicted->first.size() +
                       evicted->second.counts.size() * 16;
      cache_.erase(evicted);
    }
    insertion_order_.pop_front();
  }
  approx_bytes_ += key.size() + result.counts.size() * 16;
  insertion_order_.push_back(key);
  cache_.emplace(std::move(key), std::move(result));
}

AcquiredReach ReachCacheRegistry::Acquire(
    const ChainQuery& query, const std::vector<int>& walk_order,
    const GraphSnapshot& snapshot) {
  const uint64_t epoch = snapshot.epoch();
  std::string key = std::to_string(epoch);
  key += '@';
  key += query.ToSparql();
  key += '|';
  for (int pattern : walk_order) {
    key += std::to_string(pattern);
    key += ',';
  }
  MutexLock lock(mutex_);
  auto it = caches_.find(key);
  if (it != caches_.end()) {
    ++hits_;
    return AcquiredReach{it->second->reach.get(), it->second,
                         it->second->epoch};
  }
  ++misses_;
  auto entry = std::make_shared<Entry>();
  entry->query = std::make_unique<ChainQuery>(query);
  entry->plan = std::make_unique<WalkPlan>(
      WalkPlan::Compile(*entry->query, walk_order));
  entry->snapshot = snapshot;
  entry->reach = std::make_unique<ReachProbability>(snapshot.indexes(),
                                                    *entry->plan);
  entry->epoch = epoch;
  AcquiredReach acquired{entry->reach.get(), entry, epoch};
  caches_.emplace(std::move(key), std::move(entry));
  return acquired;
}

std::size_t ReachCacheRegistry::EvictStale(uint64_t current_epoch) {
  MutexLock lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = caches_.begin(); it != caches_.end();) {
    if (it->second->epoch != current_epoch) {
      it = caches_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stale_evictions_ += dropped;
  return dropped;
}

ShardedTableStats ReachCacheRegistry::stats() const {
  ShardedTableStats total;
  MutexLock lock(mutex_);
  for (const auto& [key, entry] : caches_) {
    const ShardedTableStats s = entry->reach->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.insert_contention += s.insert_contention;
    total.duplicate_inserts += s.duplicate_inserts;
    total.entries += s.entries;
    total.memory_bytes += s.memory_bytes;
  }
  return total;
}

}  // namespace kgoa
