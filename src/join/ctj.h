// Cached Trie Join (CTJ) — Kalinsky, Etsion & Kimelfeld (EDBT 2017),
// section IV-B of the paper.
//
// CTJ augments the LFTJ backtracking search with caches of partial join
// results guided by a tree decomposition of the query. Exploration queries
// are chains, so the decomposition degenerates to per-level suffix caches:
// the number of ways to complete the chain below a join value depends only
// on that value. The cache structure is the paper's "array of hashtables"
// (one per chain position) — realized as growing open-addressing
// FlatTables, so a memo probe on the counting hot path is one multiply
// and a short linear scan rather than a node chase.
//
// Two components live here:
//  * ChainSuffixCounter — memoized counting of chain completions from a
//    given position and join value. CTJ evaluation is built on it, and
//    Audit Join calls it directly for its partial exact computations
//    |Gamma_delta| (section IV-D).
//  * CtjEngine — exact grouped COUNT / COUNT DISTINCT evaluation of a
//    chain query, anchored at the pattern containing alpha and beta.
#ifndef KGOA_JOIN_CTJ_H_
#define KGOA_JOIN_CTJ_H_

#include <cstdint>
#include <vector>

#include "src/index/flat_table.h"
#include "src/index/index_set.h"
#include "src/join/access.h"
#include "src/join/filter.h"
#include "src/join/result.h"
#include "src/query/chain_query.h"

namespace kgoa {

// Counts completions of the pattern sequence patterns[0..n-1], where
// pattern i+1 joins pattern i on in_vars[i+1], and pattern 0 is entered
// through in_vars[0] (kNoVar for "no incoming binding": pattern 0 is then
// resolved by its constants alone).
class ChainSuffixCounter {
 public:
  ChainSuffixCounter(const IndexSet& indexes,
                     std::vector<TriplePattern> patterns,
                     std::vector<VarId> in_vars,
                     std::vector<FilterSet> filters = {});

  // Number of assignments for patterns[step..] given that the incoming
  // variable of patterns[step] is bound to `value`. Memoized per
  // (step, value): repeated calls are O(1) — this cache reuse is what
  // Example IV.1 illustrates.
  uint64_t Count(int step, TermId value);

  // Count from the start; `value` for in_vars[0] (ignored when kNoVar).
  uint64_t CountAll(TermId value = kInvalidTerm) { return Count(0, value); }

  int NumSteps() const { return static_cast<int>(patterns_.size()); }

  void ClearCache();
  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }

  // Disables memoization (for the LFTJ-vs-CTJ ablation benchmark).
  void set_caching_enabled(bool enabled) { caching_enabled_ = enabled; }

 private:
  // kgoa-lint: allow(raw-graph-retention) query-scoped engine; caller's snapshot outlives it
  const IndexSet& indexes_;
  std::vector<TriplePattern> patterns_;
  std::vector<VarId> in_vars_;
  std::vector<FilterSet> filters_;
  std::vector<PatternAccess> accesses_;
  // Component of the triple carrying the *outgoing* join variable at each
  // step (-1 for the last step).
  std::vector<int> out_components_;
  // Suffix-count memos, one per chain position, keyed by the incoming
  // join value. kInvalidTerm is never a legal key: cacheable steps always
  // enter through a real binding (contracted in Count).
  std::vector<FlatTable<TermId, uint64_t>> caches_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  bool caching_enabled_ = true;
};

// Exact grouped evaluation of chain queries with CTJ-style caching.
class CtjEngine {
 public:
  explicit CtjEngine(const IndexSet& indexes) : indexes_(indexes) {}

  GroupedResult Evaluate(const ChainQuery& query) const;

 private:
  // kgoa-lint: allow(raw-graph-retention) query-scoped engine; caller's snapshot outlives it
  const IndexSet& indexes_;
};

}  // namespace kgoa

#endif  // KGOA_JOIN_CTJ_H_
