// LeapFrog Trie Join (LFTJ) — the worst-case optimal backtracking join of
// Veldhuizen (ICDT 2014), section IV-B of the paper.
//
// Given a conjunctive query of triple patterns, LFTJ fixes a global
// variable order and walks the per-pattern trie indexes in lockstep,
// intersecting the candidate values of one variable at a time with
// leapfrogging seeks. This implementation is generic (any number of
// patterns, constants at arbitrary positions); the only requirement is that
// for each pattern one of the four maintained index orders lists the
// pattern's variables consistently with the global variable order — which
// always holds for chain exploration queries evaluated in walk order.
#ifndef KGOA_JOIN_LEAPFROG_H_
#define KGOA_JOIN_LEAPFROG_H_

#include <array>
#include <functional>
#include <vector>

#include "src/index/index_set.h"
#include "src/index/trie_iterator.h"
#include "src/join/access.h"
#include "src/join/result.h"
#include "src/query/chain_query.h"
#include "src/query/pattern.h"

namespace kgoa {

class LeapfrogJoin {
 public:
  // Compiles a plan. If `var_order` is empty, a feasible order is chosen
  // greedily (patterns in the given order, new variables in index-level
  // order). Aborts if no feasible plan exists. `filters` is optional and
  // parallel to `patterns` (see src/join/filter.h).
  LeapfrogJoin(const IndexSet& indexes, std::vector<TriplePattern> patterns,
               std::vector<VarId> var_order = {},
               std::vector<std::vector<TypeFilter>> filters = {});

  const std::vector<VarId>& var_order() const { return var_order_; }

  // Enumerates every satisfying assignment. `callback` receives the values
  // of var_order()[0..m-1] (valid only during the call).
  void Enumerate(
      const std::function<void(const std::vector<TermId>&)>& callback) const;

  // Number of satisfying assignments (no grouping).
  uint64_t Count() const;

 private:
  struct LevelPlan {
    bool is_var = false;
    TermId const_value = kInvalidTerm;
    int var_pos = -1;  // position in var_order_
  };

  struct PatternPlan {
    IndexOrder order = IndexOrder::kSpo;
    std::array<LevelPlan, 3> levels;
    int last_var_level = -1;
  };

  struct Participant {
    int pattern = 0;
    int var_level = 0;  // level of the current search variable
  };

  // Returns true and fills `plan` if `order` lists the pattern's variables
  // consistently with var_order_ (appending unseen variables).
  bool TryPlanPattern(const TriplePattern& pattern, IndexOrder order,
                      PatternPlan* plan);

  // kgoa-lint: allow(raw-graph-retention) query-scoped engine; caller's snapshot outlives it
  const IndexSet& indexes_;
  std::vector<TriplePattern> patterns_;
  std::vector<VarId> var_order_;
  std::vector<PatternPlan> plans_;
  // participants_[d]: patterns whose trie exposes var_order_[d].
  std::vector<std::vector<Participant>> participants_;
  // Existence probes per search depth (filters bound to that variable) and
  // on constant components (checked once per enumeration).
  std::vector<std::vector<PatternAccess>> depth_filters_;
  std::vector<std::pair<PatternAccess, TermId>> const_filters_;
};

// Exact grouped evaluation of a chain query via LFTJ: enumerates all
// assignments and aggregates COUNT(beta) or COUNT(DISTINCT beta) per value
// of alpha. This is the uncached exact engine the paper compares CTJ
// against (Example IV.1).
GroupedResult EvaluateWithLftj(const IndexSet& indexes,
                               const ChainQuery& query);

}  // namespace kgoa

#endif  // KGOA_JOIN_LEAPFROG_H_
