#include "src/join/baseline.h"

#include <algorithm>
// The unordered-in-hot-path allows below are deliberate: this is the
// deliberately textbook hash-join baseline the paper compares against;
// swapping its containers would change what it measures.
#include <unordered_map>  // kgoa-lint: allow(unordered-in-hot-path)
#include <unordered_set>  // kgoa-lint: allow(unordered-in-hot-path)
#include <vector>

#include "src/join/access.h"
#include "src/join/filter.h"
#include "src/util/contract.h"

namespace kgoa {

namespace {

// A materialized relation: `width` columns (one per variable in `schema`),
// rows stored contiguously.
struct Table {
  std::vector<VarId> schema;
  std::vector<TermId> cells;

  std::size_t width() const { return schema.size(); }
  std::size_t rows() const {
    return schema.empty() ? 0 : cells.size() / schema.size();
  }
  int ColumnOf(VarId v) const {
    for (std::size_t i = 0; i < schema.size(); ++i) {
      if (schema[i] == v) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace

BaselineEngine::Outcome BaselineEngine::Evaluate(
    const ChainQuery& query) const {
  Outcome outcome;
  const auto& patterns = query.patterns();

  // Materialize the first pattern.
  Table table;
  {
    const TriplePattern& p0 = patterns[0];
    table.schema = p0.Vars();
    const PatternAccess access = PatternAccess::Compile(p0, kNoVar);
    const FilterSet filter(query.filters(0));
    const Range range = access.Resolve(indexes_, kInvalidTerm);
    const TrieIndex& index = indexes_.Index(access.order());
    table.cells.reserve(static_cast<std::size_t>(range.size()) *
                        table.width());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!filter.empty() && !filter.Pass(indexes_, t)) continue;
      for (VarId v : table.schema) table.cells.push_back(t[p0.ComponentOf(v)]);
    }
  }
  outcome.peak_rows = table.rows();

  // Join in the remaining patterns left to right, materializing each
  // intermediate result in full.
  for (int i = 1; i < query.NumPatterns(); ++i) {
    const TriplePattern& p = patterns[i];
    const VarId link = query.links()[i - 1];
    const int link_column = table.ColumnOf(link);
    KGOA_CHECK(link_column >= 0);
    const int link_component = p.ComponentOf(link);
    KGOA_CHECK(link_component >= 0);

    // Build a hash table over the new pattern keyed on the link value.
    const PatternAccess access = PatternAccess::Compile(p, kNoVar);
    const FilterSet filter(query.filters(i));
    const Range range = access.Resolve(indexes_, kInvalidTerm);
    const TrieIndex& index = indexes_.Index(access.order());
    std::unordered_map<TermId, std::vector<uint32_t>> build;  // kgoa-lint: allow(unordered-in-hot-path)
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!filter.empty() && !filter.Pass(indexes_, t)) continue;
      build[t[link_component]].push_back(pos);
    }

    // New columns contributed by this pattern.
    std::vector<VarId> new_vars;
    for (VarId v : p.Vars()) {
      if (v != link) new_vars.push_back(v);
    }

    Table next;
    next.schema = table.schema;
    next.schema.insert(next.schema.end(), new_vars.begin(), new_vars.end());

    const std::size_t old_width = table.width();
    for (std::size_t row = 0; row < table.rows(); ++row) {
      const TermId* cells = table.cells.data() + row * old_width;
      auto it = build.find(cells[link_column]);
      if (it == build.end()) continue;
      for (uint32_t pos : it->second) {
        const Triple& t = index.TripleAt(pos);
        next.cells.insert(next.cells.end(), cells, cells + old_width);
        for (VarId v : new_vars) next.cells.push_back(t[p.ComponentOf(v)]);
        if (next.rows() > options_.max_rows) {
          outcome.truncated = true;
          return outcome;
        }
      }
    }
    table = std::move(next);
    outcome.peak_rows = std::max<uint64_t>(outcome.peak_rows, table.rows());
  }

  // Group by alpha; count beta (with or without distinct).
  const int alpha_column = table.ColumnOf(query.alpha());
  const int beta_column = table.ColumnOf(query.beta());
  KGOA_CHECK(alpha_column >= 0 && beta_column >= 0);
  const std::size_t width = table.width();
  if (query.distinct()) {
    std::unordered_set<uint64_t> seen_pairs;  // kgoa-lint: allow(unordered-in-hot-path)
    for (std::size_t row = 0; row < table.rows(); ++row) {
      const TermId* cells = table.cells.data() + row * width;
      if (seen_pairs.insert(PackPair(cells[alpha_column], cells[beta_column]))
              .second) {
        ++outcome.result.counts[cells[alpha_column]];
      }
    }
  } else {
    for (std::size_t row = 0; row < table.rows(); ++row) {
      const TermId* cells = table.cells.data() + row * width;
      ++outcome.result.counts[cells[alpha_column]];
    }
  }
  return outcome;
}

}  // namespace kgoa
