#include "src/join/filter.h"

namespace kgoa {

namespace {

// Fresh variable id private to the probe pattern.
constexpr VarId kProbeVar = static_cast<VarId>(-2);

}  // namespace

FilterSet::FilterSet(const std::vector<TypeFilter>& filters) {
  for (const TypeFilter& filter : filters) {
    const TriplePattern probe = MakePattern(Slot::MakeVar(kProbeVar),
                                            Slot::MakeConst(filter.property),
                                            Slot::MakeConst(filter.value));
    checks_.push_back(
        Check{filter.component, PatternAccess::Compile(probe, kProbeVar)});
  }
}

bool FilterSet::Pass(const IndexSet& indexes, const Triple& t) const {
  for (const Check& check : checks_) {
    if (check.access.Resolve(indexes, t[check.component]).empty()) {
      return false;
    }
  }
  return true;
}

bool FilterSet::PassComponent(const IndexSet& indexes, int component,
                              TermId value) const {
  for (const Check& check : checks_) {
    if (check.component == component &&
        check.access.Resolve(indexes, value).empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace kgoa
