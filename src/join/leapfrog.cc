#include "src/join/leapfrog.h"

#include <algorithm>
#include <unordered_set>  // kgoa-lint: allow(unordered-in-hot-path) — result-side dedup below

#include "src/util/contract.h"

namespace kgoa {

bool LeapfrogJoin::TryPlanPattern(const TriplePattern& pattern,
                                  IndexOrder order, PatternPlan* plan) {
  PatternPlan candidate;
  candidate.order = order;
  std::vector<VarId> appended;
  int last_pos = -1;
  for (int level = 0; level < 3; ++level) {
    const int c = OrderComponent(order, level);
    LevelPlan& lp = candidate.levels[level];
    if (!pattern[c].is_var()) {
      lp.is_var = false;
      lp.const_value = pattern[c].term();
      continue;
    }
    lp.is_var = true;
    const VarId v = pattern[c].var();
    int pos = -1;
    for (std::size_t i = 0; i < var_order_.size(); ++i) {
      if (var_order_[i] == v) pos = static_cast<int>(i);
    }
    if (pos < 0) {
      // Tentatively appended; position after everything existing plus any
      // variables appended earlier in this pattern.
      pos = static_cast<int>(var_order_.size() + appended.size());
      appended.push_back(v);
    }
    if (pos <= last_pos) return false;  // violates the global order
    last_pos = pos;
    lp.var_pos = pos;
    candidate.last_var_level = level;
  }
  for (VarId v : appended) var_order_.push_back(v);
  *plan = candidate;
  return true;
}

LeapfrogJoin::LeapfrogJoin(const IndexSet& indexes,
                           std::vector<TriplePattern> patterns,
                           std::vector<VarId> var_order,
                           std::vector<std::vector<TypeFilter>> filters)
    : indexes_(indexes),
      patterns_(std::move(patterns)),
      var_order_(std::move(var_order)) {
  const bool fixed_order = !var_order_.empty();
  for (const TriplePattern& pattern : patterns_) {
    PatternPlan plan;
    bool planned = false;
    for (IndexOrder order : kAllIndexOrders) {
      if (TryPlanPattern(pattern, order, &plan)) {
        planned = true;
        break;
      }
    }
    KGOA_CHECK_MSG(planned, "no index order is consistent with the variable "
                            "order for some pattern");
    plans_.push_back(plan);
  }
  if (fixed_order) {
    // Every variable of the query must be covered by the caller's order.
    for (const TriplePattern& pattern : patterns_) {
      for (VarId v : pattern.Vars()) {
        KGOA_CHECK_MSG(
            std::count(var_order_.begin(), var_order_.end(), v) == 1,
            "caller-supplied var_order must contain each query variable "
            "exactly once");
      }
    }
  }
  participants_.resize(var_order_.size());
  for (std::size_t pi = 0; pi < plans_.size(); ++pi) {
    for (int level = 0; level < 3; ++level) {
      const LevelPlan& lp = plans_[pi].levels[level];
      if (lp.is_var) {
        participants_[lp.var_pos].push_back(
            Participant{static_cast<int>(pi), level});
      }
    }
  }

  // Compile existence filters: per search depth when attached to a
  // variable, as one-shot checks when attached to a constant.
  depth_filters_.resize(var_order_.size());
  constexpr VarId kProbeVar = static_cast<VarId>(-2);
  for (std::size_t pi = 0; pi < filters.size(); ++pi) {
    for (const TypeFilter& filter : filters[pi]) {
      const TriplePattern probe =
          MakePattern(Slot::MakeVar(kProbeVar), Slot::MakeConst(filter.property),
                      Slot::MakeConst(filter.value));
      const PatternAccess access = PatternAccess::Compile(probe, kProbeVar);
      const Slot& slot = patterns_[pi][filter.component];
      if (slot.is_var()) {
        int pos = -1;
        for (std::size_t i = 0; i < var_order_.size(); ++i) {
          if (var_order_[i] == slot.var()) pos = static_cast<int>(i);
        }
        KGOA_CHECK(pos >= 0);
        depth_filters_[pos].push_back(access);
      } else {
        const_filters_.emplace_back(access, slot.term());
      }
    }
  }
}

namespace {

// Runtime state for one pattern's iterator during enumeration.
struct IterState {
  explicit IterState(const TrieIndex* index) : iter(index) {}
  TrieIterator iter;
};

}  // namespace

void LeapfrogJoin::Enumerate(
    const std::function<void(const std::vector<TermId>&)>& callback) const {
  // Patterns with no variables are pure existence checks.
  for (std::size_t pi = 0; pi < patterns_.size(); ++pi) {
    if (plans_[pi].last_var_level < 0 &&
        indexes_.CountMatches(patterns_[pi]) == 0) {
      return;
    }
  }
  // Filters on constant components either always pass or empty the result.
  for (const auto& [access, value] : const_filters_) {
    if (access.Resolve(indexes_, value).empty()) return;
  }

  std::vector<IterState> states;
  states.reserve(plans_.size());
  for (const PatternPlan& plan : plans_) {
    states.emplace_back(&indexes_.Index(plan.order));
  }

  std::vector<TermId> binding(var_order_.size(), kInvalidTerm);

  // Opens iterator levels of `pat` up to and including `target_level`,
  // seeking through constant levels. Returns the number of levels opened;
  // -1 if a constant level has no match (after restoring the iterator).
  auto descend = [&](int pat, int target_level) -> int {
    TrieIterator& it = states[pat].iter;
    int opened = 0;
    while (it.level() < target_level) {
      it.Open();
      ++opened;
      const LevelPlan& lp = plans_[pat].levels[it.level()];
      if (!lp.is_var) {
        it.SeekGE(lp.const_value);
        if (it.AtEnd() || it.Key() != lp.const_value) {
          for (int k = 0; k < opened; ++k) it.Up();
          return -1;
        }
      }
    }
    return opened;
  };

  // Checks constant levels below the last variable level of `pat`.
  auto trailing_ok = [&](int pat) -> bool {
    const PatternPlan& plan = plans_[pat];
    TrieIterator& it = states[pat].iter;
    const int from = it.level();
    int opened = 0;
    bool ok = true;
    for (int level = from + 1; level < 3 && ok; ++level) {
      const LevelPlan& lp = plan.levels[level];
      if (lp.is_var) break;  // cannot happen below last_var_level
      it.Open();
      ++opened;
      it.SeekGE(lp.const_value);
      ok = !it.AtEnd() && it.Key() == lp.const_value;
    }
    for (int k = 0; k < opened; ++k) it.Up();
    return ok;
  };

  const int num_vars = static_cast<int>(var_order_.size());

  auto search = [&](auto&& self, int depth) -> void {
    if (depth == num_vars) {
      callback(binding);
      return;
    }
    const auto& parts = participants_[depth];
    KGOA_DCHECK(!parts.empty());

    // Descend every participant to this variable's level.
    std::vector<int> opened(parts.size(), 0);
    bool dead = false;
    for (std::size_t i = 0; i < parts.size() && !dead; ++i) {
      opened[i] = descend(parts[i].pattern, parts[i].var_level);
      if (opened[i] < 0) {
        // Roll back participants already descended.
        for (std::size_t j = 0; j < i; ++j) {
          TrieIterator& it = states[parts[j].pattern].iter;
          for (int k = 0; k < opened[j]; ++k) it.Up();
        }
        dead = true;
      }
    }
    if (dead) return;

    // Leapfrog intersection over the participants' current levels.
    TermId last_max_key = 0;
    while (true) {
      TermId max_key = 0;
      bool at_end = false;
      for (const Participant& part : parts) {
        TrieIterator& it = states[part.pattern].iter;
        if (it.AtEnd()) {
          at_end = true;
          break;
        }
        max_key = std::max(max_key, it.Key());
      }
      if (at_end) break;
      // Intersection frontier monotonicity: every cursor only seeks
      // forward, so the candidate key can never regress across rounds.
      KGOA_DCHECK_GE(max_key, last_max_key);
      last_max_key = max_key;

      bool agree = true;
      for (const Participant& part : parts) {
        TrieIterator& it = states[part.pattern].iter;
        if (it.Key() != max_key) {
          it.SeekGE(max_key);
          KGOA_DCHECK(it.AtEnd() || it.Key() >= max_key);
          agree = false;
        }
      }
      if (!agree) continue;

      // All participants sit on max_key: check this variable's existence
      // filters and the trailing constants of the patterns completing
      // here, then recurse.
      bool ok = true;
      for (const PatternAccess& probe : depth_filters_[depth]) {
        if (probe.Resolve(indexes_, max_key).empty()) {
          ok = false;
          break;
        }
      }
      for (const Participant& part : parts) {
        if (part.var_level == plans_[part.pattern].last_var_level &&
            part.var_level < 2 && ok) {
          ok = trailing_ok(part.pattern);
        }
      }
      if (ok) {
        binding[depth] = max_key;
        self(self, depth + 1);
      }
      states[parts[0].pattern].iter.Next();
    }

    for (std::size_t i = 0; i < parts.size(); ++i) {
      TrieIterator& it = states[parts[i].pattern].iter;
      for (int k = 0; k < opened[i]; ++k) it.Up();
    }
  };

  if (num_vars == 0) {
    callback(binding);  // all patterns constant and non-empty
    return;
  }
  search(search, 0);
}

uint64_t LeapfrogJoin::Count() const {
  uint64_t count = 0;
  Enumerate([&count](const std::vector<TermId>&) { ++count; });
  return count;
}

GroupedResult EvaluateWithLftj(const IndexSet& indexes,
                               const ChainQuery& query) {
  std::vector<std::vector<TypeFilter>> filters;
  for (int i = 0; i < query.NumPatterns(); ++i) {
    filters.push_back(query.filters(i));
  }
  LeapfrogJoin join(indexes, query.patterns(), {}, std::move(filters));
  int alpha_pos = -1;
  int beta_pos = -1;
  const auto& order = join.var_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == query.alpha()) alpha_pos = static_cast<int>(i);
    if (order[i] == query.beta()) beta_pos = static_cast<int>(i);
  }
  KGOA_CHECK(alpha_pos >= 0 && beta_pos >= 0);

  GroupedResult result;
  if (!query.distinct()) {
    join.Enumerate([&](const std::vector<TermId>& binding) {
      ++result.counts[binding[alpha_pos]];
    });
    return result;
  }
  // Distinct-pair dedup is result-side (one insert per output pair,
  // not per index probe). kgoa-lint: allow(unordered-in-hot-path)
  std::unordered_set<uint64_t> seen_pairs;
  join.Enumerate([&](const std::vector<TermId>& binding) {
    if (seen_pairs.insert(PackPair(binding[alpha_pos], binding[beta_pos]))
            .second) {
      ++result.counts[binding[alpha_pos]];
    }
  });
  return result;
}

}  // namespace kgoa
