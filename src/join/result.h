// Result type shared by the exact engines: exact grouped counts.
#ifndef KGOA_JOIN_RESULT_H_
#define KGOA_JOIN_RESULT_H_

#include <cstdint>
#include <unordered_map>  // kgoa-lint: allow(unordered-in-hot-path) — result container

#include "src/rdf/types.h"

namespace kgoa {

// Maps each group (value of the query's alpha variable) to its exact
// count — COUNT(beta) or COUNT(DISTINCT beta) per the query's flag.
struct GroupedResult {
  // Public result container, sized by output groups; callers iterate
  // it, engines fill it once. kgoa-lint: allow(unordered-in-hot-path)
  std::unordered_map<TermId, uint64_t> counts;

  uint64_t Total() const {
    uint64_t sum = 0;
    for (const auto& [group, count] : counts) sum += count;
    return sum;
  }

  uint64_t CountFor(TermId group) const {
    auto it = counts.find(group);
    return it == counts.end() ? 0 : it->second;
  }

  friend bool operator==(const GroupedResult&, const GroupedResult&) = default;
};

}  // namespace kgoa

#endif  // KGOA_JOIN_RESULT_H_
