#include "src/join/yannakakis.h"

// The unordered-in-hot-path allows below are deliberate: the
// Yannakakis evaluator is the exact reference engine the samplers are
// verified against; it runs once per differential check, never on the
// per-walk sampling hot path.
#include <unordered_map>  // kgoa-lint: allow(unordered-in-hot-path)
#include <unordered_set>  // kgoa-lint: allow(unordered-in-hot-path)

#include "src/join/access.h"
#include "src/join/filter.h"
#include "src/util/contract.h"

namespace kgoa {

namespace {

// Path counts of one arm, keyed by the join value facing the anchor.
// `sequence` lists pattern indices from the far end toward the anchor;
// `toward[i]` / `away[i]` are the join variables of sequence[i] facing the
// anchor and facing away (kNoVar at the far end).
// kgoa-lint: allow(unordered-in-hot-path) — reference-engine arm counts
std::unordered_map<TermId, uint64_t> ArmCounts(
    const IndexSet& indexes, const ChainQuery& query,
    const std::vector<int>& sequence, const std::vector<VarId>& toward,
    const std::vector<VarId>& away) {
  std::unordered_map<TermId, uint64_t> counts;  // kgoa-lint: allow(unordered-in-hot-path)
  bool first = true;
  for (std::size_t k = 0; k < sequence.size(); ++k) {
    const int i = sequence[k];
    const TriplePattern& pattern = query.patterns()[i];
    const FilterSet filter(query.filters(i));
    const PatternAccess access = PatternAccess::Compile(pattern, kNoVar);
    const Range range = access.Resolve(indexes, kInvalidTerm);
    const TrieIndex& index = indexes.Index(access.order());
    const int toward_component = pattern.ComponentOf(toward[k]);
    const int away_component =
        away[k] == kNoVar ? -1 : pattern.ComponentOf(away[k]);
    KGOA_CHECK(toward_component >= 0);

    std::unordered_map<TermId, uint64_t> next;  // kgoa-lint: allow(unordered-in-hot-path)
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!filter.empty() && !filter.Pass(indexes, t)) continue;
      uint64_t incoming = 1;
      if (!first) {
        auto it = counts.find(t[away_component]);
        if (it == counts.end()) continue;
        incoming = it->second;
      }
      next[t[toward_component]] += incoming;
    }
    counts = std::move(next);
    first = false;
  }
  return counts;
}

}  // namespace

GroupedResult EvaluateWithYannakakis(const IndexSet& indexes,
                                     const ChainQuery& query) {
  const int anchor = query.alpha_beta_pattern();
  const int n = query.NumPatterns();
  const TriplePattern& ap = query.patterns()[anchor];
  const int alpha_component = ap.ComponentOf(query.alpha());
  const int beta_component = ap.ComponentOf(query.beta());
  KGOA_CHECK(alpha_component >= 0 && beta_component >= 0);

  // Left arm: patterns 0..anchor-1 processed far-end first.
  std::unordered_map<TermId, uint64_t> left;  // kgoa-lint: allow(unordered-in-hot-path)
  int left_component = -1;
  if (anchor > 0) {
    std::vector<int> sequence;
    std::vector<VarId> toward, away;
    for (int i = 0; i < anchor; ++i) {
      sequence.push_back(i);
      toward.push_back(query.links()[i]);
      away.push_back(i > 0 ? query.links()[i - 1] : kNoVar);
    }
    left = ArmCounts(indexes, query, sequence, toward, away);
    left_component = ap.ComponentOf(query.links()[anchor - 1]);
  }

  // Right arm: patterns n-1..anchor+1.
  std::unordered_map<TermId, uint64_t> right;  // kgoa-lint: allow(unordered-in-hot-path)
  int right_component = -1;
  if (anchor + 1 < n) {
    std::vector<int> sequence;
    std::vector<VarId> toward, away;
    for (int i = n - 1; i > anchor; --i) {
      sequence.push_back(i);
      toward.push_back(query.links()[i - 1]);
      away.push_back(i + 1 < n ? query.links()[i] : kNoVar);
    }
    right = ArmCounts(indexes, query, sequence, toward, away);
    right_component = ap.ComponentOf(query.links()[anchor]);
  }

  const FilterSet anchor_filter(query.filters(anchor));
  const PatternAccess access = PatternAccess::Compile(ap, kNoVar);
  const Range range = access.Resolve(indexes, kInvalidTerm);
  const TrieIndex& index = indexes.Index(access.order());

  GroupedResult result;
  std::unordered_set<uint64_t> seen_pairs;  // kgoa-lint: allow(unordered-in-hot-path)
  for (uint32_t pos = range.begin; pos < range.end; ++pos) {
    const Triple& t = index.TripleAt(pos);
    if (!anchor_filter.empty() && !anchor_filter.Pass(indexes, t)) continue;
    uint64_t left_count = 1;
    if (left_component >= 0) {
      auto it = left.find(t[left_component]);
      if (it == left.end()) continue;
      left_count = it->second;
    }
    uint64_t right_count = 1;
    if (right_component >= 0) {
      auto it = right.find(t[right_component]);
      if (it == right.end()) continue;
      right_count = it->second;
    }
    const TermId a = t[alpha_component];
    if (query.distinct()) {
      if (seen_pairs.insert(PackPair(a, t[beta_component])).second) {
        ++result.counts[a];
      }
    } else {
      result.counts[a] += left_count * right_count;
    }
  }
  return result;
}

}  // namespace kgoa
