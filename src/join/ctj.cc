#include "src/join/ctj.h"

#include <unordered_set>  // kgoa-lint: allow(unordered-in-hot-path) — result-side dedup below

#include "src/util/contract.h"

namespace kgoa {

ChainSuffixCounter::ChainSuffixCounter(const IndexSet& indexes,
                                       std::vector<TriplePattern> patterns,
                                       std::vector<VarId> in_vars,
                                       std::vector<FilterSet> filters)
    : indexes_(indexes),
      patterns_(std::move(patterns)),
      in_vars_(std::move(in_vars)),
      filters_(std::move(filters)) {
  KGOA_CHECK_EQ(in_vars_.size(), patterns_.size());
  filters_.resize(patterns_.size());
  caches_.reserve(patterns_.size());
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    caches_.emplace_back(kInvalidTerm);
  }
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    accesses_.push_back(PatternAccess::Compile(patterns_[i], in_vars_[i]));
    int out_component = -1;
    if (i + 1 < patterns_.size()) {
      out_component = patterns_[i].ComponentOf(in_vars_[i + 1]);
      KGOA_CHECK_MSG(out_component >= 0,
                     "consecutive chain steps must share the in-variable");
    }
    out_components_.push_back(out_component);
  }
}

uint64_t ChainSuffixCounter::Count(int step, TermId value) {
  if (step == NumSteps()) return 1;
  KGOA_DCHECK(step >= 0 && step < NumSteps());

  const bool cacheable = caching_enabled_ && in_vars_[step] != kNoVar;
  if (cacheable) {
    // Cache key/level agreement: a memoized step is entered through its
    // in-variable, so the key must be a real binding for that level.
    KGOA_DCHECK_NE(value, kInvalidTerm);
    if (const uint64_t* hit = caches_[step].Find(value)) {
      ++hits_;
      return *hit;
    }
    ++misses_;
  }

  const Range range = accesses_[step].Resolve(indexes_, value);
  const TrieIndex& index = indexes_.Index(accesses_[step].order());
  const FilterSet& filter = filters_[step];
  uint64_t count = 0;
  if (out_components_[step] < 0 && filter.empty()) {
    // Last step: every matching triple is a completion.
    count = range.size();
  } else {
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      if (!filter.empty() && !filter.Pass(indexes_, t)) continue;
      count += out_components_[step] < 0
                   ? 1
                   : Count(step + 1, t[out_components_[step]]);
    }
  }

  if (cacheable) {
    // Compute-then-insert, and only ever into an absent slot: a finished
    // count is immutable, so the memo can never be poisoned by a partial
    // or repeated computation.
    bool inserted = false;
    caches_[step].FindOrInsert(value, &inserted) = count;
    KGOA_DCHECK_MSG(inserted, "suffix memo entry overwritten");
  }
  return count;
}

void ChainSuffixCounter::ClearCache() {
  for (auto& cache : caches_) cache.Clear();
  hits_ = 0;
  misses_ = 0;
}

namespace {

// Builds the two outward chains (left and right of the anchor pattern) of
// a query, as pattern/in-var sequences for ChainSuffixCounter.
struct AnchoredChains {
  std::vector<TriplePattern> left_patterns;   // anchor-1 .. 0
  std::vector<VarId> left_in_vars;
  std::vector<FilterSet> left_filters;
  std::vector<TriplePattern> right_patterns;  // anchor+1 .. n-1
  std::vector<VarId> right_in_vars;
  std::vector<FilterSet> right_filters;
  int left_component = -1;   // anchor triple component joining leftwards
  int right_component = -1;  // anchor triple component joining rightwards
};

AnchoredChains BuildAnchoredChains(const ChainQuery& query, int anchor) {
  AnchoredChains chains;
  const auto& patterns = query.patterns();
  const auto& links = query.links();
  if (anchor > 0) {
    chains.left_component = patterns[anchor].ComponentOf(links[anchor - 1]);
    for (int i = anchor - 1; i >= 0; --i) {
      chains.left_patterns.push_back(patterns[i]);
      chains.left_in_vars.push_back(links[i]);
      chains.left_filters.emplace_back(query.filters(i));
    }
  }
  if (anchor + 1 < query.NumPatterns()) {
    chains.right_component = patterns[anchor].ComponentOf(links[anchor]);
    for (int i = anchor + 1; i < query.NumPatterns(); ++i) {
      chains.right_patterns.push_back(patterns[i]);
      chains.right_in_vars.push_back(links[i - 1]);
      chains.right_filters.emplace_back(query.filters(i));
    }
  }
  return chains;
}

}  // namespace

GroupedResult CtjEngine::Evaluate(const ChainQuery& query) const {
  const int anchor = query.alpha_beta_pattern();
  KGOA_CHECK(anchor >= 0);
  const TriplePattern& ap = query.patterns()[anchor];
  const int alpha_component = ap.ComponentOf(query.alpha());
  const int beta_component = ap.ComponentOf(query.beta());
  KGOA_CHECK(alpha_component >= 0 && beta_component >= 0);

  AnchoredChains chains = BuildAnchoredChains(query, anchor);
  ChainSuffixCounter left(indexes_, chains.left_patterns,
                          chains.left_in_vars, chains.left_filters);
  ChainSuffixCounter right(indexes_, chains.right_patterns,
                           chains.right_in_vars, chains.right_filters);

  const PatternAccess anchor_access = PatternAccess::Compile(ap, kNoVar);
  const FilterSet anchor_filter(query.filters(anchor));
  const Range range = anchor_access.Resolve(indexes_, kInvalidTerm);
  const TrieIndex& index = indexes_.Index(anchor_access.order());

  GroupedResult result;
  // Distinct-pair dedup is result-side (one insert per output pair,
  // not per index probe). kgoa-lint: allow(unordered-in-hot-path)
  std::unordered_set<uint64_t> seen_pairs;
  for (uint32_t pos = range.begin; pos < range.end; ++pos) {
    const Triple& t = index.TripleAt(pos);
    if (!anchor_filter.empty() && !anchor_filter.Pass(indexes_, t)) continue;
    const uint64_t left_count =
        chains.left_component < 0
            ? 1
            : left.CountAll(t[chains.left_component]);
    if (left_count == 0) continue;
    const uint64_t right_count =
        chains.right_component < 0
            ? 1
            : right.CountAll(t[chains.right_component]);
    if (right_count == 0) continue;

    const TermId a = t[alpha_component];
    if (query.distinct()) {
      if (seen_pairs.insert(PackPair(a, t[beta_component])).second) {
        ++result.counts[a];
      }
    } else {
      result.counts[a] += left_count * right_count;
    }
  }
  return result;
}

}  // namespace kgoa
