// Exact grouped evaluation via Yannakakis-style bottom-up dynamic
// programming over the chain.
//
// Exploration queries are acyclic, so a full-reducer pass suffices for the
// DISTINCT case: a tuple of the anchor pattern (the one containing alpha
// and beta) contributes the pair (alpha, beta) iff its left join value has
// a completion among patterns to the left and its right value among
// patterns to the right — both computable with one linear sweep per arm
// using hash maps. For the non-distinct case the same sweeps carry counts
// instead of existence bits.
//
// This engine runs in O(|input| + |output|) time and serves as an
// independent implementation strategy (bottom-up, materialized value maps)
// against the memoized top-down CtjEngine; the test suite cross-checks all
// exact engines against each other.
#ifndef KGOA_JOIN_YANNAKAKIS_H_
#define KGOA_JOIN_YANNAKAKIS_H_

#include "src/index/index_set.h"
#include "src/join/result.h"
#include "src/query/chain_query.h"

namespace kgoa {

GroupedResult EvaluateWithYannakakis(const IndexSet& indexes,
                                     const ChainQuery& query);

}  // namespace kgoa

#endif  // KGOA_JOIN_YANNAKAKIS_H_
