// Access-path compilation for a triple pattern with at most one bound
// (runtime-supplied) variable.
//
// Every engine in this library — CTJ's cached backtracking, Wander Join's
// random walks, Audit Join's hybrid — repeats one primitive: "given the
// value of the variable shared with the previous pattern, give me the range
// of matching triples". PatternAccess picks the index order whose prefix
// covers the pattern's constants plus the bound variable and resolves that
// range in O(1) via the hash range indexes.
#ifndef KGOA_JOIN_ACCESS_H_
#define KGOA_JOIN_ACCESS_H_

#include <array>

#include "src/index/index_set.h"
#include "src/query/pattern.h"

namespace kgoa {

class PatternAccess {
 public:
  // Compiles the access path. `bound_var` is the variable whose value is
  // supplied at Resolve time (kNoVar if none); it must occur in `pattern`.
  // Aborts if no maintained index order covers the required prefix (cannot
  // happen for chain exploration queries; see src/index/order.h).
  static PatternAccess Compile(const TriplePattern& pattern, VarId bound_var);

  // Like Compile but returns false instead of aborting when no maintained
  // order covers the prefix (the {subject, object} fixed set).
  static bool TryCompile(const TriplePattern& pattern, VarId bound_var,
                         PatternAccess* access);

  // Range of triples matching the constants and bound_var = bound_value.
  // `bound_value` is ignored when the access has no bound variable.
  Range Resolve(const IndexSet& indexes, TermId bound_value) const;

  // Hints the hash-table cache line a Resolve with the same bound value
  // will probe. Issued by the batched walk loop a prefetch-window of walks
  // ahead of the corresponding Resolve; a no-op for depth-0 accesses.
  void Prefetch(const IndexSet& indexes, TermId bound_value) const;

  // True if any triple matches; for depth-3 accesses this is the
  // existence-check form.
  bool Exists(const IndexSet& indexes, TermId bound_value) const {
    return !Resolve(indexes, bound_value).empty();
  }

  IndexOrder order() const { return order_; }
  int depth() const { return depth_; }
  bool has_bound() const { return bound_level_ >= 0; }

 private:
  IndexOrder order_ = IndexOrder::kSpo;
  int depth_ = 0;                       // fixed prefix length (0..3)
  int bound_level_ = -1;                // level of the bound variable
  std::array<TermId, 3> key_{};         // constant values per level (< depth)
};

}  // namespace kgoa

#endif  // KGOA_JOIN_ACCESS_H_
