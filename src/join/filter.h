// Existence filters on pattern extents.
//
// Exploration steps sometimes restrict a variable that already appears in
// two triple patterns (e.g. Example III.1: out-properties of *Persons* who
// influenced philosophers — the Person restriction lands on a variable the
// chain already uses twice). Adding another pattern would break the Fig. 4
// contract (each variable in at most two patterns), so such restrictions
// are fused into the adjacent pattern's extent as filters, consistent with
// the paper's selectivity definition ("each filter sets a variable in a
// query to a constant").
//
// A filter (component, property, value) keeps a triple t iff the graph
// contains (t[component], property, value). Engines treat filtered-out
// tuples as absent; random-walk engines keep sampling from the unfiltered
// range (d_i unchanged) and reject walks that draw a filtered-out tuple,
// which preserves unbiasedness — filtered-out completions simply carry
// estimate zero.
#ifndef KGOA_JOIN_FILTER_H_
#define KGOA_JOIN_FILTER_H_

#include <vector>

#include "src/index/index_set.h"
#include "src/join/access.h"
#include "src/query/pattern.h"

namespace kgoa {

// Compiled filters of a single pattern. Empty sets pass everything.
class FilterSet {
 public:
  FilterSet() = default;

  // Compiles `filters` (see TypeFilter in pattern.h) for one pattern.
  explicit FilterSet(const std::vector<TypeFilter>& filters);

  bool empty() const { return checks_.empty(); }

  // True iff `t` passes every filter. O(log n) per filter.
  bool Pass(const IndexSet& indexes, const Triple& t) const;

  // True iff `value` (for the slot `component`) passes the filters bound to
  // that component; other components' filters are ignored.
  bool PassComponent(const IndexSet& indexes, int component,
                     TermId value) const;

 private:
  struct Check {
    int component;
    PatternAccess access;  // existence probe bound on the filtered value
  };
  std::vector<Check> checks_;
};

}  // namespace kgoa

#endif  // KGOA_JOIN_FILTER_H_
