// Baseline exact engine: left-deep materializing hash joins.
//
// This is the reproduction's stand-in for the off-the-shelf SPARQL engine
// (Virtuoso) in the paper's evaluation. Like a traditional engine it fully
// materializes every intermediate join result before grouping, so its
// runtime explodes on the low-selectivity exploration queries — the
// behaviour the paper reports (minutes to hours on root expansions) and
// the motivation for WCOJ and online aggregation. See DESIGN.md section 4.
#ifndef KGOA_JOIN_BASELINE_H_
#define KGOA_JOIN_BASELINE_H_

#include <cstdint>

#include "src/index/index_set.h"
#include "src/join/result.h"
#include "src/query/chain_query.h"

namespace kgoa {

class BaselineEngine {
 public:
  struct Options {
    // Safety valve: abort (truncated=true) when an intermediate relation
    // exceeds this many rows, so benchmark sweeps terminate.
    uint64_t max_rows = 100'000'000;
  };

  struct Outcome {
    GroupedResult result;
    bool truncated = false;     // hit max_rows; result is invalid
    uint64_t peak_rows = 0;     // largest materialized intermediate
  };

  explicit BaselineEngine(const IndexSet& indexes)
      : indexes_(indexes), options_() {}
  BaselineEngine(const IndexSet& indexes, Options options)
      : indexes_(indexes), options_(options) {}

  Outcome Evaluate(const ChainQuery& query) const;

 private:
  // kgoa-lint: allow(raw-graph-retention) query-scoped reference baseline; caller pins
  const IndexSet& indexes_;
  Options options_;
};

}  // namespace kgoa

#endif  // KGOA_JOIN_BASELINE_H_
