#include "src/join/access.h"

#include "src/util/contract.h"

namespace kgoa {

bool PatternAccess::TryCompile(const TriplePattern& pattern, VarId bound_var,
                               PatternAccess* access) {
  uint32_t mask = 0;
  for (int c = 0; c < 3; ++c) {
    if (!pattern[c].is_var()) mask |= 1u << c;
  }
  int bound_component = -1;
  if (bound_var != kNoVar) {
    bound_component = pattern.ComponentOf(bound_var);
    KGOA_CHECK_MSG(bound_component >= 0, "bound variable not in pattern");
    mask |= 1u << bound_component;
  }

  if (!IndexSet::ChooseOrder(mask, &access->order_, &access->depth_)) {
    return false;
  }
  access->bound_level_ = -1;
  for (int level = 0; level < access->depth_; ++level) {
    const int c = OrderComponent(access->order_, level);
    if (c == bound_component) {
      access->bound_level_ = level;
    } else {
      access->key_[level] = pattern[c].term();
    }
  }
  return true;
}

PatternAccess PatternAccess::Compile(const TriplePattern& pattern,
                                     VarId bound_var) {
  PatternAccess access;
  KGOA_CHECK_MSG(TryCompile(pattern, bound_var, &access),
                 "no index order covers this access path");
  return access;
}

Range PatternAccess::Resolve(const IndexSet& indexes,
                             TermId bound_value) const {
  std::array<TermId, 3> key = key_;
  if (bound_level_ >= 0) key[bound_level_] = bound_value;

  const TrieIndex& index = indexes.Index(order_);
  switch (depth_) {
    case 0:
      return index.Root();
    case 1:
      return indexes.Depth1(order_, key[0]);
    case 2:
      return indexes.Depth2(order_, key[0], key[1]);
    default:
      return index.Narrow(indexes.Depth2(order_, key[0], key[1]), 2,
                          key[2]);
  }
}

void PatternAccess::Prefetch(const IndexSet& indexes,
                             TermId bound_value) const {
  std::array<TermId, 3> key = key_;
  if (bound_level_ >= 0) key[bound_level_] = bound_value;

  switch (depth_) {
    case 0:
      return;
    case 1:
      indexes.PrefetchDepth1(order_, key[0]);
      return;
    default:
      // Depth 3 narrows within the depth-2 range, so its first (and
      // dominant) memory access is the same depth-2 probe.
      indexes.PrefetchDepth2(order_, key[0], key[1]);
      return;
  }
}

}  // namespace kgoa
