// Workload serialization: saves a generated exploration workload as a
// plain-text file of SPARQL queries (one Figure-4 query per block) and
// loads it back through the SPARQL parser, so experiments can be re-run
// or shared without regenerating. Ground truth is not stored; reload
// re-evaluates it with CTJ.
#ifndef KGOA_GEN_WORKLOAD_IO_H_
#define KGOA_GEN_WORKLOAD_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/gen/workload.h"
#include "src/index/index_set.h"
#include "src/rdf/graph.h"

namespace kgoa {

// Writes the workload with constants spelled via `graph`'s dictionary.
// Each query block carries its step and description as comments and is
// terminated by a blank line.
void WriteWorkload(const std::vector<ExplorationQuery>& workload,
                   const Graph& graph, std::ostream& out);

// Parses a workload file against `graph`'s dictionary, recomputing exact
// results over `indexes`. On a malformed block, fills *error and returns
// an empty vector.
std::vector<ExplorationQuery> ReadWorkload(std::istream& in,
                                           const Graph& graph,
                                           const IndexSet& indexes,
                                           std::string* error = nullptr);

}  // namespace kgoa

#endif  // KGOA_GEN_WORKLOAD_IO_H_
