#include "src/gen/workload_io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "src/join/ctj.h"
#include "src/query/sparql.h"

namespace kgoa {

void WriteWorkload(const std::vector<ExplorationQuery>& workload,
                   const Graph& graph, std::ostream& out) {
  out << "# kgoa workload v1\n";
  for (const ExplorationQuery& eq : workload) {
    out << "# step: " << eq.step << '\n';
    out << "# trail: " << eq.description << '\n';
    out << eq.query.ToSparql(&graph.dict()) << "\n\n";
  }
}

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::vector<ExplorationQuery> ReadWorkload(std::istream& in,
                                           const Graph& graph,
                                           const IndexSet& indexes,
                                           std::string* error) {
  std::vector<ExplorationQuery> out;
  CtjEngine engine(indexes);

  std::string line;
  int step = 1;
  std::string trail;
  std::string block;
  auto flush_block = [&]() -> bool {
    if (block.find_first_not_of(" \t\r\n") == std::string::npos) {
      block.clear();
      return true;
    }
    const SparqlParseResult parsed =
        ParseSparqlCount(block, graph.dict());
    if (!parsed.ok()) {
      SetError(error, "query block ending before line ?: " + parsed.error);
      return false;
    }
    ExplorationQuery eq{*parsed.query, step, trail,
                        engine.Evaluate(*parsed.query)};
    out.push_back(std::move(eq));
    block.clear();
    return true;
  };

  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.rfind("# step:", 0) == 0) {
      step = std::atoi(line.c_str() + 7);
      continue;
    }
    if (line.rfind("# trail:", 0) == 0) {
      trail = line.substr(9);
      continue;
    }
    if (!line.empty() && line[0] == '#') continue;
    if (line.empty()) {
      if (!flush_block()) return {};
      continue;
    }
    block += line;
    block += '\n';
  }
  if (!flush_block()) return {};
  return out;
}

}  // namespace kgoa
