// Random exploration workload, imitating the paper's query generator
// (section V-B): start at the root class, repeatedly pick an expansion
// uniformly at random, evaluate the chart, sample a bar weighted by its
// size (focusing on large groups like the paper), and continue for up to
// four steps or until a chart comes back empty. Every non-empty chart query
// along the way is collected, with its exact result as ground truth.
#ifndef KGOA_GEN_WORKLOAD_H_
#define KGOA_GEN_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/index/index_set.h"
#include "src/join/result.h"
#include "src/query/chain_query.h"
#include "src/rdf/graph.h"

namespace kgoa {

struct WorkloadOptions {
  uint64_t seed = 7;
  int num_paths = 25;  // paper: 25 exploration paths per graph
  int max_steps = 4;   // paper: up to 4 steps per path
};

struct ExplorationQuery {
  ChainQuery query;          // DISTINCT form (the system's native queries)
  int step = 1;              // 1-based exploration depth of this query
  std::string description;   // human-readable expansion trail
  GroupedResult exact;       // exact distinct counts (ground truth)
};

std::vector<ExplorationQuery> GenerateWorkload(const Graph& graph,
                                               const IndexSet& indexes,
                                               const WorkloadOptions& options);

}  // namespace kgoa

#endif  // KGOA_GEN_WORKLOAD_H_
