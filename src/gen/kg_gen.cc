#include "src/gen/kg_gen.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "src/rdf/vocab.h"
#include "src/util/contract.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace kgoa {

KgSpec DbpediaLikeSpec(double scale) {
  KgSpec spec;
  spec.name = "dbpedia-like";
  spec.seed = 20220501;
  spec.num_classes = 1200;
  spec.taxonomy_skew = 0.55;
  spec.num_properties = 400;
  spec.num_entities = static_cast<uint64_t>(140'000 * scale);
  spec.num_property_triples = static_cast<uint64_t>(900'000 * scale);
  spec.num_literals = static_cast<uint64_t>(40'000 * scale);
  spec.class_zipf = 1.05;
  spec.property_zipf = 1.02;
  spec.entity_zipf = 0.65;
  spec.literal_fraction = 0.35;
  spec.affinity = 0.7;
  return spec;
}

KgSpec LgdLikeSpec(double scale) {
  KgSpec spec;
  spec.name = "lgd-like";
  spec.seed = 20151101;
  spec.num_classes = 280;        // LGD has far fewer classes than DBpedia
  spec.taxonomy_skew = 0.9;      // shallow, broad taxonomy
  spec.num_properties = 150;
  spec.num_entities = static_cast<uint64_t>(420'000 * scale);
  spec.num_property_triples = static_cast<uint64_t>(2'700'000 * scale);
  spec.num_literals = static_cast<uint64_t>(120'000 * scale);
  spec.class_zipf = 0.95;
  spec.property_zipf = 1.0;
  spec.entity_zipf = 0.55;
  spec.literal_fraction = 0.45;  // spatial data is literal-heavy
  spec.affinity = 0.8;
  return spec;
}

Graph GenerateKg(const KgSpec& spec) {
  KGOA_CHECK(spec.num_classes >= 1);
  Rng rng(spec.seed);
  GraphBuilder builder;

  const TermId type_id = builder.Intern(vocab::kRdfType);
  const TermId subclass_id = builder.Intern(vocab::kRdfsSubClassOf);
  const TermId thing_id = builder.Intern(vocab::kOwlThing);

  // --- Class taxonomy rooted at owl:Thing -------------------------------
  std::vector<TermId> classes;
  classes.reserve(spec.num_classes);
  classes.push_back(thing_id);
  std::vector<uint32_t> parent_of(spec.num_classes, 0);
  for (uint32_t i = 1; i < spec.num_classes; ++i) {
    classes.push_back(
        builder.Intern(spec.name + "/class/C" + std::to_string(i)));
    // Zipf over earlier classes: low-index (shallow) classes attract more
    // children, giving a broad top and progressively thinner branches.
    ZipfSampler parents(i, spec.taxonomy_skew);
    parent_of[i] = static_cast<uint32_t>(parents.Sample(rng));
    builder.Add(classes[i], subclass_id, classes[parent_of[i]]);
  }

  // Ancestor chains (for materializing the closure on instance typing).
  std::vector<std::vector<uint32_t>> ancestors(spec.num_classes);
  for (uint32_t i = 1; i < spec.num_classes; ++i) {
    uint32_t cur = i;
    while (cur != 0) {
      cur = parent_of[cur];
      ancestors[i].push_back(cur);
    }
  }

  // --- Entities with Zipf-assigned primary classes ----------------------
  std::vector<TermId> entities;
  entities.reserve(spec.num_entities);
  std::vector<uint32_t> primary_class(spec.num_entities);
  // Instances concentrate in a subset of classes; skip the root so that
  // "instances of Thing" is exactly the closure of all typed entities.
  ZipfSampler class_sampler(spec.num_classes - 1, spec.class_zipf);
  std::vector<std::vector<uint32_t>> instances_of(spec.num_classes);
  for (uint64_t e = 0; e < spec.num_entities; ++e) {
    entities.push_back(
        builder.Intern(spec.name + "/entity/E" + std::to_string(e)));
    const auto cls = static_cast<uint32_t>(class_sampler.Sample(rng)) + 1;
    primary_class[e] = cls;
    instances_of[cls].push_back(static_cast<uint32_t>(e));
    builder.Add(entities[e], type_id, classes[cls]);
    for (uint32_t super : ancestors[cls]) {
      builder.Add(entities[e], type_id, classes[super]);
    }
  }

  // --- Literals ----------------------------------------------------------
  std::vector<TermId> literals;
  literals.reserve(spec.num_literals);
  for (uint64_t l = 0; l < spec.num_literals; ++l) {
    literals.push_back(builder.Intern("\"lit" + std::to_string(l) + "\""));
  }

  // --- Properties with class affinity ------------------------------------
  std::vector<TermId> properties;
  properties.reserve(spec.num_properties);
  std::vector<uint32_t> domain_of(spec.num_properties);
  std::vector<uint32_t> range_of(spec.num_properties);
  std::vector<bool> literal_valued(spec.num_properties);
  for (uint32_t p = 0; p < spec.num_properties; ++p) {
    properties.push_back(
        builder.Intern(spec.name + "/prop/P" + std::to_string(p)));
    domain_of[p] = static_cast<uint32_t>(class_sampler.Sample(rng)) + 1;
    range_of[p] = static_cast<uint32_t>(class_sampler.Sample(rng)) + 1;
    literal_valued[p] = rng.NextDouble() < spec.literal_fraction;
  }

  // --- Property triples ---------------------------------------------------
  ZipfSampler property_sampler(spec.num_properties, spec.property_zipf);
  ZipfSampler entity_sampler(spec.num_entities, spec.entity_zipf);
  ZipfSampler literal_sampler(spec.num_literals == 0 ? 1 : spec.num_literals,
                              1.0);

  auto pick_affine = [&](uint32_t cls) -> uint32_t {
    const auto& pool = instances_of[cls];
    if (pool.empty()) {
      return static_cast<uint32_t>(entity_sampler.Sample(rng));
    }
    return pool[rng.Below(pool.size())];
  };

  for (uint64_t i = 0; i < spec.num_property_triples; ++i) {
    const auto p = static_cast<uint32_t>(property_sampler.Sample(rng));
    const uint32_t subject =
        rng.NextDouble() < spec.affinity
            ? pick_affine(domain_of[p])
            : static_cast<uint32_t>(entity_sampler.Sample(rng));
    TermId object;
    if (literal_valued[p] && spec.num_literals > 0) {
      object = literals[literal_sampler.Sample(rng)];
    } else if (rng.NextDouble() < spec.affinity) {
      object = entities[pick_affine(range_of[p])];
    } else {
      object = entities[entity_sampler.Sample(rng)];
    }
    builder.Add(entities[subject], properties[p], object);
  }

  return std::move(builder).Build();
}

}  // namespace kgoa
