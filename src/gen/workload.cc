#include "src/gen/workload.h"

#include <unordered_set>

#include "src/explore/session.h"
#include "src/join/ctj.h"
#include "src/util/rng.h"

namespace kgoa {

std::vector<ExplorationQuery> GenerateWorkload(
    const Graph& graph, const IndexSet& indexes,
    const WorkloadOptions& options) {
  Rng rng(options.seed);
  CtjEngine engine(indexes);
  std::vector<ExplorationQuery> out;
  std::unordered_set<std::string> seen;  // dedup by rendered form

  for (int path = 0; path < options.num_paths; ++path) {
    ExplorationSession session(graph);
    std::string trail = "root";
    for (int step = 1; step <= options.max_steps; ++step) {
      const auto legal = session.LegalExpansions();
      const ExpansionKind expansion = legal[rng.Below(legal.size())];
      ChainQuery query = session.BuildQuery(expansion);
      GroupedResult exact = engine.Evaluate(query);
      if (exact.counts.empty()) break;  // empty chart ends the path

      trail += std::string(" -> ") + ExpansionName(expansion);
      const std::string key = query.ToSparql();
      if (seen.insert(key).second) {
        out.push_back(ExplorationQuery{query, step, trail, exact});
      }

      // Weighted bar selection: probability proportional to group size
      // (the paper's focus-on-large-groups sampling).
      uint64_t total = exact.Total();
      uint64_t pick = rng.Below(total) + 1;
      TermId category = kInvalidTerm;
      for (const auto& [group, count] : exact.counts) {
        category = group;
        if (pick <= count) break;
        pick -= count;
      }
      session.ExpandAndSelect(expansion, category);
      trail += std::string("(") +
               std::string(graph.dict().Spell(category)) + ")";
    }
  }
  return out;
}

}  // namespace kgoa
