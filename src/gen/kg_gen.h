// Synthetic knowledge-graph generation.
//
// The paper evaluates on DBpedia v3.6 (432M triples, 370k classes, 62k
// properties) and LinkedGeoData 2015-11 (1,217M triples, 1,147 classes, 33k
// properties). Those dumps are not available in this environment and would
// not fit the session budget, so the reproduction generates graphs with the
// same *distributional shape* at a reduced scale (see DESIGN.md section 4):
// a multi-level class taxonomy rooted at owl:Thing, Zipf-distributed class
// sizes, property usage and node degrees, property-class affinity (classes
// have characteristic properties), and a mix of entity and literal objects.
// The subclass closure over instance typing is materialized at generation
// time, matching the offline materialization the paper uses for CTJ /
// Wander Join / Audit Join.
#ifndef KGOA_GEN_KG_GEN_H_
#define KGOA_GEN_KG_GEN_H_

#include <cstdint>
#include <string>

#include "src/rdf/graph.h"

namespace kgoa {

struct KgSpec {
  std::string name = "synthetic";
  uint64_t seed = 42;

  uint32_t num_classes = 200;
  // Parent selection bias: parents are drawn Zipf(taxonomy_skew) over
  // earlier classes, producing broad upper levels and thin deep branches.
  double taxonomy_skew = 0.6;

  uint32_t num_properties = 60;
  uint64_t num_entities = 20'000;
  uint64_t num_property_triples = 120'000;
  uint64_t num_literals = 5'000;

  double class_zipf = 1.05;     // entity class assignment skew
  double property_zipf = 1.02;  // property usage skew
  double entity_zipf = 0.6;     // degree skew for subjects/objects
  double literal_fraction = 0.3;

  // Probability that a property triple's subject is drawn from the
  // property's affine class instead of the global entity distribution.
  double affinity = 0.7;
};

// DBpedia-flavoured preset: many classes, deeper taxonomy, more properties.
// `scale` multiplies entity/triple counts (1.0 ~ 1.3M triples total).
KgSpec DbpediaLikeSpec(double scale = 1.0);

// LinkedGeoData-flavoured preset: few classes, shallow taxonomy, ~3x the
// triples of the DBpedia preset (the paper's size ratio).
KgSpec LgdLikeSpec(double scale = 1.0);

// Generates the graph (types materialized through the subclass closure).
Graph GenerateKg(const KgSpec& spec);

}  // namespace kgoa

#endif  // KGOA_GEN_KG_GEN_H_
