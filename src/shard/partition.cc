#include "src/shard/partition.h"

#include <algorithm>

#include "src/util/contract.h"
#include "src/util/rng.h"

namespace kgoa {

ShardPartition::ShardPartition(int num_shards) : num_shards_(num_shards) {
  KGOA_CHECK_MSG(num_shards >= 1, "a partition needs at least one shard");
}

uint64_t ShardPartition::Mix(uint64_t id) {
  // One splitmix64 step (full avalanche), so dense dictionary ids spread
  // uniformly across shards.
  uint64_t state = id;
  return SplitMix64(state);
}

ShardPartitionStats SummarizePartition(const Graph& graph,
                                       const ShardPartition& partition) {
  ShardPartitionStats stats;
  const int shards = partition.num_shards();
  stats.triples.assign(static_cast<std::size_t>(shards), 0);
  stats.subjects.assign(static_cast<std::size_t>(shards), 0);

  // Triples are (s, p, o)-sorted, so each subject's run is contiguous:
  // count distinct subjects by watching for run boundaries.
  TermId prev_subject = kInvalidTerm;
  for (const Triple& t : graph.triples()) {
    const int shard = partition.ShardOf(t.s);
    ++stats.triples[static_cast<std::size_t>(shard)];
    if (t.s != prev_subject) {
      ++stats.subjects[static_cast<std::size_t>(shard)];
      prev_subject = t.s;
    }
  }

  stats.total_triples = graph.NumTriples();
  stats.min_triples =
      *std::min_element(stats.triples.begin(), stats.triples.end());
  stats.max_triples =
      *std::max_element(stats.triples.begin(), stats.triples.end());
  if (stats.total_triples > 0) {
    const double mean = static_cast<double>(stats.total_triples) /
                        static_cast<double>(shards);
    stats.balance = static_cast<double>(stats.max_triples) / mean;
  }
  return stats;
}

}  // namespace kgoa
