// Shard partitioning of the triple store (ROADMAP item 1, first step).
//
// The partition key is the dictionary-dense SUBJECT id: every triple lives
// on the shard of its subject, so all out-edges of an entity are co-located
// (the locality a future per-shard walk engine needs for subject-anchored
// steps). Ids are hashed through a fixed 64-bit mixer before the modulo so
// the dictionary's first-seen-order density does not bias consecutive
// entities onto the same shard.
//
// The mapping is a pure function of (id, num_shards): two processes that
// agree on the dictionary agree on the placement — the property the
// multi-process boundary will rely on.
#ifndef KGOA_SHARD_PARTITION_H_
#define KGOA_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/rdf/graph.h"
#include "src/rdf/types.h"

namespace kgoa {

class ShardPartition {
 public:
  explicit ShardPartition(int num_shards);

  int num_shards() const { return num_shards_; }

  // Shard owning all triples whose subject is `subject`, in
  // [0, num_shards).
  int ShardOf(TermId subject) const {
    return static_cast<int>(Mix(subject) %
                            static_cast<uint64_t>(num_shards_));
  }

  // The fixed 64-bit finalizer (splitmix64) applied to ids before the
  // modulo. Exposed for tests pinning placement stability.
  static uint64_t Mix(uint64_t id);

 private:
  int num_shards_;
};

// Placement statistics of a graph under a partition, for balance
// accounting and the shard.* metrics export.
struct ShardPartitionStats {
  std::vector<uint64_t> triples;   // per shard
  std::vector<uint64_t> subjects;  // distinct subjects per shard
  uint64_t total_triples = 0;
  uint64_t min_triples = 0;
  uint64_t max_triples = 0;
  // max_triples over the perfectly balanced per-shard mean (1.0 = exactly
  // balanced); 0 for an empty graph.
  double balance = 0;
};

ShardPartitionStats SummarizePartition(const Graph& graph,
                                       const ShardPartition& partition);

}  // namespace kgoa

#endif  // KGOA_SHARD_PARTITION_H_
