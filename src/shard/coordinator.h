// Scatter-gather chart serving over an in-process sharded deployment.
//
// The paper's system serves one knowledge graph from one specialized
// engine; scaling past a single pool means partitioning the graph and
// fanning each chart query out to per-shard serving cores. This layer
// builds that deployment in-process: a ShardPartition assigns every triple
// to a shard by subject, each shard gets its own ServingCore (and
// optionally a physical Graph slice + IndexSet), and a ShardCoordinator
// scatters a chart query as one ChartJob per shard, gathering the per-shard
// partials into one combined estimate behind a single ShardChartHandle.
//
// Determinism contract (the reason the scatter looks the way it does):
// a budget-mode sharded run must be BIT-IDENTICAL to an unsharded run with
// the same (query, seed, total budget, total workers). The serving core
// already guarantees a budget job's estimate is a pure function of
// (query, seed, budget, workers) via its logical-slot split — slot w runs
// share(w) = B/G + (w < B mod G) walks with seed seed + w, merged in slot
// order. The coordinator extends that by giving shard k the CONTIGUOUS
// slot block [k*W, (k+1)*W) of the same global slot space:
//
//   * shard k's budget is the sum of the global shares over its block,
//     which the job's internal front-loaded re-split reproduces exactly;
//   * shard k's job seed is seed + k*W, so its slots run with the global
//     slots' seeds;
//   * the gather folds the per-SLOT final partials (ChartHandle::
//     SlotPartials) across shards in global slot order — folding
//     pre-merged per-shard results would re-associate the floating-point
//     summation and silently break bit-identity;
//   * shards whose block's total share is zero (budget < total slots) are
//     never submitted — zero-share blocks form a suffix under the
//     front-loaded split.
//
// To honor that contract, every shard core serves against the GLOBAL
// IndexSet (in-process replication): a walk engine confined to a slice
// would sample a different distribution and no merge could reproduce the
// unsharded estimate. The per-shard Graph slices + IndexSets exist for
// partition and memory accounting and as the data plane a future
// multi-process (RPC) deployment would ship to each shard server; the
// coordinator is the process-local stand-in for that server's scatter
// path.
//
// Distinct-mode audits share ONE coordinator-level reach cache across all
// shards of a job (value-pure memos — src/core/reach.h — keep this inside
// the determinism contract), so a pair audited by shard 0 is never
// re-audited by shard 3.
//
// Submit() and stats() are thread-safe: the scatter itself only calls
// thread-safe layers (ReachCacheRegistry::Acquire, ServingCore::Submit)
// and the coordinator's own scatter counters are guarded by a leaf mutex
// (see mutex_ below — the annotation era surfaced that these counters
// were previously read by stats() racing a Submit). Returned handles are
// usable from any thread.
//
// Lock ordering (DESIGN.md §11): the coordinator's mutex and the reach
// registry's mutex are LEAVES — each is acquired and released around pure
// bookkeeping, never held across a call into a ServingCore (whose
// scheduler mutex in turn is never held across user code). No two of
// these mutexes are ever nested, so no ordering cycle can form.
#ifndef KGOA_SHARD_COORDINATOR_H_
#define KGOA_SHARD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/sync.h"

#include "src/explore/cache.h"
#include "src/index/index_set.h"
#include "src/index/snapshot.h"
#include "src/ola/parallel.h"
#include "src/query/chain_query.h"
#include "src/rdf/graph.h"
#include "src/shard/partition.h"
#include "src/shard/sharded_graph.h"

namespace kgoa {

struct ShardChartOptions {
  // > 0: deterministic walk-budget mode — exactly this many walks total
  // across all shards, bit-identical to an unsharded budget run with
  // workers = num_shards * workers_per_shard and the same seed.
  uint64_t walk_budget = 0;
  // Budget == 0: deadline mode — every shard walks until this many
  // seconds after submission.
  double deadline_seconds = 0.1;

  int priority = 0;

  // Logical slots per shard. Part of the deterministic run identity: a
  // sharded budget run matches the unsharded run whose workers equal the
  // TOTAL slot count (shards * workers_per_shard).
  int workers_per_shard = 2;

  uint64_t seed = 1;
  OlaEngineKind engine = OlaEngineKind::kAudit;
  std::vector<int> walk_order;  // empty = engine default
  double tipping_threshold = 64.0;
  // Walks advanced per structure-of-arrays batch in every shard's engines
  // (0 = engine default, 1 = unbatched). Not part of the run identity:
  // estimates are bit-identical at every width.
  uint32_t batch_walks = 0;

  // Audit-distinct: share one coordinator-owned reach cache across every
  // shard of this job (and across jobs on the same (query, walk order)).
  bool share_reach = true;

  // Top-K chart serving, forwarded to every shard job (src/ola/topk.h).
  // Each shard tracks bounds over its own walks; the combined
  // displayed-converged signal is the AND over shards, which is
  // conservative (shard-local intervals are wider than the combined
  // run's). Budget mode forces pruning off per the serving core's
  // bit-identity contract.
  TopKOptions top_k;
  // Deadline mode: each shard job retires (as completed) once its
  // displayed chart converged. Requires top_k.k > 0.
  bool finish_on_displayed_convergence = false;

  // The graph version this fan-out reads. The coordinator pins ONE
  // version for every shard job of the submit, so all shards sample one
  // coherent epoch (a scatter straddling two epochs would merge estimates
  // of two different triple sets). Invalid (default) = the coordinator's
  // construction-time snapshot.
  GraphSnapshot snapshot;
};

// Combined handle over one job per shard. Copyable; outlives the
// coordinator's cores the same way ChartHandle outlives a ServingCore.
class ShardChartHandle {
 public:
  ShardChartHandle() = default;

  bool valid() const { return !handles_.empty(); }
  uint64_t id() const { return id_; }
  // Shards that actually received a job (zero-budget shards are skipped).
  int num_shards() const { return static_cast<int>(handles_.size()); }
  int total_workers() const { return total_workers_; }

  // Aggregate state: kRunning while any shard is in flight; once every
  // shard finished, kCancelled if any shard was cancelled, else kDone.
  ChartJobState state() const;
  bool finished() const;  // every shard finished

  // Combined live view: per-shard snapshots merged in shard order. Once
  // finished() this folds the final per-slot partials instead, so it is
  // exactly Await()'s result.
  ParallelOlaResult Snapshot() const;

  // Fans the cancellation out to every shard. Idempotent.
  void Cancel() const;

  // Fans a graceful finish out to every shard: each shard job stops
  // within one quantum and retires as COMPLETED with its partials (see
  // ChartHandle::Finish). Idempotent.
  void Finish() const;

  // Blocks until every shard finished, then folds all logical slots in
  // global slot order (see file comment) — the bit-identity gather.
  ParallelOlaResult Await() const;

  // Per-shard handles, in shard order (e.g. for per-shard progress UIs or
  // session job tracking).
  const std::vector<ChartHandle>& shard_handles() const { return handles_; }

 private:
  friend class ShardCoordinator;
  ShardChartHandle(uint64_t id, int total_workers, uint64_t walk_budget,
                   std::vector<ChartHandle> handles);

  // The slot-order fold over finished shards.
  ParallelOlaResult GatherFinal() const;

  uint64_t id_ = 0;
  int total_workers_ = 0;
  uint64_t walk_budget_ = 0;  // 0 = deadline mode
  std::vector<ChartHandle> handles_;
};

// Aggregated scheduler statistics across the per-shard cores, plus the
// coordinator's own scatter counters.
struct ShardServeStats {
  int shards = 0;
  uint64_t jobs_submitted = 0;       // scatter-gather jobs (fan-outs)
  uint64_t shard_jobs_submitted = 0; // per-shard ChartJobs dispatched
  ServeStats cores;                  // summed over shards (latency: max)
};

class ShardCoordinator {
 public:
  struct Options {
    int num_shards = 2;
    // Pool threads per shard core.
    int threads_per_shard = 2;
    uint64_t quantum_walks = 256;
    // Build the physical per-shard Graph slices + IndexSets (partition
    // memory accounting / RPC data-plane scaffolding). Serving never
    // reads them; turn off to make coordinator construction O(1) in the
    // graph size beyond the partition scan.
    bool build_slices = true;
  };

  // Pins `snapshot` as the deployment's default version; the snapshot
  // must carry a Graph (the partition scan and slices read it). Jobs may
  // pin newer versions via ShardChartOptions::snapshot.
  ShardCoordinator(GraphSnapshot snapshot, Options options);
  // Legacy adapter: wraps externally owned structures (which must outlive
  // the coordinator and every outstanding handle) in an epoch-0 snapshot.
  ShardCoordinator(const Graph& graph, const IndexSet& indexes,
                   Options options);

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  int num_shards() const { return options_.num_shards; }
  const Options& options() const { return options_; }
  const ShardPartition& partition() const { return partition_; }
  const ShardPartitionStats& partition_stats() const { return stats_; }
  // Null when built with build_slices = false.
  const ShardedGraph* sliced() const { return sliced_.get(); }

  // Scatters `query` as one ChartJob per shard (skipping zero-budget
  // shards) and returns the combined handle. Thread-safe.
  ShardChartHandle Submit(const ChainQuery& query, ShardChartOptions options);

  // Drops coordinator-level reach caches built for superseded epochs
  // (in-flight jobs keep theirs via keepalive). Thread-safe.
  std::size_t EvictStaleReach(uint64_t current_epoch) {
    return reach_caches_.EvictStale(current_epoch);
  }

  ShardServeStats stats() const;

 private:
  // The default graph version (pinned for the coordinator's lifetime).
  GraphSnapshot snapshot_;
  Options options_;
  ShardPartition partition_;
  ShardPartitionStats stats_;
  std::unique_ptr<ShardedGraph> sliced_;
  // Declared before the cores so it outlives their jobs' teardown: shard
  // jobs hold pointers into these caches.
  ReachCacheRegistry reach_caches_;
  std::vector<std::unique_ptr<ServingCore>> cores_;
  // Leaf mutex for the scatter counters (never held across a core call).
  mutable Mutex mutex_;
  uint64_t next_id_ KGOA_GUARDED_BY(mutex_) = 1;
  uint64_t jobs_submitted_ KGOA_GUARDED_BY(mutex_) = 0;
  uint64_t shard_jobs_submitted_ KGOA_GUARDED_BY(mutex_) = 0;
};

}  // namespace kgoa

#endif  // KGOA_SHARD_COORDINATOR_H_
