#include "src/shard/sharded_graph.h"

#include <utility>

#include "src/util/contract.h"

namespace kgoa {

ShardedGraph::ShardedGraph(const Graph& graph, const ShardPartition& partition,
                           bool build_indexes) {
  const int shards = partition.num_shards();
  std::vector<GraphBuilder> builders(static_cast<std::size_t>(shards));
  const Dictionary& dict = graph.dict();
  for (const Triple& t : graph.triples()) {
    builders[static_cast<std::size_t>(partition.ShardOf(t.s))].AddSpelled(
        dict.Spell(t.s), dict.Spell(t.p), dict.Spell(t.o));
  }
  slices_.reserve(static_cast<std::size_t>(shards));
  for (GraphBuilder& builder : builders) {
    slices_.push_back(std::make_unique<Graph>(std::move(builder).Build()));
  }
  if (build_indexes) {
    indexes_.reserve(static_cast<std::size_t>(shards));
    for (const auto& slice : slices_) {
      indexes_.push_back(std::make_unique<IndexSet>(*slice));
    }
  }
  KGOA_DCHECK_EQ(TotalSliceTriples(), graph.NumTriples());
}

uint64_t ShardedGraph::TotalSliceTriples() const {
  uint64_t total = 0;
  for (const auto& slice : slices_) total += slice->NumTriples();
  return total;
}

uint64_t ShardedGraph::ApproxIndexMemoryBytes() const {
  uint64_t total = 0;
  for (const auto& indexes : indexes_) total += indexes->ApproxMemoryBytes();
  return total;
}

}  // namespace kgoa
