#include "src/shard/coordinator.h"

#include <algorithm>
#include <utility>

#include "src/eval/runner.h"
#include "src/util/contract.h"

namespace kgoa {

// ---------------------------------------------------------------------------
// ShardChartHandle
// ---------------------------------------------------------------------------

ShardChartHandle::ShardChartHandle(uint64_t id, int total_workers,
                                   uint64_t walk_budget,
                                   std::vector<ChartHandle> handles)
    : id_(id),
      total_workers_(total_workers),
      walk_budget_(walk_budget),
      handles_(std::move(handles)) {}

ChartJobState ShardChartHandle::state() const {
  KGOA_CHECK(valid());
  bool all_queued = true;
  bool all_finished = true;
  bool any_cancelled = false;
  for (const ChartHandle& handle : handles_) {
    switch (handle.state()) {
      case ChartJobState::kQueued:
        all_finished = false;
        break;
      case ChartJobState::kRunning:
        all_queued = false;
        all_finished = false;
        break;
      case ChartJobState::kDone:
        all_queued = false;
        break;
      case ChartJobState::kCancelled:
        all_queued = false;
        any_cancelled = true;
        break;
    }
  }
  if (all_queued) return ChartJobState::kQueued;
  if (!all_finished) return ChartJobState::kRunning;
  return any_cancelled ? ChartJobState::kCancelled : ChartJobState::kDone;
}

bool ShardChartHandle::finished() const {
  KGOA_CHECK(valid());
  for (const ChartHandle& handle : handles_) {
    if (!handle.finished()) return false;
  }
  return true;
}

ParallelOlaResult ShardChartHandle::Snapshot() const {
  KGOA_CHECK(valid());
  // Finished jobs take the deterministic slot-order gather so a snapshot
  // taken after completion equals Await() exactly.
  if (finished()) return GatherFinal();
  ParallelOlaResult combined;
  combined.displayed_converged = true;
  for (const ChartHandle& handle : handles_) {
    const ParallelOlaResult shard = handle.Snapshot();
    combined.estimates.Merge(shard.estimates);
    combined.counters.Merge(shard.counters);
    combined.elapsed_seconds =
        std::max(combined.elapsed_seconds, shard.elapsed_seconds);
    combined.workers += shard.workers;
    // AND over shards: conservative, since shard-local intervals are
    // wider than the combined run's.
    combined.displayed_converged =
        combined.displayed_converged && shard.displayed_converged;
  }
  return combined;
}

void ShardChartHandle::Cancel() const {
  KGOA_CHECK(valid());
  for (const ChartHandle& handle : handles_) handle.Cancel();
}

void ShardChartHandle::Finish() const {
  KGOA_CHECK(valid());
  for (const ChartHandle& handle : handles_) handle.Finish();
}

ParallelOlaResult ShardChartHandle::Await() const {
  KGOA_CHECK(valid());
  for (const ChartHandle& handle : handles_) handle.Await();
  return GatherFinal();
}

ParallelOlaResult ShardChartHandle::GatherFinal() const {
  ParallelOlaResult combined;
  combined.displayed_converged = true;
  for (const ChartHandle& handle : handles_) {
    const ParallelOlaResult shard = handle.Await();
    // Fold the per-slot finals, NOT the shard's pre-merged estimates:
    // shard k holds the contiguous global slot block [k*W, (k+1)*W), so
    // this loop visits every logical slot of the combined run in global
    // slot order — the same fold an unsharded run performs. Slots that
    // never ran (zero budget share) are empty and merge as exact no-ops.
    for (const GroupedEstimates& slot : handle.SlotPartials()) {
      combined.estimates.Merge(slot);
    }
    combined.counters.Merge(shard.counters);
    combined.elapsed_seconds =
        std::max(combined.elapsed_seconds, shard.elapsed_seconds);
    combined.workers += shard.workers;
    combined.displayed_converged =
        combined.displayed_converged && shard.displayed_converged;
  }
  if (walk_budget_ > 0 && state() == ChartJobState::kDone) {
    // Exactly the budget unless a graceful Finish() stopped shards short
    // (each shard job already checks its own exact share when it runs to
    // completion).
    KGOA_DCHECK_LE(combined.estimates.walks(), walk_budget_);
  }
  return combined;
}

// ---------------------------------------------------------------------------
// ShardCoordinator
// ---------------------------------------------------------------------------

ShardCoordinator::ShardCoordinator(const Graph& graph, const IndexSet& indexes,
                                   Options options)
    : ShardCoordinator(GraphSnapshot::Unowned(graph, indexes), options) {}

ShardCoordinator::ShardCoordinator(GraphSnapshot snapshot, Options options)
    : snapshot_(std::move(snapshot)),
      options_(options),
      partition_(options.num_shards),
      stats_(SummarizePartition(snapshot_.graph(), partition_)) {
  KGOA_CHECK_MSG(options_.num_shards >= 1,
                 "a coordinator needs at least one shard");
  KGOA_CHECK(options_.threads_per_shard >= 1);
  if (options_.build_slices) {
    sliced_ = std::make_unique<ShardedGraph>(snapshot_.graph(), partition_,
                                             /*build_indexes=*/true);
  }
  ServingCore::Options core_options;
  core_options.threads = options_.threads_per_shard;
  core_options.quantum_walks = options_.quantum_walks;
  cores_.reserve(static_cast<std::size_t>(options_.num_shards));
  for (int k = 0; k < options_.num_shards; ++k) {
    // Every core serves the GLOBAL index set (see file comment in
    // coordinator.h): walks must sample the whole graph's distribution
    // for the merged estimate to match an unsharded run.
    cores_.push_back(std::make_unique<ServingCore>(snapshot_, core_options));
  }
}

ShardChartHandle ShardCoordinator::Submit(const ChainQuery& query,
                                          ShardChartOptions options) {
  int shards = options_.num_shards;
  int workers = std::max(1, options.workers_per_shard);
  // Non-mergeable engines (Ripple) cannot scatter: partials from
  // independently seeded instances do not merge. Serve on shard 0 alone,
  // matching the serving core's own single-worker clamp.
  if (!OlaEngineKindMergeable(options.engine)) {
    shards = 1;
    workers = 1;
  }

  if (options.engine == OlaEngineKind::kAudit) {
    if (options.walk_order.empty()) {
      options.walk_order = DefaultAuditOrder(query);
    }
  }
  // ONE pinned version for the whole fan-out: every shard job samples the
  // same epoch, so the gather merges estimates of one triple set.
  if (!options.snapshot.valid()) options.snapshot = snapshot_;
  // One reach cache across all shards of the job (and across jobs on the
  // same plan and epoch): a pair audited by one shard is warm for every
  // other.
  AcquiredReach shared_reach;
  if (options.engine == OlaEngineKind::kAudit && query.distinct() &&
      options.share_reach) {
    shared_reach =
        reach_caches_.Acquire(query, options.walk_order, options.snapshot);
  }

  const bool budget_mode = options.walk_budget > 0;
  const uint64_t total_slots =
      static_cast<uint64_t>(shards) * static_cast<uint64_t>(workers);
  const uint64_t base = budget_mode ? options.walk_budget / total_slots : 0;
  const uint64_t remainder =
      budget_mode ? options.walk_budget % total_slots : 0;

  std::vector<ChartHandle> handles;
  handles.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    ChartJobOptions job;
    if (budget_mode) {
      // Shard k owns global slots [k*W, (k+1)*W). Its budget is the sum
      // of the global per-slot shares over that block; the job's internal
      // front-loaded re-split then reproduces the global shares exactly.
      const uint64_t block_start =
          static_cast<uint64_t>(k) * static_cast<uint64_t>(workers);
      const uint64_t block_remainder =
          remainder > block_start
              ? std::min<uint64_t>(remainder - block_start,
                                   static_cast<uint64_t>(workers))
              : 0;
      const uint64_t shard_budget =
          base * static_cast<uint64_t>(workers) + block_remainder;
      // Zero-share blocks form a suffix under the front-loaded split;
      // submitting one would trip the job's active-slot contract.
      if (shard_budget == 0) break;
      job.walk_budget = shard_budget;
    } else {
      job.walk_budget = 0;
      job.deadline_seconds = options.deadline_seconds;
    }
    job.priority = options.priority;
    job.workers = workers;
    // Slot s of shard k runs with seed seed + k*W + s — the global slot's
    // seed in the unsharded run.
    job.seed = options.seed +
               static_cast<uint64_t>(k) * static_cast<uint64_t>(workers);
    job.engine = options.engine;
    job.walk_order = options.walk_order;
    job.tipping_threshold = options.tipping_threshold;
    job.batch_walks = options.batch_walks;
    job.top_k = options.top_k;
    job.finish_on_displayed_convergence =
        options.finish_on_displayed_convergence;
    job.snapshot = options.snapshot;
    if (shared_reach.reach != nullptr) {
      job.share_reach = false;
      job.shared_reach = shared_reach.reach;
      job.reach_keepalive = shared_reach.keepalive;
    } else {
      job.share_reach = options.share_reach;
    }
    handles.push_back(cores_[static_cast<std::size_t>(k)]->Submit(
        query, std::move(job)));
  }
  uint64_t id = 0;
  {
    MutexLock lock(mutex_);
    ++jobs_submitted_;
    shard_jobs_submitted_ += handles.size();
    id = next_id_++;
  }
  return ShardChartHandle(id, shards * workers, options.walk_budget,
                          std::move(handles));
}

ShardServeStats ShardCoordinator::stats() const {
  ShardServeStats stats;
  stats.shards = options_.num_shards;
  {
    // Leaf lock: released before the core stats() calls below, per the
    // never-nested ordering rule in coordinator.h.
    MutexLock lock(mutex_);
    stats.jobs_submitted = jobs_submitted_;
    stats.shard_jobs_submitted = shard_jobs_submitted_;
  }
  for (const auto& core : cores_) {
    const ServeStats cs = core->stats();
    stats.cores.threads += cs.threads;
    stats.cores.jobs_submitted += cs.jobs_submitted;
    stats.cores.jobs_completed += cs.jobs_completed;
    stats.cores.jobs_cancelled += cs.jobs_cancelled;
    stats.cores.quanta += cs.quanta;
    stats.cores.preemptions += cs.preemptions;
    stats.cores.walks += cs.walks;
    stats.cores.live_jobs += cs.live_jobs;
    stats.cores.max_live_jobs += cs.max_live_jobs;
    stats.cores.last_cancel_latency_seconds =
        std::max(stats.cores.last_cancel_latency_seconds,
                 cs.last_cancel_latency_seconds);
  }
  return stats;
}

}  // namespace kgoa
