// Per-shard physical slices of a graph under a ShardPartition.
//
// Each slice is a self-contained Graph (own dictionary, own dense ids)
// holding exactly the triples whose subject the partition assigns to that
// shard, optionally with its own IndexSet. Slices are rebuilt by
// re-spelling through the global dictionary, so a slice-local id maps back
// to the global id via the term's spelling — the hand-off a multi-process
// data plane would serialize.
//
// NOTE: the in-process ShardCoordinator serves queries against the GLOBAL
// IndexSet (see coordinator.h for why); slices exist for partition/memory
// accounting and as the data plane of the future RPC boundary.
#ifndef KGOA_SHARD_SHARDED_GRAPH_H_
#define KGOA_SHARD_SHARDED_GRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/index/index_set.h"
#include "src/rdf/graph.h"
#include "src/shard/partition.h"

namespace kgoa {

class ShardedGraph {
 public:
  // Slices `graph` under `partition`; builds a per-shard IndexSet when
  // `build_indexes` is set.
  ShardedGraph(const Graph& graph, const ShardPartition& partition,
               bool build_indexes);

  ShardedGraph(const ShardedGraph&) = delete;
  ShardedGraph& operator=(const ShardedGraph&) = delete;

  int num_shards() const { return static_cast<int>(slices_.size()); }

  const Graph& slice(int shard) const { return *slices_[shard]; }

  bool has_indexes() const { return !indexes_.empty(); }
  const IndexSet& indexes(int shard) const { return *indexes_[shard]; }

  // Sum of slice triple counts; equals the source graph's NumTriples()
  // (every triple has exactly one subject, hence one owner).
  uint64_t TotalSliceTriples() const;

  // Rough resident size of the slices' index structures (0 when built
  // without indexes).
  uint64_t ApproxIndexMemoryBytes() const;

 private:
  std::vector<std::unique_ptr<Graph>> slices_;
  std::vector<std::unique_ptr<IndexSet>> indexes_;
};

}  // namespace kgoa

#endif  // KGOA_SHARD_SHARDED_GRAPH_H_
