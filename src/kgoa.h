// Umbrella header: the public API of the kgoa library in one include.
//
//   #include "src/kgoa.h"
//
// For finer-grained builds include the individual module headers; every
// header is self-contained.
#ifndef KGOA_SRC_KGOA_H_
#define KGOA_SRC_KGOA_H_

// RDF substrate.
#include "src/rdf/binary_io.h"
#include "src/rdf/dictionary.h"
#include "src/rdf/graph.h"
#include "src/rdf/ntriples.h"
#include "src/rdf/schema.h"
#include "src/rdf/types.h"
#include "src/rdf/vocab.h"

// Indexes.
#include "src/index/index_set.h"
#include "src/index/trie_iterator.h"

// Queries.
#include "src/query/chain_query.h"
#include "src/query/pattern.h"
#include "src/query/sparql.h"

// Exploration model.
#include "src/explore/cache.h"
#include "src/explore/chart.h"
#include "src/explore/session.h"

// Exact engines.
#include "src/join/baseline.h"
#include "src/join/ctj.h"
#include "src/join/leapfrog.h"
#include "src/join/yannakakis.h"

// Online aggregation.
#include "src/ola/estimator.h"
#include "src/ola/parallel.h"
#include "src/ola/ripple.h"
#include "src/ola/wander.h"

// Audit Join and the engine facade.
#include "src/core/audit.h"
#include "src/core/explain.h"
#include "src/core/explorer.h"

// Cyclic-query extension.
#include "src/cyclic/cyclic.h"

// Synthetic data and evaluation harness.
#include "src/eval/metrics.h"
#include "src/eval/profile.h"
#include "src/eval/registry.h"
#include "src/eval/runner.h"
#include "src/gen/kg_gen.h"
#include "src/gen/workload.h"
#include "src/gen/workload_io.h"

#endif  // KGOA_SRC_KGOA_H_
