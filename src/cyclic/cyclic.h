// Cyclic-query extension for the random-walk engines — the future-work
// direction the paper names explicitly (sections IV-D "Limitations" and
// VI): "Like WJ, the AJ algorithm is based on random walks and could
// utilize similar methods to support online aggregation for cyclic
// queries".
//
// A cyclic query is a set of triple patterns whose join graph may contain
// cycles (e.g. triangles), still with every variable in at most two
// patterns (binary joins). The walk visits the patterns in an order where
// each step may have ZERO, ONE or TWO (or all three) positions already
// bound: a cycle-closing step samples among the tuples matching all bound
// positions, whose count is the step's fan-out d_i — exactly Wander
// Join's cyclic recipe. The Horvitz-Thompson estimator prod d_i stays
// unbiased for grouped COUNT.
//
// Audit Join's hybrid transfers too: the static PostgreSQL-style estimate
// composes over the remaining steps and, below the threshold, the suffix
// space is enumerated exactly. COUNT DISTINCT is not supported here (the
// reach-probability decomposition of src/core/reach.h relies on the chain
// shape); engines CHECK against it.
#ifndef KGOA_CYCLIC_CYCLIC_H_
#define KGOA_CYCLIC_CYCLIC_H_

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/index/index_set.h"
#include "src/ola/estimator.h"
#include "src/query/pattern.h"
#include "src/util/rng.h"

namespace kgoa {

// A grouped COUNT query over a connected set of triple patterns, possibly
// cyclic. Variables appear at most once per pattern and at most twice
// overall.
class CyclicQuery {
 public:
  static std::optional<CyclicQuery> Create(
      std::vector<TriplePattern> patterns, VarId alpha,
      std::string* error = nullptr);

  const std::vector<TriplePattern>& patterns() const { return patterns_; }
  int NumPatterns() const { return static_cast<int>(patterns_.size()); }
  VarId alpha() const { return alpha_; }
  const std::vector<VarId>& vars() const { return vars_; }

 private:
  CyclicQuery() = default;

  std::vector<TriplePattern> patterns_;
  VarId alpha_ = kNoVar;
  std::vector<VarId> vars_;
};

// Access path for a pattern with any subset of positions fixed at runtime
// (constants plus up to three bound variables). Generalizes PatternAccess.
class MultiBoundAccess {
 public:
  // `bound_vars`: variables whose values arrive at Resolve time, in the
  // order the values will be passed. Returns false when no maintained
  // index order covers the fixed prefix.
  static bool TryCompile(const TriplePattern& pattern,
                         const std::vector<VarId>& bound_vars,
                         MultiBoundAccess* access);

  Range Resolve(const IndexSet& indexes,
                const std::array<TermId, 3>& bound_values) const;

  IndexOrder order() const { return order_; }
  int depth() const { return depth_; }

 private:
  IndexOrder order_ = IndexOrder::kSpo;
  int depth_ = 0;
  // Per fixed level: constant value, or (when bound_index >= 0) index into
  // the Resolve-time bound value array.
  std::array<TermId, 3> key_{};
  std::array<int, 3> bound_index_{{-1, -1, -1}};
};

// Compiled walk over a cyclic query in a fixed pattern order (default:
// the order given in the query).
class CyclicWalkPlan {
 public:
  static CyclicWalkPlan Compile(const CyclicQuery& query,
                                std::vector<int> pattern_order = {});

  struct Step {
    int pattern_index = 0;
    MultiBoundAccess access;
    std::vector<VarId> bound_vars;          // bound before this step
    std::array<TermId, 3> bound_slots{};    // tracked slots of those vars
    struct Record {
      int component;
      int slot;
    };
    std::vector<Record> records;            // vars first bound here
  };

  const CyclicQuery& query() const { return *query_; }
  const std::vector<Step>& steps() const { return steps_; }
  int NumSteps() const { return static_cast<int>(steps_.size()); }
  int num_slots() const { return static_cast<int>(slot_vars_.size()); }
  int alpha_slot() const { return alpha_slot_; }

 private:
  int SlotOf(VarId v) const;

  const CyclicQuery* query_ = nullptr;
  std::vector<Step> steps_;
  std::vector<VarId> slot_vars_;
  int alpha_slot_ = -1;
};

// Wander Join over cyclic queries (grouped COUNT).
class CyclicWanderJoin {
 public:
  struct Options {
    uint64_t seed = 1;
    std::vector<int> pattern_order;
  };

  CyclicWanderJoin(const IndexSet& indexes, const CyclicQuery& query)
      : CyclicWanderJoin(indexes, query, Options()) {}
  CyclicWanderJoin(const IndexSet& indexes, const CyclicQuery& query,
                   Options options);

  CyclicWanderJoin(const CyclicWanderJoin&) = delete;
  CyclicWanderJoin& operator=(const CyclicWanderJoin&) = delete;

  void RunOneWalk();
  void RunWalks(uint64_t count);
  const GroupedEstimates& estimates() const { return estimates_; }
  const CyclicWalkPlan& plan() const { return plan_; }

  // Verification hook (cf. WanderJoin::EnumerateAllWalks).
  void EnumerateAllWalks(
      const std::function<void(double probability, TermId group,
                               double contribution)>& callback) const;

 private:
  // kgoa-lint: allow(raw-graph-retention) query-scoped engine; caller's snapshot outlives it
  const IndexSet& indexes_;
  CyclicQuery query_;
  CyclicWalkPlan plan_;
  GroupedEstimates estimates_;
  Rng rng_;
  std::vector<TermId> state_;
};

// Audit Join over cyclic queries (grouped COUNT): static tipping point +
// budgeted exact suffix enumeration.
class CyclicAuditJoin {
 public:
  struct Options {
    uint64_t seed = 1;
    std::vector<int> pattern_order;
    double tipping_threshold = 64.0;
    bool enable_tipping = true;
    uint64_t max_tip_enumeration = 4096;
  };

  CyclicAuditJoin(const IndexSet& indexes, const CyclicQuery& query)
      : CyclicAuditJoin(indexes, query, Options()) {}
  CyclicAuditJoin(const IndexSet& indexes, const CyclicQuery& query,
                  Options options);

  CyclicAuditJoin(const CyclicAuditJoin&) = delete;
  CyclicAuditJoin& operator=(const CyclicAuditJoin&) = delete;

  void RunOneWalk();
  void RunWalks(uint64_t count);
  const GroupedEstimates& estimates() const { return estimates_; }
  uint64_t tipped_walks() const { return tipped_; }

  void EnumerateAllWalks(
      const std::function<void(double probability,
                               const std::unordered_map<TermId, double>&)>&
          callback);

 private:
  // Exact per-group completion counts of steps q..n-1 from `state`;
  // returns false on budget exhaustion.
  bool EnumerateRemaining(int q, std::vector<TermId>& state,
                          uint64_t* budget,
                          std::unordered_map<TermId, double>* acc);
  bool TippedContributions(int q, std::vector<TermId>& state, double weight,
                           std::unordered_map<TermId, double>* out);

  // kgoa-lint: allow(raw-graph-retention) query-scoped engine; caller's snapshot outlives it
  const IndexSet& indexes_;
  CyclicQuery query_;
  Options options_;
  CyclicWalkPlan plan_;
  std::vector<double> static_suffix_;  // composed estimates per step
  GroupedEstimates estimates_;
  Rng rng_;
  std::vector<TermId> state_;
  uint64_t tipped_ = 0;
};

}  // namespace kgoa

#endif  // KGOA_CYCLIC_CYCLIC_H_
