#include "src/cyclic/cyclic.h"

#include <algorithm>

#include "src/util/contract.h"

namespace kgoa {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

// ---------------------------------------------------------------------------
// CyclicQuery
// ---------------------------------------------------------------------------

std::optional<CyclicQuery> CyclicQuery::Create(
    std::vector<TriplePattern> patterns, VarId alpha, std::string* error) {
  if (patterns.empty()) {
    SetError(error, "query must have at least one pattern");
    return std::nullopt;
  }
  std::unordered_map<VarId, int> occurrences;
  for (const TriplePattern& pattern : patterns) {
    std::vector<VarId> here;
    for (int c = 0; c < 3; ++c) {
      if (!pattern[c].is_var()) continue;
      const VarId v = pattern[c].var();
      if (std::count(here.begin(), here.end(), v) > 0) {
        SetError(error, "variable repeated within a pattern");
        return std::nullopt;
      }
      here.push_back(v);
      ++occurrences[v];
    }
  }
  for (const auto& [v, n] : occurrences) {
    if (n > 2) {
      SetError(error, "a variable appears in more than two patterns");
      return std::nullopt;
    }
  }
  if (occurrences.find(alpha) == occurrences.end()) {
    SetError(error, "alpha does not occur in the query");
    return std::nullopt;
  }

  // Connectivity over the pattern-share graph.
  const int n = static_cast<int>(patterns.size());
  std::vector<bool> reached(n, false);
  std::vector<int> stack{0};
  reached[0] = true;
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    for (int other = 0; other < n; ++other) {
      if (reached[other]) continue;
      for (VarId v : patterns[cur].Vars()) {
        if (patterns[other].HasVar(v)) {
          reached[other] = true;
          stack.push_back(other);
          break;
        }
      }
    }
  }
  if (std::count(reached.begin(), reached.end(), true) != n) {
    SetError(error, "patterns must be connected");
    return std::nullopt;
  }

  CyclicQuery query;
  query.patterns_ = std::move(patterns);
  query.alpha_ = alpha;
  for (const TriplePattern& pattern : query.patterns_) {
    for (VarId v : pattern.Vars()) {
      if (std::count(query.vars_.begin(), query.vars_.end(), v) == 0) {
        query.vars_.push_back(v);
      }
    }
  }
  return query;
}

// ---------------------------------------------------------------------------
// MultiBoundAccess
// ---------------------------------------------------------------------------

bool MultiBoundAccess::TryCompile(const TriplePattern& pattern,
                                  const std::vector<VarId>& bound_vars,
                                  MultiBoundAccess* access) {
  uint32_t mask = 0;
  std::array<int, 3> bound_of_component{{-1, -1, -1}};
  for (int c = 0; c < 3; ++c) {
    if (!pattern[c].is_var()) {
      mask |= 1u << c;
      continue;
    }
    for (std::size_t b = 0; b < bound_vars.size(); ++b) {
      if (pattern[c].var() == bound_vars[b]) {
        mask |= 1u << c;
        bound_of_component[c] = static_cast<int>(b);
      }
    }
  }
  if (!IndexSet::ChooseOrder(mask, &access->order_, &access->depth_)) {
    return false;
  }
  access->bound_index_ = {-1, -1, -1};
  for (int level = 0; level < access->depth_; ++level) {
    const int c = OrderComponent(access->order_, level);
    if (bound_of_component[c] >= 0) {
      access->bound_index_[level] = bound_of_component[c];
    } else {
      access->key_[level] = pattern[c].term();
    }
  }
  return true;
}

Range MultiBoundAccess::Resolve(
    const IndexSet& indexes, const std::array<TermId, 3>& bound_values) const {
  std::array<TermId, 3> key = key_;
  for (int level = 0; level < depth_; ++level) {
    if (bound_index_[level] >= 0) key[level] = bound_values[bound_index_[level]];
  }
  const TrieIndex& index = indexes.Index(order_);
  switch (depth_) {
    case 0:
      return index.Root();
    case 1:
      return indexes.Depth1(order_, key[0]);
    case 2:
      return indexes.Depth2(order_, key[0], key[1]);
    default:
      return index.Narrow(indexes.Depth2(order_, key[0], key[1]), 2,
                          key[2]);
  }
}

// ---------------------------------------------------------------------------
// CyclicWalkPlan
// ---------------------------------------------------------------------------

int CyclicWalkPlan::SlotOf(VarId v) const {
  for (std::size_t i = 0; i < slot_vars_.size(); ++i) {
    if (slot_vars_[i] == v) return static_cast<int>(i);
  }
  return -1;
}

CyclicWalkPlan CyclicWalkPlan::Compile(const CyclicQuery& query,
                                       std::vector<int> pattern_order) {
  const int n = query.NumPatterns();
  if (pattern_order.empty()) {
    for (int i = 0; i < n; ++i) pattern_order.push_back(i);
  }
  KGOA_CHECK(static_cast<int>(pattern_order.size()) == n);

  CyclicWalkPlan plan;
  plan.query_ = &query;
  plan.slot_vars_ = query.vars();
  plan.alpha_slot_ = plan.SlotOf(query.alpha());
  KGOA_CHECK(plan.alpha_slot_ >= 0);

  std::vector<bool> bound(plan.slot_vars_.size(), false);
  std::vector<bool> used(n, false);
  for (int pi : pattern_order) {
    KGOA_CHECK_MSG(!used[pi], "pattern repeated in walk order");
    used[pi] = true;
    const TriplePattern& pattern = query.patterns()[pi];

    Step step;
    step.pattern_index = pi;
    for (VarId v : pattern.Vars()) {
      const int slot = plan.SlotOf(v);
      if (bound[slot]) {
        step.bound_slots[step.bound_vars.size()] =
            static_cast<TermId>(slot);
        step.bound_vars.push_back(v);
      }
    }
    KGOA_CHECK_MSG(
        plan.steps_.empty() || !step.bound_vars.empty(),
        "walk order must keep the pattern graph connected step by step");
    KGOA_CHECK_MSG(
        MultiBoundAccess::TryCompile(pattern, step.bound_vars, &step.access),
        "no index order covers this cyclic access path; try another walk "
        "order");
    for (VarId v : pattern.Vars()) {
      const int slot = plan.SlotOf(v);
      if (bound[slot]) continue;
      step.records.push_back(Step::Record{pattern.ComponentOf(v), slot});
      bound[slot] = true;
    }
    plan.steps_.push_back(std::move(step));
  }
  return plan;
}

namespace {

std::array<TermId, 3> BoundValues(const CyclicWalkPlan::Step& step,
                                  const std::vector<TermId>& state) {
  std::array<TermId, 3> values{};
  for (std::size_t b = 0; b < step.bound_vars.size(); ++b) {
    values[b] = state[step.bound_slots[b]];
  }
  return values;
}

}  // namespace

// ---------------------------------------------------------------------------
// CyclicWanderJoin
// ---------------------------------------------------------------------------

CyclicWanderJoin::CyclicWanderJoin(const IndexSet& indexes,
                                   const CyclicQuery& query, Options options)
    : indexes_(indexes),
      query_(query),
      plan_(CyclicWalkPlan::Compile(query_, options.pattern_order)),
      rng_(options.seed),
      state_(plan_.num_slots(), kInvalidTerm) {}

void CyclicWanderJoin::RunOneWalk() {
  double weight = 1.0;
  for (const CyclicWalkPlan::Step& step : plan_.steps()) {
    const Range range =
        step.access.Resolve(indexes_, BoundValues(step, state_));
    if (range.empty()) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    weight *= static_cast<double>(range.size());
    const uint32_t pos =
        range.begin + static_cast<uint32_t>(rng_.Below(range.size()));
    const Triple& t = indexes_.Index(step.access.order()).TripleAt(pos);
    for (const auto& record : step.records) {
      state_[record.slot] = t[record.component];
    }
  }
  estimates_.AddContribution(state_[plan_.alpha_slot()], weight);
  estimates_.EndWalk(/*rejected=*/false);
}

void CyclicWanderJoin::RunWalks(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) RunOneWalk();
}

void CyclicWanderJoin::EnumerateAllWalks(
    const std::function<void(double, TermId, double)>& callback) const {
  std::vector<TermId> state(plan_.num_slots(), kInvalidTerm);
  auto walk = [&](auto&& self, int q, double probability,
                  double weight) -> void {
    if (q == plan_.NumSteps()) {
      callback(probability, state[plan_.alpha_slot()], weight);
      return;
    }
    const CyclicWalkPlan::Step& step = plan_.steps()[q];
    const Range range =
        step.access.Resolve(indexes_, BoundValues(step, state));
    if (range.empty()) {
      callback(probability, kInvalidTerm, 0.0);
      return;
    }
    const double d = static_cast<double>(range.size());
    const TrieIndex& index = indexes_.Index(step.access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      for (const auto& record : step.records) {
        state[record.slot] = t[record.component];
      }
      self(self, q + 1, probability / d, weight * d);
    }
  };
  walk(walk, 0, 1.0, 1.0);
}

// ---------------------------------------------------------------------------
// CyclicAuditJoin
// ---------------------------------------------------------------------------

CyclicAuditJoin::CyclicAuditJoin(const IndexSet& indexes,
                                 const CyclicQuery& query, Options options)
    : indexes_(indexes),
      query_(query),
      options_(options),
      plan_(CyclicWalkPlan::Compile(query_, options_.pattern_order)),
      rng_(options_.seed),
      state_(plan_.num_slots(), kInvalidTerm) {
  // Composed static estimates: per step, |G| divided by the product over
  // bound variables of the max distinct count on either side.
  const int n = plan_.NumSteps();
  std::vector<double> fanout(n, 1.0);
  for (int q = 0; q < n; ++q) {
    const CyclicWalkPlan::Step& step = plan_.steps()[q];
    const TriplePattern& pattern = query_.patterns()[step.pattern_index];
    double estimate =
        static_cast<double>(indexes_.CountMatches(pattern));
    for (VarId v : step.bound_vars) {
      uint64_t ndv = indexes_.CountDistinctVar(pattern, v);
      for (const TriplePattern& other : query_.patterns()) {
        if (&other == &pattern || !other.HasVar(v)) continue;
        ndv = std::max(ndv, indexes_.CountDistinctVar(other, v));
      }
      estimate = ndv == 0 ? 0.0 : estimate / static_cast<double>(ndv);
    }
    fanout[q] = estimate;
  }
  static_suffix_.assign(n + 1, 1.0);
  for (int q = n - 1; q >= 0; --q) {
    static_suffix_[q] = static_suffix_[q + 1] * fanout[q];
  }
}

bool CyclicAuditJoin::EnumerateRemaining(
    int q, std::vector<TermId>& state, uint64_t* budget,
    std::unordered_map<TermId, double>* acc) {
  if (q == plan_.NumSteps()) {
    (*acc)[state[plan_.alpha_slot()]] += 1.0;
    return true;
  }
  const CyclicWalkPlan::Step& step = plan_.steps()[q];
  const Range range = step.access.Resolve(indexes_, BoundValues(step, state));
  const TrieIndex& index = indexes_.Index(step.access.order());
  for (uint32_t pos = range.begin; pos < range.end; ++pos) {
    if (*budget == 0) return false;
    --*budget;
    const Triple& t = index.TripleAt(pos);
    for (const auto& record : step.records) {
      state[record.slot] = t[record.component];
    }
    if (!EnumerateRemaining(q + 1, state, budget, acc)) return false;
  }
  return true;
}

bool CyclicAuditJoin::TippedContributions(
    int q, std::vector<TermId>& state, double weight,
    std::unordered_map<TermId, double>* out) {
  std::unordered_map<TermId, double> counts;
  uint64_t budget = options_.max_tip_enumeration;
  if (!EnumerateRemaining(q, state, &budget, &counts)) return false;
  for (const auto& [group, count] : counts) {
    (*out)[group] += weight * count;
  }
  return true;
}

void CyclicAuditJoin::RunOneWalk() {
  double weight = 1.0;
  for (int q = 0; q < plan_.NumSteps(); ++q) {
    const CyclicWalkPlan::Step& step = plan_.steps()[q];

    if (options_.enable_tipping &&
        static_suffix_[q] <= options_.tipping_threshold) {
      std::unordered_map<TermId, double> contributions;
      if (TippedContributions(q, state_, weight, &contributions)) {
        for (const auto& [group, value] : contributions) {
          if (value > 0) estimates_.AddContribution(group, value);
        }
        ++tipped_;
        estimates_.EndWalk(/*rejected=*/false);
        return;
      }
    }

    const Range range =
        step.access.Resolve(indexes_, BoundValues(step, state_));
    if (range.empty()) {
      estimates_.EndWalk(/*rejected=*/true);
      return;
    }
    weight *= static_cast<double>(range.size());
    const uint32_t pos =
        range.begin + static_cast<uint32_t>(rng_.Below(range.size()));
    const Triple& t = indexes_.Index(step.access.order()).TripleAt(pos);
    for (const auto& record : step.records) {
      state_[record.slot] = t[record.component];
    }
  }
  estimates_.AddContribution(state_[plan_.alpha_slot()], weight);
  estimates_.EndWalk(/*rejected=*/false);
}

void CyclicAuditJoin::RunWalks(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) RunOneWalk();
}

void CyclicAuditJoin::EnumerateAllWalks(
    const std::function<void(double, const std::unordered_map<TermId, double>&)>&
        callback) {
  std::vector<TermId> state(plan_.num_slots(), kInvalidTerm);
  const std::unordered_map<TermId, double> kEmpty;

  auto walk = [&](auto&& self, int q, double probability,
                  double weight) -> void {
    if (q == plan_.NumSteps()) {
      std::unordered_map<TermId, double> contributions;
      contributions[state[plan_.alpha_slot()]] = weight;
      callback(probability, contributions);
      return;
    }
    if (options_.enable_tipping &&
        static_suffix_[q] <= options_.tipping_threshold) {
      std::unordered_map<TermId, double> contributions;
      if (TippedContributions(q, state, weight, &contributions)) {
        callback(probability, contributions);
        return;
      }
    }
    const CyclicWalkPlan::Step& step = plan_.steps()[q];
    const Range range =
        step.access.Resolve(indexes_, BoundValues(step, state));
    if (range.empty()) {
      callback(probability, kEmpty);
      return;
    }
    const double d = static_cast<double>(range.size());
    const TrieIndex& index = indexes_.Index(step.access.order());
    for (uint32_t pos = range.begin; pos < range.end; ++pos) {
      const Triple& t = index.TripleAt(pos);
      for (const auto& record : step.records) {
        state[record.slot] = t[record.component];
      }
      self(self, q + 1, probability / d, weight * d);
    }
  };
  walk(walk, 0, 1.0, 1.0);
}

}  // namespace kgoa
