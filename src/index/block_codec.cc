#include "src/index/block_codec.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "src/index/kernels.h"
#include "src/util/contract.h"

namespace kgoa {

namespace {

// Process-wide monotonic column id: never reused, so a stale decode-cache
// entry can never be mistaken for a block of a newer column.
std::atomic<uint64_t> g_next_column_id{1};

// Column ids occupy the key bits above the block index; 2^26 blocks cover
// the largest column a 32-bit position space can address.
constexpr uint32_t kBlockIndexBits = 26;

constexpr uint32_t kDecodeCacheSlots = 16;  // power of two

struct DecodeCacheEntry {
  uint64_t key = ~0ull;
  // 32-byte alignment: the AVX2 unpack kernels store whole vector lanes,
  // and an aligned buffer keeps every store within one cache line pair.
  alignas(32) uint32_t vals[kCodecBlockSize];
};

thread_local DecodeCacheEntry g_decode_cache[kDecodeCacheSlots];

uint32_t CacheSlot(uint64_t key) {
  return static_cast<uint32_t>((key * 0x9e3779b97f4a7c15ULL) >>
                               (64 - std::bit_width(kDecodeCacheSlots - 1)));
}

// Zigzag maps signed deltas onto small unsigned ints (0,-1,1,-2,... ->
// 0,1,2,3,...) so LEB128 stays short for deltas of either sign.
uint64_t ZigzagEncode(int64_t d) {
  return (static_cast<uint64_t>(d) << 1) ^ static_cast<uint64_t>(d >> 63);
}

uint32_t VarintLength(uint64_t z) {
  return 1 + (63 - static_cast<uint32_t>(std::countl_zero(z | 1))) / 7;
}

void AppendVarint(uint64_t z, std::vector<uint8_t>& out) {
  while (z >= 0x80) {
    out.push_back(static_cast<uint8_t>(z) | 0x80);
    z >>= 7;
  }
  out.push_back(static_cast<uint8_t>(z));
}

// Encoded size of `count` values as zigzag varint deltas seeded at `min`.
uint64_t VarintDeltaBytes(const uint32_t* v, uint32_t count, uint32_t min) {
  uint64_t bytes = 0;
  int64_t prev = min;
  for (uint32_t i = 0; i < count; ++i) {
    bytes += VarintLength(ZigzagEncode(static_cast<int64_t>(v[i]) - prev));
    prev = v[i];
  }
  return bytes;
}

void AppendBitPacked(const uint32_t* v, uint32_t count, uint32_t base,
                     uint8_t width, std::vector<uint8_t>& out) {
  uint64_t acc = 0;
  int bits = 0;
  for (uint32_t i = 0; i < count; ++i) {
    acc |= static_cast<uint64_t>(v[i] - base) << bits;
    bits += width;
    while (bits >= 8) {
      out.push_back(static_cast<uint8_t>(acc));
      acc >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) out.push_back(static_cast<uint8_t>(acc));
}

void AppendVarintDelta(const uint32_t* v, uint32_t count, uint32_t min,
                       std::vector<uint8_t>& out) {
  int64_t prev = min;
  for (uint32_t i = 0; i < count; ++i) {
    AppendVarint(ZigzagEncode(static_cast<int64_t>(v[i]) - prev), out);
    prev = v[i];
  }
}

}  // namespace

BlockedColumn::BlockedColumn(const uint32_t* values, uint32_t n)
    : column_id_(g_next_column_id.fetch_add(1, std::memory_order_relaxed)),
      size_(n) {
  directory_.reserve((n + kCodecBlockSize - 1) / kCodecBlockSize);
  for (uint32_t begin = 0; begin < n; begin += kCodecBlockSize) {
    const uint32_t count = std::min(kCodecBlockSize, n - begin);
    const uint32_t* block = values + begin;
    const auto [min_it, max_it] =
        std::minmax_element(block, block + count);
    BlockMeta meta;
    meta.byte_offset = payload_.size();
    meta.min = *min_it;
    meta.max = *max_it;
    meta.count = static_cast<uint16_t>(count);
    meta.bit_width = static_cast<uint8_t>(std::bit_width(meta.max - meta.min));
    const uint64_t packed_bytes =
        (static_cast<uint64_t>(count) * meta.bit_width + 7) / 8;
    const uint64_t varint_bytes = VarintDeltaBytes(block, count, meta.min);
    // Decode-cost-aware selection: bit-packed blocks unpack branch-free
    // at a fixed stride (the vector kernels sustain several times the
    // varint decode rate), while varint-delta parsing is serial in the
    // worst case. Spend that speed only when varint saves a meaningful
    // fraction of the block — it must come in under 3/4 of the packed
    // size, not merely under it.
    if (varint_bytes * 4 < packed_bytes * 3) {
      meta.encoding = BlockEncoding::kVarintDelta;
      AppendVarintDelta(block, count, meta.min, payload_);
    } else {
      meta.encoding = BlockEncoding::kBitPacked;
      AppendBitPacked(block, count, meta.min, meta.bit_width, payload_);
    }
    directory_.push_back(meta);
  }
  payload_.shrink_to_fit();
}

uint32_t BlockedColumn::DecodeBlock(uint32_t block,
                                    std::span<uint32_t> out) const {
  KGOA_DCHECK_LT(block, num_blocks());
  // Capacity contract: a full block's worth of room even for the short
  // final block — see the header comment.
  KGOA_CHECK_GE(out.size(), kCodecBlockSize);
  const BlockMeta& meta = directory_[block];
  const uint8_t* p = payload_.data() + meta.byte_offset;
  const uint8_t* payload_end = payload_.data() + payload_.size();
  const uint32_t count = meta.count;
  if (meta.encoding == BlockEncoding::kBitPacked) {
    kernels::UnpackBits(p, payload_end, count, meta.min, meta.bit_width,
                        out.data());
  } else {
    // The encoded byte length (next block's offset delta) is what enables
    // the kernel's all-single-byte vector fast path.
    const uint64_t bytes =
        (block + 1 < num_blocks() ? directory_[block + 1].byte_offset
                                  : payload_.size()) -
        meta.byte_offset;
    kernels::DecodeVarintDelta(p, bytes, count, meta.min, out.data());
  }
  return count;
}

const uint32_t* BlockedColumn::CachedBlock(uint32_t block) const {
  KGOA_DCHECK_LT(block, 1u << kBlockIndexBits);
  const uint64_t key = (column_id_ << kBlockIndexBits) | block;
  DecodeCacheEntry& entry = g_decode_cache[CacheSlot(key)];
  if (entry.key != key) {
    ++t_decode_cache.misses;
    DecodeBlock(block, entry.vals);
    entry.key = key;
  } else {
    ++t_decode_cache.hits;
  }
  return entry.vals;
}

uint32_t BlockedColumn::Get(uint32_t pos) const {
  KGOA_DCHECK_LT(pos, size_);
  return CachedBlock(pos / kCodecBlockSize)[pos % kCodecBlockSize];
}

uint32_t BlockedColumn::SeekGE(uint32_t from, uint32_t end, uint32_t v) const {
  KGOA_DCHECK_LE(from, end);
  KGOA_DCHECK_LE(end, size_);
  while (from < end) {
    const uint32_t block = from / kCodecBlockSize;
    const BlockMeta& meta = directory_[block];
    const uint32_t block_begin = block * kCodecBlockSize;
    const uint32_t block_end =
        std::min<uint32_t>(block_begin + meta.count, end);
    if (meta.max < v) {
      // Block-max skip: the bound covers every value in the block, so no
      // in-window value can reach v regardless of trie-node straddling.
      from = block_end;
      continue;
    }
    const uint32_t* vals = CachedBlock(block);
    const uint32_t lo = from - block_begin;
    const uint32_t offset =
        lo + kernels::LowerBoundU32(vals + lo, (block_end - block_begin) - lo, v);
    if (offset < block_end - block_begin) return block_begin + offset;
    from = block_end;
  }
  return end;
}

uint32_t BlockedColumn::SeekGT(uint32_t from, uint32_t end, uint32_t v) const {
  KGOA_DCHECK_LE(from, end);
  KGOA_DCHECK_LE(end, size_);
  while (from < end) {
    const uint32_t block = from / kCodecBlockSize;
    const BlockMeta& meta = directory_[block];
    const uint32_t block_begin = block * kCodecBlockSize;
    const uint32_t block_end =
        std::min<uint32_t>(block_begin + meta.count, end);
    if (meta.max <= v) {
      from = block_end;
      continue;
    }
    const uint32_t* vals = CachedBlock(block);
    const uint32_t lo = from - block_begin;
    const uint32_t offset =
        lo + kernels::UpperBoundU32(vals + lo, (block_end - block_begin) - lo, v);
    if (offset < block_end - block_begin) return block_begin + offset;
    from = block_end;
  }
  return end;
}

void BlockedColumn::CheckInvariants(const uint32_t* expected) const {
  uint64_t total = 0;
  uint64_t next_offset = 0;
  uint32_t vals[kCodecBlockSize];
  for (uint32_t b = 0; b < num_blocks(); ++b) {
    const BlockMeta& meta = directory_[b];
    KGOA_CHECK_EQ(meta.byte_offset, next_offset);
    KGOA_CHECK_GT(meta.count, 0u);
    KGOA_CHECK_LE(meta.count, kCodecBlockSize);
    KGOA_CHECK_LE(meta.min, meta.max);
    const uint32_t count = DecodeBlock(b, vals);
    KGOA_CHECK_EQ(count, meta.count);
    uint32_t lo = vals[0];
    uint32_t hi = vals[0];
    for (uint32_t i = 0; i < count; ++i) {
      lo = std::min(lo, vals[i]);
      hi = std::max(hi, vals[i]);
      if (expected != nullptr) {
        KGOA_CHECK_EQ(vals[i], expected[b * kCodecBlockSize + i]);
      }
    }
    KGOA_CHECK_EQ(lo, meta.min);
    KGOA_CHECK_EQ(hi, meta.max);
    if (meta.encoding == BlockEncoding::kBitPacked) {
      next_offset +=
          (static_cast<uint64_t>(count) * meta.bit_width + 7) / 8;
    } else {
      next_offset += VarintDeltaBytes(vals, count, meta.min);
    }
    total += count;
  }
  KGOA_CHECK_EQ(total, size_);
  KGOA_CHECK_EQ(next_offset, payload_.size());
}

}  // namespace kgoa
