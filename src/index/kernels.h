// SIMD kernel layer for the index hot path.
//
// Three data-plane primitives dominate the walk inner loop after PR 7:
// block decode (frame-of-reference bit-unpack and zigzag varint-delta),
// sorted search inside a decoded 128-entry block (the tail of every
// SeekGE/SeekGT and the galloping tails on the raw tier), and hash-table
// probes issued one walk at a time. This header is the single entry point
// for all three, each dispatched at runtime over scalar / SSE4.2 / AVX2
// implementations (src/util/simd.h picks the level once from cpuid and
// KGOA_SIMD; the scalar path is the portable fallback and the
// differential-test baseline).
//
// Every kernel is a pure function of its inputs: the differential suites
// (tests/kernels_test.cc) and the block-codec fuzzer run identical inputs
// through every supported level and compare outputs bit for bit.
//
// The vector implementations live in src/index/kernels.cc behind
// per-function target attributes, so the library builds without -march
// flags; the kgoa_lint `raw-intrinsic` rule keeps <immintrin.h> out of
// every other translation unit.
#ifndef KGOA_INDEX_KERNELS_H_
#define KGOA_INDEX_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "src/util/simd.h"

namespace kgoa {
namespace kernels {

// ---------------------------------------------------------------------------
// Block decode
// ---------------------------------------------------------------------------

// Frame-of-reference bit-unpack: out[i] = base + bits[i] for `count`
// width-bit values packed LSB-first starting at `in`. `in_end` bounds the
// READABLE buffer (the whole payload, not the block): the AVX2 path
// issues 32-byte unaligned loads and falls back to scalar extraction for
// groups whose load would cross `in_end`. width <= 32; width == 0 fills
// `base`.
void UnpackBits(const uint8_t* in, const uint8_t* in_end, uint32_t count,
                uint32_t base, uint32_t width, uint32_t* out);

// Zigzag varint-delta prefix decode: `count` LEB128 zigzag deltas seeded
// at `base` (the block minimum), occupying exactly `bytes` encoded bytes.
// The byte length is what enables the vector fast path: bytes == count
// means every varint is a single byte, so eight deltas decode and
// prefix-sum per step.
void DecodeVarintDelta(const uint8_t* in, uint64_t bytes, uint32_t count,
                       uint32_t base, uint32_t* out);

// ---------------------------------------------------------------------------
// Branchless sorted search
// ---------------------------------------------------------------------------

// First index in sorted vals[0..n) with vals[i] >= v. Branchless: wide
// windows narrow by conditional-move binary steps, the final window is a
// vector count of elements < v (no data-dependent branches, no early
// exit — the win over std::lower_bound is pipeline-, not comparison-,
// count).
uint32_t LowerBoundU32(const uint32_t* vals, uint32_t n, uint32_t v);

// First index in sorted vals[0..n) with vals[i] > v.
uint32_t UpperBoundU32(const uint32_t* vals, uint32_t n, uint32_t v);

// Strided variants for the raw triple array: element i is
// base[i * stride] (stride 3 — one component of a sorted Triple run).
// The AVX2 path gathers 8 strided keys per step after branchless
// narrowing.
uint32_t LowerBoundStridedU32(const uint32_t* base, uint32_t stride,
                              uint32_t n, uint32_t v);
uint32_t UpperBoundStridedU32(const uint32_t* base, uint32_t stride,
                              uint32_t n, uint32_t v);

// ---------------------------------------------------------------------------
// Batched probes
// ---------------------------------------------------------------------------

// Software-prefetch pipeline depth for batched probes: far enough ahead
// to cover a memory load, close enough that prefetched lines survive in
// L1 until consumed. Exported as `simd.probe_prefetch_depth`.
inline constexpr std::size_t kProbePrefetchDepth = 8;

// Runs `consume(i)` for i in [0, n) with `prefetch(j)` issued
// kProbePrefetchDepth iterations ahead — the generalized form of the
// reach cache's prefetch-then-probe flush. `consume` side effects execute
// strictly in index order, so order-sensitive accumulation (the
// determinism contract) is preserved.
template <typename PrefetchFn, typename ConsumeFn>
void PrefetchPipeline(std::size_t n, PrefetchFn&& prefetch,
                      ConsumeFn&& consume) {
  const std::size_t depth = std::min(kProbePrefetchDepth, n);
  for (std::size_t i = 0; i < depth; ++i) prefetch(i);
  for (std::size_t i = 0; i < n; ++i) {
    if (i + depth < n) prefetch(i + depth);
    consume(i);
  }
}

// Batched table probe: out-of-order prefetch, in-order Find. Works with
// any table exposing Prefetch(key) and Find(key) (FlatTable,
// ShardedFlatTable). `consume(i, value_ptr)` runs in index order.
template <typename Table, typename Key, typename ConsumeFn>
void ProbeBatch(const Table& table, const Key* keys, std::size_t n,
                ConsumeFn&& consume) {
  PrefetchPipeline(
      n, [&](std::size_t i) { table.Prefetch(keys[i]); },
      [&](std::size_t i) { consume(i, table.Find(keys[i])); });
}

}  // namespace kernels
}  // namespace kgoa

#endif  // KGOA_INDEX_KERNELS_H_
