#include "src/index/index_set.h"

#include <bit>
#include <thread>
#include <unordered_set>  // kgoa-lint: allow(unordered-in-hot-path) — cold ndv fallback below

#include "src/index/delta.h"
#include "src/index/radix.h"
#include "src/util/contract.h"
#include "src/util/stopwatch.h"

namespace kgoa {

// The four orders derive from the graph's (s,p,o)-sorted triples without a
// single comparison sort. A stable counting-sort pass on one component
// reorders blocks of that component while preserving the source order
// inside each block, so sorting source order (x,y,z) on component c yields
// (c, then x,y,z minus c) — each maintained order is one pass away from
// another:
//
//   SPO = the base itself (Graph sorts and dedups on (s,p,o))
//   PSO = base sorted by p   (within p: (s,o) from the base)
//   OPS = PSO  sorted by o   (within o: (p,s) from PSO)
//   POS = OPS  sorted by p   (within p: (o,s) from OPS)
//
// The chain runs on the constructing thread; the SPO copy and every hash
// range index build run concurrently as their sorted array lands. No
// temporary triple buffers: each pass scatters straight into the
// destination order's final array, so peak memory stays at the base plus
// the four resident copies.
IndexSet::IndexSet(const Graph& graph, const IndexSetOptions& options)
    : num_triples_(graph.NumTriples()), tier_(options.tier) {
  const uint32_t num_terms = static_cast<uint32_t>(graph.dict().size());
  const std::vector<Triple>& base = graph.triples();
  const uint32_t n = static_cast<uint32_t>(base.size());
  indexes_.resize(kNumIndexOrders);
  hashes_.resize(kNumIndexOrders);
  Stopwatch total;

  // Each task writes a distinct slot of indexes_/hashes_/stats_, so the
  // only synchronization needed is the joins at the end.
  auto build_hash = [this](IndexOrder order) {
    const int o = static_cast<int>(order);
    Stopwatch clock;
    hashes_[o] = std::make_unique<HashRangeIndex>(*indexes_[o]);
    stats_.hash_ms[o] = clock.ElapsedMillis();
  };
  auto adopt = [&](IndexOrder order, std::vector<Triple> sorted,
                   const Stopwatch& clock) {
    const int o = static_cast<int>(order);
    indexes_[o] = std::make_unique<TrieIndex>(order, std::move(sorted),
                                              num_terms);
    stats_.sort_ms[o] = clock.ElapsedMillis();
  };
  // One stable counting pass: `source` sorted by the level-0 component of
  // `order` lands directly in that order's final array.
  std::vector<uint32_t> scratch;
  auto derive = [&](IndexOrder order, const TrieIndex& source) {
    Stopwatch clock;
    std::vector<Triple> sorted(n);
    radix::CountingSortByComponent(source.RawTriplesForDerive(), n,
                                   sorted.data(), OrderComponent(order, 0),
                                   num_terms, scratch);
    adopt(order, std::move(sorted), clock);
  };

  // kgoa-lint: allow(raw-thread) parallel index build, not a serve
  std::vector<std::thread> workers;
  workers.emplace_back([&] {
    Stopwatch clock;
    adopt(IndexOrder::kSpo, base, clock);
    build_hash(IndexOrder::kSpo);
  });

  {
    Stopwatch clock;
    std::vector<Triple> pso(n);
    radix::CountingSortByComponent(base.data(), n, pso.data(),
                                   OrderComponent(IndexOrder::kPso, 0),
                                   num_terms, scratch);
    adopt(IndexOrder::kPso, std::move(pso), clock);
  }
  workers.emplace_back([&] { build_hash(IndexOrder::kPso); });

  derive(IndexOrder::kOps, Index(IndexOrder::kPso));
  workers.emplace_back([&] { build_hash(IndexOrder::kOps); });

  derive(IndexOrder::kPos, Index(IndexOrder::kOps));
  build_hash(IndexOrder::kPos);

  // kgoa-lint: allow(raw-thread) parallel index build, not a serve
  for (std::thread& worker : workers) worker.join();

  if (tier_ == StorageTier::kBlock) {
    // Compress every order after the chain and the hash builds land: the
    // derivation chain needs the raw arrays, and the hash builds scan
    // far cheaper against them. Each order compresses independently.
    Stopwatch compress_clock;
    // kgoa-lint: allow(raw-thread) parallel index build, not a serve
    std::vector<std::thread> compressors;
    for (IndexOrder order : kAllIndexOrders) {
      compressors.emplace_back(
          [this, order] { indexes_[static_cast<int>(order)]
                              ->CompressToBlockTier(); });
    }
    // kgoa-lint: allow(raw-thread) parallel index build, not a serve
    for (std::thread& worker : compressors) worker.join();
    stats_.compress_ms = compress_clock.ElapsedMillis();
  }
  stats_.total_ms = total.ElapsedMillis();

  // Build postconditions: every order holds the whole graph, and each
  // hash-range index agrees with its trie about the distinct level-0
  // population. Sortedness of each order is contracted inside the
  // TrieIndex constructor itself.
  for (IndexOrder order : kAllIndexOrders) {
    KGOA_DCHECK_EQ(Index(order).size(), n);
    KGOA_DCHECK_EQ(Hash(order).Ndv1(), Index(order).Ndv1());
    KGOA_DCHECK(Index(order).tier() == tier_);
  }
}

std::unique_ptr<IndexSet> IndexSet::MakeView(const IndexSet& base,
                                             const DeltaOverlay& overlay) {
  KGOA_CHECK_MSG(base.has_hash(),
                 "views do not stack: the base must be an owning IndexSet");
  auto view = std::unique_ptr<IndexSet>(new IndexSet());
  view->num_triples_ =
      base.NumTriples() - overlay.NumDels() + overlay.NumAdds();
  view->tier_ = base.tier();
  view->indexes_.resize(kNumIndexOrders);
  view->hashes_.resize(kNumIndexOrders);  // all null: has_hash() == false
  for (IndexOrder order : kAllIndexOrders) {
    view->indexes_[static_cast<int>(order)] = std::make_unique<TrieIndex>(
        base.Index(order), overlay.Delta(order), overlay.ViewNumTerms());
  }
  return view;
}

Range IndexSet::Depth1(IndexOrder order, TermId v) const {
  if (has_hash()) return Hash(order).Depth1(v);
  return Index(order).Level0Range(v);
}

Range IndexSet::Depth2(IndexOrder order, TermId v0, TermId v1) const {
  if (has_hash()) return Hash(order).Depth2(v0, v1);
  const TrieIndex& index = Index(order);
  const Range level0 = index.Level0Range(v0);
  if (level0.empty()) return Range{};
  return index.Narrow(level0, 1, v1);
}

uint64_t IndexSet::Ndv2(IndexOrder order, TermId v0) const {
  if (has_hash()) return Hash(order).Ndv2(v0);
  const TrieIndex& index = Index(order);
  const Range level0 = index.Level0Range(v0);
  if (level0.empty()) return 0;
  return index.CountDistinct(level0, 1);
}

void IndexSet::PrefetchDepth1(IndexOrder order, TermId v) const {
  if (has_hash()) Hash(order).PrefetchDepth1(v);
}

void IndexSet::PrefetchDepth2(IndexOrder order, TermId v0, TermId v1) const {
  if (has_hash()) Hash(order).PrefetchDepth2(v0, v1);
}

uint64_t IndexSet::RawStorageBytes() const {
  uint64_t bytes = 0;
  for (IndexOrder order : kAllIndexOrders) {
    bytes += Index(order).RawStorageBytes();
  }
  return bytes;
}

uint64_t IndexSet::BlockStorageBytes() const {
  uint64_t bytes = 0;
  for (IndexOrder order : kAllIndexOrders) {
    bytes += Index(order).BlockStorageBytes();
  }
  return bytes;
}

uint64_t IndexSet::TrieMemoryBytes() const {
  uint64_t bytes = 0;
  for (IndexOrder order : kAllIndexOrders) {
    bytes += Index(order).MemoryBytes();
  }
  return bytes;
}

uint64_t IndexSet::HashMemoryBytes() const {
  if (!has_hash()) return 0;
  uint64_t bytes = 0;
  for (IndexOrder order : kAllIndexOrders) {
    bytes += Hash(order).MemoryBytes();
  }
  return bytes;
}

uint64_t IndexSet::ApproxMemoryBytes() const {
  return TrieMemoryBytes() + HashMemoryBytes();
}

bool IndexSet::ChooseOrder(uint32_t fixed_mask, IndexOrder* order,
                           int* depth) {
  const int k = std::popcount(fixed_mask);
  for (IndexOrder candidate : kAllIndexOrders) {
    uint32_t prefix_mask = 0;
    for (int level = 0; level < k; ++level) {
      prefix_mask |= 1u << OrderComponent(candidate, level);
    }
    if (prefix_mask == fixed_mask) {
      *order = candidate;
      *depth = k;
      return true;
    }
  }
  return false;
}

bool IndexSet::ChooseOrderWithNext(uint32_t fixed_mask, int next,
                                   IndexOrder* order, int* depth) {
  const int k = std::popcount(fixed_mask);
  KGOA_DCHECK((fixed_mask & (1u << next)) == 0);
  for (IndexOrder candidate : kAllIndexOrders) {
    uint32_t prefix_mask = 0;
    for (int level = 0; level < k; ++level) {
      prefix_mask |= 1u << OrderComponent(candidate, level);
    }
    if (prefix_mask == fixed_mask && OrderComponent(candidate, k) == next) {
      *order = candidate;
      *depth = k;
      return true;
    }
  }
  return false;
}

uint32_t IndexSet::ConstantMask(const TriplePattern& pattern) const {
  uint32_t mask = 0;
  for (int c = 0; c < 3; ++c) {
    if (!pattern[c].is_var()) mask |= 1u << c;
  }
  return mask;
}

Range IndexSet::ConstantRange(const TriplePattern& pattern, IndexOrder* order,
                              int* depth) const {
  const uint32_t mask = ConstantMask(pattern);
  KGOA_CHECK_MSG(ChooseOrder(mask, order, depth),
                 "pattern constants do not form an index prefix");
  const TrieIndex& index = Index(*order);
  switch (*depth) {
    case 0:
      return index.Root();
    case 1:
      return Depth1(*order, pattern[OrderComponent(*order, 0)].term());
    case 2:
      return Depth2(*order, pattern[OrderComponent(*order, 0)].term(),
                    pattern[OrderComponent(*order, 1)].term());
    default: {
      // All three components constant: narrow the depth-2 range.
      Range r = Depth2(*order, pattern[OrderComponent(*order, 0)].term(),
                       pattern[OrderComponent(*order, 1)].term());
      return index.Narrow(r, 2, pattern[OrderComponent(*order, 2)].term());
    }
  }
}

uint64_t IndexSet::CountMatches(const TriplePattern& pattern) const {
  const uint32_t mask = ConstantMask(pattern);
  IndexOrder order;
  int depth;
  if (ChooseOrder(mask, &order, &depth)) {
    return ConstantRange(pattern, &order, &depth).size();
  }
  // Only {subject, object} lacks a prefix order: scan the subject's SPO
  // range and filter on the object.
  KGOA_DCHECK(mask == 0b101u);
  const TrieIndex& spo = Index(IndexOrder::kSpo);
  const Range r = Depth1(IndexOrder::kSpo, pattern[kSubject].term());
  uint64_t count = 0;
  for (uint32_t pos = r.begin; pos < r.end; ++pos) {
    if (spo.TripleAt(pos).o == pattern[kObject].term()) ++count;
  }
  return count;
}

uint64_t IndexSet::CountDistinctVar(const TriplePattern& pattern,
                                    VarId v) const {
  const int vc = pattern.ComponentOf(v);
  KGOA_CHECK_MSG(vc >= 0, "variable not in pattern");
  const uint32_t mask = ConstantMask(pattern);
  IndexOrder order;
  int depth;
  if (ChooseOrderWithNext(mask, vc, &order, &depth)) {
    switch (depth) {
      case 0:
        return Ndv1(order);
      case 1:
        return Ndv2(order, pattern[OrderComponent(order, 0)].term());
      default: {
        // Two constants fixed: triples are unique, so every value of the
        // remaining component is distinct.
        return Depth2(order, pattern[OrderComponent(order, 0)].term(),
                      pattern[OrderComponent(order, 1)].term())
            .size();
      }
    }
  }
  // Fallback: scan the constant range (or everything) and collect values.
  // Cold fallback: runs once per planner statistic when no index order
  // fits, never per probe. kgoa-lint: allow(unordered-in-hot-path)
  std::unordered_set<TermId> values;
  if (ChooseOrder(mask, &order, &depth)) {
    const Range r = ConstantRange(pattern, &order, &depth);
    const TrieIndex& index = Index(order);
    for (uint32_t pos = r.begin; pos < r.end; ++pos) {
      values.insert(index.TripleAt(pos)[vc]);
    }
  } else {
    KGOA_DCHECK(mask == 0b101u);
    const TrieIndex& spo = Index(IndexOrder::kSpo);
    const Range r = Depth1(IndexOrder::kSpo, pattern[kSubject].term());
    for (uint32_t pos = r.begin; pos < r.end; ++pos) {
      const Triple& t = spo.TripleAt(pos);
      if (t.o == pattern[kObject].term()) values.insert(t[vc]);
    }
  }
  return values.size();
}

}  // namespace kgoa
