#include "src/index/index_set.h"

#include <bit>
#include <unordered_set>

#include "src/util/check.h"

namespace kgoa {

IndexSet::IndexSet(const Graph& graph) : num_triples_(graph.NumTriples()) {
  for (IndexOrder order : kAllIndexOrders) {
    indexes_.push_back(std::make_unique<TrieIndex>(order, graph.triples()));
    hashes_.push_back(std::make_unique<HashRangeIndex>(*indexes_.back()));
  }
}

uint64_t IndexSet::ApproxMemoryBytes() const {
  uint64_t bytes = 0;
  for (IndexOrder order : kAllIndexOrders) {
    bytes += static_cast<uint64_t>(Index(order).size()) * sizeof(Triple);
    // unordered_map overhead: key + value + bucket/bookkeeping, roughly
    // 48 bytes per entry on libstdc++.
    bytes += Hash(order).Depth1Entries() * 48;
    bytes += Hash(order).Depth2Entries() * 48;
  }
  return bytes;
}

bool IndexSet::ChooseOrder(uint32_t fixed_mask, IndexOrder* order,
                           int* depth) {
  const int k = std::popcount(fixed_mask);
  for (IndexOrder candidate : kAllIndexOrders) {
    uint32_t prefix_mask = 0;
    for (int level = 0; level < k; ++level) {
      prefix_mask |= 1u << OrderComponent(candidate, level);
    }
    if (prefix_mask == fixed_mask) {
      *order = candidate;
      *depth = k;
      return true;
    }
  }
  return false;
}

bool IndexSet::ChooseOrderWithNext(uint32_t fixed_mask, int next,
                                   IndexOrder* order, int* depth) {
  const int k = std::popcount(fixed_mask);
  KGOA_DCHECK((fixed_mask & (1u << next)) == 0);
  for (IndexOrder candidate : kAllIndexOrders) {
    uint32_t prefix_mask = 0;
    for (int level = 0; level < k; ++level) {
      prefix_mask |= 1u << OrderComponent(candidate, level);
    }
    if (prefix_mask == fixed_mask && OrderComponent(candidate, k) == next) {
      *order = candidate;
      *depth = k;
      return true;
    }
  }
  return false;
}

uint32_t IndexSet::ConstantMask(const TriplePattern& pattern) const {
  uint32_t mask = 0;
  for (int c = 0; c < 3; ++c) {
    if (!pattern[c].is_var()) mask |= 1u << c;
  }
  return mask;
}

Range IndexSet::ConstantRange(const TriplePattern& pattern, IndexOrder* order,
                              int* depth) const {
  const uint32_t mask = ConstantMask(pattern);
  KGOA_CHECK_MSG(ChooseOrder(mask, order, depth),
                 "pattern constants do not form an index prefix");
  const TrieIndex& index = Index(*order);
  const HashRangeIndex& hash = Hash(*order);
  switch (*depth) {
    case 0:
      return index.Root();
    case 1:
      return hash.Depth1(pattern[OrderComponent(*order, 0)].term());
    case 2:
      return hash.Depth2(pattern[OrderComponent(*order, 0)].term(),
                         pattern[OrderComponent(*order, 1)].term());
    default: {
      // All three components constant: narrow the depth-2 range.
      Range r = hash.Depth2(pattern[OrderComponent(*order, 0)].term(),
                            pattern[OrderComponent(*order, 1)].term());
      return index.Narrow(r, 2, pattern[OrderComponent(*order, 2)].term());
    }
  }
}

uint64_t IndexSet::CountMatches(const TriplePattern& pattern) const {
  const uint32_t mask = ConstantMask(pattern);
  IndexOrder order;
  int depth;
  if (ChooseOrder(mask, &order, &depth)) {
    return ConstantRange(pattern, &order, &depth).size();
  }
  // Only {subject, object} lacks a prefix order: scan the subject's SPO
  // range and filter on the object.
  KGOA_DCHECK(mask == 0b101u);
  const TrieIndex& spo = Index(IndexOrder::kSpo);
  const Range r = Hash(IndexOrder::kSpo).Depth1(pattern[kSubject].term());
  uint64_t count = 0;
  for (uint32_t pos = r.begin; pos < r.end; ++pos) {
    if (spo.TripleAt(pos).o == pattern[kObject].term()) ++count;
  }
  return count;
}

uint64_t IndexSet::CountDistinctVar(const TriplePattern& pattern,
                                    VarId v) const {
  const int vc = pattern.ComponentOf(v);
  KGOA_CHECK_MSG(vc >= 0, "variable not in pattern");
  const uint32_t mask = ConstantMask(pattern);
  IndexOrder order;
  int depth;
  if (ChooseOrderWithNext(mask, vc, &order, &depth)) {
    const HashRangeIndex& hash = Hash(order);
    switch (depth) {
      case 0:
        return hash.Ndv1();
      case 1:
        return hash.Ndv2(pattern[OrderComponent(order, 0)].term());
      default: {
        // Two constants fixed: triples are unique, so every value of the
        // remaining component is distinct.
        return hash.Depth2(pattern[OrderComponent(order, 0)].term(),
                           pattern[OrderComponent(order, 1)].term())
            .size();
      }
    }
  }
  // Fallback: scan the constant range (or everything) and collect values.
  std::unordered_set<TermId> values;
  if (ChooseOrder(mask, &order, &depth)) {
    const Range r = ConstantRange(pattern, &order, &depth);
    const TrieIndex& index = Index(order);
    for (uint32_t pos = r.begin; pos < r.end; ++pos) {
      values.insert(index.TripleAt(pos)[vc]);
    }
  } else {
    KGOA_DCHECK(mask == 0b101u);
    const TrieIndex& spo = Index(IndexOrder::kSpo);
    const Range r = Hash(IndexOrder::kSpo).Depth1(pattern[kSubject].term());
    for (uint32_t pos = r.begin; pos < r.end; ++pos) {
      const Triple& t = spo.TripleAt(pos);
      if (t.o == pattern[kObject].term()) values.insert(t[vc]);
    }
  }
  return values.size();
}

}  // namespace kgoa
