// Stable counting-sort passes over triple arrays, keyed on a single
// component. TermIds are dictionary-dense (every id < dictionary size), so
// one O(n + num_terms) scatter replaces an O(n log n) comparison sort per
// key column. IndexSet chains these passes to derive each maintained order
// from an already-sorted one (see index_set.cc); TrieIndex uses the full
// 3-pass LSD form when handed triples in arbitrary order.
#ifndef KGOA_INDEX_RADIX_H_
#define KGOA_INDEX_RADIX_H_

#include <cstdint>
#include <vector>

#include "src/index/order.h"
#include "src/rdf/types.h"

namespace kgoa::radix {

// Stable-scatters src[0..n) into dst[0..n) ordered by component
// `component`. Every src[i][component] must be < num_terms. `counts` is
// scratch, reused across passes; after the call counts[v] is the end
// offset of value v's block in dst (counts[v-1], or 0, is its start).
inline void CountingSortByComponent(const Triple* src, uint32_t n,
                                    Triple* dst, int component,
                                    uint32_t num_terms,
                                    std::vector<uint32_t>& counts) {
  counts.assign(static_cast<std::size_t>(num_terms) + 1, 0);
  for (uint32_t i = 0; i < n; ++i) ++counts[src[i][component] + 1];
  for (uint32_t v = 1; v <= num_terms; ++v) counts[v] += counts[v - 1];
  for (uint32_t i = 0; i < n; ++i) {
    dst[counts[src[i][component]]++] = src[i];
  }
}

// Sorts `triples` under `order` with a 3-pass LSD radix sort (level 2,
// then 1, then 0; each pass is stable, so earlier levels dominate).
// O(3(n + num_terms)) time, one n-sized temporary.
inline void LsdRadixSort(IndexOrder order, std::vector<Triple>& triples,
                         uint32_t num_terms) {
  const uint32_t n = static_cast<uint32_t>(triples.size());
  std::vector<Triple> tmp(triples.size());
  std::vector<uint32_t> counts;
  CountingSortByComponent(triples.data(), n, tmp.data(),
                          OrderComponent(order, 2), num_terms, counts);
  CountingSortByComponent(tmp.data(), n, triples.data(),
                          OrderComponent(order, 1), num_terms, counts);
  CountingSortByComponent(triples.data(), n, tmp.data(),
                          OrderComponent(order, 0), num_terms, counts);
  triples.swap(tmp);
}

}  // namespace kgoa::radix

#endif  // KGOA_INDEX_RADIX_H_
