#include "src/index/delta.h"

#include <algorithm>

#include "src/index/index_set.h"
#include "src/index/trie_index.h"

namespace kgoa {

namespace {

// First base position whose triple is >= `t` under `order`. Tier-agnostic
// (goes through TripleAt); O(log n) — build-time only, never on a query
// path.
uint32_t BaseLowerBound(const TrieIndex& base, const Triple& t) {
  const OrderLess less{base.order()};
  uint32_t lo = 0;
  uint32_t hi = base.size();
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (less(base.TripleAt(mid), t)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Number of tombstones inside [range_begin, range_end).
uint32_t TombsIn(const std::vector<uint32_t>& tombs, uint32_t range_begin,
                 uint32_t range_end) {
  const auto lo = std::lower_bound(tombs.begin(), tombs.end(), range_begin);
  const auto hi = std::lower_bound(lo, tombs.end(), range_end);
  return static_cast<uint32_t>(hi - lo);
}

}  // namespace

OrderDelta::OrderDelta(IndexOrder order, const TrieIndex& base,
                       const PendingWrites& pending)
    : order_(order), adds_(pending.adds) {
  const OrderLess less{order_};
  std::sort(adds_.begin(), adds_.end(), less);

  // Deletes sorted under the order locate in ascending base positions, so
  // tombs_ comes out sorted without a second pass.
  std::vector<Triple> dels = pending.dels;
  std::sort(dels.begin(), dels.end(), less);
  tombs_.reserve(dels.size());
  for (const Triple& t : dels) {
    const uint32_t pos = BaseLowerBound(base, t);
    // PendingWrites invariant: every delete names a live base triple.
    KGOA_CHECK_MSG(pos < base.size() && base.TripleAt(pos) == t,
                   "tombstone for a triple absent from the base index");
    tombs_.push_back(pos);
  }
  KGOA_DCHECK_SORTED(tombs_.begin(), tombs_.end());

  // Merged position of add i: its rank among the adds (i) plus the live
  // base triples below its insertion point. Strictly increasing in i.
  add_merged_pos_.reserve(adds_.size());
  for (uint32_t i = 0; i < adds_.size(); ++i) {
    const uint32_t base_pos = BaseLowerBound(base, adds_[i]);
    // PendingWrites invariant: adds are absent from the base.
    KGOA_DCHECK(base_pos == base.size() ||
                !(base.TripleAt(base_pos) == adds_[i]));
    add_merged_pos_.push_back(i + LiveBefore(base_pos));
  }
  KGOA_DCHECK_SORTED(add_merged_pos_.begin(), add_merged_pos_.end());

  // Merged distinct level-0 count: walk the base's level-0 blocks (one
  // Level0Range hop per distinct base value), drop values whose block is
  // fully tombstoned, and union in the adds' level-0 values two-pointer
  // style. O(ndv1 + adds log tombs); build-time only.
  const int c0 = OrderComponent(order_, 0);
  uint32_t pos = 0;
  std::size_t ai = 0;
  while (pos < base.size()) {
    const TermId value = base.KeyAt(pos, 0);
    const Range block = base.Level0Range(value);
    KGOA_DCHECK_EQ(block.begin, pos);
    const bool live = TombsIn(tombs_, block.begin, block.end) < block.size();
    while (ai < adds_.size() && adds_[ai][c0] < value) {
      ++view_ndv1_;
      while (ai + 1 < adds_.size() && adds_[ai + 1][c0] == adds_[ai][c0]) ++ai;
      ++ai;
    }
    if (ai < adds_.size() && adds_[ai][c0] == value) {
      while (ai + 1 < adds_.size() && adds_[ai + 1][c0] == value) ++ai;
      ++ai;
      ++view_ndv1_;  // value survives via the adds even if fully deleted
    } else if (live) {
      ++view_ndv1_;
    }
    pos = block.end;
  }
  while (ai < adds_.size()) {
    ++view_ndv1_;
    const TermId value = adds_[ai][c0];
    while (ai < adds_.size() && adds_[ai][c0] == value) ++ai;
  }
}

uint32_t OrderDelta::LiveBefore(uint32_t base_pos) const {
  const auto it = std::lower_bound(tombs_.begin(), tombs_.end(), base_pos);
  return base_pos - static_cast<uint32_t>(it - tombs_.begin());
}

uint32_t OrderDelta::SelectLive(uint32_t k) const {
  // The k-th live base position is k + t, where t is the number of
  // tombstones at or below it: find the first t with tombs[t] - t > k
  // (tombs is strictly increasing, so tombs[t] - t is non-decreasing).
  uint32_t lo = 0;
  uint32_t hi = static_cast<uint32_t>(tombs_.size());
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (tombs_[mid] - mid > k) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return k + lo;
}

OrderDelta::Source OrderDelta::MapToSource(uint32_t mpos) const {
  const auto it = std::upper_bound(add_merged_pos_.begin(),
                                   add_merged_pos_.end(), mpos);
  const uint32_t a = static_cast<uint32_t>(it - add_merged_pos_.begin());
  if (a > 0 && add_merged_pos_[a - 1] == mpos) {
    return Source{true, a - 1};
  }
  return Source{false, SelectLive(mpos - a)};
}

uint32_t OrderDelta::AddsBefore(uint32_t mpos) const {
  const auto it = std::lower_bound(add_merged_pos_.begin(),
                                   add_merged_pos_.end(), mpos);
  return static_cast<uint32_t>(it - add_merged_pos_.begin());
}

uint32_t OrderDelta::AddsBelowLevel0(TermId value) const {
  const int c0 = OrderComponent(order_, 0);
  const auto it = std::lower_bound(
      adds_.begin(), adds_.end(), value,
      [c0](const Triple& t, TermId v) { return t[c0] < v; });
  return static_cast<uint32_t>(it - adds_.begin());
}

DeltaOverlay::DeltaOverlay(const IndexSet& base, PendingWrites pending)
    : pending_(std::move(pending)) {
  KGOA_DCHECK_SORTED_BY(pending_.adds.begin(), pending_.adds.end(), SpoLess);
  KGOA_DCHECK_SORTED_BY(pending_.dels.begin(), pending_.dels.end(), SpoLess);
  uint32_t num_terms = base.Index(IndexOrder::kSpo).num_terms();
  for (const Triple& t : pending_.adds) {
    num_terms = std::max({num_terms, t.s + 1, t.p + 1, t.o + 1});
  }
  view_num_terms_ = num_terms;
  for (IndexOrder order : kAllIndexOrders) {
    deltas_[static_cast<int>(order)] =
        std::make_unique<OrderDelta>(order, base.Index(order), pending_);
  }
}

bool DeltaOverlay::IsAdded(const Triple& t) const {
  return std::binary_search(pending_.adds.begin(), pending_.adds.end(), t,
                            SpoLess);
}

bool DeltaOverlay::IsDeleted(const Triple& t) const {
  return std::binary_search(pending_.dels.begin(), pending_.dels.end(), t,
                            SpoLess);
}

}  // namespace kgoa
