// Versioned graph access: the read side of the snapshot-epoch model
// (DESIGN.md §13).
//
// A GraphVersion is one immutable published state of a mutable graph: an
// epoch number, the base Graph and IndexSet, and (when writes are pending)
// the DeltaOverlay plus the view IndexSet that merges it in. MutableGraph
// publishes versions RCU-style — writers build the next version off to the
// side and swap one shared_ptr under a leaf mutex; readers never block.
//
// A GraphSnapshot is a pinned, copyable handle on one version. Everything
// a reader dereferences (view indexes, overlay, base arrays, dictionary)
// is reachable from the pinned shared_ptr, so a retired version stays
// fully valid until the LAST snapshot, in-flight ChartJob, warm reach
// cache entry or CTJ memo that pinned it lets go — there is no epoch
// fence to wait on and no reader-side locking. Jobs pin their snapshot at
// submit; a budget-mode estimate is therefore a pure function of
// (version, query, seed, budget, workers) no matter how many epochs are
// published while it runs.
//
// Unowned() adapters wrap externally owned structures (the immutable
// single-graph setups of tests and benches) in a no-op-deleter version at
// epoch 0, so every serving layer can take a GraphSnapshot without forcing
// callers through MutableGraph.
#ifndef KGOA_INDEX_SNAPSHOT_H_
#define KGOA_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/index/delta.h"
#include "src/index/index_set.h"
#include "src/rdf/graph.h"
#include "src/util/contract.h"

namespace kgoa {

// One published state. `view` is the IndexSet readers use: the base set
// itself when the version is clean (overlay == nullptr), else a view
// IndexSet merging base + overlay. Declared last so it is destroyed first
// (it holds raw pointers into base_indexes and overlay).
struct GraphVersion {
  uint64_t epoch = 0;
  std::shared_ptr<const Graph> graph;            // null for Unowned(IndexSet)
  std::shared_ptr<const IndexSet> base_indexes;
  std::shared_ptr<const DeltaOverlay> overlay;   // null when clean
  std::shared_ptr<const IndexSet> view;
};

class GraphSnapshot {
 public:
  // Invalid handle; every accessor below contracts on valid().
  GraphSnapshot() = default;

  explicit GraphSnapshot(std::shared_ptr<const GraphVersion> version)
      : version_(std::move(version)) {}

  // Epoch-0 wrappers over externally owned structures (no-op deleters).
  // The wrapped objects must outlive every copy of the snapshot.
  static GraphSnapshot Unowned(const IndexSet& indexes);
  static GraphSnapshot Unowned(const Graph& graph, const IndexSet& indexes);
  // Graph-only wrapper for consumers that never touch indexes()
  // (exploration sessions translate interactions; serving layers require
  // an index-carrying snapshot).
  static GraphSnapshot Unowned(const Graph& graph);

  bool valid() const { return version_ != nullptr; }
  uint64_t epoch() const {
    KGOA_CHECK_MSG(valid(), "use of an invalid or released GraphSnapshot");
    return version_->epoch;
  }

  // The index structure serving this version (view or base). Valid for
  // the snapshot's lifetime.
  const IndexSet& indexes() const {
    KGOA_CHECK_MSG(valid(), "use of an invalid or released GraphSnapshot");
    KGOA_DCHECK(version_->view != nullptr);
    return *version_->view;
  }

  bool has_graph() const { return valid() && version_->graph != nullptr; }
  // The BASE graph (pending adds are not in its triple array — use
  // Contains/Properties/Classes below for merged answers).
  const Graph& graph() const {
    KGOA_CHECK_MSG(has_graph(), "snapshot carries no Graph");
    return *version_->graph;
  }

  const DeltaOverlay* overlay() const {
    KGOA_CHECK_MSG(valid(), "use of an invalid or released GraphSnapshot");
    return version_->overlay.get();
  }

  // Live triple count of this version (base minus deletes plus adds).
  uint64_t NumTriples() const { return indexes().NumTriples(); }

  // Merged membership / vocabulary scans (overlay-adjusted). Cold,
  // interactive paths — O(log) / O(n) like their Graph counterparts.
  bool Contains(const Triple& t) const;
  std::vector<TermId> Properties() const;
  std::vector<TermId> Classes() const;

  // Drops the pin. The handle becomes invalid; any further access trips
  // the contracts above (the released-snapshot death test exercises this
  // under KGOA_CONTRACTS).
  void Release() { version_.reset(); }

  // The pinned version, e.g. to keep a cache entry alive past this handle.
  const std::shared_ptr<const GraphVersion>& version() const {
    return version_;
  }

 private:
  std::shared_ptr<const GraphVersion> version_;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_SNAPSHOT_H_
