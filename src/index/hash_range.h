// Hash indexes from trie key prefixes to sorted-array ranges.
//
// Wander Join and Audit Join need O(1) access to the set of triples
// matching a pattern given the values sampled so far: both the fan-out d_i
// (range size) and a uniform draw from the range. The paper implements this
// with hash indexes over the sorted arrays (section V-A); this class is
// that structure for one TrieIndex. Prefix keys of depth 1 and 2 map to
// ranges, and per-key distinct counts of the next level are kept for the
// tipping-point cardinality estimates. Both depths live in open-addressing
// FlatTables (single contiguous allocation, power-of-two capacity, linear
// probing), so the sampling hot path is one cache-line probe instead of a
// node-based std::unordered_map chase.
#ifndef KGOA_INDEX_HASH_RANGE_H_
#define KGOA_INDEX_HASH_RANGE_H_

#include <cstdint>

#include "src/index/flat_table.h"
#include "src/index/trie_index.h"

namespace kgoa {

// Thread-local probe counters, exported into the MetricsRegistry by the
// benches (src/eval/registry.h). Thread-local keeps the increments off the
// parallel executor's shared-cache-line path; each thread sees the probes
// it issued itself.
struct IndexProbeCounters {
  uint64_t depth1_probes = 0;
  uint64_t depth2_probes = 0;
  uint64_t ndv_probes = 0;

  uint64_t Total() const { return depth1_probes + depth2_probes + ndv_probes; }
  void Reset() { *this = IndexProbeCounters{}; }
};

inline thread_local IndexProbeCounters t_index_probes;

class HashRangeIndex {
 public:
  explicit HashRangeIndex(const TrieIndex& index);

  HashRangeIndex(const HashRangeIndex&) = delete;
  HashRangeIndex& operator=(const HashRangeIndex&) = delete;
  HashRangeIndex(HashRangeIndex&&) = default;

  // Range of triples whose level-0 value is v0 (empty range if absent).
  Range Depth1(TermId v0) const {
    ++t_index_probes.depth1_probes;
    const Entry* entry = depth1_.Find(v0);
    return entry == nullptr ? Range{} : entry->range;
  }

  // Range of triples whose level-0/1 values are (v0, v1).
  Range Depth2(TermId v0, TermId v1) const {
    ++t_index_probes.depth2_probes;
    const Range* range = depth2_.Find(PackPair(v0, v1));
    return range == nullptr ? Range{} : *range;
  }

  // Prefetch hints for the batched walk path: hint the home cache line of
  // the depth-1 / depth-2 slot before the corresponding Depth1/Depth2
  // probe a few walks later.
  void PrefetchDepth1(TermId v0) const { depth1_.Prefetch(v0); }
  void PrefetchDepth2(TermId v0, TermId v1) const {
    depth2_.Prefetch(PackPair(v0, v1));
  }

  // Number of distinct level-0 values.
  uint64_t Ndv1() const { return depth1_.size(); }

  // Number of distinct level-1 values under level-0 value v0 (0 if absent).
  uint64_t Ndv2(TermId v0) const {
    ++t_index_probes.ndv_probes;
    const Entry* entry = depth1_.Find(v0);
    return entry == nullptr ? 0 : entry->child_count;
  }

  // Entry counts (for memory accounting).
  uint64_t Depth1Entries() const { return depth1_.size(); }
  uint64_t Depth2Entries() const { return depth2_.size(); }

  // Resident bytes of the two flat slot arrays.
  uint64_t MemoryBytes() const {
    return depth1_.MemoryBytes() + depth2_.MemoryBytes();
  }

 private:
  struct Entry {
    Range range;
    uint32_t child_count = 0;  // distinct values at the next level
  };

  // kInvalidTerm never occurs as a dictionary-dense key; the all-ones pair
  // would require both halves to be kInvalidTerm.
  FlatTable<TermId, Entry> depth1_{kInvalidTerm};
  FlatTable<uint64_t, Range> depth2_{~0ull};
};

}  // namespace kgoa

#endif  // KGOA_INDEX_HASH_RANGE_H_
