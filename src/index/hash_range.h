// Hash indexes from trie key prefixes to sorted-array ranges.
//
// Wander Join and Audit Join need O(1) access to the set of triples
// matching a pattern given the values sampled so far: both the fan-out d_i
// (range size) and a uniform draw from the range. The paper implements this
// with std::unordered_map indexes over the sorted arrays (section V-A);
// this class is that structure for one TrieIndex: prefix keys of depth 1
// and 2 map to ranges, and per-key distinct counts of the next level are
// kept for the tipping-point cardinality estimates.
#ifndef KGOA_INDEX_HASH_RANGE_H_
#define KGOA_INDEX_HASH_RANGE_H_

#include <cstdint>
#include <unordered_map>

#include "src/index/trie_index.h"

namespace kgoa {

class HashRangeIndex {
 public:
  explicit HashRangeIndex(const TrieIndex& index);

  HashRangeIndex(const HashRangeIndex&) = delete;
  HashRangeIndex& operator=(const HashRangeIndex&) = delete;
  HashRangeIndex(HashRangeIndex&&) = default;

  // Range of triples whose level-0 value is v0 (empty range if absent).
  Range Depth1(TermId v0) const;

  // Range of triples whose level-0/1 values are (v0, v1).
  Range Depth2(TermId v0, TermId v1) const;

  // Number of distinct level-0 values.
  uint64_t Ndv1() const { return depth1_.size(); }

  // Number of distinct level-1 values under level-0 value v0 (0 if absent).
  uint64_t Ndv2(TermId v0) const;

  // Entry counts (for memory accounting).
  uint64_t Depth1Entries() const { return depth1_.size(); }
  uint64_t Depth2Entries() const { return depth2_.size(); }

 private:
  struct Entry {
    Range range;
    uint32_t child_count = 0;  // distinct values at the next level
  };

  std::unordered_map<TermId, Entry> depth1_;
  std::unordered_map<uint64_t, Range> depth2_;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_HASH_RANGE_H_
