#include "src/index/snapshot.h"

#include <algorithm>

namespace kgoa {

namespace {

// Aliases an externally owned object as a shared_ptr that never deletes.
template <typename T>
std::shared_ptr<const T> NoOpShared(const T& object) {
  return std::shared_ptr<const T>(&object, [](const T*) {});
}

}  // namespace

GraphSnapshot GraphSnapshot::Unowned(const IndexSet& indexes) {
  auto version = std::make_shared<GraphVersion>();
  version->base_indexes = NoOpShared(indexes);
  version->view = version->base_indexes;
  return GraphSnapshot(std::move(version));
}

GraphSnapshot GraphSnapshot::Unowned(const Graph& graph,
                                     const IndexSet& indexes) {
  auto version = std::make_shared<GraphVersion>();
  version->graph = NoOpShared(graph);
  version->base_indexes = NoOpShared(indexes);
  version->view = version->base_indexes;
  return GraphSnapshot(std::move(version));
}

GraphSnapshot GraphSnapshot::Unowned(const Graph& graph) {
  auto version = std::make_shared<GraphVersion>();
  version->graph = NoOpShared(graph);
  return GraphSnapshot(std::move(version));
}

bool GraphSnapshot::Contains(const Triple& t) const {
  const Graph& base = graph();
  const DeltaOverlay* delta = overlay();
  if (delta == nullptr) return base.Contains(t);
  if (base.Contains(t)) return !delta->IsDeleted(t);
  return delta->IsAdded(t);
}

std::vector<TermId> GraphSnapshot::Properties() const {
  const Graph& base = graph();
  const DeltaOverlay* delta = overlay();
  if (delta == nullptr) return base.Properties();
  std::vector<TermId> props;
  for (const Triple& t : base.triples()) {
    if (!delta->IsDeleted(t)) props.push_back(t.p);
  }
  for (const Triple& t : delta->pending().adds) props.push_back(t.p);
  std::sort(props.begin(), props.end());
  props.erase(std::unique(props.begin(), props.end()), props.end());
  return props;
}

std::vector<TermId> GraphSnapshot::Classes() const {
  const Graph& base = graph();
  const DeltaOverlay* delta = overlay();
  if (delta == nullptr) return base.Classes();
  const TermId rdf_type = base.rdf_type();
  std::vector<TermId> classes;
  for (const Triple& t : base.triples()) {
    if (t.p == rdf_type && !delta->IsDeleted(t)) classes.push_back(t.o);
  }
  for (const Triple& t : delta->pending().adds) {
    if (t.p == rdf_type) classes.push_back(t.o);
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

}  // namespace kgoa
