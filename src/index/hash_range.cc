#include "src/index/hash_range.h"

namespace kgoa {

HashRangeIndex::HashRangeIndex(const TrieIndex& index) {
  const uint32_t n = index.size();
  // Pass 1: exact key counts, so each flat table is one right-sized
  // allocation. Boundaries fall where the level-0 (or level-0/1) prefix
  // changes in the sorted array.
  uint64_t depth1_keys = 0;
  uint64_t depth2_keys = 0;
  for (uint32_t pos = 0; pos < n; ++pos) {
    const bool new0 = pos == 0 || index.KeyAt(pos, 0) != index.KeyAt(pos - 1, 0);
    depth1_keys += new0;
    depth2_keys += new0 || index.KeyAt(pos, 1) != index.KeyAt(pos - 1, 1);
  }
  // The depth-1 table is small (<= one entry per term), so size it for a
  // 0.25 load factor: the walk hot path probes it on every step and the
  // extra headroom keeps probe chains at ~1 slot. Depth 2 dominates table
  // memory and stays at load 0.5.
  depth1_.Reset(depth1_keys * 2);
  depth2_.Reset(depth2_keys);

  // Pass 2: emit one range per prefix block.
  const Range root = index.Root();
  uint32_t pos = root.begin;
  while (pos < root.end) {
    const TermId v0 = index.KeyAt(pos, 0);
    const uint32_t end0 = index.BlockEnd(root, 0, pos);  // O(1): CSR offsets
    const Range node0{pos, end0};
    uint32_t child_count = 0;
    uint32_t p1 = pos;
    while (p1 < end0) {
      const TermId v1 = index.KeyAt(p1, 1);
      const uint32_t end1 = index.BlockEnd(node0, 1, p1);
      depth2_.InsertUnique(PackPair(v0, v1)) = Range{p1, end1};
      ++child_count;
      p1 = end1;
    }
    depth1_.InsertUnique(v0) = Entry{node0, child_count};
    pos = end0;
  }

  // Build postconditions: pass 2 emitted exactly the prefix blocks pass 1
  // counted, and depth-1 coverage matches the trie's own distinct count.
  KGOA_DCHECK_EQ(depth1_.size(), depth1_keys);
  KGOA_DCHECK_EQ(depth2_.size(), depth2_keys);
  KGOA_DCHECK_EQ(depth1_.size(), index.Ndv1());
}

}  // namespace kgoa
