#include "src/index/hash_range.h"

namespace kgoa {

HashRangeIndex::HashRangeIndex(const TrieIndex& index) {
  const Range root = index.Root();
  uint32_t pos = root.begin;
  while (pos < root.end) {
    const TermId v0 = index.KeyAt(pos, 0);
    const uint32_t end0 = index.BlockEnd(root, 0, pos);
    const Range node0{pos, end0};
    uint32_t child_count = 0;
    uint32_t p1 = pos;
    while (p1 < end0) {
      const TermId v1 = index.KeyAt(p1, 1);
      const uint32_t end1 = index.BlockEnd(node0, 1, p1);
      depth2_.emplace(PackPair(v0, v1), Range{p1, end1});
      ++child_count;
      p1 = end1;
    }
    depth1_.emplace(v0, Entry{node0, child_count});
    pos = end0;
  }
}

Range HashRangeIndex::Depth1(TermId v0) const {
  auto it = depth1_.find(v0);
  return it == depth1_.end() ? Range{} : it->second.range;
}

Range HashRangeIndex::Depth2(TermId v0, TermId v1) const {
  auto it = depth2_.find(PackPair(v0, v1));
  return it == depth2_.end() ? Range{} : it->second;
}

uint64_t HashRangeIndex::Ndv2(TermId v0) const {
  auto it = depth1_.find(v0);
  return it == depth1_.end() ? 0 : it->second.child_count;
}

}  // namespace kgoa
