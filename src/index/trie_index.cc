#include "src/index/trie_index.h"

#include <algorithm>

#include "src/util/check.h"

namespace kgoa {

namespace {

// Comparator projecting a single level's component for binary search.
struct LevelLess {
  IndexOrder order;
  int level;
  bool operator()(const Triple& t, TermId v) const {
    return t[OrderComponent(order, level)] < v;
  }
  bool operator()(TermId v, const Triple& t) const {
    return v < t[OrderComponent(order, level)];
  }
};

}  // namespace

TrieIndex::TrieIndex(IndexOrder order, const std::vector<Triple>& triples)
    : order_(order), triples_(triples) {
  std::sort(triples_.begin(), triples_.end(), OrderLess{order_});
}

Range TrieIndex::Narrow(Range range, int level, TermId value) const {
  KGOA_DCHECK(level >= 0 && level < 3);
  const auto first = triples_.begin() + range.begin;
  const auto last = triples_.begin() + range.end;
  const auto [lo, hi] =
      std::equal_range(first, last, value, LevelLess{order_, level});
  return Range{static_cast<uint32_t>(lo - triples_.begin()),
               static_cast<uint32_t>(hi - triples_.begin())};
}

uint32_t TrieIndex::SeekGE(Range range, int level, TermId value,
                           uint32_t from) const {
  KGOA_DCHECK(from >= range.begin);
  const auto first = triples_.begin() + from;
  const auto last = triples_.begin() + range.end;
  const auto it = std::lower_bound(first, last, value, LevelLess{order_, level});
  return static_cast<uint32_t>(it - triples_.begin());
}

uint32_t TrieIndex::BlockEnd(Range range, int level, uint32_t pos) const {
  KGOA_DCHECK(pos >= range.begin && pos < range.end);
  const TermId value = KeyAt(pos, level);
  // Exponential (galloping) search: blocks are usually short relative to
  // the enclosing range, so this beats a full binary search in practice.
  uint32_t step = 1;
  uint32_t lo = pos;
  while (lo + step < range.end && KeyAt(lo + step, level) == value) {
    lo += step;
    step <<= 1;
  }
  const uint32_t hi = std::min<uint64_t>(range.end, static_cast<uint64_t>(lo) + step);
  const auto first = triples_.begin() + lo;
  const auto last = triples_.begin() + hi;
  const auto it = std::upper_bound(first, last, value, LevelLess{order_, level});
  return static_cast<uint32_t>(it - triples_.begin());
}

uint64_t TrieIndex::CountDistinct(Range range, int level) const {
  uint64_t count = 0;
  uint32_t pos = range.begin;
  while (pos < range.end) {
    ++count;
    pos = BlockEnd(range, level, pos);
  }
  return count;
}

}  // namespace kgoa
