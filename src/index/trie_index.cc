#include "src/index/trie_index.h"

#include <algorithm>

#include "src/index/delta.h"
#include "src/index/kernels.h"
#include "src/index/radix.h"
#include "src/util/contract.h"

namespace kgoa {

namespace {

// Comparator projecting a single level's component for binary search.
struct LevelLess {
  IndexOrder order;
  int level;
  bool operator()(const Triple& t, TermId v) const {
    return t[OrderComponent(order, level)] < v;
  }
  bool operator()(TermId v, const Triple& t) const {
    return v < t[OrderComponent(order, level)];
  }
};

uint32_t MaxTermBound(const std::vector<Triple>& triples) {
  TermId max_id = 0;
  for (const Triple& t : triples) {
    max_id = std::max({max_id, t.s, t.p, t.o});
  }
  return triples.empty() ? 0 : max_id + 1;
}

}  // namespace

TrieIndex::TrieIndex(IndexOrder order, const std::vector<Triple>& triples)
    : order_(order),
      size_(static_cast<uint32_t>(triples.size())),
      triples_(triples),
      num_terms_(MaxTermBound(triples)) {
  radix::LsdRadixSort(order_, triples_, num_terms_);
  KGOA_DCHECK_SORTED_BY(triples_.begin(), triples_.end(), OrderLess{order_});
  BuildLevel0Offsets();
}

TrieIndex::TrieIndex(IndexOrder order, std::vector<Triple> sorted,
                     uint32_t num_terms)
    : order_(order),
      size_(static_cast<uint32_t>(sorted.size())),
      triples_(std::move(sorted)),
      num_terms_(num_terms) {
  KGOA_DCHECK_SORTED_BY(triples_.begin(), triples_.end(), OrderLess{order_});
  BuildLevel0Offsets();
}

TrieIndex::TrieIndex(const TrieIndex& base, const OrderDelta& delta,
                     uint32_t num_terms)
    : order_(base.order_),
      tier_(base.tier_),
      size_(base.size_ - delta.NumTombs() + delta.NumAdds()),
      num_terms_(num_terms),
      ndv1_(delta.ViewNdv1()),
      base_(&base),
      delta_(&delta) {
  // Views never stack: MutableGraph rebuilds one overlay against the
  // compacted base, so a view's base is always an owning index.
  KGOA_CHECK(!base.is_view());
  KGOA_CHECK(delta.order() == order_);
  KGOA_CHECK_GE(num_terms_, base.num_terms_);
}

void TrieIndex::BuildLevel0Offsets() {
  const int c0 = OrderComponent(order_, 0);
  offsets_.assign(static_cast<std::size_t>(num_terms_) + 1, 0);
  for (const Triple& t : triples_) {
    KGOA_DCHECK_LT(t[c0], num_terms_);
    ++offsets_[t[c0] + 1];
  }
  ndv1_ = 0;
  for (uint32_t v = 0; v < num_terms_; ++v) {
    ndv1_ += offsets_[v + 1] != 0;
    offsets_[v + 1] += offsets_[v];
  }
  // CSR closure: the last offset must account for every triple.
  KGOA_DCHECK_EQ(offsets_[num_terms_], size());
}

void TrieIndex::CompressToBlockTier() {
  KGOA_CHECK_MSG(base_ == nullptr, "overlay views own no storage to compress");
  KGOA_CHECK_MSG(tier_ == StorageTier::kRaw,
                 "index is already block-compressed");
  const uint32_t n = size();
  std::vector<uint32_t> column(n);
  for (int level = 0; level < 3; ++level) {
    const int c = OrderComponent(order_, level);
    for (uint32_t pos = 0; pos < n; ++pos) column[pos] = triples_[pos][c];
    cols_[level] = BlockedColumn(column.data(), n);
  }
  tier_ = StorageTier::kBlock;
  // Release the raw array: from here on, every read goes through the
  // columns (the position space is unchanged).
  std::vector<Triple>().swap(triples_);
}

void TrieIndex::CheckInvariants() const {
  if (base_ != nullptr) {
    ViewCheckInvariants();
    return;
  }
  KGOA_CHECK_EQ(offsets_.size(), static_cast<std::size_t>(num_terms_) + 1);
  KGOA_CHECK_EQ(offsets_[0], 0u);
  KGOA_CHECK_EQ(offsets_[num_terms_], size());
  uint64_t nonempty = 0;
  for (uint32_t v = 0; v < num_terms_; ++v) {
    KGOA_CHECK_LE(offsets_[v], offsets_[v + 1]);  // CSR monotonicity
    nonempty += offsets_[v + 1] != offsets_[v];
  }
  KGOA_CHECK_EQ(nonempty, ndv1_);
  if (tier_ == StorageTier::kRaw) {
    KGOA_CHECK_EQ(triples_.size(), static_cast<std::size_t>(size_));
  } else {
    KGOA_CHECK(triples_.empty());
    for (const BlockedColumn& col : cols_) {
      KGOA_CHECK_EQ(col.size(), size_);
      col.CheckInvariants();
    }
  }
  const OrderLess less{order_};
  const int c0 = OrderComponent(order_, 0);
  Triple prev{};
  for (uint32_t pos = 0; pos < size(); ++pos) {
    const Triple t = TripleAt(pos);
    KGOA_CHECK_LT(t.s, num_terms_);
    KGOA_CHECK_LT(t.p, num_terms_);
    KGOA_CHECK_LT(t.o, num_terms_);
    if (pos > 0) {
      KGOA_CHECK_MSG(!less(t, prev), "trie level out of sorted order");
    }
    prev = t;
    // Each triple must sit inside its own level-0 CSR block.
    KGOA_CHECK_GE(pos, offsets_[t[c0]]);
    KGOA_CHECK_LT(pos, offsets_[t[c0] + 1]);
  }
}

Range TrieIndex::Narrow(Range range, int level, TermId value) const {
  KGOA_DCHECK(level >= 0 && level < 3);
  if (base_ != nullptr) return ViewNarrow(range, level, value);
  if (level == 0) {
    // The only depth-0 trie node is the root, covered by the CSR offsets.
    KGOA_DCHECK(range == Root());
    return Level0Range(value);
  }
  KGOA_DCHECK_LE(range.end, size());
  if (tier_ == StorageTier::kBlock) {
    // SeekGE lands on the first key >= value — the same insertion point
    // std::equal_range yields, so empty results match the raw tier
    // position-for-position.
    const BlockedColumn& col = cols_[level];
    const uint32_t lo = col.SeekGE(range.begin, range.end, value);
    if (lo == range.end || col.Get(lo) != value) return Range{lo, lo};
    return Range{lo, col.SeekGT(lo, range.end, value)};
  }
  const auto first = triples_.begin() + range.begin;
  const auto last = triples_.begin() + range.end;
  const auto [lo, hi] =
      std::equal_range(first, last, value, LevelLess{order_, level});
  return Range{static_cast<uint32_t>(lo - triples_.begin()),
               static_cast<uint32_t>(hi - triples_.begin())};
}

uint32_t TrieIndex::SeekGE(Range range, int level, TermId value,
                           uint32_t from) const {
  if (base_ != nullptr) return ViewSeekGE(range, level, value, from);
  KGOA_DCHECK(from >= range.begin);
  if (from >= range.end) return range.end;
  if (tier_ == StorageTier::kBlock) {
    const uint32_t result = cols_[level].SeekGE(from, range.end, value);
    KGOA_DCHECK_GE(result, from);
    KGOA_DCHECK_LE(result, range.end);
    KGOA_DCHECK(result == range.end || KeyAt(result, level) >= value);
    KGOA_DCHECK(result == from || KeyAt(result - 1, level) < value);
    return result;
  }
  const int c = OrderComponent(order_, level);
  if (triples_[from][c] >= value) return from;
  // Gallop forward: leapfrog hops are usually short relative to the
  // enclosing range, so doubling steps from `from` beat a full binary
  // search over [from, range.end). Invariant: key(lo) < value.
  uint64_t lo = from;
  uint64_t step = 1;
  while (lo + step < range.end && triples_[lo + step][c] < value) {
    lo += step;
    step <<= 1;
  }
  const uint64_t hi = std::min<uint64_t>(range.end, lo + step);
  // Binary tail over the galloped window, on the level's component viewed
  // as a stride-3 array (Triple is standard-layout 3 x uint32).
  const uint32_t first = static_cast<uint32_t>(lo) + 1;
  const uint32_t* keys =
      reinterpret_cast<const uint32_t*>(triples_.data() + first) + c;
  const uint32_t result =
      first + kernels::LowerBoundStridedU32(
                  keys, 3, static_cast<uint32_t>(hi) - first, value);
  // Seek postconditions: the cursor never moves backwards, lands on the
  // first key >= value, and skips only keys < value.
  KGOA_DCHECK_GE(result, from);
  KGOA_DCHECK_LE(result, range.end);
  KGOA_DCHECK(result == range.end || KeyAt(result, level) >= value);
  KGOA_DCHECK(result == from || KeyAt(result - 1, level) < value);
  return result;
}

uint32_t TrieIndex::BlockEnd(Range range, int level, uint32_t pos) const {
  if (base_ != nullptr) return ViewBlockEnd(range, level, pos);
  KGOA_DCHECK(pos >= range.begin && pos < range.end);
  if (level == 0) {
    KGOA_DCHECK(range == Root());
    return offsets_[KeyAt(pos, 0) + 1];
  }
  const TermId value = KeyAt(pos, level);
  if (tier_ == StorageTier::kBlock) {
    const uint32_t result = cols_[level].SeekGT(pos, range.end, value);
    KGOA_DCHECK_GT(result, pos);
    KGOA_DCHECK_LE(result, range.end);
    KGOA_DCHECK(KeyAt(result - 1, level) == value);
    KGOA_DCHECK(result == range.end || KeyAt(result, level) != value);
    return result;
  }
  // Exponential (galloping) search: blocks are usually short relative to
  // the enclosing range, so this beats a full binary search in practice.
  uint64_t step = 1;
  uint64_t lo = pos;
  while (lo + step < range.end && KeyAt(lo + step, level) == value) {
    lo += step;
    step <<= 1;
  }
  const uint32_t hi = std::min<uint64_t>(range.end, lo + step);
  const uint32_t first = static_cast<uint32_t>(lo);
  const uint32_t* keys =
      reinterpret_cast<const uint32_t*>(triples_.data() + first) +
      OrderComponent(order_, level);
  const uint32_t result =
      first + kernels::UpperBoundStridedU32(keys, 3, hi - first, value);
  // Block postconditions: non-empty, within the node, value-homogeneous.
  KGOA_DCHECK_GT(result, pos);
  KGOA_DCHECK_LE(result, range.end);
  KGOA_DCHECK(KeyAt(result - 1, level) == value);
  KGOA_DCHECK(result == range.end || KeyAt(result, level) != value);
  return result;
}

// ---------------------------------------------------------------------------
// Overlay-view implementations (delta.h defines the merged position space)
// ---------------------------------------------------------------------------

Triple TrieIndex::ViewTripleAt(uint32_t pos) const {
  const OrderDelta::Source src = delta_->MapToSource(pos);
  return src.is_add ? delta_->Add(src.index) : base_->TripleAt(src.index);
}

TermId TrieIndex::ViewKeyAt(uint32_t pos, int level) const {
  const OrderDelta::Source src = delta_->MapToSource(pos);
  if (src.is_add) {
    return delta_->Add(src.index)[OrderComponent(order_, level)];
  }
  return base_->KeyAt(src.index, level);
}

uint32_t TrieIndex::ViewLowerBound0(TermId value) const {
  // Merged rank of the first level-0 key >= value: the surviving base
  // triples below the base's CSR offset for `value`, plus the adds below
  // it. Both sides are O(log) lookups — the view's stand-in for the CSR
  // offset array it does not materialize.
  const uint32_t base_lb = value >= base_->num_terms()
                               ? base_->size()
                               : base_->Level0Range(value).begin;
  return delta_->LiveBefore(base_lb) + delta_->AddsBelowLevel0(value);
}

Range TrieIndex::ViewLevel0Range(TermId value) const {
  if (value >= num_terms_) return Range{};
  return Range{ViewLowerBound0(value), ViewLowerBound0(value + 1)};
}

uint32_t TrieIndex::ViewLowerBound(uint32_t lo, uint32_t hi, int level,
                                   TermId value) const {
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (ViewKeyAt(mid, level) < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint32_t TrieIndex::ViewUpperBound(uint32_t lo, uint32_t hi, int level,
                                   TermId value) const {
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (ViewKeyAt(mid, level) <= value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Range TrieIndex::ViewNarrow(Range range, int level, TermId value) const {
  if (level == 0) {
    KGOA_DCHECK(range == Root());
    return ViewLevel0Range(value);
  }
  KGOA_DCHECK_LE(range.end, size());
  const uint32_t lo = ViewLowerBound(range.begin, range.end, level, value);
  if (lo == range.end || ViewKeyAt(lo, level) != value) return Range{lo, lo};
  return Range{lo, ViewUpperBound(lo, range.end, level, value)};
}

uint32_t TrieIndex::ViewSeekGE(Range range, int level, TermId value,
                               uint32_t from) const {
  KGOA_DCHECK(from >= range.begin);
  if (from >= range.end) return range.end;
  if (ViewKeyAt(from, level) >= value) return from;
  // Gallop as the owning tiers do: leapfrog hops are short relative to
  // the node, and each probe here costs a MapToSource resolution.
  uint64_t lo = from;
  uint64_t step = 1;
  while (lo + step < range.end &&
         ViewKeyAt(static_cast<uint32_t>(lo + step), level) < value) {
    lo += step;
    step <<= 1;
  }
  const uint32_t hi =
      static_cast<uint32_t>(std::min<uint64_t>(range.end, lo + step));
  const uint32_t result =
      ViewLowerBound(static_cast<uint32_t>(lo) + 1, hi, level, value);
  // Same seek postconditions as the owning tiers.
  KGOA_DCHECK_GE(result, from);
  KGOA_DCHECK_LE(result, range.end);
  KGOA_DCHECK(result == range.end || ViewKeyAt(result, level) >= value);
  KGOA_DCHECK(result == from || ViewKeyAt(result - 1, level) < value);
  return result;
}

uint32_t TrieIndex::ViewBlockEnd(Range range, int level, uint32_t pos) const {
  KGOA_DCHECK(pos >= range.begin && pos < range.end);
  const TermId value = ViewKeyAt(pos, level);
  if (level == 0) {
    KGOA_DCHECK(range == Root());
    return ViewLowerBound0(value + 1);
  }
  uint64_t lo = pos;
  uint64_t step = 1;
  while (lo + step < range.end &&
         ViewKeyAt(static_cast<uint32_t>(lo + step), level) == value) {
    lo += step;
    step <<= 1;
  }
  const uint32_t hi =
      static_cast<uint32_t>(std::min<uint64_t>(range.end, lo + step));
  const uint32_t result =
      ViewUpperBound(static_cast<uint32_t>(lo), hi, level, value);
  KGOA_DCHECK_GT(result, pos);
  KGOA_DCHECK_LE(result, range.end);
  KGOA_DCHECK(ViewKeyAt(result - 1, level) == value);
  KGOA_DCHECK(result == range.end || ViewKeyAt(result, level) != value);
  return result;
}

void TrieIndex::ViewCheckInvariants() const {
  KGOA_CHECK(triples_.empty());
  KGOA_CHECK(offsets_.empty());
  KGOA_CHECK_EQ(size_, base_->size() - delta_->NumTombs() + delta_->NumAdds());
  const OrderLess less{order_};
  const int c0 = OrderComponent(order_, 0);
  Triple prev{};
  uint64_t distinct = 0;
  for (uint32_t pos = 0; pos < size_; ++pos) {
    const Triple t = TripleAt(pos);
    KGOA_CHECK_LT(t.s, num_terms_);
    KGOA_CHECK_LT(t.p, num_terms_);
    KGOA_CHECK_LT(t.o, num_terms_);
    if (pos > 0) {
      // Strict: the merged set is duplicate-free (adds are disjoint from
      // the live base by the PendingWrites invariants).
      KGOA_CHECK_MSG(less(prev, t), "overlay view out of strict order");
    }
    if (pos == 0 || prev[c0] != t[c0]) ++distinct;
    // Each triple must sit inside its own merged level-0 block.
    const Range block = ViewLevel0Range(t[c0]);
    KGOA_CHECK_GE(pos, block.begin);
    KGOA_CHECK_LT(pos, block.end);
    prev = t;
  }
  KGOA_CHECK_EQ(distinct, ndv1_);
}

uint64_t TrieIndex::CountDistinct(Range range, int level) const {
  if (level == 0) {
    KGOA_DCHECK(range == Root());
    return ndv1_;
  }
  uint64_t count = 0;
  uint32_t pos = range.begin;
  while (pos < range.end) {
    ++count;
    pos = BlockEnd(range, level, pos);
  }
  return count;
}

}  // namespace kgoa
