#include "src/index/kernels.h"

#include <array>
#include <bit>
#include <cstring>

#include "src/util/contract.h"

// The only translation unit (with src/util/simd.h's implementation notes)
// allowed to touch raw intrinsics — scripts/kgoa_lint.py `raw-intrinsic`.
#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define KGOA_KERNELS_X86 1
#else
#define KGOA_KERNELS_X86 0
#endif

namespace kgoa {
namespace kernels {
namespace {

inline uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Frame-of-reference bit-unpack
// ---------------------------------------------------------------------------

// Portable baseline: byte-refill accumulator, identical to the pre-kernel
// BlockedColumn::DecodeBlock loop. Decodes values [first, count), assuming
// the stream starts at bit 0 of `in` — the vector paths use it as their
// tail once an overread guard trips.
void UnpackBitsScalarFrom(const uint8_t* in, uint32_t first, uint32_t count,
                          uint32_t base, uint32_t width, uint32_t* out) {
  if (width == 0) {
    for (uint32_t i = first; i < count; ++i) out[i] = base;
    return;
  }
  const uint64_t mask = width >= 32 ? 0xffffffffULL : ((1ULL << width) - 1);
  const uint64_t bitpos = static_cast<uint64_t>(first) * width;
  const uint8_t* p = in + (bitpos >> 3);
  const int skip = static_cast<int>(bitpos & 7);
  uint64_t acc = 0;
  int bits = 0;
  if (skip != 0) {
    acc = static_cast<uint64_t>(*p++) >> skip;
    bits = 8 - skip;
  }
  for (uint32_t i = first; i < count; ++i) {
    while (bits < static_cast<int>(width)) {
      acc |= static_cast<uint64_t>(*p++) << bits;
      bits += 8;
    }
    out[i] = base + static_cast<uint32_t>(acc & mask);
    acc >>= width;
    bits -= width;
  }
}

// SSE4.2-level path: branchless unaligned 64-bit extraction. Value i
// starts at bit i*width; shift <= 7 plus width <= 32 fits one 64-bit
// load. No vector ISA needed, but kept behind the sse4.2 dispatch level
// so the scalar baseline stays byte-for-byte the pre-kernel loop.
void UnpackBits64(const uint8_t* in, const uint8_t* in_end, uint32_t count,
                  uint32_t base, uint32_t width, uint32_t* out) {
  if (width == 0) {
    for (uint32_t i = 0; i < count; ++i) out[i] = base;
    return;
  }
  const uint64_t mask = width >= 32 ? 0xffffffffULL : ((1ULL << width) - 1);
  const std::size_t avail = static_cast<std::size_t>(in_end - in);
  uint32_t i = 0;
  for (; i < count; ++i) {
    const uint64_t bit = static_cast<uint64_t>(i) * width;
    const std::size_t byte = static_cast<std::size_t>(bit >> 3);
    if (byte + 8 > avail) break;  // 64-bit load would overread the payload
    out[i] = base +
             static_cast<uint32_t>((Load64(in + byte) >> (bit & 7)) & mask);
  }
  if (i < count) UnpackBitsScalarFrom(in, i, count, base, width, out);
}

#if KGOA_KERNELS_X86

// AVX2 path: with LSB-first packing, every group of 8 w-bit values is
// byte-aligned (8w bits = w bytes), so group g starts at byte g*w. One
// unaligned 32-byte load covers the group (8w bits <= 256); each value's
// bits land in at most two adjacent dwords, selected per value with
// permutevar8x32 into a 64-bit lane, shifted right by (j*w & 31) and
// masked. Groups whose 32-byte load would cross `in_end` fall back to the
// scalar tail.
__attribute__((target("avx2"))) void UnpackBitsAvx2(
    const uint8_t* in, const uint8_t* in_end, uint32_t count, uint32_t base,
    uint32_t width, uint32_t* out) {
  if (width == 0) {
    for (uint32_t i = 0; i < count; ++i) out[i] = base;
    return;
  }
  const uint32_t w = width;
  const uint64_t mask64 = w >= 32 ? 0xffffffffULL : ((1ULL << w) - 1);
  alignas(32) uint32_t perm_lo[8];
  alignas(32) uint32_t perm_hi[8];
  alignas(32) uint64_t shift_lo[4];
  alignas(32) uint64_t shift_hi[4];
  for (uint32_t j = 0; j < 4; ++j) {
    const uint32_t bit_l = j * w;
    const uint32_t bit_h = (j + 4) * w;
    // The d+1 clamp is only reached by (j=7, w=32), whose value sits
    // wholly in dword 7 (shift 0, width 32): the clamped lane is masked
    // away.
    perm_lo[2 * j] = bit_l >> 5;
    perm_lo[2 * j + 1] = std::min<uint32_t>((bit_l >> 5) + 1, 7);
    perm_hi[2 * j] = bit_h >> 5;
    perm_hi[2 * j + 1] = std::min<uint32_t>((bit_h >> 5) + 1, 7);
    shift_lo[j] = bit_l & 31;
    shift_hi[j] = bit_h & 31;
  }
  const __m256i vperm_lo =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(perm_lo));
  const __m256i vperm_hi =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(perm_hi));
  const __m256i vshift_lo =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(shift_lo));
  const __m256i vshift_hi =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(shift_hi));
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask64));
  const __m256i vbase = _mm256_set1_epi32(static_cast<int>(base));
  const __m256i collect = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);

  const std::size_t avail = static_cast<std::size_t>(in_end - in);
  const uint32_t groups = count / 8;
  uint32_t g = 0;
  for (; g < groups; ++g) {
    const std::size_t off = static_cast<std::size_t>(g) * w;
    if (off + 32 > avail) break;  // 32-byte load would overread the payload
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + off));
    __m256i q0 = _mm256_permutevar8x32_epi32(v, vperm_lo);
    __m256i q1 = _mm256_permutevar8x32_epi32(v, vperm_hi);
    q0 = _mm256_and_si256(_mm256_srlv_epi64(q0, vshift_lo), vmask);
    q1 = _mm256_and_si256(_mm256_srlv_epi64(q1, vshift_hi), vmask);
    // Low dwords of the four 64-bit lanes -> lanes 0..3 of each half.
    const __m128i lo = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(q0, collect));
    const __m128i hi = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(q1, collect));
    const __m256i vals =
        _mm256_add_epi32(_mm256_set_m128i(hi, lo), vbase);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + g * 8), vals);
  }
  if (g * 8 < count) UnpackBitsScalarFrom(in, g * 8, count, base, w, out);
}

#endif  // KGOA_KERNELS_X86

// ---------------------------------------------------------------------------
// Zigzag varint-delta decode
// ---------------------------------------------------------------------------

// Portable baseline, identical to the pre-kernel DecodeBlock loop.
void DecodeVarintDeltaScalar(const uint8_t* in, uint32_t count, uint32_t base,
                             uint32_t* out) {
  const uint8_t* p = in;
  int64_t prev = base;
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t z = 0;
    int shift = 0;
    while (*p & 0x80) {
      z |= static_cast<uint64_t>(*p & 0x7f) << shift;
      shift += 7;
      ++p;
    }
    z |= static_cast<uint64_t>(*p) << shift;
    ++p;
    prev += static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
    out[i] = static_cast<uint32_t>(prev);
  }
}

#if KGOA_KERNELS_X86

// AVX2 path. Two regimes:
//
//   * bytes == count (the dominant shape — sorted runs with small gaps):
//     every varint is one byte, so eight zigzag deltas widen, decode and
//     prefix-sum per vector step, no length parsing at all.
//   * mixed streams: masked-vbyte shuffle decode (after Plaisance, Kurz
//     and Lemire, "Vectorized VByte Decoding"). Each iteration loads 8
//     bytes; the word's continuation-bit pattern indexes a 256-entry
//     table whose pshufb control gathers every complete 1- or 2-byte
//     varint into its own 16-bit lane. One splice + zigzag + prefix-sum
//     vector step then emits up to 8 values with no per-byte loop and no
//     data-dependent branches. Words holding a longer varint (rare FOR
//     outlier deltas) fall back to a tzcnt length parse whose payload
//     comes from a masked shift-OR chain covering up to 6 encoded bytes
//     (42 payload bits); the encoder never emits more than 5 for a
//     zigzag delta of two uint32 values (< 2^33).
//
// The 8-byte loads stay inside [in, in + bytes): the final varints (tail
// of < 8 encoded bytes) fall back to the byte-serial parse.

// Shuffle-table entry for one 8-bit continuation mask: pshufb control
// gathering each complete 1-/2-byte varint into a 16-bit lane (0x80
// zeroes the absent high byte), the number of varints gathered, and the
// input bytes they span. Parsing stops at the first >= 3-byte varint or
// at a 2-byte varint cut off by the word boundary; `lanes == 0` (mask
// bits 0 and 1 both set) sends the caller to the long-varint fallback.
struct VbyteEntry {
  uint8_t shuffle[16];
  uint8_t lanes;
  uint8_t consumed;
};

constexpr std::array<VbyteEntry, 256> MakeVbyteTable() {
  std::array<VbyteEntry, 256> table{};
  for (int mask = 0; mask < 256; ++mask) {
    VbyteEntry& e = table[mask];
    for (int b = 0; b < 16; ++b) e.shuffle[b] = 0x80;
    int pos = 0;
    int lanes = 0;
    while (pos < 8) {
      if ((mask & (1 << pos)) == 0) {  // terminator first: one byte
        e.shuffle[2 * lanes] = static_cast<uint8_t>(pos);
        pos += 1;
      } else if (pos + 1 < 8 && (mask & (1 << (pos + 1))) == 0) {
        e.shuffle[2 * lanes] = static_cast<uint8_t>(pos);
        e.shuffle[2 * lanes + 1] = static_cast<uint8_t>(pos + 1);
        pos += 2;
      } else {  // >= 3-byte varint, or a 2-byte one the word cuts off
        break;
      }
      ++lanes;
    }
    e.lanes = static_cast<uint8_t>(lanes);
    e.consumed = static_cast<uint8_t>(pos);
  }
  return table;
}

constinit const std::array<VbyteEntry, 256> kVbyteTable = MakeVbyteTable();

// Decodes the entry's 1-/2-byte varints from the 8 bytes at `p` in one
// vector step: gather to 16-bit lanes, splice the 14-bit zigzag payload,
// widen, decode, prefix-sum, add `prev` and store 8 lanes at `dst` (the
// caller guarantees room; lanes past `e.lanes` hold garbage that later
// values overwrite). Returns the running prefix after the group. A free
// function — a lambda would not inherit the caller's target attribute
// under GCC.
__attribute__((target("avx2"))) inline uint32_t DecodeVbyteWord(
    const uint8_t* p, const VbyteEntry& e, uint32_t prev, uint32_t* dst) {
  const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  const __m128i gathered = _mm_shuffle_epi8(
      raw, _mm_loadu_si128(reinterpret_cast<const __m128i*>(e.shuffle)));
  // Each lane holds b0 | (b1 << 8); the varint payload is
  // (b0 & 0x7f) | (b1 << 7), i.e. (lane & 0x7f) | ((lane >> 1) & 0x3f80).
  const __m128i z16 = _mm_or_si128(
      _mm_and_si128(gathered, _mm_set1_epi16(0x7f)),
      _mm_and_si128(_mm_srli_epi16(gathered, 1), _mm_set1_epi16(0x3f80)));
  const __m256i z = _mm256_cvtepu16_epi32(z16);
  __m256i d = _mm256_xor_si256(
      _mm256_srli_epi32(z, 1),
      _mm256_sub_epi32(_mm256_setzero_si256(),
                       _mm256_and_si256(z, _mm256_set1_epi32(1))));
  d = _mm256_add_epi32(d, _mm256_slli_si256(d, 4));
  d = _mm256_add_epi32(d, _mm256_slli_si256(d, 8));
  const __m256i carry = _mm256_blend_epi32(
      _mm256_setzero_si256(),
      _mm256_permutevar8x32_epi32(d, _mm256_set1_epi32(3)), 0xF0);
  d = _mm256_add_epi32(d, carry);
  const __m256i vals =
      _mm256_add_epi32(d, _mm256_set1_epi32(static_cast<int>(prev)));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), vals);
  return dst[e.lanes - 1];
}

// Eight single-byte zigzag deltas at `p`: decode, prefix-sum, store to
// `dst`; returns the running prefix after the group. A free function (a
// lambda would not inherit the caller's target attribute under GCC).
__attribute__((target("avx2"))) inline uint32_t Vector8ZigzagDeltas(
    const uint8_t* p, uint32_t prev, uint32_t* dst) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  const __m256i z = _mm256_cvtepu8_epi32(raw);
  // Zigzag decode: (z >> 1) ^ -(z & 1).
  __m256i d = _mm256_xor_si256(
      _mm256_srli_epi32(z, 1),
      _mm256_sub_epi32(_mm256_setzero_si256(), _mm256_and_si256(z, one)));
  // In-lane prefix sum, then carry lane 3 into the upper half.
  d = _mm256_add_epi32(d, _mm256_slli_si256(d, 4));
  d = _mm256_add_epi32(d, _mm256_slli_si256(d, 8));
  const __m256i carry = _mm256_blend_epi32(
      _mm256_setzero_si256(),
      _mm256_permutevar8x32_epi32(d, _mm256_set1_epi32(3)), 0xF0);
  d = _mm256_add_epi32(d, carry);
  const __m256i vals =
      _mm256_add_epi32(d, _mm256_set1_epi32(static_cast<int>(prev)));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), vals);
  return dst[7];
}

__attribute__((target("avx2"))) void DecodeVarintDeltaAvx2(
    const uint8_t* in, uint64_t bytes, uint32_t count, uint32_t base,
    uint32_t* out) {
  uint32_t prev = base;

  if (bytes == count) {  // all single-byte: no length parsing needed
    uint32_t i = 0;
    for (; i + 8 <= count; i += 8) {
      prev = Vector8ZigzagDeltas(in + i, prev, out + i);
    }
    for (; i < count; ++i) {
      const uint32_t z = in[i];
      prev += static_cast<uint32_t>(static_cast<int32_t>(z >> 1) ^
                                    -static_cast<int32_t>(z & 1));
      out[i] = prev;
    }
    return;
  }

  constexpr uint64_t kMsbs = 0x8080808080808080ull;
  constexpr uint64_t kPayload = 0x7f7f7f7f7f7f7f7full;
  const uint8_t* p = in;
  const uint8_t* end = in + bytes;
  uint32_t i = 0;
  // Payload mask per varint length; index 8 covers a terminator in the
  // word's last byte (shifting by 64 would be UB).
  static constexpr uint64_t kLenMask[9] = {
      0,          0xff,         0xffff,         0xffffff,        0xffffffff,
      0xffffffffff, 0xffffffffffff, 0xffffffffffffff, ~0ull};
  // MSB pattern of four consecutive two-byte varints (continuation byte,
  // then terminator, four times): the dominant shape for unsorted narrow
  // blocks, whose zigzag deltas land in [128, 16384).
  constexpr uint64_t k2ByteMsbs = 0x0080008000800080ull;
  while (i < count && p + 8 <= end) {
    const uint64_t word = Load64(p);
    const uint64_t msbs = word & kMsbs;
    // Homogeneous words first: on runs of equal-length varints these
    // branches predict, so the pointer advance is speculated and the
    // load → shuffle-table → advance data chain never forms. The table
    // handles only the irregular words where prediction would fail
    // anyway.
    if (msbs == 0 && i + 8 <= count) {  // eight single-byte varints
      prev = Vector8ZigzagDeltas(p, prev, out + i);
      p += 8;
      i += 8;
      continue;
    }
    if (msbs == k2ByteMsbs && i + 4 <= count) {  // four two-byte varints
      // Splice each payload inside its own 16-bit lane, then zigzag and
      // prefix-add the four lanes — constant shifts, no length parsing.
      const uint64_t zs = (word & 0x007f007f007f007full) |
                          ((word >> 1) & 0x3f803f803f803f80ull);
      const uint32_t z0 = static_cast<uint32_t>(zs) & 0xffff;
      const uint32_t z1 = static_cast<uint32_t>(zs >> 16) & 0xffff;
      const uint32_t z2 = static_cast<uint32_t>(zs >> 32) & 0xffff;
      const uint32_t z3 = static_cast<uint32_t>(zs >> 48);
      prev += (z0 >> 1) ^ (0 - (z0 & 1));
      out[i] = prev;
      prev += (z1 >> 1) ^ (0 - (z1 & 1));
      out[i + 1] = prev;
      prev += (z2 >> 1) ^ (0 - (z2 & 1));
      out[i + 2] = prev;
      prev += (z3 >> 1) ^ (0 - (z3 & 1));
      out[i + 3] = prev;
      p += 8;
      i += 4;
      continue;
    }
    // Irregular word: gather every complete 1-/2-byte varint in one
    // masked-vbyte shuffle step (the movemask's upper bits are zero:
    // the 8-byte load zero-extends to the full vector).
    const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    const VbyteEntry& e =
        kVbyteTable[static_cast<unsigned>(_mm_movemask_epi8(raw)) & 0xff];
    if (e.lanes != 0 && i + 8 <= count) {
      prev = DecodeVbyteWord(p, e, prev, out + i);
      p += e.consumed;
      i += e.lanes;
      continue;
    }
    // Long varint at the word start (rare FOR outlier delta), or fewer
    // than 8 values left — decode one varint via tzcnt + shift-OR chain.
    const uint64_t terminators = ~word & kMsbs;
    if (terminators == 0) break;  // > 8-byte varint: corrupt; go serial
    const unsigned len =
        (static_cast<unsigned>(std::countr_zero(terminators)) >> 3) + 1;
    const uint64_t w = word & kPayload & kLenMask[len];
    const uint64_t z = (w & 0x7f) | ((w >> 1) & (0x7full << 7)) |
                       ((w >> 2) & (0x7full << 14)) |
                       ((w >> 3) & (0x7full << 21)) |
                       ((w >> 4) & (0x7full << 28)) |
                       ((w >> 5) & (0x7full << 35));
    prev += static_cast<uint32_t>(
        (z >> 1) ^ (0 - static_cast<uint64_t>(z & 1)));
    out[i++] = prev;
    p += len;
  }
  // Byte-serial tail (and corrupt-stream fallback).
  for (; i < count; ++i) {
    uint64_t z = 0;
    int shift = 0;
    while (*p & 0x80) {
      z |= static_cast<uint64_t>(*p & 0x7f) << shift;
      shift += 7;
      ++p;
    }
    z |= static_cast<uint64_t>(*p) << shift;
    ++p;
    prev += static_cast<uint32_t>(
        (z >> 1) ^ (0 - static_cast<uint64_t>(z & 1)));
    out[i] = prev;
  }
}

#endif  // KGOA_KERNELS_X86

// ---------------------------------------------------------------------------
// Branchless sorted search
// ---------------------------------------------------------------------------

// Portable baseline: exactly the pre-kernel behavior (std::lower_bound
// over the window), so the KGOA_SIMD=off ablation measures the true
// before/after and non-x86 builds are unaffected.
uint32_t LowerBoundScalar(const uint32_t* vals, uint32_t n, uint32_t v) {
  return static_cast<uint32_t>(std::lower_bound(vals, vals + n, v) - vals);
}

uint32_t LowerBoundStridedScalar(const uint32_t* base, uint32_t stride,
                                 uint32_t n, uint32_t v) {
  uint32_t lo = 0;
  uint32_t len = n;
  while (len > 0) {
    const uint32_t half = len / 2;
    if (base[static_cast<std::size_t>(lo + half) * stride] < v) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return lo;
}

#if KGOA_KERNELS_X86

// Vector tail sizes: narrow with cmov steps until the window fits a
// handful of vector compares, then count elements < v branchlessly
// (sortedness makes the count the lower-bound index). The window is
// tuned per lane count — 4-lane SSE amortizes fewer sweep iterations
// than 8-lane AVX2 before the cmov steps win.
constexpr uint32_t kVectorSearchWindowSse = 32;
constexpr uint32_t kVectorSearchWindowAvx = 128;

__attribute__((target("sse4.2"))) uint32_t LowerBoundSse42(
    const uint32_t* vals, uint32_t n, uint32_t v) {
  const uint32_t* base = vals;
  uint32_t len = n;
  while (len > kVectorSearchWindowSse) {
    const uint32_t half = len / 2;
    base += (base[half - 1] < v) ? half : 0;
    len -= half;
  }
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i pivot =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(v)), bias);
  uint32_t count = 0;
  uint32_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m128i x = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + i)), bias);
    const __m128i lt = _mm_cmplt_epi32(x, pivot);
    count += static_cast<uint32_t>(
        __builtin_popcount(_mm_movemask_ps(_mm_castsi128_ps(lt))));
  }
  for (; i < len; ++i) count += base[i] < v;
  return static_cast<uint32_t>(base - vals) + count;
}

__attribute__((target("avx2"))) uint32_t LowerBoundAvx2(const uint32_t* vals,
                                                        uint32_t n,
                                                        uint32_t v) {
  const uint32_t* base = vals;
  uint32_t len = n;
  while (len > kVectorSearchWindowAvx) {
    const uint32_t half = len / 2;
    base += (base[half - 1] < v) ? half : 0;
    len -= half;
  }
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i pivot =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(v)), bias);
  uint32_t count = 0;
  uint32_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i)), bias);
    const __m256i lt = _mm256_cmpgt_epi32(pivot, x);
    count += static_cast<uint32_t>(
        __builtin_popcount(_mm256_movemask_ps(_mm256_castsi256_ps(lt))));
  }
  for (; i < len; ++i) count += base[i] < v;
  return static_cast<uint32_t>(base - vals) + count;
}

// Strided AVX2: gather 8 level keys (stride 3 dwords apart in the raw
// triple array) per step once the cmov prologue narrowed the window.
__attribute__((target("avx2"))) uint32_t LowerBoundStridedAvx2(
    const uint32_t* base, uint32_t stride, uint32_t n, uint32_t v) {
  uint32_t lo = 0;
  uint32_t len = n;
  while (len > 64) {
    const uint32_t half = len / 2;
    lo += (base[static_cast<std::size_t>(lo + half - 1) * stride] < v) ? half
                                                                       : 0;
    len -= half;
  }
  const int s = static_cast<int>(stride);
  const __m256i vidx =
      _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i pivot =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(v)), bias);
  uint32_t count = 0;
  uint32_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i x = _mm256_xor_si256(
        _mm256_i32gather_epi32(
            reinterpret_cast<const int*>(
                base + static_cast<std::size_t>(lo + i) * stride),
            vidx, 4),
        bias);
    const __m256i lt = _mm256_cmpgt_epi32(pivot, x);
    count += static_cast<uint32_t>(
        __builtin_popcount(_mm256_movemask_ps(_mm256_castsi256_ps(lt))));
  }
  for (; i < len; ++i) {
    count += base[static_cast<std::size_t>(lo + i) * stride] < v;
  }
  return lo + count;
}

#endif  // KGOA_KERNELS_X86

}  // namespace

void UnpackBits(const uint8_t* in, const uint8_t* in_end, uint32_t count,
                uint32_t base, uint32_t width, uint32_t* out) {
  KGOA_DCHECK_LE(width, 32u);
  switch (CurrentSimdLevel()) {
#if KGOA_KERNELS_X86
    case SimdLevel::kAvx2:
      UnpackBitsAvx2(in, in_end, count, base, width, out);
      return;
#endif
    case SimdLevel::kSse42:
      UnpackBits64(in, in_end, count, base, width, out);
      return;
    default:
      UnpackBitsScalarFrom(in, 0, count, base, width, out);
      return;
  }
}

void DecodeVarintDelta(const uint8_t* in, uint64_t bytes, uint32_t count,
                       uint32_t base, uint32_t* out) {
  switch (CurrentSimdLevel()) {
#if KGOA_KERNELS_X86
    case SimdLevel::kAvx2:
      DecodeVarintDeltaAvx2(in, bytes, count, base, out);
      return;
#endif
    default:
      // Varint parse is serial below AVX2; the byte length is unused.
      (void)bytes;
      DecodeVarintDeltaScalar(in, count, base, out);
      return;
  }
}

uint32_t LowerBoundU32(const uint32_t* vals, uint32_t n, uint32_t v) {
  switch (CurrentSimdLevel()) {
#if KGOA_KERNELS_X86
    case SimdLevel::kAvx2:
      return LowerBoundAvx2(vals, n, v);
    case SimdLevel::kSse42:
      return LowerBoundSse42(vals, n, v);
#endif
    default:
      return LowerBoundScalar(vals, n, v);
  }
}

uint32_t UpperBoundU32(const uint32_t* vals, uint32_t n, uint32_t v) {
  // upper_bound(v) == lower_bound(v + 1) for unsigned keys; v = 2^32 - 1
  // has no successor, and every key is <= it.
  if (v == 0xffffffffu) return n;
  return LowerBoundU32(vals, n, v + 1);
}

uint32_t LowerBoundStridedU32(const uint32_t* base, uint32_t stride,
                              uint32_t n, uint32_t v) {
  KGOA_DCHECK_GT(stride, 0u);
  switch (CurrentSimdLevel()) {
#if KGOA_KERNELS_X86
    case SimdLevel::kAvx2:
      return LowerBoundStridedAvx2(base, stride, n, v);
#endif
    default:
      return LowerBoundStridedScalar(base, stride, n, v);
  }
}

uint32_t UpperBoundStridedU32(const uint32_t* base, uint32_t stride,
                              uint32_t n, uint32_t v) {
  if (v == 0xffffffffu) return n;
  return LowerBoundStridedU32(base, stride, n, v + 1);
}

}  // namespace kernels
}  // namespace kgoa
