// Compressed block storage for one trie-level column of TermIds.
//
// A BlockedColumn splits a column of n values into 128-entry blocks and
// encodes each block independently with whichever of two codecs is
// smaller for that block:
//
//   frame-of-reference bit-packing — every value stored as (v - min) in
//       ceil(log2(max - min + 1)) bits, LSB-first; the natural winner for
//       blocks whose values cluster in a narrow band (level-1/2 columns
//       inside a large trie node), and free (0 bits) for constant blocks;
//   zigzag varint-delta — LEB128 of the zigzag-mapped delta from the
//       previous value (the block minimum seeds the chain); the winner for
//       sorted runs with small gaps (the level-0 column, deep columns with
//       many short node runs) where a single outlier would blow up the
//       frame-of-reference width.
//
// A flat directory holds per-block metadata {min, max, count, byte
// offset, encoding, bit width}. The min/max bounds double as block-max
// skip data for seeks: a block whose max is below the sought value can be
// skipped without decoding no matter how the block straddles trie-node
// boundaries, because the bound covers every value in the block.
//
// Random access decodes through a small per-thread direct-mapped cache of
// decoded blocks keyed by (column id, block index) — the column id is
// allocated from a process-wide monotonic counter precisely so a cache
// entry can never alias a different column that happens to reuse a freed
// column's address.
#ifndef KGOA_INDEX_BLOCK_CODEC_H_
#define KGOA_INDEX_BLOCK_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/rdf/types.h"

namespace kgoa {

// Per-thread decoded-block cache statistics, exported into the metrics
// registry ("simd.decode_cache_*"). Thread-local for the same reason as
// IndexProbeCounters: the decode path must never touch a shared cache
// line.
struct DecodeCacheCounters {
  uint64_t hits = 0;    // CachedBlock served without decoding
  uint64_t misses = 0;  // CachedBlock had to decode (cold or evicted)

  void Reset() { *this = DecodeCacheCounters{}; }
};

inline thread_local DecodeCacheCounters t_decode_cache;

// Values per block. 128 keeps the decoded block in two cache lines'
// worth of directory strides and makes pos <-> block arithmetic shifts.
inline constexpr uint32_t kCodecBlockSize = 128;

enum class BlockEncoding : uint8_t { kBitPacked = 0, kVarintDelta = 1 };

// Per-block directory entry. 24 bytes per 128 values (~1.5 bits/value).
struct BlockMeta {
  uint64_t byte_offset = 0;  // start of the block's bytes in the payload
  TermId min = 0;            // smallest value in the block (FOR base)
  TermId max = 0;            // largest value in the block (skip bound)
  uint16_t count = 0;        // values in the block (kCodecBlockSize except last)
  BlockEncoding encoding = BlockEncoding::kBitPacked;
  uint8_t bit_width = 0;     // FOR width; unused for varint-delta
};

class BlockedColumn {
 public:
  BlockedColumn() = default;

  // Encodes `values[0..n)` (a column in position order). Values may be in
  // any order; sortedness only matters for the Seek* calls below.
  BlockedColumn(const uint32_t* values, uint32_t n);

  BlockedColumn(const BlockedColumn&) = delete;
  BlockedColumn& operator=(const BlockedColumn&) = delete;
  BlockedColumn(BlockedColumn&&) = default;
  BlockedColumn& operator=(BlockedColumn&&) = default;

  uint32_t size() const { return size_; }
  uint32_t num_blocks() const {
    return static_cast<uint32_t>(directory_.size());
  }
  const BlockMeta& block_meta(uint32_t block) const {
    return directory_[block];
  }

  // Value at `pos`, through the thread-local decoded-block cache.
  uint32_t Get(uint32_t pos) const;

  // Hints the encoded bytes of the block containing `pos` — what a decode
  // miss will read. Issued by batched walk loops a prefetch window ahead
  // of the corresponding Get; a hit in the decoded-block cache simply
  // ignores the hinted line.
  void PrefetchBlock(uint32_t pos) const {
    const BlockMeta& meta = directory_[pos / kCodecBlockSize];
    __builtin_prefetch(payload_.data() + meta.byte_offset, /*rw=*/0,
                       /*locality=*/1);
  }

  // Decodes block `block` into out[0..count); returns count. The span
  // must have capacity for a FULL block (contract-checked against
  // kCodecBlockSize even for a short final block): every caller that
  // decodes one block today decodes another tomorrow, and the capacity
  // contract is what lets the decode kernels and the thread-local cache
  // treat a block buffer as a fixed-size, 32-byte-alignable unit.
  uint32_t DecodeBlock(uint32_t block, std::span<uint32_t> out) const;

  // First position in [from, end) whose value is >= v. The caller must
  // guarantee values[from..end) is sorted ascending (a trie-node window);
  // blocks whose directory max is below v are skipped without decoding.
  uint32_t SeekGE(uint32_t from, uint32_t end, uint32_t v) const;

  // First position in [from, end) whose value is > v, same contract.
  uint32_t SeekGT(uint32_t from, uint32_t end, uint32_t v) const;

  // Encoded payload plus directory bytes.
  uint64_t MemoryBytes() const {
    return static_cast<uint64_t>(payload_.size()) +
           static_cast<uint64_t>(directory_.size()) * sizeof(BlockMeta);
  }

  // Full decode audit: every block round-trips, directory min/max/count
  // match the decoded values, offsets are monotone. O(n); tests and fuzz
  // harnesses only.
  void CheckInvariants(const uint32_t* expected = nullptr) const;

 private:
  // Decoded view of `block`, served from the per-thread cache.
  const uint32_t* CachedBlock(uint32_t block) const;

  uint64_t column_id_ = 0;  // process-wide monotonic; decode-cache key
  uint32_t size_ = 0;
  std::vector<BlockMeta> directory_;
  std::vector<uint8_t> payload_;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_BLOCK_CODEC_H_
