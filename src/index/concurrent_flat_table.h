// Sharded concurrent open-addressing hash table for shared memo caches.
//
// FlatTable (flat_table.h) replaced the node-based hash maps on the
// single-threaded index hot path; this header is its concurrent sibling for
// caches that are *shared across worker threads* — above all the
// reach-probability memos of Audit Join's distinct estimator
// (src/core/reach.h), whose amortization argument (paper §IV-D) only pays
// off when every worker probes one cache instead of refilling a private
// copy.
//
// Design:
//   * Power-of-two shards selected by the top bits of a Fibonacci-mixed
//     key hash; each shard's arrays bucket on the bits directly below, so
//     shard selection and in-shard placement never alias. Each shard is an
//     independent open-addressing array guarded by a striped insert mutex
//     that readers never take.
//   * Lock-free read path: slot keys are std::atomic<Key>. An insert
//     writes the value first and publishes the key with a release store,
//     so a reader that acquire-loads a matching key always observes the
//     fully written value.
//   * Growth by migration: when a shard would exceed load factor 1/2 the
//     lock holder allocates a doubled array, re-inserts every entry, and
//     publishes it with a release store to the shard's `live` pointer.
//     Retired arrays stay alive (in the shard's arena list) until
//     Clear()/destruction, so concurrent readers holding the old pointer
//     keep probing a complete, immutable array — and pointers returned by
//     Find() stay valid for the table's lifetime.
//   * The intended use is a *deterministic* memo: the value stored for a
//     key is a pure function of the key and immutable inputs, so two
//     threads racing to insert the same key insert bit-identical values
//     and the race is benign — whichever insert wins, every reader sees
//     the same value. Insert() contract-checks this (KGOA_DCHECK on
//     bit-equality) whenever it finds the key already resident.
//   * Atomic per-shard hit/miss/contention counters (relaxed), aggregated
//     by stats(). They are exact totals but scheduling-dependent: a probe
//     that another thread raced to fill counts as a hit on one run and a
//     miss on the next. Estimates built from the cached *values* remain
//     bit-identical; only the counters vary (see DESIGN.md, "Shared reach
//     cache").
//
// Thread-safety: Find/Prefetch/Insert/FindOrCompute/stats/size may be
// called concurrently. Clear() and the destructor require exclusive
// access.
#ifndef KGOA_INDEX_CONCURRENT_FLAT_TABLE_H_
#define KGOA_INDEX_CONCURRENT_FLAT_TABLE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/util/contract.h"
#include "src/util/sync.h"

namespace kgoa {

// Aggregated view over every shard; see ShardedFlatTable::stats().
struct ShardedTableStats {
  uint64_t hits = 0;               // Find() probes that found the key
  uint64_t misses = 0;             // Find() probes that did not
  uint64_t insert_contention = 0;  // Insert() calls that waited on a lock
  uint64_t duplicate_inserts = 0;  // Insert() calls that lost a benign race
  uint64_t entries = 0;            // resident keys
  uint64_t memory_bytes = 0;       // live + retired slot arrays
};

// Key is an unsigned integer type; `empty_key` must never be inserted.
// Value must be trivially copyable (it is published across threads by a
// plain store sequenced before the key's release store).
template <typename Key, typename Value>
class ShardedFlatTable {
  static_assert(std::is_trivially_copyable_v<Value>);
  static_assert(std::is_unsigned_v<Key>);

 public:
  // 2^shard_bits shards, each starting at `initial_shard_capacity` slots
  // (rounded up to a power of two >= 8).
  explicit ShardedFlatTable(Key empty_key, int shard_bits = 4,
                            std::size_t initial_shard_capacity = 32)
      : empty_key_(empty_key),
        shard_bits_(shard_bits),
        shards_(std::size_t{1} << shard_bits) {
    KGOA_CHECK(shard_bits >= 0 && shard_bits <= 16);
    initial_log2_ = 3;
    while ((std::size_t{1} << initial_log2_) < initial_shard_capacity) {
      ++initial_log2_;
    }
    // Construction is single-threaded, but InstallFreshArray carries a
    // REQUIRES(shard.mutex) contract — take the (uncontended) lock rather
    // than punch an analysis hole.
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mutex);
      InstallFreshArray(shard);
    }
  }

  ShardedFlatTable(const ShardedFlatTable&) = delete;
  ShardedFlatTable& operator=(const ShardedFlatTable&) = delete;

  // Lock-free lookup. The returned pointer stays valid (and its value
  // immutable) until Clear() or destruction, even across shard growth.
  const Value* Find(Key key) const {
    KGOA_DCHECK_NE(key, empty_key_);
    const uint64_t h = Mix(key);
    const Shard& shard = ShardOf(h);
    const Array* array = shard.live.load(std::memory_order_acquire);
    std::size_t probes = 0;
    for (std::size_t i = array->Bucket(h);; i = (i + 1) & array->mask) {
      KGOA_DCHECK_LE(++probes, array->mask + 1);
      const Slot& slot = array->slots[i];
      const Key resident = slot.key.load(std::memory_order_acquire);
      if (resident == key) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return &slot.value;
      }
      if (resident == empty_key_) {
        shard.misses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
    }
  }

  // Issues a software prefetch for `key`'s home cache line, so a batched
  // probe loop (collect keys, prefetch all, then Find all) overlaps the
  // memory latency of consecutive lookups.
  void Prefetch(Key key) const {
    const uint64_t h = Mix(key);
    const Shard& shard = ShardOf(h);
    const Array* array = shard.live.load(std::memory_order_acquire);
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&array->slots[array->Bucket(h)], /*rw=*/0,
                       /*locality=*/1);
#else
    (void)array;
#endif
  }

  // Inserts `key` -> `value` under the shard's striped lock and returns
  // the canonical resident value: `value` if this call inserted it, the
  // previously resident value if another thread won the race. For the
  // deterministic-memo use both are bit-identical (contract-checked).
  Value Insert(Key key, Value value) {
    KGOA_DCHECK_NE(key, empty_key_);
    const uint64_t h = Mix(key);
    Shard& shard = ShardOf(h);
    // Try-then-lock so the contention counter records real waits; the
    // guard then adopts whichever path acquired the stripe.
    if (!shard.mutex.TryLock()) {
      shard.contention.fetch_add(1, std::memory_order_relaxed);
      shard.mutex.Lock();
    }
    MutexLock lock(shard.mutex, kAdoptLock);
    Array* array = shard.live.load(std::memory_order_relaxed);
    std::size_t i = array->Bucket(h);
    std::size_t probes = 0;
    for (;; i = (i + 1) & array->mask) {
      KGOA_DCHECK_LE(++probes, array->mask + 1);
      const Key resident = array->slots[i].key.load(std::memory_order_relaxed);
      if (resident == key) {
        // Benign determinism race: another thread computed this entry
        // first. The memo contract says both computed the same bits.
        KGOA_DCHECK_MSG(
            std::memcmp(&array->slots[i].value, &value, sizeof(Value)) == 0,
            "racing inserts for one key produced different values");
        shard.duplicates.fetch_add(1, std::memory_order_relaxed);
        return array->slots[i].value;
      }
      if (resident == empty_key_) break;
    }
    if ((shard.size + 1) * 2 > array->mask + 1) {
      array = GrowLocked(shard);
      i = array->Bucket(h);
      std::size_t grow_probes = 0;
      while (array->slots[i].key.load(std::memory_order_relaxed) !=
             empty_key_) {
        KGOA_DCHECK_LE(++grow_probes, array->mask + 1);
        i = (i + 1) & array->mask;
      }
    }
    array->slots[i].value = value;
    // Release-publish the key after the value so a reader that observes
    // the key also observes the value (Find acquire-loads the key).
    array->slots[i].key.store(key, std::memory_order_release);
    ++shard.size;
    return value;
  }

  // Memo flow: Find, else Insert(compute()). `compute` runs outside the
  // lock; racing threads may compute redundantly but insert identical
  // values, and every caller gets the canonical resident value.
  template <typename Compute>
  Value FindOrCompute(Key key, Compute&& compute) {
    if (const Value* found = Find(key)) return *found;
    return Insert(key, compute());
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mutex);
      total += shard.size;
    }
    return total;
  }

  ShardedTableStats stats() const {
    ShardedTableStats s;
    for (const Shard& shard : shards_) {
      s.hits += shard.hits.load(std::memory_order_relaxed);
      s.misses += shard.misses.load(std::memory_order_relaxed);
      s.insert_contention += shard.contention.load(std::memory_order_relaxed);
      s.duplicate_inserts += shard.duplicates.load(std::memory_order_relaxed);
      MutexLock lock(shard.mutex);
      s.entries += shard.size;
      for (const auto& array : shard.arenas) {
        s.memory_bytes += (array->mask + 1) * sizeof(Slot);
      }
    }
    return s;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Drops every entry, retired array and counter. NOT thread-safe: the
  // caller must guarantee no concurrent Find/Insert and must not hold
  // pointers returned by earlier Find calls.
  void Clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mutex);
      shard.arenas.clear();
      shard.live.store(nullptr, std::memory_order_relaxed);
      shard.size = 0;
      shard.hits.store(0, std::memory_order_relaxed);
      shard.misses.store(0, std::memory_order_relaxed);
      shard.contention.store(0, std::memory_order_relaxed);
      shard.duplicates.store(0, std::memory_order_relaxed);
      InstallFreshArray(shard);
    }
  }

 private:
  struct Slot {
    std::atomic<Key> key;
    Value value;
  };

  struct Array {
    Array(int log2_capacity, int shard_bits, Key empty_key)
        : mask((std::size_t{1} << log2_capacity) - 1),
          log2(log2_capacity),
          bucket_shift(64 - log2_capacity),
          shard_bits(shard_bits),
          slots(new Slot[mask + 1]) {
      for (std::size_t i = 0; i <= mask; ++i) {
        // Pre-publication writes: the array is not visible to readers yet.
        slots[i].key.store(empty_key, std::memory_order_relaxed);
        slots[i].value = Value{};
      }
    }

    // Home bucket from the hash bits directly below the shard-selection
    // bits, so every shard spreads over its whole array.
    std::size_t Bucket(uint64_t mixed) const {
      return static_cast<std::size_t>((mixed << shard_bits) >> bucket_shift);
    }

    std::size_t mask;
    int log2;
    int bucket_shift;
    int shard_bits;
    std::unique_ptr<Slot[]> slots;
  };

  struct alignas(64) Shard {
    mutable Mutex mutex;
    // The reader-visible array: readers acquire-load it lock-free and may
    // keep probing a retired generation; only the *pointer swap* is
    // writer-side work (done under `mutex` in GrowLocked/Clear).
    std::atomic<Array*> live{nullptr};
    // Every array ever installed, newest last; retired arrays stay alive
    // for readers that loaded their pointer before a growth.
    std::vector<std::unique_ptr<Array>> arenas KGOA_GUARDED_BY(mutex);
    std::size_t size KGOA_GUARDED_BY(mutex) = 0;
    mutable std::atomic<uint64_t> hits{0};
    mutable std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> contention{0};
    std::atomic<uint64_t> duplicates{0};
  };

  static uint64_t Mix(Key key) {
    return static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
  }

  const Shard& ShardOf(uint64_t mixed) const {
    return shards_[shard_bits_ == 0 ? 0 : mixed >> (64 - shard_bits_)];
  }
  Shard& ShardOf(uint64_t mixed) {
    return shards_[shard_bits_ == 0 ? 0 : mixed >> (64 - shard_bits_)];
  }

  void InstallFreshArray(Shard& shard) KGOA_REQUIRES(shard.mutex) {
    shard.arenas.push_back(
        std::make_unique<Array>(initial_log2_, shard_bits_, empty_key_));
    shard.live.store(shard.arenas.back().get(), std::memory_order_release);
  }

  // Doubles the shard's array and migrates every resident entry. Caller
  // holds the shard mutex; readers keep probing the old (now immutable)
  // array until they re-load `live`.
  Array* GrowLocked(Shard& shard) KGOA_REQUIRES(shard.mutex) {
    Array* old = shard.live.load(std::memory_order_relaxed);
    auto grown =
        std::make_unique<Array>(old->log2 + 1, shard_bits_, empty_key_);
    std::size_t migrated = 0;
    for (std::size_t i = 0; i <= old->mask; ++i) {
      const Key key = old->slots[i].key.load(std::memory_order_relaxed);
      if (key == empty_key_) continue;
      const uint64_t h = Mix(key);
      std::size_t j = grown->Bucket(h);
      while (grown->slots[j].key.load(std::memory_order_relaxed) !=
             empty_key_) {
        j = (j + 1) & grown->mask;
      }
      grown->slots[j].value = old->slots[i].value;
      grown->slots[j].key.store(key, std::memory_order_relaxed);
      ++migrated;
    }
    KGOA_DCHECK_EQ(migrated, shard.size);  // migration must not lose keys
    Array* result = grown.get();
    shard.arenas.push_back(std::move(grown));
    // Release-publish: readers that acquire-load `live` observe every
    // migrated slot written above.
    shard.live.store(result, std::memory_order_release);
    return result;
  }

  Key empty_key_;
  int shard_bits_;
  int initial_log2_ = 3;
  std::vector<Shard> shards_;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_CONCURRENT_FLAT_TABLE_H_
