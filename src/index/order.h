// Index orderings over the three triple components.
//
// Following the paper (section V-A), four of the six possible orders are
// maintained: (s,p,o), (o,p,s), (p,s,o), (p,o,s). These suffice for every
// access path that exploration queries need (constants plus at most one
// bound join variable always form a prefix of one of these orders).
#ifndef KGOA_INDEX_ORDER_H_
#define KGOA_INDEX_ORDER_H_

#include <array>
#include <cstdint>

#include "src/rdf/types.h"

namespace kgoa {

enum class IndexOrder : uint8_t { kSpo = 0, kOps = 1, kPso = 2, kPos = 3 };

inline constexpr int kNumIndexOrders = 4;

inline constexpr std::array<IndexOrder, kNumIndexOrders> kAllIndexOrders = {
    IndexOrder::kSpo, IndexOrder::kOps, IndexOrder::kPso, IndexOrder::kPos};

// Component (0 = subject, 1 = predicate, 2 = object) stored at each trie
// level for each order.
inline constexpr int OrderComponent(IndexOrder order, int level) {
  constexpr int kComponents[kNumIndexOrders][3] = {
      {0, 1, 2},  // SPO
      {2, 1, 0},  // OPS
      {1, 0, 2},  // PSO
      {1, 2, 0},  // POS
  };
  return kComponents[static_cast<int>(order)][level];
}

inline constexpr const char* OrderName(IndexOrder order) {
  constexpr const char* kNames[kNumIndexOrders] = {"SPO", "OPS", "PSO", "POS"};
  return kNames[static_cast<int>(order)];
}

// Key of `t` under `order`: the component values in level order.
inline std::array<TermId, 3> OrderKey(IndexOrder order, const Triple& t) {
  return {t[OrderComponent(order, 0)], t[OrderComponent(order, 1)],
          t[OrderComponent(order, 2)]};
}

// Lexicographic comparison of triples under `order`.
struct OrderLess {
  IndexOrder order;
  bool operator()(const Triple& a, const Triple& b) const {
    for (int level = 0; level < 3; ++level) {
      const int c = OrderComponent(order, level);
      if (a[c] != b[c]) return a[c] < b[c];
    }
    return false;
  }
};

}  // namespace kgoa

#endif  // KGOA_INDEX_ORDER_H_
