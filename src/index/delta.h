// LSM-style delta overlay over a built IndexSet: the write side of the
// snapshot-epoch model (DESIGN.md §13).
//
// A MutableGraph absorbs insert/delete batches into a pair of canonical
// pending sets (adds that are not in the base, deletes that are), and this
// overlay translates those sets into per-index-order structures that define
// a MERGED position space per order:
//
//   merged = base positions minus tombstones, with each add spliced in at
//            its sorted insertion point.
//
// The merged space is rank-defined: position p of the merged sequence is
// the p-th smallest triple (under the order) of the live set, exactly as a
// from-scratch rebuild of base + adds - deletes would lay it out. A view
// TrieIndex over (base, OrderDelta) therefore satisfies the same
// SeekGE/Narrow/BlockEnd position-space contract as a rebuilt index,
// position for position — which is what makes estimates on a snapshot
// bit-identical to an immutable build of the same triple set (the
// overlay_fuzz differential harness checks this on random batches).
//
// All mapping primitives are O(log overlay) binary searches over three
// small sorted arrays per order:
//
//   tombs           ascending base positions of deleted triples
//   adds            added triples, sorted under the order
//   add_merged_pos  each add's merged position (strictly increasing)
//
// LiveBefore(p)  = p - #tombs below p      (base -> merged rank shift)
//   SelectLive(k)  = k-th surviving base position (inverse of LiveBefore)
//   MapToSource(m) = add index or base position backing merged position m
//
// Overlays are immutable once built; MutableGraph rebuilds the overlay on
// every applied batch and publishes it behind a fresh GraphVersion.
#ifndef KGOA_INDEX_DELTA_H_
#define KGOA_INDEX_DELTA_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/index/order.h"
#include "src/rdf/types.h"
#include "src/util/contract.h"

namespace kgoa {

class IndexSet;
class TrieIndex;

// Canonical pending write sets, both sorted by (s, p, o) and duplicate
// free. Invariants (maintained by MutableGraph, checked by DeltaOverlay):
// every add is absent from the base graph, every delete is present in it,
// and the two sets are disjoint.
struct PendingWrites {
  std::vector<Triple> adds;
  std::vector<Triple> dels;

  bool empty() const { return adds.empty() && dels.empty(); }
};

// The per-order half of the overlay: the pending sets projected into one
// trie order's position space.
class OrderDelta {
 public:
  // Builds the order's delta against `base` (the same order's base index).
  // `pending` must satisfy the PendingWrites invariants.
  OrderDelta(IndexOrder order, const TrieIndex& base,
             const PendingWrites& pending);

  IndexOrder order() const { return order_; }
  uint32_t NumAdds() const { return static_cast<uint32_t>(adds_.size()); }
  uint32_t NumTombs() const { return static_cast<uint32_t>(tombs_.size()); }

  const Triple& Add(uint32_t i) const { return adds_[i]; }

  // Distinct level-0 values of the merged sequence (the view's Ndv1).
  uint64_t ViewNdv1() const { return view_ndv1_; }

  // Number of surviving base positions strictly below `base_pos`; the
  // merged-rank contribution of the base prefix [0, base_pos).
  uint32_t LiveBefore(uint32_t base_pos) const;

  // The k-th (0-based) base position that is not tombstoned. k must be
  // below base.size() - NumTombs().
  uint32_t SelectLive(uint32_t k) const;

  // Merged position of add `i` (strictly increasing in i).
  uint32_t AddMergedPos(uint32_t i) const { return add_merged_pos_[i]; }

  // Source of merged position `mpos`: either an add (index into adds_) or
  // a surviving base position.
  struct Source {
    bool is_add;
    uint32_t index;  // add index or base position
  };
  Source MapToSource(uint32_t mpos) const;

  // Number of adds whose merged position is < `mpos` / <= `mpos`.
  uint32_t AddsBefore(uint32_t mpos) const;

  // Number of adds whose level-0 key is < `value`.
  uint32_t AddsBelowLevel0(TermId value) const;

 private:
  IndexOrder order_;
  std::vector<Triple> adds_;             // sorted under order_
  std::vector<uint32_t> tombs_;          // ascending base positions
  std::vector<uint32_t> add_merged_pos_; // strictly increasing
  uint64_t view_ndv1_ = 0;
};

// The full overlay: one OrderDelta per maintained order plus the canonical
// pending sets (for membership adjustment and compaction folding).
class DeltaOverlay {
 public:
  // `base` must outlive the overlay (views hold pointers into it).
  DeltaOverlay(const IndexSet& base, PendingWrites pending);

  DeltaOverlay(const DeltaOverlay&) = delete;
  DeltaOverlay& operator=(const DeltaOverlay&) = delete;

  const OrderDelta& Delta(IndexOrder order) const {
    return *deltas_[static_cast<int>(order)];
  }

  const PendingWrites& pending() const { return pending_; }

  uint64_t NumAdds() const { return pending_.adds.size(); }
  uint64_t NumDels() const { return pending_.dels.size(); }

  // Upper bound (exclusive) on TermIds of the merged triple set: the base
  // bound widened by any fresh terms the adds introduce.
  uint32_t ViewNumTerms() const { return view_num_terms_; }

  bool IsAdded(const Triple& t) const;
  bool IsDeleted(const Triple& t) const;

 private:
  PendingWrites pending_;
  uint32_t view_num_terms_ = 0;
  std::array<std::unique_ptr<OrderDelta>, kNumIndexOrders> deltas_;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_DELTA_H_
