// LeapFrog-style trie iterator (Veldhuizen, ICDT 2014) over a TrieIndex.
//
// Exposes the classic interface the LeapFrog Trie Join backtracking search
// needs: Open/Up to move vertically, Next/SeekGE/AtEnd to scan the distinct
// values of the current trie level.
#ifndef KGOA_INDEX_TRIE_ITERATOR_H_
#define KGOA_INDEX_TRIE_ITERATOR_H_

#include <array>

#include "src/index/trie_index.h"

namespace kgoa {

class TrieIterator {
 public:
  explicit TrieIterator(const TrieIndex* index);

  // Depth of the iterator: -1 at the (virtual) root, 0..2 inside the trie.
  int level() const { return level_; }

  // Descends into the first value of the next level. Requires level() < 2
  // and, at level >= 0, !AtEnd().
  void Open();

  // Ascends one level, restoring the parent's position.
  void Up();

  // True when the current level's values are exhausted.
  bool AtEnd() const { return pos_ >= NodeRange().end; }

  // Current value at the current level. Requires !AtEnd().
  TermId Key() const { return index_->KeyAt(pos_, level_); }

  // Advances to the next distinct value at the current level.
  void Next();

  // Advances to the least value >= `value` at the current level (leapfrog
  // seek). Never moves backwards.
  void SeekGE(TermId value);

  // Number of distinct values remaining at the current level from the
  // current position (linear in that count; used by tests).
  uint64_t CountRemaining() const;

  const TrieIndex& index() const { return *index_; }

 private:
  // Trie node (range) containing the values of the current level; valid
  // for level_ >= 0.
  Range NodeRange() const { return ranges_[level_]; }

  const TrieIndex* index_;
  int level_ = -1;
  // ranges_[l]: the node whose values form level l (ranges_[0] = root).
  std::array<Range, 3> ranges_;
  // Saved positions per level for Up().
  std::array<uint32_t, 3> saved_pos_{};
  uint32_t pos_ = 0;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_TRIE_ITERATOR_H_
