// The complete index structure over a graph: the four sorted-array trie
// orders of the paper plus their hash range indexes, with access-path
// selection and the pattern-level statistics (match counts, distinct value
// counts) that the join-size estimates of Audit Join's tipping point need.
//
// Construction is parallel and sort-free: the graph's own (s,p,o) array
// seeds SPO directly, and every other order is one stable counting-sort
// pass (dictionary-dense LSD radix) away from an already-built one; the
// hash range indexes build concurrently as each order lands.
#ifndef KGOA_INDEX_INDEX_SET_H_
#define KGOA_INDEX_INDEX_SET_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/index/hash_range.h"
#include "src/index/trie_index.h"
#include "src/query/pattern.h"
#include "src/rdf/graph.h"

namespace kgoa {

// Wall-clock build cost per order, for the metrics registry and benches.
struct IndexBuildStats {
  std::array<double, kNumIndexOrders> sort_ms{};  // sort + CSR offsets
  std::array<double, kNumIndexOrders> hash_ms{};  // flat hash tables
  double compress_ms = 0;  // block-tier encode, all orders (parallel)
  double total_ms = 0;     // end-to-end, all orders
};

// Build-time knobs. The storage tier selects the physical representation
// of the four trie orders; every query result and every estimate is
// bit-identical across tiers (the position space is shared).
struct IndexSetOptions {
  StorageTier tier = StorageTier::kRaw;
};

class DeltaOverlay;

class IndexSet {
 public:
  // Builds all four orders. O(n) time (counting passes), 4x triple
  // storage for the raw tier — matching the paper's memory accounting
  // (all engines share this structure). With options.tier == kBlock the
  // orders are block-compressed in parallel after the chained build (the
  // derivation chain needs the raw arrays), typically cutting trie
  // memory by well over 2x.
  explicit IndexSet(const Graph& graph, const IndexSetOptions& options = {});

  // Overlay VIEW over a built set: each order becomes a view TrieIndex
  // merging `base` with the overlay's OrderDelta (DESIGN.md §13). Views
  // carry no hash range indexes (has_hash() is false) — the depth helpers
  // below fall back to trie searches over the merged position space, so
  // every access path keeps working with identical results. `base` and
  // `overlay` must outlive the view (GraphVersion pins both).
  static std::unique_ptr<IndexSet> MakeView(const IndexSet& base,
                                            const DeltaOverlay& overlay);

  IndexSet(const IndexSet&) = delete;
  IndexSet& operator=(const IndexSet&) = delete;

  const TrieIndex& Index(IndexOrder order) const {
    return *indexes_[static_cast<int>(order)];
  }
  const HashRangeIndex& Hash(IndexOrder order) const {
    return *hashes_[static_cast<int>(order)];
  }

  // False for overlay views, whose range lookups resolve through the trie
  // helpers below instead of the flat hash tables. Callers outside this
  // class must route depth lookups through Depth1/Depth2/Ndv2 rather than
  // Hash() so views work everywhere (the hash tables index the BASE
  // position space, which shifts under an overlay).
  bool has_hash() const { return hashes_[0] != nullptr; }

  // Range of triples whose level-0 value is `v` under `order`: the flat
  // hash table when present, the (view-aware) CSR path otherwise. Both
  // answer in the same position space.
  Range Depth1(IndexOrder order, TermId v) const;

  // Range with the first two levels fixed to (v0, v1).
  Range Depth2(IndexOrder order, TermId v0, TermId v1) const;

  // Distinct level-0 / level-1-under-v0 counts for `order`.
  uint64_t Ndv1(IndexOrder order) const { return Index(order).Ndv1(); }
  uint64_t Ndv2(IndexOrder order, TermId v0) const;

  // Prefetch hints for the depth lookups above (no-ops without a hash).
  void PrefetchDepth1(IndexOrder order, TermId v) const;
  void PrefetchDepth2(IndexOrder order, TermId v0, TermId v1) const;

  uint64_t NumTriples() const { return num_triples_; }

  StorageTier tier() const { return tier_; }

  const IndexBuildStats& build_stats() const { return stats_; }

  // Bytes resident in each storage tier across the four orders (exactly
  // one is nonzero: the orders share a tier). The registry's
  // index.memory_bytes.raw / index.memory_bytes.block gauges and
  // ShardedGraph's memory accounting read these.
  uint64_t RawStorageBytes() const;
  uint64_t BlockStorageBytes() const;

  // Resident size of the four trie orders (active tier + CSR offsets).
  uint64_t TrieMemoryBytes() const;

  // Resident size of the flat hash range tables.
  uint64_t HashMemoryBytes() const;

  // Rough resident size of the whole index structure: the four trie
  // orders in their active tier, their CSR level-0 offset arrays, and
  // the flat hash slot arrays (the analogue of the paper's reported
  // index memory — 72 GB / 194 GB for its two graphs).
  uint64_t ApproxMemoryBytes() const;

  // Chooses an order whose first popcount(fixed_mask) levels are exactly
  // the components in fixed_mask (bit 0 = subject, 1 = predicate,
  // 2 = object). Returns false for the one unsupported mask ({s,o}).
  // On success *depth is the prefix length.
  static bool ChooseOrder(uint32_t fixed_mask, IndexOrder* order, int* depth);

  // Like ChooseOrder, but additionally requires the component `next` to sit
  // at level *depth (right after the fixed prefix).
  static bool ChooseOrderWithNext(uint32_t fixed_mask, int next,
                                  IndexOrder* order, int* depth);

  // Range of triples matching the constants of `pattern` under an order
  // chosen by ChooseOrder; requires such an order to exist.
  Range ConstantRange(const TriplePattern& pattern, IndexOrder* order,
                      int* depth) const;

  // Number of triples matching the constants of `pattern`. O(1) for all
  // pattern shapes with a prefix order; O(range) otherwise.
  uint64_t CountMatches(const TriplePattern& pattern) const;

  // Number of distinct values variable `v` takes among the matches of
  // `pattern`. `v` must occur in `pattern`.
  uint64_t CountDistinctVar(const TriplePattern& pattern, VarId v) const;

 private:
  IndexSet() = default;  // MakeView fills the fields directly

  uint32_t ConstantMask(const TriplePattern& pattern) const;

  uint64_t num_triples_ = 0;
  StorageTier tier_ = StorageTier::kRaw;
  std::vector<std::unique_ptr<TrieIndex>> indexes_;
  std::vector<std::unique_ptr<HashRangeIndex>> hashes_;
  IndexBuildStats stats_;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_INDEX_SET_H_
