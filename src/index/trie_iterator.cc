#include "src/index/trie_iterator.h"

#include "src/util/contract.h"

namespace kgoa {

TrieIterator::TrieIterator(const TrieIndex* index) : index_(index) {
  ranges_[0] = index_->Root();
  pos_ = ranges_[0].begin;
}

void TrieIterator::Open() {
  KGOA_DCHECK(level_ < 2);
  if (level_ >= 0) {
    KGOA_DCHECK(!AtEnd());
    saved_pos_[level_] = pos_;
    // The child node is the block of triples sharing the current key.
    const uint32_t end = index_->BlockEnd(NodeRange(), level_, pos_);
    ranges_[level_ + 1] = Range{pos_, end};
  }
  ++level_;
  pos_ = NodeRange().begin;
}

void TrieIterator::Up() {
  KGOA_DCHECK(level_ >= 0);
  --level_;
  pos_ = level_ >= 0 ? saved_pos_[level_] : ranges_[0].begin;
}

void TrieIterator::Next() {
  KGOA_DCHECK(level_ >= 0 && !AtEnd());
  const uint32_t before = pos_;
  pos_ = index_->BlockEnd(NodeRange(), level_, pos_);
  // Cursor monotonicity: a leapfrog cursor only ever moves forward.
  KGOA_DCHECK_GT(pos_, before);
}

void TrieIterator::SeekGE(TermId value) {
  KGOA_DCHECK(level_ >= 0);
  if (AtEnd() || Key() >= value) return;
  const uint32_t before = pos_;
  pos_ = index_->SeekGE(NodeRange(), level_, value, pos_);
  // Cursor monotonicity plus the seek's own postcondition: the cursor
  // moved forward and either exhausted the level or landed on a key that
  // satisfies the caller's lower bound.
  KGOA_DCHECK_GE(pos_, before);
  KGOA_DCHECK(AtEnd() || Key() >= value);
}

uint64_t TrieIterator::CountRemaining() const {
  KGOA_DCHECK(level_ >= 0);
  uint64_t count = 0;
  uint32_t p = pos_;
  const Range node = NodeRange();
  while (p < node.end) {
    ++count;
    p = index_->BlockEnd(node, level_, p);
  }
  return count;
}

}  // namespace kgoa
