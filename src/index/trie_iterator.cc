#include "src/index/trie_iterator.h"

#include "src/util/check.h"

namespace kgoa {

TrieIterator::TrieIterator(const TrieIndex* index) : index_(index) {
  ranges_[0] = index_->Root();
  pos_ = ranges_[0].begin;
}

void TrieIterator::Open() {
  KGOA_DCHECK(level_ < 2);
  if (level_ >= 0) {
    KGOA_DCHECK(!AtEnd());
    saved_pos_[level_] = pos_;
    // The child node is the block of triples sharing the current key.
    const uint32_t end = index_->BlockEnd(NodeRange(), level_, pos_);
    ranges_[level_ + 1] = Range{pos_, end};
  }
  ++level_;
  pos_ = NodeRange().begin;
}

void TrieIterator::Up() {
  KGOA_DCHECK(level_ >= 0);
  --level_;
  pos_ = level_ >= 0 ? saved_pos_[level_] : ranges_[0].begin;
}

void TrieIterator::Next() {
  KGOA_DCHECK(level_ >= 0 && !AtEnd());
  pos_ = index_->BlockEnd(NodeRange(), level_, pos_);
}

void TrieIterator::SeekGE(TermId value) {
  KGOA_DCHECK(level_ >= 0);
  if (AtEnd() || Key() >= value) return;
  pos_ = index_->SeekGE(NodeRange(), level_, value, pos_);
}

uint64_t TrieIterator::CountRemaining() const {
  KGOA_DCHECK(level_ >= 0);
  uint64_t count = 0;
  uint32_t p = pos_;
  const Range node = NodeRange();
  while (p < node.end) {
    ++count;
    p = index_->BlockEnd(node, level_, p);
  }
  return count;
}

}  // namespace kgoa
