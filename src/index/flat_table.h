// Minimal open-addressing hash table for the index hot path: power-of-two
// capacity in a single contiguous slot array, Fibonacci multiplicative
// hashing, linear probing. The table is sized once for an exact key count
// (load factor <= 0.5, so probes terminate and stay short) and never grows
// or deletes — HashRangeIndex knows its entry counts up front. A lookup is
// one multiply, one shift and a forward scan that stays within one or two
// cache lines, replacing the node chase of std::unordered_map.
#ifndef KGOA_INDEX_FLAT_TABLE_H_
#define KGOA_INDEX_FLAT_TABLE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace kgoa {

// Key is an unsigned integer type; `empty_key` must never be inserted.
template <typename Key, typename Value>
class FlatTable {
 public:
  explicit FlatTable(Key empty_key) : empty_key_(empty_key) {
    slots_.assign(2, Slot{empty_key_, Value{}});  // Find is safe pre-Reset
  }

  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;
  FlatTable(FlatTable&&) = default;
  FlatTable& operator=(FlatTable&&) = default;

  // Clears the table and sizes it for exactly `expected` InsertUnique
  // calls: capacity is the smallest power of two >= 2 * expected.
  void Reset(std::size_t expected) {
    std::size_t capacity = 2;
    while (capacity < expected * 2) capacity <<= 1;
    shift_ = 64 - std::countr_zero(capacity);
    size_ = 0;
    slots_.assign(capacity, Slot{empty_key_, Value{}});
  }

  // Inserts `key` (which must not be present) and returns its value slot.
  Value& InsertUnique(Key key) {
    KGOA_DCHECK(key != empty_key_);
    KGOA_DCHECK(size_ * 2 < slots_.size());
    ++size_;
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      Slot& slot = slots_[i];
      if (slot.key == empty_key_) {
        slot.key = key;
        return slot.value;
      }
      KGOA_DCHECK(slot.key != key);
    }
  }

  // Returns the value for `key`, or nullptr if absent.
  const Value* Find(Key key) const {
    for (std::size_t i = Bucket(key);; i = (i + 1) & (slots_.size() - 1)) {
      const Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == empty_key_) return nullptr;
    }
  }

  std::size_t size() const { return size_; }

  uint64_t MemoryBytes() const {
    return static_cast<uint64_t>(slots_.size()) * sizeof(Slot);
  }

 private:
  struct Slot {
    Key key;
    Value value;
  };

  std::size_t Bucket(Key key) const {
    return static_cast<std::size_t>(
        (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  Key empty_key_;
  int shift_ = 63;
  std::size_t size_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace kgoa

#endif  // KGOA_INDEX_FLAT_TABLE_H_
